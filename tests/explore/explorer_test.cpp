#include "explore/explorer.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/designspace.hpp"
#include "core/units.hpp"

namespace rat::explore {
namespace {

using core::CandidateFactory;
using core::DesignAxes;
using core::DesignCandidate;
using core::DesignPoint;
using core::DesignSpaceResult;
using core::Requirements;
using core::ResourceItem;

/// Render everything the caller can observe (trace strings, exact
/// prediction bits, coverage counters) so "bit-identical to exhaustive"
/// is asserted on the whole result, not a summary of it.
std::string render_result(const DesignSpaceResult& r) {
  std::string out = r.outcome.render_trace();
  out += "proceed=" + std::to_string(r.outcome.proceed);
  out += " accepted=" + (r.outcome.accepted_index
                             ? std::to_string(*r.outcome.accepted_index)
                             : std::string("none"));
  out += " reject=" + std::to_string(static_cast<int>(r.outcome.last_reject));
  out += " total=" + std::to_string(r.points_total);
  out += " skipped=" + std::to_string(r.points_skipped);
  for (const auto& s : r.skipped_labels) out += "|" + s;
  for (const auto& p : r.outcome.predictions) {
    const char* bytes = reinterpret_cast<const char*>(&p);
    out.append(bytes, sizeof p);
  }
  return out;
}

void check_invariant(const ExploreStats& s) {
  EXPECT_EQ(s.points_skipped + s.points_bounded + s.points_evaluated +
                s.points_restored + s.points_pruned,
            s.points_total);
}

/// Monotone factory: speedup rises with parallelism and clock, falls with
/// format width (wider elements cost communication throughput) — exactly
/// the shape the corner bounds assume.
CandidateFactory monotone_factory(const core::RatInputs& base,
                                  double ops_per_unit,
                                  int multipliers_per_unit = 1) {
  return [base, ops_per_unit, multipliers_per_unit](const DesignPoint& p)
             -> std::optional<DesignCandidate> {
    DesignCandidate c;
    c.inputs = base;
    c.inputs.name = p.label();
    c.inputs.comp.throughput_ops_per_cycle =
        ops_per_unit * static_cast<double>(p.parallelism);
    c.inputs.dataset.bytes_per_element =
        static_cast<double>((p.format_bits + 7) / 8);
    c.resources = {ResourceItem{"units", multipliers_per_unit, p.format_bits,
                                0, 400, static_cast<int>(p.parallelism)}};
    return c;
  };
}

DesignAxes wide_axes() {
  DesignAxes axes;
  axes.parallelism = {1, 2, 4, 8, 16};
  axes.fclock_hz = {core::mhz(100), core::mhz(150)};
  axes.format_bits = {12, 18};
  return axes;
}

void expect_identical(const DesignAxes& axes, const CandidateFactory& factory,
                      const Requirements& req, const PruningPolicy& policy,
                      const char* what) {
  const auto device = rcsim::virtex4_lx100();
  const auto exhaustive =
      core::explore_design_space(axes, factory, req, device);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ExploreOptions opts;
    opts.policy = policy;
    opts.n_threads = threads;
    const auto pruned =
        explore_design_space_pruned(axes, factory, req, device, opts);
    EXPECT_EQ(render_result(pruned.design), render_result(exhaustive))
        << what << " (threads=" << threads << ")";
    EXPECT_EQ(pruned.winner_index, exhaustive.outcome.accepted_index)
        << what << " (threads=" << threads << ")";
    check_invariant(pruned.stats);
  }
}

TEST(ExploreIdentity, MatchesExhaustiveOnCaseStudyWorksheets) {
  // The paper's three case-study worksheets (Tables 2, 5, 8) behind a
  // parallelism/clock/format factory: winner, trace and prediction bits
  // must match the exhaustive scan exactly, at 1 and 8 threads.
  struct Case {
    core::RatInputs inputs;
    double ops_per_unit;
    double goal;
  };
  const Case cases[] = {
      {core::pdf1d_inputs(), 2.5, 7.0},
      {core::pdf2d_inputs(), 1.5, 5.0},
      {core::md_inputs(), 0.5, 2.0},
  };
  for (const Case& cs : cases) {
    Requirements req;
    req.min_speedup = cs.goal;
    expect_identical(wide_axes(), monotone_factory(cs.inputs, cs.ops_per_unit),
                     req, PruningPolicy{}, cs.inputs.name.c_str());
  }
}

TEST(ExploreIdentity, SkippedPointsAndExhaustedSpace) {
  DesignAxes axes = wide_axes();
  const CandidateFactory base = monotone_factory(core::pdf1d_inputs(), 2.5);
  const CandidateFactory factory =
      [base](const DesignPoint& p) -> std::optional<DesignCandidate> {
    if (p.parallelism == 4) return std::nullopt;  // indivisible
    return base(p);
  };
  Requirements req;
  req.min_speedup = 1e6;  // nothing passes: full no-solution trace
  expect_identical(axes, factory, req, PruningPolicy{}, "exhausted");
  req.min_speedup = 7.0;
  expect_identical(axes, factory, req, PruningPolicy{}, "skips");
}

TEST(ExploreIdentity, FallbackModesStayIdentical) {
  Requirements req;
  req.min_speedup = 7.0;
  const CandidateFactory factory = monotone_factory(core::pdf1d_inputs(), 2.5);
  PruningPolicy no_prune;
  no_prune.prune = false;
  expect_identical(wide_axes(), factory, req, no_prune, "prune=false");
  PruningPolicy no_bounds;
  no_bounds.assume_monotone = false;
  expect_identical(wide_axes(), factory, req, no_bounds,
                   "assume_monotone=false");
}

TEST(ExploreIdentity, NonMonotoneFactoryIsCaughtByBackfill) {
  // Speedup peaks mid-axis: the monotonicity claim is wrong, corner
  // bounds are inadmissible, and the full-trace backfill must repair
  // every mis-pruned point (possibly moving the winner earlier).
  DesignAxes axes;
  axes.parallelism = {1, 2, 4, 8, 16, 32};
  axes.fclock_hz = {core::mhz(100), core::mhz(150)};
  axes.format_bits = {12, 18};
  const core::RatInputs base = core::pdf1d_inputs();
  const CandidateFactory factory =
      [base](const DesignPoint& p) -> std::optional<DesignCandidate> {
    DesignCandidate c;
    c.inputs = base;
    c.inputs.name = p.label();
    const double x = static_cast<double>(p.parallelism);
    c.inputs.comp.throughput_ops_per_cycle = 2.5 * x * (40.0 - x) / 40.0;
    c.resources = {ResourceItem{"units", 1, p.format_bits, 0, 400,
                                static_cast<int>(p.parallelism)}};
    return c;
  };
  for (const double goal : {4.0, 7.0, 20.0, 1e6}) {
    Requirements req;
    req.min_speedup = goal;
    expect_identical(axes, factory, req, PruningPolicy{}, "non-monotone");
  }
}

TEST(ExploreIdentity, InvalidCandidateThrowsAtTheSamePoint) {
  DesignAxes axes;
  axes.parallelism = {1, 2, 4, 8};
  axes.fclock_hz = {core::mhz(100)};
  axes.format_bits = {18};
  const CandidateFactory base = monotone_factory(core::pdf1d_inputs(), 2.5);
  const CandidateFactory factory =
      [base](const DesignPoint& p) -> std::optional<DesignCandidate> {
    auto c = base(p);
    if (p.parallelism == 2) c->inputs.dataset.elements_in = 0;  // invalid
    return c;
  };
  const auto device = rcsim::virtex4_lx100();

  // Goal low enough that candidate 0 wins: the invalid candidate sits
  // past the winner and must never be touched.
  Requirements req;
  req.min_speedup = 0.5;
  const auto exhaustive = core::explore_design_space(axes, factory, req,
                                                     device);
  const auto pruned =
      explore_design_space_pruned(axes, factory, req, device);
  EXPECT_EQ(render_result(pruned.design), render_result(exhaustive));

  // Goal no candidate reaches: the exhaustive scan throws when it reaches
  // the invalid candidate — so must the pruned run.
  req.min_speedup = 1e9;
  std::string exhaustive_error, pruned_error;
  try {
    (void)core::explore_design_space(axes, factory, req, device);
  } catch (const std::exception& e) {
    exhaustive_error = e.what();
  }
  try {
    (void)explore_design_space_pruned(axes, factory, req, device);
  } catch (const std::exception& e) {
    pruned_error = e.what();
  }
  ASSERT_FALSE(exhaustive_error.empty());
  EXPECT_EQ(pruned_error, exhaustive_error);
}

TEST(ExplorePruning, LargeGridSavesMostFullEvaluations) {
  // 32 x 8 x 4 = 1024 points with a deep winner: branch-and-bound must
  // prove the failing bulk from corner predictions alone.
  DesignAxes axes;
  axes.parallelism.clear();
  for (std::size_t p = 1; p <= 32; ++p) axes.parallelism.push_back(p);
  axes.fclock_hz.clear();
  for (int f = 0; f < 8; ++f) axes.fclock_hz.push_back(core::mhz(80 + 10 * f));
  axes.format_bits = {12, 14, 16, 18};
  Requirements req;
  req.min_speedup = 8.0;
  const auto device = rcsim::virtex4_lx100();
  const CandidateFactory factory = monotone_factory(core::pdf1d_inputs(), 1.0);

  const auto exhaustive =
      core::explore_design_space(axes, factory, req, device);
  ASSERT_TRUE(exhaustive.outcome.proceed);
  // Exhaustive runs the full gate pipeline on every pre-winner candidate.
  const std::size_t exhaustive_evals = exhaustive.outcome.predictions.size();
  ASSERT_GT(exhaustive_evals, 400u);

  const auto pruned = explore_design_space_pruned(axes, factory, req, device);
  EXPECT_EQ(render_result(pruned.design), render_result(exhaustive));
  check_invariant(pruned.stats);
  EXPECT_GT(pruned.stats.points_bounded, 0u);
  EXPECT_GE(exhaustive_evals, 10 * pruned.stats.points_evaluated)
      << "evaluated " << pruned.stats.points_evaluated << " of "
      << exhaustive_evals;
}

TEST(ExplorePareto, FrontIsTheIncreasingSubsequenceAndMatchesExhaustive) {
  Requirements req;
  req.min_speedup = 7.0;
  const auto device = rcsim::virtex4_lx100();
  const CandidateFactory factory = monotone_factory(core::pdf1d_inputs(), 2.5);
  const auto exhaustive =
      core::explore_design_space(wide_axes(), factory, req, device);
  const auto pruned =
      explore_design_space_pruned(wide_axes(), factory, req, device);

  const auto expected = pareto_front(exhaustive.outcome, req.double_buffered);
  ASSERT_FALSE(expected.empty());
  ASSERT_EQ(pruned.front.size(), expected.size());
  double prev = -1.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(pruned.front[i].candidate_index, expected[i].candidate_index);
    EXPECT_EQ(pruned.front[i].name, expected[i].name);
    EXPECT_EQ(std::memcmp(&pruned.front[i].prediction,
                          &expected[i].prediction,
                          sizeof expected[i].prediction),
              0);
    EXPECT_GT(expected[i].prediction.speedup_sb, prev);
    prev = expected[i].prediction.speedup_sb;
  }
  // Cheapest-first enumeration: the front starts at the first candidate.
  EXPECT_EQ(expected.front().candidate_index, 0u);
}

TEST(ExploreElide, SparseTraceKeepsWinnerAndPredictionBits) {
  Requirements req;
  req.min_speedup = 7.0;
  const auto device = rcsim::virtex4_lx100();
  const CandidateFactory factory = monotone_factory(core::pdf1d_inputs(), 2.5);
  const auto exhaustive =
      core::explore_design_space(wide_axes(), factory, req, device);
  ASSERT_TRUE(exhaustive.outcome.proceed);

  ExploreOptions opts;
  opts.policy.full_trace = false;
  const auto elided =
      explore_design_space_pruned(wide_axes(), factory, req, device, opts);
  ASSERT_TRUE(elided.design.outcome.proceed);
  EXPECT_EQ(elided.winner_index, exhaustive.outcome.accepted_index);
  // Sparse: at most as many scored points, same winner prediction bits.
  EXPECT_LE(elided.design.outcome.predictions.size(),
            exhaustive.outcome.predictions.size());
  const auto& sparse_winner =
      elided.design.outcome.predictions[*elided.design.outcome.accepted_index];
  const auto& full_winner =
      exhaustive.outcome.predictions[*exhaustive.outcome.accepted_index];
  EXPECT_EQ(std::memcmp(&sparse_winner, &full_winner, sizeof full_winner), 0);
  EXPECT_EQ(elided.design.outcome.trace.back().candidate_name,
            exhaustive.outcome.trace.back().candidate_name);
  check_invariant(elided.stats);
}

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(ExploreCheckpoint, CheckpointsInteroperateWithExhaustive) {
  DesignAxes axes = wide_axes();
  Requirements req;
  req.min_speedup = 7.0;
  const auto device = rcsim::virtex4_lx100();
  const CandidateFactory factory = monotone_factory(core::pdf1d_inputs(), 2.5);
  const auto plain = core::explore_design_space(axes, factory, req, device);

  // Exhaustive writes the campaign checkpoint, the pruned explorer
  // resumes it: same campaign identity, every recorded point replays.
  {
    const fs::path dir = fresh_dir("explore_ckpt_fwd");
    core::DesignSpaceCheckpoint ckpt;
    ckpt.path = dir / "sweep.ckpt";
    (void)core::explore_design_space(axes, factory, req, device, 1, &ckpt);
    ExploreOptions opts;
    opts.checkpoint = &ckpt;
    const auto resumed =
        explore_design_space_pruned(axes, factory, req, device, opts);
    EXPECT_EQ(render_result(resumed.design), render_result(plain));
    EXPECT_GT(resumed.stats.points_restored, 0u);
    check_invariant(resumed.stats);
  }

  // And the other direction: pruned writes, exhaustive replays.
  {
    const fs::path dir = fresh_dir("explore_ckpt_bwd");
    core::DesignSpaceCheckpoint ckpt;
    ckpt.path = dir / "sweep.ckpt";
    ExploreOptions opts;
    opts.checkpoint = &ckpt;
    (void)explore_design_space_pruned(axes, factory, req, device, opts);
    const auto resumed =
        core::explore_design_space(axes, factory, req, device, 1, &ckpt);
    EXPECT_EQ(render_result(resumed), render_result(plain));
    EXPECT_GT(resumed.points_restored, 0u);
  }
}

TEST(ExploreValidation, RejectsDegenerateRuns) {
  const auto device = rcsim::virtex4_lx100();
  Requirements req;
  req.min_speedup = 0.0;
  EXPECT_THROW((void)explore_design_space_pruned(
                   DesignAxes{}, monotone_factory(core::pdf1d_inputs(), 2.5),
                   req, device),
               std::invalid_argument);
  req.min_speedup = 2.0;
  EXPECT_THROW(
      (void)explore_design_space_pruned(
          DesignAxes{},
          [](const DesignPoint&) -> std::optional<DesignCandidate> {
            return std::nullopt;
          },
          req, device),
      std::invalid_argument);
}

}  // namespace
}  // namespace rat::explore
