#include "explore/plan_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/designspace.hpp"
#include "core/units.hpp"
#include "explore/explorer.hpp"
#include "store/store.hpp"

namespace rat::explore {
namespace {

using core::CandidateFactory;
using core::DesignAxes;
using core::DesignCandidate;
using core::DesignPoint;
using core::Requirements;
using core::ResourceItem;

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string render_result(const core::DesignSpaceResult& r) {
  std::string out = r.outcome.render_trace();
  out += "proceed=" + std::to_string(r.outcome.proceed);
  out += " accepted=" + (r.outcome.accepted_index
                             ? std::to_string(*r.outcome.accepted_index)
                             : std::string("none"));
  for (const auto& p : r.outcome.predictions) {
    const char* bytes = reinterpret_cast<const char*>(&p);
    out.append(bytes, sizeof p);
  }
  return out;
}

/// Only full gate-pipeline runs are memoized (throughput rejections are
/// synthesized on the fly, cheaper than a cache probe). @p multipliers 200
/// makes every point pass throughput cheaply yet fail the resource gate,
/// so exhaust-the-space tests score — and cache — every point.
CandidateFactory simple_factory(int multipliers = 1) {
  return [multipliers](const DesignPoint& p)
             -> std::optional<DesignCandidate> {
    DesignCandidate c;
    c.inputs = core::pdf1d_inputs();
    c.inputs.name = p.label();
    c.inputs.comp.throughput_ops_per_cycle =
        2.5 * static_cast<double>(p.parallelism);
    c.resources = {ResourceItem{"units", multipliers, p.format_bits, 0, 400,
                                static_cast<int>(p.parallelism)}};
    return c;
  };
}

DesignAxes small_axes() {
  DesignAxes axes;
  axes.parallelism = {1, 2, 4, 8, 16};
  axes.fclock_hz = {core::mhz(100)};
  axes.format_bits = {18};
  return axes;
}

TEST(ExplorePlanCache, KeyIsCanonicalAndContextSensitive) {
  const auto device = rcsim::virtex4_lx100();
  Requirements req;
  const DesignCandidate cand = *simple_factory()(DesignPoint{});
  const std::string k = PlanCache::key(cand, req, device);
  EXPECT_EQ(k.substr(0, 17), "rat.plan.v1|cand=");
  EXPECT_EQ(k.size(), 17u + 16u + 5u + 16u);
  EXPECT_EQ(k, PlanCache::key(cand, req, device));  // pure function

  Requirements other = req;
  other.min_speedup += 1.0;
  EXPECT_NE(PlanCache::key(cand, other, device), k);
  DesignCandidate moved = cand;
  moved.decision_clock_hz += 1.0;
  EXPECT_NE(PlanCache::key(moved, req, device), k);
}

TEST(ExplorePlanCache, WarmRerunEliminatesEveryEvaluation) {
  const auto device = rcsim::virtex4_lx100();
  Requirements req;
  req.min_speedup = 7.0;
  const fs::path dir = fresh_dir("plan_cache_warm");
  const auto plain = explore_design_space_pruned(small_axes(),
                                                 simple_factory(), req,
                                                 device);

  PlanCache cold_cache(dir);
  ExploreOptions opts;
  opts.plan_cache = &cold_cache;
  const auto cold = explore_design_space_pruned(small_axes(), simple_factory(),
                                                req, device, opts);
  EXPECT_EQ(render_result(cold.design), render_result(plain.design));
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  EXPECT_GT(cold.stats.cache_puts, 0u);
  EXPECT_GT(cold.stats.points_evaluated, 0u);

  // A fresh process (fresh PlanCache handle) over the same directory:
  // byte-identical result, zero fresh gate-pipeline runs.
  PlanCache warm_cache(dir);
  EXPECT_EQ(warm_cache.size(), cold.stats.cache_puts);
  opts.plan_cache = &warm_cache;
  const auto warm = explore_design_space_pruned(small_axes(), simple_factory(),
                                                req, device, opts);
  EXPECT_EQ(render_result(warm.design), render_result(plain.design));
  EXPECT_EQ(warm.stats.points_evaluated, 0u);
  EXPECT_GT(warm.stats.cache_hits, 0u);
  EXPECT_EQ(warm.stats.points_restored, cold.stats.points_evaluated);
}

TEST(ExplorePlanCache, OverlappingCampaignReusesSharedPoints) {
  // Content addressing, not positions: a second campaign whose axes merely
  // overlap the first replays the shared points even though their
  // enumeration indices differ (the trace is re-stamped on decode).
  const auto device = rcsim::virtex4_lx100();
  Requirements req;
  req.min_speedup = 0.5;  // every point passes throughput ...
  const CandidateFactory factory = simple_factory(200);  // ... fails resources
  const fs::path dir = fresh_dir("plan_cache_overlap");

  DesignAxes first = small_axes();
  first.parallelism = {1, 2, 4, 8};
  PlanCache cache_a(dir);
  ExploreOptions opts;
  opts.plan_cache = &cache_a;
  (void)explore_design_space_pruned(first, factory, req, device, opts);

  DesignAxes second = small_axes();
  second.parallelism = {2, 4, 8, 16};  // 3 of 4 points shared
  const auto plain =
      explore_design_space_pruned(second, factory, req, device);
  PlanCache cache_b(dir);
  opts.plan_cache = &cache_b;
  const auto reused =
      explore_design_space_pruned(second, factory, req, device, opts);
  EXPECT_EQ(render_result(reused.design), render_result(plain.design));
  EXPECT_EQ(reused.stats.cache_hits, 3u);
  EXPECT_EQ(reused.stats.points_restored, 3u);
}

TEST(ExplorePlanCache, ChangedRequirementsNeverMatchStaleEntries) {
  const auto device = rcsim::virtex4_lx100();
  const CandidateFactory factory = simple_factory(200);
  Requirements req;
  req.min_speedup = 0.5;
  const fs::path dir = fresh_dir("plan_cache_stale");
  {
    PlanCache cache(dir);
    ExploreOptions opts;
    opts.plan_cache = &cache;
    const auto cold =
        explore_design_space_pruned(small_axes(), factory, req, device, opts);
    ASSERT_GT(cold.stats.cache_puts, 0u);
  }
  // A different goal is a different evaluation context: every key misses,
  // nothing stale is ever replayed.
  req.min_speedup = 0.7;
  const auto plain =
      explore_design_space_pruned(small_axes(), factory, req, device);
  PlanCache cache(dir);
  ExploreOptions opts;
  opts.plan_cache = &cache;
  const auto rerun =
      explore_design_space_pruned(small_axes(), factory, req, device, opts);
  EXPECT_EQ(render_result(rerun.design), render_result(plain.design));
  EXPECT_EQ(rerun.stats.cache_hits, 0u);
  EXPECT_EQ(rerun.stats.points_restored, 0u);
}

TEST(ExplorePlanCache, UndecodablePayloadIsAMissNotAnError) {
  const auto device = rcsim::virtex4_lx100();
  const CandidateFactory factory = simple_factory(200);
  Requirements req;
  req.min_speedup = 0.5;
  const fs::path dir = fresh_dir("plan_cache_corrupt");
  std::size_t n_cached = 0;
  {
    PlanCache cache(dir);
    ExploreOptions opts;
    opts.plan_cache = &cache;
    const auto cold =
        explore_design_space_pruned(small_axes(), factory, req, device, opts);
    n_cached = cold.stats.cache_puts;
  }
  ASSERT_GT(n_cached, 0u);
  // Overwrite every cached value with garbage (valid store records whose
  // payloads no longer decode): lookups must degrade to misses and the
  // run must quietly re-evaluate and re-cache.
  {
    store::DurableStore raw(dir);
    const auto candidates = core::enumerate_design_space(small_axes(), factory);
    for (const auto& cand : candidates) {
      const std::string key = PlanCache::key(cand, req, device);
      if (raw.get(key)) raw.put(key, "\x7fgarbage");
    }
  }
  const auto plain =
      explore_design_space_pruned(small_axes(), factory, req, device);
  PlanCache cache(dir);
  ExploreOptions opts;
  opts.plan_cache = &cache;
  const auto rerun =
      explore_design_space_pruned(small_axes(), factory, req, device, opts);
  EXPECT_EQ(render_result(rerun.design), render_result(plain.design));
  EXPECT_EQ(rerun.stats.cache_hits, 0u);
  EXPECT_EQ(rerun.stats.points_evaluated, plain.stats.points_evaluated);

  // The re-cached entries are good again.
  PlanCache healed(dir);
  opts.plan_cache = &healed;
  const auto warm =
      explore_design_space_pruned(small_axes(), factory, req, device, opts);
  EXPECT_EQ(warm.stats.points_evaluated, 0u);
}

TEST(ExplorePlanCache, CacheAndCheckpointComposeByteIdentically) {
  const auto device = rcsim::virtex4_lx100();
  Requirements req;
  req.min_speedup = 7.0;
  const auto plain =
      explore_design_space_pruned(small_axes(), simple_factory(), req, device);
  const fs::path dir = fresh_dir("plan_cache_compose");
  core::DesignSpaceCheckpoint ckpt;
  ckpt.path = dir / "sweep.ckpt";
  PlanCache cache(dir / "plans");
  ExploreOptions opts;
  opts.checkpoint = &ckpt;
  opts.plan_cache = &cache;
  const auto first = explore_design_space_pruned(small_axes(), simple_factory(),
                                                 req, device, opts);
  EXPECT_EQ(render_result(first.design), render_result(plain.design));
  const auto second = explore_design_space_pruned(
      small_axes(), simple_factory(), req, device, opts);
  EXPECT_EQ(render_result(second.design), render_result(plain.design));
  EXPECT_EQ(second.stats.points_evaluated, 0u);
}

}  // namespace
}  // namespace rat::explore
