// Property: whatever the axes, requirements and factory look like, the
// branch-and-bound explorer in full-trace mode is indistinguishable from
// the exhaustive scan — including factories that break the monotonicity
// the corner bounds assume, factories that skip points, and spaces with
// no solution — and its per-point accounting always partitions the grid.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>

#include "core/designspace.hpp"
#include "core/units.hpp"
#include "explore/explorer.hpp"
#include "util/rng.hpp"

namespace rat::explore {
namespace {

using core::CandidateFactory;
using core::DesignAxes;
using core::DesignCandidate;
using core::DesignPoint;
using core::Requirements;
using core::ResourceItem;

std::string render_result(const core::DesignSpaceResult& r) {
  std::string out = r.outcome.render_trace();
  out += "proceed=" + std::to_string(r.outcome.proceed);
  out += " accepted=" + (r.outcome.accepted_index
                             ? std::to_string(*r.outcome.accepted_index)
                             : std::string("none"));
  out += " reject=" + std::to_string(static_cast<int>(r.outcome.last_reject));
  out += " skipped=" + std::to_string(r.points_skipped);
  for (const auto& s : r.skipped_labels) out += "|" + s;
  for (const auto& p : r.outcome.predictions) {
    const char* bytes = reinterpret_cast<const char*>(&p);
    out.append(bytes, sizeof p);
  }
  return out;
}

/// Deterministic per-point hash so the factory's skip decision is a pure
/// function of the point (factories run once per explorer).
std::uint64_t point_hash(const DesignPoint& p) {
  std::uint64_t h = 1469598103934665603ull;
  h = (h ^ p.parallelism) * 1099511628211ull;
  h = (h ^ static_cast<std::uint64_t>(p.format_bits)) * 1099511628211ull;
  h = (h ^ static_cast<std::uint64_t>(p.fclock_hz / 1e6)) * 1099511628211ull;
  return h;
}

TEST(ExploreProperty, FuzzedSpacesMatchExhaustiveBitForBit) {
  util::Rng rng(20260808);
  for (int iter = 0; iter < 40; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    DesignAxes axes;
    axes.parallelism.clear();
    std::size_t par = 1 + rng.uniform_index(2);
    for (std::size_t i = 1 + rng.uniform_index(6); i > 0; --i) {
      axes.parallelism.push_back(par);
      par += 1 + rng.uniform_index(4);
    }
    axes.fclock_hz.clear();
    double fclock = core::mhz(50.0 + 10.0 * rng.uniform_index(5));
    for (std::size_t i = 1 + rng.uniform_index(4); i > 0; --i) {
      axes.fclock_hz.push_back(fclock);
      fclock += core::mhz(10.0 + 10.0 * rng.uniform_index(4));
    }
    axes.format_bits.clear();
    int bits = 10 + static_cast<int>(rng.uniform_index(4));
    for (std::size_t i = 1 + rng.uniform_index(4); i > 0; --i) {
      axes.format_bits.push_back(bits);
      bits += 1 + static_cast<int>(rng.uniform_index(3));
    }

    const double ops = rng.uniform(0.3, 3.0);
    const bool non_monotone = rng.uniform() < 0.4;
    const std::uint64_t skip_pct =
        rng.uniform() < 0.5 ? 0 : rng.uniform_index(30);
    const int multipliers = 1 + static_cast<int>(rng.uniform_index(3)) * 12;
    const CandidateFactory factory =
        [ops, non_monotone, skip_pct,
         multipliers](const DesignPoint& p) -> std::optional<DesignCandidate> {
      if (point_hash(p) % 100 < skip_pct) return std::nullopt;
      DesignCandidate c;
      c.inputs = core::pdf1d_inputs();
      c.inputs.name = p.label();
      double scale = static_cast<double>(p.parallelism);
      if (non_monotone)
        scale *= 1.0 + 0.5 * std::sin(2.7 * scale +
                                      static_cast<double>(p.format_bits));
      c.inputs.comp.throughput_ops_per_cycle = ops * scale;
      c.inputs.dataset.bytes_per_element =
          static_cast<double>((p.format_bits + 7) / 8);
      c.resources = {ResourceItem{"units", multipliers, p.format_bits, 0, 400,
                                  static_cast<int>(p.parallelism)}};
      return c;
    };

    Requirements req;
    req.min_speedup = rng.uniform(0.5, 30.0);
    req.double_buffered = rng.uniform() < 0.3;
    const auto device = rcsim::virtex4_lx100();

    core::DesignSpaceResult exhaustive;
    bool exhaustive_threw = false;
    try {
      exhaustive = core::explore_design_space(axes, factory, req, device);
    } catch (const std::invalid_argument&) {
      exhaustive_threw = true;  // factory skipped every point
    }

    ExploreOptions opts;
    opts.n_threads = 1 + rng.uniform_index(4);
    if (exhaustive_threw) {
      EXPECT_THROW(
          (void)explore_design_space_pruned(axes, factory, req, device, opts),
          std::invalid_argument);
      continue;
    }
    const auto pruned =
        explore_design_space_pruned(axes, factory, req, device, opts);
    EXPECT_EQ(render_result(pruned.design), render_result(exhaustive));
    EXPECT_EQ(pruned.winner_index, exhaustive.outcome.accepted_index);
    const ExploreStats& s = pruned.stats;
    EXPECT_EQ(s.points_skipped + s.points_bounded + s.points_evaluated +
                  s.points_restored + s.points_pruned,
              s.points_total);
    EXPECT_EQ(s.points_total, axes.size());
    EXPECT_EQ(s.points_skipped, exhaustive.points_skipped);
    if (!non_monotone) EXPECT_EQ(s.bound_violations, 0u);

    // The Pareto front is a pure function of the outcome, so pruned and
    // exhaustive fronts agree; it must be strictly increasing in the
    // gate-mode speedup.
    const auto front = pareto_front(exhaustive.outcome, req.double_buffered);
    ASSERT_EQ(pruned.front.size(), front.size());
    double prev = -1.0;
    for (const auto& point : front) {
      const double s_mode = req.double_buffered
                                ? point.prediction.speedup_db
                                : point.prediction.speedup_sb;
      EXPECT_GT(s_mode, prev);
      prev = s_mode;
    }

    // Elide mode must land on the same winner whenever the monotonicity
    // claim actually holds.
    if (!non_monotone) {
      ExploreOptions elide = opts;
      elide.policy.full_trace = false;
      const auto sparse =
          explore_design_space_pruned(axes, factory, req, device, elide);
      EXPECT_EQ(sparse.winner_index, exhaustive.outcome.accepted_index);
    }
  }
}

}  // namespace
}  // namespace rat::explore
