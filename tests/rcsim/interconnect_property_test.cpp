// Structural properties of the interconnect model across randomized
// parameters: transfer time is affine and strictly increasing in size,
// alpha is monotone in size and bounded by sustained/documented, and the
// app path never beats the microbenchmark path.
#include <gtest/gtest.h>

#include "rcsim/interconnect.hpp"
#include "util/rng.hpp"

namespace rat::rcsim {
namespace {

Link random_link(std::uint64_t seed) {
  util::Rng rng(seed);
  const double documented = rng.uniform(1e8, 4e9);
  auto dir = [&] {
    return LinkDirection{rng.uniform(0.0, 5e-5),
                         rng.uniform(0.3, 1.2) * documented,
                         rng.uniform(0.0, 2e-5)};
  };
  return Link("rand", documented, dir(), dir());
}

class InterconnectProperties : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(InterconnectProperties, TimeAffineAndIncreasing) {
  const Link link = random_link(GetParam());
  for (auto dir : {Direction::kHostToFpga, Direction::kFpgaToHost}) {
    const double t1 = link.single_transfer_time(1000, dir);
    const double t2 = link.single_transfer_time(2000, dir);
    const double t3 = link.single_transfer_time(3000, dir);
    EXPECT_GT(t2, t1);
    // Affine: equal increments in size give equal increments in time.
    EXPECT_NEAR(t3 - t2, t2 - t1, 1e-15 + 1e-9 * (t2 - t1));
    // App path adds exactly the rearm cost.
    EXPECT_NEAR(link.app_transfer_time(2000, dir) - t2,
                link.direction(dir).rearm_sec, 1e-18);
  }
}

TEST_P(InterconnectProperties, AlphaMonotoneAndBounded) {
  const Link link = random_link(GetParam() ^ 0xBEEF);
  for (auto dir : {Direction::kHostToFpga, Direction::kFpgaToHost}) {
    const double cap =
        link.direction(dir).sustained_bw / link.documented_bw();
    double prev = 0.0;
    for (std::size_t bytes = 64; bytes <= (16u << 20); bytes *= 4) {
      const double a = link.measured_alpha(bytes, dir);
      EXPECT_GE(a, prev - 1e-12);      // monotone non-decreasing in size
      EXPECT_LE(a, cap + 1e-12);       // bounded by the sustained ratio
      prev = a;
    }
    // Large-transfer limit approaches the cap when overhead is amortized.
    EXPECT_NEAR(link.measured_alpha(1u << 30, dir), cap, 0.05 * cap);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterconnectProperties,
                         ::testing::Range<std::uint64_t>(3000, 3025));

}  // namespace
}  // namespace rat::rcsim
