#include "rcsim/executor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rcsim/platform.hpp"

namespace rat::rcsim {
namespace {

/// A synthetic link with clean numbers: no overheads, 1 GB/s both ways.
Link clean_link(double rearm = 0.0) {
  return Link("clean", 1e9, LinkDirection{0.0, 1e9, rearm},
              LinkDirection{0.0, 1e9, rearm});
}

Workload uniform_workload(std::size_t iters, std::size_t in_bytes,
                          std::size_t out_bytes, std::uint64_t cycles) {
  Workload w;
  w.n_iterations = iters;
  w.io = [=](std::size_t) {
    IterationIo io;
    io.input_chunks_bytes = {in_bytes};
    io.output_chunks_bytes = {out_bytes};
    return io;
  };
  w.cycles = [=](std::size_t) { return cycles; };
  return w;
}

ExecutionConfig config(Buffering b, double fclock = 1e6,
                       double sync = 0.0) {
  ExecutionConfig c;
  c.buffering = b;
  c.fclock_hz = fclock;
  c.host_sync_sec = sync;
  return c;
}

TEST(Executor, ValidatesInputs) {
  const Link link = clean_link();
  Workload w = uniform_workload(1, 100, 100, 10);
  w.n_iterations = 0;
  EXPECT_THROW(execute(w, link, config(Buffering::kSingle)),
               std::invalid_argument);
  Workload w2 = uniform_workload(1, 100, 100, 10);
  w2.io = nullptr;
  EXPECT_THROW(execute(w2, link, config(Buffering::kSingle)),
               std::invalid_argument);
  Workload w3 = uniform_workload(1, 100, 100, 10);
  EXPECT_THROW(execute(w3, link, config(Buffering::kSingle, 0.0)),
               std::invalid_argument);
}

TEST(Executor, SingleBufferedIsStrictlySerial) {
  // Eq. (5): tRC,SB = Niter * (tcomm + tcomp).
  const Link link = clean_link();
  // in 1000 B -> 1 us, out 500 B -> 0.5 us, 100 cycles at 1 MHz -> 100 us.
  const Workload w = uniform_workload(10, 1000, 500, 100);
  const auto r = execute(w, link, config(Buffering::kSingle));
  EXPECT_NEAR(r.t_total_sec, 10 * (1.5e-6 + 1e-4), 1e-12);
  EXPECT_NEAR(r.t_comm_sec, 10 * 1.5e-6, 1e-12);
  EXPECT_NEAR(r.t_comp_sec, 10 * 1e-4, 1e-12);
  EXPECT_TRUE(r.timeline.lanes_consistent());
}

TEST(Executor, DoubleBufferedComputationBoundHidesCommunication) {
  // Eq. (6): tRC,DB ~= Niter * max(tcomm, tcomp) for large Niter.
  const Link link = clean_link();
  const std::size_t n = 50;
  const Workload w = uniform_workload(n, 1000, 500, 100);  // comp-bound
  const auto r = execute(w, link, config(Buffering::kDouble));
  // First input (1 us) is exposed; everything else overlaps compute.
  EXPECT_NEAR(r.t_total_sec, 1e-6 + n * 1e-4 + 0.5e-6, 1e-9);
  EXPECT_TRUE(r.timeline.lanes_consistent());
}

TEST(Executor, DoubleBufferedCommunicationBound) {
  const Link link = clean_link();
  const std::size_t n = 50;
  // comm: 100+50 us per iteration; comp: 10 us -> communication bound.
  const Workload w = uniform_workload(n, 100000, 50000, 10);
  const auto r = execute(w, link, config(Buffering::kDouble));
  // Bus is saturated: total ~= Niter * tcomm (+ tail compute).
  const double tcomm = 1.5e-4;
  EXPECT_NEAR(r.t_total_sec, n * tcomm + 1e-5, 0.01 * n * tcomm);
  EXPECT_TRUE(r.timeline.lanes_consistent());
}

TEST(Executor, DoubleBufferedNeverSlowerThanSingle) {
  const Link link = clean_link();
  for (std::uint64_t cycles : {1u, 50u, 200u, 5000u}) {
    const Workload w = uniform_workload(20, 10000, 10000, cycles);
    const auto sb = execute(w, link, config(Buffering::kSingle));
    const auto db = execute(w, link, config(Buffering::kDouble));
    EXPECT_LE(db.t_total_sec, sb.t_total_sec + 1e-12) << cycles;
  }
}

TEST(Executor, DoubleBufferingPrefetchesNextInput) {
  // Fig. 2 ordering: R2 runs while C1 computes, before W1.
  const Link link = clean_link();
  const Workload w = uniform_workload(3, 1000, 1000, 1000);
  const auto r = execute(w, link, config(Buffering::kDouble));
  // Find input of iteration 1 and compute of iteration 0.
  double in1_start = -1, c0_start = -1, c0_end = -1;
  for (const auto& e : r.timeline.events()) {
    if (e.kind == EventKind::kInputTransfer && e.iteration == 1)
      in1_start = e.start_sec;
    if (e.kind == EventKind::kCompute && e.iteration == 0) {
      c0_start = e.start_sec;
      c0_end = e.end_sec;
    }
  }
  ASSERT_GE(in1_start, 0.0);
  EXPECT_LT(in1_start, c0_end);  // overlaps compute 0
  EXPECT_GE(in1_start, c0_start - 1e-12);
}

TEST(Executor, SingleBufferedDoesNotPrefetch) {
  const Link link = clean_link();
  const Workload w = uniform_workload(3, 1000, 1000, 1000);
  const auto r = execute(w, link, config(Buffering::kSingle));
  for (const auto& e : r.timeline.events()) {
    if (e.kind == EventKind::kInputTransfer && e.iteration == 1) {
      // Input 1 must start only after output 0 completed.
      for (const auto& o : r.timeline.events()) {
        if (o.kind == EventKind::kOutputTransfer && o.iteration == 0) {
          EXPECT_GE(e.start_sec, o.end_sec - 1e-12);
        }
      }
    }
  }
}

TEST(Executor, HostSyncAddsToWallClockNotComm) {
  const Link link = clean_link();
  const Workload w = uniform_workload(10, 1000, 500, 100);
  const auto base = execute(w, link, config(Buffering::kSingle));
  const auto synced =
      execute(w, link, config(Buffering::kSingle, 1e6, 2e-5));
  EXPECT_NEAR(synced.t_total_sec, base.t_total_sec + 10 * 2e-5, 1e-12);
  EXPECT_DOUBLE_EQ(synced.t_comm_sec, base.t_comm_sec);
  EXPECT_NEAR(synced.t_sync_sec, 10 * 2e-5, 1e-15);
}

TEST(Executor, RearmPenaltyChargedPerTransfer) {
  const Link with_rearm = clean_link(1e-6);
  const Link without_rearm = clean_link(0.0);
  const Workload w = uniform_workload(10, 1000, 500, 100);
  const auto a = execute(w, with_rearm, config(Buffering::kSingle));
  const auto b = execute(w, without_rearm, config(Buffering::kSingle));
  EXPECT_NEAR(a.t_comm_sec - b.t_comm_sec, 20 * 1e-6, 1e-12);
}

TEST(Executor, ChunkedOutputSerializesOnBus) {
  const Link link = clean_link();
  Workload w;
  w.n_iterations = 2;
  w.io = [](std::size_t) {
    IterationIo io;
    io.input_chunks_bytes = {1000};
    io.output_chunks_bytes = std::vector<std::size_t>(8, 500);  // 8 chunks
    return io;
  };
  w.cycles = [](std::size_t) { return std::uint64_t{100}; };
  const auto r = execute(w, link, config(Buffering::kSingle));
  EXPECT_NEAR(r.t_comm_sec, 2 * (1e-6 + 8 * 0.5e-6), 1e-12);
  EXPECT_TRUE(r.timeline.lanes_consistent());
}

TEST(Executor, UtilizationsSumToOne) {
  const Link link = clean_link();
  const Workload w = uniform_workload(5, 1000, 1000, 777);
  const auto r = execute(w, link, config(Buffering::kSingle));
  EXPECT_NEAR(r.util_comm + r.util_comp, 1.0, 1e-12);
  EXPECT_GT(r.util_comp, r.util_comm);  // computation bound here
}

TEST(Executor, PerIterationAverages) {
  const Link link = clean_link();
  const Workload w = uniform_workload(4, 1000, 0, 100);
  const auto r = execute(w, link, config(Buffering::kSingle));
  EXPECT_NEAR(r.per_iter_comm(4), 1e-6, 1e-12);
  EXPECT_NEAR(r.per_iter_comp(4), 1e-4, 1e-12);
  EXPECT_DOUBLE_EQ(r.per_iter_comm(0), 0.0);
}

TEST(Executor, TimelineCoversAllIterations) {
  const Link link = clean_link();
  const std::size_t n = 7;
  const Workload w = uniform_workload(n, 100, 100, 10);
  for (auto buf : {Buffering::kSingle, Buffering::kDouble}) {
    const auto r = execute(w, link, config(buf));
    std::size_t computes = 0;
    for (const auto& e : r.timeline.events())
      if (e.kind == EventKind::kCompute) ++computes;
    EXPECT_EQ(computes, n);
  }
}

TEST(Executor, JitterIsDeterministicPerSeed) {
  Link link = nallatech_pcix_link();
  link.set_jitter(0.25);
  const Workload w = uniform_workload(20, 2048, 4, 21056);
  ExecutionConfig c = config(Buffering::kSingle, 150e6);
  c.seed = 99;
  const auto a = execute(w, link, c);
  const auto b = execute(w, link, c);
  EXPECT_DOUBLE_EQ(a.t_total_sec, b.t_total_sec);
  c.seed = 100;
  const auto d = execute(w, link, c);
  EXPECT_NE(a.t_total_sec, d.t_total_sec);
}

}  // namespace
}  // namespace rat::rcsim
