#include "rcsim/resources.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rat::rcsim {
namespace {

TEST(ResourceUsage, Arithmetic) {
  const ResourceUsage a{1, 2, 3};
  const ResourceUsage b{10, 20, 30};
  const ResourceUsage sum = a + b;
  EXPECT_EQ(sum, (ResourceUsage{11, 22, 33}));
  EXPECT_EQ(a * 4, (ResourceUsage{4, 8, 12}));
}

TEST(Utilization, Fractions) {
  const DeviceResources avail{100, 200, 1000};
  const auto rep = utilization(ResourceUsage{50, 20, 900}, avail);
  EXPECT_DOUBLE_EQ(rep.dsp_fraction, 0.5);
  EXPECT_DOUBLE_EQ(rep.bram_fraction, 0.1);
  EXPECT_DOUBLE_EQ(rep.logic_fraction, 0.9);
  EXPECT_DOUBLE_EQ(rep.max_fraction(), 0.9);
  EXPECT_EQ(rep.binding_resource(), "logic");
}

TEST(Utilization, ZeroInventoryTreatedAsFullWhenUsed) {
  const DeviceResources avail{0, 10, 10};
  const auto used = utilization(ResourceUsage{1, 0, 0}, avail);
  EXPECT_DOUBLE_EQ(used.dsp_fraction, 1.0);
  const auto unused = utilization(ResourceUsage{0, 0, 0}, avail);
  EXPECT_DOUBLE_EQ(unused.dsp_fraction, 0.0);
}

TEST(Utilization, BindingResourcePreference) {
  const DeviceResources avail{10, 10, 10};
  EXPECT_EQ(utilization(ResourceUsage{9, 1, 1}, avail).binding_resource(),
            "dsp");
  EXPECT_EQ(utilization(ResourceUsage{1, 9, 1}, avail).binding_resource(),
            "bram");
}

TEST(ResourceTracker, AccumulatesComponents) {
  ResourceTracker t(DeviceResources{96, 240, 49152});
  t.add("pipeline", ResourceUsage{8, 0, 3200});
  t.add("buffers", ResourceUsage{0, 33, 900});
  EXPECT_EQ(t.total(), (ResourceUsage{8, 33, 4100}));
  EXPECT_EQ(t.components().size(), 2u);
  EXPECT_EQ(t.components()[0].name, "pipeline");
  EXPECT_TRUE(t.feasible());
}

TEST(ResourceTracker, InfeasibleWhenDspOverflows) {
  ResourceTracker t(DeviceResources{96, 240, 49152});
  t.add("too many MACs", ResourceUsage{97, 0, 0});
  EXPECT_FALSE(t.feasible());
}

TEST(ResourceTracker, DspAndBramMayFillCompletely) {
  ResourceTracker t(DeviceResources{96, 240, 49152}, 0.9);
  t.add("full DSP+BRAM", ResourceUsage{96, 240, 0});
  EXPECT_TRUE(t.feasible());
}

TEST(ResourceTracker, LogicBoundByPracticalFillLimit) {
  // Paper §3.3: routing strain makes filling all logic unwise.
  ResourceTracker t(DeviceResources{96, 240, 1000}, 0.9);
  t.add("logic", ResourceUsage{0, 0, 901});
  EXPECT_FALSE(t.feasible());
  ResourceTracker t2(DeviceResources{96, 240, 1000}, 0.9);
  t2.add("logic", ResourceUsage{0, 0, 900});
  EXPECT_TRUE(t2.feasible());
}

TEST(ResourceTracker, RejectsInvalidInputs) {
  EXPECT_THROW(ResourceTracker(DeviceResources{}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ResourceTracker(DeviceResources{}, 1.5),
               std::invalid_argument);
  ResourceTracker t(DeviceResources{1, 1, 1});
  EXPECT_THROW(t.add("neg", ResourceUsage{-1, 0, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace rat::rcsim
