#include "rcsim/cycle_sim.hpp"

#include <gtest/gtest.h>

namespace rat::rcsim {
namespace {

PipelineSpec spec(double ii, double stall, std::uint64_t depth,
                  std::uint64_t instances = 1, double ops = 4.0) {
  PipelineSpec s;
  s.name = "t";
  s.initiation_interval = ii;
  s.stall_per_item = stall;
  s.depth = depth;
  s.instances = instances;
  s.ops_per_item = ops;
  return s;
}

TEST(CycleSim, ZeroItems) {
  const auto b = simulate_pipeline(spec(1.0, 0.0, 10), 0);
  EXPECT_EQ(b.total_cycles, 0u);
  EXPECT_DOUBLE_EQ(b.issue_fraction(), 0.0);
}

TEST(CycleSim, FullyPipelinedBreakdown) {
  const auto s = spec(1.0, 0.0, 10);
  const auto b = simulate_pipeline(s, 100);
  EXPECT_EQ(b.total_cycles, 110u);
  EXPECT_EQ(b.issue_cycles, 100u);
  EXPECT_EQ(b.ii_cycles, 0u);
  EXPECT_EQ(b.stall_cycles, 0u);
  EXPECT_EQ(b.drain_cycles, 10u);
}

TEST(CycleSim, StallsAccountedSeparately) {
  const auto s = spec(1.0, 3.0, 5);
  const auto b = simulate_pipeline(s, 50);
  EXPECT_EQ(b.issue_cycles, 50u);
  EXPECT_EQ(b.stall_cycles, 150u);
  EXPECT_EQ(b.total_cycles, 205u);
}

TEST(CycleSim, IiCyclesForMultiCycleItems) {
  const auto s = spec(4.0, 0.0, 8);
  const auto b = simulate_pipeline(s, 25);
  EXPECT_EQ(b.issue_cycles, 25u);
  EXPECT_EQ(b.ii_cycles, 75u);  // 3 extra cycles per item
  EXPECT_EQ(b.stall_cycles, 0u);
  EXPECT_EQ(b.total_cycles, 108u);
}

TEST(CycleSim, BreakdownPartitionsTotal) {
  for (double ii : {1.0, 1.5, 3.0, 32.0}) {
    for (double stall : {0.0, 2.0, 9.0}) {
      const auto s = spec(ii, stall, 17);
      const auto b = simulate_pipeline(s, 777);
      EXPECT_EQ(b.issue_cycles + b.ii_cycles + b.stall_cycles +
                    b.drain_cycles,
                b.total_cycles)
          << ii << " " << stall;
    }
  }
}

// The central property: the cycle-level simulation agrees exactly with the
// closed-form model across the parameter space.
class CycleSimEquivalence
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(CycleSimEquivalence, MatchesClosedForm) {
  const auto [ii, stall, items] = GetParam();
  for (std::uint64_t instances : {1u, 2u, 4u, 7u}) {
    const auto s = spec(ii, stall, 64, instances);
    const auto b = simulate_pipeline(s, static_cast<std::uint64_t>(items));
    EXPECT_EQ(b.total_cycles,
              pipeline_cycles(s, static_cast<std::uint64_t>(items)))
        << "ii=" << ii << " stall=" << stall << " items=" << items
        << " instances=" << instances;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CycleSimEquivalence,
    ::testing::Combine(::testing::Values(1.0, 1.5, 3.0, 6144.0),
                       ::testing::Values(0.0, 1.0, 9.0),
                       ::testing::Values(1, 2, 99, 512, 1024)));

TEST(CycleSim, Pdf1dOccupancyExplainsDerating) {
  // The paper derated 24 ideal ops/cycle to 20 for "latency and pipeline
  // stalls"; the simulated breakdown shows those cycles explicitly.
  PipelineSpec s;
  s.name = "pdf1d";
  s.depth = 64;
  s.initiation_interval = 32.0;
  s.stall_per_item = 9.0;
  s.instances = 1;
  s.ops_per_item = 768.0;
  const auto b = simulate_pipeline(s, 512);
  EXPECT_NEAR(b.effective_ops_per_cycle(s, 512), 18.7, 0.2);
  // Stall cycles are ~22% of the busy time — the derate's origin.
  const double stall_share =
      static_cast<double>(b.stall_cycles) /
      static_cast<double>(b.total_cycles);
  EXPECT_NEAR(stall_share, 9.0 / 41.0, 0.01);
}

}  // namespace
}  // namespace rat::rcsim
