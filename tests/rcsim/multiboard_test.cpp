#include "rcsim/multiboard.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/composition.hpp"
#include "core/units.hpp"

namespace rat::rcsim {
namespace {

Link clean_link() {
  return Link("clean", 1e9, LinkDirection{0.0, 1e9, 0.0},
              LinkDirection{0.0, 1e9, 0.0});
}

TEST(MultiBoard, Validation) {
  const Link link = clean_link();
  MultiBoardWorkload empty;
  EXPECT_THROW(execute_multiboard(empty, link, 1e8),
               std::invalid_argument);
  MultiBoardWorkload w;
  w.boards = {BoardShare{100, 100, 10}};
  w.n_iterations = 0;
  EXPECT_THROW(execute_multiboard(w, link, 1e8), std::invalid_argument);
  w.n_iterations = 1;
  EXPECT_THROW(execute_multiboard(w, link, 0.0), std::invalid_argument);
}

TEST(MultiBoard, SingleBoardMatchesScalarExpectation) {
  MultiBoardWorkload w;
  w.boards = {BoardShare{100000, 100000, 1000000}};  // 100+100us bus, 1ms comp
  w.n_iterations = 20;
  const auto r = execute_multiboard(w, clean_link(), 1e9);
  // Compute bound: ~ n * 1 ms.
  EXPECT_NEAR(r.t_total_sec, 20e-3 + 2e-4 + 1e-4, 1e-4);
  EXPECT_NEAR(r.t_comp_busy_max_sec, 20e-3, 1e-12);
}

TEST(MultiBoard, ComputeDividesAcrossBoards) {
  // Same total work on 1 vs 4 boards, compute-dominated: ~4x faster.
  auto cycles_fn = [](std::size_t elems) {
    return static_cast<std::uint64_t>(elems) * 1000u;
  };
  const auto w1 = split_evenly(4096, 4096, 4.0, 1, 10, cycles_fn);
  const auto w4 = split_evenly(4096, 4096, 4.0, 4, 10, cycles_fn);
  const auto r1 = execute_multiboard(w1, clean_link(), 1e8);
  const auto r4 = execute_multiboard(w4, clean_link(), 1e8);
  EXPECT_NEAR(r4.t_total_sec, r1.t_total_sec / 4.0,
              0.05 * r1.t_total_sec);
}

TEST(MultiBoard, BusSaturationCapsScaling) {
  // Communication-heavy split: adding boards cannot beat the shared bus.
  auto cycles_fn = [](std::size_t elems) {
    return static_cast<std::uint64_t>(elems);  // trivial compute
  };
  const auto w2 = split_evenly(1 << 20, 1 << 20, 4.0, 2, 8, cycles_fn);
  const auto w8 = split_evenly(1 << 20, 1 << 20, 4.0, 8, 8, cycles_fn);
  const auto r2 = execute_multiboard(w2, clean_link(), 1e8);
  const auto r8 = execute_multiboard(w8, clean_link(), 1e8);
  EXPECT_NEAR(r8.t_total_sec, r2.t_total_sec, 0.02 * r2.t_total_sec);
}

TEST(MultiBoard, AgreesWithAnalyticScalingModel) {
  // Clean bus, MD-like worksheet: the simulated k-board run must land on
  // predict_scaling's per-iteration max(bus, compute) model.
  core::RatInputs in = core::md_inputs();
  in.software.n_iterations = 6;  // give the schedule a steady state
  const double fclock = core::mhz(100);
  // cycles so that tcomp matches Eq. (4) for the share.
  auto cycles_fn = [&](std::size_t elems) {
    return static_cast<std::uint64_t>(
        static_cast<double>(elems) * in.comp.ops_per_element /
        in.comp.throughput_ops_per_cycle);
  };
  // The analytic model uses alpha-scaled ideal bandwidth with no fixed
  // overheads: build exactly that link.
  const Link link("analytic", in.comm.ideal_bw_bytes_per_sec,
                  LinkDirection{0.0,
                                in.comm.alpha_write *
                                    in.comm.ideal_bw_bytes_per_sec,
                                0.0},
                  LinkDirection{0.0,
                                in.comm.alpha_read *
                                    in.comm.ideal_bw_bytes_per_sec,
                                0.0});
  for (int k : {1, 2, 4, 8}) {
    const auto curve = core::predict_scaling(in, fclock, k);
    const auto& analytic = curve.back();
    const auto w =
        split_evenly(in.dataset.elements_in, in.dataset.elements_out,
                     in.dataset.bytes_per_element, k,
                     in.software.n_iterations, cycles_fn);
    const auto sim = execute_multiboard(w, link, fclock);
    // Steady-state per-iteration time: ignore the fill of the first
    // iteration by comparing totals within 1 iteration's slack.
    const double per_iter_analytic =
        analytic.t_rc_sec * 6.0 / static_cast<double>(in.software.n_iterations) / 6.0;
    EXPECT_NEAR(sim.t_total_sec, analytic.t_rc_sec,
                per_iter_analytic * 1.05)
        << k;
  }
}

TEST(SplitEvenly, SharesSumAndCeilingDistribution) {
  auto cycles_fn = [](std::size_t elems) {
    return static_cast<std::uint64_t>(elems);
  };
  const auto w = split_evenly(1000, 500, 4.0, 3, 1, cycles_fn);
  ASSERT_EQ(w.boards.size(), 3u);
  std::size_t in_total = 0, out_total = 0;
  for (const auto& b : w.boards) {
    in_total += b.input_bytes;
    out_total += b.output_bytes;
  }
  EXPECT_EQ(in_total, 4000u);
  EXPECT_EQ(out_total, 2000u);
  // Earlier boards carry the ceiling share.
  EXPECT_GE(w.boards[0].cycles, w.boards[2].cycles);
  EXPECT_THROW(split_evenly(10, 10, 4.0, 0, 1, cycles_fn),
               std::invalid_argument);
  EXPECT_THROW(split_evenly(10, 10, 4.0, 2, 1, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace rat::rcsim
