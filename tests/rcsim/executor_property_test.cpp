// Randomized property tests for the executor: across a seeded sweep of
// workload shapes and link parameters, the fundamental invariants must
// hold — double buffering never loses, lanes never overlap, aggregate
// times compose, and the schedule brackets the analytic Eq. (5)/(6)
// bounds.
#include <gtest/gtest.h>

#include <algorithm>

#include "rcsim/executor.hpp"
#include "util/rng.hpp"

namespace rat::rcsim {
namespace {

struct RandomCase {
  Link link;
  Workload workload;
  double fclock;
  double sync;
};

RandomCase make_case(std::uint64_t seed) {
  util::Rng rng(seed);
  const LinkDirection h2f{rng.uniform(0.0, 2e-5),
                          rng.uniform(1e8, 2e9),
                          rng.uniform(0.0, 1e-5)};
  const LinkDirection f2h{rng.uniform(0.0, 2e-5),
                          rng.uniform(1e8, 2e9),
                          rng.uniform(0.0, 1e-5)};
  RandomCase c{Link("random", 1e9, h2f, f2h), {}, 0.0, 0.0};
  const std::size_t iters = 1 + rng.uniform_index(12);
  const std::size_t in_bytes = 16 + rng.uniform_index(100000);
  const std::size_t out_chunks = 1 + rng.uniform_index(6);
  const std::size_t out_bytes = 16 + rng.uniform_index(20000);
  const std::uint64_t cycles = 100 + rng.uniform_index(2000000);
  c.workload.n_iterations = iters;
  c.workload.io = [=](std::size_t) {
    IterationIo io;
    io.input_chunks_bytes = {in_bytes};
    io.output_chunks_bytes.assign(out_chunks, out_bytes);
    return io;
  };
  c.workload.cycles = [=](std::size_t) { return cycles; };
  c.fclock = rng.uniform(50e6, 300e6);
  c.sync = rng.uniform(0.0, 3e-5);
  return c;
}

class ExecutorProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorProperties, InvariantsHoldForRandomWorkloads) {
  const RandomCase c = make_case(GetParam());
  ExecutionConfig sb_cfg;
  sb_cfg.buffering = Buffering::kSingle;
  sb_cfg.fclock_hz = c.fclock;
  sb_cfg.host_sync_sec = c.sync;
  ExecutionConfig db_cfg = sb_cfg;
  db_cfg.buffering = Buffering::kDouble;

  const auto sb = execute(c.workload, c.link, sb_cfg);
  const auto db = execute(c.workload, c.link, db_cfg);

  // 1. Lanes are serial resources.
  EXPECT_TRUE(sb.timeline.lanes_consistent());
  EXPECT_TRUE(db.timeline.lanes_consistent());

  // 2. Double buffering never loses.
  EXPECT_LE(db.t_total_sec, sb.t_total_sec + 1e-12);

  // 3. Aggregate busy times are identical across modes (same work).
  EXPECT_NEAR(sb.t_comm_sec, db.t_comm_sec, 1e-12);
  EXPECT_NEAR(sb.t_comp_sec, db.t_comp_sec, 1e-12);

  // 4. SB makespan is exactly the serial sum.
  EXPECT_NEAR(sb.t_total_sec, sb.t_comm_sec + sb.t_comp_sec + sb.t_sync_sec,
              1e-12);

  // 5. DB makespan is bounded below by each resource's busy time and
  //    above by the serial sum.
  EXPECT_GE(db.t_total_sec, db.t_comp_sec - 1e-12);
  EXPECT_GE(db.t_total_sec, db.t_comm_sec - 1e-12);

  // 6. Utilizations are complementary.
  EXPECT_NEAR(sb.util_comm + sb.util_comp, 1.0, 1e-9);

  // 7. Every iteration computed exactly once, in order.
  double prev_start = -1.0;
  std::size_t computes = 0;
  for (const auto& e : db.timeline.events()) {
    if (e.kind != EventKind::kCompute) continue;
    ++computes;
    EXPECT_GT(e.start_sec, prev_start);
    prev_start = e.start_sec;
  }
  EXPECT_EQ(computes, c.workload.n_iterations);
}

TEST_P(ExecutorProperties, SetupTimeShiftsEverything) {
  const RandomCase c = make_case(GetParam() ^ 0xDEADBEEF);
  ExecutionConfig cfg;
  cfg.fclock_hz = c.fclock;
  const auto base = execute(c.workload, c.link, cfg);
  cfg.initial_setup_sec = 1.5e-3;
  const auto with_setup = execute(c.workload, c.link, cfg);
  EXPECT_NEAR(with_setup.t_total_sec, base.t_total_sec + 1.5e-3, 1e-12);
  EXPECT_TRUE(with_setup.timeline.lanes_consistent());
  // RAT's "ignore setup" assumption: relative error shrinks as 1/total.
  const double rel = 1.5e-3 / base.t_total_sec;
  EXPECT_NEAR(with_setup.t_total_sec / base.t_total_sec, 1.0 + rel, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorProperties,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace rat::rcsim
