#include "rcsim/platform.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rat::rcsim {
namespace {

TEST(Platform, NallatechBundle) {
  const Platform p = nallatech_h101();
  EXPECT_EQ(p.device.family, Family::kXilinxVirtex4);
  EXPECT_DOUBLE_EQ(p.link.documented_bw(), 1e9);
  EXPECT_GT(p.host_sync_sec, 0.0);
  ASSERT_EQ(p.candidate_clocks_hz.size(), 3u);
  EXPECT_DOUBLE_EQ(p.candidate_clocks_hz[0], 75e6);
  EXPECT_DOUBLE_EQ(p.candidate_clocks_hz[2], 150e6);
}

TEST(Platform, Xd1000Bundle) {
  const Platform p = xd1000();
  EXPECT_EQ(p.device.family, Family::kAlteraStratix2);
  EXPECT_DOUBLE_EQ(p.link.documented_bw(), 5e8);
  EXPECT_EQ(p.candidate_clocks_hz.size(), 3u);
}

TEST(Platform, GenericPcieBundle) {
  const Platform p = generic_pcie_x4();
  EXPECT_EQ(p.device.family, Family::kXilinxVirtex4);
  EXPECT_DOUBLE_EQ(p.link.documented_bw(), 1e9);
  // The PCIe stack beats the Nallatech PCI-X path at every size.
  const Platform nalla = nallatech_h101();
  for (std::size_t bytes : {512u, 2048u, 65536u, 1048576u}) {
    EXPECT_GT(p.link.measured_alpha(bytes, Direction::kHostToFpga),
              nalla.link.measured_alpha(bytes, Direction::kHostToFpga))
        << bytes;
    EXPECT_GT(p.link.measured_alpha(bytes, Direction::kFpgaToHost),
              nalla.link.measured_alpha(bytes, Direction::kFpgaToHost))
        << bytes;
  }
}

TEST(Platform, LookupByName) {
  EXPECT_EQ(platform_by_name("nallatech_h101").device.family,
            Family::kXilinxVirtex4);
  EXPECT_EQ(platform_by_name("xd1000").device.family,
            Family::kAlteraStratix2);
  EXPECT_EQ(platform_by_name("generic_pcie_x4").name,
            "Generic PCIe x4 card");
  EXPECT_THROW(platform_by_name("cray"), std::invalid_argument);
}

TEST(Platform, FillLimitsWithinRange) {
  for (const auto& p : {nallatech_h101(), xd1000(), generic_pcie_x4()}) {
    EXPECT_GT(p.practical_fill_limit, 0.0);
    EXPECT_LE(p.practical_fill_limit, 1.0);
  }
}

}  // namespace
}  // namespace rat::rcsim
