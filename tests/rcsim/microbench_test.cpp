#include "rcsim/microbench.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rat::rcsim {
namespace {

TEST(Microbench, MeasureMatchesSingleTransferWithoutJitter) {
  const Link link = nallatech_pcix_link();
  Microbench mb(link);
  const AlphaSample s = mb.measure(2048, Direction::kHostToFpga);
  EXPECT_EQ(s.bytes, 2048u);
  EXPECT_DOUBLE_EQ(s.time_sec,
                   link.single_transfer_time(2048, Direction::kHostToFpga));
  EXPECT_DOUBLE_EQ(s.alpha,
                   link.measured_alpha(2048, Direction::kHostToFpga));
}

TEST(Microbench, DeriveAlphasReproducesTable2) {
  const Link link = nallatech_pcix_link();
  Microbench mb(link);
  const CommAlphas a = mb.derive_alphas(2048);
  EXPECT_NEAR(a.alpha_write, 0.37, 0.005);
  EXPECT_NEAR(a.alpha_read, 0.16, 0.005);
}

TEST(Microbench, SweepCoversBothDirections) {
  const Link link = nallatech_pcix_link();
  Microbench mb(link);
  const auto samples = mb.sweep({1024, 4096});
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].dir, Direction::kHostToFpga);
  EXPECT_EQ(samples[1].dir, Direction::kFpgaToHost);
  EXPECT_EQ(samples[2].bytes, 4096u);
}

TEST(Microbench, DefaultSweepSpansPowerOfTwoRange) {
  const Link link = nallatech_pcix_link();
  Microbench mb(link);
  const auto samples = mb.sweep_default();
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples.front().bytes, 256u);
  EXPECT_EQ(samples.back().bytes, 4u << 20);
}

TEST(Microbench, AveragingReducesJitterNoise) {
  Link link = nallatech_pcix_link();
  link.set_jitter(0.3);
  Microbench noisy(link, /*repeats=*/1, /*seed=*/1);
  Microbench averaged(link, /*repeats=*/256, /*seed=*/1);
  const double truth = link.single_transfer_time(2048, Direction::kHostToFpga);
  const double e1 =
      std::abs(noisy.measure(2048, Direction::kHostToFpga).time_sec - truth);
  const double e256 = std::abs(
      averaged.measure(2048, Direction::kHostToFpga).time_sec - truth);
  EXPECT_LT(e256, 0.05 * truth);
  EXPECT_LE(e256, e1 + 1e-12);
}

TEST(Microbench, RejectsNonPositiveRepeats) {
  const Link link = nallatech_pcix_link();
  EXPECT_THROW(Microbench(link, 0), std::invalid_argument);
}

TEST(Microbench, TableRendering) {
  const Link link = nallatech_pcix_link();
  Microbench mb(link);
  const auto t = Microbench::to_table(mb.sweep({2048}));
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.cell(0, 1), "host->FPGA");
  EXPECT_EQ(t.cell(1, 1), "FPGA->host");
  EXPECT_EQ(t.cell(0, 3), "0.370");
}

}  // namespace
}  // namespace rat::rcsim
