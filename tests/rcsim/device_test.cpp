#include "rcsim/device.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rat::rcsim {
namespace {

TEST(Device, Lx100Inventory) {
  const Device d = virtex4_lx100();
  EXPECT_EQ(d.family, Family::kXilinxVirtex4);
  EXPECT_EQ(d.inventory.dsp, 96);
  EXPECT_EQ(d.inventory.bram, 240);
  EXPECT_EQ(d.inventory.logic, 49152);
  EXPECT_EQ(d.logic_unit_name, "slices");
}

TEST(Device, Ep2s180Inventory) {
  const Device d = stratix2_ep2s180();
  EXPECT_EQ(d.family, Family::kAlteraStratix2);
  EXPECT_EQ(d.inventory.dsp, 768);
  EXPECT_EQ(d.inventory.logic, 143520);
  EXPECT_EQ(d.dsp_unit_name, "9-bit DSP");
}

TEST(Device, Virtex4MultiplierCosts) {
  const Device d = virtex4_lx100();
  EXPECT_EQ(d.dsp_per_multiplier(18), 1);
  // Paper §3.3: "32-bit fixed-point multiplications on Xilinx V4 FPGAs
  // require two dedicated 18-bit multipliers".
  EXPECT_EQ(d.dsp_per_multiplier(32), 2);
  EXPECT_EQ(d.dsp_per_multiplier(35), 4);
  EXPECT_EQ(d.dsp_per_multiplier(48), 8);
  EXPECT_EQ(d.dsp_per_multiplier(8), 1);
}

TEST(Device, Stratix2MultiplierCosts) {
  const Device d = stratix2_ep2s180();
  EXPECT_EQ(d.dsp_per_multiplier(9), 1);
  EXPECT_EQ(d.dsp_per_multiplier(18), 2);
  EXPECT_EQ(d.dsp_per_multiplier(36), 8);
  EXPECT_EQ(d.dsp_per_multiplier(64), 16);
}

TEST(Device, MultiplierWidthValidation) {
  const Device d = virtex4_lx100();
  EXPECT_THROW(d.dsp_per_multiplier(0), std::invalid_argument);
  EXPECT_THROW(d.dsp_per_multiplier(-4), std::invalid_argument);
  EXPECT_THROW(d.dsp_per_multiplier(65), std::invalid_argument);
}

TEST(Device, BramForBytes) {
  const Device v4 = virtex4_lx100();
  EXPECT_EQ(v4.bytes_per_bram(), 18 * 1024 / 8);
  EXPECT_EQ(v4.bram_for_bytes(0), 0);
  EXPECT_EQ(v4.bram_for_bytes(1), 1);
  EXPECT_EQ(v4.bram_for_bytes(2304), 1);
  EXPECT_EQ(v4.bram_for_bytes(2305), 2);
  EXPECT_THROW(v4.bram_for_bytes(-1), std::invalid_argument);

  const Device s2 = stratix2_ep2s180();
  EXPECT_EQ(s2.bytes_per_bram(), 576);
  EXPECT_EQ(s2.bram_for_bytes(577), 2);
}

TEST(Device, LookupByName) {
  EXPECT_EQ(device_by_name("lx100").family, Family::kXilinxVirtex4);
  EXPECT_EQ(device_by_name("ep2s180").family, Family::kAlteraStratix2);
  EXPECT_THROW(device_by_name("lx200"), std::invalid_argument);
}

}  // namespace
}  // namespace rat::rcsim
