#include "rcsim/pipeline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rat::rcsim {
namespace {

PipelineSpec basic() {
  PipelineSpec s;
  s.name = "t";
  s.depth = 10;
  s.initiation_interval = 1.0;
  s.stall_per_item = 0.0;
  s.instances = 1;
  s.ops_per_item = 4.0;
  return s;
}

TEST(Pipeline, ZeroItemsZeroCycles) {
  EXPECT_EQ(pipeline_cycles(basic(), 0), 0u);
}

TEST(Pipeline, SteadyStatePlusFill) {
  EXPECT_EQ(pipeline_cycles(basic(), 100), 110u);
}

TEST(Pipeline, InitiationIntervalScalesSteadyState) {
  PipelineSpec s = basic();
  s.initiation_interval = 3.0;
  EXPECT_EQ(pipeline_cycles(s, 100), 310u);
  s.initiation_interval = 1.5;  // fractional II rounds the total up
  EXPECT_EQ(pipeline_cycles(s, 99), 10u + 149u);
}

TEST(Pipeline, StallAddsPerItem) {
  PipelineSpec s = basic();
  s.stall_per_item = 9.0;
  EXPECT_EQ(pipeline_cycles(s, 512), 512u * 10u + 10u);
}

TEST(Pipeline, InstancesDivideItems) {
  PipelineSpec s = basic();
  s.instances = 4;
  EXPECT_EQ(pipeline_cycles(s, 100), 25u + 10u);
  EXPECT_EQ(pipeline_cycles(s, 101), 26u + 10u);  // ceil division
}

TEST(Pipeline, EffectiveOpsPerCycleBelowIdeal) {
  // Ideal with II=1 and no overhead would be ops_per_item per cycle;
  // fill latency and stalls push the effective rate below that.
  PipelineSpec s = basic();
  s.stall_per_item = 1.0;
  const double eff = effective_ops_per_cycle(s, 1000);
  EXPECT_LT(eff, s.ops_per_item);
  EXPECT_GT(eff, 0.45 * s.ops_per_item);
}

TEST(Pipeline, EffectiveRateApproachesIdealForLargeBatches) {
  PipelineSpec s = basic();
  const double small = effective_ops_per_cycle(s, 20);
  const double large = effective_ops_per_cycle(s, 200000);
  EXPECT_LT(small, large);
  EXPECT_NEAR(large, s.ops_per_item, 0.001 * s.ops_per_item);
}

TEST(Pipeline, Pdf1dCalibration) {
  // The 1-D PDF design: 8 pipelines x 32 bins, 9 stall cycles per element,
  // 64-cycle fill. 512 elements -> 21056 cycles -> 1.40E-4 s at 150 MHz,
  // matching Table 3's measured 1.39E-4 within 1%.
  PipelineSpec s;
  s.name = "pdf1d";
  s.depth = 64;
  s.initiation_interval = 32.0;
  s.stall_per_item = 9.0;
  s.instances = 1;
  s.ops_per_item = 768.0;
  EXPECT_EQ(pipeline_cycles(s, 512), 512u * 41u + 64u);
  const double t = static_cast<double>(pipeline_cycles(s, 512)) / 150e6;
  EXPECT_NEAR(t, 1.39e-4, 0.02e-4);
  // Effective throughput ~18.7 ops/cycle: below both the 24 ideal and the
  // derated 20 the worksheet assumed.
  const double eff = effective_ops_per_cycle(s, 512);
  EXPECT_NEAR(eff, 18.7, 0.2);
}

TEST(Pipeline, Validation) {
  PipelineSpec s = basic();
  s.depth = 0;
  EXPECT_THROW(pipeline_cycles(s, 1), std::invalid_argument);
  s = basic();
  s.initiation_interval = 0.5;
  EXPECT_THROW(pipeline_cycles(s, 1), std::invalid_argument);
  s = basic();
  s.stall_per_item = -1.0;
  EXPECT_THROW(pipeline_cycles(s, 1), std::invalid_argument);
  s = basic();
  s.instances = 0;
  EXPECT_THROW(pipeline_cycles(s, 1), std::invalid_argument);
  s = basic();
  s.ops_per_item = 0.0;
  EXPECT_THROW(pipeline_cycles(s, 1), std::invalid_argument);
}

}  // namespace
}  // namespace rat::rcsim
