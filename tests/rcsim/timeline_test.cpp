#include "rcsim/timeline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rat::rcsim {
namespace {

Timeline simple() {
  Timeline tl;
  tl.add(Event{EventKind::kInputTransfer, 0, 0.0, 1.0});
  tl.add(Event{EventKind::kCompute, 0, 1.0, 4.0});
  tl.add(Event{EventKind::kOutputTransfer, 0, 4.0, 5.0});
  return tl;
}

TEST(Timeline, EmptyDefaults) {
  const Timeline tl;
  EXPECT_TRUE(tl.empty());
  EXPECT_DOUBLE_EQ(tl.end_sec(), 0.0);
  EXPECT_DOUBLE_EQ(tl.comm_busy_sec(), 0.0);
  EXPECT_TRUE(tl.lanes_consistent());
  EXPECT_EQ(tl.to_gantt(), "(empty timeline)\n");
}

TEST(Timeline, BusyAccounting) {
  const Timeline tl = simple();
  EXPECT_DOUBLE_EQ(tl.end_sec(), 5.0);
  EXPECT_DOUBLE_EQ(tl.comm_busy_sec(), 2.0);
  EXPECT_DOUBLE_EQ(tl.comp_busy_sec(), 3.0);
  EXPECT_DOUBLE_EQ(tl.sync_busy_sec(), 0.0);
}

TEST(Timeline, SyncCountedSeparately) {
  Timeline tl = simple();
  tl.add(Event{EventKind::kHostSync, 1, 5.0, 5.5});
  EXPECT_DOUBLE_EQ(tl.sync_busy_sec(), 0.5);
  EXPECT_DOUBLE_EQ(tl.comm_busy_sec(), 2.0);  // sync not counted as comm
}

TEST(Timeline, RejectsNegativeDuration) {
  Timeline tl;
  EXPECT_THROW(tl.add(Event{EventKind::kCompute, 0, 2.0, 1.0}),
               std::invalid_argument);
}

TEST(Timeline, LaneConsistencyDetectsBusOverlap) {
  Timeline tl;
  tl.add(Event{EventKind::kInputTransfer, 0, 0.0, 2.0});
  tl.add(Event{EventKind::kOutputTransfer, 0, 1.0, 3.0});  // overlaps on bus
  EXPECT_FALSE(tl.lanes_consistent());
}

TEST(Timeline, LaneConsistencyAllowsCommCompOverlap) {
  Timeline tl;
  tl.add(Event{EventKind::kInputTransfer, 1, 0.0, 2.0});
  tl.add(Event{EventKind::kCompute, 0, 0.5, 1.5});  // different lane: fine
  EXPECT_TRUE(tl.lanes_consistent());
}

TEST(Timeline, SyncSharesTheBusLane) {
  Timeline tl;
  tl.add(Event{EventKind::kHostSync, 0, 0.0, 1.0});
  tl.add(Event{EventKind::kInputTransfer, 0, 0.5, 2.0});  // overlaps sync
  EXPECT_FALSE(tl.lanes_consistent());
}

TEST(Timeline, GanttHasTwoLanesAndLegend) {
  const std::string g = simple().to_gantt(50);
  EXPECT_NE(g.find("Comm |"), std::string::npos);
  EXPECT_NE(g.find("Comp |"), std::string::npos);
  EXPECT_NE(g.find('R'), std::string::npos);
  EXPECT_NE(g.find('C'), std::string::npos);
  EXPECT_NE(g.find('W'), std::string::npos);
  EXPECT_NE(g.find("legend"), std::string::npos);
}

TEST(Timeline, ChromeTraceStructure) {
  const std::string j = simple().to_chrome_trace();
  EXPECT_EQ(j.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"name\":\"input transfer #1\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"compute #1\""), std::string::npos);
  // Comm on tid 1, compute on tid 2.
  EXPECT_NE(j.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(j.find("\"tid\":2"), std::string::npos);
  // Compute event: starts at 1s = 1e6 us, lasts 3e6 us.
  EXPECT_NE(j.find("\"ts\":1e+06,\"dur\":3e+06"), std::string::npos);
}

TEST(Timeline, ChromeTraceEmptyTimeline) {
  const Timeline tl;
  EXPECT_EQ(tl.to_chrome_trace(), "{\"traceEvents\":[]}");
}

TEST(Timeline, GanttProportionsRoughlyMatchDurations) {
  const std::string g = simple().to_gantt(100);
  // The compute block spans 3/5 of the makespan: expect ~60 'C' columns.
  const std::size_t c_count = std::count(g.begin(), g.end(), 'C');
  EXPECT_GE(c_count, 50u);
  EXPECT_LE(c_count, 70u);
}

}  // namespace
}  // namespace rat::rcsim
