#include "rcsim/interconnect.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rat::rcsim {
namespace {

TEST(Link, ConstructionValidation) {
  const LinkDirection ok{1e-6, 1e9, 1e-6};
  EXPECT_NO_THROW(Link("l", 1e9, ok, ok));
  EXPECT_THROW(Link("l", 0.0, ok, ok), std::invalid_argument);
  EXPECT_THROW(Link("l", 1e9, LinkDirection{1e-6, 0.0, 0.0}, ok),
               std::invalid_argument);
  EXPECT_THROW(Link("l", 1e9, LinkDirection{-1e-6, 1e9, 0.0}, ok),
               std::invalid_argument);
}

TEST(Link, TransferTimeIsOverheadPlusWireTime) {
  const Link link("l", 1e9, LinkDirection{1e-5, 5e8, 2e-6},
                  LinkDirection{2e-5, 2.5e8, 3e-6});
  EXPECT_DOUBLE_EQ(link.single_transfer_time(5000, Direction::kHostToFpga),
                   1e-5 + 5000.0 / 5e8);
  EXPECT_DOUBLE_EQ(link.single_transfer_time(5000, Direction::kFpgaToHost),
                   2e-5 + 5000.0 / 2.5e8);
  EXPECT_DOUBLE_EQ(link.app_transfer_time(5000, Direction::kHostToFpga),
                   link.single_transfer_time(5000, Direction::kHostToFpga) +
                       2e-6);
}

TEST(Link, AlphaGrowsWithTransferSizeTowardAsymptote) {
  const Link link = nallatech_pcix_link();
  double prev = 0.0;
  for (std::size_t bytes : {256u, 1024u, 4096u, 65536u, 1048576u}) {
    const double a = link.measured_alpha(bytes, Direction::kHostToFpga);
    EXPECT_GT(a, prev);
    prev = a;
  }
  // Asymptote: sustained/documented = 0.7.
  EXPECT_NEAR(link.measured_alpha(1u << 28, Direction::kHostToFpga), 0.7,
              0.01);
  EXPECT_DOUBLE_EQ(link.measured_alpha(0, Direction::kHostToFpga), 0.0);
}

TEST(Link, NallatechReproducesPaperAlphasAt2KB) {
  // Table 2: alpha_write = 0.37, alpha_read = 0.16, measured with a
  // microbenchmark "for a data size comparable to one used by the 1-D PDF"
  // (512 elements x 4 bytes = 2 KB).
  const Link link = nallatech_pcix_link();
  EXPECT_NEAR(link.measured_alpha(2048, Direction::kHostToFpga), 0.37, 0.005);
  EXPECT_NEAR(link.measured_alpha(2048, Direction::kFpgaToHost), 0.16, 0.005);
}

TEST(Link, Xd1000SustainsMoreThanDocumented) {
  // The MD case measured communication ~2x faster than the conservative
  // 500 MB/s + alpha 0.9 prediction.
  const Link link = xd1000_ht_link();
  EXPECT_GT(link.measured_alpha(589824, Direction::kHostToFpga), 1.0);
  const double t = link.app_transfer_time(589824, Direction::kHostToFpga) +
                   link.app_transfer_time(589824, Direction::kFpgaToHost);
  EXPECT_NEAR(t, 1.39e-3, 0.05e-3);  // Table 9 actual tcomm
}

TEST(Link, JitterValidationAndDeterminism) {
  Link link = nallatech_pcix_link();
  EXPECT_THROW(link.set_jitter(-0.1), std::invalid_argument);
  EXPECT_THROW(link.set_jitter(1.0), std::invalid_argument);
  link.set_jitter(0.2);
  util::Rng a(5), b(5);
  const double t1 = link.app_transfer_time(2048, Direction::kHostToFpga, a);
  const double t2 = link.app_transfer_time(2048, Direction::kHostToFpga, b);
  EXPECT_DOUBLE_EQ(t1, t2);  // same seed, same jitter draw
  const double base = link.app_transfer_time(2048, Direction::kHostToFpga);
  EXPECT_GE(t1, base * 0.8);
  EXPECT_LE(t1, base * 1.2);
}

TEST(Link, NoJitterPathIgnoresRng) {
  const Link link = nallatech_pcix_link();
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(link.app_transfer_time(2048, Direction::kHostToFpga, rng),
                   link.app_transfer_time(2048, Direction::kHostToFpga));
}

}  // namespace
}  // namespace rat::rcsim
