#include "rcsim/staged_executor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/composition.hpp"
#include "core/units.hpp"

namespace rat::rcsim {
namespace {

Link clean_link() {
  return Link("clean", 1e9, LinkDirection{0.0, 1e9, 0.0},
              LinkDirection{0.0, 1e9, 0.0});
}

ExecutionConfig config(double fclock = 1e6, double sync = 0.0) {
  ExecutionConfig c;
  c.fclock_hz = fclock;
  c.host_sync_sec = sync;
  return c;
}

StagedWorkload two_stage(std::size_t iters = 5) {
  StagedWorkload w;
  w.stages = {StageWorkload{1000, 500, 100, false},
              StageWorkload{500, 1000, 200, false}};
  w.n_iterations = iters;
  return w;
}

TEST(StagedExecutor, Validation) {
  const Link link = clean_link();
  StagedWorkload empty;
  empty.n_iterations = 1;
  EXPECT_THROW(execute_staged(empty, link, config()), std::invalid_argument);
  StagedWorkload zero_iters = two_stage(5);
  zero_iters.n_iterations = 0;
  EXPECT_THROW(execute_staged(zero_iters, link, config()),
               std::invalid_argument);
  StagedWorkload bad_final = two_stage();
  bad_final.stages.back().handoff_on_chip = true;
  EXPECT_THROW(execute_staged(bad_final, link, config()),
               std::invalid_argument);
  EXPECT_THROW(execute_staged(two_stage(), link, config(0.0)),
               std::invalid_argument);
}

TEST(StagedExecutor, SerialTotals) {
  const auto r = execute_staged(two_stage(5), clean_link(), config());
  // Per iteration: in 1us + comp 100us + out 0.5us + in 0.5us + comp
  // 200us + out 1us.
  EXPECT_NEAR(r.t_comm_sec, 5 * 3e-6, 1e-12);
  EXPECT_NEAR(r.t_comp_sec, 5 * 3e-4, 1e-12);
  EXPECT_NEAR(r.t_total_sec, r.t_comm_sec + r.t_comp_sec, 1e-12);
  EXPECT_TRUE(r.timeline.lanes_consistent());
}

TEST(StagedExecutor, OnChipHandoffSkipsBusCrossings) {
  StagedWorkload w = two_stage(5);
  w.stages[0].handoff_on_chip = true;
  const auto r = execute_staged(w, clean_link(), config());
  // Stage 0's output (0.5us) and stage 1's input (0.5us) disappear.
  EXPECT_NEAR(r.t_comm_sec, 5 * 2e-6, 1e-12);
  EXPECT_NEAR(r.t_comp_sec, 5 * 3e-4, 1e-12);
}

TEST(StagedExecutor, SyncChargedOncePerIteration) {
  const auto base = execute_staged(two_stage(4), clean_link(), config());
  const auto synced =
      execute_staged(two_stage(4), clean_link(), config(1e6, 1e-5));
  EXPECT_NEAR(synced.t_total_sec, base.t_total_sec + 4e-5, 1e-12);
  EXPECT_NEAR(synced.t_sync_sec, 4e-5, 1e-15);
}

TEST(StagedExecutor, MatchesCompositePredictionOnIdealBus) {
  // With a zero-overhead bus, the simulated schedule must equal the
  // analytic sequential composition (predict_composite) exactly.
  core::StageSpec a;
  a.inputs.name = "a";
  a.inputs.dataset = {512, 256, 4.0};
  a.inputs.comm = {1e9, 1.0, 1.0};
  a.inputs.comp = {100.0, 10.0, {core::mhz(100)}};
  a.inputs.software = {1.0, 50};
  a.fclock_hz = core::mhz(100);
  core::StageSpec b = a;
  b.inputs.name = "b";
  b.inputs.comp.ops_per_element = 300.0;

  const auto analytic =
      core::predict_composite({a, b}, core::CompositionMode::kSequential);

  StagedWorkload w;
  auto cycles = [](const core::StageSpec& s) {
    return static_cast<std::uint64_t>(
        static_cast<double>(s.inputs.dataset.elements_in) *
        s.inputs.comp.ops_per_element /
        s.inputs.comp.throughput_ops_per_cycle);
  };
  w.stages = {
      StageWorkload{512 * 4, 256 * 4, cycles(a), false},
      StageWorkload{512 * 4, 256 * 4, cycles(b), false},
  };
  w.n_iterations = 50;
  const auto sim =
      execute_staged(w, clean_link(), config(core::mhz(100)));
  EXPECT_NEAR(sim.t_total_sec, analytic.t_total_sec,
              1e-9 * analytic.t_total_sec);
}

TEST(StagedExecutor, TimelineEventCounts) {
  StagedWorkload w = two_stage(3);
  w.stages[0].handoff_on_chip = true;
  const auto r = execute_staged(w, clean_link(), config());
  std::size_t inputs = 0, outputs = 0, computes = 0;
  for (const auto& e : r.timeline.events()) {
    if (e.kind == EventKind::kInputTransfer) ++inputs;
    if (e.kind == EventKind::kOutputTransfer) ++outputs;
    if (e.kind == EventKind::kCompute) ++computes;
  }
  EXPECT_EQ(computes, 6u);
  EXPECT_EQ(inputs, 3u);   // stage 1's input suppressed by hand-off
  EXPECT_EQ(outputs, 3u);  // stage 0's output suppressed
}

TEST(StagedExecutor, ZeroByteTransfersProduceNoEvents) {
  StagedWorkload w;
  w.stages = {StageWorkload{0, 100, 50, false}};
  w.n_iterations = 2;
  const auto r = execute_staged(w, clean_link(), config());
  for (const auto& e : r.timeline.events())
    EXPECT_NE(e.kind, EventKind::kInputTransfer);
}

}  // namespace
}  // namespace rat::rcsim
