#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/montecarlo.hpp"
#include "core/parameters.hpp"
#include "core/units.hpp"
#include "util/parallel_for.hpp"
#include "util/thread_pool.hpp"

namespace rat::obs {
namespace {

// The enabled flag and the global registry are process-wide; every test
// that touches them restores the disabled default so suites can run in
// any order.
struct EnabledGuard {
  ~EnabledGuard() { set_enabled(false); }
};

TEST(ObsRegistry, CountersAccumulate) {
  Registry reg;
  reg.add_counter("a");
  reg.add_counter("a", 4);
  reg.add_counter("b");
  const auto c = reg.counters();
  EXPECT_EQ(c.at("a"), 5u);
  EXPECT_EQ(c.at("b"), 1u);
  EXPECT_EQ(c.size(), 2u);
}

TEST(ObsRegistry, GaugeSemantics) {
  Registry reg;
  reg.set_gauge("last", 1.0);
  reg.set_gauge("last", 3.0);  // last write wins
  reg.max_gauge("peak", 2.0);
  reg.max_gauge("peak", 5.0);
  reg.max_gauge("peak", 4.0);  // lower value never shrinks the peak
  const auto g = reg.gauges();
  EXPECT_DOUBLE_EQ(g.at("last"), 3.0);
  EXPECT_DOUBLE_EQ(g.at("peak"), 5.0);
}

TEST(ObsRegistry, TimerAggregation) {
  Registry reg;
  reg.record_timer("t", 10);
  reg.record_timer("t", 30);
  reg.record_timer("t", 20);
  const TimerStat s = reg.timers().at("t");
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.total_ns, 60u);
  EXPECT_EQ(s.min_ns, 10u);
  EXPECT_EQ(s.max_ns, 30u);
  EXPECT_DOUBLE_EQ(s.mean_ns(), 20.0);
  EXPECT_DOUBLE_EQ(TimerStat{}.mean_ns(), 0.0);
}

TEST(ObsRegistry, SpanBufferIsBounded) {
  Registry reg(/*span_capacity=*/4);
  for (int i = 0; i < 7; ++i)
    reg.record_span("s", "item" + std::to_string(i), 100 * i, 10);
  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(reg.spans_dropped(), 3u);
  // Recording order is preserved; overflow drops the newest, not the
  // oldest (the buffer never reshuffles).
  EXPECT_EQ(spans.front().detail, "item0");
  EXPECT_EQ(spans.back().detail, "item3");
  EXPECT_EQ(spans.front().name, "s");
  EXPECT_EQ(spans.front().dur_ns, 10u);
}

TEST(ObsRegistry, ResetClearsEverything) {
  Registry reg(4);
  reg.add_counter("c");
  reg.set_gauge("g", 1.0);
  reg.record_timer("t", 5);
  for (int i = 0; i < 9; ++i) reg.record_span("s", {}, 0, 1);
  reg.reset();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.gauges().empty());
  EXPECT_TRUE(reg.timers().empty());
  EXPECT_TRUE(reg.spans().empty());
  EXPECT_EQ(reg.spans_dropped(), 0u);
  // Capacity survives reset.
  for (int i = 0; i < 5; ++i) reg.record_span("s", {}, 0, 1);
  EXPECT_EQ(reg.spans().size(), 4u);
  EXPECT_EQ(reg.spans_dropped(), 1u);
}

TEST(ObsRegistry, ConcurrentUpdatesAreConsistent) {
  // TSan target: many threads hammering shared and per-thread metric
  // names; totals must come out exact.
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string mine = "thread." + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        reg.add_counter("shared");
        reg.add_counter(mine);
        reg.record_timer("lat", static_cast<std::uint64_t>(i + 1));
        reg.max_gauge("peak", static_cast<double>(i));
        if (i % 64 == 0) reg.record_span("span", mine, 0, 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto c = reg.counters();
  EXPECT_EQ(c.at("shared"), static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(c.at("thread." + std::to_string(t)),
              static_cast<std::uint64_t>(kIters));
  const TimerStat lat = reg.timers().at("lat");
  EXPECT_EQ(lat.count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(lat.min_ns, 1u);
  EXPECT_EQ(lat.max_ns, static_cast<std::uint64_t>(kIters));
  EXPECT_DOUBLE_EQ(reg.gauges().at("peak"), kIters - 1);
  EXPECT_EQ(reg.spans().size() + reg.spans_dropped(),
            static_cast<std::size_t>(kThreads) * (kIters / 64 + 1));
}

TEST(ObsEnabled, DefaultsToOff) { EXPECT_FALSE(enabled()); }

TEST(ObsScopedTimer, RecordsOnlyWhenEnabled) {
  EnabledGuard guard;
  Registry& reg = Registry::global();
  reg.reset();

  { ScopedTimer t("obs_test.scope"); }
  EXPECT_EQ(reg.timers().count("obs_test.scope"), 0u);

  set_enabled(true);
  EXPECT_TRUE(enabled());
  { ScopedTimer t("obs_test.scope"); }
  { ScopedTimer t("obs_test.scope", "with-span", /*record_span=*/true); }
  set_enabled(false);

  const auto timers = reg.timers();
  ASSERT_EQ(timers.count("obs_test.scope"), 1u);
  EXPECT_EQ(timers.at("obs_test.scope").count, 2u);
  const auto spans = reg.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "obs_test.scope");
  EXPECT_EQ(spans[0].detail, "with-span");
  reg.reset();
}

TEST(ObsScopedTimer, EnabledStateCapturedAtConstruction) {
  // A timer constructed while disabled must not record even if collection
  // is switched on before it destructs (and vice versa): sites never see
  // a torn enable.
  EnabledGuard guard;
  Registry& reg = Registry::global();
  reg.reset();
  {
    ScopedTimer t("obs_test.torn");
    set_enabled(true);
  }
  EXPECT_EQ(reg.timers().count("obs_test.torn"), 0u);
  reg.reset();
}

TEST(ObsThreadIndex, DenseAndStable) {
  const std::uint32_t mine = thread_index();
  EXPECT_EQ(thread_index(), mine);  // stable on the same thread
  std::uint32_t other = 0;
  std::thread([&other] { other = thread_index(); }).join();
  EXPECT_NE(other, mine);
}

TEST(ObsJson, SchemaAndContents) {
  Registry reg;
  reg.add_counter("files", 3);
  reg.set_gauge("threads", 2.0);
  reg.record_timer("parse", 1500000000);  // 1.5 s
  reg.record_span("parse", "a \"quoted\"\\path", 0, 250000000);
  const std::string j = metrics_json(reg);
  EXPECT_NE(j.find("\"schema\":\"rat.metrics.v1\""), std::string::npos);
  EXPECT_NE(j.find("\"files\":3"), std::string::npos);
  EXPECT_NE(j.find("\"threads\":2"), std::string::npos);
  EXPECT_NE(j.find("\"count\":1"), std::string::npos);
  EXPECT_NE(j.find("\"total_sec\":1.5"), std::string::npos);
  EXPECT_NE(j.find("\"spans_dropped\":0"), std::string::npos);
  // Detail strings are escaped, not emitted raw.
  EXPECT_NE(j.find("a \\\"quoted\\\"\\\\path"), std::string::npos);
  EXPECT_EQ(j.find("a \"quoted\""), std::string::npos);
}

TEST(ObsJson, EmptyRegistryStillValidDocument) {
  Registry reg;
  const std::string j = metrics_json(reg);
  EXPECT_NE(j.find("rat.metrics.v1"), std::string::npos);
  EXPECT_NE(j.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(j.find("\"spans\":[]"), std::string::npos);
}

TEST(ObsSummary, ListsEverySection) {
  Registry reg;
  reg.add_counter("batch.files", 4);
  reg.set_gauge("batch.threads", 2.0);
  reg.record_timer("batch.file", 2000);
  const std::string s = summary_table(reg);
  EXPECT_NE(s.find("counters:"), std::string::npos);
  EXPECT_NE(s.find("gauges:"), std::string::npos);
  EXPECT_NE(s.find("timers:"), std::string::npos);
  EXPECT_NE(s.find("batch.files"), std::string::npos);
  EXPECT_NE(s.find("batch.file"), std::string::npos);
}

TEST(ObsExport, WriteMetricsFileRoundTrips) {
  Registry reg;
  reg.add_counter("k", 7);
  const auto path =
      std::filesystem::temp_directory_path() / "rat_obs_test_metrics.json";
  ASSERT_TRUE(write_metrics_file(path, reg));
  std::ifstream f(path);
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(buf.str(), metrics_json(reg) + "\n");
  std::filesystem::remove(path);
}

TEST(ObsExport, WriteMetricsFileReportsFailure) {
  Registry reg;
  EXPECT_FALSE(write_metrics_file(
      std::filesystem::path("/nonexistent-dir/metrics.json"), reg));
}

TEST(ObsEnv, MetricsPathReadFromEnvironment) {
  ASSERT_EQ(::setenv("RAT_METRICS", "/tmp/from-env.json", 1), 0);
  const char* p = env_metrics_path();
  ASSERT_NE(p, nullptr);
  EXPECT_STREQ(p, "/tmp/from-env.json");
  ASSERT_EQ(::setenv("RAT_METRICS", "", 1), 0);
  EXPECT_EQ(env_metrics_path(), nullptr);  // empty means unset
  ASSERT_EQ(::unsetenv("RAT_METRICS"), 0);
  EXPECT_EQ(env_metrics_path(), nullptr);
}

TEST(ObsInstrumentation, ParallelMapRecordsChunksAndPoolActivity) {
  EnabledGuard guard;
  Registry& reg = Registry::global();
  reg.reset();
  set_enabled(true);
  const auto out = util::parallel_map(
      64, [](std::size_t i) { return static_cast<double>(i) * 2.0; }, 2);
  // The pool worker records pool.tasks_completed / pool.task *after* the
  // task body releases the waiting caller, so those trailing records can
  // land a moment after parallel_map returns. Wait for them (bounded)
  // before disabling, or they would be dropped rather than late.
  for (int i = 0; i < 1000; ++i) {
    const auto snapshot = reg.counters();
    const auto it = snapshot.find("pool.tasks_completed");
    if (it != snapshot.end() && it->second >= 1u &&
        reg.timers().count("pool.task") == 1u)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  set_enabled(false);
  ASSERT_EQ(out.size(), 64u);
  EXPECT_DOUBLE_EQ(out[63], 126.0);

  const auto c = reg.counters();
  ASSERT_EQ(c.count("parallel_for.regions"), 1u);
  EXPECT_EQ(c.at("parallel_for.regions"), 1u);
  EXPECT_EQ(c.at("parallel_for.chunks"), 2u);
  // Chunk 0 runs on the caller; chunk 1 goes through the shared pool.
  EXPECT_GE(c.at("pool.tasks_submitted"), 1u);
  EXPECT_GE(c.at("pool.tasks_completed"), 1u);
  const auto timers = reg.timers();
  ASSERT_EQ(timers.count("parallel_for.chunk"), 1u);
  EXPECT_EQ(timers.at("parallel_for.chunk").count, 2u);
  EXPECT_GE(timers.at("pool.task").count, 1u);
  reg.reset();
}

TEST(ObsInstrumentation, MonteCarloRecordsSamplesAndChunks) {
  EnabledGuard guard;
  Registry& reg = Registry::global();
  reg.reset();
  set_enabled(true);
  const auto r =
      core::run_monte_carlo(core::pdf1d_inputs(), {}, 2048, 0.0, 7, 1);
  set_enabled(false);
  EXPECT_EQ(r.n_samples, 2048u);
  const auto c = reg.counters();
  EXPECT_EQ(c.at("montecarlo.samples"), 2048u);
  const auto timers = reg.timers();
  EXPECT_EQ(timers.at("montecarlo.run").count, 1u);
  // 2048 samples = two fixed 1024-sample chunks, even run serially.
  EXPECT_EQ(timers.at("montecarlo.chunk").count, 2u);
  reg.reset();
}

TEST(ObsInstrumentation, ResultsIdenticalEnabledAndDisabled) {
  // Observability must never perturb the numbers: bit-identical
  // Monte-Carlo and parallel_map results with collection on and off.
  EnabledGuard guard;
  const core::RatInputs in = core::md_inputs();
  const auto model = core::UncertaintyModel::typical(in);

  set_enabled(false);
  const auto off = core::run_monte_carlo(in, model, 1500, 10.0, 42, 2);
  const auto map_off = util::parallel_map(
      33, [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
      2);

  Registry::global().reset();
  set_enabled(true);
  const auto on = core::run_monte_carlo(in, model, 1500, 10.0, 42, 2);
  const auto map_on = util::parallel_map(
      33, [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
      2);
  set_enabled(false);

  EXPECT_EQ(off.speedup_sb_samples, on.speedup_sb_samples);
  EXPECT_DOUBLE_EQ(off.probability_of_goal, on.probability_of_goal);
  EXPECT_DOUBLE_EQ(off.speedup_sb.p50, on.speedup_sb.p50);
  EXPECT_EQ(map_off, map_on);
  Registry::global().reset();
}

TEST(ObsInstrumentation, DisabledRunLeavesRegistryEmpty) {
  EnabledGuard guard;
  Registry& reg = Registry::global();
  reg.reset();
  ASSERT_FALSE(enabled());
  (void)util::parallel_map(
      16, [](std::size_t i) { return static_cast<double>(i); }, 2);
  (void)core::run_monte_carlo(core::pdf1d_inputs(), {}, 100, 0.0, 3, 1);
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.timers().empty());
  EXPECT_TRUE(reg.spans().empty());
}

}  // namespace
}  // namespace rat::obs
