// LogHistogram: bucket layout at octave boundaries, percentile
// interpolation, merge associativity, the overflow bucket, and the
// Registry/metrics_json integration behind record_hist.
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace rat::obs {
namespace {

TEST(ObsHistogram, LinearRegionIsExact) {
  for (std::uint64_t v : {0ull, 1ull, 7ull, 100ull, 255ull}) {
    const std::size_t i = LogHistogram::bucket_index(v);
    EXPECT_EQ(i, v);
    EXPECT_EQ(LogHistogram::bucket_lo(i), v);
    EXPECT_EQ(LogHistogram::bucket_hi(i), v);
  }
}

TEST(ObsHistogram, OctaveBoundaries) {
  // First log octave [256, 512): 128 sub-buckets of width 2.
  EXPECT_EQ(LogHistogram::bucket_index(255), 255u);
  EXPECT_EQ(LogHistogram::bucket_index(256), 256u);
  EXPECT_EQ(LogHistogram::bucket_index(257), 256u);
  EXPECT_EQ(LogHistogram::bucket_lo(256), 256u);
  EXPECT_EQ(LogHistogram::bucket_hi(256), 257u);
  EXPECT_EQ(LogHistogram::bucket_index(511), 383u);
  EXPECT_EQ(LogHistogram::bucket_hi(383), 511u);
  // Next octave starts a fresh sub-bucket run of width 4.
  EXPECT_EQ(LogHistogram::bucket_index(512), 384u);
  EXPECT_EQ(LogHistogram::bucket_lo(384), 512u);
  EXPECT_EQ(LogHistogram::bucket_hi(384), 515u);
}

TEST(ObsHistogram, EveryValueLandsInsideItsBucket) {
  util::Rng rng(42);
  std::vector<std::uint64_t> values{255, 256, 257, 511, 512, 513,
                                    1023, 1024, 65535, 65536};
  for (int i = 0; i < 2000; ++i)
    values.push_back(rng.next_u64() >> (rng.uniform_index(50) + 8));
  for (const std::uint64_t v : values) {
    const std::size_t i = LogHistogram::bucket_index(v);
    EXPECT_LE(LogHistogram::bucket_lo(i), v) << v;
    EXPECT_GE(LogHistogram::bucket_hi(i), v) << v;
    // Bucket width bounds the relative error of any reconstruction.
    const double lo = static_cast<double>(LogHistogram::bucket_lo(i));
    const double hi = static_cast<double>(LogHistogram::bucket_hi(i));
    if (v >= 256)
      EXPECT_LE((hi - lo) / lo, LogHistogram::max_relative_error()) << v;
  }
}

TEST(ObsHistogram, PercentileInterpolation) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  // Values below 256 sit in exact unit buckets, so nearest-rank
  // percentiles are exact.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(90.0), 90.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 99.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
}

TEST(ObsHistogram, PercentileRelativeErrorWithinBound) {
  LogHistogram h;
  constexpr std::uint64_t kValue = 1'000'000'007;  // deep in log territory
  h.record(kValue, 1000);
  for (double p : {1.0, 50.0, 99.0, 99.9}) {
    const double got = h.percentile(p);
    EXPECT_NEAR(got, static_cast<double>(kValue),
                static_cast<double>(kValue) *
                    LogHistogram::max_relative_error())
        << p;
  }
}

TEST(ObsHistogram, StatsTrackExactExtremes) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  h.record(300);
  h.record(1000, 3);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 300u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), (300.0 + 3 * 1000.0) / 4.0);
}

TEST(ObsHistogram, MergeIsAssociative) {
  util::Rng rng(7);
  LogHistogram a, b, c;
  for (int i = 0; i < 500; ++i) a.record(rng.next_u64() >> 40);
  for (int i = 0; i < 300; ++i) b.record(rng.next_u64() >> 30);
  for (int i = 0; i < 200; ++i) c.record(rng.next_u64() >> 20);

  LogHistogram left(a);  // (a + b) + c
  left.merge(b);
  left.merge(c);
  LogHistogram bc(b);    // a + (b + c)
  bc.merge(c);
  LogHistogram right(a);
  right.merge(bc);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.overflow_count(), right.overflow_count());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
  EXPECT_DOUBLE_EQ(left.mean(), right.mean());
  for (double p = 0.5; p < 100.0; p += 0.5)
    EXPECT_DOUBLE_EQ(left.percentile(p), right.percentile(p)) << p;
}

TEST(ObsHistogram, OverflowBucket) {
  LogHistogram h(1000);
  h.record(500, 99);
  h.record(123456);  // above the ceiling
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_EQ(h.max(), 123456u);
  // Ranks inside the tracked range interpolate normally; the rank that
  // falls in the overflow bucket reports the exact observed max.
  EXPECT_NEAR(h.percentile(50.0), 500.0, 500.0 / 128.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 123456.0);
}

TEST(ObsHistogram, MergeRejectsMismatchedCeilings) {
  LogHistogram a(1000), b(2000);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(ObsHistogram, RegistryRecordsAndExportsHists) {
  Registry r;
  r.record_hist("op.latency", 2'000'000);
  r.record_hist("op.latency", 4'000'000);
  const auto hists = r.hists();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists.at("op.latency").count(), 2u);

  const std::string json = metrics_json(r);
  EXPECT_NE(json.find("\"hists\":{\"op.latency\":{\"count\":2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p99_sec\":"), std::string::npos);

  r.reset();
  EXPECT_TRUE(r.hists().empty());
}

}  // namespace
}  // namespace rat::obs
