// End-to-end: the open-loop runner against a real in-process svc::Server
// on loopback TCP. A fixed request count must come back fully answered
// with consistent report totals — and the server side must expose the
// matching svc.request histogram when observability is on.
#include "load/runner.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/parameters.hpp"
#include "io/json.hpp"
#include "load/mix.hpp"
#include "obs/metrics.hpp"
#include "svc/server.hpp"

namespace rat::load {
namespace {

Mix pdf_mix() {
  Mix mix;
  mix.add("pdf1d", core::pdf1d_inputs().serialize());
  mix.add("pdf2d", core::pdf2d_inputs().serialize());
  return mix;
}

TEST(LoadGen, AllRequestsAnsweredAndTotalsConsistent) {
  svc::Service service;
  svc::Server server(service, {.port = 0});
  server.start();
  ASSERT_GT(server.port(), 0);

  RunConfig cfg;
  cfg.port = server.port();
  cfg.connections = 8;
  cfg.requests = 300;
  cfg.arrival = Arrival::kPoisson;
  cfg.rate_hz = 5000.0;
  cfg.seed = 11;
  cfg.duplicate_ratio = 0.5;
  cfg.timeout_sec = 60.0;

  Mix mix = pdf_mix();
  const StepResult step = run_step(cfg, mix);

  EXPECT_EQ(step.sent, 300u);
  EXPECT_EQ(step.ok, 300u);  // every payload is a valid worksheet
  EXPECT_EQ(step.errors, 0u);
  EXPECT_EQ(step.lost, 0u);
  EXPECT_EQ(step.connection_drops, 0u);
  EXPECT_FALSE(step.timed_out);
  EXPECT_TRUE(step.error_codes.empty());
  EXPECT_EQ(step.latency.count(), 300u);
  EXPECT_GT(step.achieved_rate_hz, 0.0);
  EXPECT_GE(step.latency.percentile(99.0), step.latency.percentile(50.0));

  server.trigger_stop();
  server.run();
}

TEST(LoadGen, ReportJsonIsWellFormedAndSloGates) {
  svc::Service service;
  svc::Server server(service, {.port = 0});
  server.start();

  RunConfig cfg;
  cfg.port = server.port();
  cfg.connections = 4;
  cfg.requests = 50;
  cfg.rate_hz = 2000.0;
  cfg.seed = 3;

  Mix mix = pdf_mix();
  const StepResult step = run_step(cfg, mix);
  server.trigger_stop();
  server.run();

  // A generous SLO passes; an impossible one trips both gates.
  EXPECT_TRUE(slo_violations(step, {.p99_ms = 60000.0, .error_rate = 0.5})
                  .empty());
  SloConfig harsh;
  harsh.p99_ms = 1e-6;
  EXPECT_FALSE(slo_violations(step, harsh).empty());

  const std::vector<StepResult> steps{step};
  const std::string report =
      load_report_json(cfg, steps, {.p99_ms = 60000.0, .error_rate = 0.5},
                       {});
  const io::JsonValue doc = io::parse_json(report);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->string, "rat.load.v1");
  const io::JsonValue* parsed_steps = doc.find("steps");
  ASSERT_TRUE(parsed_steps && parsed_steps->is_array());
  ASSERT_EQ(parsed_steps->items.size(), 1u);
  const io::JsonValue& s0 = parsed_steps->items[0];
  EXPECT_EQ(static_cast<std::uint64_t>(s0.find("ok")->number), step.ok);
  EXPECT_TRUE(s0.find("latency_ms")->find("p99")->is_number());
  EXPECT_TRUE(doc.find("slo")->find("violations")->items.empty());
}

TEST(LoadGen, ServerSideHistogramMatchesRequestCount) {
  obs::Registry::global().reset();
  obs::set_enabled(true);
  {
    svc::Service service;
    svc::Server server(service, {.port = 0});
    server.start();

    RunConfig cfg;
    cfg.port = server.port();
    cfg.connections = 4;
    cfg.requests = 80;
    cfg.rate_hz = 4000.0;
    cfg.no_cache = true;  // every request takes the evaluate path
    Mix mix = pdf_mix();
    const StepResult step = run_step(cfg, mix);
    EXPECT_EQ(step.ok, 80u);

    server.trigger_stop();
    server.run();
  }
  obs::set_enabled(false);

  const auto hists = obs::Registry::global().hists();
  const auto it = hists.find("svc.request");
  ASSERT_NE(it, hists.end());
  EXPECT_EQ(it->second.count(), 80u);
  EXPECT_GT(it->second.percentile(99.0), 0.0);
  obs::Registry::global().reset();
}

}  // namespace
}  // namespace rat::load
