// Arrival schedules are pure functions of (kind, rate, count, seed) and
// request mixes are pure functions of (fixtures, ratio, seed) — the
// whole point of a reproducible load run.
#include "load/schedule.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parameters.hpp"
#include "load/mix.hpp"
#include "util/rng.hpp"

namespace rat::load {
namespace {

TEST(LoadSchedule, ConstantSpacing) {
  const auto offsets = build_schedule(Arrival::kConstant, 1000.0, 5, 1);
  ASSERT_EQ(offsets.size(), 5u);
  for (std::size_t i = 0; i < offsets.size(); ++i)
    EXPECT_EQ(offsets[i], i * 1'000'000ull);  // 1 ms apart at 1 kHz
}

TEST(LoadSchedule, PoissonSameSeedSameTimestamps) {
  const auto a = build_schedule(Arrival::kPoisson, 500.0, 2000, 42);
  const auto b = build_schedule(Arrival::kPoisson, 500.0, 2000, 42);
  EXPECT_EQ(a, b);
  const auto c = build_schedule(Arrival::kPoisson, 500.0, 2000, 43);
  EXPECT_NE(a, c);
}

TEST(LoadSchedule, PoissonShapeAndMeanRate) {
  const double rate = 2000.0;
  const std::size_t n = 20000;
  const auto offsets = build_schedule(Arrival::kPoisson, rate, n, 7);
  ASSERT_EQ(offsets.size(), n);
  EXPECT_EQ(offsets.front(), 0u);
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_GE(offsets[i], offsets[i - 1]);
  // Mean inter-arrival over 20k draws should sit within a few percent
  // of 1/rate.
  const double mean_gap_sec =
      static_cast<double>(offsets.back()) / 1e9 / static_cast<double>(n - 1);
  EXPECT_NEAR(mean_gap_sec, 1.0 / rate, 0.05 / rate);
}

TEST(LoadSchedule, RejectsBadRate) {
  EXPECT_THROW(build_schedule(Arrival::kConstant, 0.0, 10, 1),
               std::invalid_argument);
}

TEST(LoadSchedule, ParseArrivalNames) {
  EXPECT_EQ(parse_arrival("constant"), Arrival::kConstant);
  EXPECT_EQ(parse_arrival("poisson"), Arrival::kPoisson);
  EXPECT_FALSE(parse_arrival("uniform").has_value());
  EXPECT_STREQ(arrival_name(Arrival::kPoisson), "poisson");
}

TEST(LoadMix, DuplicateRatioOneReplaysBasesVerbatim) {
  Mix mix;
  const std::string base = core::pdf1d_inputs().serialize();
  mix.add("pdf1d", base);
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(mix.next(rng, 1.0), base);
}

TEST(LoadMix, DuplicateRatioZeroNeverRepeats) {
  Mix mix;
  const std::string base = core::pdf1d_inputs().serialize();
  mix.add("pdf1d", base);
  util::Rng rng(1);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    const std::string payload = mix.next(rng, 0.0);
    EXPECT_NE(payload, base);
    EXPECT_TRUE(seen.insert(payload).second) << "repeated payload";
    // Variants must still be valid worksheets.
    EXPECT_NO_THROW(core::RatInputs::parse(payload));
  }
}

TEST(LoadMix, SameSeedSamePayloadStream) {
  const std::string base = core::pdf1d_inputs().serialize();
  Mix a, b;
  a.add("pdf1d", base);
  b.add("pdf1d", base);
  util::Rng ra(9), rb(9);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.next(ra, 0.5), b.next(rb, 0.5));
}

}  // namespace
}  // namespace rat::load
