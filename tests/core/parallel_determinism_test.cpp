// Determinism proofs for the parallel evaluation engine: every parallel
// entry point must produce results bit-identical to its serial run, at any
// thread count, and identical across repeated runs with the same seed.
#include <gtest/gtest.h>

#include <vector>

#include "core/designspace.hpp"
#include "core/montecarlo.hpp"
#include "core/sensitivity.hpp"
#include "core/units.hpp"
#include "util/rng.hpp"

namespace rat::core {
namespace {

const std::vector<std::size_t> kThreadCounts = {1, 2, 8};

/// PDF-like factory whose throughput scales with parallelism; skips the
/// indivisible 3x points so skipped-coverage is exercised too.
CandidateFactory scaling_factory() {
  return [](const DesignPoint& p) -> std::optional<DesignCandidate> {
    if (p.parallelism == 3) return std::nullopt;
    DesignCandidate c;
    c.inputs = pdf1d_inputs();
    c.inputs.name = p.label();
    c.inputs.comp.throughput_ops_per_cycle =
        2.5 * static_cast<double>(p.parallelism);
    c.resources = {ResourceItem{"units", 1, p.format_bits, 0, 400,
                                static_cast<int>(p.parallelism)}};
    return c;
  };
}

DesignAxes wide_axes() {
  DesignAxes axes;
  axes.parallelism = {1, 2, 3, 4, 6, 8, 12, 16};
  axes.fclock_hz = {mhz(75), mhz(100), mhz(150)};
  axes.format_bits = {12, 18, 24};
  return axes;
}

void expect_same_outcome(const DesignSpaceResult& a,
                         const DesignSpaceResult& b) {
  EXPECT_EQ(a.outcome.proceed, b.outcome.proceed);
  EXPECT_EQ(a.outcome.accepted_index, b.outcome.accepted_index);
  EXPECT_EQ(a.outcome.last_reject, b.outcome.last_reject);
  // Per-candidate logs must be byte-identical.
  EXPECT_EQ(a.outcome.render_trace(), b.outcome.render_trace());
  ASSERT_EQ(a.outcome.predictions.size(), b.outcome.predictions.size());
  for (std::size_t i = 0; i < a.outcome.predictions.size(); ++i) {
    EXPECT_EQ(a.outcome.predictions[i].speedup_sb,
              b.outcome.predictions[i].speedup_sb);
    EXPECT_EQ(a.outcome.predictions[i].t_comm_sec,
              b.outcome.predictions[i].t_comm_sec);
    EXPECT_EQ(a.outcome.predictions[i].t_comp_sec,
              b.outcome.predictions[i].t_comp_sec);
  }
  EXPECT_EQ(a.points_total, b.points_total);
  EXPECT_EQ(a.points_skipped, b.points_skipped);
  EXPECT_EQ(a.skipped_labels, b.skipped_labels);
}

TEST(ParallelDeterminism, ExploreAcceptedDesignThreadCountInvariant) {
  Requirements req;
  req.min_speedup = 7.0;  // accepted mid-space: later points never evaluated
  const auto serial = explore_design_space(wide_axes(), scaling_factory(),
                                           req, rcsim::virtex4_lx100(), 1);
  ASSERT_TRUE(serial.outcome.proceed) << serial.outcome.render_trace();
  for (std::size_t threads : kThreadCounts) {
    const auto parallel = explore_design_space(
        wide_axes(), scaling_factory(), req, rcsim::virtex4_lx100(), threads);
    expect_same_outcome(serial, parallel);
  }
}

TEST(ParallelDeterminism, ExploreExhaustedSpaceThreadCountInvariant) {
  Requirements req;
  req.min_speedup = 1e9;  // unreachable: every candidate is evaluated
  const auto serial = explore_design_space(wide_axes(), scaling_factory(),
                                           req, rcsim::virtex4_lx100(), 1);
  ASSERT_FALSE(serial.outcome.proceed);
  for (std::size_t threads : kThreadCounts) {
    const auto parallel = explore_design_space(
        wide_axes(), scaling_factory(), req, rcsim::virtex4_lx100(), threads);
    expect_same_outcome(serial, parallel);
  }
}

TEST(ParallelDeterminism, ExploreRecordsSkippedLabelsInEnumerationOrder) {
  Requirements req;
  req.min_speedup = 7.0;
  const auto result = explore_design_space(wide_axes(), scaling_factory(),
                                           req, rcsim::virtex4_lx100(), 8);
  // 3x is skipped for every clock x format combination: 3 x 3 = 9 points.
  ASSERT_EQ(result.points_skipped, 9u);
  ASSERT_EQ(result.skipped_labels.size(), 9u);
  EXPECT_EQ(result.skipped_labels.front(), "3x @ 75 MHz / 12-bit");
  EXPECT_EQ(result.skipped_labels.back(), "3x @ 150 MHz / 24-bit");
}

TEST(ParallelDeterminism, MonteCarloThreadCountInvariant) {
  const RatInputs in = md_inputs();
  const auto model = UncertaintyModel::typical(in);
  // 5000 samples spans several 1024-sample chunks, with a partial tail.
  const auto serial = run_monte_carlo(in, model, 5000, 10.0, 42, 1);
  ASSERT_EQ(serial.speedup_sb_samples.size(), 5000u);
  for (std::size_t threads : kThreadCounts) {
    const auto parallel = run_monte_carlo(in, model, 5000, 10.0, 42, threads);
    EXPECT_EQ(serial.speedup_sb_samples, parallel.speedup_sb_samples)
        << "thread count " << threads;
    EXPECT_EQ(serial.probability_of_goal, parallel.probability_of_goal);
    EXPECT_EQ(serial.speedup_sb.p10, parallel.speedup_sb.p10);
    EXPECT_EQ(serial.speedup_sb.p50, parallel.speedup_sb.p50);
    EXPECT_EQ(serial.speedup_sb.p90, parallel.speedup_sb.p90);
    EXPECT_EQ(serial.speedup_db.mean, parallel.speedup_db.mean);
    EXPECT_EQ(serial.t_comm_sec.p50, parallel.t_comm_sec.p50);
  }
}

TEST(ParallelDeterminism, MonteCarloRepeatableAcrossRunsAndSeedsDiffer) {
  const RatInputs in = md_inputs();
  const auto model = UncertaintyModel::typical(in);
  const auto a = run_monte_carlo(in, model, 3000, 10.0, 7, 8);
  const auto b = run_monte_carlo(in, model, 3000, 10.0, 7, 8);
  EXPECT_EQ(a.speedup_sb_samples, b.speedup_sb_samples);
  EXPECT_EQ(a.probability_of_goal, b.probability_of_goal);
  const auto c = run_monte_carlo(in, model, 3000, 10.0, 8, 8);
  EXPECT_NE(a.speedup_sb_samples, c.speedup_sb_samples);
}

TEST(ParallelDeterminism, SweepParameterMatchesSerial) {
  const RatInputs in = pdf1d_inputs();
  std::vector<double> values;
  for (int i = 1; i <= 200; ++i) values.push_back(static_cast<double>(i));
  const auto set = [](RatInputs& r, double v) {
    r.comp.throughput_ops_per_cycle = v;
  };
  const auto serial = sweep_parameter(in, set, values, mhz(100), 1);
  for (std::size_t threads : kThreadCounts) {
    const auto parallel = sweep_parameter(in, set, values, mhz(100), threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].speedup_sb, parallel[i].speedup_sb);
      EXPECT_EQ(serial[i].t_comp_sec, parallel[i].t_comp_sec);
    }
  }
}

TEST(ParallelDeterminism, TornadoRankingMatchesSerial) {
  const RatInputs in = md_inputs();
  const auto serial = tornado(in, mhz(100), 0.2, 1);
  for (std::size_t threads : kThreadCounts) {
    const auto parallel = tornado(in, mhz(100), 0.2, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].parameter, parallel[i].parameter);
      EXPECT_EQ(serial[i].speedup_low, parallel[i].speedup_low);
      EXPECT_EQ(serial[i].speedup_high, parallel[i].speedup_high);
    }
  }
}

TEST(ParallelDeterminism, PrecisionParallelSweepMatchesSerial) {
  // Quantization kernel over a shared read-only dataset: thread-safe.
  util::Rng rng(33);
  std::vector<double> ref(512);
  for (auto& x : ref) x = rng.uniform(0.0, 0.9);
  const fx::FixedKernel kernel = [ref](fx::Format fmt) {
    std::vector<double> out;
    out.reserve(ref.size());
    for (double x : ref)
      out.push_back(fx::Fixed::from_double(x, fmt).to_double());
    return out;
  };
  PrecisionRequirements serial_req{0.05, 8, 24, 0};
  PrecisionRequirements parallel_req = serial_req;
  parallel_req.kernel_thread_safe = true;

  const auto serial = run_precision_test(kernel, ref, serial_req);
  const auto parallel = run_precision_test(kernel, ref, parallel_req);
  EXPECT_EQ(serial.satisfied, parallel.satisfied);
  ASSERT_EQ(serial.sweep.size(), parallel.sweep.size());
  for (std::size_t i = 0; i < serial.sweep.size(); ++i) {
    EXPECT_EQ(serial.sweep[i].format.total_bits,
              parallel.sweep[i].format.total_bits);
    EXPECT_EQ(serial.sweep[i].report.max_error_percent,
              parallel.sweep[i].report.max_error_percent);
    EXPECT_EQ(serial.sweep[i].report.rmse, parallel.sweep[i].report.rmse);
  }
  ASSERT_TRUE(serial.choice.has_value());
  ASSERT_TRUE(parallel.choice.has_value());
  EXPECT_EQ(serial.choice->format.total_bits,
            parallel.choice->format.total_bits);
}

}  // namespace
}  // namespace rat::core
