#include "core/ranking.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/md.hpp"
#include "apps/pdf1d.hpp"
#include "apps/pdf2d.hpp"
#include "core/units.hpp"

namespace rat::core {
namespace {

RankedCandidate candidate(const std::string& label, RatInputs in,
                          std::vector<ResourceItem> items,
                          rcsim::Device device, double clock = mhz(150)) {
  RankedCandidate c;
  c.label = label;
  c.inputs = std::move(in);
  c.fclock_hz = clock;
  c.resources = std::move(items);
  c.device = std::move(device);
  return c;
}

std::vector<RankedCandidate> case_study_candidates() {
  return {
      candidate("1-D PDF @150", pdf1d_inputs(),
                apps::Pdf1dDesign().resource_items(),
                rcsim::virtex4_lx100()),
      candidate("2-D PDF @150", pdf2d_inputs(),
                apps::Pdf2dDesign().resource_items(),
                rcsim::virtex4_lx100()),
      candidate("MD @100", md_inputs(), apps::MdDesign().resource_items(),
                rcsim::stratix2_ep2s180(), mhz(100)),
  };
}

TEST(Ranking, OrdersBySpeedupAmongFeasible) {
  const auto results = rank_designs(case_study_candidates());
  ASSERT_EQ(results.size(), 3u);
  // Predicted: MD 10.7, 1-D PDF 10.6, 2-D PDF 6.9 — all feasible.
  EXPECT_EQ(results[0].label, "MD @100");
  EXPECT_EQ(results[1].label, "1-D PDF @150");
  EXPECT_EQ(results[2].label, "2-D PDF @150");
  for (const auto& r : results) EXPECT_TRUE(r.feasible);
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_GE(results[i - 1].speedup, results[i].speedup);
}

TEST(Ranking, InfeasibleSinksBelowFeasible) {
  auto candidates = case_study_candidates();
  // An absurdly fast design that cannot fit: 200 MACs on the LX100.
  RatInputs fast = pdf1d_inputs();
  fast.comp.throughput_ops_per_cycle = 600.0;
  candidates.push_back(candidate(
      "oversized", fast, {ResourceItem{"MACs", 1, 18, 0, 100, 200}},
      rcsim::virtex4_lx100()));
  const auto results = rank_designs(candidates);
  EXPECT_EQ(results.back().label, "oversized");
  EXPECT_FALSE(results.back().feasible);
  EXPECT_GT(results.back().speedup, results.front().speedup);
}

TEST(Ranking, DoubleBufferedFlagUsesDbSpeedup) {
  RankedCandidate c = case_study_candidates()[0];
  const auto sb = rank_designs({c})[0].speedup;
  c.double_buffered = true;
  const auto db = rank_designs({c})[0].speedup;
  EXPECT_GT(db, sb);
}

TEST(Ranking, EmptyLabelFallsBackToWorksheetName) {
  RankedCandidate c = case_study_candidates()[0];
  c.label.clear();
  const auto results = rank_designs({c});
  EXPECT_EQ(results[0].label, "1-D PDF estimation");
}

TEST(Ranking, TableLayout) {
  const auto t = ranking_table(rank_designs(case_study_candidates()));
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.cell(0, 0), "1");
  EXPECT_EQ(t.cell(0, 1), "MD @100");
  EXPECT_EQ(t.cell(0, 6), "yes");
}

TEST(Ranking, RejectsEmptyInput) {
  EXPECT_THROW(rank_designs({}), std::invalid_argument);
}

}  // namespace
}  // namespace rat::core
