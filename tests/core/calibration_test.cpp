#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rat::core {
namespace {

std::vector<TransferSample> exact_samples(double overhead, double bw) {
  std::vector<TransferSample> out;
  for (std::size_t bytes : {256u, 1024u, 4096u, 65536u, 1048576u})
    out.push_back({bytes, overhead + static_cast<double>(bytes) / bw});
  return out;
}

TEST(Calibration, RecoversExactParameters) {
  const auto fit = fit_link_direction(exact_samples(2.61e-6, 7.0e8));
  EXPECT_NEAR(fit.fixed_overhead_sec, 2.61e-6, 1e-9);
  EXPECT_NEAR(fit.sustained_bw, 7.0e8, 1e3);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_LT(fit.max_relative_residual, 1e-9);
}

TEST(Calibration, Validation) {
  std::vector<TransferSample> one{{1024, 1e-5}};
  EXPECT_THROW(fit_link_direction(one), std::invalid_argument);
  std::vector<TransferSample> same_size{{1024, 1e-5}, {1024, 1.1e-5}};
  EXPECT_THROW(fit_link_direction(same_size), std::invalid_argument);
  std::vector<TransferSample> bad_time{{1024, 0.0}, {2048, 1e-5}};
  EXPECT_THROW(fit_link_direction(bad_time), std::invalid_argument);
  // Time decreasing with size: negative per-byte cost.
  std::vector<TransferSample> inverted{{1024, 2e-5}, {1048576, 1e-5}};
  EXPECT_THROW(fit_link_direction(inverted), std::invalid_argument);
}

TEST(Calibration, NegativeInterceptClampsToZeroOverhead) {
  // Concave data can produce a slightly negative intercept; the fit must
  // report a physical (zero) overhead rather than a negative one.
  std::vector<TransferSample> samples{
      {1000, 0.9e-6}, {2000, 2.1e-6}, {4000, 4.05e-6}};
  const auto fit = fit_link_direction(samples);
  EXPECT_GE(fit.fixed_overhead_sec, 0.0);
}

TEST(Calibration, RoundTripsTheNallatechModel) {
  // Calibrating against the simulated Nallatech bus recovers its own
  // parameters (no jitter -> machine precision).
  const auto link = rcsim::nallatech_pcix_link();
  std::vector<std::size_t> sizes;
  for (std::size_t s = 256; s <= (1u << 20); s *= 4) sizes.push_back(s);
  const auto [h2f, f2h] = calibrate_from_microbench(link, sizes);
  EXPECT_NEAR(h2f.fixed_overhead_sec, 2.61e-6, 1e-8);
  EXPECT_NEAR(h2f.sustained_bw, 7.0e8, 1e5);
  EXPECT_NEAR(f2h.fixed_overhead_sec, 9.87e-6, 1e-8);
}

TEST(Calibration, ToleratesJitterWithAveraging) {
  rcsim::Link link = rcsim::nallatech_pcix_link();
  link.set_jitter(0.15);
  std::vector<std::size_t> sizes;
  for (std::size_t s = 256; s <= (1u << 20); s *= 2) sizes.push_back(s);
  const auto [h2f, f2h] =
      calibrate_from_microbench(link, sizes, /*repeats=*/256, /*seed=*/3);
  EXPECT_NEAR(h2f.sustained_bw, 7.0e8, 0.05 * 7.0e8);
  EXPECT_NEAR(f2h.fixed_overhead_sec, 9.87e-6, 0.3 * 9.87e-6);
  EXPECT_GT(h2f.r_squared, 0.99);
}

TEST(Calibration, FittedCurveSuppliesAlphaAtEverySize) {
  // The §4.3 lesson: a single-probe alpha misleads at other sizes. The
  // fitted curve reproduces the true alpha across the whole range.
  const auto link = rcsim::nallatech_pcix_link();
  std::vector<std::size_t> sizes{512, 2048, 16384, 262144};
  const auto [h2f, _] = calibrate_from_microbench(link, sizes);
  for (std::size_t bytes : {300u, 2048u, 100000u, 4000000u}) {
    EXPECT_NEAR(h2f.alpha_at(bytes, link.documented_bw()),
                link.measured_alpha(bytes, rcsim::Direction::kHostToFpga),
                0.01)
        << bytes;
  }
  EXPECT_DOUBLE_EQ(h2f.alpha_at(0, 1e9), 0.0);
}

TEST(Calibration, ToDirectionBuildsUsableLink) {
  const auto fit = fit_link_direction(exact_samples(5e-6, 5e8));
  const auto dir = fit.to_direction(1e-6);
  EXPECT_DOUBLE_EQ(dir.rearm_sec, 1e-6);
  const rcsim::Link link("fitted", 1e9, dir, dir);
  EXPECT_NEAR(link.single_transfer_time(5000, rcsim::Direction::kHostToFpga),
              5e-6 + 1e-5, 1e-9);
}

}  // namespace
}  // namespace rat::core
