#include "core/methodology.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/units.hpp"
#include "util/rng.hpp"

namespace rat::core {
namespace {

/// A candidate whose throughput/precision/resources can be dialed to pass
/// or fail each Fig.-1 test independently.
DesignCandidate make_candidate(const std::string& name, double ops_per_cycle,
                               int mult_count, double kernel_quality_bits) {
  DesignCandidate c;
  c.inputs = pdf1d_inputs();
  c.inputs.name = name;
  c.inputs.comp.throughput_ops_per_cycle = ops_per_cycle;
  c.decision_clock_hz = mhz(100);

  // Precision kernel: quantize a fixed dataset; "quality" shifts how many
  // bits it needs by scaling the signal down (wasting leading bits).
  static const std::vector<double> ref = [] {
    util::Rng rng(3);
    std::vector<double> xs(200);
    for (auto& x : xs) x = rng.uniform(-0.9, 0.9);
    return xs;
  }();
  const double scale = std::ldexp(1.0, -static_cast<int>(kernel_quality_bits));
  c.precision_reference = ref;
  c.precision_kernel = [scale](fx::Format fmt) {
    std::vector<double> out;
    out.reserve(ref.size());
    for (double x : ref) {
      const auto q = fx::Fixed::from_double(x * scale, fmt,
                                            fx::Rounding::kTruncate);
      out.push_back(q.to_double() / scale);
    }
    return out;
  };
  c.resources = {ResourceItem{"MACs", 1, 18, 0, 400, mult_count}};
  return c;
}

Requirements default_req() {
  Requirements req;
  req.min_speedup = 5.0;
  req.precision = PrecisionRequirements{2.0, 8, 24, 0};
  return req;
}

TEST(Methodology, AcceptsGoodCandidate) {
  const auto out = run_methodology({make_candidate("good", 20, 8, 0)},
                                   default_req(), rcsim::virtex4_lx100());
  EXPECT_TRUE(out.proceed);
  ASSERT_TRUE(out.accepted_index.has_value());
  EXPECT_EQ(*out.accepted_index, 0u);
  EXPECT_EQ(out.last_reject, RejectReason::kNone);
  // Trace: throughput, precision, resource, PROCEED.
  ASSERT_EQ(out.trace.size(), 4u);
  EXPECT_EQ(out.trace.back().step, Step::kProceed);
}

TEST(Methodology, RejectsOnThroughputFirst) {
  // 0.5 ops/cycle -> predicted speedup far below 5x; later tests not run.
  const auto out = run_methodology({make_candidate("slow", 0.5, 8, 0)},
                                   default_req(), rcsim::virtex4_lx100());
  EXPECT_FALSE(out.proceed);
  EXPECT_EQ(out.last_reject, RejectReason::kInsufficientThroughput);
  ASSERT_EQ(out.trace.size(), 2u);  // throughput FAIL + rejected
  EXPECT_EQ(out.trace[0].step, Step::kThroughputTest);
  EXPECT_FALSE(out.trace[0].passed);
}

TEST(Methodology, RejectsOnPrecision) {
  // Wasting 30 leading bits makes even 24-bit formats fail 2% tolerance.
  const auto out = run_methodology({make_candidate("imprecise", 20, 8, 30)},
                                   default_req(), rcsim::virtex4_lx100());
  EXPECT_FALSE(out.proceed);
  EXPECT_EQ(out.last_reject, RejectReason::kUnrealizablePrecision);
}

TEST(Methodology, RejectsOnResources) {
  const auto out = run_methodology({make_candidate("huge", 20, 200, 0)},
                                   default_req(), rcsim::virtex4_lx100());
  EXPECT_FALSE(out.proceed);
  EXPECT_EQ(out.last_reject, RejectReason::kInsufficientResources);
}

TEST(Methodology, IteratesUntilSuitableVersionFound) {
  // Paper §3: applied iteratively until a suitable version is formulated.
  const auto out = run_methodology(
      {make_candidate("v1 too slow", 0.5, 8, 0),
       make_candidate("v2 too big", 20, 200, 0),
       make_candidate("v3 good", 20, 8, 0)},
      default_req(), rcsim::virtex4_lx100());
  EXPECT_TRUE(out.proceed);
  EXPECT_EQ(*out.accepted_index, 2u);
  EXPECT_EQ(out.predictions.size(), 3u);
}

TEST(Methodology, AllPermutationsExhausted) {
  const auto out = run_methodology(
      {make_candidate("v1", 0.5, 8, 0), make_candidate("v2", 0.4, 8, 0)},
      default_req(), rcsim::virtex4_lx100());
  EXPECT_FALSE(out.proceed);
  EXPECT_FALSE(out.accepted_index.has_value());
}

TEST(Methodology, PrecisionTestSkippableLikeMd) {
  Requirements req = default_req();
  req.precision.reset();  // HLL float design: no fixed-point search
  DesignCandidate c = make_candidate("md-like", 20, 8, 0);
  c.precision_kernel = nullptr;  // would throw if the test were run
  const auto out =
      run_methodology({c}, req, rcsim::stratix2_ep2s180());
  EXPECT_TRUE(out.proceed);
  ASSERT_EQ(out.trace.size(), 3u);  // no precision entry
}

TEST(Methodology, MissingKernelWithPrecisionRequestedThrows) {
  DesignCandidate c = make_candidate("broken", 20, 8, 0);
  c.precision_kernel = nullptr;
  EXPECT_THROW(
      run_methodology({c}, default_req(), rcsim::virtex4_lx100()),
      std::invalid_argument);
}

TEST(Methodology, DoubleBufferedRequirementUsesDbSpeedup) {
  // A candidate whose SB speedup misses but DB speedup meets the bar.
  DesignCandidate c = make_candidate("db-rescued", 20, 8, 0);
  c.inputs.comm.alpha_write = 0.01;  // comm-heavy: SB penalized
  Requirements req = default_req();
  req.min_speedup = 5.0;
  const auto sb = run_methodology({c}, req, rcsim::virtex4_lx100());
  EXPECT_FALSE(sb.proceed);
  req.double_buffered = true;
  const auto db = run_methodology({c}, req, rcsim::virtex4_lx100());
  EXPECT_TRUE(db.proceed);
}

TEST(Methodology, OptionalPowerGatePassesFrugalDesign) {
  Requirements req = default_req();
  req.min_energy_ratio = 2.0;  // must save at least 2x energy
  const auto out = run_methodology({make_candidate("good", 20, 8, 0)}, req,
                                   rcsim::virtex4_lx100());
  EXPECT_TRUE(out.proceed) << out.render_trace();
  // Trace gains a power entry before PROCEED.
  ASSERT_EQ(out.trace.size(), 5u);
  EXPECT_EQ(out.trace[3].step, Step::kPowerTest);
  EXPECT_TRUE(out.trace[3].passed);
}

TEST(Methodology, OptionalPowerGateRejectsPowerHungryFpga) {
  Requirements req = default_req();
  req.min_energy_ratio = 2.0;
  // A power-hungry board (big static draw) against a frugal host: the
  // migration is fast but burns more energy than it saves.
  req.power_model.static_watts = 150.0;
  req.host_power_model.busy_watts = 15.0;
  req.host_power_model.idle_watts = 5.0;
  const auto out = run_methodology({make_candidate("good", 20, 8, 0)}, req,
                                   rcsim::virtex4_lx100());
  EXPECT_FALSE(out.proceed);
  EXPECT_EQ(out.last_reject, RejectReason::kInsufficientEnergySavings);
}

TEST(Methodology, PowerGateSkippedByDefault) {
  const auto out = run_methodology({make_candidate("good", 20, 8, 0)},
                                   default_req(), rcsim::virtex4_lx100());
  for (const auto& e : out.trace) EXPECT_NE(e.step, Step::kPowerTest);
}

TEST(Methodology, InputValidation) {
  EXPECT_THROW(
      run_methodology({}, default_req(), rcsim::virtex4_lx100()),
      std::invalid_argument);
  Requirements req = default_req();
  req.min_speedup = 0.0;
  EXPECT_THROW(run_methodology({make_candidate("x", 20, 8, 0)}, req,
                               rcsim::virtex4_lx100()),
               std::invalid_argument);
}

TEST(Methodology, TraceRenders) {
  const auto out = run_methodology({make_candidate("good", 20, 8, 0)},
                                   default_req(), rcsim::virtex4_lx100());
  const std::string s = out.render_trace();
  EXPECT_NE(s.find("throughput PASS"), std::string::npos);
  EXPECT_NE(s.find("PROCEED"), std::string::npos);
}

}  // namespace
}  // namespace rat::core
