#include "core/resources.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rat::core {
namespace {

TEST(ResourceTest, LowersMultipliersThroughVendorModel) {
  const auto device = rcsim::virtex4_lx100();
  // 8 x 18-bit multipliers -> 8 DSP48s; 8 x 32-bit -> 16 DSP48s.
  const auto r18 = run_resource_test(
      {ResourceItem{"mac18", 1, 18, 0, 0, 8}}, device);
  EXPECT_EQ(r18.usage.dsp, 8);
  const auto r32 = run_resource_test(
      {ResourceItem{"mac32", 1, 32, 0, 0, 8}}, device);
  EXPECT_EQ(r32.usage.dsp, 16);
}

TEST(ResourceTest, BuffersLowerToBramBlocks) {
  const auto device = rcsim::virtex4_lx100();
  const auto r = run_resource_test(
      {ResourceItem{"buf", 0, 18, 4 * 2304, 0, 1}}, device);
  EXPECT_EQ(r.usage.bram, 4);
}

TEST(ResourceTest, InstancesMultiplyEverything) {
  const auto device = rcsim::virtex4_lx100();
  const auto r = run_resource_test(
      {ResourceItem{"lane", 2, 18, 2304, 100, 3}}, device);
  EXPECT_EQ(r.usage.dsp, 6);
  EXPECT_EQ(r.usage.bram, 3);
  EXPECT_EQ(r.usage.logic, 300);
  ASSERT_EQ(r.breakdown.size(), 1u);
  EXPECT_EQ(r.breakdown[0].usage.dsp, 6);
}

TEST(ResourceTest, FeasibilityAgainstInventory) {
  const auto device = rcsim::virtex4_lx100();
  const auto fits = run_resource_test(
      {ResourceItem{"ok", 1, 18, 0, 100, 96}}, device);
  EXPECT_TRUE(fits.feasible);
  const auto overflow = run_resource_test(
      {ResourceItem{"too many", 1, 18, 0, 0, 97}}, device);
  EXPECT_FALSE(overflow.feasible);
}

TEST(ResourceTest, LogicFillLimitApplies) {
  const auto device = rcsim::virtex4_lx100();
  const auto tight = run_resource_test(
      {ResourceItem{"logic", 0, 18, 0, 47000, 1}}, device, 0.9);
  EXPECT_FALSE(tight.feasible);  // 47000/49152 > 0.9
  const auto relaxed = run_resource_test(
      {ResourceItem{"logic", 0, 18, 0, 47000, 1}}, device, 0.99);
  EXPECT_TRUE(relaxed.feasible);
}

TEST(ResourceTest, RejectsNonPositiveInstances) {
  const auto device = rcsim::virtex4_lx100();
  EXPECT_THROW(
      run_resource_test({ResourceItem{"bad", 1, 18, 0, 0, 0}}, device),
      std::invalid_argument);
}

TEST(ResourceTest, TableUsesDeviceUnitNames) {
  const auto v4 = rcsim::virtex4_lx100();
  const auto r = run_resource_test({ResourceItem{"m", 1, 18, 2304, 50, 4}},
                                   v4);
  const auto t = r.to_table(v4);
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.cell(0, 0), "DSP48s");
  EXPECT_EQ(t.cell(1, 0), "BRAM18s");
  EXPECT_EQ(t.cell(2, 0), "slices");
  EXPECT_EQ(t.cell(0, 1), "4%");  // 4/96

  const auto s2 = rcsim::stratix2_ep2s180();
  const auto r2 = run_resource_test({ResourceItem{"m", 1, 36, 0, 0, 1}}, s2);
  const auto t2 = r2.to_table(s2);
  EXPECT_EQ(t2.cell(0, 0), "9-bit DSPs");
  EXPECT_EQ(t2.cell(2, 0), "ALUTs");
}

TEST(ResourceTest, EmptyDesignIsFreeAndFeasible) {
  const auto r = run_resource_test({}, rcsim::virtex4_lx100());
  EXPECT_EQ(r.usage, (rcsim::ResourceUsage{0, 0, 0}));
  EXPECT_TRUE(r.feasible);
}

}  // namespace
}  // namespace rat::core
