#include "core/devtime.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/units.hpp"

namespace rat::core {
namespace {

BreakEvenInputs economics(double dev_hours, double runs_per_month,
                          double horizon = 24.0) {
  BreakEvenInputs e;
  e.development_hours = dev_hours;
  e.runs_per_month = runs_per_month;
  e.months_horizon = horizon;
  return e;
}

TEST(BreakEven, SavingsArithmetic) {
  // 2-D PDF at 150 MHz: tsoft 158.8 s, tRC 23.0 s -> ~135.8 s saved/run.
  const auto pred = predict(pdf2d_inputs(), mhz(150));
  const auto r = break_even(pred, 158.8, economics(50.0, 300.0));
  EXPECT_NEAR(r.time_saved_per_run_sec, 158.8 - pred.t_rc_sb_sec, 1e-9);
  EXPECT_NEAR(r.hours_saved_per_month,
              r.time_saved_per_run_sec * 300.0 / 3600.0, 1e-9);
  ASSERT_TRUE(r.break_even_months.has_value());
  EXPECT_NEAR(*r.break_even_months, 50.0 / r.hours_saved_per_month, 1e-9);
  EXPECT_TRUE(r.worth_it());
}

TEST(BreakEven, SlowdownNeverBreaksEven) {
  RatInputs in = pdf1d_inputs();
  in.comp.throughput_ops_per_cycle = 1.0;  // slower than software
  const auto pred = predict(in, mhz(75));
  ASSERT_LT(pred.speedup_sb, 1.0);
  const auto r = break_even(pred, 0.578, economics(10.0, 1000.0));
  EXPECT_FALSE(r.break_even_months.has_value());
  EXPECT_LT(r.net_hours_over_horizon, 0.0);
  EXPECT_FALSE(r.worth_it());
}

TEST(BreakEven, OutsideHorizonIsNotWorthIt) {
  // Tiny per-run saving, rare runs, huge effort: break-even far beyond
  // the window.
  const auto pred = predict(pdf1d_inputs(), mhz(150));  // saves ~0.5 s/run
  const auto r = break_even(pred, 0.578, economics(1000.0, 1.0, 12.0));
  EXPECT_FALSE(r.break_even_months.has_value());
  EXPECT_FALSE(r.worth_it());
}

TEST(BreakEven, ZeroEffortPaysImmediately) {
  const auto pred = predict(pdf2d_inputs(), mhz(150));
  const auto r = break_even(pred, 158.8, economics(0.0, 10.0));
  ASSERT_TRUE(r.break_even_months.has_value());
  EXPECT_DOUBLE_EQ(*r.break_even_months, 0.0);
}

TEST(BreakEven, Validation) {
  const auto pred = predict(pdf1d_inputs(), mhz(100));
  EXPECT_THROW(break_even(pred, 0.0, economics(1, 1)),
               std::invalid_argument);
  EXPECT_THROW(break_even(pred, 1.0, economics(-1, 1)),
               std::invalid_argument);
  EXPECT_THROW(break_even(pred, 1.0, economics(1, 1, 0.0)),
               std::invalid_argument);
}

TEST(RequiredSpeedup, RoundTripsThroughBreakEven) {
  const BreakEvenInputs e = economics(100.0, 500.0, 24.0);
  const auto s = required_speedup(158.8, e);
  ASSERT_TRUE(s.has_value());
  EXPECT_GT(*s, 1.0);
  // A design exactly at the required speedup nets ~zero over the horizon.
  ThroughputPrediction tuned;
  tuned.t_rc_sb_sec = 158.8 / *s;
  const auto r = break_even(tuned, 158.8, e);
  EXPECT_NEAR(r.net_hours_over_horizon, 0.0, 1e-6);
}

TEST(RequiredSpeedup, ImpossibleEconomicsReturnsNullopt) {
  // Effort so large even infinite speedup cannot recoup it in the window.
  EXPECT_FALSE(required_speedup(1.0, economics(1e6, 1.0, 1.0)).has_value());
  // No runs at all: nothing to save.
  EXPECT_FALSE(required_speedup(10.0, economics(10.0, 0.0)).has_value());
  EXPECT_THROW(required_speedup(0.0, economics(1, 1)),
               std::invalid_argument);
}

TEST(RequiredSpeedup, ZeroEffortNeedsOnlyParity) {
  const auto s = required_speedup(10.0, economics(0.0, 5.0));
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(*s, 1.0);
}

}  // namespace
}  // namespace rat::core
