// Property suite pinning the SoA batch kernel's bit-identity contract
// (docs/VECTORIZATION.md): for every worksheet, predict(),
// predict_unchecked(), and predict_batch() with scalar or SIMD lanes
// produce byte-identical predictions — and every rewired consumer
// (Monte Carlo, sweeps, tornado, methodology windows) returns exactly
// what the per-point scalar implementation returned, at any thread
// count, with identical validation diagnostics.
//
// Comparisons are memcmp over the raw double bit patterns, not
// EXPECT_DOUBLE_EQ: the contract is identity, not closeness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/batch.hpp"
#include "core/designspace.hpp"
#include "core/methodology.hpp"
#include "core/montecarlo.hpp"
#include "core/parameters.hpp"
#include "core/precision.hpp"
#include "core/sensitivity.hpp"
#include "core/throughput.hpp"
#include "core/units.hpp"
#include "rcsim/device.hpp"
#include "util/rng.hpp"

namespace rat::core {
namespace {

// ThroughputPrediction is thirteen doubles — no padding, so memcmp over
// the whole struct is exact per-field bit comparison.
static_assert(sizeof(ThroughputPrediction) == 13 * sizeof(double));

::testing::AssertionResult same_bits(const ThroughputPrediction& a,
                                     const ThroughputPrediction& b) {
  if (std::memcmp(&a, &b, sizeof(ThroughputPrediction)) == 0)
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "predictions differ: speedup_sb " << a.speedup_sb << " vs "
         << b.speedup_sb << ", t_comm " << a.t_comm_sec << " vs "
         << b.t_comm_sec;
}

::testing::AssertionResult same_bits(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0)
    return ::testing::AssertionFailure() << "columns differ bitwise";
  return ::testing::AssertionSuccess();
}

/// The three case-study worksheets plus uniformly fuzzed in-domain
/// mutants — every field Eqs. 1-11 read is randomized across several
/// orders of magnitude, so main-loop/tail and subnormal-free edge
/// behaviour get exercised far from the paper's operating points.
std::vector<RatInputs> fuzzed_worksheets(std::size_t n_mutants,
                                         std::uint64_t seed) {
  std::vector<RatInputs> ws = {pdf1d_inputs(), pdf2d_inputs(), md_inputs()};
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n_mutants; ++i) {
    RatInputs in = ws[i % 3];
    in.dataset.elements_in =
        static_cast<std::size_t>(rng.uniform(1.0, 1e7));
    in.dataset.elements_out =
        static_cast<std::size_t>(rng.uniform(1.0, 1e7));
    in.dataset.bytes_per_element = rng.uniform(1.0, 16.0);
    in.comm.ideal_bw_bytes_per_sec = rng.uniform(1e6, 1e10);
    in.comm.alpha_write = rng.uniform(0.01, 1.0);
    in.comm.alpha_read = rng.uniform(0.01, 1.0);
    in.comp.ops_per_element = rng.uniform(0.1, 1e4);
    in.comp.throughput_ops_per_cycle = rng.uniform(0.1, 100.0);
    in.software.n_iterations =
        static_cast<std::size_t>(rng.uniform(1.0, 1e6));
    in.software.tsoft_sec = rng.uniform(1e-3, 1e4);
    ws.push_back(std::move(in));
  }
  return ws;
}

double fuzz_clock(util::Rng& rng) { return rng.uniform(1e6, 5e8); }

// ---- kernel-level identity -------------------------------------------------

TEST(BatchIdentityKernel, CaseStudiesAndFuzzedMutants) {
  const auto worksheets = fuzzed_worksheets(200, 0xB17B17);
  util::Rng rng(42);
  ThroughputBatch scalar_batch, simd_batch;
  std::vector<ThroughputPrediction> reference;
  std::vector<double> clocks;
  for (const auto& in : worksheets) {
    const double fclock = fuzz_clock(rng);
    clocks.push_back(fclock);
    const ThroughputPrediction ref = predict(in, fclock);
    EXPECT_TRUE(same_bits(ref, predict_unchecked(in, fclock)));
    reference.push_back(ref);
    scalar_batch.push_back(in, fclock);
    simd_batch.push_back(in, fclock);
  }
  predict_batch(scalar_batch, BatchKernel::kScalar);
  predict_batch(simd_batch, BatchKernel::kSimd);
  for (std::size_t i = 0; i < worksheets.size(); ++i) {
    EXPECT_TRUE(same_bits(reference[i], scalar_batch.prediction(i)))
        << "scalar lanes, point " << i;
    EXPECT_TRUE(same_bits(reference[i], simd_batch.prediction(i)))
        << "SIMD lanes (" << simd_backend() << "), point " << i;
  }
}

TEST(BatchIdentityKernel, WholeColumnsScalarVsSimd) {
  const auto worksheets = fuzzed_worksheets(509, 0xC0FFEE);  // prime-ish n
  util::Rng rng(7);
  ThroughputBatch a, b;
  for (const auto& in : worksheets) {
    const double fclock = fuzz_clock(rng);
    a.push_back(in, fclock);
    b.push_back(in, fclock);
  }
  predict_batch(a, BatchKernel::kScalar);
  predict_batch(b, BatchKernel::kSimd);
  EXPECT_TRUE(same_bits(a.out.t_write, b.out.t_write));
  EXPECT_TRUE(same_bits(a.out.t_read, b.out.t_read));
  EXPECT_TRUE(same_bits(a.out.t_comm, b.out.t_comm));
  EXPECT_TRUE(same_bits(a.out.t_comp, b.out.t_comp));
  EXPECT_TRUE(same_bits(a.out.t_rc_sb, b.out.t_rc_sb));
  EXPECT_TRUE(same_bits(a.out.t_rc_db, b.out.t_rc_db));
  EXPECT_TRUE(same_bits(a.out.speedup_sb, b.out.speedup_sb));
  EXPECT_TRUE(same_bits(a.out.speedup_db, b.out.speedup_db));
  EXPECT_TRUE(same_bits(a.out.util_comp_sb, b.out.util_comp_sb));
  EXPECT_TRUE(same_bits(a.out.util_comm_sb, b.out.util_comm_sb));
  EXPECT_TRUE(same_bits(a.out.util_comp_db, b.out.util_comp_db));
  EXPECT_TRUE(same_bits(a.out.util_comm_db, b.out.util_comm_db));
}

TEST(BatchIdentityKernel, EverySizeCoversMainLoopAndTail) {
  // Sizes 0..2*width+3 hit every main-loop/tail split the lane width can
  // produce; each point must match its per-point prediction regardless of
  // whether lanes or the scalar tail evaluated it.
  const auto worksheets = fuzzed_worksheets(2 * simd_width() + 3, 0xDEAD);
  util::Rng rng(3);
  std::vector<double> clocks;
  for (std::size_t i = 0; i < worksheets.size(); ++i)
    clocks.push_back(fuzz_clock(rng));
  for (std::size_t n = 0; n <= worksheets.size(); ++n) {
    ThroughputBatch batch;
    for (std::size_t i = 0; i < n; ++i)
      batch.push_back(worksheets[i], clocks[i]);
    predict_batch(batch);
    ASSERT_EQ(batch.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_TRUE(same_bits(predict(worksheets[i], clocks[i]),
                            batch.prediction(i)))
          << "n=" << n << " i=" << i;
  }
}

TEST(BatchIdentityKernel, PushBackValidatesLikePredict) {
  ThroughputBatch batch;
  RatInputs bad = pdf1d_inputs();
  bad.comm.alpha_write = 0.0;
  EXPECT_THROW(batch.push_back(bad, core::mhz(100)), std::invalid_argument);
  EXPECT_THROW(batch.push_back(pdf1d_inputs(), 0.0), std::invalid_argument);
  EXPECT_TRUE(batch.empty());
  // prediction() past the evaluated range is an error, not a stale read.
  batch.push_back(pdf1d_inputs(), core::mhz(100));
  EXPECT_THROW((void)batch.prediction(0), std::out_of_range);
  predict_batch(batch);
  EXPECT_NO_THROW((void)batch.prediction(0));
}

TEST(BatchIdentityKernel, ClearKeepsIdentityAcrossReuse) {
  // Arena reuse (the thread_local consumer pattern) must not leak state
  // between fills: a reused batch gives the same bits as a fresh one.
  const auto worksheets = fuzzed_worksheets(37, 0xF00D);
  util::Rng rng(11);
  std::vector<double> clocks;
  for (std::size_t i = 0; i < worksheets.size(); ++i)
    clocks.push_back(fuzz_clock(rng));
  ThroughputBatch reused;
  for (int pass = 0; pass < 3; ++pass) {
    reused.clear();
    const std::size_t n = worksheets.size() - static_cast<std::size_t>(pass);
    for (std::size_t i = 0; i < n; ++i)
      reused.push_back(worksheets[i], clocks[i]);
    predict_batch(reused);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_TRUE(same_bits(predict(worksheets[i], clocks[i]),
                            reused.prediction(i)))
          << "pass=" << pass << " i=" << i;
  }
}

// ---- Monte Carlo -----------------------------------------------------------

/// The pre-batch Monte-Carlo algorithm, verbatim: per sample, draw the
/// six perturbations in order from the chunk's stream, copy the
/// worksheet, run the checked scalar predict(). This is the reference
/// run_monte_carlo must reproduce bit-for-bit.
struct ScalarMcReference {
  std::vector<double> s_sb, s_db, t_rc, t_comm, t_comp;
  std::size_t meets_goal = 0;
};

ScalarMcReference scalar_mc_reference(const RatInputs& inputs,
                                      const UncertaintyModel& model,
                                      std::size_t n, double goal_speedup,
                                      std::uint64_t seed) {
  constexpr std::size_t kChunkSamples = 1024;  // run_monte_carlo's chunk
  ScalarMcReference r;
  const double base_clock = inputs.comp.fclock_hz.front();
  for (std::size_t lo = 0; lo < n; lo += kChunkSamples) {
    const std::size_t count = std::min(kChunkSamples, n - lo);
    util::Rng rng(seed + lo / kChunkSamples);
    for (std::size_t i = 0; i < count; ++i) {
      const double aw = std::min(
          1.0, sample(model.alpha_write, inputs.comm.alpha_write, rng));
      const double ar = std::min(
          1.0, sample(model.alpha_read, inputs.comm.alpha_read, rng));
      const double ops =
          sample(model.ops_per_element, inputs.comp.ops_per_element, rng);
      const double tp = sample(model.throughput_proc,
                               inputs.comp.throughput_ops_per_cycle, rng);
      const double tsoft =
          sample(model.tsoft_sec, inputs.software.tsoft_sec, rng);
      const double fclock = sample(model.fclock_hz, base_clock, rng);
      RatInputs sampled = inputs;
      sampled.comm.alpha_write = aw;
      sampled.comm.alpha_read = ar;
      sampled.comp.ops_per_element = ops;
      sampled.comp.throughput_ops_per_cycle = tp;
      sampled.software.tsoft_sec = tsoft;
      const auto p = predict(sampled, fclock);
      r.s_sb.push_back(p.speedup_sb);
      r.s_db.push_back(p.speedup_db);
      r.t_rc.push_back(p.t_rc_sb_sec);
      r.t_comm.push_back(p.t_comm_sec);
      r.t_comp.push_back(p.t_comp_sec);
      if (goal_speedup > 0.0 && p.speedup_sb >= goal_speedup)
        ++r.meets_goal;
    }
  }
  return r;
}

TEST(BatchIdentityMonteCarlo, MatchesScalarReferenceAtEveryThreadCount) {
  const RatInputs in = md_inputs();
  const auto model = UncertaintyModel::typical(in);
  constexpr std::size_t kN = 5000;  // 4 full chunks + a partial tail chunk
  constexpr double kGoal = 10.0;
  constexpr std::uint64_t kSeed = 99;

  auto ref = scalar_mc_reference(in, model, kN, kGoal, kSeed);
  std::vector<double> ref_sorted = ref.s_sb;
  std::sort(ref_sorted.begin(), ref_sorted.end());

  for (std::size_t threads : {1u, 2u, 8u}) {
    const auto r = run_monte_carlo(in, model, kN, kGoal, kSeed, threads);
    EXPECT_TRUE(same_bits(ref_sorted, r.speedup_sb_samples))
        << threads << " threads";
    EXPECT_EQ(r.probability_of_goal,
              static_cast<double>(ref.meets_goal) / static_cast<double>(kN))
        << threads << " threads";
    // Percentiles are derived from the sorted columns; spot-check one
    // column's digest bitwise through the public result.
    std::vector<double> t_comm = ref.t_comm;
    const auto pc = percentiles_of(t_comm);
    EXPECT_EQ(pc.p10, r.t_comm_sec.p10);
    EXPECT_EQ(pc.p50, r.t_comm_sec.p50);
    EXPECT_EQ(pc.p90, r.t_comm_sec.p90);
    EXPECT_EQ(pc.mean, r.t_comm_sec.mean);
  }
}

TEST(BatchIdentityMonteCarlo, BadBandRaisesTheScalarDiagnostic) {
  // A normal band sitting entirely below zero produces out-of-domain
  // samples; the scalar path validated every perturbed worksheet, so the
  // batch path must surface the identical std::invalid_argument instead
  // of feeding the kernel unvalidated points.
  const RatInputs in = pdf1d_inputs();
  auto model = UncertaintyModel::typical(in);
  model.ops_per_element = InputDistribution::normal(-5.0, 0.1, -10.0, -1.0);
  for (std::size_t threads : {1u, 8u}) {
    EXPECT_THROW(run_monte_carlo(in, model, 256, 0.0, 7, threads),
                 std::invalid_argument)
        << threads << " threads";
  }
}

// ---- sweeps and tornado ----------------------------------------------------

TEST(BatchIdentitySweep, MatchesPerPointPredict) {
  const RatInputs in = pdf2d_inputs();
  const double fclock = core::mhz(100);
  const ParamSetter set = [](RatInputs& w, double v) {
    w.comp.throughput_ops_per_cycle = v;
  };
  // 1300 values: spans multiple 512-point sweep chunks plus a tail.
  std::vector<double> values;
  util::Rng rng(23);
  for (int i = 0; i < 1300; ++i) values.push_back(rng.uniform(0.5, 64.0));

  std::vector<ThroughputPrediction> reference;
  for (double v : values) {
    RatInputs w = in;
    set(w, v);
    reference.push_back(predict(w, fclock));
  }
  for (std::size_t threads : {1u, 2u, 8u}) {
    const auto out = sweep_parameter(in, set, values, fclock, threads);
    ASSERT_EQ(out.size(), reference.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_TRUE(same_bits(reference[i], out[i]))
          << threads << " threads, i=" << i;
  }
}

TEST(BatchIdentitySweep, OutOfDomainValueRaisesTheScalarDiagnostic) {
  const RatInputs in = pdf1d_inputs();
  const ParamSetter set = [](RatInputs& w, double v) {
    w.comm.alpha_write = v;
  };
  const std::vector<double> values = {0.5, -1.0, 0.7};
  for (std::size_t threads : {1u, 8u}) {
    EXPECT_THROW(sweep_parameter(in, set, values, core::mhz(100), threads),
                 std::invalid_argument)
        << threads << " threads";
  }
}

TEST(BatchIdentityTornado, MatchesPerPointPredict) {
  const RatInputs in = md_inputs();
  const double fclock = core::mhz(75);
  const double fraction = 0.2;
  const auto entries = tornado(in, fclock, fraction, 1);
  const auto entries8 = tornado(in, fclock, fraction, 8);
  ASSERT_EQ(entries.size(), entries8.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].parameter, entries8[i].parameter);
    EXPECT_EQ(entries[i].speedup_low, entries8[i].speedup_low);
    EXPECT_EQ(entries[i].speedup_high, entries8[i].speedup_high);
  }
  // Each entry's range must be exactly the per-point predictions of the
  // perturbed worksheets (the batch holds lo/hi pairs param-major).
  for (const auto& e : entries) {
    SCOPED_TRACE(e.parameter);
    RatInputs lo_in = in, hi_in = in;
    const auto apply = [&](RatInputs& w, double scale) {
      if (e.parameter == "alpha_write")
        w.comm.alpha_write = std::min(w.comm.alpha_write * scale, 1.0);
      else if (e.parameter == "alpha_read")
        w.comm.alpha_read = std::min(w.comm.alpha_read * scale, 1.0);
      else if (e.parameter == "ops_per_element")
        w.comp.ops_per_element *= scale;
      else if (e.parameter == "throughput_proc")
        w.comp.throughput_ops_per_cycle *= scale;
      else if (e.parameter == "ideal_bandwidth")
        w.comm.ideal_bw_bytes_per_sec *= scale;
      else if (e.parameter == "bytes_per_element")
        w.dataset.bytes_per_element *= scale;
      else
        FAIL() << "unknown tornado parameter " << e.parameter;
    };
    apply(lo_in, 1.0 - fraction);
    apply(hi_in, 1.0 + fraction);
    const double s_lo = predict(lo_in, fclock).speedup_sb;
    const double s_hi = predict(hi_in, fclock).speedup_sb;
    EXPECT_EQ(e.speedup_low, std::min(s_lo, s_hi));
    EXPECT_EQ(e.speedup_high, std::max(s_lo, s_hi));
  }
}

// ---- quantization sweep ----------------------------------------------------

TEST(BatchIdentitySweep, QuantizedThroughputSweepMatchesScalarLoop) {
  // The precision-test trade-off curve is one SoA batch; each row must be
  // bit-identical to the per-format scalar loop (copy worksheet, patch
  // bytes/element, predict()).
  const RatInputs in = pdf1d_inputs();
  const double fclock = core::mhz(100);
  std::vector<fx::PrecisionChoice> sweep;
  for (int bits = 10; bits <= 24; ++bits)
    sweep.push_back({fx::Format{bits, bits - 1, true}, {}});

  const auto points = quantized_throughput_sweep(in, fclock, sweep);
  ASSERT_EQ(points.size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const double bytes = format_bytes_per_element(sweep[i].format);
    EXPECT_EQ(points[i].bytes_per_element, bytes);
    EXPECT_EQ(points[i].format.total_bits, sweep[i].format.total_bits);
    RatInputs w = in;
    w.dataset.bytes_per_element = bytes;
    EXPECT_TRUE(same_bits(predict(w, fclock), points[i].prediction))
        << "format " << sweep[i].format.total_bits << " bits";
  }
  // Channel rounding: 10..24 total bits on a 32-bit channel is 4 or 8
  // bytes, never a fraction.
  EXPECT_EQ(format_bytes_per_element(fx::Format{18, 17, true}), 4.0);
  EXPECT_EQ(format_bytes_per_element(fx::Format{33, 17, true}, 4.0), 8.0);
  EXPECT_EQ(format_bytes_per_element(fx::Format{12, 11, true}, 2.0), 2.0);
}

// ---- methodology windows ---------------------------------------------------

DesignCandidate passing_candidate(const std::string& name) {
  DesignCandidate c;
  c.inputs = pdf1d_inputs();
  c.inputs.name = name;
  c.decision_clock_hz = core::mhz(100);
  return c;
}

DesignCandidate failing_candidate(const std::string& name) {
  DesignCandidate c = passing_candidate(name);
  // Tiny computational throughput: the throughput gate rejects it.
  c.inputs.comp.throughput_ops_per_cycle = 1e-6;
  return c;
}

DesignCandidate invalid_candidate(const std::string& name) {
  DesignCandidate c = passing_candidate(name);
  c.inputs.comm.alpha_write = 0.0;  // fails RatInputs::validate()
  return c;
}

Requirements lenient_requirements() {
  Requirements req;
  req.min_speedup = 0.001;
  req.precision = std::nullopt;
  return req;
}

TEST(BatchIdentityMethodology, InvalidCandidateAfterAcceptedIsNeverRaised) {
  // Serial early-exit semantics: the run stops at the first accepted
  // candidate, so a later invalid worksheet — even one sitting in the
  // same pre-evaluated window, whose validation error is deferred — must
  // not surface.
  std::vector<DesignCandidate> candidates;
  candidates.push_back(failing_candidate("reject-me"));
  candidates.push_back(passing_candidate("accept-me"));
  candidates.push_back(invalid_candidate("never-reached"));
  MethodologyOutcome out;
  ASSERT_NO_THROW(out = run_methodology(candidates, lenient_requirements(),
                                        rcsim::virtex4_lx100(), 1));
  EXPECT_TRUE(out.proceed);
  ASSERT_TRUE(out.accepted_index.has_value());
  EXPECT_EQ(*out.accepted_index, 1u);

  // The parallel path has always evaluated a whole window speculatively,
  // so an invalid candidate sharing the accepted design's window raised
  // its validation error before the in-order merge — the batch rewire
  // must preserve that semantics too, not silently swallow the error.
  EXPECT_THROW(run_methodology(candidates, lenient_requirements(),
                               rcsim::virtex4_lx100(), 4),
               std::invalid_argument);
}

TEST(BatchIdentityMethodology, InvalidCandidateBeforeAcceptedStillThrows) {
  std::vector<DesignCandidate> candidates;
  candidates.push_back(invalid_candidate("bad-first"));
  candidates.push_back(passing_candidate("good-second"));
  for (std::size_t threads : {1u, 4u}) {
    EXPECT_THROW(run_methodology(candidates, lenient_requirements(),
                                 rcsim::virtex4_lx100(), threads),
                 std::invalid_argument)
        << threads << " threads";
  }
}

TEST(BatchIdentityMethodology, WindowedRunMatchesSerialBitwise) {
  // 600 candidates exceed both the serial window (256) and any parallel
  // window, with the accepted design deep enough (index 517) that
  // several windows fill and merge before the early exit.
  std::vector<DesignCandidate> candidates;
  for (int i = 0; i < 600; ++i) {
    if (i == 517)
      candidates.push_back(passing_candidate("winner"));
    else
      candidates.push_back(failing_candidate("loser-" + std::to_string(i)));
  }
  const auto req = lenient_requirements();
  const auto serial =
      run_methodology(candidates, req, rcsim::virtex4_lx100(), 1);
  EXPECT_TRUE(serial.proceed);
  ASSERT_TRUE(serial.accepted_index.has_value());
  EXPECT_EQ(*serial.accepted_index, 517u);
  for (std::size_t threads : {2u, 8u}) {
    const auto par =
        run_methodology(candidates, req, rcsim::virtex4_lx100(), threads);
    EXPECT_EQ(serial.proceed, par.proceed);
    EXPECT_EQ(serial.accepted_index, par.accepted_index);
    EXPECT_EQ(serial.last_reject, par.last_reject);
    ASSERT_EQ(serial.trace.size(), par.trace.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.trace.size(); ++i) {
      EXPECT_EQ(serial.trace[i].candidate_index, par.trace[i].candidate_index);
      EXPECT_EQ(serial.trace[i].candidate_name, par.trace[i].candidate_name);
      EXPECT_EQ(serial.trace[i].step, par.trace[i].step);
      EXPECT_EQ(serial.trace[i].passed, par.trace[i].passed);
      EXPECT_EQ(serial.trace[i].detail, par.trace[i].detail);
    }
    ASSERT_EQ(serial.predictions.size(), par.predictions.size());
    for (std::size_t i = 0; i < serial.predictions.size(); ++i)
      EXPECT_TRUE(same_bits(serial.predictions[i], par.predictions[i]))
          << threads << " threads, i=" << i;
  }
}

}  // namespace
}  // namespace rat::core
