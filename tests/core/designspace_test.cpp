#include "core/designspace.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "core/units.hpp"
#include "store/error.hpp"

namespace rat::core {
namespace {

/// Factory: a PDF-like worksheet whose throughput scales with parallelism.
CandidateFactory simple_factory(int dsp_per_unit = 1) {
  return [dsp_per_unit](const DesignPoint& p)
             -> std::optional<DesignCandidate> {
    DesignCandidate c;
    c.inputs = pdf1d_inputs();
    c.inputs.name = p.label();
    c.inputs.comp.throughput_ops_per_cycle =
        2.5 * static_cast<double>(p.parallelism);
    c.resources = {ResourceItem{"units", dsp_per_unit, p.format_bits, 0,
                                400, static_cast<int>(p.parallelism)}};
    return c;
  };
}

TEST(DesignAxes, Validation) {
  DesignAxes axes;
  axes.parallelism.clear();
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = DesignAxes{};
  axes.parallelism = {0};
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = DesignAxes{};
  axes.fclock_hz = {-1.0};
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = DesignAxes{};
  axes.format_bits = {64};
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  EXPECT_NO_THROW(DesignAxes{}.validate());
  EXPECT_EQ((DesignAxes{}.size()), 8u);  // 4 x 2 x 1
}

TEST(DesignAxes, RejectsDuplicateAndUnsortedAxes) {
  // Duplicates would double-evaluate points; unsorted axes break the
  // explorer's corner bounds. Both are caught per axis.
  DesignAxes axes;
  axes.parallelism = {1, 2, 2, 4};
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = DesignAxes{};
  axes.parallelism = {4, 2, 1};
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = DesignAxes{};
  axes.fclock_hz = {mhz(150), mhz(100)};
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = DesignAxes{};
  axes.fclock_hz = {mhz(100), mhz(100)};
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = DesignAxes{};
  axes.format_bits = {18, 12};
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = DesignAxes{};
  axes.format_bits = {12, 12};
  EXPECT_THROW(axes.validate(), std::invalid_argument);
}

TEST(DesignAxes, SizeOverflowIsAStructuredError) {
  // 2^21 * 2^21 * 2^22 = 2^64 wraps to 0 without the check.
  DesignAxes axes;
  axes.parallelism.assign(std::size_t{1} << 21, 1);
  axes.fclock_hz.assign(std::size_t{1} << 21, 1.0);
  axes.format_bits.assign(std::size_t{1} << 22, 18);
  EXPECT_THROW((void)axes.size(), std::overflow_error);
}

TEST(DesignSpace, EnumerateReportsThePointBehindEachCandidate) {
  DesignAxes axes;
  axes.parallelism = {1, 3, 4};
  axes.fclock_hz = {mhz(100), mhz(150)};
  std::vector<std::string> skipped;
  std::vector<DesignPoint> points;
  const auto candidates = enumerate_design_space(
      axes,
      [](const DesignPoint& p) -> std::optional<DesignCandidate> {
        if (p.parallelism == 3) return std::nullopt;
        return simple_factory()(p);
      },
      &skipped, &points);
  ASSERT_EQ(points.size(), candidates.size());
  EXPECT_EQ(skipped.size(), 2u);
  for (std::size_t i = 0; i < candidates.size(); ++i)
    EXPECT_EQ(candidates[i].inputs.name, points[i].label());
  EXPECT_EQ(points[0].parallelism, 1u);
  EXPECT_EQ(points[2].parallelism, 4u);
  EXPECT_DOUBLE_EQ(points[1].fclock_hz, mhz(150));
}

TEST(DesignSpace, EnumeratesCheapestFirst) {
  DesignAxes axes;
  axes.parallelism = {2, 8};
  axes.fclock_hz = {mhz(100), mhz(150)};
  axes.format_bits = {12, 18};
  const auto candidates = enumerate_design_space(axes, simple_factory());
  ASSERT_EQ(candidates.size(), 8u);
  EXPECT_EQ(candidates[0].inputs.name, "2x @ 100 MHz / 12-bit");
  EXPECT_EQ(candidates[1].inputs.name, "2x @ 100 MHz / 18-bit");
  EXPECT_EQ(candidates[2].inputs.name, "2x @ 150 MHz / 12-bit");
  EXPECT_EQ(candidates[4].inputs.name, "8x @ 100 MHz / 12-bit");
  EXPECT_DOUBLE_EQ(candidates[2].decision_clock_hz, mhz(150));
}

TEST(DesignSpace, FactoryCanSkipPoints) {
  DesignAxes axes;
  axes.parallelism = {1, 3, 4};
  axes.fclock_hz = {mhz(100)};
  const auto candidates = enumerate_design_space(
      axes, [](const DesignPoint& p) -> std::optional<DesignCandidate> {
        if (p.parallelism == 3) return std::nullopt;  // indivisible
        return simple_factory()(p);
      });
  EXPECT_EQ(candidates.size(), 2u);
}

TEST(DesignSpace, ExploreSettlesOnCheapestPassingDesign) {
  // 2.5 ops/cycle per unit, goal 7x at 100 MHz needs ~ 19.8 ops/cycle:
  // 8 units is the first passing parallelism.
  DesignAxes axes;
  axes.parallelism = {1, 2, 4, 8, 16};
  axes.fclock_hz = {mhz(100)};
  Requirements req;
  req.min_speedup = 7.0;
  const auto result = explore_design_space(axes, simple_factory(), req,
                                           rcsim::virtex4_lx100());
  ASSERT_TRUE(result.outcome.proceed) << result.outcome.render_trace();
  EXPECT_EQ(
      result.outcome.predictions[*result.outcome.accepted_index].fclock_hz,
      mhz(100));
  const auto& accepted_name =
      result.outcome.trace.back().candidate_name;
  EXPECT_EQ(accepted_name, "8x @ 100 MHz / 18-bit");
  EXPECT_EQ(result.points_skipped, 0u);
}

TEST(DesignSpace, ResourceGateCanExhaustTheSpace) {
  // Each unit eats 24 DSPs: 8x+ designs no longer fit the 96-DSP device,
  // and the smaller ones fail throughput — exhaustion without solution.
  DesignAxes axes;
  axes.parallelism = {1, 2, 4, 8, 16};
  axes.fclock_hz = {mhz(100)};
  Requirements req;
  req.min_speedup = 7.0;
  const auto result = explore_design_space(axes, simple_factory(24), req,
                                           rcsim::virtex4_lx100());
  EXPECT_FALSE(result.outcome.proceed);
}

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Render the full result (trace + exact prediction bits + coverage) so
/// "byte-identical resume" is asserted on everything the caller can see.
std::string render_result(const DesignSpaceResult& r) {
  std::string out = r.outcome.render_trace();
  out += "proceed=" + std::to_string(r.outcome.proceed);
  out += " accepted=" +
         (r.outcome.accepted_index
              ? std::to_string(*r.outcome.accepted_index)
              : std::string("none"));
  out += " reject=" + std::to_string(static_cast<int>(r.outcome.last_reject));
  out += " total=" + std::to_string(r.points_total);
  out += " skipped=" + std::to_string(r.points_skipped);
  for (const auto& p : r.outcome.predictions) {
    const char* bytes = reinterpret_cast<const char*>(&p);
    out.append(bytes, sizeof p);
  }
  return out;
}

TEST(DesignSpaceCheckpointed, ResumeIsByteIdenticalAndSkipsDoneWork) {
  DesignAxes axes;
  axes.parallelism = {1, 2, 4, 8, 16};
  axes.fclock_hz = {mhz(100)};
  Requirements req;
  req.min_speedup = 7.0;
  const auto plain = explore_design_space(axes, simple_factory(), req,
                                          rcsim::virtex4_lx100());

  const fs::path dir = fresh_dir("designspace_ckpt");
  DesignSpaceCheckpoint ckpt;
  ckpt.path = dir / "sweep.ckpt";
  const auto first = explore_design_space(axes, simple_factory(), req,
                                          rcsim::virtex4_lx100(), 1, &ckpt);
  EXPECT_EQ(first.points_restored, 0u);
  EXPECT_EQ(render_result(first), render_result(plain));

  // Tear off the journal's last record (kill -9 mid-final-evaluation),
  // then resume: the torn point re-evaluates, the rest replay, and the
  // result is byte-identical — serial or parallel.
  fs::resize_file(ckpt.path, fs::file_size(ckpt.path) - 1);
  const auto resumed = explore_design_space(axes, simple_factory(), req,
                                            rcsim::virtex4_lx100(), 1, &ckpt);
  // The run stops at the accepted 4th candidate (index 3): 3 replays.
  EXPECT_EQ(resumed.points_restored, 3u);
  EXPECT_EQ(render_result(resumed), render_result(plain));

  const auto parallel = explore_design_space(
      axes, simple_factory(), req, rcsim::virtex4_lx100(), 4, &ckpt);
  EXPECT_EQ(render_result(parallel), render_result(plain));
}

TEST(DesignSpaceCheckpointed, ChangedRequirementsMakeCheckpointStale) {
  DesignAxes axes;
  axes.parallelism = {1, 2};
  axes.fclock_hz = {mhz(100)};
  Requirements req;
  req.min_speedup = 7.0;
  const fs::path dir = fresh_dir("designspace_ckpt_stale");
  DesignSpaceCheckpoint ckpt;
  ckpt.path = dir / "sweep.ckpt";
  (void)explore_design_space(axes, simple_factory(), req,
                             rcsim::virtex4_lx100(), 1, &ckpt);
  req.min_speedup = 2.0;  // a different campaign entirely
  try {
    (void)explore_design_space(axes, simple_factory(), req,
                               rcsim::virtex4_lx100(), 1, &ckpt);
    FAIL() << "changed requirements must reject the checkpoint";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.code(), store::StoreErrorCode::kStaleCheckpoint);
  }
}

TEST(DesignSpaceCheckpointed, ChangedAxesMakeCheckpointStale) {
  DesignAxes axes;
  axes.parallelism = {1, 2};
  axes.fclock_hz = {mhz(100)};
  Requirements req;
  req.min_speedup = 7.0;
  const fs::path dir = fresh_dir("designspace_ckpt_axes");
  DesignSpaceCheckpoint ckpt;
  ckpt.path = dir / "sweep.ckpt";
  (void)explore_design_space(axes, simple_factory(), req,
                             rcsim::virtex4_lx100(), 1, &ckpt);
  axes.parallelism = {1, 2, 4};
  EXPECT_THROW((void)explore_design_space(axes, simple_factory(), req,
                                          rcsim::virtex4_lx100(), 1, &ckpt),
               store::StoreError);
}

TEST(DesignSpaceCheckpointed, CandidateFingerprintIsBitSensitive) {
  DesignCandidate a;
  a.inputs = pdf1d_inputs();
  DesignCandidate b = a;
  EXPECT_EQ(candidate_fingerprint(a), candidate_fingerprint(b));
  b.inputs.comp.throughput_ops_per_cycle += 1e-12;
  EXPECT_NE(candidate_fingerprint(a), candidate_fingerprint(b));
  b = a;
  b.decision_clock_hz = a.decision_clock_hz + 1.0;
  EXPECT_NE(candidate_fingerprint(a), candidate_fingerprint(b));
  b = a;
  b.resources.push_back(ResourceItem{"extra", 1, 18, 0, 1, 1});
  EXPECT_NE(candidate_fingerprint(a), candidate_fingerprint(b));
}

TEST(DesignSpaceCheckpointed, RequirementsFingerprintCoversDeviceAndGates) {
  Requirements req;
  const auto device = rcsim::virtex4_lx100();
  const std::uint64_t base = requirements_fingerprint(req, device);
  Requirements changed = req;
  changed.double_buffered = !req.double_buffered;
  EXPECT_NE(requirements_fingerprint(changed, device), base);
  changed = req;
  changed.min_energy_ratio = 1.5;
  EXPECT_NE(requirements_fingerprint(changed, device), base);
  auto other_device = device;
  other_device.inventory.dsp += 1;
  EXPECT_NE(requirements_fingerprint(req, other_device), base);
}

TEST(DesignSpace, Validation) {
  EXPECT_THROW(enumerate_design_space(DesignAxes{}, nullptr),
               std::invalid_argument);
  DesignAxes axes;
  Requirements req;
  EXPECT_THROW(
      explore_design_space(
          axes,
          [](const DesignPoint&) -> std::optional<DesignCandidate> {
            return std::nullopt;  // skips everything
          },
          req, rcsim::virtex4_lx100()),
      std::invalid_argument);
}

}  // namespace
}  // namespace rat::core
