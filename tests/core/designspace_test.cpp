#include "core/designspace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/units.hpp"

namespace rat::core {
namespace {

/// Factory: a PDF-like worksheet whose throughput scales with parallelism.
CandidateFactory simple_factory(int dsp_per_unit = 1) {
  return [dsp_per_unit](const DesignPoint& p)
             -> std::optional<DesignCandidate> {
    DesignCandidate c;
    c.inputs = pdf1d_inputs();
    c.inputs.name = p.label();
    c.inputs.comp.throughput_ops_per_cycle =
        2.5 * static_cast<double>(p.parallelism);
    c.resources = {ResourceItem{"units", dsp_per_unit, p.format_bits, 0,
                                400, static_cast<int>(p.parallelism)}};
    return c;
  };
}

TEST(DesignAxes, Validation) {
  DesignAxes axes;
  axes.parallelism.clear();
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = DesignAxes{};
  axes.parallelism = {0};
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = DesignAxes{};
  axes.fclock_hz = {-1.0};
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  axes = DesignAxes{};
  axes.format_bits = {64};
  EXPECT_THROW(axes.validate(), std::invalid_argument);
  EXPECT_NO_THROW(DesignAxes{}.validate());
  EXPECT_EQ((DesignAxes{}.size()), 8u);  // 4 x 2 x 1
}

TEST(DesignSpace, EnumeratesCheapestFirst) {
  DesignAxes axes;
  axes.parallelism = {2, 8};
  axes.fclock_hz = {mhz(100), mhz(150)};
  axes.format_bits = {12, 18};
  const auto candidates = enumerate_design_space(axes, simple_factory());
  ASSERT_EQ(candidates.size(), 8u);
  EXPECT_EQ(candidates[0].inputs.name, "2x @ 100 MHz / 12-bit");
  EXPECT_EQ(candidates[1].inputs.name, "2x @ 100 MHz / 18-bit");
  EXPECT_EQ(candidates[2].inputs.name, "2x @ 150 MHz / 12-bit");
  EXPECT_EQ(candidates[4].inputs.name, "8x @ 100 MHz / 12-bit");
  EXPECT_DOUBLE_EQ(candidates[2].decision_clock_hz, mhz(150));
}

TEST(DesignSpace, FactoryCanSkipPoints) {
  DesignAxes axes;
  axes.parallelism = {1, 3, 4};
  axes.fclock_hz = {mhz(100)};
  const auto candidates = enumerate_design_space(
      axes, [](const DesignPoint& p) -> std::optional<DesignCandidate> {
        if (p.parallelism == 3) return std::nullopt;  // indivisible
        return simple_factory()(p);
      });
  EXPECT_EQ(candidates.size(), 2u);
}

TEST(DesignSpace, ExploreSettlesOnCheapestPassingDesign) {
  // 2.5 ops/cycle per unit, goal 7x at 100 MHz needs ~ 19.8 ops/cycle:
  // 8 units is the first passing parallelism.
  DesignAxes axes;
  axes.parallelism = {1, 2, 4, 8, 16};
  axes.fclock_hz = {mhz(100)};
  Requirements req;
  req.min_speedup = 7.0;
  const auto result = explore_design_space(axes, simple_factory(), req,
                                           rcsim::virtex4_lx100());
  ASSERT_TRUE(result.outcome.proceed) << result.outcome.render_trace();
  EXPECT_EQ(
      result.outcome.predictions[*result.outcome.accepted_index].fclock_hz,
      mhz(100));
  const auto& accepted_name =
      result.outcome.trace.back().candidate_name;
  EXPECT_EQ(accepted_name, "8x @ 100 MHz / 18-bit");
  EXPECT_EQ(result.points_skipped, 0u);
}

TEST(DesignSpace, ResourceGateCanExhaustTheSpace) {
  // Each unit eats 24 DSPs: 8x+ designs no longer fit the 96-DSP device,
  // and the smaller ones fail throughput — exhaustion without solution.
  DesignAxes axes;
  axes.parallelism = {1, 2, 4, 8, 16};
  axes.fclock_hz = {mhz(100)};
  Requirements req;
  req.min_speedup = 7.0;
  const auto result = explore_design_space(axes, simple_factory(24), req,
                                           rcsim::virtex4_lx100());
  EXPECT_FALSE(result.outcome.proceed);
}

TEST(DesignSpace, Validation) {
  EXPECT_THROW(enumerate_design_space(DesignAxes{}, nullptr),
               std::invalid_argument);
  DesignAxes axes;
  Requirements req;
  EXPECT_THROW(
      explore_design_space(
          axes,
          [](const DesignPoint&) -> std::optional<DesignCandidate> {
            return std::nullopt;  // skips everything
          },
          req, rcsim::virtex4_lx100()),
      std::invalid_argument);
}

}  // namespace
}  // namespace rat::core
