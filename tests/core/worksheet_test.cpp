#include "core/worksheet.hpp"

#include <gtest/gtest.h>

#include "core/units.hpp"

namespace rat::core {
namespace {

TEST(Worksheet, PerformanceTableLayoutMatchesTable3) {
  const auto preds = predict_all(pdf1d_inputs());
  Measured actual;
  actual.fclock_hz = mhz(150);
  actual.t_comm_sec = 2.5e-5;
  actual.t_comp_sec = 1.39e-4;
  actual.t_rc_sec = 7.45e-2;
  actual.speedup = 7.8;
  actual.util_comm = 0.15;
  actual.util_comp = 0.85;

  const auto t = performance_table(preds, {actual},
                                   WorksheetMode::kSingleBuffered);
  EXPECT_EQ(t.num_columns(), 5u);  // label + 3 predicted + 1 actual
  EXPECT_EQ(t.num_rows(), 7u);

  // Row 0: clocks.
  EXPECT_EQ(t.cell(0, 1), "75");
  EXPECT_EQ(t.cell(0, 3), "150");
  EXPECT_EQ(t.cell(0, 4), "150");
  // Row 1: tcomm; row 2: tcomp.
  EXPECT_EQ(t.cell(1, 1), "5.56E-6");
  EXPECT_EQ(t.cell(1, 4), "2.50E-5");
  EXPECT_EQ(t.cell(2, 3), "1.31E-4");
  EXPECT_EQ(t.cell(2, 4), "1.39E-4");
  // Row 5: tRC; row 6: speedup.
  EXPECT_EQ(t.cell(5, 1), "1.07E-1");
  EXPECT_EQ(t.cell(5, 4), "7.45E-2");
  EXPECT_EQ(t.cell(6, 3), "10.6");
  EXPECT_EQ(t.cell(6, 4), "7.8");
}

TEST(Worksheet, DoubleBufferedModeUsesDbRows) {
  const auto preds = predict_all(pdf1d_inputs());
  const auto t =
      performance_table(preds, {}, WorksheetMode::kDoubleBuffered);
  EXPECT_EQ(t.cell(3, 0), "utilcomm_DB");
  EXPECT_EQ(t.cell(5, 0), "tRC_DB (sec)");
  // DB tRC at 150 MHz: 400 * max(5.56e-6, 1.31e-4) = 5.24e-2.
  EXPECT_EQ(t.cell(5, 3), "5.24E-2");
}

TEST(Worksheet, RenderIncludesInputAndPerformanceSections) {
  const std::string s = render_worksheet(pdf1d_inputs(), {},
                                         WorksheetMode::kSingleBuffered);
  EXPECT_NE(s.find("RAT worksheet: 1-D PDF estimation"), std::string::npos);
  EXPECT_NE(s.find("Input parameters"), std::string::npos);
  EXPECT_NE(s.find("Performance parameters (single buffered)"),
            std::string::npos);
  EXPECT_NE(s.find("5.56E-6"), std::string::npos);
  EXPECT_NE(s.find("10.6"), std::string::npos);
}

TEST(Worksheet, NoActualColumnsWhenNoMeasurements) {
  const auto preds = predict_all(md_inputs());
  const auto t = performance_table(preds, {}, WorksheetMode::kSingleBuffered);
  EXPECT_EQ(t.num_columns(), 4u);  // label + 3 predicted
}

}  // namespace
}  // namespace rat::core
