// Randomized round-trip tests for the worksheet (de)serializer: any valid
// RatInputs must survive serialize -> parse exactly, across a seeded sweep
// of magnitudes (including awkward doubles), and the parser must reject a
// catalogue of malformed inputs without crashing.
#include <gtest/gtest.h>

#include <cmath>

#include "core/parameters.hpp"
#include "util/rng.hpp"

namespace rat::core {
namespace {

RatInputs random_inputs(std::uint64_t seed) {
  util::Rng rng(seed);
  RatInputs in;
  in.name = "fuzz-" + std::to_string(seed);
  in.dataset.elements_in = 1 + rng.uniform_index(1u << 20);
  in.dataset.elements_out = rng.uniform_index(1u << 20);
  in.dataset.bytes_per_element =
      std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(rng.uniform_index(8)));
  in.comm.ideal_bw_bytes_per_sec = rng.uniform(1e6, 1e11);
  in.comm.alpha_write = rng.uniform(1e-6, 1.0);
  in.comm.alpha_read = rng.uniform(1e-6, 1.0);
  in.comp.ops_per_element = rng.uniform(1e-3, 1e9);
  in.comp.throughput_ops_per_cycle = rng.uniform(1e-3, 1e4);
  const std::size_t n_clocks = 1 + rng.uniform_index(4);
  for (std::size_t i = 0; i < n_clocks; ++i)
    in.comp.fclock_hz.push_back(rng.uniform(1e6, 1e9));
  in.software.tsoft_sec = rng.uniform(1e-6, 1e5);
  in.software.n_iterations = 1 + rng.uniform_index(1u << 16);
  return in;
}

class ParseRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParseRoundTrip, SerializeParseIsIdentity) {
  const RatInputs original = random_inputs(GetParam());
  ASSERT_NO_THROW(original.validate());
  const RatInputs parsed = RatInputs::parse(original.serialize());
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.dataset.elements_in, original.dataset.elements_in);
  EXPECT_EQ(parsed.dataset.elements_out, original.dataset.elements_out);
  EXPECT_DOUBLE_EQ(parsed.dataset.bytes_per_element,
                   original.dataset.bytes_per_element);
  EXPECT_DOUBLE_EQ(parsed.comm.ideal_bw_bytes_per_sec,
                   original.comm.ideal_bw_bytes_per_sec);
  EXPECT_DOUBLE_EQ(parsed.comm.alpha_write, original.comm.alpha_write);
  EXPECT_DOUBLE_EQ(parsed.comm.alpha_read, original.comm.alpha_read);
  EXPECT_DOUBLE_EQ(parsed.comp.ops_per_element,
                   original.comp.ops_per_element);
  EXPECT_DOUBLE_EQ(parsed.comp.throughput_ops_per_cycle,
                   original.comp.throughput_ops_per_cycle);
  EXPECT_EQ(parsed.comp.fclock_hz, original.comp.fclock_hz);
  EXPECT_DOUBLE_EQ(parsed.software.tsoft_sec, original.software.tsoft_sec);
  EXPECT_EQ(parsed.software.n_iterations, original.software.n_iterations);
  // A second round trip is bit-stable.
  EXPECT_EQ(parsed.serialize(), original.serialize());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseRoundTrip,
                         ::testing::Range<std::uint64_t>(100, 140));

TEST(ParseMalformed, RejectionCatalogue) {
  const char* bad[] = {
      "",                                     // missing name
      "name =\n",                             // empty name value is legal?
      "name = x\nelements_in = -3\n",         // negative count
      "name = x\nelements_in = 1e999\n",      // overflow
      "name = x\nalpha_write = abc\n",        // not a number
      "name = x\nalpha_write = 0.5extra\n",   // trailing junk
      "name = x\nn_iterations = 2.5\n",       // fractional count
      "nope\n",                               // no '='
      "name = x\nbogus_key = 1\n",            // unknown key
  };
  for (const char* text : bad) {
    if (std::string(text) == "name =\n") continue;  // handled below
    EXPECT_ANY_THROW(RatInputs::parse(text)) << '"' << text << '"';
  }
  // "name =" parses to an empty name, which validate() then rejects.
  const RatInputs empty_name = RatInputs::parse("name =\nelements_in = 1\n");
  EXPECT_THROW(empty_name.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace rat::core
