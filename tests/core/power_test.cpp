#include "core/power.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/md.hpp"
#include "apps/pdf1d.hpp"
#include "core/resources.hpp"
#include "core/units.hpp"

namespace rat::core {
namespace {

rcsim::ResourceUsage pdf1d_usage() {
  return run_resource_test(apps::Pdf1dDesign().resource_items(),
                           rcsim::virtex4_lx100())
      .usage;
}

TEST(Power, StaticFloorWithEmptyDesign) {
  const auto pred = predict(pdf1d_inputs(), mhz(100));
  PowerModel fpga;
  fpga.io_watts = 0.0;
  const auto e = estimate_power({}, pred, 0.578, fpga);
  EXPECT_DOUBLE_EQ(e.fpga_watts, fpga.static_watts);
}

TEST(Power, DynamicTermScalesWithClock) {
  const auto usage = pdf1d_usage();
  const auto p100 = predict(pdf1d_inputs(), mhz(100));
  const auto p150 = predict(pdf1d_inputs(), mhz(150));
  PowerModel fpga;
  fpga.io_watts = 0.0;  // isolate the fabric term
  const auto e100 = estimate_power(usage, p100, 0.578, fpga);
  const auto e150 = estimate_power(usage, p150, 0.578, fpga);
  const double dyn100 = e100.fpga_watts - fpga.static_watts;
  const double dyn150 = e150.fpga_watts - fpga.static_watts;
  EXPECT_NEAR(dyn150, 1.5 * dyn100, 1e-9);
}

TEST(Power, EnergyIsPowerTimesPredictedTime) {
  const auto usage = pdf1d_usage();
  const auto pred = predict(pdf1d_inputs(), mhz(150));
  const auto e = estimate_power(usage, pred, 0.578);
  EXPECT_NEAR(e.fpga_energy_joules, e.fpga_watts * pred.t_rc_sb_sec, 1e-12);
  EXPECT_NEAR(e.host_energy_joules, 90.0 * 0.578, 1e-9);
  EXPECT_GT(e.fpga_system_energy_joules, e.fpga_energy_joules);
}

TEST(Power, Pdf1dMigrationSavesEnergy) {
  // ~10x speedup at a few watts against a 90 W host: a clear energy win —
  // the "reduced power usage" motivation from the paper's introduction.
  const auto e = estimate_power(pdf1d_usage(),
                                predict(pdf1d_inputs(), mhz(150)), 0.578);
  EXPECT_TRUE(e.saves_energy());
  EXPECT_GT(e.energy_ratio, 5.0);
  EXPECT_LT(e.fpga_watts, 15.0);  // sanity: a plausible FPGA power
  EXPECT_GT(e.fpga_watts, 1.0);
}

TEST(Power, SlowdownCanStillSaveEnergy) {
  // Even a speedup < 1 can save energy when the FPGA system draws far
  // less than the host — the embedded community's break-even case.
  RatInputs in = pdf1d_inputs();
  in.comp.throughput_ops_per_cycle = 1.2;  // cripple the design: ~0.6x
  const auto pred = predict(in, mhz(100));
  ASSERT_LT(pred.speedup_sb, 1.0);
  PowerModel frugal;
  frugal.static_watts = 0.8;
  frugal.io_watts = 0.2;
  HostPowerModel host;
  host.idle_watts = 5.0;  // host sleeps during the FPGA run
  const auto e = estimate_power(pdf1d_usage(), pred, 0.578, frugal, host);
  EXPECT_TRUE(e.saves_energy());
}

TEST(Power, MdNearlyFullChipDrawsMore) {
  const auto md_usage = run_resource_test(apps::MdDesign().resource_items(),
                                          rcsim::stratix2_ep2s180())
                            .usage;
  const auto e_md = estimate_power(md_usage, predict(md_inputs(), mhz(100)),
                                   5.78);
  const auto e_pdf = estimate_power(pdf1d_usage(),
                                    predict(pdf1d_inputs(), mhz(100)),
                                    0.578);
  EXPECT_GT(e_md.fpga_watts, e_pdf.fpga_watts);
}

TEST(Power, BreakEvenSpeedup) {
  HostPowerModel host;
  host.busy_watts = 90.0;
  EXPECT_NEAR(break_even_speedup_for_energy(9.0, host), 0.1, 1e-12);
  EXPECT_NEAR(break_even_speedup_for_energy(90.0, host), 1.0, 1e-12);
  EXPECT_THROW(break_even_speedup_for_energy(0.0, host),
               std::invalid_argument);
}

TEST(Power, Validation) {
  const auto pred = predict(pdf1d_inputs(), mhz(100));
  EXPECT_THROW(estimate_power({}, pred, 0.0), std::invalid_argument);
  ThroughputPrediction zero;
  EXPECT_THROW(estimate_power({}, zero, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace rat::core
