// Algebraic identities of Equations (1)-(11) over randomized worksheets:
// whatever the inputs, the derived quantities must satisfy the relations
// the equations define. Complements the exact-value tests against the
// paper's tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/throughput.hpp"
#include "util/rng.hpp"

namespace rat::core {
namespace {

RatInputs random_inputs(std::uint64_t seed) {
  util::Rng rng(seed);
  RatInputs in;
  in.name = "prop-" + std::to_string(seed);
  in.dataset.elements_in = 1 + rng.uniform_index(1u << 18);
  in.dataset.elements_out = rng.uniform_index(1u << 18);
  in.dataset.bytes_per_element = rng.uniform(1.0, 64.0);
  in.comm.ideal_bw_bytes_per_sec = rng.uniform(1e7, 1e10);
  in.comm.alpha_write = rng.uniform(0.01, 1.0);
  in.comm.alpha_read = rng.uniform(0.01, 1.0);
  in.comp.ops_per_element = rng.uniform(1.0, 1e6);
  in.comp.throughput_ops_per_cycle = rng.uniform(0.1, 500.0);
  in.comp.fclock_hz = {rng.uniform(1e7, 5e8)};
  in.software.tsoft_sec = rng.uniform(1e-3, 1e4);
  in.software.n_iterations = 1 + rng.uniform_index(1u << 12);
  return in;
}

class ThroughputIdentities : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ThroughputIdentities, EquationsSelfConsistent) {
  const RatInputs in = random_inputs(GetParam());
  const double f = in.comp.fclock_hz[0];
  const ThroughputPrediction p = predict(in, f);
  const double n = static_cast<double>(in.software.n_iterations);

  // Eq. (1): comm decomposes into the two directions.
  EXPECT_NEAR(p.t_comm_sec, p.t_write_sec + p.t_read_sec,
              1e-12 * p.t_comm_sec);
  // Eqs. (2)/(3) re-derived.
  EXPECT_NEAR(p.t_write_sec,
              static_cast<double>(in.dataset.elements_in) *
                  in.dataset.bytes_per_element /
                  (in.comm.alpha_write * in.comm.ideal_bw_bytes_per_sec),
              1e-12 * (p.t_write_sec + 1e-300));
  // Eq. (5)/(6): totals from per-iteration terms.
  EXPECT_NEAR(p.t_rc_sb_sec, n * (p.t_comm_sec + p.t_comp_sec),
              1e-9 * p.t_rc_sb_sec);
  EXPECT_NEAR(p.t_rc_db_sec, n * std::max(p.t_comm_sec, p.t_comp_sec),
              1e-9 * p.t_rc_db_sec);
  // Eq. (7): speedups invert the totals.
  EXPECT_NEAR(p.speedup_sb * p.t_rc_sb_sec, in.software.tsoft_sec,
              1e-9 * in.software.tsoft_sec);
  EXPECT_NEAR(p.speedup_db * p.t_rc_db_sec, in.software.tsoft_sec,
              1e-9 * in.software.tsoft_sec);
  // Eqs. (8)-(11): utilization structure.
  EXPECT_NEAR(p.util_comm_sb + p.util_comp_sb, 1.0, 1e-12);
  EXPECT_NEAR(std::max(p.util_comm_db, p.util_comp_db), 1.0, 1e-12);
  EXPECT_NEAR(p.util_comm_db / p.util_comp_db,
              p.t_comm_sec / p.t_comp_sec,
              1e-9 * (p.t_comm_sec / p.t_comp_sec));
  // DB dominates SB; both positive.
  EXPECT_GE(p.speedup_db, p.speedup_sb - 1e-15);
  EXPECT_GT(p.speedup_sb, 0.0);
  // communication_bound() agrees with the raw comparison.
  EXPECT_EQ(p.communication_bound(), p.t_comm_sec > p.t_comp_sec);
}

TEST_P(ThroughputIdentities, ScalingLaws) {
  const RatInputs base = random_inputs(GetParam() ^ 0xF00D);
  const double f = base.comp.fclock_hz[0];
  const auto p0 = predict(base, f);

  // Doubling Niter doubles totals, leaves per-iteration terms alone.
  RatInputs doubled = base;
  doubled.software.n_iterations *= 2;
  const auto p2 = predict(doubled, f);
  EXPECT_NEAR(p2.t_rc_sb_sec, 2.0 * p0.t_rc_sb_sec, 1e-9 * p2.t_rc_sb_sec);
  EXPECT_DOUBLE_EQ(p2.t_comm_sec, p0.t_comm_sec);

  // Doubling the clock halves only computation.
  const auto pf = predict(base, 2.0 * f);
  EXPECT_NEAR(pf.t_comp_sec, 0.5 * p0.t_comp_sec, 1e-12 * p0.t_comp_sec);
  EXPECT_DOUBLE_EQ(pf.t_comm_sec, p0.t_comm_sec);

  // Doubling both alphas halves communication.
  RatInputs fast_bus = base;
  fast_bus.comm.alpha_write = std::min(1.0, base.comm.alpha_write * 2.0);
  fast_bus.comm.alpha_read = std::min(1.0, base.comm.alpha_read * 2.0);
  if (fast_bus.comm.alpha_write == base.comm.alpha_write * 2.0 &&
      fast_bus.comm.alpha_read == base.comm.alpha_read * 2.0) {
    const auto pb = predict(fast_bus, f);
    EXPECT_NEAR(pb.t_comm_sec, 0.5 * p0.t_comm_sec,
                1e-12 * p0.t_comm_sec);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThroughputIdentities,
                         ::testing::Range<std::uint64_t>(2000, 2050));

}  // namespace
}  // namespace rat::core
