#include "core/validation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/units.hpp"

namespace rat::core {
namespace {

Measured table3_actual() {
  Measured m;
  m.fclock_hz = mhz(150);
  m.t_comm_sec = 2.5e-5;
  m.t_comp_sec = 1.39e-4;
  m.t_rc_sec = 7.45e-2;
  m.speedup = 7.8;
  m.util_comm = 0.15;
  m.util_comp = 0.85;
  return m;
}

TEST(MeasuredFromTotals, DividesByIterations) {
  const Measured m =
      measured_from_totals(mhz(150), 1e-2, 5.56e-2, 7.45e-2, 400, 0.578);
  EXPECT_NEAR(m.t_comm_sec, 2.5e-5, 1e-12);
  EXPECT_NEAR(m.t_comp_sec, 1.39e-4, 1e-12);
  EXPECT_NEAR(m.speedup, 0.578 / 7.45e-2, 1e-9);
  EXPECT_NEAR(m.util_comm + m.util_comp, 1.0, 1e-12);
}

TEST(MeasuredFromTotals, Validation) {
  EXPECT_THROW(measured_from_totals(1.0, 1.0, 1.0, 1.0, 0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(measured_from_totals(1.0, 1.0, 1.0, 0.0, 1, 1.0),
               std::invalid_argument);
}

TEST(MeasuredFromTotals, RejectsNonPositiveTsoft) {
  // Regression: tsoft = 0 silently produced speedup = 0 and a negative
  // tsoft a negative speedup; both must throw like the other bad inputs.
  EXPECT_THROW(measured_from_totals(1.0, 1.0, 1.0, 2.0, 1, 0.0),
               std::invalid_argument);
  EXPECT_THROW(measured_from_totals(1.0, 1.0, 1.0, 2.0, 1, -0.578),
               std::invalid_argument);
}

TEST(Validate, Table3ErrorStructure) {
  const auto pred = predict(pdf1d_inputs(), mhz(150));
  const auto rep = validate(pred, table3_actual());
  // Communication under-predicted ~4.5x; computation within ~6%.
  EXPECT_GT(rep.comm_error_percent, 200.0);
  EXPECT_LT(rep.comm_error_percent, 500.0);
  EXPECT_NEAR(rep.comp_error_percent, 6.1, 1.0);
  EXPECT_LT(rep.speedup_error_percent, 0.0);  // speedup over-predicted
  EXPECT_TRUE(rep.comp_same_order);
  EXPECT_TRUE(rep.speedup_same_order);
}

TEST(Validate, SameOrderFlagsUseFactorTen) {
  const auto pred = predict(pdf1d_inputs(), mhz(150));
  auto actual = table3_actual();
  const auto rep = validate(pred, actual);
  EXPECT_TRUE(rep.comm_same_order);  // 4.5x < 10x
  actual.t_comm_sec = pred.t_comm_sec * 11.0;
  EXPECT_FALSE(validate(pred, actual).comm_same_order);
}

TEST(Validate, WithinOrderOfMagnitudeOverall) {
  const auto pred = predict(md_inputs(), mhz(100));
  Measured actual;
  actual.fclock_hz = mhz(100);
  actual.t_comm_sec = 1.39e-3;
  actual.t_comp_sec = 8.79e-1;
  actual.t_rc_sec = 8.80e-1;
  actual.speedup = 6.6;
  const auto rep = validate(pred, actual);
  EXPECT_TRUE(rep.within_order_of_magnitude());
  EXPECT_NEAR(rep.comm_error_percent, -47.0, 2.0);
  EXPECT_NEAR(rep.comp_error_percent, 63.6, 2.0);
}

TEST(Validate, TableRendering) {
  const auto pred = predict(pdf1d_inputs(), mhz(150));
  const auto rep = validate(pred, table3_actual());
  const auto t = rep.to_table();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.cell(0, 0), "tcomm");
  EXPECT_EQ(t.cell(0, 2), "yes");
}

TEST(Validate, BufferingModeSelectsPrediction) {
  // Regression: validate() always compared against the single-buffered
  // prediction, so a double-buffered measurement was scored against the
  // wrong tRC/speedup and its error was inflated by the overlap factor.
  const auto pred = predict(pdf1d_inputs(), mhz(150));
  ASSERT_NE(pred.t_rc_sb_sec, pred.t_rc_db_sec);

  // A "perfect" DB measurement: actual equals the DB prediction exactly.
  Measured db_actual;
  db_actual.fclock_hz = mhz(150);
  db_actual.t_comm_sec = pred.t_comm_sec;
  db_actual.t_comp_sec = pred.t_comp_sec;
  db_actual.t_rc_sec = pred.t_rc_db_sec;
  db_actual.speedup = pred.speedup_db;

  const auto db_rep = validate(pred, db_actual, BufferingMode::kDouble);
  EXPECT_NEAR(db_rep.t_rc_error_percent, 0.0, 1e-9);
  EXPECT_NEAR(db_rep.speedup_error_percent, 0.0, 1e-9);

  // The same measurement scored as SB (the old behaviour) shows the
  // overlap factor as spurious error.
  const auto sb_rep = validate(pred, db_actual, BufferingMode::kSingle);
  EXPECT_LT(sb_rep.t_rc_error_percent, -1.0);
  EXPECT_GT(sb_rep.speedup_error_percent, 1.0);
  // And the default stays SB, matching the paper's published comparisons.
  const auto def_rep = validate(pred, db_actual);
  EXPECT_DOUBLE_EQ(def_rep.t_rc_error_percent, sb_rep.t_rc_error_percent);

  // Per-iteration terms are buffering-independent: identical either way.
  EXPECT_DOUBLE_EQ(db_rep.comm_error_percent, sb_rep.comm_error_percent);
  EXPECT_DOUBLE_EQ(db_rep.comp_error_percent, sb_rep.comp_error_percent);
}

TEST(Validate, SingleBufferedMeasurementScoresCleanInSbMode) {
  const auto pred = predict(md_inputs(), mhz(100));
  Measured sb_actual;
  sb_actual.fclock_hz = mhz(100);
  sb_actual.t_comm_sec = pred.t_comm_sec;
  sb_actual.t_comp_sec = pred.t_comp_sec;
  sb_actual.t_rc_sec = pred.t_rc_sb_sec;
  sb_actual.speedup = pred.speedup_sb;
  const auto rep = validate(pred, sb_actual, BufferingMode::kSingle);
  EXPECT_NEAR(rep.t_rc_error_percent, 0.0, 1e-9);
  EXPECT_NEAR(rep.speedup_error_percent, 0.0, 1e-9);
  EXPECT_TRUE(rep.within_order_of_magnitude());
}

TEST(Validate, TablePrintsAbsoluteErrorSignedStaysInStruct) {
  // The paper's Tables 5-10 report error magnitude; the struct keeps the
  // sign so callers can still tell over- from under-prediction.
  const auto pred = predict(pdf1d_inputs(), mhz(150));
  const auto rep = validate(pred, table3_actual());
  ASSERT_LT(rep.speedup_error_percent, 0.0);  // over-predicted -> negative
  const auto t = rep.to_table();
  // Row 3 is "speedup"; its printed error must be the magnitude, with no
  // leading minus sign.
  EXPECT_EQ(t.cell(3, 0), "speedup");
  const std::string printed = t.cell(3, 1);
  EXPECT_EQ(printed.find('-'), std::string::npos);
  const double expect_abs = -rep.speedup_error_percent;
  EXPECT_NEAR(std::stod(printed), expect_abs, 0.05 + 1e-9);
}

}  // namespace
}  // namespace rat::core
