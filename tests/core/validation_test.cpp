#include "core/validation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/units.hpp"

namespace rat::core {
namespace {

Measured table3_actual() {
  Measured m;
  m.fclock_hz = mhz(150);
  m.t_comm_sec = 2.5e-5;
  m.t_comp_sec = 1.39e-4;
  m.t_rc_sec = 7.45e-2;
  m.speedup = 7.8;
  m.util_comm = 0.15;
  m.util_comp = 0.85;
  return m;
}

TEST(MeasuredFromTotals, DividesByIterations) {
  const Measured m =
      measured_from_totals(mhz(150), 1e-2, 5.56e-2, 7.45e-2, 400, 0.578);
  EXPECT_NEAR(m.t_comm_sec, 2.5e-5, 1e-12);
  EXPECT_NEAR(m.t_comp_sec, 1.39e-4, 1e-12);
  EXPECT_NEAR(m.speedup, 0.578 / 7.45e-2, 1e-9);
  EXPECT_NEAR(m.util_comm + m.util_comp, 1.0, 1e-12);
}

TEST(MeasuredFromTotals, Validation) {
  EXPECT_THROW(measured_from_totals(1.0, 1.0, 1.0, 1.0, 0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(measured_from_totals(1.0, 1.0, 1.0, 0.0, 1, 1.0),
               std::invalid_argument);
}

TEST(Validate, Table3ErrorStructure) {
  const auto pred = predict(pdf1d_inputs(), mhz(150));
  const auto rep = validate(pred, table3_actual());
  // Communication under-predicted ~4.5x; computation within ~6%.
  EXPECT_GT(rep.comm_error_percent, 200.0);
  EXPECT_LT(rep.comm_error_percent, 500.0);
  EXPECT_NEAR(rep.comp_error_percent, 6.1, 1.0);
  EXPECT_LT(rep.speedup_error_percent, 0.0);  // speedup over-predicted
  EXPECT_TRUE(rep.comp_same_order);
  EXPECT_TRUE(rep.speedup_same_order);
}

TEST(Validate, SameOrderFlagsUseFactorTen) {
  const auto pred = predict(pdf1d_inputs(), mhz(150));
  auto actual = table3_actual();
  const auto rep = validate(pred, actual);
  EXPECT_TRUE(rep.comm_same_order);  // 4.5x < 10x
  actual.t_comm_sec = pred.t_comm_sec * 11.0;
  EXPECT_FALSE(validate(pred, actual).comm_same_order);
}

TEST(Validate, WithinOrderOfMagnitudeOverall) {
  const auto pred = predict(md_inputs(), mhz(100));
  Measured actual;
  actual.fclock_hz = mhz(100);
  actual.t_comm_sec = 1.39e-3;
  actual.t_comp_sec = 8.79e-1;
  actual.t_rc_sec = 8.80e-1;
  actual.speedup = 6.6;
  const auto rep = validate(pred, actual);
  EXPECT_TRUE(rep.within_order_of_magnitude());
  EXPECT_NEAR(rep.comm_error_percent, -47.0, 2.0);
  EXPECT_NEAR(rep.comp_error_percent, 63.6, 2.0);
}

TEST(Validate, TableRendering) {
  const auto pred = predict(pdf1d_inputs(), mhz(150));
  const auto rep = validate(pred, table3_actual());
  const auto t = rep.to_table();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.cell(0, 0), "tcomm");
  EXPECT_EQ(t.cell(0, 2), "yes");
}

}  // namespace
}  // namespace rat::core
