#include "core/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "apps/pdf1d.hpp"
#include "core/units.hpp"

namespace rat::core {
namespace {

namespace fs = std::filesystem;

Report sample_report() {
  Report r;
  r.inputs = pdf1d_inputs();
  Measured m;
  m.fclock_hz = mhz(150);
  m.t_comm_sec = 2.5e-5;
  m.t_comp_sec = 1.39e-4;
  m.t_rc_sec = 7.45e-2;
  m.speedup = 7.8;
  m.util_comm = 0.15;
  m.util_comp = 0.85;
  r.measurements.push_back(m);
  r.finalize();
  const auto device = rcsim::virtex4_lx100();
  r.device = device;
  r.resources = run_resource_test(apps::Pdf1dDesign().resource_items(),
                                  device);
  return r;
}

std::string slurp(const fs::path& p) {
  std::ifstream f(p);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("rat_report_test_" + std::to_string(::getpid()));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(Report, FinalizePairsMeasurementsWithMatchingClock) {
  const Report r = sample_report();
  ASSERT_EQ(r.predictions.size(), 3u);
  ASSERT_EQ(r.validations.size(), 1u);
  // Paired against the 150 MHz prediction: comp error ~6%, not ~-30%.
  EXPECT_NEAR(r.validations[0].comp_error_percent, 6.1, 1.0);
}

TEST(Report, FinalizePicksClosestClockForOffGridMeasurement) {
  Report r;
  r.inputs = md_inputs();
  Measured m;
  m.fclock_hz = mhz(110);  // closest candidate: 100
  m.t_comm_sec = 1.39e-3;
  m.t_comp_sec = 8.79e-1;
  m.t_rc_sec = 8.80e-1;
  m.speedup = 6.6;
  r.measurements.push_back(m);
  r.finalize();
  ASSERT_EQ(r.validations.size(), 1u);
  // Against 100 MHz: comp error ~+64%; against 150 it would be ~+145%.
  EXPECT_NEAR(r.validations[0].comp_error_percent, 63.6, 2.0);
}

TEST(Report, MarkdownContainsAllSections) {
  const std::string md = sample_report().to_markdown();
  EXPECT_NE(md.find("# RAT analysis: 1-D PDF estimation"),
            std::string::npos);
  EXPECT_NE(md.find("## Input parameters"), std::string::npos);
  EXPECT_NE(md.find("## Performance (single buffered)"), std::string::npos);
  EXPECT_NE(md.find("## Performance (double buffered)"), std::string::npos);
  EXPECT_NE(md.find("## Validation of measurement 1 (150 MHz)"),
            std::string::npos);
  EXPECT_NE(md.find("## Resource test (Xilinx Virtex-4 LX100)"),
            std::string::npos);
  EXPECT_NE(md.find("### Breakdown"), std::string::npos);
  EXPECT_NE(md.find("vendor wrapper"), std::string::npos);
  EXPECT_NE(md.find("5.56E-6"), std::string::npos);
}

TEST(Report, MethodologySectionWhenPresent) {
  Report r = sample_report();
  MethodologyOutcome mo;
  mo.proceed = true;
  mo.trace.push_back({0, "x", Step::kProceed, true, "ok"});
  r.methodology = mo;
  const std::string md = r.to_markdown();
  EXPECT_NE(md.find("## Methodology trace"), std::string::npos);
  EXPECT_NE(md.find("Outcome: PROCEED"), std::string::npos);
}

TEST(Report, WriteProducesMarkdownAndCsvs) {
  const TempDir tmp;
  const Report r = sample_report();
  const fs::path md_path = r.write(tmp.path, "pdf1d");
  EXPECT_TRUE(fs::exists(md_path));
  EXPECT_TRUE(fs::exists(tmp.path / "pdf1d_predictions.csv"));
  EXPECT_TRUE(fs::exists(tmp.path / "pdf1d_validation.csv"));
  EXPECT_EQ(slurp(md_path), r.to_markdown());

  const std::string csv = slurp(tmp.path / "pdf1d_predictions.csv");
  // Header + one row per candidate clock.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("fclock_mhz,"), std::string::npos);
  EXPECT_NE(csv.find("75.000"), std::string::npos);
  EXPECT_NE(csv.find("150.000"), std::string::npos);
}

TEST(Report, NoValidationCsvWithoutMeasurements) {
  const TempDir tmp;
  Report r;
  r.inputs = pdf2d_inputs();
  r.finalize();
  r.write(tmp.path, "pdf2d");
  EXPECT_TRUE(fs::exists(tmp.path / "pdf2d_predictions.csv"));
  EXPECT_FALSE(fs::exists(tmp.path / "pdf2d_validation.csv"));
}

TEST(Report, WriteValidation) {
  const TempDir tmp;
  const Report r = sample_report();
  EXPECT_THROW(r.write(tmp.path, ""), std::invalid_argument);
}

TEST(Report, PredictionsCsvRoundsSensibly) {
  const auto preds = predict_all(pdf1d_inputs());
  const std::string csv = predictions_csv(preds);
  EXPECT_NE(csv.find("5.56014E-6"), std::string::npos);  // 6 sig figs
}

}  // namespace
}  // namespace rat::core
