#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/throughput.hpp"
#include "core/units.hpp"

namespace rat::core {
namespace {

TEST(Streaming, RatesFromWorksheet) {
  const RatInputs in = pdf1d_inputs();
  const auto p = predict_streaming(in, mhz(150));
  // rate_in = 0.37 * 1e9 / 4 elements/s.
  EXPECT_NEAR(p.rate_in, 0.37 * 1e9 / 4.0, 1.0);
  // rate_comp = 150e6 * 20 / 768.
  EXPECT_NEAR(p.rate_comp, 150e6 * 20.0 / 768.0, 1.0);
  EXPECT_EQ(p.bottleneck, StreamBottleneck::kCompute);
  EXPECT_DOUBLE_EQ(p.sustained_rate, p.rate_comp);
}

TEST(Streaming, MatchesDoubleBufferedLimit) {
  // Streaming is the Niter->inf limit of Eq. (6): per-element time in DB
  // mode equals 1/sustained_rate when transfers fully overlap.
  for (const RatInputs& in : {pdf1d_inputs(), pdf2d_inputs(), md_inputs()}) {
    const auto s = predict_streaming(in, mhz(100));
    const auto p = predict(in, mhz(100));
    const double db_rate =
        static_cast<double>(in.dataset.elements_in) /
        std::max(p.t_comp_sec,
                 std::max(p.t_write_sec, p.t_read_sec));
    // The DB iteration serializes write+read on one bus while streaming
    // treats them as separate channels, so equality holds when compute
    // dominates (all three cases here).
    EXPECT_NEAR(s.sustained_rate, db_rate, 0.01 * db_rate) << in.name;
  }
}

TEST(Streaming, OutputBottleneckWhenResultsFanOut) {
  // 16 output elements per input element through a slow read channel.
  RatInputs in = pdf1d_inputs();
  in.dataset.elements_out = in.dataset.elements_in * 16;
  in.comm.alpha_read = 0.05;
  const auto p = predict_streaming(in, mhz(150));
  EXPECT_EQ(p.bottleneck, StreamBottleneck::kOutput);
  EXPECT_LT(p.rate_out, p.rate_in);
  EXPECT_LT(p.rate_out, p.rate_comp);
}

TEST(Streaming, InputBottleneckForCheapKernels) {
  RatInputs in = pdf1d_inputs();
  in.comp.ops_per_element = 1.0;  // trivial computation
  in.dataset.elements_out = 1;    // negligible output
  const auto p = predict_streaming(in, mhz(150));
  EXPECT_EQ(p.bottleneck, StreamBottleneck::kInput);
  EXPECT_DOUBLE_EQ(p.sustained_rate, p.rate_in);
}

TEST(Streaming, NoOutputStreamNeverBottlenecks) {
  RatInputs in = pdf1d_inputs();
  in.dataset.elements_out = 0;  // results retained on chip
  const auto p = predict_streaming(in, mhz(150));
  EXPECT_NE(p.bottleneck, StreamBottleneck::kOutput);
  EXPECT_TRUE(std::isinf(p.rate_out));
}

TEST(Streaming, NoOutputStreamEndToEnd) {
  // The rate_out = +Inf path must stay usable end to end: finite sustained
  // rate, finite time/speedup, and an output headroom of exactly 1 (an
  // absent channel has all its headroom).
  RatInputs in = pdf1d_inputs();
  in.dataset.elements_out = 0;
  const auto p = predict_streaming(in, mhz(150));
  EXPECT_TRUE(std::isfinite(p.sustained_rate));
  EXPECT_GT(p.sustained_rate, 0.0);
  EXPECT_DOUBLE_EQ(p.sustained_rate, std::min(p.rate_in, p.rate_comp));
  EXPECT_TRUE(std::isfinite(p.time_for(1 << 20)));
  EXPECT_TRUE(std::isfinite(p.speedup_for(1 << 20, 0.578)));
  EXPECT_DOUBLE_EQ(p.output_headroom(), 1.0);
  EXPECT_GE(p.input_headroom(), 0.0);
  EXPECT_GE(p.compute_headroom(), 0.0);
}

TEST(Streaming, UlpTieClassifiesAsCompute) {
  // Regression: mathematically equal rate_comp and rate_in separated only
  // by rounding used to classify by accident of rounding direction. Make
  // rate_comp exceed rate_in by 1 part in 1e12 — far inside the 1e-9 tie
  // tolerance — so sustained_rate == rate_in; exact-comparison code
  // reported kInput, but a tie must resolve to the documented priority,
  // compute first.
  RatInputs in = pdf1d_inputs();
  in.dataset.elements_out = 1;  // output channel effectively unloaded
  in.comp.ops_per_element = 1.0;
  in.comp.throughput_ops_per_cycle = 1.0;  // rate_comp == fclock
  const double rate_in = predict_streaming(in, mhz(100)).rate_in;
  const auto p = predict_streaming(in, rate_in * (1.0 + 1e-12));
  ASSERT_DOUBLE_EQ(p.sustained_rate, p.rate_in);
  ASSERT_GT(p.rate_comp, p.rate_in);  // distinct doubles...
  EXPECT_EQ(p.bottleneck, StreamBottleneck::kCompute);  // ...but tied
}

TEST(Streaming, UlpTiePrefersInputOverOutput) {
  // Same defect on the channel pair: rate_out a hair below rate_in used to
  // report kOutput; within tolerance the tie resolves input-first.
  RatInputs in = pdf1d_inputs();
  in.dataset.elements_out = in.dataset.elements_in;  // out/in ratio 1
  in.comm.alpha_write = 0.5;
  in.comm.alpha_read = 0.5 * (1.0 - 1e-12);
  in.comp.ops_per_element = 1.0;  // compute far faster than the channels
  const auto p = predict_streaming(in, mhz(150));
  ASSERT_LT(p.rate_out, p.rate_in);
  ASSERT_DOUBLE_EQ(p.sustained_rate, p.rate_out);
  EXPECT_EQ(p.bottleneck, StreamBottleneck::kInput);
}

TEST(Streaming, DistinctRatesUnaffectedByTieTolerance) {
  // Rates separated by much more than the tolerance classify exactly as
  // before the tie handling.
  RatInputs in = pdf1d_inputs();
  const auto p = predict_streaming(in, mhz(150));
  EXPECT_EQ(p.bottleneck, StreamBottleneck::kCompute);
  in.comp.ops_per_element = 1.0;
  in.dataset.elements_out = 1;
  const auto q = predict_streaming(in, mhz(150));
  EXPECT_EQ(q.bottleneck, StreamBottleneck::kInput);
}

TEST(Streaming, TimeAndSpeedupScaleLinearly) {
  const auto p = predict_streaming(pdf1d_inputs(), mhz(150));
  EXPECT_NEAR(p.time_for(204800), 2.0 * p.time_for(102400), 1e-12);
  EXPECT_NEAR(p.speedup_for(204800, 0.578),
              0.578 / p.time_for(204800), 1e-9);
  EXPECT_THROW(p.speedup_for(100, 0.0), std::invalid_argument);
}

TEST(Streaming, StreamingBeatsSingleBuffered) {
  // Continuous flow can only help relative to serialized SB iterations.
  for (const RatInputs& in : {pdf1d_inputs(), pdf2d_inputs()}) {
    const auto s = predict_streaming(in, mhz(150));
    const auto p = predict(in, mhz(150));
    const std::size_t total =
        in.dataset.elements_in * in.software.n_iterations;
    EXPECT_LE(s.time_for(total), p.t_rc_sb_sec * 1.0001) << in.name;
  }
}

TEST(Streaming, HeadroomsConsistent) {
  const auto p = predict_streaming(pdf2d_inputs(), mhz(150));
  // Exactly one resource has zero headroom (the bottleneck).
  int saturated = 0;
  for (double h :
       {p.input_headroom(), p.compute_headroom(), p.output_headroom()}) {
    EXPECT_GE(h, -1e-12);
    EXPECT_LE(h, 1.0);
    if (h < 1e-12) ++saturated;
  }
  EXPECT_GE(saturated, 1);
}

TEST(Streaming, ClockScalesOnlyComputeRate) {
  const RatInputs in = pdf1d_inputs();
  const auto p75 = predict_streaming(in, mhz(75));
  const auto p150 = predict_streaming(in, mhz(150));
  EXPECT_NEAR(p150.rate_comp, 2.0 * p75.rate_comp, 1e-6);
  EXPECT_DOUBLE_EQ(p150.rate_in, p75.rate_in);
}

TEST(Streaming, Validation) {
  EXPECT_THROW(predict_streaming(pdf1d_inputs(), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rat::core
