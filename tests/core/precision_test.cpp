#include "core/precision.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace rat::core {
namespace {

/// Kernel: cumulative products with truncation — error grows with fewer
/// bits, mimicking an accumulating datapath.
struct Fixture {
  std::vector<double> xs;
  std::vector<double> ref;
  fx::FixedKernel kernel;

  explicit Fixture(std::size_t n = 400, std::uint64_t seed = 21) {
    util::Rng rng(seed);
    xs.resize(n);
    for (auto& x : xs) x = rng.uniform(0.05, 0.95);
    ref.reserve(n);
    for (double x : xs) ref.push_back(x * x * 0.5 + 0.25 * x);
    kernel = [xs = xs](fx::Format fmt) {
      std::vector<double> out;
      out.reserve(xs.size());
      const fx::Fixed half = fx::Fixed::from_double(0.5, fmt);
      const fx::Fixed quarter = fx::Fixed::from_double(0.25, fmt);
      for (double x : xs) {
        const fx::Fixed fx_x = fx::Fixed::from_double(x, fmt);
        const auto t = fx::Rounding::kTruncate;
        const fx::Fixed x2 = fx::Fixed::mul(fx_x, fx_x, fmt, t);
        const fx::Fixed a = fx::Fixed::mul(x2, half, fmt, t);
        const fx::Fixed b = fx::Fixed::mul(quarter, fx_x, fmt, t);
        out.push_back(fx::Fixed::add(a, b, fmt, t).to_double());
      }
      return out;
    };
  }
};

TEST(PrecisionTest, FindsMinimalSatisfyingFormat) {
  const Fixture f;
  PrecisionRequirements req;
  req.max_error_percent = 0.5;
  req.min_total_bits = 6;
  req.max_total_bits = 24;
  req.int_bits = 0;
  const PrecisionResult r = run_precision_test(f.kernel, f.ref, req);
  ASSERT_TRUE(r.satisfied);
  ASSERT_TRUE(r.choice.has_value());
  EXPECT_TRUE(r.choice->report.within_percent(0.5));
  // Minimality: every narrower sweep entry must violate the tolerance.
  for (const auto& c : r.sweep) {
    if (c.format.total_bits < r.choice->format.total_bits) {
      EXPECT_FALSE(c.report.within_percent(0.5))
          << c.format.total_bits << " bits unexpectedly satisfies";
    }
  }
}

TEST(PrecisionTest, TighterToleranceNeedsMoreBits) {
  const Fixture f;
  PrecisionRequirements loose{5.0, 6, 28, 0};
  PrecisionRequirements tight{0.05, 6, 28, 0};
  const auto rl = run_precision_test(f.kernel, f.ref, loose);
  const auto rt = run_precision_test(f.kernel, f.ref, tight);
  ASSERT_TRUE(rl.satisfied && rt.satisfied);
  EXPECT_LT(rl.choice->format.total_bits, rt.choice->format.total_bits);
}

TEST(PrecisionTest, UnsatisfiedWhenWindowTooNarrow) {
  const Fixture f;
  PrecisionRequirements req{1e-8, 4, 10, 0};
  const auto r = run_precision_test(f.kernel, f.ref, req);
  EXPECT_FALSE(r.satisfied);
  EXPECT_FALSE(r.choice.has_value());
  EXPECT_FALSE(r.sweep.empty());  // the sweep is still reported
}

TEST(PrecisionTest, RejectsNonPositiveTolerance) {
  const Fixture f;
  EXPECT_THROW(
      run_precision_test(f.kernel, f.ref, PrecisionRequirements{0.0}),
      std::invalid_argument);
}

TEST(PrecisionResult, BytesPerElementRoundsToChannelWord) {
  // The paper's 18-bit format travels over a 32-bit channel: 4 bytes.
  PrecisionResult r;
  r.choice = fx::PrecisionChoice{fx::Format{18, 17, true}, {}};
  EXPECT_DOUBLE_EQ(r.bytes_per_element(4.0), 4.0);
  r.choice->format.total_bits = 33;
  EXPECT_DOUBLE_EQ(r.bytes_per_element(4.0), 8.0);
  r.choice->format.total_bits = 8;
  EXPECT_DOUBLE_EQ(r.bytes_per_element(2.0), 2.0);
}

TEST(PrecisionResult, BytesPerElementErrors) {
  PrecisionResult none;
  EXPECT_THROW(none.bytes_per_element(), std::logic_error);
  PrecisionResult r;
  r.choice = fx::PrecisionChoice{fx::Format{18, 17, true}, {}};
  EXPECT_THROW(r.bytes_per_element(0.0), std::invalid_argument);
}

TEST(PrecisionResult, SweepTableHasOneRowPerWidth) {
  const Fixture f;
  PrecisionRequirements req{2.0, 8, 16, 0};
  const auto r = run_precision_test(f.kernel, f.ref, req);
  EXPECT_EQ(r.to_table().num_rows(), 9u);
}

}  // namespace
}  // namespace rat::core
