#include "core/montecarlo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "core/units.hpp"
#include "util/rng.hpp"

namespace rat::core {
namespace {

TEST(InputDistribution, FactoriesValidate) {
  EXPECT_NO_THROW(InputDistribution::uniform(1.0, 2.0));
  EXPECT_THROW(InputDistribution::uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(InputDistribution::uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_NO_THROW(InputDistribution::normal(1.0, 0.1, 0.0, 2.0));
  EXPECT_THROW(InputDistribution::normal(1.0, 0.0, 0.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(InputDistribution::normal(1.0, 0.1, 2.0, 0.0),
               std::invalid_argument);
}

TEST(InputDistribution, SampleRespectsEachKind) {
  util::Rng rng(5);
  EXPECT_DOUBLE_EQ(sample(InputDistribution::fixed(), 3.25, rng), 3.25);
  for (int i = 0; i < 100; ++i) {
    const double u = sample(InputDistribution::uniform(2.0, 4.0), 0.0, rng);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 4.0);
    const double n =
        sample(InputDistribution::normal(3.0, 0.5, 2.0, 4.0), 0.0, rng);
    EXPECT_GE(n, 2.0);
    EXPECT_LE(n, 4.0);
  }
}

TEST(InputDistribution, TruncatedNormalFarBandDoesNotCollapse) {
  // Band ~2.5 sigma above the mean: most of the 64 rejection tries fail,
  // so the clamping fallback fires for many samples. The old fallback
  // clamped the *mean*, collapsing every such sample to the constant
  // lo = 2.5 and biasing mis-specified bands; clamping the final rejected
  // draw keeps the in-band draws and their spread.
  const InputDistribution d = InputDistribution::normal(0.0, 1.0, 2.5, 6.0);
  util::Rng rng(17);
  std::set<double> distinct;
  double sum = 0.0, sum_sq = 0.0;
  const int n = 512;
  for (int i = 0; i < n; ++i) {
    const double x = sample(d, 0.0, rng);
    ASSERT_GE(x, 2.5);
    ASSERT_LE(x, 6.0);
    distinct.insert(x);
    sum += x;
    sum_sq += x * x;
  }
  // Regression: the old code produced exactly one distinct value (2.5).
  EXPECT_GT(distinct.size(), n / 10u);
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_GT(mean, 2.5);
  EXPECT_GT(std::sqrt(var), 0.01);
}

TEST(MonteCarlo, FixedModelReproducesPointPrediction) {
  const RatInputs in = pdf1d_inputs();
  UncertaintyModel model;  // everything kFixed
  const auto r = run_monte_carlo(in, model, 100, 0.0, 7);
  const auto point = predict(in, in.comp.fclock_hz.front());
  EXPECT_DOUBLE_EQ(r.speedup_sb.p10, point.speedup_sb);
  EXPECT_DOUBLE_EQ(r.speedup_sb.p90, point.speedup_sb);
  EXPECT_DOUBLE_EQ(r.t_comm_sec.p50, point.t_comm_sec);
  EXPECT_DOUBLE_EQ(r.speedup_sb.relative_spread(), 0.0);
}

TEST(MonteCarlo, DeterministicPerSeed) {
  const RatInputs in = md_inputs();
  const auto model = UncertaintyModel::typical(in);
  const auto a = run_monte_carlo(in, model, 500, 10.0, 42);
  const auto b = run_monte_carlo(in, model, 500, 10.0, 42);
  EXPECT_EQ(a.speedup_sb_samples, b.speedup_sb_samples);
  EXPECT_DOUBLE_EQ(a.probability_of_goal, b.probability_of_goal);
  const auto c = run_monte_carlo(in, model, 500, 10.0, 43);
  EXPECT_NE(a.speedup_sb_samples, c.speedup_sb_samples);
}

TEST(MonteCarlo, PercentilesAreOrderedAndBracketPoint) {
  const RatInputs in = md_inputs();
  const auto model = UncertaintyModel::typical(in);
  const auto r = run_monte_carlo(in, model, 4000, 0.0, 11);
  EXPECT_LE(r.speedup_sb.p10, r.speedup_sb.p50);
  EXPECT_LE(r.speedup_sb.p50, r.speedup_sb.p90);
  EXPECT_LT(r.speedup_sb.p10, r.speedup_sb.p90);  // genuinely uncertain
  // The point prediction at the first clock lies inside the band (clock
  // uncertainty spans the candidate range, so the band is wide).
  const auto lo = predict(in, mhz(75)).speedup_sb;
  const auto hi = predict(in, mhz(150)).speedup_sb;
  EXPECT_GT(r.speedup_sb.p90, lo);
  EXPECT_LT(r.speedup_sb.p10, hi);
  EXPECT_EQ(r.speedup_sb_samples.size(), 4000u);
  EXPECT_TRUE(std::is_sorted(r.speedup_sb_samples.begin(),
                             r.speedup_sb_samples.end()));
}

TEST(MonteCarlo, GoalProbabilityMonotoneInGoal) {
  const RatInputs in = md_inputs();
  const auto model = UncertaintyModel::typical(in);
  double prev = 1.1;
  for (double goal : {5.0, 8.0, 10.0, 13.0, 18.0, 24.0}) {
    const auto r = run_monte_carlo(in, model, 2000, goal, 21);
    EXPECT_LE(r.probability_of_goal, prev);
    prev = r.probability_of_goal;
  }
  // 5x should be near-certain; 24x near-impossible for this worksheet
  // (it needs the favourable tail of clock, ops AND parallelism at once).
  EXPECT_GT(run_monte_carlo(in, model, 2000, 5.0, 21).probability_of_goal,
            0.95);
  EXPECT_LT(run_monte_carlo(in, model, 2000, 24.0, 21).probability_of_goal,
            0.02);
}

TEST(MonteCarlo, WiderUncertaintyWidensTheBand) {
  const RatInputs in = pdf1d_inputs();
  UncertaintyModel narrow;
  narrow.throughput_proc = InputDistribution::uniform(19.0, 21.0);
  UncertaintyModel wide;
  wide.throughput_proc = InputDistribution::uniform(10.0, 30.0);
  const auto rn = run_monte_carlo(in, narrow, 3000, 0.0, 5);
  const auto rw = run_monte_carlo(in, wide, 3000, 0.0, 5);
  EXPECT_LT(rn.speedup_sb.relative_spread(),
            rw.speedup_sb.relative_spread());
}

TEST(MonteCarlo, NormalDistributionStaysWithinTruncation) {
  const RatInputs in = pdf1d_inputs();
  UncertaintyModel m;
  m.alpha_write = InputDistribution::normal(0.37, 0.5, 0.30, 0.44);
  const auto r = run_monte_carlo(in, m, 2000, 0.0, 9);
  // alpha in [0.30, 0.44] bounds t_write; all samples must respect it.
  const double t_min = 2048.0 / (0.44 * 1e9) + 4.0 / (0.16 * 1e9);
  const double t_max = 2048.0 / (0.30 * 1e9) + 4.0 / (0.16 * 1e9);
  EXPECT_GE(r.t_comm_sec.p10, t_min - 1e-12);
  EXPECT_LE(r.t_comm_sec.p90, t_max + 1e-12);
}

TEST(MonteCarlo, AlphaSamplesNeverExceedOne) {
  RatInputs in = pdf1d_inputs();
  in.comm.alpha_write = 0.95;
  UncertaintyModel m;
  m.alpha_write = InputDistribution::uniform(0.9, 1.5);  // spills over 1
  // predict() validates alpha <= 1, so this only passes if sampling clamps.
  EXPECT_NO_THROW(run_monte_carlo(in, m, 500, 0.0, 3));
}

TEST(MonteCarlo, TypicalModelUsesCandidateClockRange) {
  const RatInputs in = pdf1d_inputs();  // clocks 75/100/150
  const auto m = UncertaintyModel::typical(in);
  EXPECT_EQ(m.fclock_hz.kind, InputDistribution::Kind::kUniform);
  EXPECT_DOUBLE_EQ(m.fclock_hz.lo, mhz(75));
  EXPECT_DOUBLE_EQ(m.fclock_hz.hi, mhz(150));
  EXPECT_EQ(m.tsoft_sec.kind, InputDistribution::Kind::kFixed);
}

TEST(MonteCarlo, RejectsTinySampleCounts) {
  const RatInputs in = pdf1d_inputs();
  EXPECT_THROW(run_monte_carlo(in, {}, 1, 0.0), std::invalid_argument);
}

TEST(Percentiles, LinearInterpolationBetweenOrderStatistics) {
  // Quantile q reads fractional index q*(n-1): for n=4 the p10 sits at
  // index 0.3 -> 0.7*xs[0] + 0.3*xs[1], etc. (NumPy's "linear").
  std::vector<double> xs{3.0, 1.0, 0.0, 2.0};  // sorted in place
  const Percentiles p = percentiles_of(xs);
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(p.p10, 0.3);
  EXPECT_DOUBLE_EQ(p.p50, 1.5);
  EXPECT_DOUBLE_EQ(p.p90, 2.7);
  EXPECT_DOUBLE_EQ(p.mean, 1.5);
}

TEST(Percentiles, TwoSamplesMedianIsHalfway) {
  std::vector<double> xs{10.0, 20.0};
  const Percentiles p = percentiles_of(xs);
  EXPECT_DOUBLE_EQ(p.p50, 15.0);
  EXPECT_DOUBLE_EQ(p.p10, 11.0);
  EXPECT_DOUBLE_EQ(p.p90, 19.0);
}

TEST(Percentiles, SingleSampleAndEmptyInput) {
  std::vector<double> one{4.25};
  const Percentiles p = percentiles_of(one);
  EXPECT_DOUBLE_EQ(p.p10, 4.25);
  EXPECT_DOUBLE_EQ(p.p50, 4.25);
  EXPECT_DOUBLE_EQ(p.p90, 4.25);
  std::vector<double> none;
  EXPECT_THROW(percentiles_of(none), std::invalid_argument);
}

TEST(MonteCarlo, GoalProbabilityIsSingleBufferedOnly) {
  // probability_of_goal scores the *single-buffered* speedup by design
  // (docs/MODELS.md §8): the conservative mode is the risk question. With
  // a fully fixed model every sample equals the point prediction, so a
  // goal strictly between speedup_sb and speedup_db pins the semantics:
  // SB scoring -> probability 0; accidentally scoring DB would give 1.
  const RatInputs in = pdf1d_inputs();
  const auto point = predict(in, in.comp.fclock_hz.front());
  ASSERT_LT(point.speedup_sb, point.speedup_db);
  const double between = 0.5 * (point.speedup_sb + point.speedup_db);
  UncertaintyModel fixed_model;
  EXPECT_DOUBLE_EQ(
      run_monte_carlo(in, fixed_model, 100, between, 7).probability_of_goal,
      0.0);
  // Sanity: a goal the SB speedup does meet reports certainty.
  EXPECT_DOUBLE_EQ(run_monte_carlo(in, fixed_model, 100,
                                   point.speedup_sb * 0.99, 7)
                       .probability_of_goal,
                   1.0);
}

}  // namespace
}  // namespace rat::core
