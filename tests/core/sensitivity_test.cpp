#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/units.hpp"

namespace rat::core {
namespace {

TEST(SolveThroughputProc, ReproducesMdTuning) {
  // Paper §5.2: "50 is the quantitative value computed by the equations to
  // achieve the desired overall speedup of approximately 10x".
  const RatInputs in = md_inputs();
  // Solving for exactly 10x yields ~47 ops/cycle; the authors rounded up
  // to 50, which predicts 10.7x (Table 9's 100 MHz column).
  const auto tp10 =
      solve_throughput_proc(in, mhz(100), 10.0, BufferingMode::kSingle);
  ASSERT_TRUE(tp10.has_value());
  EXPECT_NEAR(*tp10, 46.7, 0.5);
  EXPECT_LT(*tp10, 50.0);
  const auto tp107 =
      solve_throughput_proc(in, mhz(100), 10.7, BufferingMode::kSingle);
  ASSERT_TRUE(tp107.has_value());
  EXPECT_NEAR(*tp107, 50.0, 0.2);
}

TEST(SolveThroughputProc, RoundTripThroughPredict) {
  for (const RatInputs& base :
       {pdf1d_inputs(), pdf2d_inputs(), md_inputs()}) {
    for (double target : {2.0, 5.0, 8.0}) {
      const auto tp = solve_throughput_proc(base, mhz(100), target,
                                            BufferingMode::kSingle);
      if (!tp) continue;
      RatInputs tuned = base;
      tuned.comp.throughput_ops_per_cycle = *tp;
      EXPECT_NEAR(predict(tuned, mhz(100)).speedup_sb, target,
                  1e-6 * target)
          << base.name;
    }
  }
}

TEST(SolveThroughputProc, DoubleBufferedNeedsLessCapability) {
  const RatInputs in = pdf2d_inputs();
  const auto sb =
      solve_throughput_proc(in, mhz(100), 5.0, BufferingMode::kSingle);
  const auto db =
      solve_throughput_proc(in, mhz(100), 5.0, BufferingMode::kDouble);
  ASSERT_TRUE(sb && db);
  EXPECT_LT(*db, *sb);
}

TEST(SolveThroughputProc, UnreachableTargetReturnsNullopt) {
  const RatInputs in = pdf1d_inputs();
  // Communication alone caps the speedup; ask above that cap.
  const double cap = speedup_upper_bound(in, BufferingMode::kSingle);
  EXPECT_FALSE(solve_throughput_proc(in, mhz(100), cap * 1.01,
                                     BufferingMode::kSingle)
                   .has_value());
  EXPECT_TRUE(solve_throughput_proc(in, mhz(100), cap * 0.5,
                                    BufferingMode::kSingle)
                  .has_value());
}

TEST(SolveThroughputProc, InvalidTargets) {
  EXPECT_THROW(solve_throughput_proc(pdf1d_inputs(), mhz(100), 0.0,
                                     BufferingMode::kSingle),
               std::invalid_argument);
  EXPECT_THROW(solve_throughput_proc(pdf1d_inputs(), 0.0, 5.0,
                                     BufferingMode::kSingle),
               std::invalid_argument);
}

TEST(SolveFclock, RoundTripThroughPredict) {
  const RatInputs in = pdf1d_inputs();
  const auto f = solve_fclock(in, 8.0, BufferingMode::kSingle);
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(predict(in, *f).speedup_sb, 8.0, 1e-6);
}

TEST(SolveFclock, HigherTargetNeedsHigherClock) {
  const RatInputs in = pdf1d_inputs();
  const auto f5 = solve_fclock(in, 5.0, BufferingMode::kSingle);
  const auto f10 = solve_fclock(in, 10.0, BufferingMode::kSingle);
  ASSERT_TRUE(f5 && f10);
  EXPECT_GT(*f10, *f5);
}

TEST(SpeedupUpperBound, MatchesInfiniteComputeRate) {
  RatInputs in = pdf2d_inputs();
  const double bound = speedup_upper_bound(in, BufferingMode::kSingle);
  in.comp.throughput_ops_per_cycle = 1e15;
  EXPECT_NEAR(predict(in, mhz(100)).speedup_sb, bound, 1e-6 * bound);
}

TEST(SweepParameter, AppliesSetterPerValue) {
  const RatInputs in = pdf1d_inputs();
  const auto preds = sweep_parameter(
      in,
      [](RatInputs& r, double v) { r.comp.throughput_ops_per_cycle = v; },
      {10.0, 20.0, 40.0}, mhz(150));
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_NEAR(preds[0].t_comp_sec, 2.0 * preds[1].t_comp_sec, 1e-12);
  EXPECT_NEAR(preds[1].t_comp_sec, 2.0 * preds[2].t_comp_sec, 1e-12);
  EXPECT_THROW(sweep_parameter(in, nullptr, {1.0}, mhz(100)),
               std::invalid_argument);
}

TEST(Tornado, RanksComputationParametersFirstForComputeBoundApp) {
  // MD at 100 MHz is 99%+ computation: ops/element and throughput_proc
  // must dominate the tornado; alphas must be negligible.
  const auto entries = tornado(md_inputs(), mhz(100), 0.2);
  ASSERT_GE(entries.size(), 4u);
  EXPECT_TRUE(entries[0].parameter == "ops_per_element" ||
              entries[0].parameter == "throughput_proc");
  for (const auto& e : entries) {
    if (e.parameter == "alpha_write" || e.parameter == "alpha_read") {
      EXPECT_LT(e.swing(), entries[0].swing() * 0.05);
    }
  }
}

TEST(Tornado, SortedByDescendingSwing) {
  const auto entries = tornado(pdf2d_inputs(), mhz(150), 0.25);
  for (std::size_t i = 1; i < entries.size(); ++i)
    EXPECT_GE(entries[i - 1].swing(), entries[i].swing());
}

TEST(Tornado, SwingBracketsBaseline) {
  const double base = predict(pdf1d_inputs(), mhz(100)).speedup_sb;
  for (const auto& e : tornado(pdf1d_inputs(), mhz(100), 0.2)) {
    EXPECT_LE(e.speedup_low, base + 1e-9) << e.parameter;
    EXPECT_GE(e.speedup_high, base - 1e-9) << e.parameter;
  }
}

TEST(Tornado, FractionValidation) {
  EXPECT_THROW(tornado(pdf1d_inputs(), mhz(100), 0.0),
               std::invalid_argument);
  EXPECT_THROW(tornado(pdf1d_inputs(), mhz(100), 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rat::core
