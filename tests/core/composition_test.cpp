#include "core/composition.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/units.hpp"

namespace rat::core {
namespace {

StageSpec stage(double ops_per_element, double tsoft,
                std::size_t elements = 512, std::size_t n_iter = 100) {
  StageSpec s;
  s.inputs.name = "stage";
  s.inputs.dataset = {elements, elements, 4.0};
  s.inputs.comm = {1e9, 0.5, 0.5};
  s.inputs.comp = {ops_per_element, 10.0, {mhz(100)}};
  s.inputs.software = {tsoft, n_iter};
  s.fclock_hz = mhz(100);
  return s;
}

TEST(Composite, SingleStageMatchesPlainPrediction) {
  const StageSpec s = stage(1000, 2.0);
  const auto comp = predict_composite({s}, CompositionMode::kSequential);
  const auto plain = predict(s.inputs, s.fclock_hz);
  EXPECT_NEAR(comp.t_total_sec, plain.t_rc_sb_sec, 1e-12);
  EXPECT_NEAR(comp.speedup, plain.speedup_sb, 1e-9);
  EXPECT_EQ(comp.bottleneck_stage, 0u);
}

TEST(Composite, SequentialSumsStages) {
  const StageSpec a = stage(1000, 2.0);
  const StageSpec b = stage(3000, 5.0);
  const auto comp = predict_composite({a, b}, CompositionMode::kSequential);
  const auto pa = predict(a.inputs, a.fclock_hz);
  const auto pb = predict(b.inputs, b.fclock_hz);
  EXPECT_NEAR(comp.t_total_sec, pa.t_rc_sb_sec + pb.t_rc_sb_sec, 1e-12);
  EXPECT_NEAR(comp.tsoft_total_sec, 7.0, 1e-12);
  EXPECT_EQ(comp.bottleneck_stage, 1u);
  EXPECT_GT(comp.bottleneck_share, 0.5);
}

TEST(Composite, OnChipHandoffSkipsIntermediateTransfers) {
  StageSpec a = stage(1000, 2.0);
  const StageSpec b = stage(1000, 2.0);
  const auto with_bus =
      predict_composite({a, b}, CompositionMode::kSequential);
  a.output_stays_on_chip = true;
  const auto on_chip =
      predict_composite({a, b}, CompositionMode::kSequential);
  EXPECT_LT(on_chip.t_total_sec, with_bus.t_total_sec);
  // Exactly one read (stage a's) and one write (stage b's) are saved.
  EXPECT_DOUBLE_EQ(on_chip.stages[0].t_read_sec, 0.0);
  EXPECT_DOUBLE_EQ(on_chip.stages[1].t_write_sec, 0.0);
  EXPECT_GT(on_chip.stages[0].t_write_sec, 0.0);
  EXPECT_GT(on_chip.stages[1].t_read_sec, 0.0);
}

TEST(Composite, FinalStageMustReturnResults) {
  StageSpec a = stage(1000, 2.0);
  a.output_stays_on_chip = true;
  EXPECT_THROW(predict_composite({a}, CompositionMode::kSequential),
               std::invalid_argument);
}

TEST(Composite, PipelinedBoundedBySlowestStage) {
  const StageSpec a = stage(1000, 2.0);
  const StageSpec b = stage(4000, 2.0);
  const StageSpec c = stage(2000, 2.0);
  const auto pipe =
      predict_composite({a, b, c}, CompositionMode::kPipelined);
  const auto seq =
      predict_composite({a, b, c}, CompositionMode::kSequential);
  EXPECT_LT(pipe.t_total_sec, seq.t_total_sec);
  // Steady state: one block every t_stage(b); fill adds one pass.
  const double worst = pipe.stages[1].t_stage_sec;
  const double fill = pipe.stages[0].t_stage_sec + worst +
                      pipe.stages[2].t_stage_sec;
  EXPECT_NEAR(pipe.t_total_sec, fill + 99.0 * worst, 1e-12);
  EXPECT_EQ(pipe.bottleneck_stage, 1u);
}

TEST(Composite, PipelinedApproachesSlowestStageShare) {
  const StageSpec a = stage(1000, 2.0, 512, 10000);
  const StageSpec b = stage(4000, 2.0, 512, 10000);
  const auto pipe = predict_composite({a, b}, CompositionMode::kPipelined);
  EXPECT_NEAR(pipe.bottleneck_share, 1.0, 1e-3);
}

TEST(Composite, Validation) {
  EXPECT_THROW(predict_composite({}, CompositionMode::kSequential),
               std::invalid_argument);
  StageSpec a = stage(1000, 2.0, 512, 100);
  StageSpec b = stage(1000, 2.0, 512, 200);  // Niter mismatch
  EXPECT_THROW(predict_composite({a, b}, CompositionMode::kSequential),
               std::invalid_argument);
  StageSpec c = stage(1000, 2.0);
  c.fclock_hz = 0.0;
  EXPECT_THROW(predict_composite({c}, CompositionMode::kSequential),
               std::invalid_argument);
}

TEST(Composite, TableRendersAllStages) {
  const auto comp = predict_composite({stage(1000, 2.0), stage(2000, 3.0)},
                                      CompositionMode::kSequential);
  const auto t = comp.to_table();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.cell(1, 0), "1 *");  // bottleneck marker
}

// ---------------------------------------------------------------- scaling
TEST(Scaling, SingleBoardMatchesDoubleBufferedPrediction) {
  const RatInputs in = pdf2d_inputs();
  const auto curve = predict_scaling(in, mhz(150), 1);
  ASSERT_EQ(curve.size(), 1u);
  const auto p = predict(in, mhz(150));
  EXPECT_NEAR(curve[0].t_rc_sec, p.t_rc_db_sec, 1e-12);
  EXPECT_DOUBLE_EQ(curve[0].efficiency, 1.0);
}

TEST(Scaling, ComputeBoundAppScalesThenSaturates) {
  // 2-D PDF at 150 MHz: 97% compute, so scaling is near-linear early; the
  // shared-bus communication bound caps it near 34 boards
  // (tcomp/tcomm = 5.59E-2 / 1.65E-3).
  const RatInputs in = pdf2d_inputs();
  const auto curve = predict_scaling(in, mhz(150), 64);
  EXPECT_GT(curve[1].speedup, 1.9 * curve[0].speedup);   // 2 boards ~2x
  EXPECT_GT(curve[3].speedup, 3.6 * curve[0].speedup);   // 4 boards ~4x
  // Far out, the shared bus caps everything:
  const double cap = in.software.tsoft_sec /
                     (400.0 * curve[0].t_comm_sec);
  EXPECT_LT(curve[63].speedup, cap * 1.001);
  EXPECT_NEAR(curve[63].speedup, curve[47].speedup, 1e-9);  // saturated
  // Efficiency decays past the knee.
  EXPECT_LT(curve[63].efficiency, 0.6);
  EXPECT_GT(curve[1].efficiency, 0.95);
}

TEST(Scaling, SpeedupMonotoneNonDecreasingInBoards) {
  for (const RatInputs& in : {pdf1d_inputs(), pdf2d_inputs(), md_inputs()}) {
    const auto curve = predict_scaling(in, mhz(100), 16);
    for (std::size_t i = 1; i < curve.size(); ++i)
      EXPECT_GE(curve[i].speedup, curve[i - 1].speedup - 1e-9) << in.name;
  }
}

TEST(Scaling, CommBoundAppGainsNothing) {
  RatInputs in = pdf1d_inputs();
  in.comm.alpha_write = 0.001;  // bus-starved
  const auto curve = predict_scaling(in, mhz(150), 8);
  EXPECT_NEAR(curve[7].speedup, curve[0].speedup, 1e-9);
  EXPECT_LT(curve[7].efficiency, 0.2);
}

TEST(Scaling, MaxUsefulFpgasFindsKnee) {
  // 2-D PDF saturates at ~34 boards, so the 90%-efficiency knee sits well
  // inside the 64-board search window.
  const RatInputs in = pdf2d_inputs();
  const int k = max_useful_fpgas(in, mhz(150), 0.9, 64);
  EXPECT_GT(k, 1);
  EXPECT_LT(k, 64);
  // A tighter efficiency bar never admits more boards.
  EXPECT_LE(max_useful_fpgas(in, mhz(150), 0.99, 64), k);
  // MD's tiny communication keeps >50% efficiency beyond 64 boards: the
  // search saturates at its limit.
  EXPECT_EQ(max_useful_fpgas(md_inputs(), mhz(100), 0.5, 64), 64);
  EXPECT_THROW(max_useful_fpgas(in, mhz(150), 0.0), std::invalid_argument);
  EXPECT_THROW(max_useful_fpgas(in, mhz(150), 1.5), std::invalid_argument);
}

TEST(Scaling, Validation) {
  EXPECT_THROW(predict_scaling(pdf1d_inputs(), 0.0, 4),
               std::invalid_argument);
  EXPECT_THROW(predict_scaling(pdf1d_inputs(), mhz(100), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rat::core
