#include "core/parameters.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <stdexcept>
#include <string>

#include "core/units.hpp"
#include "io/diagnostics.hpp"

namespace rat::core {
namespace {

TEST(RatInputs, PaperWorksheetsValidate) {
  EXPECT_NO_THROW(pdf1d_inputs().validate());
  EXPECT_NO_THROW(pdf2d_inputs().validate());
  EXPECT_NO_THROW(md_inputs().validate());
}

TEST(RatInputs, Table2Values) {
  const RatInputs in = pdf1d_inputs();
  EXPECT_EQ(in.dataset.elements_in, 512u);
  EXPECT_EQ(in.dataset.elements_out, 1u);
  EXPECT_DOUBLE_EQ(in.dataset.bytes_per_element, 4.0);
  EXPECT_DOUBLE_EQ(in.comm.ideal_bw_bytes_per_sec, 1e9);
  EXPECT_DOUBLE_EQ(in.comm.alpha_write, 0.37);
  EXPECT_DOUBLE_EQ(in.comm.alpha_read, 0.16);
  EXPECT_DOUBLE_EQ(in.comp.ops_per_element, 768.0);
  EXPECT_DOUBLE_EQ(in.comp.throughput_ops_per_cycle, 20.0);
  EXPECT_DOUBLE_EQ(in.software.tsoft_sec, 0.578);
  EXPECT_EQ(in.software.n_iterations, 400u);
}

TEST(RatInputs, Table5Values) {
  const RatInputs in = pdf2d_inputs();
  EXPECT_EQ(in.dataset.elements_in, 1024u);
  EXPECT_EQ(in.dataset.elements_out, 65536u);
  EXPECT_DOUBLE_EQ(in.comp.ops_per_element, 393216.0);
  EXPECT_DOUBLE_EQ(in.comp.throughput_ops_per_cycle, 48.0);
  EXPECT_DOUBLE_EQ(in.software.tsoft_sec, 158.8);
}

TEST(RatInputs, Table8Values) {
  const RatInputs in = md_inputs();
  EXPECT_EQ(in.dataset.elements_in, 16384u);
  EXPECT_DOUBLE_EQ(in.dataset.bytes_per_element, 36.0);
  EXPECT_DOUBLE_EQ(in.comm.ideal_bw_bytes_per_sec, 5e8);
  EXPECT_DOUBLE_EQ(in.comm.alpha_write, 0.9);
  EXPECT_DOUBLE_EQ(in.comp.ops_per_element, 164000.0);
  EXPECT_DOUBLE_EQ(in.comp.throughput_ops_per_cycle, 50.0);
  EXPECT_EQ(in.software.n_iterations, 1u);
}

TEST(RatInputs, ValidationCatchesEachBadField) {
  auto expect_invalid = [](RatInputs in) {
    EXPECT_THROW(in.validate(), std::invalid_argument);
  };
  RatInputs base = pdf1d_inputs();

  RatInputs x = base; x.name.clear(); expect_invalid(x);
  x = base; x.dataset.elements_in = 0; expect_invalid(x);
  x = base; x.dataset.bytes_per_element = 0.0; expect_invalid(x);
  x = base; x.comm.ideal_bw_bytes_per_sec = -1.0; expect_invalid(x);
  x = base; x.comm.alpha_write = 0.0; expect_invalid(x);
  x = base; x.comm.alpha_write = 1.1; expect_invalid(x);
  x = base; x.comm.alpha_read = -0.5; expect_invalid(x);
  x = base; x.comp.ops_per_element = 0.0; expect_invalid(x);
  x = base; x.comp.throughput_ops_per_cycle = 0.0; expect_invalid(x);
  x = base; x.comp.fclock_hz.clear(); expect_invalid(x);
  x = base; x.comp.fclock_hz = {100e6, -5.0}; expect_invalid(x);
  x = base; x.software.tsoft_sec = 0.0; expect_invalid(x);
  x = base; x.software.n_iterations = 0; expect_invalid(x);
}

TEST(RatInputs, ZeroOutputElementsIsLegal) {
  RatInputs in = pdf1d_inputs();
  in.dataset.elements_out = 0;
  EXPECT_NO_THROW(in.validate());
}

TEST(RatInputs, SerializeParseRoundTrip) {
  for (const RatInputs& original :
       {pdf1d_inputs(), pdf2d_inputs(), md_inputs()}) {
    const RatInputs parsed = RatInputs::parse(original.serialize());
    EXPECT_EQ(parsed.name, original.name);
    EXPECT_EQ(parsed.dataset.elements_in, original.dataset.elements_in);
    EXPECT_EQ(parsed.dataset.elements_out, original.dataset.elements_out);
    EXPECT_DOUBLE_EQ(parsed.dataset.bytes_per_element,
                     original.dataset.bytes_per_element);
    EXPECT_DOUBLE_EQ(parsed.comm.alpha_write, original.comm.alpha_write);
    EXPECT_DOUBLE_EQ(parsed.comm.alpha_read, original.comm.alpha_read);
    EXPECT_DOUBLE_EQ(parsed.comp.ops_per_element,
                     original.comp.ops_per_element);
    EXPECT_EQ(parsed.comp.fclock_hz, original.comp.fclock_hz);
    EXPECT_DOUBLE_EQ(parsed.software.tsoft_sec, original.software.tsoft_sec);
    EXPECT_EQ(parsed.software.n_iterations, original.software.n_iterations);
    EXPECT_NO_THROW(parsed.validate());
  }
}

TEST(RatInputs, ParseRejectsMalformedText) {
  EXPECT_THROW(RatInputs::parse("no equals sign"), std::invalid_argument);
  EXPECT_THROW(RatInputs::parse("unknown_key = 1\nname = x\n"),
               std::invalid_argument);
  EXPECT_THROW(RatInputs::parse("elements_in = twelve\nname = x\n"),
               std::invalid_argument);
  EXPECT_THROW(RatInputs::parse("elements_in = 12\n"),  // missing name
               std::invalid_argument);
  EXPECT_THROW(RatInputs::parse("name = x\nelements_in = 1.5\n"),
               std::invalid_argument);
}

TEST(RatInputs, ParseSkipsCommentsAndBlankLines) {
  const RatInputs in = RatInputs::parse(
      "# worksheet\n\nname = demo\nelements_in = 8\n");
  EXPECT_EQ(in.name, "demo");
  EXPECT_EQ(in.dataset.elements_in, 8u);
}

// Returns the message of the ParseError thrown by parse(), failing the
// test if nothing (or something else) is thrown.
std::string parse_error_message(const std::string& text) {
  try {
    RatInputs::parse(text);
  } catch (const ParseError& e) {
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected ParseError, got: " << e.what();
    return "";
  }
  ADD_FAILURE() << "expected ParseError, parse succeeded for: " << text;
  return "";
}

TEST(RatInputs, ParseRejectsTrailingGarbageInClockList) {
  // `while (vs >> f)` used to silently drop "oops" and keep one clock.
  const std::string msg =
      parse_error_message("name = x\nfclock_hz = 75e6 oops\n");
  EXPECT_NE(msg.find("fclock_hz"), std::string::npos) << msg;
  EXPECT_NE(msg.find("oops"), std::string::npos) << msg;
}

TEST(RatInputs, ParseRejectsFullyNonNumericClockList) {
  // This used to parse to an *empty* list that only surfaced later as a
  // confusing "no candidate clock frequencies" validate() message.
  const std::string msg =
      parse_error_message("name = x\nfclock_hz = fast faster\n");
  EXPECT_NE(msg.find("fclock_hz"), std::string::npos) << msg;
}

TEST(RatInputs, ParseRejectsEmptyClockList) {
  const std::string msg = parse_error_message("name = x\nfclock_hz =\n");
  EXPECT_NE(msg.find("fclock_hz"), std::string::npos) << msg;
  EXPECT_NE(msg.find("empty clock list"), std::string::npos) << msg;
}

TEST(RatInputs, ParseRejectsDuplicateKeys) {
  // A repeated key used to silently overwrite the earlier value.
  const std::string msg = parse_error_message(
      "name = x\nelements_in = 1\nelements_in = 2\n");
  EXPECT_NE(msg.find("elements_in"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate"), std::string::npos) << msg;
  const std::string msg2 = parse_error_message("name = x\nname = y\n");
  EXPECT_NE(msg2.find("duplicate"), std::string::npos) << msg2;
}

TEST(RatInputs, ParseWrapsOverflowWithKeyContext) {
  // std::stod used to let std::out_of_range escape with no key name.
  try {
    RatInputs::parse("name = x\ntsoft_sec = 1e999\n");
    FAIL() << "expected ParseError";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("tsoft_sec"), std::string::npos);
  }
}

TEST(RatInputs, ParseRejectsNonFiniteValues) {
  // from_chars accepts "inf"/"nan" spellings; the worksheet grammar does
  // not (validate() would wave inf through its > 0 checks).
  EXPECT_NE(parse_error_message("name = x\nalpha_write = inf\n")
                .find("alpha_write"),
            std::string::npos);
  EXPECT_NE(
      parse_error_message("name = x\ntsoft_sec = nan\n").find("tsoft_sec"),
      std::string::npos);
}

TEST(RatInputs, ParseReportsLineAndColumn) {
  try {
    RatInputs::parse("# comment\nname = x\nalpha_read = bogus\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diagnostic().file, "<string>");
    EXPECT_EQ(e.diagnostic().line, 3u);
    EXPECT_EQ(e.diagnostic().column, 14u);  // "bogus" starts at column 14
    EXPECT_EQ(e.diagnostic().code, ParseErrorCode::kBadNumber);
    EXPECT_EQ(e.diagnostic().key, "alpha_read");
  }
}

TEST(RatInputs, ParseOriginAppearsInDiagnostics) {
  try {
    RatInputs::parse("name = x\nelements_in = -1\n", "deck.rat");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.diagnostic().file, "deck.rat");
    EXPECT_NE(std::string(e.what()).find("deck.rat:2:"), std::string::npos);
  }
}

TEST(RatInputs, ParseAcceptsCrlfAndIndentedComments) {
  const RatInputs in = RatInputs::parse(
      "  # indented comment\r\nname = demo\r\nelements_in = 8\r\n");
  EXPECT_EQ(in.name, "demo");
  EXPECT_EQ(in.dataset.elements_in, 8u);
}

TEST(RatInputs, ParseIsLocaleIndependent) {
  // Under a comma-decimal locale std::stod rejected "75.5"; from_chars
  // never consults the locale. Skip silently when no such locale is
  // installed in the container.
  const char* old = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = old ? old : "C";
  const bool have_locale =
      std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr ||
      std::setlocale(LC_NUMERIC, "fr_FR.UTF-8") != nullptr;
  const RatInputs in =
      RatInputs::parse("name = x\nbytes_per_element = 75.5\n");
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_DOUBLE_EQ(in.dataset.bytes_per_element, 75.5);
  if (!have_locale)
    GTEST_LOG_(INFO) << "no comma-decimal locale installed; "
                        "parsed under the default locale only";
}

TEST(RatInputs, EveryParseDiagnosticCodeIsReachable) {
  auto code_of = [](const std::string& text) {
    try {
      RatInputs::parse(text);
    } catch (const ParseError& e) {
      return e.diagnostic().code;
    }
    ADD_FAILURE() << "expected ParseError for: " << text;
    return ParseErrorCode::kInternalError;
  };
  EXPECT_EQ(code_of("no equals sign"), ParseErrorCode::kMissingEquals);
  EXPECT_EQ(code_of("name = x\nbogus_key = 1\n"),
            ParseErrorCode::kUnknownKey);
  EXPECT_EQ(code_of("name = x\nname = y\n"), ParseErrorCode::kDuplicateKey);
  EXPECT_EQ(code_of("name = x\nalpha_read = twelve\n"),
            ParseErrorCode::kBadNumber);
  EXPECT_EQ(code_of("name = x\nelements_in = 1.5\n"),
            ParseErrorCode::kBadCount);
  EXPECT_EQ(code_of("name = x\nfclock_hz = fast\n"),
            ParseErrorCode::kBadList);
  EXPECT_EQ(code_of("elements_in = 1\n"), ParseErrorCode::kMissingName);
}

TEST(RatInputs, TableRendersKeyRows) {
  const auto t = pdf1d_inputs().to_table();
  const std::string s = t.to_ascii();
  EXPECT_NE(s.find("Nelements, input"), std::string::npos);
  EXPECT_NE(s.find("512"), std::string::npos);
  EXPECT_NE(s.find("75/100/150"), std::string::npos);
  EXPECT_NE(s.find("0.578"), std::string::npos);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(mhz(150), 150e6);
  EXPECT_DOUBLE_EQ(mbps(1000), 1e9);
  EXPECT_DOUBLE_EQ(to_mhz(75e6), 75.0);
  EXPECT_DOUBLE_EQ(kib(2), 2048.0);
  EXPECT_DOUBLE_EQ(mib(1), 1048576.0);
}

}  // namespace
}  // namespace rat::core
