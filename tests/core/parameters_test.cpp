#include "core/parameters.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/units.hpp"

namespace rat::core {
namespace {

TEST(RatInputs, PaperWorksheetsValidate) {
  EXPECT_NO_THROW(pdf1d_inputs().validate());
  EXPECT_NO_THROW(pdf2d_inputs().validate());
  EXPECT_NO_THROW(md_inputs().validate());
}

TEST(RatInputs, Table2Values) {
  const RatInputs in = pdf1d_inputs();
  EXPECT_EQ(in.dataset.elements_in, 512u);
  EXPECT_EQ(in.dataset.elements_out, 1u);
  EXPECT_DOUBLE_EQ(in.dataset.bytes_per_element, 4.0);
  EXPECT_DOUBLE_EQ(in.comm.ideal_bw_bytes_per_sec, 1e9);
  EXPECT_DOUBLE_EQ(in.comm.alpha_write, 0.37);
  EXPECT_DOUBLE_EQ(in.comm.alpha_read, 0.16);
  EXPECT_DOUBLE_EQ(in.comp.ops_per_element, 768.0);
  EXPECT_DOUBLE_EQ(in.comp.throughput_ops_per_cycle, 20.0);
  EXPECT_DOUBLE_EQ(in.software.tsoft_sec, 0.578);
  EXPECT_EQ(in.software.n_iterations, 400u);
}

TEST(RatInputs, Table5Values) {
  const RatInputs in = pdf2d_inputs();
  EXPECT_EQ(in.dataset.elements_in, 1024u);
  EXPECT_EQ(in.dataset.elements_out, 65536u);
  EXPECT_DOUBLE_EQ(in.comp.ops_per_element, 393216.0);
  EXPECT_DOUBLE_EQ(in.comp.throughput_ops_per_cycle, 48.0);
  EXPECT_DOUBLE_EQ(in.software.tsoft_sec, 158.8);
}

TEST(RatInputs, Table8Values) {
  const RatInputs in = md_inputs();
  EXPECT_EQ(in.dataset.elements_in, 16384u);
  EXPECT_DOUBLE_EQ(in.dataset.bytes_per_element, 36.0);
  EXPECT_DOUBLE_EQ(in.comm.ideal_bw_bytes_per_sec, 5e8);
  EXPECT_DOUBLE_EQ(in.comm.alpha_write, 0.9);
  EXPECT_DOUBLE_EQ(in.comp.ops_per_element, 164000.0);
  EXPECT_DOUBLE_EQ(in.comp.throughput_ops_per_cycle, 50.0);
  EXPECT_EQ(in.software.n_iterations, 1u);
}

TEST(RatInputs, ValidationCatchesEachBadField) {
  auto expect_invalid = [](RatInputs in) {
    EXPECT_THROW(in.validate(), std::invalid_argument);
  };
  RatInputs base = pdf1d_inputs();

  RatInputs x = base; x.name.clear(); expect_invalid(x);
  x = base; x.dataset.elements_in = 0; expect_invalid(x);
  x = base; x.dataset.bytes_per_element = 0.0; expect_invalid(x);
  x = base; x.comm.ideal_bw_bytes_per_sec = -1.0; expect_invalid(x);
  x = base; x.comm.alpha_write = 0.0; expect_invalid(x);
  x = base; x.comm.alpha_write = 1.1; expect_invalid(x);
  x = base; x.comm.alpha_read = -0.5; expect_invalid(x);
  x = base; x.comp.ops_per_element = 0.0; expect_invalid(x);
  x = base; x.comp.throughput_ops_per_cycle = 0.0; expect_invalid(x);
  x = base; x.comp.fclock_hz.clear(); expect_invalid(x);
  x = base; x.comp.fclock_hz = {100e6, -5.0}; expect_invalid(x);
  x = base; x.software.tsoft_sec = 0.0; expect_invalid(x);
  x = base; x.software.n_iterations = 0; expect_invalid(x);
}

TEST(RatInputs, ZeroOutputElementsIsLegal) {
  RatInputs in = pdf1d_inputs();
  in.dataset.elements_out = 0;
  EXPECT_NO_THROW(in.validate());
}

TEST(RatInputs, SerializeParseRoundTrip) {
  for (const RatInputs& original :
       {pdf1d_inputs(), pdf2d_inputs(), md_inputs()}) {
    const RatInputs parsed = RatInputs::parse(original.serialize());
    EXPECT_EQ(parsed.name, original.name);
    EXPECT_EQ(parsed.dataset.elements_in, original.dataset.elements_in);
    EXPECT_EQ(parsed.dataset.elements_out, original.dataset.elements_out);
    EXPECT_DOUBLE_EQ(parsed.dataset.bytes_per_element,
                     original.dataset.bytes_per_element);
    EXPECT_DOUBLE_EQ(parsed.comm.alpha_write, original.comm.alpha_write);
    EXPECT_DOUBLE_EQ(parsed.comm.alpha_read, original.comm.alpha_read);
    EXPECT_DOUBLE_EQ(parsed.comp.ops_per_element,
                     original.comp.ops_per_element);
    EXPECT_EQ(parsed.comp.fclock_hz, original.comp.fclock_hz);
    EXPECT_DOUBLE_EQ(parsed.software.tsoft_sec, original.software.tsoft_sec);
    EXPECT_EQ(parsed.software.n_iterations, original.software.n_iterations);
    EXPECT_NO_THROW(parsed.validate());
  }
}

TEST(RatInputs, ParseRejectsMalformedText) {
  EXPECT_THROW(RatInputs::parse("no equals sign"), std::invalid_argument);
  EXPECT_THROW(RatInputs::parse("unknown_key = 1\nname = x\n"),
               std::invalid_argument);
  EXPECT_THROW(RatInputs::parse("elements_in = twelve\nname = x\n"),
               std::invalid_argument);
  EXPECT_THROW(RatInputs::parse("elements_in = 12\n"),  // missing name
               std::invalid_argument);
  EXPECT_THROW(RatInputs::parse("name = x\nelements_in = 1.5\n"),
               std::invalid_argument);
}

TEST(RatInputs, ParseSkipsCommentsAndBlankLines) {
  const RatInputs in = RatInputs::parse(
      "# worksheet\n\nname = demo\nelements_in = 8\n");
  EXPECT_EQ(in.name, "demo");
  EXPECT_EQ(in.dataset.elements_in, 8u);
}

TEST(RatInputs, TableRendersKeyRows) {
  const auto t = pdf1d_inputs().to_table();
  const std::string s = t.to_ascii();
  EXPECT_NE(s.find("Nelements, input"), std::string::npos);
  EXPECT_NE(s.find("512"), std::string::npos);
  EXPECT_NE(s.find("75/100/150"), std::string::npos);
  EXPECT_NE(s.find("0.578"), std::string::npos);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(mhz(150), 150e6);
  EXPECT_DOUBLE_EQ(mbps(1000), 1e9);
  EXPECT_DOUBLE_EQ(to_mhz(75e6), 75.0);
  EXPECT_DOUBLE_EQ(kib(2), 2048.0);
  EXPECT_DOUBLE_EQ(mib(1), 1048576.0);
}

}  // namespace
}  // namespace rat::core
