// Verifies Equations (1)-(11) against the paper's published predicted
// values (Tables 3, 6 and 9) and checks the model's structural properties.
#include "core/throughput.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/units.hpp"
#include "util/format.hpp"

namespace rat::core {
namespace {

using util::sci;

// ---------------------------------------------------------------- Table 3
TEST(Table3, Pdf1dPredictedColumns) {
  const RatInputs in = pdf1d_inputs();

  const ThroughputPrediction p75 = predict(in, mhz(75));
  EXPECT_EQ(sci(p75.t_comm_sec), "5.56E-6");
  EXPECT_EQ(sci(p75.t_comp_sec), "2.62E-4");
  EXPECT_EQ(sci(p75.t_rc_sb_sec), "1.07E-1");
  EXPECT_EQ(util::fixed(p75.speedup_sb, 1), "5.4");
  EXPECT_EQ(util::percent(p75.util_comm_sb), "2%");

  const ThroughputPrediction p100 = predict(in, mhz(100));
  EXPECT_EQ(sci(p100.t_comp_sec), "1.97E-4");
  EXPECT_EQ(sci(p100.t_rc_sb_sec), "8.09E-2");
  EXPECT_EQ(util::fixed(p100.speedup_sb, 1), "7.1");  // paper rounds to 7.2
  EXPECT_NEAR(p100.speedup_sb, 7.2, 0.1);
  EXPECT_EQ(util::percent(p100.util_comm_sb), "3%");

  const ThroughputPrediction p150 = predict(in, mhz(150));
  EXPECT_EQ(sci(p150.t_comm_sec), "5.56E-6");
  EXPECT_EQ(sci(p150.t_comp_sec), "1.31E-4");
  // Exact arithmetic gives 5.4653E-2; the paper's 5.46E-2 comes from
  // re-multiplying already-rounded per-iteration terms.
  EXPECT_NEAR(p150.t_rc_sb_sec, 5.46e-2, 0.01e-2);
  EXPECT_EQ(util::fixed(p150.speedup_sb, 1), "10.6");
  EXPECT_EQ(util::percent(p150.util_comm_sb), "4%");
}

TEST(Table3, WorkedExampleFromSection43) {
  // The paper walks through tcomp at 150 MHz: 393216 ops / 3E+9 ops/sec.
  const ThroughputPrediction p = predict(pdf1d_inputs(), mhz(150));
  EXPECT_NEAR(p.t_comp_sec, 393216.0 / 3e9, 1e-12);
  // And tRC,SB = 400 * (5.56E-6 + 1.31E-4) = 5.46E-2.
  EXPECT_NEAR(p.t_rc_sb_sec, 5.466e-2, 1e-4);
}

// ---------------------------------------------------------------- Table 6
TEST(Table6, Pdf2dPredictedColumns) {
  const RatInputs in = pdf2d_inputs();

  const ThroughputPrediction p75 = predict(in, mhz(75));
  EXPECT_EQ(sci(p75.t_comm_sec), "1.65E-3");
  EXPECT_EQ(sci(p75.t_comp_sec), "1.12E-1");
  EXPECT_EQ(sci(p75.t_rc_sb_sec), "4.54E1");
  EXPECT_EQ(util::fixed(p75.speedup_sb, 1), "3.5");
  EXPECT_EQ(util::percent(p75.util_comm_sb), "1%");

  const ThroughputPrediction p100 = predict(in, mhz(100));
  EXPECT_EQ(sci(p100.t_comp_sec), "8.39E-2");
  EXPECT_EQ(sci(p100.t_rc_sb_sec), "3.42E1");
  EXPECT_EQ(util::fixed(p100.speedup_sb, 1), "4.6");
  EXPECT_EQ(util::percent(p100.util_comm_sb), "2%");

  const ThroughputPrediction p150 = predict(in, mhz(150));
  EXPECT_EQ(sci(p150.t_comp_sec), "5.59E-2");
  EXPECT_EQ(sci(p150.t_rc_sb_sec), "2.30E1");
  EXPECT_EQ(util::fixed(p150.speedup_sb, 1), "6.9");
  EXPECT_EQ(util::percent(p150.util_comm_sb), "3%");
}

// ---------------------------------------------------------------- Table 9
TEST(Table9, MdPredictedColumns) {
  const RatInputs in = md_inputs();

  const ThroughputPrediction p75 = predict(in, mhz(75));
  EXPECT_EQ(sci(p75.t_comm_sec), "2.62E-3");
  EXPECT_EQ(sci(p75.t_comp_sec), "7.17E-1");
  EXPECT_EQ(sci(p75.t_rc_sb_sec), "7.19E-1");
  EXPECT_EQ(util::fixed(p75.speedup_sb, 1), "8.0");
  EXPECT_EQ(util::percent(p75.util_comm_sb, 1), "0.4%");

  const ThroughputPrediction p100 = predict(in, mhz(100));
  EXPECT_EQ(sci(p100.t_comp_sec), "5.37E-1");
  EXPECT_EQ(sci(p100.t_rc_sb_sec), "5.40E-1");
  EXPECT_EQ(util::fixed(p100.speedup_sb, 1), "10.7");

  const ThroughputPrediction p150 = predict(in, mhz(150));
  EXPECT_EQ(sci(p150.t_comp_sec), "3.58E-1");
  EXPECT_EQ(sci(p150.t_rc_sb_sec), "3.61E-1");
  EXPECT_EQ(util::fixed(p150.speedup_sb, 1), "16.0");
  EXPECT_EQ(util::percent(p150.util_comm_sb, 1), "0.7%");
  EXPECT_EQ(util::percent(p150.util_comp_sb, 1), "99.3%");
}

// ------------------------------------------------------------- structure
TEST(Throughput, CommIndependentOfClock) {
  const RatInputs in = pdf1d_inputs();
  EXPECT_DOUBLE_EQ(predict(in, mhz(75)).t_comm_sec,
                   predict(in, mhz(150)).t_comm_sec);
}

TEST(Throughput, CompInverselyProportionalToClock) {
  const RatInputs in = pdf1d_inputs();
  const double t75 = predict(in, mhz(75)).t_comp_sec;
  const double t150 = predict(in, mhz(150)).t_comp_sec;
  EXPECT_NEAR(t75, 2.0 * t150, 1e-12);
}

TEST(Throughput, DoubleBufferedNeverSlower) {
  for (const RatInputs& in : {pdf1d_inputs(), pdf2d_inputs(), md_inputs()}) {
    for (double f : in.comp.fclock_hz) {
      const auto p = predict(in, f);
      EXPECT_LE(p.t_rc_db_sec, p.t_rc_sb_sec);
      EXPECT_GE(p.speedup_db, p.speedup_sb);
    }
  }
}

TEST(Throughput, SingleBufferedUtilizationsSumToOne) {
  for (const RatInputs& in : {pdf1d_inputs(), pdf2d_inputs(), md_inputs()}) {
    const auto p = predict(in, mhz(100));
    EXPECT_NEAR(p.util_comm_sb + p.util_comp_sb, 1.0, 1e-12);
  }
}

TEST(Throughput, DoubleBufferedDominantUtilizationIsOne) {
  for (const RatInputs& in : {pdf1d_inputs(), pdf2d_inputs(), md_inputs()}) {
    const auto p = predict(in, mhz(100));
    EXPECT_NEAR(std::max(p.util_comm_db, p.util_comp_db), 1.0, 1e-12);
    EXPECT_LE(std::min(p.util_comm_db, p.util_comp_db), 1.0);
  }
}

TEST(Throughput, CommunicationBoundFlag) {
  RatInputs in = pdf1d_inputs();
  EXPECT_FALSE(predict(in, mhz(100)).communication_bound());
  // Starve the bus: tiny alpha makes communication dominate.
  in.comm.alpha_write = 0.001;
  in.comm.alpha_read = 0.001;
  EXPECT_TRUE(predict(in, mhz(100)).communication_bound());
}

TEST(Throughput, SpeedupScalesWithSoftwareBaseline) {
  RatInputs in = pdf1d_inputs();
  const double s1 = predict(in, mhz(100)).speedup_sb;
  in.software.tsoft_sec *= 2.0;
  EXPECT_NEAR(predict(in, mhz(100)).speedup_sb, 2.0 * s1, 1e-9);
}

TEST(Throughput, PredictAllMatchesPerClockPredictions) {
  const RatInputs in = md_inputs();
  const auto all = predict_all(in);
  ASSERT_EQ(all.size(), 3u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto single = predict(in, in.comp.fclock_hz[i]);
    EXPECT_DOUBLE_EQ(all[i].t_comp_sec, single.t_comp_sec);
    EXPECT_DOUBLE_EQ(all[i].speedup_sb, single.speedup_sb);
  }
}

TEST(Throughput, RejectsInvalidInputs) {
  EXPECT_THROW(predict(pdf1d_inputs(), 0.0), std::invalid_argument);
  RatInputs bad = pdf1d_inputs();
  bad.comm.alpha_write = 2.0;
  EXPECT_THROW(predict(bad, mhz(100)), std::invalid_argument);
  EXPECT_THROW(predict_all(bad), std::invalid_argument);
}

// Monotonicity sweep: speedup must rise monotonically with throughput_proc
// and with each alpha, at any clock.
class ThroughputMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(ThroughputMonotonic, SpeedupIncreasesWithProcRate) {
  RatInputs in = pdf2d_inputs();
  const double f = GetParam();
  double prev = 0.0;
  for (double tp : {1.0, 2.0, 8.0, 24.0, 48.0, 96.0, 1000.0}) {
    in.comp.throughput_ops_per_cycle = tp;
    const double s = predict(in, f).speedup_sb;
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST_P(ThroughputMonotonic, SpeedupSaturatesAtCommunicationBound) {
  RatInputs in = pdf2d_inputs();
  const double f = GetParam();
  in.comp.throughput_ops_per_cycle = 1e12;  // computation free
  const auto p = predict(in, f);
  const double bound = in.software.tsoft_sec /
                       (static_cast<double>(in.software.n_iterations) *
                        p.t_comm_sec);
  EXPECT_NEAR(p.speedup_sb, bound, 1e-6 * bound);
}

INSTANTIATE_TEST_SUITE_P(Clocks, ThroughputMonotonic,
                         ::testing::Values(mhz(75), mhz(100), mhz(150),
                                           mhz(250)));

}  // namespace
}  // namespace rat::core
