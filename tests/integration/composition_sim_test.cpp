// Randomized cross-validation: the analytic composition model
// (core::predict_composite, sequential mode) against the staged executor
// on an ideal alpha-scaled bus. The two are independent implementations of
// the same semantics; they must agree to floating-point accuracy for any
// stage structure.
#include <gtest/gtest.h>

#include <cmath>

#include "core/composition.hpp"
#include "core/units.hpp"
#include "rcsim/staged_executor.hpp"
#include "util/rng.hpp"

namespace rat {
namespace {

struct RandomComposite {
  std::vector<core::StageSpec> stages;
  rcsim::StagedWorkload workload;
  rcsim::Link link;
  double fclock;
};

RandomComposite make_case(std::uint64_t seed) {
  util::Rng rng(seed);
  const double bw = rng.uniform(5e8, 2e9);
  const double alpha_w = rng.uniform(0.2, 1.0);
  const double alpha_r = rng.uniform(0.2, 1.0);
  const double fclock = rng.uniform(50e6, 250e6);
  const std::size_t n_stages = 1 + rng.uniform_index(4);
  const std::size_t n_iter = 1 + rng.uniform_index(30);

  RandomComposite c{
      {},
      {},
      rcsim::Link("analytic", bw,
                  rcsim::LinkDirection{0.0, alpha_w * bw, 0.0},
                  rcsim::LinkDirection{0.0, alpha_r * bw, 0.0}),
      fclock};
  c.workload.n_iterations = n_iter;
  for (std::size_t s = 0; s < n_stages; ++s) {
    core::StageSpec spec;
    spec.inputs.name = "stage" + std::to_string(s);
    spec.inputs.dataset = {64 + rng.uniform_index(4096),
                           rng.uniform_index(4096), 4.0};
    spec.inputs.comm = {bw, alpha_w, alpha_r};
    spec.inputs.comp = {rng.uniform(10.0, 5000.0), rng.uniform(1.0, 64.0),
                        {fclock}};
    spec.inputs.software = {rng.uniform(0.1, 10.0), n_iter};
    spec.fclock_hz = fclock;
    // Hand off on-chip with 50% probability (never on the last stage).
    spec.output_stays_on_chip =
        s + 1 < n_stages && rng.uniform() < 0.5;
    c.stages.push_back(spec);
  }
  bool received_on_chip = false;
  for (const auto& spec : c.stages) {
    rcsim::StageWorkload sw;
    sw.input_bytes =
        received_on_chip
            ? 0
            : static_cast<std::size_t>(
                  static_cast<double>(spec.inputs.dataset.elements_in) *
                  spec.inputs.dataset.bytes_per_element);
    sw.output_bytes = spec.output_stays_on_chip
                          ? 0
                          : static_cast<std::size_t>(
                                static_cast<double>(
                                    spec.inputs.dataset.elements_out) *
                                spec.inputs.dataset.bytes_per_element);
    sw.cycles = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(spec.inputs.dataset.elements_in) *
        spec.inputs.comp.ops_per_element /
        spec.inputs.comp.throughput_ops_per_cycle));
    sw.handoff_on_chip = spec.output_stays_on_chip;
    received_on_chip = spec.output_stays_on_chip;
    c.workload.stages.push_back(sw);
  }
  return c;
}

class CompositionSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompositionSim, AnalyticMatchesSimulated) {
  const RandomComposite c = make_case(GetParam());
  const auto analytic = core::predict_composite(
      c.stages, core::CompositionMode::kSequential);
  rcsim::ExecutionConfig cfg;
  cfg.fclock_hz = c.fclock;
  const auto sim = rcsim::execute_staged(c.workload, c.link, cfg);
  // Cycle rounding introduces up to one clock period per stage-iteration.
  const double slack =
      static_cast<double>(c.workload.stages.size() *
                          c.workload.n_iterations) /
          c.fclock +
      1e-9 * analytic.t_total_sec;
  EXPECT_NEAR(sim.t_total_sec, analytic.t_total_sec, slack)
      << "seed " << GetParam();
  EXPECT_TRUE(sim.timeline.lanes_consistent());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositionSim,
                         ::testing::Range<std::uint64_t>(1000, 1030));

}  // namespace
}  // namespace rat
