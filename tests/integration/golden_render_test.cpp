// Golden-output tests: the exact rendered text of the paper-facing
// artifacts. Any formatting regression in the worksheet, Gantt or table
// paths shows up here as a readable diff.
#include <gtest/gtest.h>

#include "core/units.hpp"
#include "core/worksheet.hpp"
#include "rcsim/executor.hpp"

namespace rat {
namespace {

TEST(Golden, Table3PerformanceTable) {
  const auto preds = core::predict_all(core::pdf1d_inputs());
  core::Measured actual;
  actual.fclock_hz = core::mhz(150);
  actual.t_comm_sec = 2.5e-5;
  actual.t_comp_sec = 1.39e-4;
  actual.t_rc_sec = 7.45e-2;
  actual.speedup = 7.8;
  actual.util_comm = 0.15;
  actual.util_comp = 0.85;
  const auto t = core::performance_table(
      preds, {actual}, core::WorksheetMode::kSingleBuffered);
  const std::string expected =
      "+--------------+-----------+-----------+-----------+---------+\n"
      "| quantity     | Predicted | Predicted | Predicted | Actual  |\n"
      "+--------------+-----------+-----------+-----------+---------+\n"
      "| fclk (MHz)   | 75        | 100       | 150       | 150     |\n"
      "| tcomm (sec)  | 5.56E-6   | 5.56E-6   | 5.56E-6   | 2.50E-5 |\n"
      "| tcomp (sec)  | 2.62E-4   | 1.97E-4   | 1.31E-4   | 1.39E-4 |\n"
      "| utilcomm_SB  | 2%        | 3%        | 4%        | 15%     |\n"
      "| utilcomp_SB  | 98%       | 97%       | 96%       | 85%     |\n"
      "| tRC_SB (sec) | 1.07E-1   | 8.09E-2   | 5.47E-2   | 7.45E-2 |\n"
      "| speedup      | 5.4       | 7.1       | 10.6      | 7.8     |\n"
      "+--------------+-----------+-----------+-----------+---------+\n";
  EXPECT_EQ(t.to_ascii(), expected);
}

TEST(Golden, SingleBufferedGantt) {
  // Three iterations of a perfectly regular workload render as the
  // paper's Fig. 2 top row: R C W, strictly serial.
  rcsim::Workload w;
  w.n_iterations = 3;
  w.io = [](std::size_t) {
    rcsim::IterationIo io;
    io.input_chunks_bytes = {30000};
    io.output_chunks_bytes = {30000};
    return io;
  };
  w.cycles = [](std::size_t) { return std::uint64_t{6000}; };
  const rcsim::Link link("g", 1e9, rcsim::LinkDirection{0.0, 1e9, 0.0},
                         rcsim::LinkDirection{0.0, 1e9, 0.0});
  rcsim::ExecutionConfig cfg;
  cfg.fclock_hz = 100e6;
  const auto r = rcsim::execute(w, link, cfg);
  const std::string expected =
      "Comm |R1RRRRRRRR                    W1WWWWWWWWR2RRRRRRRR"
      "                    W2WWWWWWWWR3RRRRRRRR"
      "                    W3WWWWWWWW|\n"
      "Comp |          C1CCCCCCCCCCCCCCCCCC                    "
      "C2CCCCCCCCCCCCCCCCCC                    "
      "C3CCCCCCCCCCCCCCCCCC          |\n";
  const std::string gantt = r.timeline.to_gantt(120);
  EXPECT_EQ(gantt.substr(0, expected.size()), expected);
}

}  // namespace
}  // namespace rat
