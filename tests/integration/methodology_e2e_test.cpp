// The Figure-1 methodology driven by the *real* application designs:
// worksheets from the apps, precision kernels from the fixed-point
// estimators, resource demands from the design models.
#include <gtest/gtest.h>

#include "apps/md.hpp"
#include "apps/pdf1d.hpp"
#include "apps/pdf1d_gaussian.hpp"
#include "apps/pdf2d.hpp"
#include "apps/workload.hpp"
#include "core/methodology.hpp"
#include "core/units.hpp"

namespace rat {
namespace {

using core::mhz;

core::DesignCandidate pdf1d_candidate(std::size_t n_samples = 4096) {
  const apps::Pdf1dDesign design;
  core::DesignCandidate c;
  c.inputs = design.rat_inputs();
  c.decision_clock_hz = mhz(100);
  const auto samples =
      apps::gaussian_mixture_1d(n_samples, apps::default_mixture_1d(), 301);
  c.precision_reference =
      apps::estimate_pdf1d_quadratic(samples, design.config());
  c.precision_kernel = [design, samples](fx::Format fmt) {
    return design.estimate_with_format(samples, fmt);
  };
  c.resources = design.resource_items();
  return c;
}

TEST(MethodologyE2e, Pdf1dProceedsAtFiveXRequirement) {
  core::Requirements req;
  req.min_speedup = 5.0;  // break-even-ish goal; 100 MHz predicts 7.1x
  req.precision = core::PrecisionRequirements{2.0, 10, 24, 0};
  const auto out = core::run_methodology({pdf1d_candidate()}, req,
                                         rcsim::virtex4_lx100());
  EXPECT_TRUE(out.proceed) << out.render_trace();
}

TEST(MethodologyE2e, Pdf1dPrecisionTestSelectsAtMost18Bits) {
  // The paper chose 18-bit fixed point at a ~2% error budget and notes
  // "slightly smaller bitwidths would have also possessed reasonable
  // error constraints".
  core::Requirements req;
  req.min_speedup = 5.0;
  req.precision = core::PrecisionRequirements{2.0, 10, 24, 0};
  const auto out = core::run_methodology({pdf1d_candidate()}, req,
                                         rcsim::virtex4_lx100());
  ASSERT_TRUE(out.proceed);
  // Find the precision trace entry and parse the accepted format.
  bool saw_precision = false;
  for (const auto& e : out.trace) {
    if (e.step == core::Step::kPrecisionTest) {
      saw_precision = true;
      EXPECT_TRUE(e.passed);
      EXPECT_NE(e.detail.find("Q0."), std::string::npos) << e.detail;
    }
  }
  EXPECT_TRUE(saw_precision);
}

TEST(MethodologyE2e, FiftyXGoalRejectsPdf1d) {
  // The paper's "middle management" bar (50-100x) is far beyond this
  // design: the methodology must reject on throughput.
  core::Requirements req;
  req.min_speedup = 50.0;
  const auto out = core::run_methodology({pdf1d_candidate()}, req,
                                         rcsim::virtex4_lx100());
  EXPECT_FALSE(out.proceed);
  EXPECT_EQ(out.last_reject, core::RejectReason::kInsufficientThroughput);
}

TEST(MethodologyE2e, IterativeRedesignRecoversThroughput) {
  // Candidate 1: a deliberately under-parallelized worksheet (2 ops/cycle)
  // fails; candidate 2 (the real design) passes — the Fig. 1 NEW-DESIGN
  // loop in action.
  core::DesignCandidate weak = pdf1d_candidate();
  weak.inputs.name = "1-D PDF, single pipeline";
  weak.inputs.comp.throughput_ops_per_cycle = 2.0;
  core::Requirements req;
  req.min_speedup = 5.0;
  req.precision = core::PrecisionRequirements{2.0, 10, 24, 0};
  const auto out = core::run_methodology({weak, pdf1d_candidate()}, req,
                                         rcsim::virtex4_lx100());
  EXPECT_TRUE(out.proceed);
  EXPECT_EQ(*out.accepted_index, 1u);
  EXPECT_EQ(out.predictions.size(), 2u);
}

TEST(MethodologyE2e, MdProceedsWithoutPrecisionTest) {
  // The MD design kept single-precision floats in Impulse C: the paper's
  // flow skips the fixed-point search entirely.
  core::DesignCandidate c;
  c.inputs = core::md_inputs();
  c.decision_clock_hz = mhz(100);
  c.resources = apps::MdDesign().resource_items();
  core::Requirements req;
  req.min_speedup = 10.0;  // predicted 10.7 at 100 MHz
  const auto out =
      core::run_methodology({c}, req, rcsim::stratix2_ep2s180());
  EXPECT_TRUE(out.proceed) << out.render_trace();
  // Trace: throughput + resource + PROCEED, no precision entry.
  ASSERT_EQ(out.trace.size(), 3u);
  EXPECT_EQ(out.trace[1].step, core::Step::kResourceTest);
}

TEST(MethodologyE2e, Pdf2dRejectedAtTenXAcceptedAtFive) {
  core::DesignCandidate c;
  c.inputs = core::pdf2d_inputs();
  c.decision_clock_hz = mhz(150);
  c.resources = apps::Pdf2dDesign().resource_items();
  core::Requirements strict;
  strict.min_speedup = 10.0;  // predicted 6.9: fails
  EXPECT_FALSE(
      core::run_methodology({c}, strict, rcsim::virtex4_lx100()).proceed);
  core::Requirements relaxed;
  relaxed.min_speedup = 5.0;
  EXPECT_TRUE(
      core::run_methodology({c}, relaxed, rcsim::virtex4_lx100()).proceed);
}

TEST(MethodologyE2e, GaussianVariantLosesToQuadraticOnThroughput) {
  // Against a 7x goal, the iteration rejects the Gaussian-LUT variant
  // (predicted ~3.6x) and settles on the shipped quadratic design — the
  // documented design history, replayed by the state machine.
  const apps::Pdf1dGaussianDesign lut;
  core::DesignCandidate lut_cand;
  lut_cand.inputs = lut.rat_inputs();
  lut_cand.decision_clock_hz = mhz(150);
  lut_cand.resources = lut.resource_items();

  core::DesignCandidate quad = pdf1d_candidate();
  quad.decision_clock_hz = mhz(150);

  core::Requirements req;
  req.min_speedup = 7.0;
  req.precision = core::PrecisionRequirements{2.0, 10, 24, 0};
  // The LUT candidate needs a precision kernel too (it would pass, but
  // throughput rejects it first and the kernel is never invoked).
  lut_cand.precision_kernel = quad.precision_kernel;
  lut_cand.precision_reference = quad.precision_reference;

  const auto out = core::run_methodology({lut_cand, quad}, req,
                                         rcsim::virtex4_lx100());
  EXPECT_TRUE(out.proceed) << out.render_trace();
  EXPECT_EQ(*out.accepted_index, 1u);
  EXPECT_EQ(out.trace[0].step, core::Step::kThroughputTest);
  EXPECT_FALSE(out.trace[0].passed);
}

TEST(MethodologyE2e, WrongDeviceRejectsOnResources) {
  // Shrink the device until the design cannot fit.
  rcsim::Device tiny = rcsim::virtex4_lx100();
  tiny.inventory.dsp = 4;  // fewer than the 8 MACs the design needs
  core::Requirements req;
  req.min_speedup = 5.0;
  const auto out = core::run_methodology({pdf1d_candidate()}, req, tiny);
  EXPECT_FALSE(out.proceed);
  EXPECT_EQ(out.last_reject, core::RejectReason::kInsufficientResources);
}

}  // namespace
}  // namespace rat
