// End-to-end reproduction of the paper's three case studies: RAT worksheet
// prediction (Tables 3/6/9 predicted columns) against the simulated
// platform "actual" columns, asserting the error *structure* the paper
// reports rather than exact hardware numbers. See EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/hw_run.hpp"
#include "apps/md.hpp"
#include "apps/pdf1d.hpp"
#include "apps/pdf2d.hpp"
#include "apps/workload.hpp"
#include "core/throughput.hpp"
#include "core/units.hpp"
#include "core/validation.hpp"
#include "rcsim/platform.hpp"

namespace rat {
namespace {

using core::mhz;

apps::SimulatedRun run_pdf1d(double fclock,
                             rcsim::Buffering buf = rcsim::Buffering::kSingle) {
  const apps::Pdf1dDesign d;
  const auto in = d.rat_inputs();
  rcsim::Workload w;
  w.n_iterations = in.software.n_iterations;
  w.io = [d, n = w.n_iterations](std::size_t i) { return d.io(i, n); };
  w.cycles = [c = d.cycles_per_iteration()](std::size_t) { return c; };
  return apps::simulate_on_platform(w, rcsim::nallatech_h101(), fclock, buf,
                                    in.software.tsoft_sec);
}

apps::SimulatedRun run_pdf2d(double fclock) {
  const apps::Pdf2dDesign d;
  const auto in = d.rat_inputs();
  rcsim::Workload w;
  w.n_iterations = in.software.n_iterations;
  w.io = [d, n = w.n_iterations](std::size_t i) { return d.io(i, n); };
  w.cycles = [c = d.cycles_per_iteration()](std::size_t) { return c; };
  return apps::simulate_on_platform(w, rcsim::nallatech_h101(), fclock,
                                    rcsim::Buffering::kSingle,
                                    in.software.tsoft_sec);
}

apps::SimulatedRun run_md(double fclock) {
  const apps::MdDesign d;
  const auto in = d.rat_inputs();
  static const auto sys = apps::particle_box(16384, 1.0, 1.0, 123);
  static const std::uint64_t cycles = d.cycles_for(sys);  // data dependent
  rcsim::Workload w;
  w.n_iterations = 1;
  w.io = [d](std::size_t) { return d.io(16384); };
  w.cycles = [](std::size_t) { return cycles; };
  return apps::simulate_on_platform(w, rcsim::xd1000(), fclock,
                                    rcsim::Buffering::kSingle,
                                    in.software.tsoft_sec);
}

// ----------------------------------------------------------- 1-D PDF (§4)
TEST(CaseStudyPdf1d, Table3ActualColumnShape) {
  const auto run = run_pdf1d(mhz(150));
  const core::Measured& m = run.measured;
  // Paper actual column at 150 MHz: tcomm 2.5E-5, tcomp 1.39E-4,
  // tRC 7.45E-2, speedup 7.8, utilcomm 15%.
  EXPECT_NEAR(m.t_comm_sec, 2.5e-5, 0.5e-5);
  EXPECT_NEAR(m.t_comp_sec, 1.39e-4, 0.03e-4);
  EXPECT_NEAR(m.t_rc_sec, 7.45e-2, 0.15e-2);
  EXPECT_NEAR(m.speedup, 7.8, 0.2);
  EXPECT_NEAR(m.util_comm, 0.15, 0.03);
  EXPECT_TRUE(run.exec.timeline.lanes_consistent());
}

TEST(CaseStudyPdf1d, ErrorStructureMatchesSection43) {
  const auto pred = core::predict(core::pdf1d_inputs(), mhz(150));
  const auto m = run_pdf1d(mhz(150)).measured;
  const auto rep = core::validate(pred, m);
  // "The discrepancy in speed in this case is due to the inaccuracies in
  // the tcomm estimation": comm badly under-predicted, comp within a few %.
  EXPECT_GT(rep.comm_error_percent, 200.0);
  EXPECT_LT(std::fabs(rep.comp_error_percent), 10.0);
  EXPECT_TRUE(rep.within_order_of_magnitude());
  // Speedup over-predicted (10.6 predicted vs ~7.8 actual).
  EXPECT_LT(rep.speedup_error_percent, -15.0);
}

TEST(CaseStudyPdf1d, SpeedupGrowsWithClock) {
  double prev = 0.0;
  for (double f : {mhz(75), mhz(100), mhz(150)}) {
    const double s = run_pdf1d(f).measured.speedup;
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_GT(prev, 5.0);  // still a solid win at 150 MHz
}

TEST(CaseStudyPdf1d, DoubleBufferingMasksCommunicationError) {
  // Paper §4.3: "Had the communication been double buffered, the
  // inaccuracies in the communication time could have been masked behind
  // the more stable computation time for a more accurate (and higher)
  // speedup."
  const auto sb = run_pdf1d(mhz(150), rcsim::Buffering::kSingle);
  const auto db = run_pdf1d(mhz(150), rcsim::Buffering::kDouble);
  EXPECT_GT(db.measured.speedup, sb.measured.speedup);
  const auto pred = core::predict(core::pdf1d_inputs(), mhz(150));
  const double sb_err =
      std::fabs(sb.measured.speedup - pred.speedup_sb) / pred.speedup_sb;
  const double db_err =
      std::fabs(db.measured.speedup - pred.speedup_db) / pred.speedup_db;
  EXPECT_LT(db_err, sb_err);
}

// ----------------------------------------------------------- 2-D PDF (§5.1)
TEST(CaseStudyPdf2d, CommunicationSixTimesLargerThanPredicted) {
  const auto pred = core::predict(core::pdf2d_inputs(), mhz(150));
  const auto m = run_pdf2d(mhz(150)).measured;
  const double ratio = m.t_comm_sec / pred.t_comm_sec;
  EXPECT_NEAR(ratio, 6.0, 0.5);          // "communication six times larger"
  EXPECT_NEAR(m.util_comm, 0.19, 0.02);  // "19% of the total execution"
}

TEST(CaseStudyPdf2d, ConservativeComputationBalancesCommunication) {
  const auto pred = core::predict(core::pdf2d_inputs(), mhz(150));
  const auto m = run_pdf2d(mhz(150)).measured;
  // Computation over-predicted...
  EXPECT_LT(m.t_comp_sec, pred.t_comp_sec);
  // ...so overall speedup lands close to (slightly above) the prediction.
  EXPECT_NEAR(m.speedup, pred.speedup_sb, 1.0);
  EXPECT_GT(m.speedup, pred.speedup_sb);
}

TEST(CaseStudyPdf2d, LowerSpeedupThan1dDespiteMoreParallelism) {
  // Paper: increased communication demands of the higher order reduced
  // the speedup relative to the 1-D design.
  const double s1 = run_pdf1d(mhz(150)).measured.speedup;
  const double s2 = run_pdf2d(mhz(150)).measured.speedup;
  EXPECT_LT(s2, s1);
}

// ------------------------------------------------------------- MD (§5.2)
TEST(CaseStudyMd, Table9ActualColumnShape) {
  const auto m = run_md(mhz(100)).measured;
  // Paper actual at 100 MHz: tcomm 1.39E-3, tcomp 8.79E-1, tRC 8.80E-1,
  // speedup 6.6.
  EXPECT_NEAR(m.t_comm_sec, 1.39e-3, 0.1e-3);
  EXPECT_NEAR(m.t_comp_sec, 8.79e-1, 0.5e-1);
  EXPECT_NEAR(m.t_rc_sec, 8.80e-1, 0.5e-1);
  EXPECT_NEAR(m.speedup, 6.6, 0.4);
}

TEST(CaseStudyMd, PredictionsSameOrderOfMagnitude) {
  const auto pred = core::predict(core::md_inputs(), mhz(100));
  const auto m = run_md(mhz(100)).measured;
  const auto rep = core::validate(pred, m);
  // "The actual communication times is the same order of magnitude as the
  // predicted value... Computation dominated the overall RC execution time
  // and the actual time was also the same order of magnitude."
  EXPECT_TRUE(rep.within_order_of_magnitude());
  // Communication was *over*-predicted, computation *under*-predicted.
  EXPECT_LT(rep.comm_error_percent, 0.0);
  EXPECT_GT(rep.comp_error_percent, 20.0);
}

TEST(CaseStudyMd, ComputationUtterlyDominates) {
  const auto m = run_md(mhz(100)).measured;
  EXPECT_GT(m.util_comp, 0.99);
  EXPECT_LT(m.util_comm, 0.01);
}

TEST(CaseStudyMd, MultiTimestepRunWithDataDependentCycles) {
  // A production MD run executes many timesteps; the per-iteration fabric
  // cycles move with the evolving particle locality. The executor's
  // per-iteration cycle callback carries that through, and the simulated
  // total equals the sum of the per-step times plus I/O.
  const std::size_t n = 512;
  const std::size_t steps = 5;
  apps::MdConfig cfg;
  cfg.dt = 2e-6;
  const apps::MdDesign design(cfg);

  auto sys = apps::particle_box(n, 1.0, 0.5, 909);
  apps::compute_forces(sys, cfg);
  std::vector<std::uint64_t> per_step_cycles;
  for (std::size_t s = 0; s < steps; ++s) {
    const auto res = apps::velocity_verlet_step(sys, cfg);
    per_step_cycles.push_back(
        design.cycles_from_counts(res.interactions, n));
  }

  rcsim::Workload w;
  w.n_iterations = steps;
  w.io = [&](std::size_t) { return design.io(n); };
  w.cycles = [&](std::size_t i) { return per_step_cycles[i]; };
  const auto run = apps::simulate_on_platform(
      w, rcsim::xd1000(), mhz(100), rcsim::Buffering::kSingle, 1.0);

  std::uint64_t total_cycles = 0;
  for (auto c : per_step_cycles) total_cycles += c;
  EXPECT_NEAR(run.exec.t_comp_sec,
              static_cast<double>(total_cycles) / mhz(100),
              1e-12 * run.exec.t_comp_sec);
  // Every step produced a distinct compute event with its own duration.
  std::size_t computes = 0;
  for (const auto& e : run.exec.timeline.events())
    if (e.kind == rcsim::EventKind::kCompute) ++computes;
  EXPECT_EQ(computes, steps);
  EXPECT_TRUE(run.exec.timeline.lanes_consistent());
}

}  // namespace
}  // namespace rat
