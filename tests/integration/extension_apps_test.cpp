// End-to-end consistency for the extension case studies (string matching,
// block sorting): functional correctness of the hardware models against
// software baselines at scale, and agreement between the RAT worksheet
// prediction and the simulated platform within the modeled overheads.
#include <gtest/gtest.h>

#include "apps/hw_run.hpp"
#include "apps/sorting.hpp"
#include "apps/strmatch.hpp"
#include "core/throughput.hpp"
#include "core/units.hpp"
#include "rcsim/microbench.hpp"
#include "rcsim/platform.hpp"

namespace rat {
namespace {

using core::mhz;

TEST(ExtensionStrMatch, PredictVsSimulateComputeSide) {
  apps::StrMatchConfig cfg;
  cfg.patterns = {"fpga", "throughput"};
  cfg.chunk = 65536;
  const apps::StrMatchDesign design(cfg);
  const auto platform = rcsim::nallatech_h101();
  rcsim::Microbench mb(platform.link);
  const auto alphas = mb.derive_alphas(cfg.chunk);
  const auto in = design.rat_inputs(
      1.0, 64,
      core::CommunicationParams{platform.link.documented_bw(),
                                alphas.alpha_write, alphas.alpha_read});

  rcsim::Workload w;
  w.n_iterations = 64;
  w.io = [&](std::size_t) { return design.io(); };
  w.cycles = [&](std::size_t) { return design.cycles_per_iteration(); };
  const auto run = apps::simulate_on_platform(
      w, platform, mhz(150), rcsim::Buffering::kSingle, 1.0);

  const auto pred = core::predict(in, mhz(150));
  // Computation: the only unmodeled term is the drain (longest pattern).
  EXPECT_NEAR(run.measured.t_comp_sec, pred.t_comp_sec,
              0.01 * pred.t_comp_sec);
  // Communication: under-predicted by the usual in-app per-transfer
  // overheads, but same order.
  EXPECT_GT(run.measured.t_comm_sec, pred.t_comm_sec);
  EXPECT_LT(run.measured.t_comm_sec, 10.0 * pred.t_comm_sec);
}

TEST(ExtensionStrMatch, SystolicModelAtScale) {
  apps::StrMatchConfig cfg;
  cfg.patterns = {"abab", "bbbb", "abc"};
  cfg.chunk = 4096;
  const apps::StrMatchDesign design(cfg);
  const auto text = apps::random_text(200000, cfg, 0.01, 777, 'a', 'c');
  EXPECT_EQ(design.count_matches(text),
            apps::count_matches_shift_or(text, cfg));
}

TEST(ExtensionSorting, HybridSortAtScale) {
  apps::SortConfig cfg;
  cfg.block = 1024;
  cfg.comparators = 64;
  const auto keys = apps::random_keys(1 << 17, 888);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(apps::hybrid_sort(keys, cfg), expected);
}

TEST(ExtensionSorting, WorksheetCommBoundVerdictHoldsInSimulation) {
  // The sort worksheet predicts a communication-bound design (util_comm
  // ~100% DB): the simulated platform must agree, and double buffering
  // must largely hide the (small) compute.
  apps::SortConfig cfg;
  cfg.block = 1024;
  cfg.comparators = 64;
  const apps::SortDesign design(cfg);
  const auto platform = rcsim::nallatech_h101();
  rcsim::Microbench mb(platform.link);
  const auto alphas = mb.derive_alphas(cfg.block * 4);
  const auto in = design.rat_inputs(
      2.0, 256,
      core::CommunicationParams{platform.link.documented_bw(),
                                alphas.alpha_write, alphas.alpha_read});
  const auto pred = core::predict(in, mhz(150));
  EXPECT_TRUE(pred.communication_bound());

  rcsim::Workload w;
  w.n_iterations = 256;
  w.io = [&](std::size_t) { return design.io(); };
  w.cycles = [&](std::size_t) { return design.cycles_per_iteration(); };
  const auto run = apps::simulate_on_platform(
      w, platform, mhz(150), rcsim::Buffering::kDouble, 2.0);
  EXPECT_GT(run.measured.t_comm_sec, run.measured.t_comp_sec);
  // Bus saturated: makespan ~ comm busy time (+ tail).
  EXPECT_NEAR(run.exec.t_total_sec,
              run.exec.t_comm_sec + run.exec.t_sync_sec,
              0.05 * run.exec.t_total_sec);
}

}  // namespace
}  // namespace rat
