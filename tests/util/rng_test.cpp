#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/stats.hpp"

namespace rat::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRangeAndValidation) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

}  // namespace
}  // namespace rat::util
