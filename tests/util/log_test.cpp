#include "util/log.hpp"

#include <gtest/gtest.h>

namespace rat::util {
namespace {

/// Restores the global log level around each test.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LogTest, DefaultLevelIsInfo) {
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST_F(LogTest, SetAndGetRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LogTest, EmitBelowThresholdIsSilent) {
  set_log_level(LogLevel::kError);
  // Captures stderr around suppressed and emitted messages.
  testing::internal::CaptureStderr();
  log_debug("invisible ", 1);
  log_info("invisible ", 2);
  log_warn("invisible ", 3);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

  testing::internal::CaptureStderr();
  log_error("visible ", 42);
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[error] visible 42"), std::string::npos);
}

TEST_F(LogTest, ConcatenatesHeterogeneousArguments) {
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  log_info("x=", 1.5, " n=", 7, " s=", std::string("ok"));
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[info] x=1.5 n=7 s=ok"), std::string::npos);
}

TEST_F(LogTest, LevelNamesInPrefix) {
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  log_debug("d");
  log_warn("w");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[debug] d"), std::string::npos);
  EXPECT_NE(out.find("[warn] w"), std::string::npos);
}

}  // namespace
}  // namespace rat::util
