#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace rat::util {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const Cli cli = make({"--clock=150", "--verbose", "positional"});
  EXPECT_EQ(cli.program(), "prog");
  EXPECT_TRUE(cli.has("clock"));
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get("clock").value(), "150");
  EXPECT_EQ(cli.get("verbose").value(), "true");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, TypedAccessors) {
  const Cli cli = make({"--f=1.5", "--n=42", "--flag=false"});
  EXPECT_DOUBLE_EQ(cli.get_double("f", 0.0), 1.5);
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_FALSE(cli.get_bool("flag", true));
  // Fallbacks when absent.
  EXPECT_DOUBLE_EQ(cli.get_double("absent", 2.5), 2.5);
  EXPECT_EQ(cli.get_int("absent", 7), 7);
  EXPECT_TRUE(cli.get_bool("absent", true));
}

TEST(Cli, TypedAccessorErrors) {
  const Cli cli = make({"--f=abc", "--n=1.5", "--b=maybe"});
  EXPECT_THROW(cli.get_double("f", 0.0), std::invalid_argument);
  EXPECT_THROW(cli.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_bool("b", false), std::invalid_argument);
}

TEST(Cli, BooleanSpellings) {
  const Cli cli = make({"--a=1", "--b=yes", "--c=0", "--d=no"});
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_TRUE(cli.get_bool("b", false));
  EXPECT_FALSE(cli.get_bool("c", true));
  EXPECT_FALSE(cli.get_bool("d", true));
}

TEST(Cli, KeysListsAllFlags) {
  const Cli cli = make({"--one=1", "--two"});
  const auto keys = cli.keys();
  EXPECT_EQ(keys.size(), 2u);
}

TEST(Cli, EmptyArgv) {
  const Cli cli(0, nullptr);
  EXPECT_TRUE(cli.positional().empty());
  EXPECT_TRUE(cli.keys().empty());
}

TEST(Cli, GetIntRejectsOverflowAndUnderflow) {
  // Regression: strtoll saturates on overflow and sets ERANGE; an
  // unchecked errno made --over parse as LLONG_MAX silently.
  const Cli cli = make({"--over=99999999999999999999",
                        "--under=-99999999999999999999",
                        "--max=9223372036854775807",
                        "--min=-9223372036854775808"});
  EXPECT_THROW(cli.get_int("over", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_int("under", 0), std::invalid_argument);
  // The exact boundary values still round-trip.
  EXPECT_EQ(cli.get_int("max", 0), std::numeric_limits<long long>::max());
  EXPECT_EQ(cli.get_int("min", 0), std::numeric_limits<long long>::min());
}

TEST(Cli, GetSizeT) {
  const Cli cli = make({"--threads=8", "--big=18446744073709551615"});
  EXPECT_EQ(cli.get_size_t("threads", 1), 8u);
  EXPECT_EQ(cli.get_size_t("absent", 4), 4u);
  EXPECT_EQ(cli.get_size_t("big", 0),
            std::numeric_limits<std::size_t>::max());
}

TEST(Cli, GetSizeTRangeValidation) {
  const Cli cli = make({"--threads=300"});
  EXPECT_EQ(cli.get_size_t("threads", 1, 1, 512), 300u);
  EXPECT_THROW(cli.get_size_t("threads", 1, 1, 256), std::invalid_argument);
  EXPECT_THROW(cli.get_size_t("threads", 1, 301, 512), std::invalid_argument);
  // The fallback is returned as-is even outside [min, max].
  EXPECT_EQ(cli.get_size_t("absent", 0, 1, 256), 0u);
}

TEST(Cli, GetSizeTRejectsNonIntegers) {
  const Cli cli = make({"--a=-3", "--b=1.5", "--c=abc", "--d=", "--e=+2",
                        "--f=99999999999999999999999999"});
  for (const char* key : {"a", "b", "c", "d", "e", "f"})
    EXPECT_THROW(cli.get_size_t(key, 0), std::invalid_argument) << key;
}

}  // namespace
}  // namespace rat::util
