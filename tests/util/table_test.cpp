#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rat::util {
namespace {

Table sample() {
  Table t({"name", "value"});
  t.add_row({"alpha", "0.37"});
  t.add_row({"beta", "0.16"});
  return t;
}

TEST(Table, RejectsEmptyHeaderAndBadRows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, CellAccess) {
  Table t = sample();
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.cell(0, 0), "alpha");
  EXPECT_EQ(t.cell(1, 1), "0.16");
  EXPECT_THROW(t.cell(2, 0), std::out_of_range);
  EXPECT_THROW(t.cell(0, 5), std::out_of_range);
}

TEST(Table, SeparatorSkippedInRowCount) {
  Table t = sample();
  t.add_separator();
  t.add_row({"gamma", "1.0"});
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.cell(2, 0), "gamma");
}

TEST(Table, AsciiContainsAlignedCells) {
  const std::string s = sample().to_ascii();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha "), std::string::npos);
  EXPECT_NE(s.find("+------"), std::string::npos);
}

TEST(Table, MarkdownShape) {
  const std::string s = sample().to_markdown();
  EXPECT_NE(s.find("| name | value |"), std::string::npos);
  EXPECT_NE(s.find("|---|---|"), std::string::npos);
  EXPECT_NE(s.find("| beta | 0.16 |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"k", "v"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "quote\"inside"});
  const std::string s = t.to_csv();
  EXPECT_NE(s.find("k,v\n"), std::string::npos);
  EXPECT_NE(s.find("plain,1\n"), std::string::npos);
  EXPECT_NE(s.find("\"with,comma\",\"quote\"\"inside\"\n"), std::string::npos);
}

TEST(Table, CsvQuotesBareCarriageReturn) {
  // RFC 4180 regression: a bare '\r' (e.g. a diagnostic rendered from a
  // CRLF worksheet) must force quoting just like '\n', or readers that
  // accept either line ending see a phantom row boundary.
  Table t({"k", "v"});
  t.add_row({"carriage\rreturn", "line\nfeed"});
  const std::string s = t.to_csv();
  EXPECT_NE(s.find("\"carriage\rreturn\",\"line\nfeed\"\n"),
            std::string::npos);
}

TEST(Table, CsvRowsMatchDataRows) {
  Table t = sample();
  t.add_separator();  // separators must not appear in CSV
  const std::string s = t.to_csv();
  std::size_t lines = 0;
  for (char c : s)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3u);  // header + 2 data rows
}

}  // namespace
}  // namespace rat::util
