#include "util/format.hpp"

#include <gtest/gtest.h>

namespace rat::util {
namespace {

TEST(SciFormat, MatchesPaperStyle) {
  EXPECT_EQ(sci(5.56e-6), "5.56E-6");
  EXPECT_EQ(sci(1.31e-4), "1.31E-4");
  EXPECT_EQ(sci(1.07e-1), "1.07E-1");
  EXPECT_EQ(sci(4.54e+1), "4.54E1");
  EXPECT_EQ(sci(2.30e+1), "2.30E1");
}

TEST(SciFormat, RoundsToSignificantFigures) {
  EXPECT_EQ(sci(5.4649e-2), "5.46E-2");
  EXPECT_EQ(sci(5.4651e-2), "5.47E-2");
  EXPECT_EQ(sci(9.999e-3), "1.00E-2");
}

TEST(SciFormat, HandlesSignsAndSpecials) {
  EXPECT_EQ(sci(-5.56e-6), "-5.56E-6");
  EXPECT_EQ(sci(0.0), "0.00E0");
  EXPECT_EQ(sci(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(sci(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(sci(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(SciFormat, SigFigsParameter) {
  EXPECT_EQ(sci(1.23456e3, 5), "1.2346E3");
  EXPECT_EQ(sci(1.23456e3, 1), "1E3");
}

TEST(PercentFormat, IntegerAndFractionalDigits) {
  EXPECT_EQ(percent(0.15), "15%");
  EXPECT_EQ(percent(0.004, 1), "0.4%");
  EXPECT_EQ(percent(0.993, 1), "99.3%");
  EXPECT_EQ(percent(1.0), "100%");
}

TEST(FixedFormat, Decimals) {
  EXPECT_EQ(fixed(10.57, 1), "10.6");
  EXPECT_EQ(fixed(7.8, 1), "7.8");
  EXPECT_EQ(fixed(3.0, 0), "3");
}

TEST(BytesFormat, Units) {
  EXPECT_EQ(bytes(512), "512.0 B");
  EXPECT_EQ(bytes(2048), "2.0 KB");
  EXPECT_EQ(bytes(1048576), "1.0 MB");
  EXPECT_EQ(bytes(1.5 * 1024 * 1024 * 1024), "1.5 GB");
}

TEST(SiFormat, Prefixes) {
  EXPECT_EQ(si(150e6, "Hz"), "150 MHz");
  EXPECT_EQ(si(1e9, "B/s"), "1 GB/s");
  EXPECT_EQ(si(42, "ops"), "42 ops");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(ApproxEqual, Basics) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1.0, 1.001, 1e-2));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
  EXPECT_TRUE(approx_equal(-5.0, -5.0));
  EXPECT_FALSE(approx_equal(-5.0, 5.0));
}

}  // namespace
}  // namespace rat::util
