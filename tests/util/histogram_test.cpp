#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace rat::util {
namespace {

TEST(Histogram, RejectsBadInputs) {
  const std::vector<double> none;
  EXPECT_THROW(ascii_histogram(none), std::invalid_argument);
  const std::vector<double> some{1.0};
  HistogramOptions zero_bins;
  zero_bins.n_bins = 0;
  EXPECT_THROW(ascii_histogram(some, zero_bins), std::invalid_argument);
  HistogramOptions zero_width;
  zero_width.max_bar_width = 0;
  EXPECT_THROW(ascii_histogram(some, zero_width), std::invalid_argument);
}

TEST(Histogram, OneLinePerBin) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  HistogramOptions opt;
  opt.n_bins = 8;
  const std::string s = ascii_histogram(xs, opt);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 8);
}

TEST(Histogram, CountsSumToSampleCount) {
  util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(10.0, 2.0));
  HistogramOptions opt;
  opt.n_bins = 10;
  const std::string s = ascii_histogram(xs, opt);
  // Parse the trailing count of each line.
  std::size_t total = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto eol = s.find('\n', pos);
    const auto line = s.substr(pos, eol - pos);
    const auto space = line.rfind(' ');
    total += std::stoul(line.substr(space + 1));
    pos = eol + 1;
  }
  EXPECT_EQ(total, 1000u);
}

TEST(Histogram, PeakBinHasWidestBar) {
  // Strongly peaked data: the modal bin's bar must hit max width.
  std::vector<double> xs(900, 5.0);
  for (int i = 0; i < 100; ++i) xs.push_back(0.0 + i * 0.1);
  HistogramOptions opt;
  opt.n_bins = 10;
  opt.max_bar_width = 30;
  opt.lo = 0.0;
  opt.hi = 10.0;
  const std::string s = ascii_histogram(xs, opt);
  EXPECT_NE(s.find(std::string(30, '#')), std::string::npos);
}

TEST(Histogram, SingleValuedDataDoesNotCrash) {
  const std::vector<double> xs(50, 7.0);
  EXPECT_NO_THROW(ascii_histogram(xs));
  const std::string s = ascii_histogram(xs);
  EXPECT_NE(s.find("50"), std::string::npos);
}

TEST(Histogram, NonFiniteValuesSkippedAndCounted) {
  // Regression: NaN used to flow into the min/max scan and the
  // static_cast<size_t> binning expression (UB on NaN); +-Inf produced an
  // infinite bin width. Non-finite samples must be dropped, counted, and
  // must not perturb the finite data's range.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> xs{1.0, nan, 2.0, inf, 3.0, -inf, 4.0};
  HistogramOptions opt;
  opt.n_bins = 4;
  const std::string s = ascii_histogram(xs, opt);
  EXPECT_NE(s.find("dropped 3 non-finite"), std::string::npos);
  // 4 bins + 1 annotation line.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
  // Range comes from the finite values only: identical to the clean render
  // except for the trailing annotation.
  const std::vector<double> clean{1.0, 2.0, 3.0, 4.0};
  const std::string cs = ascii_histogram(clean, opt);
  EXPECT_EQ(s.substr(0, cs.size()), cs);
}

TEST(Histogram, AllNonFiniteThrows) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> xs{nan, nan};
  EXPECT_THROW(ascii_histogram(xs), std::invalid_argument);
}

TEST(Histogram, NoAnnotationWhenAllFinite) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_EQ(ascii_histogram(xs).find("dropped"), std::string::npos);
}

TEST(Histogram, FixedRangeClampsOutliers) {
  const std::vector<double> xs{-100.0, 0.5, 0.5, 200.0};
  HistogramOptions opt;
  opt.n_bins = 4;
  opt.lo = 0.0;
  opt.hi = 1.0;
  // All samples land in some bin (outliers clamp to the edge bins).
  const std::string s = ascii_histogram(xs, opt);
  std::size_t total = 0, pos = 0;
  while (pos < s.size()) {
    const auto eol = s.find('\n', pos);
    const auto line = s.substr(pos, eol - pos);
    total += std::stoul(line.substr(line.rfind(' ') + 1));
    pos = eol + 1;
  }
  EXPECT_EQ(total, 4u);
}

}  // namespace
}  // namespace rat::util
