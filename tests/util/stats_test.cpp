#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace rat::util {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0}) s.add(offset + x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-6);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(SpanHelpers, Basics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
}

TEST(SpanHelpers, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(min_of(empty), std::invalid_argument);
  EXPECT_THROW(max_of(empty), std::invalid_argument);
}

TEST(PercentError, SignedDirection) {
  // Predicted 10.6, measured 7.8 (Table 3): ~-26% over-prediction.
  EXPECT_NEAR(percent_error(10.6, 7.8), -26.415, 1e-2);
  EXPECT_NEAR(percent_error(2.0, 4.0), 100.0, 1e-12);
  EXPECT_THROW(percent_error(0.0, 1.0), std::invalid_argument);
}

TEST(SameOrderOfMagnitude, PaperJudgement) {
  // MD: predicted tcomp 5.37E-1 vs actual 8.79E-1 — "same order".
  EXPECT_TRUE(same_order_of_magnitude(5.37e-1, 8.79e-1));
  EXPECT_TRUE(same_order_of_magnitude(1.0, 9.99));
  EXPECT_FALSE(same_order_of_magnitude(1.0, 10.01));
  EXPECT_FALSE(same_order_of_magnitude(1.0, 0.0999));
  EXPECT_FALSE(same_order_of_magnitude(-1.0, 1.0));
  EXPECT_FALSE(same_order_of_magnitude(1.0, 0.0));
}

TEST(Rmse, KnownValues) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
  const std::vector<double> c{2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(a, c), 1.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, c), 1.0);
}

TEST(Rmse, MismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(rmse(a, b), std::invalid_argument);
  EXPECT_THROW(max_abs_diff(a, b), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW(rmse(empty, empty), std::invalid_argument);
}

}  // namespace
}  // namespace rat::util
