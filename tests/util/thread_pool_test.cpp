#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel_for.hpp"

namespace rat::util {
namespace {

/// Blocks until a submitted-task counter reaches a target (the pool has no
/// per-task futures; tasks signal completion themselves).
struct Latch {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t count = 0;

  void arrive() {
    std::lock_guard lock(mu);
    ++count;
    cv.notify_all();
  }
  void wait_for(std::size_t target) {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return count >= target; });
  }
};

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  Latch latch;
  std::atomic<int> sum{0};
  for (int i = 1; i <= 10; ++i)
    pool.submit([i, &sum, &latch] {
      sum += i;
      latch.arrive();
    });
  latch.wait_for(10);
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPool, OversubscriptionDrainsEveryTask) {
  // Far more tasks than workers: everything still runs exactly once.
  ThreadPool pool(2);
  constexpr std::size_t kTasks = 256;
  Latch latch;
  std::vector<std::atomic<int>> hits(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i)
    pool.submit([i, &hits, &latch] {
      ++hits[i];
      latch.arrive();
    });
  latch.wait_for(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, WorkersAreMarked) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  ThreadPool pool(1);
  Latch latch;
  bool on_worker = false;
  pool.submit([&] {
    on_worker = ThreadPool::on_worker_thread();
    latch.arrive();
  });
  latch.wait_for(1);
  EXPECT_TRUE(on_worker);
}

TEST(ThreadPool, WaitIdleSeesEveryTaskSideEffect) {
  // Metrics exporters rely on this: after wait_idle, every submitted
  // task — including bookkeeping that runs after the task signals its
  // own completion elsewhere — has fully finished on its worker.
  ThreadPool pool(2);
  pool.wait_idle();  // idle pool: returns immediately
  std::atomic<int> done{0};
  for (int i = 0; i < 128; ++i)
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      done.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 128);
  pool.wait_idle();  // idempotent once drained
  EXPECT_EQ(done.load(), 128);
}

TEST(ThreadPool, Validation) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), std::invalid_argument);
}

TEST(ThreadPool, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPool, RatThreadsEnvOverride) {
  setenv("RAT_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3u);
  setenv("RAT_THREADS", "not-a-number", 1);  // malformed: ignored
  EXPECT_GE(default_thread_count(), 1u);
  setenv("RAT_THREADS", "0", 1);  // out of range: ignored
  EXPECT_GE(default_thread_count(), 1u);
  unsetenv("RAT_THREADS");
}

TEST(ParallelFor, EmptyRangeNeverInvokes) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; }, 8);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, [&](std::size_t i) { ++hits[i]; }, 8);
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SingleThreadRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for(100, [&](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, PropagatesTheLowestChunkException) {
  // i=3 lives in chunk 0, i=90 in chunk 3 (4 threads, chunks of 25): the
  // rethrown error must be chunk 0's regardless of scheduling.
  auto fn = [](std::size_t i) {
    if (i == 3) throw std::runtime_error("err-3");
    if (i == 90) throw std::runtime_error("err-90");
  };
  for (int attempt = 0; attempt < 20; ++attempt) {
    try {
      parallel_for(100, fn, 4);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "err-3");
    }
  }
}

TEST(ParallelFor, ExceptionPropagatesFromSerialFallback) {
  EXPECT_THROW(
      parallel_for(10, [](std::size_t) { throw std::runtime_error("x"); }, 1),
      std::runtime_error);
}

TEST(ParallelFor, NestedRegionsFallBackToSerialWithoutDeadlock) {
  constexpr std::size_t kOuter = 16, kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(
      kOuter,
      [&](std::size_t o) {
        parallel_for(
            kInner, [&](std::size_t i) { ++hits[o * kInner + i]; }, 8);
      },
      8);
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelMap, PreservesIndexOrder) {
  const auto out =
      parallel_map(1000, [](std::size_t i) { return i * i; }, 8);
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, ThreadCountDoesNotChangeResults) {
  auto fn = [](std::size_t i) { return static_cast<double>(i) * 1.5 + 1.0; };
  const auto serial = parallel_map(513, fn, 1);
  for (std::size_t threads : {2u, 3u, 8u, 32u})
    EXPECT_EQ(parallel_map(513, fn, threads), serial) << threads;
}

}  // namespace
}  // namespace rat::util
