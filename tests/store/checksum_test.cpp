// CRC32C and FNV-1a checksums: known-answer vectors and incremental
// hashing equivalences the on-disk format depends on.
#include "store/checksum.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rat::store {
namespace {

TEST(StoreChecksum, Crc32cKnownAnswerVectors) {
  // RFC 3720 appendix B test vectors for CRC32C (Castagnoli).
  EXPECT_EQ(crc32c(""), 0x00000000u);
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(StoreChecksum, Crc32cDetectsSingleBitFlips) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t base = crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_NE(crc32c(flipped), base)
          << "bit " << bit << " of byte " << i << " undetected";
    }
  }
}

TEST(StoreChecksum, Fnv1a64KnownAnswers) {
  // Offset basis for the empty string, then classic FNV-1a vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171F73967E8ull);
}

TEST(StoreChecksum, IncrementalMatchesOneShotForRawBytes) {
  const std::string data = "abcdefgh";
  Fnv1a fp;
  fp.add_bytes(data.data(), data.size());
  EXPECT_EQ(fp.value(), fnv1a64(data));

  Fnv1a split;
  split.add_bytes(data.data(), 3);
  split.add_bytes(data.data() + 3, data.size() - 3);
  EXPECT_EQ(split.value(), fnv1a64(data));
}

TEST(StoreChecksum, LengthPrefixedStringsDoNotAliasAcrossBoundaries) {
  // ("ab","c") and ("a","bc") must fingerprint differently — that is the
  // point of the length prefix in add_string.
  Fnv1a a;
  a.add_string("ab");
  a.add_string("c");
  Fnv1a b;
  b.add_string("a");
  b.add_string("bc");
  EXPECT_NE(a.value(), b.value());
}

TEST(StoreChecksum, DoublesHashByBitPattern) {
  Fnv1a pos, neg;
  pos.add_double(0.0);
  neg.add_double(-0.0);
  // +0.0 == -0.0 numerically, but the bit patterns differ and so must the
  // fingerprints (checkpoint identity is bit-exact).
  EXPECT_NE(pos.value(), neg.value());
}

}  // namespace
}  // namespace rat::store
