// rat.store.v1 journal: append/recover round trips, sequence-number
// discipline, tail truncation on reopen.
#include "store/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace rat::store {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_all(const fs::path& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

TEST(StoreJournal, MissingFileRecoversEmpty) {
  const fs::path dir = fresh_dir("store_journal_missing");
  const RecoveredJournal rec = recover_journal(dir / "journal");
  EXPECT_TRUE(rec.records.empty());
  EXPECT_EQ(rec.valid_bytes, 0u);
  EXPECT_EQ(rec.dropped_bytes, 0u);
  EXPECT_EQ(rec.last_seq, 0u);
}

TEST(StoreJournal, AppendThenRecoverRoundTrips) {
  const fs::path dir = fresh_dir("store_journal_roundtrip");
  const fs::path path = dir / "journal";
  {
    JournalWriter w(path);
    EXPECT_EQ(w.append("alpha"), 1u);
    EXPECT_EQ(w.append(""), 2u);  // empty payloads are legal records
    EXPECT_EQ(w.append(std::string(1000, 'x')), 3u);
  }
  const RecoveredJournal rec = recover_journal(path);
  ASSERT_EQ(rec.records.size(), 3u);
  EXPECT_EQ(rec.records[0].payload, "alpha");
  EXPECT_EQ(rec.records[0].seq, 1u);
  EXPECT_EQ(rec.records[1].payload, "");
  EXPECT_EQ(rec.records[2].payload, std::string(1000, 'x'));
  EXPECT_EQ(rec.last_seq, 3u);
  EXPECT_EQ(rec.dropped_bytes, 0u);
  EXPECT_EQ(rec.valid_bytes, fs::file_size(path));
}

TEST(StoreJournal, ReopenContinuesSequenceNumbers) {
  const fs::path dir = fresh_dir("store_journal_reopen");
  const fs::path path = dir / "journal";
  {
    JournalWriter w(path);
    w.append("one");
    w.append("two");
  }
  RecoveredJournal rec;
  JournalWriter w(path, {}, &rec);
  EXPECT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(w.next_seq(), 3u);
  EXPECT_EQ(w.append("three"), 3u);
}

TEST(StoreJournal, MinLastSeqFloorsNumbering) {
  const fs::path dir = fresh_dir("store_journal_minseq");
  JournalWriter w(dir / "journal", {}, nullptr, /*min_last_seq=*/41);
  EXPECT_EQ(w.append("x"), 42u);
}

TEST(StoreJournal, AppendWithSeqKeepsOriginalNumbers) {
  const fs::path dir = fresh_dir("store_journal_explicit_seq");
  const fs::path path = dir / "journal";
  {
    JournalWriter w = JournalWriter::create(path);
    w.append_with_seq(5, "five");
    w.append_with_seq(9, "nine");  // gaps are legal (compaction survivors)
    w.sync();
  }
  const RecoveredJournal rec = recover_journal(path);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[0].seq, 5u);
  EXPECT_EQ(rec.records[1].seq, 9u);
  EXPECT_EQ(rec.last_seq, 9u);
}

TEST(StoreJournal, AppendWithRegressingSeqThrows) {
  const fs::path dir = fresh_dir("store_journal_regress");
  JournalWriter w = JournalWriter::create(dir / "journal");
  w.append_with_seq(5, "five");
  EXPECT_THROW(w.append_with_seq(5, "again"), StoreError);
  EXPECT_THROW(w.append_with_seq(4, "back"), StoreError);
}

TEST(StoreJournal, OversizedPayloadIsRejectedNotWritten) {
  const fs::path dir = fresh_dir("store_journal_oversize");
  const fs::path path = dir / "journal";
  JournalWriter w(path);
  w.append("ok");
  std::string huge;
  huge.resize(static_cast<std::size_t>(kMaxRecordBytes) + 1);
  EXPECT_THROW(w.append(huge), StoreError);
  // The rejected record must not have touched the file.
  const RecoveredJournal rec = recover_journal(path);
  ASSERT_EQ(rec.records.size(), 1u);
  EXPECT_EQ(rec.records[0].payload, "ok");
}

TEST(StoreJournal, CreateTruncatesExistingRecords) {
  const fs::path dir = fresh_dir("store_journal_create");
  const fs::path path = dir / "journal";
  {
    JournalWriter w(path);
    w.append("stale");
  }
  {
    JournalWriter w = JournalWriter::create(path, {}, /*min_last_seq=*/10);
    w.append("fresh");
  }
  const RecoveredJournal rec = recover_journal(path);
  ASSERT_EQ(rec.records.size(), 1u);
  EXPECT_EQ(rec.records[0].payload, "fresh");
  EXPECT_EQ(rec.records[0].seq, 11u);
}

TEST(StoreJournal, OpeningTruncatesTornTail) {
  const fs::path dir = fresh_dir("store_journal_torn");
  const fs::path path = dir / "journal";
  {
    JournalWriter w(path);
    w.append("kept");
    w.append("torn");
  }
  // Chop 3 bytes off the final record: a crashed mid-write.
  const std::uintmax_t size = fs::file_size(path);
  fs::resize_file(path, size - 3);
  RecoveredJournal rec;
  {
    JournalWriter w(path, {}, &rec);
    ASSERT_EQ(rec.records.size(), 1u);
    EXPECT_EQ(rec.records[0].payload, "kept");
    EXPECT_GT(rec.dropped_bytes, 0u);
    // The writer physically removed the tail, and appends continue at 2.
    EXPECT_EQ(fs::file_size(path), rec.valid_bytes);
    EXPECT_EQ(w.append("replacement"), 2u);
  }
  const RecoveredJournal again = recover_journal(path);
  ASSERT_EQ(again.records.size(), 2u);
  EXPECT_EQ(again.records[1].payload, "replacement");
  EXPECT_EQ(again.dropped_bytes, 0u);
}

TEST(StoreJournal, BadMagicInvalidatesWholeFile) {
  const fs::path dir = fresh_dir("store_journal_magic");
  const fs::path path = dir / "journal";
  {
    JournalWriter w(path);
    w.append("payload");
  }
  std::string bytes = read_all(path);
  bytes[0] = 'X';
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << bytes;
  }
  const RecoveredJournal rec = recover_journal(path);
  EXPECT_TRUE(rec.records.empty());
  EXPECT_EQ(rec.valid_bytes, 0u);
  EXPECT_EQ(rec.dropped_bytes, bytes.size());
}

TEST(StoreJournal, FrameRecordMatchesOnDiskBytes) {
  const fs::path dir = fresh_dir("store_journal_frame");
  const fs::path path = dir / "journal";
  {
    JournalWriter w(path);
    w.append("framed");
  }
  const std::string bytes = read_all(path);
  ASSERT_GT(bytes.size(), kJournalHeaderBytes);
  EXPECT_EQ(bytes.substr(kJournalHeaderBytes), frame_record(1, "framed"));
}

TEST(StoreJournal, MoveTransfersOwnership) {
  const fs::path dir = fresh_dir("store_journal_move");
  const fs::path path = dir / "journal";
  JournalWriter a(path);
  a.append("first");
  JournalWriter b(std::move(a));
  EXPECT_EQ(b.append("second"), 2u);
  b.sync();
  const RecoveredJournal rec = recover_journal(path);
  EXPECT_EQ(rec.records.size(), 2u);
}

TEST(StoreJournal, UnsyncedAppendsStillReadableAfterDestructor) {
  // sync_every_append=false defers fsync, but close still flushes the OS
  // buffer (write(2) already happened), so a clean shutdown loses nothing.
  const fs::path dir = fresh_dir("store_journal_nosync");
  const fs::path path = dir / "journal";
  {
    JournalWriter w(path, JournalWriter::Options{false});
    for (int i = 0; i < 100; ++i) w.append("r" + std::to_string(i));
  }
  EXPECT_EQ(recover_journal(path).records.size(), 100u);
}

}  // namespace
}  // namespace rat::store
