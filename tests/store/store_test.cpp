// DurableStore: persistence across reopen, last-write-wins replay,
// compaction (explicit, threshold, background) and corruption policy.
#include "store/store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace rat::store {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;  // DurableStore creates it
}

DurableStore::Options no_auto_compaction() {
  DurableStore::Options o;
  o.compact_journal_bytes = 0;
  return o;
}

TEST(StoreDurable, PutGetPersistAcrossReopen) {
  const fs::path dir = fresh_dir("store_durable_reopen");
  {
    DurableStore store(dir, no_auto_compaction());
    store.put("k1", "v1");
    store.put("k2", "v2");
    EXPECT_EQ(store.get("k1"), "v1");
    EXPECT_FALSE(store.get("missing").has_value());
    EXPECT_TRUE(store.contains("k2"));
    EXPECT_EQ(store.size(), 2u);
  }
  DurableStore store(dir, no_auto_compaction());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.get("k1"), "v1");
  EXPECT_EQ(store.get("k2"), "v2");
  EXPECT_EQ(store.open_info().journal_records, 2u);
  EXPECT_EQ(store.open_info().snapshot_entries, 0u);
  EXPECT_EQ(store.open_info().dropped_bytes, 0u);
}

TEST(StoreDurable, LastWriteWinsAcrossReopen) {
  const fs::path dir = fresh_dir("store_durable_overwrite");
  {
    DurableStore store(dir, no_auto_compaction());
    store.put("k", "old");
    store.put("k", "new");
    EXPECT_EQ(store.size(), 1u);
  }
  DurableStore store(dir, no_auto_compaction());
  EXPECT_EQ(store.get("k"), "new");
  EXPECT_EQ(store.size(), 1u);
}

TEST(StoreDurable, ForEachIteratesInLastWriteOrder) {
  const fs::path dir = fresh_dir("store_durable_order");
  DurableStore store(dir, no_auto_compaction());
  store.put("a", "1");
  store.put("b", "2");
  store.put("a", "3");  // rewrite moves "a" after "b"
  std::vector<std::string> order;
  store.for_each([&](const std::string& k, const std::string& v) {
    order.push_back(k + "=" + v);
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "b=2");
  EXPECT_EQ(order[1], "a=3");
}

TEST(StoreDurable, CompactWritesSnapshotAndShrinksJournal) {
  const fs::path dir = fresh_dir("store_durable_compact");
  DurableStore store(dir, no_auto_compaction());
  for (int i = 0; i < 50; ++i)
    store.put("key" + std::to_string(i % 10), std::string(100, 'v'));
  const std::uint64_t before = store.journal_bytes();
  store.compact();
  EXPECT_EQ(store.compactions(), 1u);
  EXPECT_LT(store.journal_bytes(), before);
  EXPECT_TRUE(fs::exists(store.snapshot_path()));
  EXPECT_EQ(store.size(), 10u);
  // Everything still readable after the journal was rewritten.
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(store.contains("key" + std::to_string(i)));
}

TEST(StoreDurable, ReopenAfterCompactionLoadsSnapshotPlusTail) {
  const fs::path dir = fresh_dir("store_durable_snapshot_reopen");
  {
    DurableStore store(dir, no_auto_compaction());
    for (int i = 0; i < 10; ++i)
      store.put("key" + std::to_string(i), "v" + std::to_string(i));
    store.compact();
    store.put("after", "compaction");  // journal tail past the snapshot
  }
  DurableStore store(dir, no_auto_compaction());
  EXPECT_EQ(store.open_info().snapshot_entries, 10u);
  EXPECT_EQ(store.open_info().journal_records, 1u);
  EXPECT_EQ(store.size(), 11u);
  EXPECT_EQ(store.get("key7"), "v7");
  EXPECT_EQ(store.get("after"), "compaction");
  // Order survives: snapshot entries first (their write order), tail last.
  std::vector<std::string> order;
  store.for_each(
      [&](const std::string& k, const std::string&) { order.push_back(k); });
  ASSERT_EQ(order.size(), 11u);
  EXPECT_EQ(order.back(), "after");
}

TEST(StoreDurable, CompactionCrashWindowSkipsStaleJournalRecords) {
  // Simulate a crash between snapshot rename and journal rewrite: the
  // snapshot exists, but the journal still holds all the old records.
  const fs::path dir = fresh_dir("store_durable_crash_window");
  std::string journal_with_all_records;
  {
    DurableStore store(dir, no_auto_compaction());
    store.put("a", "1");
    store.put("b", "2");
    std::ifstream f(store.journal_path(), std::ios::binary);
    journal_with_all_records.assign(std::istreambuf_iterator<char>(f), {});
  }
  {
    DurableStore store(dir, no_auto_compaction());
    store.compact();  // snapshot now covers seqs 1..2
  }
  {
    // Put the pre-compaction journal back — exactly what a crash between
    // phase 2 (snapshot rename) and phase 3 (journal rewrite) leaves.
    std::ofstream f(dir / "journal", std::ios::binary | std::ios::trunc);
    f << journal_with_all_records;
  }
  DurableStore store(dir, no_auto_compaction());
  EXPECT_EQ(store.open_info().snapshot_entries, 2u);
  EXPECT_EQ(store.open_info().stale_records, 2u);  // skipped, not re-applied
  EXPECT_EQ(store.open_info().journal_records, 0u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.get("a"), "1");
  EXPECT_EQ(store.get("b"), "2");
  // New writes number past the snapshot and persist normally.
  store.put("c", "3");
  EXPECT_EQ(store.get("c"), "3");
}

TEST(StoreDurable, ThresholdTriggersInlineCompaction) {
  const fs::path dir = fresh_dir("store_durable_threshold");
  DurableStore::Options opts;
  opts.compact_journal_bytes = 2048;
  opts.background_compaction = false;  // deterministic: compaction inline
  DurableStore store(dir, opts);
  for (int i = 0; i < 200; ++i)
    store.put("hot-key", std::string(64, 'x'));  // one live entry, much log
  EXPECT_GE(store.compactions(), 1u);
  EXPECT_LE(store.journal_bytes(), 2048u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(StoreDurable, BackgroundCompactionEventuallyRuns) {
  const fs::path dir = fresh_dir("store_durable_background");
  DurableStore::Options opts;
  opts.compact_journal_bytes = 2048;
  opts.background_compaction = true;
  DurableStore store(dir, opts);
  for (int i = 0; i < 200; ++i)
    store.put("hot-key", std::string(64, 'x'));
  // The worker runs asynchronously; poll briefly rather than flake.
  for (int spin = 0; spin < 200 && store.compactions() == 0; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(store.compactions(), 1u);
  EXPECT_EQ(store.get("hot-key"), std::string(64, 'x'));
}

TEST(StoreDurable, TornJournalTailIsDroppedOnOpen) {
  const fs::path dir = fresh_dir("store_durable_torn");
  {
    DurableStore store(dir, no_auto_compaction());
    store.put("kept", "yes");
    store.put("torn", "half");
  }
  const fs::path journal = dir / "journal";
  fs::resize_file(journal, fs::file_size(journal) - 2);
  DurableStore store(dir, no_auto_compaction());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get("kept"), "yes");
  EXPECT_FALSE(store.contains("torn"));
  EXPECT_GT(store.open_info().dropped_bytes, 0u);
}

TEST(StoreDurable, CorruptSnapshotIsAHardError) {
  const fs::path dir = fresh_dir("store_durable_bad_snapshot");
  {
    DurableStore store(dir, no_auto_compaction());
    store.put("k", "v");
    store.compact();
  }
  // Flip one byte in the snapshot body: unlike a torn journal this is
  // bit rot, and silently dropping entries would be data loss.
  std::string bytes;
  {
    std::ifstream f(dir / "snapshot", std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f), {});
  }
  bytes[bytes.size() / 2] =
      static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream f(dir / "snapshot", std::ios::binary | std::ios::trunc);
    f << bytes;
  }
  try {
    DurableStore store(dir, no_auto_compaction());
    FAIL() << "corrupt snapshot must throw";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.code(), StoreErrorCode::kCorrupt);
  }
}

TEST(StoreDurable, LeftoverTmpFilesAreRemovedOnOpen) {
  const fs::path dir = fresh_dir("store_durable_tmp");
  fs::create_directories(dir);
  {
    std::ofstream f(dir / "snapshot.tmp");
    f << "half-written";
  }
  DurableStore store(dir, no_auto_compaction());
  EXPECT_FALSE(fs::exists(dir / "snapshot.tmp"));
  store.put("k", "v");
  EXPECT_EQ(store.get("k"), "v");
}

TEST(StoreDurable, ConcurrentPutsAllSurviveReopen) {
  const fs::path dir = fresh_dir("store_durable_concurrent");
  DurableStore::Options opts;
  opts.sync_every_append = false;  // keep the thread test fast
  opts.compact_journal_bytes = 4096;  // and let compaction race the puts
  {
    DurableStore store(dir, opts);
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
      workers.emplace_back([&store, t] {
        for (int i = 0; i < 100; ++i)
          store.put("t" + std::to_string(t) + "-k" + std::to_string(i),
                    std::string(32, static_cast<char>('a' + t)));
      });
    for (auto& w : workers) w.join();
    EXPECT_EQ(store.size(), 400u);
  }
  DurableStore store(dir, opts);
  EXPECT_EQ(store.size(), 400u);
  for (int t = 0; t < 4; ++t)
    for (int i = 0; i < 100; ++i)
      EXPECT_TRUE(store.contains("t" + std::to_string(t) + "-k" +
                                 std::to_string(i)));
}

}  // namespace
}  // namespace rat::store
