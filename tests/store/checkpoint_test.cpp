// CampaignCheckpoint: record/restore round trips, campaign and item
// staleness rejection, torn-tail resume, thread-safe recording.
#include "store/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace rat::store {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

constexpr std::uint64_t kCampaign = 0xABCDEF0123456789ull;

TEST(StoreCheckpoint, FreshCheckpointRestoresNothing) {
  const fs::path dir = fresh_dir("store_ckpt_fresh");
  CampaignCheckpoint ckpt(dir / "ckpt", "test.v1", kCampaign);
  EXPECT_EQ(ckpt.restored_count(), 0u);
  EXPECT_EQ(ckpt.restored_payload(0, 1), nullptr);
}

TEST(StoreCheckpoint, RecordThenReopenRestores) {
  const fs::path dir = fresh_dir("store_ckpt_roundtrip");
  const fs::path path = dir / "ckpt";
  {
    CampaignCheckpoint ckpt(path, "test.v1", kCampaign);
    ckpt.record(0, 11, "payload-zero");
    ckpt.record(2, 33, "payload-two");  // out-of-order indices are normal
    ckpt.record(1, 22, std::string("\x00\x01\xff", 3));
  }
  CampaignCheckpoint ckpt(path, "test.v1", kCampaign);
  EXPECT_EQ(ckpt.restored_count(), 3u);
  const std::string* p0 = ckpt.restored_payload(0, 11);
  ASSERT_NE(p0, nullptr);
  EXPECT_EQ(*p0, "payload-zero");
  const std::string* p1 = ckpt.restored_payload(1, 22);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(*p1, std::string("\x00\x01\xff", 3));
  EXPECT_NE(ckpt.restored_payload(2, 33), nullptr);
  EXPECT_EQ(ckpt.restored_payload(3, 44), nullptr);  // never recorded
}

TEST(StoreCheckpoint, DifferentCampaignFingerprintIsStale) {
  const fs::path dir = fresh_dir("store_ckpt_stale_fp");
  const fs::path path = dir / "ckpt";
  { CampaignCheckpoint ckpt(path, "test.v1", kCampaign); }
  try {
    CampaignCheckpoint ckpt(path, "test.v1", kCampaign + 1);
    FAIL() << "campaign fingerprint mismatch must throw";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.code(), StoreErrorCode::kStaleCheckpoint);
    EXPECT_NE(std::string(e.what()).find("E_STALE_CHECKPOINT"),
              std::string::npos);
  }
}

TEST(StoreCheckpoint, DifferentKindIsStale) {
  const fs::path dir = fresh_dir("store_ckpt_stale_kind");
  const fs::path path = dir / "ckpt";
  { CampaignCheckpoint ckpt(path, "rat.batch.v1", kCampaign); }
  EXPECT_THROW(CampaignCheckpoint(path, "rat.designspace.v1", kCampaign),
               StoreError);
}

TEST(StoreCheckpoint, ChangedItemFingerprintIsStale) {
  const fs::path dir = fresh_dir("store_ckpt_stale_item");
  const fs::path path = dir / "ckpt";
  {
    CampaignCheckpoint ckpt(path, "test.v1", kCampaign);
    ckpt.record(5, /*item_fp=*/0x1111, "old-result");
  }
  CampaignCheckpoint ckpt(path, "test.v1", kCampaign);
  // Same fingerprint replays; a different one means the input changed.
  EXPECT_NE(ckpt.restored_payload(5, 0x1111), nullptr);
  EXPECT_THROW(ckpt.restored_payload(5, 0x2222), StoreError);
}

TEST(StoreCheckpoint, TornTailLosesOnlyTheLastItem) {
  const fs::path dir = fresh_dir("store_ckpt_torn");
  const fs::path path = dir / "ckpt";
  {
    CampaignCheckpoint ckpt(path, "test.v1", kCampaign);
    ckpt.record(0, 1, "survives");
    ckpt.record(1, 2, "torn-away");
  }
  fs::resize_file(path, fs::file_size(path) - 1);
  CampaignCheckpoint ckpt(path, "test.v1", kCampaign);
  EXPECT_EQ(ckpt.restored_count(), 1u);
  EXPECT_NE(ckpt.restored_payload(0, 1), nullptr);
  EXPECT_EQ(ckpt.restored_payload(1, 2), nullptr);  // redo, don't trust
  // The campaign continues where it left off.
  ckpt.record(1, 2, "redone");
}

TEST(StoreCheckpoint, FullyTruncatedFileStartsOver) {
  // Losing even the header record means no campaign identity — the
  // checkpoint must reinitialize rather than reject or crash.
  const fs::path dir = fresh_dir("store_ckpt_wiped");
  const fs::path path = dir / "ckpt";
  {
    CampaignCheckpoint ckpt(path, "test.v1", kCampaign);
    ckpt.record(0, 1, "gone");
  }
  fs::resize_file(path, 4);
  CampaignCheckpoint ckpt(path, "test.v1", kCampaign);
  EXPECT_EQ(ckpt.restored_count(), 0u);
  ckpt.record(0, 1, "fresh");
}

TEST(StoreCheckpoint, ParallelRecordingIsDurable) {
  const fs::path dir = fresh_dir("store_ckpt_parallel");
  const fs::path path = dir / "ckpt";
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  {
    CampaignCheckpoint::Options opts;
    opts.sync_every_append = false;  // keep the thread test fast
    CampaignCheckpoint ckpt(path, "test.v1", kCampaign, opts);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([&ckpt, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::uint64_t index =
              static_cast<std::uint64_t>(t * kPerThread + i);
          ckpt.record(index, index * 7 + 1,
                      "result-" + std::to_string(index));
        }
      });
    for (auto& w : workers) w.join();
    ckpt.sync();
  }
  CampaignCheckpoint ckpt(path, "test.v1", kCampaign);
  EXPECT_EQ(ckpt.restored_count(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (std::uint64_t index = 0; index < kThreads * kPerThread; ++index) {
    const std::string* p = ckpt.restored_payload(index, index * 7 + 1);
    ASSERT_NE(p, nullptr) << "index " << index;
    EXPECT_EQ(*p, "result-" + std::to_string(index));
  }
}

}  // namespace
}  // namespace rat::store
