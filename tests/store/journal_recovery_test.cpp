// Recovery property suite (crash-safety acceptance): for a journal of
// known records, truncation at EVERY byte boundary and single-bit flips
// at every position must never crash recovery, never surface a corrupt
// record, and always yield a prefix of the original record sequence.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/journal.hpp"
#include "util/rng.hpp"

namespace rat::store {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void write_bytes(const fs::path& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Deterministic payloads of varied sizes (including empty and
/// binary-looking bytes) so the scan crosses many framing shapes.
std::vector<std::string> test_payloads() {
  std::vector<std::string> payloads;
  payloads.push_back("");
  payloads.push_back("a");
  payloads.push_back("hello journal");
  payloads.push_back(std::string(1, '\0') + "binary\xff\x7f" +
                     std::string(3, '\0'));
  payloads.push_back(std::string(257, 'z'));
  for (int i = 0; i < 8; ++i)
    payloads.push_back("rec-" + std::to_string(i) +
                       std::string(static_cast<std::size_t>(i * 13), 'q'));
  return payloads;
}

std::string build_journal(const fs::path& path,
                          const std::vector<std::string>& payloads) {
  {
    JournalWriter w = JournalWriter::create(path);
    for (const std::string& p : payloads) w.append(p);
  }
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

/// The invariant every corruption scenario must preserve: what recovery
/// returns is an exact prefix of the originally written records.
void expect_valid_prefix(const RecoveredJournal& rec,
                         const std::vector<std::string>& payloads,
                         const std::string& context) {
  ASSERT_LE(rec.records.size(), payloads.size()) << context;
  for (std::size_t i = 0; i < rec.records.size(); ++i) {
    EXPECT_EQ(rec.records[i].seq, i + 1) << context << " record " << i;
    EXPECT_EQ(rec.records[i].payload, payloads[i])
        << context << " record " << i;
  }
}

TEST(StoreRecovery, TruncationAtEveryByteBoundaryKeepsValidPrefix) {
  const fs::path dir = fresh_dir("store_recovery_truncate");
  const fs::path path = dir / "journal";
  const std::vector<std::string> payloads = test_payloads();
  const std::string full = build_journal(path, payloads);

  // Record where each fully framed record ends, so we can assert the
  // recovered count exactly — not just "some prefix".
  std::vector<std::size_t> record_end;
  {
    std::size_t off = kJournalHeaderBytes;
    for (const std::string& p : payloads) {
      off += kRecordHeaderBytes + p.size();
      record_end.push_back(off);
    }
  }
  ASSERT_EQ(record_end.back(), full.size());

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    write_bytes(path, full.substr(0, cut));
    const RecoveredJournal rec = recover_journal(path);
    const std::string context = "cut at byte " + std::to_string(cut);
    expect_valid_prefix(rec, payloads, context);

    std::size_t expected = 0;
    while (expected < record_end.size() && record_end[expected] <= cut)
      ++expected;
    EXPECT_EQ(rec.records.size(), expected) << context;
    EXPECT_EQ(rec.valid_bytes + rec.dropped_bytes, cut) << context;

    // A JournalWriter must also open every truncation cleanly and accept
    // a new append right after the surviving prefix.
    RecoveredJournal reopened;
    JournalWriter w(path, {}, &reopened);
    EXPECT_EQ(reopened.records.size(), expected) << context;
    EXPECT_EQ(w.append("tail"), reopened.last_seq + 1) << context;
  }
}

TEST(StoreRecovery, SingleBitFlipAtEveryPositionNeverSurfacesCorruption) {
  const fs::path dir = fresh_dir("store_recovery_bitflip");
  const fs::path path = dir / "journal";
  // A smaller fixture keeps size*8 scans fast while still covering the
  // header, several record headers and payload interiors.
  const std::vector<std::string> payloads = {"first", "", "third-record",
                                             std::string(40, 'p')};
  const std::string full = build_journal(path, payloads);

  for (std::size_t i = 0; i < full.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      write_bytes(path, mutated);
      const RecoveredJournal rec = recover_journal(path);
      const std::string context =
          "bit " + std::to_string(bit) + " of byte " + std::to_string(i);
      // Never a crash, never a record that differs from what was written:
      // a flip either lands in a record (that record and everything after
      // is dropped), in the header (everything dropped), or in a seq/len
      // byte whose CRC no longer matches.
      expect_valid_prefix(rec, payloads, context);
      EXPECT_EQ(rec.valid_bytes + rec.dropped_bytes, full.size()) << context;
    }
  }
}

TEST(StoreRecovery, RandomMultiByteCorruptionKeepsInvariants) {
  const fs::path dir = fresh_dir("store_recovery_random");
  const fs::path path = dir / "journal";
  const std::vector<std::string> payloads = test_payloads();
  const std::string full = build_journal(path, payloads);

  util::Rng rng(20260805u);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = full;
    const int n_mutations = 1 + static_cast<int>(rng.next_u64() % 8);
    for (int m = 0; m < n_mutations; ++m) {
      const std::size_t pos = rng.next_u64() % mutated.size();
      mutated[pos] = static_cast<char>(rng.next_u64());
    }
    // Sometimes also truncate, compounding the damage.
    if (rng.next_u64() % 2 == 0)
      mutated.resize(rng.next_u64() % (mutated.size() + 1));
    write_bytes(path, mutated);
    const RecoveredJournal rec = recover_journal(path);
    expect_valid_prefix(rec, payloads, "trial " + std::to_string(trial));
    EXPECT_EQ(rec.valid_bytes + rec.dropped_bytes, mutated.size());
  }
}

TEST(StoreRecovery, GarbageFileRecoversEmptyWithoutThrowing) {
  const fs::path dir = fresh_dir("store_recovery_garbage");
  const fs::path path = dir / "journal";
  util::Rng rng(7u);
  for (std::size_t size : {std::size_t{1}, std::size_t{15}, std::size_t{16},
                           std::size_t{17}, std::size_t{1000}}) {
    std::string garbage(size, '\0');
    for (char& c : garbage) c = static_cast<char>(rng.next_u64());
    write_bytes(path, garbage);
    const RecoveredJournal rec = recover_journal(path);
    EXPECT_TRUE(rec.records.empty()) << "size " << size;
    EXPECT_EQ(rec.dropped_bytes + rec.valid_bytes, size);
  }
}

}  // namespace
}  // namespace rat::store
