// PersistentResultCache: durable backing for the service cache — warm
// start replays bit-identical predictions in last-write LRU order, and
// only genuine inserts are meant to reach the journal.
#include "svc/persist.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "io/batch.hpp"
#include "svc/fingerprint.hpp"

namespace rat::svc {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

/// A prediction whose every field carries a distinct, awkward bit
/// pattern (negative zero, subnormal, enormous) so byte-identity isn't
/// satisfied by accident.
core::ThroughputPrediction awkward_prediction(double salt) {
  core::ThroughputPrediction p;
  p.fclock_hz = 100e6 + salt;
  p.t_write_sec = 0.1 * salt + 1e-300;        // near-subnormal
  p.t_read_sec = -0.0;                        // sign bit only
  p.t_comm_sec = 1.0 / 3.0 + salt;            // non-terminating binary
  p.t_comp_sec = std::numeric_limits<double>::min() * salt;
  p.t_rc_sb_sec = 1e300 + salt;
  p.t_rc_db_sec = 0.3333333333333333 * salt;
  p.speedup_sb = 9.950000000000001 + salt;
  p.speedup_db = salt;
  p.util_comp_sb = 0.1 + salt * 1e-17;
  p.util_comm_sb = 0.2;
  p.util_comp_db = 0.3;
  p.util_comm_db = 0.4;
  return p;
}

ResultCache::Value value_with(std::size_t n, double salt) {
  std::vector<core::ThroughputPrediction> v;
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(awkward_prediction(salt + static_cast<double>(i)));
  return std::make_shared<const std::vector<core::ThroughputPrediction>>(
      std::move(v));
}

bool bit_identical(const core::ThroughputPrediction& a,
                   const core::ThroughputPrediction& b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

TEST(SvcPersist, WarmStartReplaysBitIdenticalPredictions) {
  const fs::path dir = fresh_dir("svc_persist_roundtrip");
  const ResultCache::Value original = value_with(3, 0.125);
  {
    PersistentResultCache persist(dir);
    persist.append("worksheet-key", original);
  }
  PersistentResultCache persist(dir);
  ResultCache cache(8, 2);
  EXPECT_EQ(persist.warm(cache), 1u);
  const ResultCache::Value v =
      cache.get("worksheet-key", fnv1a64("worksheet-key"));
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->size(), original->size());
  for (std::size_t i = 0; i < v->size(); ++i)
    EXPECT_TRUE(bit_identical((*v)[i], (*original)[i])) << "prediction " << i;
}

TEST(SvcPersist, WarmPreservesLastWriteLruOrder) {
  // With capacity 2, warming 3 entries must keep the two most recently
  // written — the same two the live process would have held.
  const fs::path dir = fresh_dir("svc_persist_lru");
  {
    PersistentResultCache persist(dir);
    persist.append("oldest", value_with(1, 1.0));
    persist.append("middle", value_with(1, 2.0));
    persist.append("newest", value_with(1, 3.0));
  }
  PersistentResultCache persist(dir);
  ResultCache cache(2, 1);
  EXPECT_EQ(persist.warm(cache), 3u);
  EXPECT_EQ(cache.get("oldest", fnv1a64("oldest")), nullptr);
  EXPECT_NE(cache.get("middle", fnv1a64("middle")), nullptr);
  EXPECT_NE(cache.get("newest", fnv1a64("newest")), nullptr);
}

TEST(SvcPersist, RewrittenKeyWarmsToTheLatestValue) {
  const fs::path dir = fresh_dir("svc_persist_rewrite");
  const ResultCache::Value latest = value_with(2, 9.0);
  {
    PersistentResultCache persist(dir);
    persist.append("k", value_with(2, 1.0));
    persist.append("k", latest);
  }
  PersistentResultCache persist(dir);
  ResultCache cache(8, 2);
  EXPECT_EQ(persist.warm(cache), 1u);  // one key, one entry
  const ResultCache::Value v = cache.get("k", fnv1a64("k"));
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(bit_identical((*v)[0], (*latest)[0]));
}

TEST(SvcPersist, SurvivesCompaction) {
  const fs::path dir = fresh_dir("svc_persist_compact");
  {
    PersistentResultCache persist(dir);
    for (int i = 0; i < 20; ++i)
      persist.append("key" + std::to_string(i), value_with(1, i));
    persist.store().compact();
    persist.append("post-compact", value_with(1, 99.0));
  }
  PersistentResultCache persist(dir);
  ResultCache cache(64, 4);
  EXPECT_EQ(persist.warm(cache), 21u);
  EXPECT_NE(cache.get("key0", fnv1a64("key0")), nullptr);
  EXPECT_NE(cache.get("post-compact", fnv1a64("post-compact")), nullptr);
}

TEST(SvcPersist, CorruptValueBytesAreAHardError) {
  // The journal CRC protects framing; a value that decodes to garbage
  // (wrong length for the prediction codec) must throw, not warm junk.
  const fs::path dir = fresh_dir("svc_persist_badvalue");
  {
    store::DurableStore raw(dir);
    raw.put("key", "definitely not an encoded prediction vector");
  }
  PersistentResultCache persist(dir);
  ResultCache cache(8, 2);
  EXPECT_THROW(persist.warm(cache), store::StoreError);
}

TEST(SvcPersist, EncodeDecodePredictionsRoundTripsExactly) {
  const std::vector<core::ThroughputPrediction> v = {
      awkward_prediction(0.0), awkward_prediction(-1.5)};
  const std::string encoded = io::encode_predictions(v);
  // u32 count + 13 doubles per prediction.
  EXPECT_EQ(encoded.size(), 4u + v.size() * 13u * 8u);
  const std::vector<core::ThroughputPrediction> decoded =
      io::decode_predictions(encoded);
  ASSERT_EQ(decoded.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_TRUE(bit_identical(decoded[i], v[i]));
  // Truncated and over-long payloads are corruption, not UB.
  EXPECT_THROW(io::decode_predictions(encoded.substr(0, encoded.size() - 1)),
               store::StoreError);
  EXPECT_THROW(io::decode_predictions(encoded + "x"), store::StoreError);
}

}  // namespace
}  // namespace rat::svc
