// Sharded LRU result cache: hit/miss/eviction semantics and stats.
#include "svc/cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/fingerprint.hpp"

namespace rat::svc {
namespace {

ResultCache::Value value_for(double fclock) {
  core::ThroughputPrediction p;
  p.fclock_hz = fclock;
  return std::make_shared<const std::vector<core::ThroughputPrediction>>(
      std::vector<core::ThroughputPrediction>{p});
}

TEST(SvcCache, MissThenHit) {
  ResultCache cache(4, 1);
  const std::string key = "k1";
  const std::uint64_t fp = fnv1a64(key);
  EXPECT_EQ(cache.get(key, fp), nullptr);
  cache.put(key, fp, value_for(1.0));
  const ResultCache::Value v = cache.get(key, fp);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->at(0).fclock_hz, 1.0);
  const ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_EQ(st.size, 1u);
}

TEST(SvcCache, EvictsLeastRecentlyUsed) {
  // One shard, two slots: touching "a" makes "b" the LRU victim.
  ResultCache cache(2, 1);
  auto put = [&](const std::string& k, double v) {
    cache.put(k, fnv1a64(k), value_for(v));
  };
  auto get = [&](const std::string& k) {
    return cache.get(k, fnv1a64(k));
  };
  put("a", 1.0);
  put("b", 2.0);
  ASSERT_NE(get("a"), nullptr);  // refresh: "b" is now least recent
  put("c", 3.0);                 // evicts "b"
  EXPECT_NE(get("a"), nullptr);
  EXPECT_EQ(get("b"), nullptr);
  EXPECT_NE(get("c"), nullptr);
  const ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.size, 2u);
}

TEST(SvcCache, PutRefreshesExistingKey) {
  ResultCache cache(2, 1);
  const std::uint64_t fp = fnv1a64("k");
  cache.put("k", fp, value_for(1.0));
  cache.put("k", fp, value_for(2.0));  // concurrent-miss resolution path
  const ResultCache::Value v = cache.get("k", fp);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->at(0).fclock_hz, 2.0);
  EXPECT_EQ(cache.stats().size, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(SvcCache, ZeroCapacityDisablesStorage) {
  ResultCache cache(0, 8);
  const std::uint64_t fp = fnv1a64("k");
  cache.put("k", fp, value_for(1.0));
  EXPECT_EQ(cache.get("k", fp), nullptr);
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SvcCache, ShardsNeverExceedTotalCapacityByMuchAndClearEmpties) {
  // capacity 8 over 4 shards -> 2 per shard; inserting many distinct keys
  // keeps the resident count within capacity + n_shards - 1.
  ResultCache cache(8, 4);
  for (int i = 0; i < 100; ++i) {
    const std::string k = "key" + std::to_string(i);
    cache.put(k, fnv1a64(k), value_for(static_cast<double>(i)));
  }
  EXPECT_LE(cache.stats().size, 8u + 4u - 1u);
  EXPECT_GT(cache.stats().evictions, 0u);
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.get("key99", fnv1a64("key99")), nullptr);
}

TEST(SvcCache, PutReportsInsertRefreshAndEviction) {
  ResultCache cache(2, 1);
  const std::uint64_t fp_a = fnv1a64("a");
  EXPECT_EQ(cache.put("a", fp_a, value_for(1.0)),
            ResultCache::PutOutcome::kInserted);
  // Same key again: the concurrent-duplicate-compute path. The
  // persistence layer must see this as NOT a genuine insert, or every
  // race would append a duplicate journal record.
  EXPECT_EQ(cache.put("a", fp_a, value_for(1.5)),
            ResultCache::PutOutcome::kRefreshed);
  EXPECT_EQ(cache.put("b", fnv1a64("b"), value_for(2.0)),
            ResultCache::PutOutcome::kInserted);
  EXPECT_EQ(cache.put("c", fnv1a64("c"), value_for(3.0)),
            ResultCache::PutOutcome::kInsertedEvicting);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SvcCache, ZeroCapacityPutReportsDropped) {
  ResultCache cache(0, 4);
  EXPECT_EQ(cache.put("k", fnv1a64("k"), value_for(1.0)),
            ResultCache::PutOutcome::kDropped);
}

TEST(SvcCache, RefreshDoesNotDoubleCountBytes) {
  ResultCache cache(4, 1);
  const std::uint64_t fp = fnv1a64("k");
  cache.put("k", fp, value_for(1.0));
  const std::uint64_t after_insert = cache.stats().bytes;
  EXPECT_GT(after_insert, 0u);
  // Refreshing with an equally sized value must leave bytes unchanged.
  cache.put("k", fp, value_for(2.0));
  EXPECT_EQ(cache.stats().bytes, after_insert);
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST(SvcCache, BytesTrackInsertEvictAndClear) {
  ResultCache cache(2, 1);
  cache.put("aa", fnv1a64("aa"), value_for(1.0));
  cache.put("bb", fnv1a64("bb"), value_for(2.0));
  const std::uint64_t two_entries = cache.stats().bytes;
  cache.put("cc", fnv1a64("cc"), value_for(3.0));  // evicts one
  // Keys are the same length and values the same shape, so eviction +
  // insert nets out to the two-entry footprint.
  EXPECT_EQ(cache.stats().bytes, two_entries);
  cache.clear();
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(SvcCache, HitRatioDerivesFromStats) {
  ResultCache cache(4, 1);
  EXPECT_EQ(hit_ratio(cache.stats()), 0.0);  // no lookups yet
  const std::uint64_t fp = fnv1a64("k");
  cache.get("k", fp);  // miss
  EXPECT_EQ(hit_ratio(cache.stats()), 0.0);
  cache.put("k", fp, value_for(1.0));
  cache.get("k", fp);  // hit
  EXPECT_DOUBLE_EQ(hit_ratio(cache.stats()), 0.5);
  cache.get("k", fp);  // hit
  const ResultCache::Stats st = cache.stats();
  EXPECT_DOUBLE_EQ(hit_ratio(st), 2.0 / 3.0);
}

TEST(SvcCache, ClearZeroesTheExportedFootprintGauges) {
  // Regression: clear() zeroed size_/bytes_ but never pushed the zeroed
  // svc.cache.size / svc.cache.bytes gauges, so the metrics export kept
  // reporting the pre-clear footprint as phantom resident entries.
  obs::set_enabled(true);
  obs::Registry::global().reset();
  ResultCache cache(4, 1);
  cache.put("k1", fnv1a64("k1"), value_for(1.0));
  cache.put("k2", fnv1a64("k2"), value_for(2.0));
  auto gauges = obs::Registry::global().gauges();
  EXPECT_GT(gauges.at("svc.cache.size"), 0.0);
  EXPECT_GT(gauges.at("svc.cache.bytes"), 0.0);

  cache.clear();
  gauges = obs::Registry::global().gauges();
  EXPECT_EQ(gauges.at("svc.cache.size"), 0.0);
  EXPECT_EQ(gauges.at("svc.cache.bytes"), 0.0);
  obs::Registry::global().reset();
  obs::set_enabled(false);
}

TEST(SvcCache, HitRatioGaugeRefreshesAtStatsTimeNotPerLookup) {
  // The per-get gauge write was hoisted out of the hot path: lookups
  // alone leave the gauge stale, reading stats() (the export point)
  // brings it current.
  obs::set_enabled(true);
  obs::Registry::global().reset();
  ResultCache cache(4, 1);
  const std::uint64_t fp = fnv1a64("k");
  cache.get("k", fp);  // miss; no gauge write on the lookup path
  EXPECT_EQ(obs::Registry::global().gauges().count("svc.cache.hit_ratio"),
            0u);
  cache.put("k", fp, value_for(1.0));
  cache.get("k", fp);  // hit
  const ResultCache::Stats st = cache.stats();
  EXPECT_DOUBLE_EQ(obs::Registry::global().gauges().at("svc.cache.hit_ratio"),
                   hit_ratio(st));
  obs::Registry::global().reset();
  obs::set_enabled(false);
}

TEST(SvcCache, DistinctKeysWithEqualFingerprintsDoNotAlias) {
  // The shard index comes from the fingerprint, but identity is the full
  // key: a forced "collision" (same fp, different key) must stay two
  // distinct entries.
  ResultCache cache(4, 2);
  cache.put("k1", 42, value_for(1.0));
  cache.put("k2", 42, value_for(2.0));
  ASSERT_NE(cache.get("k1", 42), nullptr);
  ASSERT_NE(cache.get("k2", 42), nullptr);
  EXPECT_EQ(cache.get("k1", 42)->at(0).fclock_hz, 1.0);
  EXPECT_EQ(cache.get("k2", 42)->at(0).fclock_hz, 2.0);
}

}  // namespace
}  // namespace rat::svc
