// rat.svc.v1 request parsing (strict) and response rendering.
#include "svc/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/parameters.hpp"
#include "core/throughput.hpp"
#include "io/json.hpp"
#include "svc/fingerprint.hpp"

namespace rat::svc {
namespace {

Request parse_ok(const std::string& line) {
  Request req;
  EXPECT_NO_THROW(req = parse_request(line)) << line;
  return req;
}

/// Expect a ProtocolError whose message contains @p needle, echoing @p id.
void expect_rejected(const std::string& line, const std::string& needle,
                     const std::string& id = "") {
  try {
    parse_request(line);
    FAIL() << "accepted: " << line;
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), SvcErrorCode::kBadRequest) << line;
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
    EXPECT_EQ(e.id(), id);
  }
}

TEST(SvcProtocol, ParsesFullEvaluateRequest) {
  const Request req = parse_ok(
      "{\"schema\":\"rat.svc.v1\",\"id\":\"r1\",\"op\":\"evaluate\","
      "\"worksheet\":\"name = x\\n\",\"deadline_ms\":250,"
      "\"no_cache\":true}");
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.op, Request::Op::kEvaluate);
  EXPECT_TRUE(req.has_worksheet);
  EXPECT_EQ(req.worksheet, "name = x\n");
  EXPECT_FALSE(req.has_file);
  EXPECT_EQ(req.deadline_ms, 250.0);
  EXPECT_TRUE(req.no_cache);
}

TEST(SvcProtocol, SchemaAndIdAreOptional) {
  const Request req = parse_ok("{\"op\":\"ping\"}");
  EXPECT_EQ(req.op, Request::Op::kPing);
  EXPECT_TRUE(req.id.empty());
}

TEST(SvcProtocol, StrictRejections) {
  expect_rejected("not json", "");
  expect_rejected("[1,2]", "must be a JSON object");
  expect_rejected("{\"op\":\"ping\",\"extra\":1}", "unknown request member");
  expect_rejected("{\"op\":\"fly\"}", "unknown op");
  expect_rejected("{\"op\":7}", "\"op\" must be a string");
  expect_rejected("{\"id\":7,\"op\":\"ping\"}", "\"id\" must be a string");
  expect_rejected("{\"schema\":\"rat.svc.v2\",\"op\":\"ping\"}", "schema");
  expect_rejected("{\"op\":\"evaluate\"}", "exactly one of");
  expect_rejected(
      "{\"op\":\"evaluate\",\"worksheet\":\"w\",\"file\":\"f\"}",
      "exactly one of");
  expect_rejected("{\"op\":\"ping\",\"worksheet\":\"w\"}",
                  "only apply to op \"evaluate\"");
  expect_rejected(
      "{\"op\":\"evaluate\",\"worksheet\":\"w\",\"deadline_ms\":0}",
      "positive");
  expect_rejected(
      "{\"op\":\"evaluate\",\"worksheet\":\"w\",\"deadline_ms\":-5}",
      "positive");
  // Non-finite literals die in the JSON layer before the deadline check.
  expect_rejected(
      "{\"op\":\"evaluate\",\"worksheet\":\"w\",\"deadline_ms\":1e999}",
      "number");
  expect_rejected(
      "{\"op\":\"evaluate\",\"worksheet\":\"w\",\"no_cache\":1}",
      "boolean");
}

TEST(SvcProtocol, RecoveredIdRidesOnTheError) {
  // The id is extracted before strict member validation, so even a
  // rejected request gets a correlatable error response.
  expect_rejected("{\"id\":\"r9\",\"op\":\"ping\",\"bogus\":true}",
                  "unknown request member", "r9");
}

TEST(SvcProtocol, EvaluateResponseIsValidJsonWithPerClockPayload) {
  const core::RatInputs inputs = core::pdf1d_inputs();
  const std::vector<core::ThroughputPrediction> preds =
      core::predict_all(inputs);
  const std::string line =
      evaluate_response("r1", fingerprint(inputs), inputs, preds);
  const io::JsonValue doc = io::parse_json(line);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->string, kProtocolSchema);
  EXPECT_EQ(doc.find("id")->string, "r1");
  EXPECT_EQ(doc.find("status")->string, "ok");
  EXPECT_EQ(doc.find("fingerprint")->string,
            fingerprint_hex(fingerprint(inputs)));
  ASSERT_TRUE(doc.find("inputs")->is_object());
  ASSERT_TRUE(doc.find("predictions")->is_array());
  EXPECT_EQ(doc.find("predictions")->items.size(), preds.size());
}

TEST(SvcProtocol, ErrorResponsesCarryCodeAndNullIdWhenUnknown) {
  const io::JsonValue doc = io::parse_json(
      error_response("", SvcErrorCode::kOverloaded, "queue full"));
  EXPECT_TRUE(doc.find("id")->is_null());
  EXPECT_EQ(doc.find("status")->string, "error");
  const io::JsonValue* err = doc.find("error");
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->find("code")->string, "E_OVERLOADED");
  EXPECT_EQ(err->find("message")->string, "queue full");
}

TEST(SvcProtocol, DiagnosticResponseReusesCoreErrorCodes) {
  core::Diagnostic d{"<request>", 3, 18, core::ParseErrorCode::kBadList,
                     "fclock_hz", "not a number: 'oops'"};
  const io::JsonValue doc = io::parse_json(diagnostic_response("r2", d));
  const io::JsonValue* err = doc.find("error");
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->find("code")->string, "E_BAD_LIST");
  const io::JsonValue* diag = err->find("diagnostic");
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->find("line")->number, 3.0);
  EXPECT_EQ(diag->find("column")->number, 18.0);
  EXPECT_EQ(diag->find("key")->string, "fclock_hz");
}

TEST(SvcProtocol, PingAndShutdownRender) {
  const io::JsonValue pong = io::parse_json(pong_response("p"));
  EXPECT_EQ(pong.find("op")->string, "ping");
  EXPECT_EQ(pong.find("status")->string, "ok");
  const io::JsonValue down = io::parse_json(shutdown_response("s"));
  EXPECT_EQ(down.find("op")->string, "shutdown");
  EXPECT_TRUE(down.find("draining")->boolean);
}

TEST(SvcProtocol, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(svc_error_code_name(SvcErrorCode::kBadRequest),
               "E_BAD_REQUEST");
  EXPECT_STREQ(svc_error_code_name(SvcErrorCode::kOverloaded),
               "E_OVERLOADED");
  EXPECT_STREQ(svc_error_code_name(SvcErrorCode::kDeadlineExpired),
               "E_DEADLINE_EXPIRED");
  EXPECT_STREQ(svc_error_code_name(SvcErrorCode::kShuttingDown),
               "E_SHUTTING_DOWN");
}

}  // namespace
}  // namespace rat::svc
