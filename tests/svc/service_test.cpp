// Service semantics: the exactly-one-response contract, cache hit/miss
// byte identity, bounded admission (E_OVERLOADED), deadlines, drain, and
// a concurrent hammer that runs TSan-clean.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/parameters.hpp"
#include "io/json.hpp"
#include "store/store.hpp"
#include "util/thread_pool.hpp"

namespace rat::svc {
namespace {

std::string evaluate_line(const std::string& id, const std::string& sheet,
                          const std::string& extra = "") {
  return "{\"id\":" + io::json_str(id) +
         ",\"op\":\"evaluate\",\"worksheet\":" + io::json_str(sheet) + extra +
         "}";
}

/// Collects responses from any thread and lets the test block until a
/// given count has arrived.
class Collector {
 public:
  std::function<void(std::string)> sink() {
    return [this](std::string line) {
      std::lock_guard lock(mu_);
      lines_.push_back(std::move(line));
      cv_.notify_all();
    };
  }

  std::vector<std::string> wait_for(std::size_t n) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return lines_.size() >= n; });
    return lines_;
  }

  std::size_t count() {
    std::lock_guard lock(mu_);
    return lines_.size();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
};

std::string error_code_of(const std::string& line) {
  const io::JsonValue doc = io::parse_json(line);
  const io::JsonValue* err = doc.find("error");
  return err ? err->find("code")->string : "";
}

/// Occupies every shared-pool worker until release() so admitted
/// evaluations queue behind it deterministically.
class PoolBlocker {
 public:
  PoolBlocker() {
    const std::size_t n = util::ThreadPool::shared().size();
    gate_ = release_.get_future().share();
    for (std::size_t i = 0; i < n; ++i)
      util::ThreadPool::shared().submit([this] {
        blocked_.fetch_add(1);
        gate_.wait();
      });
    while (blocked_.load() < n) std::this_thread::yield();
  }

  void release() {
    if (!released_) release_.set_value();
    released_ = true;
  }

  ~PoolBlocker() { release(); }

 private:
  std::promise<void> release_;
  std::shared_future<void> gate_;
  std::atomic<std::size_t> blocked_{0};
  bool released_ = false;
};

TEST(SvcService, CacheHitAndMissResponsesAreByteIdentical) {
  Service service({.cache_capacity = 16});
  Collector out;
  const std::string sheet = core::pdf1d_inputs().serialize();
  service.submit(evaluate_line("r", sheet), out.sink());
  out.wait_for(1);  // the miss completes before the hit is submitted
  service.submit(evaluate_line("r", sheet), out.sink());
  const auto lines = out.wait_for(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], lines[1]);  // the acceptance requirement, literally
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos);
  const Service::Stats st = service.stats();
  EXPECT_EQ(st.cache.misses, 1u);
  EXPECT_EQ(st.cache.hits, 1u);
  EXPECT_EQ(st.responses_ok, 2u);
}

TEST(SvcService, WarmStartedServiceAnswersByteIdenticallyToColdEvaluation) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "svc_service_warm_cache";
  std::filesystem::remove_all(dir);
  const std::string sheet = core::pdf1d_inputs().serialize();

  // Process 1: evaluate cold and persist.
  std::string cold;
  {
    Service service({.cache_capacity = 16, .cache_dir = dir.string()});
    Collector out;
    service.submit(evaluate_line("r", sheet), out.sink());
    cold = out.wait_for(1)[0];
    EXPECT_EQ(service.stats().cache_warmed, 0u);
  }
  // Process 2: the same request must hit the warmed cache and answer
  // byte-identically — the tentpole acceptance requirement, literally.
  {
    Service service({.cache_capacity = 16, .cache_dir = dir.string()});
    EXPECT_EQ(service.stats().cache_warmed, 1u);
    Collector out;
    service.submit(evaluate_line("r", sheet), out.sink());
    EXPECT_EQ(out.wait_for(1)[0], cold);
    const Service::Stats st = service.stats();
    EXPECT_EQ(st.cache.hits, 1u);
    EXPECT_EQ(st.cache.misses, 0u);  // never re-evaluated
  }
  std::filesystem::remove_all(dir);
}

TEST(SvcService, OnlyGenuineInsertsReachTheJournal) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "svc_service_journal_once";
  std::filesystem::remove_all(dir);
  const std::string sheet = core::pdf1d_inputs().serialize();
  {
    Service service({.cache_capacity = 16, .cache_dir = dir.string()});
    Collector out;
    // Same worksheet three times (serialized so each completes): one
    // insert, two cache hits.
    for (int i = 0; i < 3; ++i) {
      service.submit(evaluate_line("r" + std::to_string(i), sheet),
                     out.sink());
      out.wait_for(static_cast<std::size_t>(i) + 1);
    }
  }
  // The store must hold exactly one entry for the one distinct worksheet.
  store::DurableStore store(dir);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.open_info().journal_records, 1u);
}

TEST(SvcService, StatsExportCarriesCacheBytesAndHitRatio) {
  Service service({.cache_capacity = 16});
  Collector out;
  const std::string sheet = core::pdf1d_inputs().serialize();
  service.submit(evaluate_line("miss", sheet), out.sink());
  out.wait_for(1);
  service.submit(evaluate_line("hit", sheet), out.sink());
  out.wait_for(2);
  service.submit("{\"id\":\"s\",\"op\":\"stats\"}", out.sink());
  const auto lines = out.wait_for(3);
  const io::JsonValue doc = io::parse_json(lines[2]);
  const io::JsonValue* cache = doc.find("stats")->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("hit_ratio")->number, 0.5);
  EXPECT_GT(cache->find("bytes")->number, 0.0);
  ASSERT_NE(cache->find("warmed"), nullptr);
  EXPECT_EQ(cache->find("warmed")->number, 0.0);
}

TEST(SvcService, NoCacheBypassesTheCache) {
  Service service({.cache_capacity = 16});
  Collector out;
  const std::string sheet = core::pdf1d_inputs().serialize();
  service.submit(evaluate_line("a", sheet, ",\"no_cache\":true"), out.sink());
  service.submit(evaluate_line("b", sheet, ",\"no_cache\":true"), out.sink());
  service.drain();
  const Service::Stats st = service.stats();
  EXPECT_EQ(st.cache.hits, 0u);
  EXPECT_EQ(st.cache.misses, 0u);
  EXPECT_EQ(st.cache.size, 0u);
  EXPECT_EQ(st.responses_ok, 2u);
}

TEST(SvcService, OverloadedRequestsGetStructuredRejection) {
  PoolBlocker blocker;  // nothing admitted can start running
  Service service({.queue_capacity = 2});
  Collector out;
  const std::string sheet = core::pdf1d_inputs().serialize();
  service.submit(evaluate_line("a", sheet), out.sink());
  service.submit(evaluate_line("b", sheet), out.sink());
  // Queue full (2 queued, 0 running): the third is rejected inline, not
  // buffered.
  service.submit(evaluate_line("c", sheet), out.sink());
  const auto rejected = out.wait_for(1);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(error_code_of(rejected[0]), "E_OVERLOADED");
  EXPECT_NE(rejected[0].find("\"id\":\"c\""), std::string::npos);
  EXPECT_EQ(service.stats().rejected_overloaded, 1u);

  blocker.release();
  service.drain();
  const auto all = out.wait_for(3);
  EXPECT_EQ(all.size(), 3u);  // exactly one response per request
  EXPECT_EQ(service.stats().responses_ok, 2u);
}

TEST(SvcService, ExpiredDeadlineIsReportedNotEvaluated) {
  PoolBlocker blocker;
  Service service;
  Collector out;
  service.submit(
      evaluate_line("d", core::pdf1d_inputs().serialize(),
                    ",\"deadline_ms\":1"),
      out.sink());
  // Hold the pool well past the deadline, then let the task run.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  blocker.release();
  const auto lines = out.wait_for(1);
  EXPECT_EQ(error_code_of(lines[0]), "E_DEADLINE_EXPIRED");
  service.drain();
  EXPECT_EQ(service.stats().deadline_expired, 1u);
  EXPECT_EQ(service.stats().cache.misses, 0u);  // never evaluated
}

TEST(SvcService, HugeDeadlineIsClampedNotUndefined) {
  // Regression: deadline_ms * 1e6 used to be cast to uint64_t unclamped,
  // which is UB for huge finite values like 1e308 (check.sh runs this
  // suite under UBSan to keep it honest). Clamped, it just means "no
  // practical deadline" and the evaluation succeeds.
  Service service;
  Collector out;
  service.submit(evaluate_line("huge", core::pdf1d_inputs().serialize(),
                               ",\"deadline_ms\":1e308"),
                 out.sink());
  const auto lines = out.wait_for(1);
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos) << lines[0];
  service.drain();
  EXPECT_EQ(service.stats().deadline_expired, 0u);
}

TEST(SvcService, MalformedWorksheetYieldsCoreDiagnostic) {
  Service service;
  Collector out;
  service.submit(
      evaluate_line("bad", "name = broken\nfclock_hz = 75e6 oops\n"),
      out.sink());
  service.drain();
  const auto lines = out.wait_for(1);
  const io::JsonValue doc = io::parse_json(lines[0]);
  const io::JsonValue* err = doc.find("error");
  ASSERT_NE(err, nullptr);
  // The worksheet E_* taxonomy, with the full structured diagnostic.
  EXPECT_EQ(err->find("code")->string, "E_BAD_LIST");
  const io::JsonValue* diag = err->find("diagnostic");
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->find("file")->string, "<request>");
  EXPECT_EQ(diag->find("line")->number, 2.0);
  EXPECT_EQ(diag->find("key")->string, "fclock_hz");
}

TEST(SvcService, ValidationFailureMapsToInvalidValue) {
  Service service;
  Collector out;
  core::RatInputs in = core::pdf1d_inputs();
  in.comm.alpha_write = 2.0;  // alphas live in (0, 1]
  service.submit(evaluate_line("v", in.serialize()), out.sink());
  service.drain();
  EXPECT_EQ(error_code_of(out.wait_for(1)[0]), "E_INVALID_VALUE");
}

TEST(SvcService, ProtocolErrorsAreAnsweredInline) {
  Service service;
  Collector out;
  service.submit("{\"op\":\"evaluate\"}", out.sink());
  service.submit("{nope", out.sink());
  // Inline: both responses are already there, no drain needed.
  ASSERT_EQ(out.count(), 2u);
  for (const std::string& line : out.wait_for(2))
    EXPECT_EQ(error_code_of(line), "E_BAD_REQUEST");
  EXPECT_EQ(service.stats().responses_error, 2u);
}

TEST(SvcService, DrainingRejectsNewWorkAndShutdownOpTriggersHandler) {
  Service service;
  Collector out;
  std::atomic<int> handler_calls{0};
  service.set_shutdown_handler([&] { handler_calls.fetch_add(1); });
  service.submit("{\"id\":\"s\",\"op\":\"shutdown\"}", out.sink());
  EXPECT_EQ(handler_calls.load(), 1);
  // The handler owns the drain (as the server does); nothing drains yet.
  EXPECT_FALSE(service.draining());
  service.begin_drain();
  service.submit(evaluate_line("late", core::pdf1d_inputs().serialize()),
                 out.sink());
  const auto lines = out.wait_for(2);
  EXPECT_EQ(error_code_of(lines[1]), "E_SHUTTING_DOWN");
  EXPECT_EQ(service.stats().rejected_draining, 1u);
  service.wait_drained();
}

TEST(SvcService, PingAndStatsAnswerInline) {
  Service service;
  Collector out;
  service.submit("{\"id\":\"p\",\"op\":\"ping\"}", out.sink());
  service.submit("{\"id\":\"s\",\"op\":\"stats\"}", out.sink());
  ASSERT_EQ(out.count(), 2u);
  const auto lines = out.wait_for(2);
  EXPECT_NE(lines[0].find("\"op\":\"ping\""), std::string::npos);
  const io::JsonValue stats = io::parse_json(lines[1]);
  ASSERT_TRUE(stats.find("stats") != nullptr);
  EXPECT_EQ(stats.find("stats")->find("cache")->find("capacity")->number,
            1024.0);
}

// The TSan target: many threads pipelining a mix of good, cached, and
// malformed requests while the cache, admission counters and stats are
// hammered concurrently. Every request must get exactly one response.
TEST(SvcService, ConcurrentHammerAnswersEveryRequestExactlyOnce) {
  Service service({.cache_capacity = 8, .queue_capacity = 1024});
  Collector out;
  const std::vector<std::string> sheets = {
      core::pdf1d_inputs().serialize(), core::pdf2d_inputs().serialize(),
      core::md_inputs().serialize(),
      "name = broken\nfclock_hz = 75e6 oops\n"};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string id =
            "t" + std::to_string(t) + "." + std::to_string(i);
        service.submit(evaluate_line(id, sheets[i % sheets.size()]),
                       out.sink());
        if (i % 8 == 0)
          service.submit("{\"id\":\"s\",\"op\":\"stats\"}", out.sink());
      }
    });
  for (std::thread& c : clients) c.join();
  service.drain();
  const std::size_t expected =
      kThreads * (kPerThread + kPerThread / 8);
  EXPECT_EQ(out.wait_for(expected).size(), expected);
  const Service::Stats st = service.stats();
  EXPECT_EQ(st.requests, expected);
  EXPECT_EQ(st.responses_ok + st.responses_error, expected);
  EXPECT_GT(st.cache.hits, 0u);
  EXPECT_EQ(st.in_flight, 0u);
}

TEST(SvcService, DestructorDrains) {
  Collector out;
  {
    Service service;
    service.submit(evaluate_line("d", core::pdf1d_inputs().serialize()),
                   out.sink());
  }  // ~Service waits for the in-flight evaluation
  EXPECT_EQ(out.count(), 1u);
}

}  // namespace
}  // namespace rat::svc
