// rat_router front-end: fingerprint routing units, byte-identity of
// routed vs direct responses, E_OVERLOADED propagation, worker-kill
// respawn with every admitted request still answered, fan-out stats
// aggregation, fast-death shard abandonment, and shutdown-op drain.
//
// The process-level tests supervise real rat_serve workers (RAT_SERVE_BIN
// points at the build-tree binary) behind an in-process Router.
#include "svc/router.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <future>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/parameters.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "svc/fingerprint.hpp"
#include "svc/service.hpp"

namespace rat::svc {
namespace {

/// Blocking line-oriented loopback client (same shape as the server
/// suite's).
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
        << std::strerror(errno);
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    std::string out = line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n =
          ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  std::optional<std::string> read_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string evaluate_line(const std::string& id, const std::string& sheet,
                          const std::string& extra = "") {
  return "{\"id\":" + io::json_str(id) +
         ",\"op\":\"evaluate\",\"worksheet\":" + io::json_str(sheet) + extra +
         "}";
}

RouterConfig worker_fleet(std::size_t n,
                          std::vector<std::string> extra_flags = {}) {
  RouterConfig cfg;
  cfg.n_workers = n;
  cfg.worker_argv = {RAT_SERVE_BIN, "--stdio", "--no-tcp"};
  for (auto& f : extra_flags) cfg.worker_argv.push_back(std::move(f));
  return cfg;
}

/// Submit one line to an in-process Service and wait for its response —
/// the "direct rat_serve" bytes every routed response must match.
std::string direct_response(Service& service, const std::string& line) {
  std::promise<std::string> promise;
  auto future = promise.get_future();
  service.submit(line,
                 [&promise](std::string l) { promise.set_value(std::move(l)); });
  return future.get();
}

bool wait_until(const std::function<bool()>& cond, int timeout_ms = 10000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

Request evaluate_request(const std::string& sheet) {
  Request req;
  req.op = Request::Op::kEvaluate;
  req.worksheet = sheet;
  req.has_worksheet = true;
  return req;
}

// ---- Routing-helper units ----

TEST(SvcRouter, RouteFingerprintMatchesCanonicalFingerprint) {
  const core::RatInputs inputs = core::pdf1d_inputs();
  EXPECT_EQ(route_fingerprint(evaluate_request(inputs.serialize())),
            fingerprint(inputs));
  // Different designs shard differently (FNV over distinct canonical
  // text; equality would be a 2^-64 fluke).
  EXPECT_NE(route_fingerprint(evaluate_request(inputs.serialize())),
            route_fingerprint(
                evaluate_request(core::md_inputs().serialize())));
}

TEST(SvcRouter, RouteFingerprintFallsBackForUnparseableAndFiles) {
  // Unparseable text must not throw out of the router; repeats of the
  // same bad request still pin to one shard via the raw-text hash.
  const Request bad = evaluate_request("definitely not a worksheet");
  EXPECT_EQ(route_fingerprint(bad), fnv1a64(bad.worksheet));

  Request file;
  file.op = Request::Op::kEvaluate;
  file.file = "/some/path.rat";
  file.has_file = true;
  EXPECT_EQ(route_fingerprint(file), fnv1a64("file:/some/path.rat"));
}

TEST(SvcRouter, ForwardEncodingPreservesTheRequest) {
  Request req = evaluate_request(core::pdf2d_inputs().serialize());
  req.id = "client-id";
  req.deadline_ms = 1500.0;
  req.no_cache = true;
  const Request back = parse_request(encode_forward("t2a", req));
  EXPECT_EQ(back.id, "t2a");
  EXPECT_EQ(back.op, Request::Op::kEvaluate);
  EXPECT_EQ(back.worksheet, req.worksheet);
  EXPECT_TRUE(back.has_worksheet);
  EXPECT_FALSE(back.has_file);
  EXPECT_EQ(back.deadline_ms, 1500.0);
  EXPECT_TRUE(back.no_cache);
}

TEST(SvcRouter, ResponseIdSpliceReproducesDirectBytes) {
  // A worker answers with the router's token as its id; splicing the
  // original id back must yield the exact bytes the protocol renderers
  // produce for that id — including the empty-id => null spelling.
  EXPECT_EQ(response_token(pong_response("t1f")), "t1f");
  EXPECT_EQ(restore_response_id(pong_response("t1f"), "real \"id\""),
            pong_response("real \"id\""));
  EXPECT_EQ(restore_response_id(pong_response("t0"), ""), pong_response(""));
  const std::string err =
      error_response("t3", SvcErrorCode::kOverloaded, "busy");
  EXPECT_EQ(restore_response_id(err, "x"),
            error_response("x", SvcErrorCode::kOverloaded, "busy"));
  // Non-protocol output carries no token and is dropped by the caller.
  EXPECT_EQ(response_token("garbage"), "");
  EXPECT_EQ(response_token("{\"schema\":\"rat.svc.v1\",\"id\":null"), "");
}

// ---- Fleet end-to-end ----

TEST(SvcRouter, RoutedResponsesMatchDirectServiceByteForByte) {
  Router router(worker_fleet(3));
  router.start();
  Service direct;  // the reference bytes: same code the workers run

  Client client(router.port());
  const std::vector<std::string> lines = {
      evaluate_line("ok1", core::pdf1d_inputs().serialize()),
      evaluate_line("ok2", core::md_inputs().serialize()),
      evaluate_line("bad-sheet", "not a worksheet at all"),
      "{\"id\":\"bad-req\",\"op\":\"evaluate\"}",
      "{\"id\":\"png\",\"op\":\"ping\"}",
      "{\"op\":\"ping\"}",  // empty id must round-trip as null
  };
  std::map<std::string, std::string> routed;  // line -> response
  for (const auto& line : lines) {
    client.send_line(line);
    const auto got = client.read_line();
    ASSERT_TRUE(got.has_value()) << line;
    routed[line] = *got;
  }
  for (const auto& line : lines)
    EXPECT_EQ(routed[line], direct_response(direct, line)) << line;

  router.trigger_stop();
  router.run();
}

TEST(SvcRouter, DuplicateRequestsStayOnOneShardAndHitItsCache) {
  Router router(worker_fleet(4));
  router.start();
  Client client(router.port());

  const std::string sheet = core::pdf1d_inputs().serialize();
  client.send_line(evaluate_line("m", sheet));
  const auto miss = client.read_line();
  ASSERT_TRUE(miss.has_value());
  client.send_line(evaluate_line("h", sheet));
  const auto hit = client.read_line();
  ASSERT_TRUE(hit.has_value());
  // Same shard owner, so the repeat is a cache hit — and hit/miss are
  // byte-identical apart from the echoed id.
  EXPECT_EQ(restore_response_id(*miss, "x"), restore_response_id(*hit, "x"));

  client.send_line("{\"id\":\"st\",\"op\":\"stats\"}");
  const auto stats = client.read_line();
  ASSERT_TRUE(stats.has_value());
  const io::JsonValue doc = io::parse_json(*stats);
  const io::JsonValue* agg = doc.find("stats");
  ASSERT_NE(agg, nullptr);
  const io::JsonValue* cache = agg->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("hits")->number, 1.0);    // summed across workers
  EXPECT_EQ(cache->find("misses")->number, 1.0);  // only the owner missed
  const io::JsonValue* rt = doc.find("router");
  ASSERT_NE(rt, nullptr);
  EXPECT_EQ(rt->find("workers")->number, 4.0);

  router.trigger_stop();
  router.run();
}

TEST(SvcRouter, PingFansOutAndAnswersWithDirectBytes) {
  Router router(worker_fleet(2));
  router.start();
  Client client(router.port());
  client.send_line("{\"id\":\"p\",\"op\":\"ping\"}");
  const auto line = client.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, pong_response("p"));  // aggregation leaves no trace
  router.trigger_stop();
  router.run();
}

TEST(SvcRouter, WorkerOverloadPropagatesVerbatim) {
  // Workers admit one request at a time; a pipelined no_cache burst on
  // one shard must overflow, and the worker's E_OVERLOADED line reaches
  // the client byte-identical to a direct server's rejection.
  Router router(worker_fleet(2, {"--queue-capacity=1"}));
  router.start();
  Client client(router.port());

  const std::string sheet = core::pdf2d_inputs().serialize();
  constexpr int kBurst = 200;
  for (int i = 0; i < kBurst; ++i)
    client.send_line(
        evaluate_line("b" + std::to_string(i), sheet, ",\"no_cache\":true"));

  int ok = 0, overloaded = 0;
  std::vector<std::string> ids;
  for (int i = 0; i < kBurst; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    const io::JsonValue doc = io::parse_json(*line);
    const std::string id = doc.find("id")->string;
    ids.push_back(id);
    if (doc.find("status")->string == "ok") {
      ++ok;
    } else {
      ++overloaded;
      EXPECT_EQ(*line,
                error_response(id, SvcErrorCode::kOverloaded,
                               "admission queue full (1 requests queued or "
                               "running); retry later"));
    }
  }
  EXPECT_EQ(ok + overloaded, kBurst);  // exactly one response each
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_GE(ok, 1);
  EXPECT_GE(overloaded, 1) << "burst never tripped worker admission";

  router.trigger_stop();
  router.run();
}

TEST(SvcRouter, KilledWorkerIsRespawnedAndEveryRequestIsAnswered) {
  Router router(worker_fleet(2));
  router.start();
  Client client(router.port());

  // Everything routes to the sheet's shard owner; kill exactly that
  // worker mid-burst.
  const std::string sheet = core::md_inputs().serialize();
  const std::size_t slot = static_cast<std::size_t>(
      route_fingerprint(evaluate_request(sheet)) % 2);
  constexpr int kBurst = 120;
  for (int i = 0; i < kBurst; ++i)
    client.send_line(
        evaluate_line("k" + std::to_string(i), sheet, ",\"no_cache\":true"));

  std::vector<std::string> responses;
  for (int i = 0; i < 5; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    responses.push_back(*line);
  }
  const pid_t victim = router.worker_pids()[slot];
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  // Every admitted request is still answered exactly once: in-flight
  // requests re-forward to the respawned worker, whose deterministic
  // re-evaluation reproduces the same bytes.
  for (int i = 5; i < kBurst; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value()) << "request lost across worker death";
    responses.push_back(*line);
  }
  std::vector<std::string> ids;
  for (const auto& line : responses) {
    const io::JsonValue doc = io::parse_json(line);
    EXPECT_EQ(doc.find("status")->string, "ok") << line;
    ids.push_back(doc.find("id")->string);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kBurst));
  // All evaluations of one worksheet agree byte for byte, dead worker
  // or not.
  for (const auto& line : responses)
    EXPECT_EQ(restore_response_id(line, "x"),
              restore_response_id(responses.front(), "x"));

  EXPECT_TRUE(wait_until([&] { return router.stats().respawns >= 1; }));
  EXPECT_TRUE(
      wait_until([&] { return router.worker_pids()[slot] > 0; }));
  EXPECT_NE(router.worker_pids()[slot], victim);

  router.trigger_stop();
  router.run();
  EXPECT_GE(router.stats().worker_deaths, 1u);
}

TEST(SvcRouter, BrokenWorkerBinaryAbandonsTheShardAfterFastDeaths) {
  // A worker that can never start (exec fails => _exit(127)) must not
  // respawn-storm: after max_fast_deaths consecutive no-response deaths
  // the shard is abandoned and its requests get a structured E_INTERNAL.
  RouterConfig cfg;
  cfg.n_workers = 1;
  cfg.worker_argv = {"/nonexistent/rat_serve_missing"};
  cfg.max_fast_deaths = 3;
  Router router(cfg);
  router.start();

  EXPECT_TRUE(wait_until([&] {
    return router.stats().worker_deaths >=
           static_cast<std::uint64_t>(cfg.max_fast_deaths);
  }));
  EXPECT_TRUE(wait_until([&] { return router.worker_pids()[0] < 0; }));
  // Deaths stop once abandoned (respawns = deaths - 1, bounded).
  EXPECT_LE(router.stats().respawns,
            static_cast<std::uint64_t>(cfg.max_fast_deaths));

  Client client(router.port());
  client.send_line(evaluate_line("x", core::pdf1d_inputs().serialize()));
  const auto line = client.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("E_INTERNAL"), std::string::npos);
  EXPECT_NE(line->find("unavailable"), std::string::npos);
  // The control plane survives a dead fleet: ping still answers (an
  // empty fan-out short-circuits).
  client.send_line("{\"id\":\"p\",\"op\":\"ping\"}");
  EXPECT_EQ(client.read_line(), pong_response("p"));

  router.trigger_stop();
  router.run();
}

TEST(SvcRouter, ShutdownOpDrainsTheWholeFleet) {
  Router router(worker_fleet(2));
  router.start();
  std::thread runner([&] { router.run(); });
  Client client(router.port());
  client.send_line(evaluate_line("w", core::pdf1d_inputs().serialize()));
  ASSERT_TRUE(client.read_line().has_value());
  client.send_line("{\"id\":\"bye\",\"op\":\"shutdown\"}");
  const auto ack = client.read_line();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(*ack, shutdown_response("bye"));
  runner.join();  // drain: workers EOF out, reaped, loop exits
  EXPECT_FALSE(client.read_line().has_value());
}

TEST(SvcRouter, DrainFlushesAggregatedFleetStatsIntoMetrics) {
  obs::Registry::global().reset();
  obs::set_enabled(true);
  {
    Router router(worker_fleet(2));
    router.start();
    Client client(router.port());
    client.send_line(evaluate_line("a", core::pdf1d_inputs().serialize()));
    ASSERT_TRUE(client.read_line().has_value());
    client.send_line(evaluate_line("b", core::pdf1d_inputs().serialize()));
    ASSERT_TRUE(client.read_line().has_value());
    router.trigger_stop();
    router.run();
  }
  obs::set_enabled(false);

  // The drain-time sweep summed the workers' own counters into
  // svc.fleet.* gauges before their stdins closed, so the --metrics
  // export describes the whole fleet, not just the front-end. The two
  // evaluates plus the sweep's own stats sub-requests all count.
  const auto gauges = obs::Registry::global().gauges();
  ASSERT_NE(gauges.find("svc.fleet.requests"), gauges.end());
  EXPECT_GE(gauges.at("svc.fleet.requests"), 2.0);
  EXPECT_EQ(gauges.at("svc.fleet.workers_alive"), 2.0);
  ASSERT_NE(gauges.find("svc.fleet.cache.misses"), gauges.end());
  EXPECT_GE(gauges.at("svc.fleet.cache.misses"), 1.0);
  obs::Registry::global().reset();
}

}  // namespace
}  // namespace rat::svc
