// Canonical worksheet fingerprinting: the cache key must depend on the
// parsed inputs only — never on how the worksheet text was formatted —
// and must differ whenever any input field differs.
#include "svc/fingerprint.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/parameters.hpp"

namespace rat::svc {
namespace {

void expect_same_inputs(const core::RatInputs& a, const core::RatInputs& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.dataset.elements_in, b.dataset.elements_in);
  EXPECT_EQ(a.dataset.elements_out, b.dataset.elements_out);
  EXPECT_EQ(a.dataset.bytes_per_element, b.dataset.bytes_per_element);
  EXPECT_EQ(a.comm.ideal_bw_bytes_per_sec, b.comm.ideal_bw_bytes_per_sec);
  EXPECT_EQ(a.comm.alpha_write, b.comm.alpha_write);
  EXPECT_EQ(a.comm.alpha_read, b.comm.alpha_read);
  EXPECT_EQ(a.comp.ops_per_element, b.comp.ops_per_element);
  EXPECT_EQ(a.comp.throughput_ops_per_cycle, b.comp.throughput_ops_per_cycle);
  ASSERT_EQ(a.comp.fclock_hz.size(), b.comp.fclock_hz.size());
  for (std::size_t i = 0; i < a.comp.fclock_hz.size(); ++i)
    EXPECT_EQ(a.comp.fclock_hz[i], b.comp.fclock_hz[i]);
  EXPECT_EQ(a.software.tsoft_sec, b.software.tsoft_sec);
  EXPECT_EQ(a.software.n_iterations, b.software.n_iterations);
}

// The canonicalization round-trip: serialize the parsed inputs, re-parse
// the serialization, and land on identical inputs and an identical cache
// fingerprint. Exercised on all three paper case studies.
TEST(SvcFingerprint, SerializeParseRoundTripPreservesFingerprint) {
  for (const core::RatInputs& original :
       {core::pdf1d_inputs(), core::pdf2d_inputs(), core::md_inputs()}) {
    const core::RatInputs reparsed =
        core::RatInputs::parse(original.serialize());
    expect_same_inputs(original, reparsed);
    EXPECT_EQ(canonical_text(original), canonical_text(reparsed));
    EXPECT_EQ(fingerprint(original), fingerprint(reparsed));
  }
}

TEST(SvcFingerprint, FormattingDoesNotChangeFingerprint) {
  const std::string base =
      "name = fmt\n"
      "elements_in = 512\n"
      "elements_out = 1\n"
      "bytes_per_element = 4\n"
      "ideal_bw_bytes_per_sec = 1e9\n"
      "alpha_write = 0.37\n"
      "alpha_read = 0.16\n"
      "ops_per_element = 768\n"
      "throughput_ops_per_cycle = 20\n"
      "fclock_hz = 75e6 100e6 150e6\n"
      "tsoft_sec = 0.578\n"
      "n_iterations = 400\n";
  // Same design: reordered keys, comments, CRLF endings, extra spaces,
  // and equivalent number spellings ("+7.5e7" vs "75e6"-scaled forms).
  const std::string variant =
      "# a comment\r\n"
      "n_iterations =   400\r\n"
      "tsoft_sec = 578e-3\r\n"
      "fclock_hz =    7.5e7 1e8 15e7\r\n"
      "throughput_ops_per_cycle = 2e1\r\n"
      "ops_per_element = 768.0\r\n"
      "alpha_read = 1.6e-1\r\n"
      "alpha_write = 0.3700\r\n"
      "ideal_bw_bytes_per_sec = 1000000000\r\n"
      "bytes_per_element = 4.0\r\n"
      "elements_out = 1\r\n"
      "elements_in = 512\r\n"
      "name = fmt\r\n";
  const core::RatInputs a = core::RatInputs::parse(base);
  const core::RatInputs b = core::RatInputs::parse(variant);
  EXPECT_EQ(canonical_text(a), canonical_text(b));
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(SvcFingerprint, EveryFieldChangesTheFingerprint) {
  const core::RatInputs base = core::pdf1d_inputs();
  std::vector<core::RatInputs> mutants(11, base);
  mutants[0].name += "!";
  mutants[1].dataset.elements_in += 1;
  mutants[2].dataset.elements_out += 1;
  mutants[3].dataset.bytes_per_element += 1.0;
  mutants[4].comm.ideal_bw_bytes_per_sec *= 2.0;
  mutants[5].comm.alpha_write += 0.01;
  mutants[6].comm.alpha_read += 0.01;
  mutants[7].comp.ops_per_element += 1.0;
  mutants[8].comp.throughput_ops_per_cycle += 1.0;
  mutants[9].comp.fclock_hz.push_back(200e6);
  mutants[10].software.tsoft_sec += 0.5;
  for (const core::RatInputs& m : mutants) {
    EXPECT_NE(canonical_text(base), canonical_text(m));
    EXPECT_NE(fingerprint(base), fingerprint(m));
  }
}

TEST(SvcFingerprint, ClockListOrderIsSignificant) {
  // predict_all answers one prediction per clock in worksheet order, so a
  // reordered clock list is a different request, not a cache hit.
  core::RatInputs a = core::pdf1d_inputs();
  core::RatInputs b = a;
  std::swap(b.comp.fclock_hz.front(), b.comp.fclock_hz.back());
  EXPECT_NE(canonical_text(a), canonical_text(b));
}

TEST(SvcFingerprint, Fnv1a64KnownVectors) {
  // Published FNV-1a test vectors (offset basis for "", and "a").
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
}

TEST(SvcFingerprint, HexIsSixteenLowercaseDigits) {
  EXPECT_EQ(fingerprint_hex(0), "0000000000000000");
  EXPECT_EQ(fingerprint_hex(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_EQ(fingerprint_hex(~0ull), "ffffffffffffffff");
}

}  // namespace
}  // namespace rat::svc
