// Loopback TCP transport: end-to-end request/response, pipelining,
// oversize-line rejection, and graceful drain delivering every admitted
// response before the sockets close.
#include "svc/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/parameters.hpp"
#include "io/json.hpp"

namespace rat::svc {
namespace {

/// Blocking line-oriented loopback client.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
        << std::strerror(errno);
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    std::string out = line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::send(fd_, out.data() + off, out.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Next '\n'-terminated line, or nullopt on EOF.
  std::optional<std::string> read_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string evaluate_line(const std::string& id, const std::string& sheet) {
  return "{\"id\":" + io::json_str(id) +
         ",\"op\":\"evaluate\",\"worksheet\":" + io::json_str(sheet) + "}";
}

TEST(SvcServer, EvaluateOverLoopbackMatchesCacheSemantics) {
  Service service;
  Server server(service, {.port = 0});
  server.start();
  ASSERT_GT(server.port(), 0);

  Client client(server.port());
  const std::string sheet = core::pdf1d_inputs().serialize();
  client.send_line(evaluate_line("a", sheet));
  const auto first = client.read_line();
  ASSERT_TRUE(first.has_value());
  client.send_line(evaluate_line("a", sheet));
  const auto second = client.read_line();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);  // byte-identical across miss and hit
  EXPECT_EQ(service.stats().cache.hits, 1u);

  server.trigger_stop();
  server.run();
  EXPECT_FALSE(client.read_line().has_value());  // server closed the socket
}

TEST(SvcServer, PipelinedRequestsEachGetOneResponse) {
  Service service;
  Server server(service, {.port = 0});
  server.start();
  Client client(server.port());
  const std::string sheet = core::pdf2d_inputs().serialize();
  constexpr int kRequests = 20;
  for (int i = 0; i < kRequests; ++i)
    client.send_line(evaluate_line("r" + std::to_string(i), sheet));
  std::vector<std::string> ids;
  for (int i = 0; i < kRequests; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    const io::JsonValue doc = io::parse_json(*line);
    EXPECT_EQ(doc.find("status")->string, "ok");
    ids.push_back(doc.find("id")->string);
  }
  // Out-of-order delivery is legal; every id must appear exactly once.
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kRequests));
  server.trigger_stop();
  server.run();
}

TEST(SvcServer, MultipleConcurrentClients) {
  Service service;
  Server server(service, {.port = 0});
  server.start();
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&, c] {
      Client client(server.port());
      client.send_line(evaluate_line(
          "c" + std::to_string(c), core::md_inputs().serialize()));
      const auto line = client.read_line();
      if (line && line->find("\"status\":\"ok\"") != std::string::npos)
        ok.fetch_add(1);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
  server.trigger_stop();
  server.run();
}

TEST(SvcServer, OversizeLineIsRejectedWithStructuredError) {
  Service service;
  Server server(service, {.port = 0, .max_line_bytes = 128});
  server.start();
  Client client(server.port());
  client.send_line(evaluate_line("big", std::string(1024, 'x')));
  const auto line = client.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("E_BAD_REQUEST"), std::string::npos);
  EXPECT_NE(line->find("exceeds"), std::string::npos);
  EXPECT_FALSE(client.read_line().has_value());  // connection closed
  server.trigger_stop();
  server.run();
}

TEST(SvcServer, DrainDeliversEveryAdmittedResponse) {
  Service service;
  Server server(service, {.port = 0});
  server.start();
  Client client(server.port());
  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i)
    client.send_line(evaluate_line("d" + std::to_string(i),
                                   core::pdf1d_inputs().serialize()));
  // Stop immediately: whatever was admitted must still be answered
  // through the open socket before it closes.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.trigger_stop();
  server.run();

  int answered = 0;
  while (client.read_line().has_value()) ++answered;
  const Service::Stats st = service.stats();
  EXPECT_EQ(static_cast<std::uint64_t>(answered),
            st.responses_ok + st.responses_error);
  EXPECT_EQ(st.in_flight, 0u);
  // No silent drops: every request the server read was answered.
  EXPECT_EQ(st.requests, st.responses_ok + st.responses_error);
}

TEST(SvcServer, ShutdownOpDrainsTheWholeServer) {
  Service service;
  Server server(service, {.port = 0});
  server.start();
  std::thread runner([&] { server.run(); });
  Client client(server.port());
  client.send_line(evaluate_line("w", core::pdf1d_inputs().serialize()));
  ASSERT_TRUE(client.read_line().has_value());
  client.send_line("{\"id\":\"bye\",\"op\":\"shutdown\"}");
  const auto ack = client.read_line();
  ASSERT_TRUE(ack.has_value());
  EXPECT_NE(ack->find("\"draining\":true"), std::string::npos);
  runner.join();  // the shutdown op triggered the server's stop
  EXPECT_FALSE(client.read_line().has_value());
}

}  // namespace
}  // namespace rat::svc
