// Loopback TCP transport: end-to-end request/response, pipelining,
// oversize-line rejection, and graceful drain delivering every admitted
// response before the sockets close.
#include "svc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/parameters.hpp"
#include "io/json.hpp"

namespace rat::svc {
namespace {

/// Blocking line-oriented loopback client.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
        << std::strerror(errno);
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    std::string out = line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::send(fd_, out.data() + off, out.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Next '\n'-terminated line, or nullopt on EOF.
  std::optional<std::string> read_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string evaluate_line(const std::string& id, const std::string& sheet) {
  return "{\"id\":" + io::json_str(id) +
         ",\"op\":\"evaluate\",\"worksheet\":" + io::json_str(sheet) + "}";
}

/// Raw connected socket; rcvbuf (set before connect so it sizes the
/// receive window) shrinks how much the kernel buffers for a client
/// that never reads, making slow-client tests deterministic.
int connect_raw(int port, int rcvbuf = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf > 0)
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  return fd;
}

/// Best-effort pipelined send; stops quietly when the server hangs up
/// mid-stream (expected once it drops us as a slow client).
void send_best_effort(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

int thread_count() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line))
    if (line.rfind("Threads:", 0) == 0)
      return std::atoi(line.c_str() + 8);
  return -1;
}

bool wait_until(const std::function<bool()>& cond, int timeout_ms = 10000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

TEST(SvcServer, EvaluateOverLoopbackMatchesCacheSemantics) {
  Service service;
  Server server(service, {.port = 0});
  server.start();
  ASSERT_GT(server.port(), 0);

  Client client(server.port());
  const std::string sheet = core::pdf1d_inputs().serialize();
  client.send_line(evaluate_line("a", sheet));
  const auto first = client.read_line();
  ASSERT_TRUE(first.has_value());
  client.send_line(evaluate_line("a", sheet));
  const auto second = client.read_line();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);  // byte-identical across miss and hit
  EXPECT_EQ(service.stats().cache.hits, 1u);

  server.trigger_stop();
  server.run();
  EXPECT_FALSE(client.read_line().has_value());  // server closed the socket
}

TEST(SvcServer, PipelinedRequestsEachGetOneResponse) {
  Service service;
  Server server(service, {.port = 0});
  server.start();
  Client client(server.port());
  const std::string sheet = core::pdf2d_inputs().serialize();
  constexpr int kRequests = 20;
  for (int i = 0; i < kRequests; ++i)
    client.send_line(evaluate_line("r" + std::to_string(i), sheet));
  std::vector<std::string> ids;
  for (int i = 0; i < kRequests; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    const io::JsonValue doc = io::parse_json(*line);
    EXPECT_EQ(doc.find("status")->string, "ok");
    ids.push_back(doc.find("id")->string);
  }
  // Out-of-order delivery is legal; every id must appear exactly once.
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kRequests));
  server.trigger_stop();
  server.run();
}

TEST(SvcServer, MultipleConcurrentClients) {
  Service service;
  Server server(service, {.port = 0});
  server.start();
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&, c] {
      Client client(server.port());
      client.send_line(evaluate_line(
          "c" + std::to_string(c), core::md_inputs().serialize()));
      const auto line = client.read_line();
      if (line && line->find("\"status\":\"ok\"") != std::string::npos)
        ok.fetch_add(1);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
  server.trigger_stop();
  server.run();
}

TEST(SvcServer, OversizeLineIsRejectedWithStructuredError) {
  Service service;
  Server server(service, {.port = 0, .max_line_bytes = 128});
  server.start();
  Client client(server.port());
  client.send_line(evaluate_line("big", std::string(1024, 'x')));
  const auto line = client.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("E_BAD_REQUEST"), std::string::npos);
  EXPECT_NE(line->find("exceeds"), std::string::npos);
  EXPECT_FALSE(client.read_line().has_value());  // connection closed
  server.trigger_stop();
  server.run();
}

TEST(SvcServer, DrainDeliversEveryAdmittedResponse) {
  Service service;
  Server server(service, {.port = 0});
  server.start();
  Client client(server.port());
  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i)
    client.send_line(evaluate_line("d" + std::to_string(i),
                                   core::pdf1d_inputs().serialize()));
  // Stop immediately: whatever was admitted must still be answered
  // through the open socket before it closes.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.trigger_stop();
  server.run();

  int answered = 0;
  while (client.read_line().has_value()) ++answered;
  const Service::Stats st = service.stats();
  EXPECT_EQ(static_cast<std::uint64_t>(answered),
            st.responses_ok + st.responses_error);
  EXPECT_EQ(st.in_flight, 0u);
  // No silent drops: every request the server read was answered.
  EXPECT_EQ(st.requests, st.responses_ok + st.responses_error);
}

TEST(SvcServer, ShutdownOpDrainsTheWholeServer) {
  Service service;
  Server server(service, {.port = 0});
  server.start();
  std::thread runner([&] { server.run(); });
  Client client(server.port());
  client.send_line(evaluate_line("w", core::pdf1d_inputs().serialize()));
  ASSERT_TRUE(client.read_line().has_value());
  client.send_line("{\"id\":\"bye\",\"op\":\"shutdown\"}");
  const auto ack = client.read_line();
  ASSERT_TRUE(ack.has_value());
  EXPECT_NE(ack->find("\"draining\":true"), std::string::npos);
  runner.join();  // the shutdown op triggered the server's stop
  EXPECT_FALSE(client.read_line().has_value());
}

TEST(SvcServer, StalledClientIsDroppedWithoutBlockingOthers) {
  // The bug this PR exists for: under the old thread-per-connection
  // server, a client that pipelined requests but never read its socket
  // made the blocking send() wedge under the connection's write mutex —
  // stalling every response to that client and the graceful drain. Now
  // the bounded write queue drops the stalled client instead, and other
  // connections never notice.
  Service service;
  Server server(service,
                {.port = 0, .max_write_buffer_bytes = 8192, .so_sndbuf = 4096});
  server.start();

  // Stalled client: tiny receive window, 400 pipelined requests, reads
  // nothing. Responses fill the kernel buffers, then the server-side
  // write queue, then the bound trips.
  const int stalled = connect_raw(server.port(), /*rcvbuf=*/4096);
  const std::string sheet = core::pdf1d_inputs().serialize();
  std::string burst;
  for (int i = 0; i < 400; ++i) {
    burst += evaluate_line("stall" + std::to_string(i), sheet);
    burst += '\n';
  }
  send_best_effort(stalled, burst);

  // Meanwhile a well-behaved client's round-trips complete normally.
  {
    Client fast(server.port());
    for (int i = 0; i < 10; ++i) {
      fast.send_line(evaluate_line("fast" + std::to_string(i), sheet));
      const auto line = fast.read_line();
      ASSERT_TRUE(line.has_value()) << "blocked behind the stalled client";
      EXPECT_NE(line->find("\"id\":\"fast" + std::to_string(i) + "\""),
                std::string::npos);
    }
  }

  EXPECT_TRUE(wait_until(
      [&] { return server.stats().slow_clients_dropped >= 1; }))
      << "bounded write queue never tripped";
  ::close(stalled);

  // And shutdown still terminates promptly — nothing is wedged.
  server.trigger_stop();
  server.run();
  EXPECT_GE(server.stats().slow_clients_dropped, 1u);
}

TEST(SvcServer, DrainDropsClientsThatNeverReadAfterFlushTimeout) {
  // A stalled client whose queue stays under the byte bound must not be
  // able to hold the drain hostage either: after drain_flush_timeout_ms
  // of refusing to read, it is dropped and shutdown completes.
  Service service;
  Server server(service,
                {.port = 0, .so_sndbuf = 4096, .drain_flush_timeout_ms = 200});
  server.start();

  const int stalled = connect_raw(server.port(), /*rcvbuf=*/4096);
  const std::string sheet = core::pdf1d_inputs().serialize();
  std::string burst;
  for (int i = 0; i < 50; ++i) {
    burst += evaluate_line("q" + std::to_string(i), sheet);
    burst += '\n';
  }
  send_best_effort(stalled, burst);
  // Let responses start piling into the kernel buffers and write queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto t0 = std::chrono::steady_clock::now();
  server.trigger_stop();
  server.run();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5)) << "drain hung on the stall";
  EXPECT_GE(server.stats().slow_clients_dropped, 1u);
  ::close(stalled);
}

TEST(SvcServer, HundredsOfIdleConnectionsHoldWithConstantThreads) {
  // The event loop's whole point: connection count must not move the
  // thread count (the old design spawned one reader thread each).
  Service service;
  Server server(service, {.port = 0});
  server.start();

  // Warm everything lazy (shared pool, loop) before counting threads.
  const std::string sheet = core::pdf1d_inputs().serialize();
  {
    Client warm(server.port());
    warm.send_line(evaluate_line("warm", sheet));
    ASSERT_TRUE(warm.read_line().has_value());
  }
  const int before = thread_count();
  ASSERT_GT(before, 0);

  constexpr int kIdle = 300;
  std::vector<int> idle;
  idle.reserve(kIdle);
  for (int i = 0; i < kIdle; ++i) idle.push_back(connect_raw(server.port()));
  // connections counts accepts: warm client + all idles.
  ASSERT_TRUE(wait_until(
      [&] { return server.stats().connections >= kIdle + 1; }));

  EXPECT_EQ(thread_count(), before)
      << "server thread count scaled with connections";

  // The loop still serves real traffic through the idle crowd.
  Client probe(server.port());
  probe.send_line(evaluate_line("probe", sheet));
  const auto line = probe.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"status\":\"ok\""), std::string::npos);

  for (const int fd : idle) ::close(fd);
  server.trigger_stop();
  server.run();
}

TEST(SvcServer, StdioReaderGoneDrainsCleanlyInsteadOfSigpipe) {
  // Regression: a --stdio server whose stdout reader exited used to die
  // of SIGPIPE from the plain write(2) in flush_writes — rat_serve never
  // ignored the signal. Now Server::start() installs the transport-owned
  // SIG_IGN, write(2) returns EPIPE, and the server treats it as a
  // normal close + drain. The mere fact this test survives the write is
  // the SIGPIPE assertion: the default disposition would kill the whole
  // gtest binary.
  int to_server[2];   // test -> server stdin
  int from_server[2]; // server stdout -> test
  ASSERT_EQ(::pipe(to_server), 0);
  ASSERT_EQ(::pipe(from_server), 0);

  Service service;
  Server server(service, {.tcp = false,
                          .stdio = true,
                          .stdio_in_fd = to_server[0],
                          .stdio_out_fd = from_server[1]});
  server.start();

  // Pipeline a burst sized so the requests fit in the stdin pipe's
  // buffer in one shot (~55 KiB < 64 KiB, so this write cannot block)
  // while the responses decisively overflow the stdout pipe's capacity
  // (~240 KiB >> 64 KiB): after the reader vanishes below, the server is
  // guaranteed to still have writes left to attempt — and those writes
  // are what must come back as EPIPE, not SIGPIPE.
  const std::string sheet = core::pdf1d_inputs().serialize();
  std::string burst;
  for (int i = 0; i < 150; ++i) {
    burst += evaluate_line("s" + std::to_string(i), sheet);
    burst += '\n';
  }
  for (std::size_t off = 0; off < burst.size();) {
    const ssize_t n =
        ::write(to_server[1], burst.data() + off, burst.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
  char c;
  while (::read(from_server[0], &c, 1) == 1 && c != '\n') {
  }
  ::close(from_server[0]);

  // EPIPE on the next flush must read as "reader gone": the server
  // closes the stdio connection and stops on its own — no signal death,
  // no hang, and no write_failures (EPIPE is a normal close).
  server.run();
  EXPECT_EQ(server.stats().write_failures, 0u);

  ::close(to_server[1]);
  ::close(to_server[0]);
  ::close(from_server[1]);
}

int open_fd_count() {
  int n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd"))
    (void)entry, ++n;
  return n;
}

TEST(SvcServer, EmfileAcceptBacksOffAndRecovers) {
  // Regression: accept(2) failing with EMFILE left the listen fd
  // readable (the connection stays queued), so the loop re-polled it
  // instantly — a 100% CPU spin for as long as fds stayed exhausted.
  // Now the failure counts svc.server.accept_failed and the listen fd
  // sits out accept_backoff_ms before retrying.
  Service service;
  Server server(service, {.port = 0, .accept_backoff_ms = 20});
  server.start();
  {
    Client warm(server.port());
    warm.send_line("{\"id\":\"w\",\"op\":\"ping\"}");
    ASSERT_TRUE(warm.read_line().has_value());
  }

  // Ballast fds reserved before the count: if runtime fd drift (the
  // sanitizer opening or closing a descriptor between the count and the
  // clamp) eats the client's slot, closing one frees a slot for the
  // client socket while the server-side accept stays exhausted.
  std::vector<int> ballast;
  for (int i = 0; i < 3; ++i) {
    const int b = ::open("/dev/null", O_RDONLY);
    ASSERT_GE(b, 0);
    ballast.push_back(b);
  }

  rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old_limit), 0);
  rlimit tight = old_limit;
  // Room for exactly one more fd: the client's socket. The server-side
  // accept then has nothing left and fails with EMFILE.
  tight.rlim_cur = static_cast<rlim_t>(open_fd_count() + 1);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

  // Provoke: connect until accept reports exhaustion. Drift the other
  // way can hand the first accept a free slot, so every retry burns one
  // more (connect(2) on loopback succeeds once the connection is queued
  // in the backlog — it never waits for the accept).
  std::vector<int> clients;
  auto try_connect = [&] {
    const int s = ::socket(AF_INET, SOCK_STREAM, 0);
    if (s < 0) return false;  // our own table is full — close ballast
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
    if (::connect(s, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(s);
      return false;
    }
    clients.push_back(s);
    return true;
  };
  for (int attempt = 0; attempt < 4; ++attempt) {
    if (!try_connect() && !ballast.empty()) {
      ::close(ballast.back());
      ballast.pop_back();
      try_connect();
    }
    if (wait_until([&] { return server.stats().accept_failures >= 1; },
                   attempt == 3 ? 10000 : 500)) {
      break;
    }
  }
  ASSERT_FALSE(clients.empty());
  EXPECT_GE(server.stats().accept_failures, 1u)
      << "accept never reported fd exhaustion";

  // Free the fds again: the queued connection must be accepted on a
  // backoff retry — recovery, not a wedged listener. The newest client
  // is the one that was still pending when accept ran dry.
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old_limit), 0);
  const int fd = clients.back();
  send_best_effort(fd, "{\"id\":\"after\",\"op\":\"ping\"}\n");
  std::string line;
  char c;
  while (::read(fd, &c, 1) == 1 && c != '\n') line += c;
  EXPECT_NE(line.find("\"id\":\"after\""), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  for (const int s : clients) ::close(s);
  for (const int b : ballast) ::close(b);

  server.trigger_stop();
  server.run();
  EXPECT_GE(server.stats().accept_failures, 1u);
}

TEST(SvcServer, ConfigurableBacklogStillAcceptsConnections) {
  Service service;
  Server server(service, {.port = 0, .backlog = 1});
  server.start();
  for (int i = 0; i < 8; ++i) {
    Client client(server.port());
    client.send_line("{\"id\":\"p\",\"op\":\"ping\"}");
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_NE(line->find("\"status\":\"ok\""), std::string::npos);
  }
  server.trigger_stop();
  server.run();
}

}  // namespace
}  // namespace rat::svc
