#include "apps/pdf1d_rtl.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "apps/workload.hpp"

namespace rat::apps {
namespace {

TEST(Pdf1dRtl, CycleCountEqualsClosedFormModel) {
  const Pdf1dDesign design;  // paper configuration
  const auto xs =
      gaussian_mixture_1d(design.config().batch, default_mixture_1d(), 401);
  const auto rtl = run_pdf1d_rtl(design, xs);
  EXPECT_EQ(rtl.cycles, design.cycles_per_iteration());
}

TEST(Pdf1dRtl, MultiBatchCyclesPayFillPerBatch) {
  const Pdf1dDesign design;
  const std::size_t batches = 3;
  const auto xs = gaussian_mixture_1d(batches * design.config().batch,
                                      default_mixture_1d(), 403);
  const auto rtl = run_pdf1d_rtl(design, xs);
  EXPECT_EQ(rtl.cycles, batches * design.cycles_per_iteration());
}

TEST(Pdf1dRtl, ResultsBitIdenticalToBehaviouralModel) {
  const Pdf1dDesign design;
  const auto xs = gaussian_mixture_1d(2048, default_mixture_1d(), 405);
  const auto rtl = run_pdf1d_rtl(design, xs);
  const auto behavioural = design.estimate(xs);
  ASSERT_EQ(rtl.estimate.size(), behavioural.size());
  for (std::size_t j = 0; j < behavioural.size(); ++j)
    ASSERT_EQ(rtl.estimate[j], behavioural[j]) << "bin " << j;
}

TEST(Pdf1dRtl, MacIssueCountIsElementsTimesBins) {
  const Pdf1dDesign design;
  const auto xs = gaussian_mixture_1d(512, default_mixture_1d(), 407);
  const auto rtl = run_pdf1d_rtl(design, xs);
  EXPECT_EQ(rtl.mac_issues, 512ull * design.config().n_bins);
  EXPECT_EQ(rtl.handshake_stalls, 512ull * 9ull);
}

TEST(Pdf1dRtl, EffectiveOpsPerCycleMatchesPaperDerate) {
  // 3 measured ops per MAC issue: the derated throughput the paper's
  // worksheet rounds to 20, realized in a clocked model.
  const Pdf1dDesign design;
  const auto xs =
      gaussian_mixture_1d(design.config().batch, default_mixture_1d(), 409);
  const auto rtl = run_pdf1d_rtl(design, xs);
  const double eff = 3.0 * static_cast<double>(rtl.mac_issues) /
                     static_cast<double>(rtl.cycles);
  EXPECT_NEAR(eff, 18.7, 0.2);
  EXPECT_LT(eff, 20.0);  // the worksheet's assumption was (mildly) optimistic
}

TEST(Pdf1dRtl, SmallerGeometryStillCoheres) {
  Pdf1dConfig cfg;
  cfg.n_bins = 64;
  cfg.batch = 96;
  cfg.bandwidth = 0.08;
  const Pdf1dDesign design(cfg, 4);
  const auto xs = gaussian_mixture_1d(96, default_mixture_1d(), 411);
  const auto rtl = run_pdf1d_rtl(design, xs);
  EXPECT_EQ(rtl.cycles, design.cycles_per_iteration());
  const auto behavioural = design.estimate(xs);
  for (std::size_t j = 0; j < behavioural.size(); ++j)
    ASSERT_EQ(rtl.estimate[j], behavioural[j]);
}

TEST(Pdf1dRtl, EmptyInputRejected) {
  const Pdf1dDesign design;
  EXPECT_THROW(run_pdf1d_rtl(design, {}), std::invalid_argument);
}

}  // namespace
}  // namespace rat::apps
