#include "apps/strmatch.hpp"

#include "core/throughput.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rat::apps {
namespace {

StrMatchConfig cfg(std::vector<std::string> patterns,
                   std::size_t chunk = 4096) {
  StrMatchConfig c;
  c.patterns = std::move(patterns);
  c.chunk = chunk;
  return c;
}

TEST(StrMatchConfig, Validation) {
  EXPECT_THROW(cfg({}).validate(), std::invalid_argument);
  EXPECT_THROW(cfg({"abc", ""}).validate(), std::invalid_argument);
  StrMatchConfig c = cfg({"abc"});
  c.chunk = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  EXPECT_NO_THROW(cfg({"abc"}).validate());
  EXPECT_EQ(cfg({"ab", "cdef"}).longest_pattern(), 4u);
  EXPECT_EQ(cfg({"ab", "cdef"}).total_pattern_chars(), 6u);
}

TEST(StrMatchNaive, KnownCounts) {
  const auto counts = count_matches_naive("abababa", cfg({"aba", "bab"}));
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 3u);  // overlapping matches at 0, 2, 4
  EXPECT_EQ(counts[1], 2u);  // at 1, 3
}

TEST(StrMatchNaive, PatternLongerThanTextFindsNothing) {
  const auto counts = count_matches_naive("ab", cfg({"abc"}));
  EXPECT_EQ(counts[0], 0u);
}

TEST(StrMatchShiftOr, AgreesWithNaiveOnRandomText) {
  const auto c = cfg({"abca", "bb", "cabc", "a"});
  const std::string text = random_text(20000, c, 0.01, 99, 'a', 'c');
  EXPECT_EQ(count_matches_shift_or(text, c), count_matches_naive(text, c));
}

TEST(StrMatchShiftOr, RejectsLongPatterns) {
  const StrMatchConfig c = cfg({std::string(65, 'x')});
  EXPECT_THROW(count_matches_shift_or("xyz", c), std::invalid_argument);
}

TEST(StrMatchCounted, OpCountBounds) {
  const auto c = cfg({"ab"});
  OpCounter ops;
  count_matches_naive_counted("aaaa", c, ops);
  // Three start positions, each comparing at least the first character.
  EXPECT_GE(ops.compares, 3u);
  EXPECT_LE(ops.compares, 6u);
}

TEST(RandomText, DeterministicAndInAlphabetWithoutPlanting) {
  const auto c = cfg({"zz"});
  const std::string a = random_text(5000, c, 0.0, 7, 'a', 'd');
  EXPECT_EQ(a, random_text(5000, c, 0.0, 7, 'a', 'd'));
  for (char ch : a) {
    ASSERT_GE(ch, 'a');
    ASSERT_LE(ch, 'd');
  }
}

TEST(RandomText, PlantingRaisesMatchCounts) {
  const auto c = cfg({"needle"});
  const std::string clean = random_text(50000, c, 0.0, 13, 'a', 'z');
  const std::string planted = random_text(50000, c, 0.002, 13, 'a', 'z');
  EXPECT_GT(count_matches_naive(planted, c)[0],
            count_matches_naive(clean, c)[0] + 10);
}

TEST(RandomText, Validation) {
  const auto c = cfg({"x"});
  EXPECT_THROW(random_text(10, c, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(random_text(10, c, 1.1, 1), std::invalid_argument);
  EXPECT_THROW(random_text(10, c, 0.0, 1, 'z', 'a'), std::invalid_argument);
}

TEST(AhoCorasick, KnownCounts) {
  const auto c = cfg({"aba", "bab"});
  const AhoCorasick ac(c);
  const auto counts = ac.count_matches("abababa");
  EXPECT_EQ(counts, count_matches_naive("abababa", c));
}

TEST(AhoCorasick, AgreesWithNaiveOnRandomText) {
  const auto c = cfg({"abca", "bb", "cabc", "a", "abcabc"});
  const AhoCorasick ac(c);
  const std::string text = random_text(50000, c, 0.02, 303, 'a', 'c');
  EXPECT_EQ(ac.count_matches(text), count_matches_naive(text, c));
}

TEST(AhoCorasick, OverlappingSuffixPatterns) {
  // "she" contains "he": the failure links must report both.
  const auto c = cfg({"she", "he", "hers"});
  const AhoCorasick ac(c);
  const auto counts = ac.count_matches("ushers");
  EXPECT_EQ(counts[0], 1u);  // she
  EXPECT_EQ(counts[1], 1u);  // he
  EXPECT_EQ(counts[2], 1u);  // hers
}

TEST(AhoCorasick, DuplicatePatternsEachCount) {
  const auto c = cfg({"ab", "ab"});
  const AhoCorasick ac(c);
  const auto counts = ac.count_matches("abab");
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(AhoCorasick, StateCountIsTriePlusRoot) {
  const auto c = cfg({"abc", "abd"});  // root + a, ab, abc, abd
  EXPECT_EQ(AhoCorasick(c).num_states(), 5u);
}

TEST(StrMatchDesign, FunctionalModelMatchesSoftware) {
  const auto c = cfg({"abca", "bb", "ca"});
  const StrMatchDesign design(c);
  const std::string text = random_text(10000, c, 0.02, 21, 'a', 'c');
  EXPECT_EQ(design.count_matches(text), count_matches_naive(text, c));
}

TEST(StrMatchDesign, CycleModelIsTextRatePlusDrain) {
  const StrMatchDesign design(cfg({"abcdef", "xy"}, 4096));
  EXPECT_EQ(design.cycles_per_iteration(), 4096u + 6u);
}

TEST(StrMatchDesign, IoPattern) {
  const StrMatchDesign design(cfg({"ab", "cd", "ef"}, 2048));
  const auto io = design.io();
  EXPECT_EQ(io.input_chunks_bytes, std::vector<std::size_t>{2048});
  EXPECT_EQ(io.output_chunks_bytes, std::vector<std::size_t>{24});
}

TEST(StrMatchDesign, ResourcesScaleWithPatternVolume) {
  const auto small = StrMatchDesign(cfg({"ab"})).resource_items();
  const auto large =
      StrMatchDesign(cfg({std::string(40, 'x'), std::string(40, 'y')}))
          .resource_items();
  const auto device = rcsim::virtex4_lx100();
  const auto rs = core::run_resource_test(small, device);
  const auto rl = core::run_resource_test(large, device);
  EXPECT_GT(rl.usage.logic, rs.usage.logic);
  EXPECT_EQ(rs.usage.dsp, 0);  // pure-logic kernel, no multipliers
  EXPECT_TRUE(rl.feasible);
}

TEST(StrMatchDesign, WorksheetSelfConsistent) {
  const StrMatchDesign design(cfg({"abcd", "efgh"}, 4096));
  const core::CommunicationParams comm{1e9, 0.37, 0.16};
  const auto in = design.rat_inputs(1.0, 100, comm);
  EXPECT_NO_THROW(in.validate());
  // ops/element == throughput_proc: the array retires one element/cycle,
  // so predicted tcomp = chunk / fclock.
  const auto p = core::predict(in, 100e6);
  EXPECT_NEAR(p.t_comp_sec, 4096.0 / 100e6, 1e-12);
  // The cycle model adds only the pipeline drain on top of that.
  EXPECT_NEAR(static_cast<double>(design.cycles_per_iteration()) / 100e6,
              p.t_comp_sec, 1e-7);
}

}  // namespace
}  // namespace rat::apps
