#include "apps/sorting.hpp"

#include "core/throughput.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace rat::apps {
namespace {

TEST(SortConfig, Validation) {
  SortConfig c;
  c.block = 1000;  // not a power of two
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.block = 1024;
  c.comparators = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.comparators = 513;  // > block/2
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.comparators = 512;
  EXPECT_NO_THROW(c.validate());
}

TEST(SortConfig, StageCount) {
  SortConfig c;
  c.block = 1024;  // log2 = 10 -> 55 stages
  EXPECT_EQ(c.stages(), 55u);
  EXPECT_EQ(c.exchanges_per_block(), 55u * 512u);
  c.block = 8;  // log2 = 3 -> 6 stages
  c.comparators = 4;
  EXPECT_EQ(c.stages(), 6u);
}

TEST(MergeSort, SortsAndCountsComparisons) {
  auto data = random_keys(10000, 3);
  OpCounter ops;
  merge_sort(data, &ops);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  // n log2 n comparisons, within a factor: 10000 * 13.3 ~ 133k.
  EXPECT_GT(ops.compares, 60000u);
  EXPECT_LT(ops.compares, 140000u);
}

TEST(MergeSort, EdgeCases) {
  std::vector<std::uint32_t> empty;
  EXPECT_NO_THROW(merge_sort(empty));
  std::vector<std::uint32_t> one{42};
  merge_sort(one);
  EXPECT_EQ(one[0], 42u);
  std::vector<std::uint32_t> dup(100, 7);
  merge_sort(dup);
  EXPECT_TRUE(std::is_sorted(dup.begin(), dup.end()));
  // Odd (non-power-of-two) sizes work.
  auto odd = random_keys(12345, 5);
  merge_sort(odd);
  EXPECT_TRUE(std::is_sorted(odd.begin(), odd.end()));
}

TEST(BitonicNetwork, SortsOneBlockExactly) {
  SortConfig c;
  c.block = 256;
  c.comparators = 32;
  auto block = random_keys(256, 11);
  auto expected = block;
  std::sort(expected.begin(), expected.end());
  bitonic_sort_block(block, c);
  EXPECT_EQ(block, expected);
}

TEST(BitonicNetwork, ExchangeCountIsDataIndependent) {
  // The network executes exactly exchanges_per_block() compare-exchanges
  // regardless of input order — the property that makes its worksheet
  // deterministic (unlike MD's data-dependent op count).
  SortConfig c;
  c.block = 128;
  c.comparators = 16;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto block = random_keys(128, seed);
    OpCounter ops;
    bitonic_sort_block(block, c, &ops);
    EXPECT_EQ(ops.compares, c.exchanges_per_block());
  }
  // Already-sorted input: same count.
  std::vector<std::uint32_t> sorted(128);
  for (std::size_t i = 0; i < 128; ++i)
    sorted[i] = static_cast<std::uint32_t>(i);
  OpCounter ops;
  bitonic_sort_block(sorted, c, &ops);
  EXPECT_EQ(ops.compares, c.exchanges_per_block());
}

TEST(BitonicNetwork, RejectsWrongBlockSize) {
  SortConfig c;
  c.block = 256;
  c.comparators = 32;
  auto wrong = random_keys(128, 13);
  EXPECT_THROW(bitonic_sort_block(wrong, c), std::invalid_argument);
}

class BitonicSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitonicSizes, MatchesStdSort) {
  SortConfig c;
  c.block = GetParam();
  c.comparators = std::max<std::size_t>(1, c.block / 8);
  auto block = random_keys(c.block, 17 + c.block);
  auto expected = block;
  std::sort(expected.begin(), expected.end());
  bitonic_sort_block(block, c);
  EXPECT_EQ(block, expected);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, BitonicSizes,
                         ::testing::Values(2, 4, 8, 16, 64, 256, 1024,
                                           4096));

TEST(HybridSort, MatchesStdSortIncludingPaddedTail) {
  SortConfig c;
  c.block = 64;
  c.comparators = 8;
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 1000u, 4096u}) {
    const auto data = random_keys(n, 19 + n);
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(hybrid_sort(data, c), expected) << n;
  }
}

TEST(HybridSort, HandlesMaxKeysInData) {
  // The padding sentinel value must not corrupt real data.
  SortConfig c;
  c.block = 8;
  c.comparators = 4;
  std::vector<std::uint32_t> data{5, 0xFFFFFFFFu, 3, 0xFFFFFFFFu, 1};
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(hybrid_sort(data, c), expected);
}

TEST(SortDesign, CycleModelScalesWithComparators) {
  SortConfig narrow;
  narrow.block = 1024;
  narrow.comparators = 16;
  SortConfig wide = narrow;
  wide.comparators = 256;
  EXPECT_GT(SortDesign(narrow).cycles_per_iteration(),
            SortDesign(wide).cycles_per_iteration());
  // 55 stages x 512/64 cycles + 512 drain at 64 comparators.
  SortConfig c;
  c.block = 1024;
  c.comparators = 64;
  EXPECT_EQ(SortDesign(c).cycles_per_iteration(), 55u * 8u + 512u);
}

TEST(SortDesign, IoMovesBlockBothWays) {
  SortConfig c;
  c.block = 1024;
  c.comparators = 64;
  const auto io = SortDesign(c).io();
  EXPECT_EQ(io.input_chunks_bytes, std::vector<std::size_t>{4096});
  EXPECT_EQ(io.output_chunks_bytes, std::vector<std::size_t>{4096});
}

TEST(SortDesign, WorksheetConsistentWithCycleModel) {
  SortConfig c;
  c.block = 1024;
  c.comparators = 64;
  const SortDesign design(c);
  const core::CommunicationParams comm{1e9, 0.37, 0.16};
  const auto in = design.rat_inputs(1.0, 100, comm);
  EXPECT_NO_THROW(in.validate());
  const auto p = core::predict(in, 100e6);
  // Eq. 4: 1024 elem x 27.5 ops / (1e8 x 64 ops/cyc) = stage cycles only;
  // the cycle model adds the drain on top.
  EXPECT_NEAR(p.t_comp_sec, 55.0 * 8.0 / 1e8, 1e-12);
  EXPECT_GT(static_cast<double>(design.cycles_per_iteration()) / 1e8,
            p.t_comp_sec);
}

TEST(SortDesign, ResourcesPureLogic) {
  SortConfig c;
  c.block = 1024;
  c.comparators = 64;
  const auto r = core::run_resource_test(SortDesign(c).resource_items(),
                                         rcsim::virtex4_lx100());
  EXPECT_EQ(r.usage.dsp, 0);
  EXPECT_TRUE(r.feasible);
}

}  // namespace
}  // namespace rat::apps
