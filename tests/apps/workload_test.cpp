#include "apps/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "apps/opcount.hpp"
#include "util/stats.hpp"

namespace rat::apps {
namespace {

TEST(GaussianMixture1d, SamplesInUnitIntervalAndDeterministic) {
  const auto a = gaussian_mixture_1d(5000, default_mixture_1d(), 42);
  const auto b = gaussian_mixture_1d(5000, default_mixture_1d(), 42);
  ASSERT_EQ(a.size(), 5000u);
  EXPECT_EQ(a, b);
  for (double x : a) {
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(GaussianMixture1d, DifferentSeedsDiffer) {
  const auto a = gaussian_mixture_1d(100, default_mixture_1d(), 1);
  const auto b = gaussian_mixture_1d(100, default_mixture_1d(), 2);
  EXPECT_NE(a, b);
}

TEST(GaussianMixture1d, ModesWhereExpected) {
  // Default mixture: modes near 0.3 and 0.7, with the 0.3 mode heavier.
  const auto xs = gaussian_mixture_1d(20000, default_mixture_1d(), 7);
  int low = 0, high = 0;
  for (double x : xs) {
    if (x > 0.2 && x < 0.4) ++low;
    if (x > 0.6 && x < 0.8) ++high;
  }
  EXPECT_GT(low, high);
  EXPECT_GT(low, 20000 / 4);
}

TEST(GaussianMixture1d, Validation) {
  EXPECT_THROW(gaussian_mixture_1d(10, {}, 1), std::invalid_argument);
  EXPECT_THROW(
      gaussian_mixture_1d(10, {MixtureComponent{0.5, 0.1, 0.0}}, 1),
      std::invalid_argument);
}

TEST(GaussianMixture2d, InUnitSquareAndDeterministic) {
  const auto a = gaussian_mixture_2d(3000, 11);
  ASSERT_EQ(a.size(), 3000u);
  EXPECT_EQ(a, gaussian_mixture_2d(3000, 11));
  for (const auto& s : a) {
    ASSERT_GE(s[0], 0.0);
    ASSERT_LT(s[0], 1.0);
    ASSERT_GE(s[1], 0.0);
    ASSERT_LT(s[1], 1.0);
  }
}

TEST(GaussianMixture2d, AxesAreCorrelated) {
  // The rotated blobs give positive x/y correlation.
  const auto xs = gaussian_mixture_2d(20000, 13);
  double mx = 0, my = 0;
  for (const auto& s : xs) {
    mx += s[0];
    my += s[1];
  }
  mx /= xs.size();
  my /= xs.size();
  double cov = 0, vx = 0, vy = 0;
  for (const auto& s : xs) {
    cov += (s[0] - mx) * (s[1] - my);
    vx += (s[0] - mx) * (s[0] - mx);
    vy += (s[1] - my) * (s[1] - my);
  }
  const double corr = cov / std::sqrt(vx * vy);
  EXPECT_GT(corr, 0.3);
}

TEST(ParticleBox, LayoutAndDeterminism) {
  const auto sys = particle_box(512, 2.0, 1.5, 99);
  EXPECT_EQ(sys.size(), 512u);
  EXPECT_DOUBLE_EQ(sys.box_length, 2.0);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    ASSERT_GE(sys.px[i], 0.0);
    ASSERT_LT(sys.px[i], 2.0);
    ASSERT_GE(sys.pz[i], 0.0);
    ASSERT_LT(sys.pz[i], 2.0);
    ASSERT_DOUBLE_EQ(sys.ax[i], 0.0);
  }
  const auto sys2 = particle_box(512, 2.0, 1.5, 99);
  EXPECT_EQ(sys.px, sys2.px);
  EXPECT_EQ(sys.vz, sys2.vz);
}

TEST(ParticleBox, VelocityTemperatureScaling) {
  const auto cold = particle_box(4000, 1.0, 0.01, 5);
  const auto hot = particle_box(4000, 1.0, 4.0, 5);
  util::RunningStats sc, sh;
  for (std::size_t i = 0; i < cold.size(); ++i) {
    sc.add(cold.vx[i]);
    sh.add(hot.vx[i]);
  }
  EXPECT_NEAR(sc.stddev(), 0.1, 0.01);   // sqrt(0.01)
  EXPECT_NEAR(sh.stddev(), 2.0, 0.1);    // sqrt(4)
}

TEST(ParticleBox, Validation) {
  EXPECT_THROW(particle_box(0, 1.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(particle_box(10, 0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(particle_box(10, 1.0, -1.0, 1), std::invalid_argument);
}

TEST(OpCounter, TotalsAndWeights) {
  OpCounter c;
  c.adds = 5;
  c.muls = 3;
  c.divs = 2;
  c.sqrts = 1;
  EXPECT_EQ(c.total_unit_weight(), 11u);
  EXPECT_EQ(c.total_weighted(16, 16), 5u + 3u + 2u * 16u + 16u);
  OpCounter d;
  d.subs = 4;
  c += d;
  EXPECT_EQ(c.subs, 4u);
  EXPECT_NE(c.to_string().find("muls=3"), std::string::npos);
}

}  // namespace
}  // namespace rat::apps
