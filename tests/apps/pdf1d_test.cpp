#include "apps/pdf1d.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "apps/workload.hpp"
#include "fixedpoint/error_analysis.hpp"
#include "util/stats.hpp"

namespace rat::apps {
namespace {

Pdf1dConfig small_cfg() {
  Pdf1dConfig cfg;
  cfg.n_bins = 64;
  cfg.bandwidth = 0.05;
  cfg.batch = 128;
  return cfg;
}

double integrate(const std::vector<double>& pdf, std::size_t n_bins) {
  const double dx = 1.0 / static_cast<double>(n_bins);
  return std::accumulate(pdf.begin(), pdf.end(), 0.0) * dx;
}

TEST(Pdf1dConfig, Validation) {
  Pdf1dConfig c = small_cfg();
  c.n_bins = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_cfg();
  c.bandwidth = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_cfg();
  c.bandwidth = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_cfg();
  c.batch = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Pdf1dSoftware, GaussianEstimateIntegratesToOne) {
  const auto xs = gaussian_mixture_1d(20000, default_mixture_1d(), 17);
  const Pdf1dConfig cfg;  // 256 bins
  const auto pdf = estimate_pdf1d_gaussian(xs, cfg);
  ASSERT_EQ(pdf.size(), cfg.n_bins);
  EXPECT_NEAR(integrate(pdf, cfg.n_bins), 1.0, 0.02);
  for (double p : pdf) ASSERT_GE(p, 0.0);
}

TEST(Pdf1dSoftware, QuadraticEstimateIntegratesToOne) {
  const auto xs = gaussian_mixture_1d(20000, default_mixture_1d(), 18);
  const Pdf1dConfig cfg;
  const auto pdf = estimate_pdf1d_quadratic(xs, cfg);
  EXPECT_NEAR(integrate(pdf, cfg.n_bins), 1.0, 0.02);
}

TEST(Pdf1dSoftware, RecoversBimodalShape) {
  const auto xs = gaussian_mixture_1d(40000, default_mixture_1d(), 19);
  const Pdf1dConfig cfg;
  const auto pdf = estimate_pdf1d_quadratic(xs, cfg);
  // Peak near 0.3 should dominate; valley near 0.5 should be low.
  const auto at = [&](double x) {
    return pdf[static_cast<std::size_t>(x * cfg.n_bins)];
  };
  EXPECT_GT(at(0.30), at(0.50) * 1.5);
  EXPECT_GT(at(0.70), at(0.50));
  EXPECT_GT(at(0.30), at(0.05));
}

TEST(Pdf1dSoftware, GaussianAndQuadraticAgreeBroadly) {
  const auto xs = gaussian_mixture_1d(30000, default_mixture_1d(), 23);
  const Pdf1dConfig cfg;
  const auto g = estimate_pdf1d_gaussian(xs, cfg);
  const auto q = estimate_pdf1d_quadratic(xs, cfg);
  // Different kernels, same data: correlated estimates.
  EXPECT_LT(util::rmse(g, q), 0.25 * util::max_of(g));
}

TEST(Pdf1dSoftware, EmptyInputThrows) {
  const std::vector<double> none;
  EXPECT_THROW(estimate_pdf1d_gaussian(none, small_cfg()),
               std::invalid_argument);
  EXPECT_THROW(estimate_pdf1d_quadratic(none, small_cfg()),
               std::invalid_argument);
}

TEST(Pdf1dSoftware, OpCountMatchesAnalyticFormula) {
  const auto xs = gaussian_mixture_1d(1000, default_mixture_1d(), 29);
  const Pdf1dConfig cfg = small_cfg();
  OpCounter ops;
  estimate_pdf1d_quadratic_counted(xs, cfg, ops);
  // Exactly 3 ops per element per bin (§4.2's 768 = 3 x 256 scaled here).
  EXPECT_EQ(ops.total_unit_weight(), 3ull * 1000ull * cfg.n_bins);
  EXPECT_DOUBLE_EQ(pdf1d_ops_per_element(cfg), 3.0 * cfg.n_bins);
  const Pdf1dConfig paper;  // 256 bins
  EXPECT_DOUBLE_EQ(pdf1d_ops_per_element(paper), 768.0);
}

TEST(Pdf1dDesign, RejectsIndivisiblePipelines) {
  EXPECT_THROW(Pdf1dDesign(small_cfg(), 7), std::invalid_argument);
  EXPECT_THROW(Pdf1dDesign(small_cfg(), 0), std::invalid_argument);
  EXPECT_NO_THROW(Pdf1dDesign(small_cfg(), 8));
}

TEST(Pdf1dDesign, CycleModelMatchesTable3Actual) {
  const Pdf1dDesign d;  // paper configuration
  EXPECT_EQ(d.cycles_per_iteration(), 512u * 41u + 64u);
  const double t150 = static_cast<double>(d.cycles_per_iteration()) / 150e6;
  EXPECT_NEAR(t150, 1.39e-4, 0.02e-4);
  EXPECT_DOUBLE_EQ(d.ideal_ops_per_cycle(), 24.0);
}

TEST(Pdf1dDesign, IoPatternHasFinalDrain) {
  const Pdf1dDesign d;
  const auto mid = d.io(5, 400);
  ASSERT_EQ(mid.input_chunks_bytes.size(), 1u);
  EXPECT_EQ(mid.input_chunks_bytes[0], 2048u);
  EXPECT_EQ(mid.output_chunks_bytes, std::vector<std::size_t>{4});
  const auto last = d.io(399, 400);
  ASSERT_EQ(last.output_chunks_bytes.size(), 2u);
  EXPECT_EQ(last.output_chunks_bytes[1], 1024u);  // 256 bins x 4 B
}

TEST(Pdf1dDesign, FixedPointTracksDoubleReference) {
  const auto xs = gaussian_mixture_1d(4096, default_mixture_1d(), 31);
  Pdf1dConfig cfg;  // full 256 bins
  const Pdf1dDesign d(cfg);
  const auto hw = d.estimate(xs);
  const auto sw = estimate_pdf1d_quadratic(xs, cfg);
  const auto rep = fx::compare(sw, hw);
  // 18-bit fixed point: within the paper's ~2% error budget.
  EXPECT_LE(rep.max_error_percent, 2.0);
  EXPECT_GT(rep.max_abs_error, 0.0);  // but it is genuinely quantized
}

TEST(Pdf1dDesign, ErrorShrinksWithWiderFormats) {
  const auto xs = gaussian_mixture_1d(2048, default_mixture_1d(), 37);
  const Pdf1dDesign d;
  const auto sw = estimate_pdf1d_quadratic(xs, d.config());
  double prev = 1e9;
  for (int bits : {12, 16, 20, 26}) {
    const auto hw = d.estimate_with_format(xs, fx::Format{bits, bits - 1, true});
    const double err = fx::compare(sw, hw).max_error_percent;
    EXPECT_LT(err, prev * 1.2) << bits;
    prev = err;
  }
  EXPECT_LT(prev, 0.01);  // 26 bits: essentially exact
}

TEST(Pdf1dDesign, ResourceFootprintReproducesTable4Shape) {
  const Pdf1dDesign d;
  const auto device = rcsim::virtex4_lx100();
  const auto r = core::run_resource_test(d.resource_items(), device);
  EXPECT_TRUE(r.feasible);
  // Table 4: BRAM ~15%, low DSP and slice usage — lots of headroom, which
  // the paper reads as "potential for further speedup".
  EXPECT_NEAR(r.utilization.dsp_fraction, 8.0 / 96.0, 1e-9);
  EXPECT_NEAR(r.utilization.bram_fraction, 0.15, 0.03);
  EXPECT_LT(r.utilization.logic_fraction, 0.2);
}

TEST(Pdf1dDesign, WorksheetIsTable2) {
  const Pdf1dDesign d;
  const auto in = d.rat_inputs();
  EXPECT_EQ(in.dataset.elements_in, d.config().batch);
  EXPECT_DOUBLE_EQ(in.comp.ops_per_element,
                   pdf1d_ops_per_element(d.config()));
}

}  // namespace
}  // namespace rat::apps
