#include "apps/convolution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/throughput.hpp"
#include "fixedpoint/error_analysis.hpp"

namespace rat::apps {
namespace {

ConvConfig small_cfg() {
  ConvConfig cfg;
  cfg.width = 48;
  cfg.height = 32;
  cfg.kernel_size = 5;
  return cfg;
}

TEST(ConvConfig, Validation) {
  ConvConfig c = small_cfg();
  c.width = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_cfg();
  c.kernel_size = 4;  // even
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_cfg();
  c.kernel_size = 49;  // bigger than height
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_cfg();
  c.bytes_per_pixel = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Kernels, NormalizationAndShape) {
  const auto box = box_kernel(5);
  EXPECT_NEAR(std::accumulate(box.begin(), box.end(), 0.0), 1.0, 1e-12);
  const auto gauss = gaussian_kernel(5);
  EXPECT_NEAR(std::accumulate(gauss.begin(), gauss.end(), 0.0), 1.0, 1e-12);
  EXPECT_GT(gauss[12], gauss[0]);  // centre dominates corners
  const auto ident = identity_kernel(3);
  EXPECT_DOUBLE_EQ(ident[4], 1.0);
  EXPECT_DOUBLE_EQ(std::accumulate(ident.begin(), ident.end(), 0.0), 1.0);
  EXPECT_THROW(box_kernel(4), std::invalid_argument);
  EXPECT_THROW(gaussian_kernel(0), std::invalid_argument);
}

TEST(SyntheticFrame, DeterministicAndInRange) {
  const ConvConfig cfg = small_cfg();
  const Image a = synthetic_frame(cfg, 5);
  EXPECT_EQ(a, synthetic_frame(cfg, 5));
  EXPECT_NE(a, synthetic_frame(cfg, 6));
  for (double v : a) {
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Convolve2d, IdentityKernelIsIdentity) {
  const ConvConfig cfg = small_cfg();
  const Image img = synthetic_frame(cfg, 7);
  const Image out = convolve2d(img, identity_kernel(cfg.kernel_size), cfg);
  for (std::size_t i = 0; i < img.size(); ++i)
    ASSERT_NEAR(out[i], img[i], 1e-12);
}

TEST(Convolve2d, BoxBlurSmoothes) {
  const ConvConfig cfg = small_cfg();
  const Image img = synthetic_frame(cfg, 9);
  const Image out = convolve2d(img, box_kernel(cfg.kernel_size), cfg);
  // Interior total variation (sum of |horizontal gradient| away from the
  // zero-padded border, which the blur steepens) must shrink.
  auto variation = [&](const Image& im) {
    double tv = 0.0;
    const std::size_t m = cfg.kernel_size;  // border margin
    for (std::size_t y = m; y < cfg.height - m; ++y)
      for (std::size_t x = m + 1; x < cfg.width - m; ++x)
        tv += std::fabs(im[y * cfg.width + x] - im[y * cfg.width + x - 1]);
    return tv;
  };
  EXPECT_LT(variation(out), variation(img) * 0.8);
}

TEST(Convolve2d, ZeroPaddingDimsBorders) {
  const ConvConfig cfg = small_cfg();
  const Image ones(cfg.pixels(), 0.9);
  const Image out = convolve2d(ones, box_kernel(5), cfg);
  // Interior preserves the level; the corner sees only 9 of 25 taps.
  EXPECT_NEAR(out[(cfg.height / 2) * cfg.width + cfg.width / 2], 0.9,
              1e-12);
  EXPECT_NEAR(out[0], 0.9 * 9.0 / 25.0, 1e-12);
}

TEST(Convolve2d, OpCountMatchesFormula) {
  const ConvConfig cfg = small_cfg();
  const Image img = synthetic_frame(cfg, 11);
  OpCounter ops;
  convolve2d_counted(img, box_kernel(5), cfg, ops);
  EXPECT_EQ(ops.total_unit_weight(), 2ull * 25ull * cfg.pixels());
}

TEST(ConvolveSeparable, MatchesFull2dForProductKernels) {
  const ConvConfig cfg = small_cfg();
  const Image img = synthetic_frame(cfg, 19);
  const auto factor = gaussian_factor(cfg.kernel_size);
  // Outer-product kernel for the full 2-D reference.
  std::vector<double> outer(cfg.kernel_size * cfg.kernel_size);
  for (std::size_t i = 0; i < cfg.kernel_size; ++i)
    for (std::size_t j = 0; j < cfg.kernel_size; ++j)
      outer[i * cfg.kernel_size + j] = factor[i] * factor[j];
  const Image full = convolve2d(img, outer, cfg);
  const Image sep = convolve2d_separable(img, factor, factor, cfg);
  for (std::size_t i = 0; i < full.size(); ++i)
    ASSERT_NEAR(sep[i], full[i], 1e-12) << i;
}

TEST(ConvolveSeparable, GaussianFactorOuterProductIsGaussianKernel) {
  const auto factor = gaussian_factor(5);
  const auto kernel = gaussian_kernel(5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      ASSERT_NEAR(factor[i] * factor[j], kernel[i * 5 + j], 1e-12);
}

TEST(ConvolveSeparable, Validation) {
  const ConvConfig cfg = small_cfg();
  const Image img = synthetic_frame(cfg, 23);
  const std::vector<double> wrong(3, 0.33);
  EXPECT_THROW(
      convolve2d_separable(img, wrong, gaussian_factor(5), cfg),
      std::invalid_argument);
  EXPECT_THROW(gaussian_factor(4), std::invalid_argument);
}

TEST(ConvDesign, FormatNeedsIntegerBit) {
  EXPECT_THROW(ConvDesign(small_cfg(), fx::Format{18, 17, true}),
               std::invalid_argument);
  EXPECT_NO_THROW(ConvDesign(small_cfg(), fx::Format{18, 15, true}));
}

TEST(ConvDesign, FixedPointTracksDouble) {
  const ConvConfig cfg = small_cfg();
  const ConvDesign design(cfg);
  const Image img = synthetic_frame(cfg, 13);
  const auto kernel = gaussian_kernel(cfg.kernel_size);
  const Image hw = design.convolve(img, kernel);
  const Image sw = convolve2d(img, kernel, cfg);
  const auto rep = fx::compare(sw, hw);
  EXPECT_LE(rep.max_error_percent, 0.5);  // 18-bit pixels: sub-percent
  EXPECT_GT(rep.max_abs_error, 0.0);
}

TEST(ConvDesign, WiderFormatTightensError) {
  const ConvConfig cfg = small_cfg();
  const ConvDesign design(cfg);
  const Image img = synthetic_frame(cfg, 17);
  const auto kernel = gaussian_kernel(cfg.kernel_size);
  const Image sw = convolve2d(img, kernel, cfg);
  const double e12 =
      fx::compare(sw, design.convolve_with_format(img, kernel,
                                                  fx::Format{12, 9, true}))
          .rmse;
  const double e22 =
      fx::compare(sw, design.convolve_with_format(img, kernel,
                                                  fx::Format{22, 19, true}))
          .rmse;
  EXPECT_LT(e22, e12 * 0.1);
}

TEST(ConvDesign, CycleModelOnePixelPerCycle) {
  ConvConfig cfg;
  cfg.width = 1024;
  cfg.height = 1024;
  cfg.kernel_size = 5;
  const ConvDesign design(cfg);
  const std::uint64_t expected_fill = 2 * 1024 + 2;
  EXPECT_EQ(design.cycles_per_iteration(), cfg.pixels() + expected_fill);
}

TEST(ConvDesign, ResourcesScaleWithKernel) {
  ConvConfig small = small_cfg();
  small.width = 1024;  // line buffers must be wide enough to span blocks
  small.kernel_size = 3;
  ConvConfig large = small;
  large.kernel_size = 7;
  const auto device = rcsim::virtex4_lx100();
  const auto rs =
      core::run_resource_test(ConvDesign(small).resource_items(), device);
  const auto rl =
      core::run_resource_test(ConvDesign(large).resource_items(), device);
  EXPECT_EQ(rs.usage.dsp, 9);
  EXPECT_EQ(rl.usage.dsp, 49);
  EXPECT_GT(rl.usage.bram, rs.usage.bram);
  EXPECT_TRUE(rl.feasible);
}

TEST(ConvDesign, WorksheetSelfConsistent) {
  ConvConfig cfg;
  cfg.width = 1024;
  cfg.height = 1024;
  const ConvDesign design(cfg);
  const core::CommunicationParams comm{1e9, 0.6, 0.6};
  const auto in = design.rat_inputs(12.5, 30, comm);
  EXPECT_NO_THROW(in.validate());
  const auto p = core::predict(in, 150e6);
  // Eq. 4 with the 0.9 derate: pixels / (fclock * 0.9).
  EXPECT_NEAR(p.t_comp_sec,
              static_cast<double>(cfg.pixels()) / (150e6 * 0.9), 1e-9);
  // The cycle model (1 pixel/cycle + fill) sits inside the derate.
  EXPECT_LT(static_cast<double>(design.cycles_per_iteration()) / 150e6,
            p.t_comp_sec);
}

}  // namespace
}  // namespace rat::apps
