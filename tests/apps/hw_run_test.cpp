#include "apps/hw_run.hpp"

#include <gtest/gtest.h>

#include "core/units.hpp"

namespace rat::apps {
namespace {

rcsim::Workload simple_workload(std::size_t iters) {
  rcsim::Workload w;
  w.n_iterations = iters;
  w.io = [](std::size_t) {
    rcsim::IterationIo io;
    io.input_chunks_bytes = {2048};
    io.output_chunks_bytes = {4};
    return io;
  };
  w.cycles = [](std::size_t) { return std::uint64_t{21056}; };
  return w;
}

TEST(HwRun, PackagesMeasuredRecord) {
  const auto run = simulate_on_platform(simple_workload(400),
                                        rcsim::nallatech_h101(),
                                        core::mhz(150),
                                        rcsim::Buffering::kSingle, 0.578);
  EXPECT_DOUBLE_EQ(run.measured.fclock_hz, core::mhz(150));
  EXPECT_GT(run.measured.t_comm_sec, 0.0);
  EXPECT_GT(run.measured.t_comp_sec, 0.0);
  EXPECT_NEAR(run.measured.speedup, 0.578 / run.exec.t_total_sec, 1e-12);
  EXPECT_NEAR(run.measured.t_comm_sec,
              run.exec.t_comm_sec / 400.0, 1e-15);
  EXPECT_NEAR(run.measured.util_comm + run.measured.util_comp, 1.0, 1e-12);
  EXPECT_TRUE(run.exec.timeline.lanes_consistent());
}

TEST(HwRun, PlatformSyncFlowsIntoTotals) {
  const auto platform = rcsim::nallatech_h101();
  const auto run = simulate_on_platform(
      simple_workload(100), platform, core::mhz(150),
      rcsim::Buffering::kSingle, 0.578);
  EXPECT_NEAR(run.exec.t_sync_sec, 100.0 * platform.host_sync_sec, 1e-12);
  // Total includes sync; comm/comp do not.
  EXPECT_GT(run.exec.t_total_sec,
            run.exec.t_comm_sec + run.exec.t_comp_sec);
}

TEST(HwRun, BufferingModeRespected) {
  const auto sb = simulate_on_platform(simple_workload(100),
                                       rcsim::nallatech_h101(),
                                       core::mhz(150),
                                       rcsim::Buffering::kSingle, 0.578);
  const auto db = simulate_on_platform(simple_workload(100),
                                       rcsim::nallatech_h101(),
                                       core::mhz(150),
                                       rcsim::Buffering::kDouble, 0.578);
  EXPECT_LE(db.exec.t_total_sec, sb.exec.t_total_sec);
  EXPECT_GE(db.measured.speedup, sb.measured.speedup);
}

}  // namespace
}  // namespace rat::apps
