#include "apps/pdf2d.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "apps/pdf1d.hpp"
#include "apps/workload.hpp"
#include "fixedpoint/error_analysis.hpp"

namespace rat::apps {
namespace {

Pdf2dConfig small_cfg() {
  Pdf2dConfig cfg;
  cfg.bins_per_dim = 32;
  cfg.bandwidth = 0.08;
  cfg.batch_words = 128;
  return cfg;
}

double integrate2d(const std::vector<double>& pdf, std::size_t bins) {
  const double cell = 1.0 / static_cast<double>(bins * bins);
  return std::accumulate(pdf.begin(), pdf.end(), 0.0) * cell;
}

TEST(Pdf2dConfig, Validation) {
  Pdf2dConfig c = small_cfg();
  c.bins_per_dim = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_cfg();
  c.batch_words = 3;  // must be even
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = small_cfg();
  c.bandwidth = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Pdf2dConfig, DerivedQuantities) {
  const Pdf2dConfig paper;
  EXPECT_EQ(paper.n_bins(), 65536u);
  EXPECT_EQ(paper.samples_per_batch(), 512u);
  EXPECT_DOUBLE_EQ(pdf2d_ops_per_word(paper), 393216.0);  // Table 5
}

TEST(Pdf2dSoftware, QuadraticIntegratesToOne) {
  const auto xs = gaussian_mixture_2d(8000, 41);
  const Pdf2dConfig cfg = small_cfg();
  const auto pdf = estimate_pdf2d_quadratic(xs, cfg);
  ASSERT_EQ(pdf.size(), cfg.n_bins());
  EXPECT_NEAR(integrate2d(pdf, cfg.bins_per_dim), 1.0, 0.05);
  for (double p : pdf) ASSERT_GE(p, 0.0);
}

TEST(Pdf2dSoftware, GaussianIntegratesToOne) {
  const auto xs = gaussian_mixture_2d(4000, 43);
  const Pdf2dConfig cfg = small_cfg();
  const auto pdf = estimate_pdf2d_gaussian(xs, cfg);
  EXPECT_NEAR(integrate2d(pdf, cfg.bins_per_dim), 1.0, 0.05);
}

TEST(Pdf2dSoftware, DensityConcentratesAtBlobCenters) {
  const auto xs = gaussian_mixture_2d(20000, 47);
  const Pdf2dConfig cfg = small_cfg();
  const auto pdf = estimate_pdf2d_quadratic(xs, cfg);
  const auto at = [&](double x, double y) {
    const auto i = static_cast<std::size_t>(x * cfg.bins_per_dim);
    const auto j = static_cast<std::size_t>(y * cfg.bins_per_dim);
    return pdf[i * cfg.bins_per_dim + j];
  };
  EXPECT_GT(at(0.35, 0.40), at(0.05, 0.95) * 3.0);
  EXPECT_GT(at(0.65, 0.62), at(0.95, 0.05) * 3.0);
}

TEST(Pdf2dSoftware, OpCountMatchesAnalyticFormula) {
  const auto xs = gaussian_mixture_2d(200, 53);
  const Pdf2dConfig cfg = small_cfg();
  OpCounter ops;
  estimate_pdf2d_quadratic_counted(xs, cfg, ops);
  // Six operations per bin update per sample (paper §5.1).
  EXPECT_EQ(ops.total_unit_weight(), 6ull * 200ull * cfg.n_bins());
}

TEST(Pdf2dDesign, CycleModelMatchesReconstructedActual) {
  const Pdf2dDesign d;  // paper configuration: 16 pipelines, 256x256 bins
  // 1024 words x 1.5 cycles x 4096 bins/pipeline + one fill per strip
  // pass (4 passes by default) = 6.29E6 cycles.
  EXPECT_EQ(d.cycles_per_iteration(), 1024u * 6144u + 4u * 96u);
  const double t150 = static_cast<double>(d.cycles_per_iteration()) / 150e6;
  // Reconstructed actual tcomp ~4.2E-2 s (see EXPERIMENTS.md): the
  // conservative prediction was 5.59E-2.
  EXPECT_NEAR(t150, 4.19e-2, 0.05e-2);
}

TEST(Pdf2dDesign, EffectiveRateBeatsConservativeWorksheet) {
  const Pdf2dDesign d;
  const double eff = rcsim::effective_ops_per_cycle(
      d.pipeline_spec(), d.config().batch_words);
  EXPECT_GT(eff, 48.0);       // conservative worksheet value
  EXPECT_NEAR(eff, 64.0, 1.0);  // what the design actually sustains
}

TEST(Pdf2dDesign, IoPatternChunksTheResultGrid) {
  const Pdf2dDesign d;
  const auto io = d.io(0, 400);
  ASSERT_EQ(io.input_chunks_bytes.size(), 2u);  // one block per dimension
  EXPECT_EQ(io.input_chunks_bytes[0], 2048u);
  // 65536 bins x 4 B in 512-byte chunks = 512 transfers.
  EXPECT_EQ(io.output_chunks_bytes.size(), 512u);
  std::size_t total = 0;
  for (auto b : io.output_chunks_bytes) total += b;
  EXPECT_EQ(total, 65536u * 4u);
}

TEST(Pdf2dDesign, FixedPointTracksDoubleReference) {
  const auto xs = gaussian_mixture_2d(256, 59);
  Pdf2dConfig cfg = small_cfg();
  const Pdf2dDesign d(cfg, 16);
  const auto hw = d.estimate(xs);
  const auto sw = estimate_pdf2d_quadratic(xs, cfg);
  const auto rep = fx::compare(sw, hw);
  EXPECT_LE(rep.max_error_percent, 2.0);
}

TEST(Pdf2dDesign, RejectsIndivisiblePipelines) {
  EXPECT_THROW(Pdf2dDesign(small_cfg(), 7), std::invalid_argument);
  EXPECT_NO_THROW(Pdf2dDesign(small_cfg(), 16));
}

TEST(Pdf2dDesign, ResourceFootprintGrowsButStillFits) {
  const auto device = rcsim::virtex4_lx100();
  const auto r1 =
      core::run_resource_test(Pdf1dDesign().resource_items(), device);
  const auto r2 =
      core::run_resource_test(Pdf2dDesign().resource_items(), device);
  EXPECT_TRUE(r2.feasible);
  // Paper §5.1: usage increased over 1-D but far from exhausting the chip;
  // Table 7 reports 21% BRAM, which the strip-mined accumulators hit.
  EXPECT_GT(r2.utilization.dsp_fraction, r1.utilization.dsp_fraction);
  EXPECT_GT(r2.utilization.bram_fraction, r1.utilization.bram_fraction);
  EXPECT_NEAR(r2.utilization.bram_fraction, 0.21, 0.01);
  EXPECT_LT(r2.utilization.max_fraction(), 0.6);
}

TEST(Pdf2dDesign, StripMiningTradesBramForFillCycles) {
  const Pdf2dDesign banked(Pdf2dConfig{}, 16, fx::Format{18, 17, true}, 1);
  const Pdf2dDesign striped(Pdf2dConfig{}, 16, fx::Format{18, 17, true}, 8);
  const auto device = rcsim::virtex4_lx100();
  const auto rb = core::run_resource_test(banked.resource_items(), device);
  const auto rs = core::run_resource_test(striped.resource_items(), device);
  EXPECT_GT(rb.usage.bram, rs.usage.bram);
  // Cycle cost of striping: one extra fill per pass — noise at this scale.
  EXPECT_GT(striped.cycles_per_iteration(), banked.cycles_per_iteration());
  EXPECT_LT(static_cast<double>(striped.cycles_per_iteration()) /
                static_cast<double>(banked.cycles_per_iteration()),
            1.001);
  // Invalid strip factors are rejected.
  EXPECT_THROW(Pdf2dDesign(Pdf2dConfig{}, 16, fx::Format{18, 17, true}, 0),
               std::invalid_argument);
  EXPECT_THROW(
      Pdf2dDesign(Pdf2dConfig{}, 16, fx::Format{18, 17, true}, 4097),
      std::invalid_argument);
}

}  // namespace
}  // namespace rat::apps
