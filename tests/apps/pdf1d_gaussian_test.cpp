#include "apps/pdf1d_gaussian.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "apps/workload.hpp"
#include "core/throughput.hpp"
#include "fixedpoint/error_analysis.hpp"

namespace rat::apps {
namespace {

Pdf1dConfig small_cfg() {
  Pdf1dConfig cfg;
  cfg.n_bins = 64;
  cfg.bandwidth = 0.05;
  cfg.batch = 128;
  return cfg;
}

TEST(Pdf1dGaussian, ConstructionValidation) {
  EXPECT_THROW(Pdf1dGaussianDesign(small_cfg(), 7), std::invalid_argument);
  EXPECT_THROW(Pdf1dGaussianDesign(small_cfg(), 0), std::invalid_argument);
  EXPECT_NO_THROW(Pdf1dGaussianDesign(small_cfg(), 8));
}

TEST(Pdf1dGaussian, TracksSoftwareGaussianReference) {
  const auto xs = gaussian_mixture_1d(4096, default_mixture_1d(), 61);
  Pdf1dConfig cfg;  // full 256 bins
  const Pdf1dGaussianDesign design(cfg);
  const auto hw = design.estimate(xs);
  const auto sw = estimate_pdf1d_gaussian(xs, cfg);
  const auto rep = fx::compare(sw, hw);
  // LUT interpolation + 18-bit quantization + 3-sigma cutoff: a few %.
  EXPECT_LE(rep.max_error_percent, 3.0);
}

TEST(Pdf1dGaussian, BetterQualityThanQuadraticAgainstTrueGaussian) {
  // Both designs estimate the same density; judged against the Gaussian
  // software reference, the LUT variant must be the more faithful one.
  const auto xs = gaussian_mixture_1d(8192, default_mixture_1d(), 67);
  Pdf1dConfig cfg;
  const auto reference = estimate_pdf1d_gaussian(xs, cfg);
  const auto lut_hw = Pdf1dGaussianDesign(cfg).estimate(xs);
  const auto quad_hw = Pdf1dDesign(cfg).estimate(xs);
  EXPECT_LT(fx::compare(reference, lut_hw).rmse,
            fx::compare(reference, quad_hw).rmse);
}

TEST(Pdf1dGaussian, EstimateIntegratesToOne) {
  const auto xs = gaussian_mixture_1d(8192, default_mixture_1d(), 71);
  Pdf1dConfig cfg;
  const auto pdf = Pdf1dGaussianDesign(cfg).estimate(xs);
  const double mass = std::accumulate(pdf.begin(), pdf.end(), 0.0) /
                      static_cast<double>(cfg.n_bins);
  EXPECT_NEAR(mass, 1.0, 0.03);
}

TEST(Pdf1dGaussian, SlowerCycleModelThanQuadratic) {
  const Pdf1dGaussianDesign lut;
  const Pdf1dDesign quad;
  EXPECT_GT(lut.cycles_per_iteration(), quad.cycles_per_iteration());
  // 3 cycles per bin per pipeline vs 1: about 3x the update time.
  const double ratio = static_cast<double>(lut.cycles_per_iteration()) /
                       static_cast<double>(quad.cycles_per_iteration());
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 3.5);
}

TEST(Pdf1dGaussian, CostsMoreResources) {
  const auto device = rcsim::virtex4_lx100();
  const auto lut = core::run_resource_test(
      Pdf1dGaussianDesign().resource_items(), device);
  const auto quad =
      core::run_resource_test(Pdf1dDesign().resource_items(), device);
  EXPECT_GT(lut.usage.dsp, quad.usage.dsp);    // extra interp multiplier
  EXPECT_GT(lut.usage.bram, quad.usage.bram);  // the tables
  EXPECT_TRUE(lut.feasible);                   // still fits comfortably
}

TEST(Pdf1dGaussian, WorksheetReflectsFiveOpKernel) {
  const Pdf1dGaussianDesign design;
  const auto in = design.rat_inputs();
  EXPECT_NO_THROW(in.validate());
  EXPECT_DOUBLE_EQ(in.comp.ops_per_element, 5.0 * 256.0);
  // Lower predicted speedup than the shipped quadratic design at the same
  // clock — the quality/speed trade the methodology would weigh.
  const auto lut_pred = core::predict(in, 150e6);
  const auto quad_pred = core::predict(core::pdf1d_inputs(), 150e6);
  EXPECT_LT(lut_pred.speedup_sb, quad_pred.speedup_sb);
}

TEST(Pdf1dGaussian, ErrorFloorSetByWindowCutoffNotDatapath) {
  // The dominant deviation from the exact Gaussian reference is the
  // hardware's 3-sigma kernel cutoff (tail weight exp(-4.5) ~ 1.1% is
  // dropped per contribution) — a *design* property. Neither widening the
  // datapath nor enlarging the LUT moves the floor much; both knobs stay
  // within a factor of two of each other, and all stay under the design's
  // quality budget.
  const auto xs = gaussian_mixture_1d(2048, default_mixture_1d(), 73);
  Pdf1dConfig cfg = small_cfg();
  const auto sw = estimate_pdf1d_gaussian(xs, cfg);

  const Pdf1dGaussianDesign small_table(cfg, 8, fx::Format{18, 17, true}, 6);
  const Pdf1dGaussianDesign big_table(cfg, 8, fx::Format{18, 17, true}, 11);
  const double err_small = fx::compare(sw, small_table.estimate(xs)).rmse;
  const double err_big = fx::compare(sw, big_table.estimate(xs)).rmse;
  EXPECT_LT(err_big, err_small * 2.0);
  EXPECT_GT(err_big, err_small * 0.5);

  const Pdf1dGaussianDesign fixed_table(cfg, 8, fx::Format{18, 17, true}, 8);
  const double err14 = fx::compare(
      sw, fixed_table.estimate_with_format(xs, fx::Format{14, 13, true}))
                           .rmse;
  const double err24 = fx::compare(
      sw, fixed_table.estimate_with_format(xs, fx::Format{24, 23, true}))
                           .rmse;
  EXPECT_LT(err24, err14 * 2.0);
  EXPECT_GT(err24, err14 * 0.5);
  // And the floor is comfortably inside the quality budget.
  for (double e : {err_small, err_big, err14, err24}) EXPECT_LT(e, 0.01);
}

}  // namespace
}  // namespace rat::apps
