#include "apps/md.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rat::apps {
namespace {

MdConfig test_cfg() {
  MdConfig cfg;
  cfg.cutoff = 0.34;
  cfg.sigma_lj = 0.03;
  cfg.epsilon = 1.0;
  cfg.dt = 1e-5;
  return cfg;
}

TEST(MdConfig, Validation) {
  MdConfig c = test_cfg();
  c.cutoff = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = test_cfg();
  c.epsilon = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = test_cfg();
  c.sigma_lj = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = test_cfg();
  c.dt = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(MdForces, NewtonsThirdLawNetForceZero) {
  auto sys = particle_box(256, 1.0, 1.0, 71);
  compute_forces(sys, test_cfg());
  double fx = 0, fy = 0, fz = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    fx += sys.ax[i];
    fy += sys.ay[i];
    fz += sys.az[i];
  }
  EXPECT_NEAR(fx, 0.0, 1e-9);
  EXPECT_NEAR(fy, 0.0, 1e-9);
  EXPECT_NEAR(fz, 0.0, 1e-9);
}

TEST(MdForces, TwoParticleForceIsCentralAndRepulsiveUpClose) {
  ParticleSystem sys;
  sys.box_length = 10.0;
  const double r = 0.02;  // < sigma: strongly repulsive
  sys.px = {5.0, 5.0 + r};
  sys.py = {5.0, 5.0};
  sys.pz = {5.0, 5.0};
  sys.vx = sys.vy = sys.vz = {0.0, 0.0};
  sys.ax = sys.ay = sys.az = {0.0, 0.0};
  MdConfig cfg = test_cfg();
  cfg.periodic = false;
  const auto res = compute_forces(sys, cfg);
  EXPECT_EQ(res.interactions, 1u);
  EXPECT_LT(sys.ax[0], 0.0);  // pushed apart
  EXPECT_GT(sys.ax[1], 0.0);
  EXPECT_NEAR(sys.ax[0], -sys.ax[1], 1e-9);
  EXPECT_NEAR(sys.ay[0], 0.0, 1e-12);  // central force
}

TEST(MdForces, AttractiveInTheWell) {
  ParticleSystem sys;
  sys.box_length = 10.0;
  const double r = 0.04;  // > 2^(1/6) sigma = 0.0337: attractive region
  sys.px = {5.0, 5.0 + r};
  sys.py = {5.0, 5.0};
  sys.pz = {5.0, 5.0};
  sys.vx = sys.vy = sys.vz = {0.0, 0.0};
  sys.ax = sys.ay = sys.az = {0.0, 0.0};
  MdConfig cfg = test_cfg();
  cfg.periodic = false;
  compute_forces(sys, cfg);
  EXPECT_GT(sys.ax[0], 0.0);  // pulled together
  EXPECT_LT(sys.ax[1], 0.0);
}

TEST(MdForces, CutoffSkipsDistantPairs) {
  ParticleSystem sys;
  sys.box_length = 10.0;
  sys.px = {1.0, 5.0};  // far apart, far below half-box for min-image
  sys.py = {1.0, 1.0};
  sys.pz = {1.0, 1.0};
  sys.vx = sys.vy = sys.vz = {0.0, 0.0};
  sys.ax = sys.ay = sys.az = {0.0, 0.0};
  const auto res = compute_forces(sys, test_cfg());
  EXPECT_EQ(res.pairs_checked, 1u);
  EXPECT_EQ(res.interactions, 0u);
  EXPECT_DOUBLE_EQ(sys.ax[0], 0.0);
}

TEST(MdForces, MinimumImageWrapsAcrossBoundary) {
  ParticleSystem sys;
  sys.box_length = 1.0;
  sys.px = {0.01, 0.99};  // 0.02 apart through the boundary
  sys.py = {0.5, 0.5};
  sys.pz = {0.5, 0.5};
  sys.vx = sys.vy = sys.vz = {0.0, 0.0};
  sys.ax = sys.ay = sys.az = {0.0, 0.0};
  const auto res = compute_forces(sys, test_cfg());
  EXPECT_EQ(res.interactions, 1u);
  EXPECT_GT(std::fabs(sys.ax[0]), 0.0);
}

TEST(MdForces, InteractionFractionMatchesCutoffVolume) {
  // In a uniform periodic box, the in-cutoff fraction approaches the
  // cutoff sphere's volume fraction: (4/3) pi rc^3 ~ 16.5% at rc = 0.34.
  auto sys = particle_box(2048, 1.0, 1.0, 73);
  const auto res = compute_forces(sys, test_cfg());
  const double frac = static_cast<double>(res.interactions) /
                      static_cast<double>(res.pairs_checked);
  EXPECT_NEAR(frac, 4.0 / 3.0 * M_PI * std::pow(0.34, 3), 0.01);
}

TEST(MdForces, CountedVariantMatchesUncounted) {
  auto a = particle_box(128, 1.0, 1.0, 79);
  auto b = a;
  OpCounter ops;
  const auto ra = compute_forces(a, test_cfg());
  const auto rb = compute_forces_counted(b, test_cfg(), ops);
  EXPECT_EQ(ra.interactions, rb.interactions);
  EXPECT_DOUBLE_EQ(ra.potential_energy, rb.potential_energy);
  EXPECT_EQ(a.ax, b.ax);
  // Every pair was counted: 9 ops per candidate at minimum.
  EXPECT_GE(ops.total_unit_weight(), 9u * ra.pairs_checked);
  EXPECT_EQ(ops.divs, ra.interactions);
}

TEST(MdForces, F32AgreesWithF64) {
  auto a = particle_box(256, 1.0, 1.0, 83);
  auto b = a;
  const auto r64 = compute_forces(a, test_cfg());
  const auto r32 = compute_forces_f32(b, test_cfg());
  EXPECT_EQ(r64.interactions, r32.interactions);
  EXPECT_NEAR(r32.potential_energy, r64.potential_energy,
              1e-3 * std::fabs(r64.potential_energy) + 1e-6);
}

TEST(MdForces, CellListMatchesAllPairsExactly) {
  // Fine cutoff so a real grid (10 cells/dim) is exercised.
  MdConfig cfg = test_cfg();
  cfg.cutoff = 0.1;
  auto a = particle_box(1024, 1.0, 1.0, 211);
  auto b = a;
  const auto all = compute_forces(a, cfg);
  const auto cell = compute_forces_celllist(b, cfg);
  EXPECT_EQ(cell.interactions, all.interactions);
  EXPECT_NEAR(cell.potential_energy, all.potential_energy,
              1e-9 * std::fabs(all.potential_energy) + 1e-12);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.ax[i], b.ax[i], 1e-9 + 1e-9 * std::fabs(a.ax[i])) << i;
    EXPECT_NEAR(a.az[i], b.az[i], 1e-9 + 1e-9 * std::fabs(a.az[i])) << i;
  }
  // And it prunes: far fewer candidate pairs than N(N-1)/2.
  EXPECT_LT(cell.pairs_checked, all.pairs_checked / 5);
}

TEST(MdForces, CellListWrapsPeriodicBoundary) {
  MdConfig cfg = test_cfg();
  cfg.cutoff = 0.1;
  ParticleSystem sys;
  sys.box_length = 1.0;
  sys.px = {0.01, 0.99, 0.5};  // first two interact through the boundary
  sys.py = {0.5, 0.5, 0.5};
  sys.pz = {0.5, 0.5, 0.5};
  sys.vx = sys.vy = sys.vz = {0.0, 0.0, 0.0};
  sys.ax = sys.ay = sys.az = {0.0, 0.0, 0.0};
  const auto res = compute_forces_celllist(sys, cfg);
  EXPECT_EQ(res.interactions, 1u);
}

TEST(MdForces, CellListFallsBackForCoarseCutoffs) {
  // cutoff 0.34 -> 2 cells/dim: must silently use the all-pairs oracle.
  auto a = particle_box(256, 1.0, 1.0, 223);
  auto b = a;
  const auto all = compute_forces(a, test_cfg());
  const auto cell = compute_forces_celllist(b, test_cfg());
  EXPECT_EQ(cell.pairs_checked, all.pairs_checked);
  EXPECT_EQ(cell.interactions, all.interactions);
}

TEST(MdForces, TooFewParticlesThrows) {
  auto sys = particle_box(1, 1.0, 1.0, 89);
  EXPECT_THROW(compute_forces(sys, test_cfg()), std::invalid_argument);
}

TEST(MdIntegration, EnergyApproximatelyConservedOverShortRun) {
  auto sys = particle_box(128, 1.0, 0.05, 97);
  MdConfig cfg = test_cfg();
  cfg.dt = 2e-6;
  const auto f0 = compute_forces(sys, cfg);  // initialize accelerations
  const double e0 = kinetic_energy(sys) + f0.potential_energy;
  double pe = f0.potential_energy;
  for (int step = 0; step < 50; ++step)
    pe = velocity_verlet_step(sys, cfg).potential_energy;
  const double e1 = kinetic_energy(sys) + pe;
  const double scale =
      std::max({std::fabs(e0), std::fabs(e1), kinetic_energy(sys), 1e-9});
  EXPECT_LT(std::fabs(e1 - e0) / scale, 0.05);
}

TEST(MdObservables, TemperatureMatchesInitialization) {
  // particle_box draws velocities from normal(0, sqrt(T)) per component:
  // kinetic temperature ~ T.
  const auto sys = particle_box(8192, 1.0, 1.7, 131);
  EXPECT_NEAR(temperature(sys), 1.7, 0.05);
  const auto cold = particle_box(8192, 1.0, 0.0, 131);
  EXPECT_DOUBLE_EQ(temperature(cold), 0.0);
}

TEST(MdObservables, MomentumConservedByIntegrator) {
  auto sys = particle_box(256, 1.0, 0.5, 137);
  // Remove the small random net drift so conservation is visible.
  double mx = 0, my = 0, mz = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    mx += sys.vx[i];
    my += sys.vy[i];
    mz += sys.vz[i];
  }
  for (std::size_t i = 0; i < sys.size(); ++i) {
    sys.vx[i] -= mx / static_cast<double>(sys.size());
    sys.vy[i] -= my / static_cast<double>(sys.size());
    sys.vz[i] -= mz / static_cast<double>(sys.size());
  }
  EXPECT_NEAR(net_momentum(sys), 0.0, 1e-10);
  MdConfig cfg = test_cfg();
  cfg.dt = 2e-6;
  compute_forces(sys, cfg);
  for (int step = 0; step < 25; ++step) velocity_verlet_step(sys, cfg);
  EXPECT_NEAR(net_momentum(sys), 0.0, 1e-8);
}

TEST(MdIntegration, PositionsStayInBox) {
  auto sys = particle_box(64, 1.0, 1.0, 101);
  MdConfig cfg = test_cfg();
  compute_forces(sys, cfg);
  for (int step = 0; step < 20; ++step) velocity_verlet_step(sys, cfg);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    ASSERT_GE(sys.px[i], 0.0);
    ASSERT_LT(sys.px[i], 1.0);
    ASSERT_GE(sys.py[i], 0.0);
    ASSERT_LT(sys.py[i], 1.0);
  }
}

TEST(MdDesign, CyclesAreDataDependent) {
  const MdDesign d(test_cfg());
  // A denser neighborhood (larger cutoff) must cost more cycles.
  auto sys = particle_box(512, 1.0, 1.0, 103);
  MdConfig wide = test_cfg();
  wide.cutoff = 0.45;
  const MdDesign dw(wide);
  EXPECT_GT(dw.cycles_for(sys), d.cycles_for(sys));
}

TEST(MdDesign, CyclesFromCountsFormula) {
  const MdDesign d(test_cfg(), 4);
  // 100 undirected interactions -> 200 directed; candidates 400, misses
  // 200: (200*7 + 200*1)/4 + 50*10 = 400 + 500.
  EXPECT_EQ(d.cycles_from_counts(100, 50), 400u + 500u);
}

TEST(MdDesign, EffectiveRateFallsShortOfTunedWorksheet) {
  // The heart of the MD case study: the dataset's locality supports only
  // ~30 effective ops/cycle against the 50 the worksheet was tuned to.
  // Must run at the paper's full 16384 molecules — the per-molecule
  // neighborhood (and hence the effective rate) scales with density.
  auto sys = particle_box(16384, 1.0, 1.0, 107);
  const MdDesign d(test_cfg());
  const auto cycles = d.cycles_for(sys);
  const double ops = 164000.0 * static_cast<double>(sys.size());
  const double eff = ops / static_cast<double>(cycles);
  EXPECT_LT(eff, 40.0);
  EXPECT_GT(eff, 20.0);
}

TEST(MdDesign, IoMovesWholeDatasetBothWays) {
  const MdDesign d(test_cfg());
  const auto io = d.io(16384);
  ASSERT_EQ(io.input_chunks_bytes.size(), 1u);
  EXPECT_EQ(io.input_chunks_bytes[0], 16384u * 36u);
  EXPECT_EQ(io.output_chunks_bytes[0], 16384u * 36u);
}

TEST(MdDesign, NearlyExhaustsEp2s180) {
  const auto device = rcsim::stratix2_ep2s180();
  const auto r =
      core::run_resource_test(MdDesign(test_cfg()).resource_items(), device);
  EXPECT_TRUE(r.feasible);
  // Table 10 shape: large fraction of DSPs and combinatorial logic.
  EXPECT_GT(r.utilization.dsp_fraction, 0.6);
  EXPECT_GT(r.utilization.logic_fraction, 0.6);
}

TEST(MdDesign, LaneValidation) {
  EXPECT_THROW(MdDesign(test_cfg(), 0), std::invalid_argument);
  EXPECT_THROW(MdDesign(test_cfg(), -2), std::invalid_argument);
}

TEST(MdOpsPerElement, SameOrderAsPaperEstimate) {
  auto sys = particle_box(4096, 1.0, 1.0, 109);
  const double ops = md_measured_ops_per_element(sys, test_cfg());
  // Counting scope differs from ORNL's (we charge all-pairs candidate
  // checks); same order of magnitude as Table 8's 164000.
  EXPECT_GT(ops, 164000.0 / 10.0);
  EXPECT_LT(ops, 164000.0 * 10.0);
}

}  // namespace
}  // namespace rat::apps
