// The shared JSON layer: shortest round-trip number rendering, string
// escaping, and the strict recursive-descent parser behind the service
// protocol.
#include "io/json.hpp"

#include <gtest/gtest.h>

#include <charconv>
#include <limits>
#include <string>

namespace rat::io {
namespace {

double reparse(const std::string& s) {
  double x = 0.0;
  std::from_chars(s.data(), s.data() + s.size(), x);
  return x;
}

TEST(Json, NumberIsShortestRoundTrip) {
  // Exact values print exactly; irrationals survive the round trip.
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.0), "1");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(75e6), "75000000");
  for (double x : {0.1, 1.0 / 3.0, 0.578, 1e300, -2.5e-8,
                   std::numeric_limits<double>::denorm_min()}) {
    EXPECT_EQ(reparse(json_number(x)), x) << json_number(x);
  }
}

TEST(Json, EscapeCoversQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(json_str("x\ny"), "\"x\\ny\"");
}

TEST(JsonParse, ScalarsAndContainers) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_EQ(parse_json("-12.5e2").number, -1250.0);
  EXPECT_EQ(parse_json("\"hi\"").string, "hi");
  const JsonValue arr = parse_json(" [1, \"two\", [3]] ");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.items.size(), 3u);
  EXPECT_EQ(arr.items[0].number, 1.0);
  EXPECT_EQ(arr.items[1].string, "two");
  EXPECT_EQ(arr.items[2].items[0].number, 3.0);
  const JsonValue obj = parse_json("{\"a\":{\"b\":true},\"c\":[]}");
  ASSERT_TRUE(obj.is_object());
  EXPECT_TRUE(obj.find("a")->find("b")->boolean);
  EXPECT_TRUE(obj.find("c")->is_array());
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapesIncludingSurrogatePairs) {
  EXPECT_EQ(parse_json("\"a\\n\\t\\\"\\\\b\"").string, "a\n\t\"\\b");
  EXPECT_EQ(parse_json("\"\\u0041\"").string, "A");
  EXPECT_EQ(parse_json("\"\\u00e9\"").string, "\xc3\xa9");      // é
  EXPECT_EQ(parse_json("\"\\u20ac\"").string, "\xe2\x82\xac");  // €
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse_json("\"\\ud83d\\ude00\"").string,
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1.2.3", "nan",
        "\"unterminated", "\"bad\\q\"", "\"\\ud83d\"",  // lone surrogate
        "{} trailing", "\"tab\there\""}) {
    EXPECT_THROW(parse_json(bad), std::invalid_argument) << bad;
  }
}

TEST(JsonParse, ReportsByteOffset) {
  try {
    parse_json("{\"a\":flase}");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(JsonParse, DepthCapStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW(parse_json(deep), std::invalid_argument);
  std::string ok_depth;
  for (int i = 0; i < 32; ++i) ok_depth += '[';
  for (int i = 0; i < 32; ++i) ok_depth += ']';
  EXPECT_NO_THROW(parse_json(ok_depth));
}

TEST(JsonParse, NonFiniteNumbersAreRejected) {
  EXPECT_THROW(parse_json("1e999"), std::invalid_argument);
  EXPECT_THROW(parse_json("Infinity"), std::invalid_argument);
}

}  // namespace
}  // namespace rat::io
