// Worksheet file/directory loading: success round-trips, and every
// failure mode mapped to a structured Diagnostic with file:line:column.
#include "io/loader.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/throughput.hpp"

namespace rat::io {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

fs::path write_file(const fs::path& path, const std::string& text) {
  std::ofstream f(path);
  f << text;
  return path;
}

TEST(LoadWorksheet, RoundTripsTheCaseStudies) {
  const fs::path dir = fresh_dir("load_roundtrip");
  for (const core::RatInputs& original :
       {core::pdf1d_inputs(), core::pdf2d_inputs(), core::md_inputs()}) {
    const fs::path p = write_file(dir / "case.rat", original.serialize());
    const core::RatInputs loaded = load_worksheet(p);
    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.serialize(), original.serialize());
  }
}

TEST(LoadWorksheet, MissingFileIsIoDiagnostic) {
  const fs::path p = fresh_dir("load_missing") / "nope.rat";
  try {
    load_worksheet(p);
    FAIL() << "expected ParseError";
  } catch (const core::ParseError& e) {
    EXPECT_EQ(e.diagnostic().code, core::ParseErrorCode::kIoError);
    EXPECT_EQ(e.diagnostic().file, p.string());
    EXPECT_NE(std::string(e.what()).find(p.string()), std::string::npos);
  }
}

TEST(LoadWorksheet, ReportsFileLineAndColumn) {
  const fs::path p = write_file(fresh_dir("load_badnum") / "bad.rat",
                                "name = x\nalpha_write = 0.5x\n");
  try {
    load_worksheet(p);
    FAIL() << "expected ParseError";
  } catch (const core::ParseError& e) {
    const core::Diagnostic& d = e.diagnostic();
    EXPECT_EQ(d.file, p.string());
    EXPECT_EQ(d.line, 2u);
    EXPECT_EQ(d.column, 15u);  // the value "0.5x" starts at column 15
    EXPECT_EQ(d.code, core::ParseErrorCode::kBadNumber);
    EXPECT_EQ(d.key, "alpha_write");
    EXPECT_NE(d.to_string().find(p.string() + ":2:15"), std::string::npos);
    EXPECT_NE(d.to_string().find("alpha_write"), std::string::npos);
  }
}

TEST(LoadWorksheet, ValidateFailureKeepsFileContext) {
  // Parses cleanly, but alpha_write is outside (0,1].
  core::RatInputs in = core::pdf1d_inputs();
  in.comm.alpha_write = 2.0;
  const fs::path p =
      write_file(fresh_dir("load_invalid") / "bad.rat", in.serialize());
  try {
    load_worksheet(p);
    FAIL() << "expected ParseError";
  } catch (const core::ParseError& e) {
    EXPECT_EQ(e.diagnostic().code, core::ParseErrorCode::kInvalidValue);
    EXPECT_EQ(e.diagnostic().file, p.string());
    EXPECT_NE(e.diagnostic().message.find("alpha_write"), std::string::npos);
  }
}

TEST(WorksheetDir, LoadsSortedAndIgnoresOtherExtensions) {
  const fs::path dir = fresh_dir("dir_sorted");
  write_file(dir / "b.rat", core::pdf2d_inputs().serialize());
  write_file(dir / "a.rat", core::pdf1d_inputs().serialize());
  write_file(dir / "notes.txt", "not a worksheet");
  const auto results = load_worksheet_dir(dir);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].path.filename(), "a.rat");
  EXPECT_EQ(results[1].path.filename(), "b.rat");
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(results[0].inputs->name, core::pdf1d_inputs().name);
  EXPECT_EQ(results[1].inputs->name, core::pdf2d_inputs().name);
}

TEST(WorksheetDir, OneBadFileDoesNotKillTheBatch) {
  const fs::path dir = fresh_dir("dir_partial");
  write_file(dir / "good.rat", core::md_inputs().serialize());
  write_file(dir / "broken.rat", "name = broken\nelements_in = nope\n");
  const auto results = load_worksheet_dir(dir);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok());  // broken.rat sorts first
  EXPECT_TRUE(results[1].ok());
  ASSERT_TRUE(results[0].diagnostic.has_value());
  EXPECT_EQ(results[0].diagnostic->line, 2u);
  EXPECT_EQ(results[0].diagnostic->key, "elements_in");
}

TEST(WorksheetDir, MissingDirectoryThrows) {
  const fs::path dir = fresh_dir("dir_gone") / "nope";
  EXPECT_THROW(load_worksheet_dir(dir), core::ParseError);
}

TEST(WorksheetDir, EmptyDirectoryYieldsNoResults) {
  EXPECT_TRUE(load_worksheet_dir(fresh_dir("dir_empty")).empty());
}

}  // namespace
}  // namespace rat::io
