// Batch evaluation runner: partial-failure semantics, exact agreement
// with predict_all, thread-count invariance, and the JSON/CSV emitters.
#include "io/batch.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/throughput.hpp"
#include "store/error.hpp"

namespace rat::io {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void write_file(const fs::path& path, const std::string& text) {
  std::ofstream f(path);
  f << text;
}

/// The acceptance fixture: the three case studies plus one deliberately
/// malformed worksheet (bad clock token on line 2).
fs::path mixed_fixture(const std::string& name) {
  const fs::path dir = fresh_dir(name);
  write_file(dir / "pdf1d.rat", core::pdf1d_inputs().serialize());
  write_file(dir / "pdf2d.rat", core::pdf2d_inputs().serialize());
  write_file(dir / "md.rat", core::md_inputs().serialize());
  write_file(dir / "broken.rat", "name = broken\nfclock_hz = 75e6 oops\n");
  return dir;
}

void expect_same_predictions(const std::vector<core::ThroughputPrediction>& a,
                             const std::vector<core::ThroughputPrediction>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-exact: the loaded worksheet round-trips exactly and the batch
    // runner calls the very same predict_all.
    EXPECT_EQ(a[i].fclock_hz, b[i].fclock_hz);
    EXPECT_EQ(a[i].t_write_sec, b[i].t_write_sec);
    EXPECT_EQ(a[i].t_read_sec, b[i].t_read_sec);
    EXPECT_EQ(a[i].t_comm_sec, b[i].t_comm_sec);
    EXPECT_EQ(a[i].t_comp_sec, b[i].t_comp_sec);
    EXPECT_EQ(a[i].t_rc_sb_sec, b[i].t_rc_sb_sec);
    EXPECT_EQ(a[i].t_rc_db_sec, b[i].t_rc_db_sec);
    EXPECT_EQ(a[i].speedup_sb, b[i].speedup_sb);
    EXPECT_EQ(a[i].speedup_db, b[i].speedup_db);
    EXPECT_EQ(a[i].util_comp_sb, b[i].util_comp_sb);
    EXPECT_EQ(a[i].util_comm_sb, b[i].util_comm_sb);
    EXPECT_EQ(a[i].util_comp_db, b[i].util_comp_db);
    EXPECT_EQ(a[i].util_comm_db, b[i].util_comm_db);
  }
}

TEST(Batch, EvaluatesGoodFilesAndDiagnosesTheBadOne) {
  const fs::path dir = mixed_fixture("batch_mixed");
  const BatchResult r = run_batch_dir(dir);
  ASSERT_EQ(r.entries.size(), 4u);
  EXPECT_EQ(r.n_ok, 3u);
  EXPECT_EQ(r.n_failed, 1u);
  EXPECT_FALSE(r.all_ok());

  // Sorted order: broken, md, pdf1d, pdf2d.
  const BatchEntry& broken = r.entries[0];
  ASSERT_FALSE(broken.ok());
  const core::Diagnostic& d = *broken.load.diagnostic;
  EXPECT_EQ(d.file, (dir / "broken.rat").string());
  EXPECT_EQ(d.line, 2u);
  EXPECT_EQ(d.column, 18u);  // the token "oops"
  EXPECT_EQ(d.code, core::ParseErrorCode::kBadList);
  EXPECT_EQ(d.key, "fclock_hz");
  EXPECT_TRUE(broken.predictions.empty());

  // The three good files match predict_all exactly.
  expect_same_predictions(r.entries[1].predictions,
                          core::predict_all(core::md_inputs()));
  expect_same_predictions(r.entries[2].predictions,
                          core::predict_all(core::pdf1d_inputs()));
  expect_same_predictions(r.entries[3].predictions,
                          core::predict_all(core::pdf2d_inputs()));
}

TEST(Batch, ResultIsThreadCountInvariant) {
  const fs::path dir = mixed_fixture("batch_threads");
  const std::string serial = batch_json(run_batch_dir(dir, 1));
  const std::string parallel = batch_json(run_batch_dir(dir, 4));
  EXPECT_EQ(serial, parallel);
}

TEST(Batch, JsonCarriesInputsPredictionsAndDiagnostics) {
  const fs::path dir = mixed_fixture("batch_json");
  const std::string json = batch_json(run_batch_dir(dir));
  EXPECT_NE(json.find("\"schema\":\"rat.batch.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"n_ok\":3"), std::string::npos);
  EXPECT_NE(json.find("\"n_failed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"E_BAD_LIST\""), std::string::npos);
  EXPECT_NE(json.find("\"key\":\"fclock_hz\""), std::string::npos);
  EXPECT_NE(json.find("\"elements_in\":512"), std::string::npos);
  EXPECT_NE(json.find("\"speedup_sb\":"), std::string::npos);
  EXPECT_NE(json.find("\"line\":2"), std::string::npos);
  EXPECT_NE(json.find("\"column\":18"), std::string::npos);
}

TEST(Batch, JsonEscapesWorksheetNames) {
  const fs::path dir = fresh_dir("batch_escape");
  core::RatInputs in = core::pdf1d_inputs();
  in.name = "quote \" and \\ backslash";
  write_file(dir / "esc.rat", in.serialize());
  const std::string json = batch_json(run_batch_dir(dir));
  EXPECT_NE(json.find("quote \\\" and \\\\ backslash"), std::string::npos);
}

TEST(Batch, CsvHasOneRowPerClockPlusErrorRows) {
  const fs::path dir = mixed_fixture("batch_csv");
  const std::string csv = batch_csv(run_batch_dir(dir));
  std::size_t lines = 0;
  for (char ch : csv) lines += ch == '\n';
  // Header + 3 worksheets x 3 clocks + 1 error row.
  EXPECT_EQ(lines, 1u + 9u + 1u);
  EXPECT_NE(csv.find("broken.rat,error"), std::string::npos);
  EXPECT_NE(csv.find("E_BAD_LIST"), std::string::npos);
  EXPECT_NE(csv.find(",ok,"), std::string::npos);
}

TEST(Batch, CsvQuotesFieldsPerRfc4180) {
  // Worksheet names are free text, so commas and quotes can reach the
  // CSV name column; they must come back quoted/doubled, not raw.
  const fs::path dir = fresh_dir("batch_csv_rfc4180");
  core::RatInputs in = core::pdf1d_inputs();
  in.name = "pdf, \"tuned\"";
  write_file(dir / "named.rat", in.serialize());
  const std::string csv = batch_csv(run_batch_dir(dir));
  EXPECT_NE(csv.find(",\"pdf, \"\"tuned\"\"\","), std::string::npos);
  EXPECT_EQ(csv.find(",pdf, \"tuned\","), std::string::npos);
  // Every data row still has the full column count when parsed per
  // RFC 4180 (quotes honoured): count unquoted commas on the name row.
  const std::size_t row_start = csv.find("named.rat");
  ASSERT_NE(row_start, std::string::npos);
  const std::size_t row_end = csv.find('\n', row_start);
  std::size_t commas = 0;
  bool quoted = false;
  for (std::size_t i = row_start; i < row_end; ++i) {
    if (csv[i] == '"') quoted = !quoted;
    else if (csv[i] == ',' && !quoted) ++commas;
  }
  // 27 columns -> 26 separators (the row starts mid-path, after the
  // first column's unquoted text, which contains no comma).
  EXPECT_EQ(commas, 26u);
}

TEST(Batch, ExplicitFileListPreservesOrder) {
  const fs::path dir = mixed_fixture("batch_files");
  const BatchResult r =
      run_batch({dir / "pdf2d.rat", dir / "missing.rat", dir / "pdf1d.rat"});
  ASSERT_EQ(r.entries.size(), 3u);
  EXPECT_TRUE(r.entries[0].ok());
  EXPECT_EQ(r.entries[0].load.inputs->name, core::pdf2d_inputs().name);
  ASSERT_FALSE(r.entries[1].ok());
  EXPECT_EQ(r.entries[1].load.diagnostic->code,
            core::ParseErrorCode::kIoError);
  EXPECT_TRUE(r.entries[2].ok());
}

TEST(Batch, MissingDirectoryThrowsIoError) {
  EXPECT_THROW(run_batch_dir(fresh_dir("batch_gone") / "nope"),
               core::ParseError);
}

// --- Checkpoint / resume -------------------------------------------------

BatchOptions checkpointed(const fs::path& path, std::size_t threads = 1) {
  BatchOptions o;
  o.n_threads = threads;
  o.checkpoint = BatchCheckpointConfig{path};
  return o;
}

TEST(BatchCheckpoint, ResumeReplaysAndMatchesUninterruptedRunExactly) {
  const fs::path dir = mixed_fixture("batch_ckpt_resume");
  const std::vector<fs::path> files = {dir / "pdf1d.rat", dir / "pdf2d.rat",
                                       dir / "md.rat", dir / "broken.rat"};
  const std::string uninterrupted = batch_json(run_batch(files));

  // First run with a checkpoint: everything is fresh.
  const fs::path ckpt = dir / "campaign.ckpt";
  const BatchResult first = run_batch(files, checkpointed(ckpt));
  EXPECT_EQ(first.n_restored, 0u);
  EXPECT_EQ(batch_json(first), uninterrupted);

  // Second run: everything replays — including broken.rat, whose parse
  // failure was recorded (the file was readable, so its bytes were
  // fingerprintable) and whose diagnostic is regenerated on restore.
  const BatchResult second = run_batch(files, checkpointed(ckpt));
  EXPECT_EQ(second.n_restored, 4u);
  EXPECT_EQ(batch_json(second), uninterrupted);
  for (const BatchEntry& e : second.entries) EXPECT_TRUE(e.restored);
  EXPECT_FALSE(second.entries[3].ok());  // still the same parse failure
}

TEST(BatchCheckpoint, PartialCheckpointEvaluatesOnlyTheRemainder) {
  // Simulate a crash mid-campaign: run the first two files under the
  // checkpoint, then run the full list. Only the last two evaluate.
  const fs::path dir = mixed_fixture("batch_ckpt_partial");
  const std::vector<fs::path> files = {dir / "pdf1d.rat", dir / "pdf2d.rat",
                                       dir / "md.rat"};
  const fs::path ckpt = dir / "campaign.ckpt";
  const std::string full = batch_json(run_batch(files));

  // Run the whole campaign serially, then tear the journal's final
  // record — byte-for-byte what kill -9 during the third evaluation
  // leaves behind.
  { (void)run_batch(files, checkpointed(ckpt)); }
  const std::uintmax_t size = fs::file_size(ckpt);
  fs::resize_file(ckpt, size - 1);

  const BatchResult resumed = run_batch(files, checkpointed(ckpt));
  EXPECT_EQ(resumed.n_restored, 2u);
  EXPECT_EQ(batch_json(resumed), full);
}

TEST(BatchCheckpoint, UnreadableFileIsRetriedOnResume) {
  // An unreadable worksheet has no bytes to fingerprint, so it is never
  // checkpointed; once it becomes readable, the resumed run evaluates it.
  const fs::path dir = fresh_dir("batch_ckpt_retry");
  write_file(dir / "good.rat", core::pdf1d_inputs().serialize());
  const fs::path flaky = dir / "flaky.rat";  // missing on the first run
  const fs::path ckpt = dir / "campaign.ckpt";
  const std::vector<fs::path> files = {dir / "good.rat", flaky};

  const BatchResult first = run_batch(files, checkpointed(ckpt));
  EXPECT_EQ(first.n_ok, 1u);
  EXPECT_EQ(first.n_failed, 1u);

  write_file(flaky, core::md_inputs().serialize());
  const BatchResult second = run_batch(files, checkpointed(ckpt));
  EXPECT_EQ(second.n_restored, 1u);  // only good.rat replays
  EXPECT_EQ(second.n_ok, 2u);
  ASSERT_TRUE(second.entries[1].ok());
  EXPECT_FALSE(second.entries[1].restored);
  expect_same_predictions(second.entries[1].predictions,
                          core::predict_all(core::md_inputs()));
}

TEST(BatchCheckpoint, EditedWorksheetMakesItsRecordStale) {
  const fs::path dir = fresh_dir("batch_ckpt_edited");
  write_file(dir / "w.rat", core::pdf1d_inputs().serialize());
  const fs::path ckpt = dir / "campaign.ckpt";
  const std::vector<fs::path> files = {dir / "w.rat"};
  { (void)run_batch(files, checkpointed(ckpt)); }
  // Same file, different bytes: replaying the old result would be wrong.
  write_file(dir / "w.rat", core::pdf2d_inputs().serialize());
  try {
    (void)run_batch(files, checkpointed(ckpt));
    FAIL() << "stale item must be rejected";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.code(), store::StoreErrorCode::kStaleCheckpoint);
  }
}

TEST(BatchCheckpoint, DifferentFileListIsAStaleCampaign) {
  const fs::path dir = mixed_fixture("batch_ckpt_campaign");
  const fs::path ckpt = dir / "campaign.ckpt";
  { (void)run_batch({dir / "pdf1d.rat"}, checkpointed(ckpt)); }
  EXPECT_THROW(
      (void)run_batch({dir / "pdf1d.rat", dir / "md.rat"},
                      checkpointed(ckpt)),
      store::StoreError);
}

TEST(BatchCheckpoint, ParallelResumeMatchesSerial) {
  const fs::path dir = mixed_fixture("batch_ckpt_parallel");
  const std::vector<fs::path> files = {dir / "broken.rat", dir / "md.rat",
                                       dir / "pdf1d.rat", dir / "pdf2d.rat"};
  const fs::path ckpt_s = dir / "serial.ckpt";
  const fs::path ckpt_p = dir / "parallel.ckpt";
  { (void)run_batch(files, checkpointed(ckpt_s, 1)); }
  { (void)run_batch(files, checkpointed(ckpt_p, 4)); }
  const BatchResult serial = run_batch(files, checkpointed(ckpt_s, 4));
  const BatchResult parallel = run_batch(files, checkpointed(ckpt_p, 1));
  EXPECT_EQ(serial.n_restored, 4u);
  EXPECT_EQ(parallel.n_restored, 4u);
  EXPECT_EQ(batch_json(serial), batch_json(parallel));
  EXPECT_EQ(batch_json(serial), batch_json(run_batch(files)));
}

}  // namespace
}  // namespace rat::io
