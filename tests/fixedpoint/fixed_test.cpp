#include "fixedpoint/fixed.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rat::fx {
namespace {

TEST(Format, Basics) {
  const Format f{18, 17, true};
  EXPECT_EQ(f.int_bits(), 0);
  EXPECT_DOUBLE_EQ(f.resolution(), std::ldexp(1.0, -17));
  EXPECT_EQ(f.raw_max(), (1 << 17) - 1);
  EXPECT_EQ(f.raw_min(), -(1 << 17));
  EXPECT_NEAR(f.max_value(), 1.0 - std::ldexp(1.0, -17), 1e-15);
  EXPECT_DOUBLE_EQ(f.min_value(), -1.0);
  EXPECT_EQ(f.to_string(), "Q0.17 (s18)");
}

TEST(Format, Unsigned) {
  const Format f{8, 8, false};
  EXPECT_EQ(f.raw_min(), 0);
  EXPECT_EQ(f.raw_max(), 255);
  EXPECT_DOUBLE_EQ(f.min_value(), 0.0);
  EXPECT_NEAR(f.max_value(), 255.0 / 256.0, 1e-15);
}

TEST(Format, ValidateRejectsBadFields) {
  EXPECT_THROW((Format{1, 0, true}).validate(), std::invalid_argument);
  EXPECT_THROW((Format{64, 0, true}).validate(), std::invalid_argument);
  EXPECT_THROW((Format{16, -1, true}).validate(), std::invalid_argument);
  EXPECT_THROW((Format{16, 17, true}).validate(), std::invalid_argument);
  EXPECT_NO_THROW((Format{2, 0, true}).validate());
  EXPECT_NO_THROW((Format{63, 63, true}).validate());
}

TEST(Fixed, RoundTripExactValues) {
  const Format f{18, 17, true};
  for (double v : {0.0, 0.5, 0.25, -0.5, -1.0, 0.999992370605468750}) {
    const Fixed x = Fixed::from_double(v, f);
    EXPECT_DOUBLE_EQ(x.to_double(), v) << v;
  }
}

TEST(Fixed, QuantizationErrorBoundedByHalfLsb) {
  const Format f{12, 11, true};
  const double lsb = f.resolution();
  for (int i = 0; i < 1000; ++i) {
    const double v = -0.99 + 1.98 * i / 999.0;
    EXPECT_LE(quantization_error(v, f), 0.5 * lsb + 1e-15) << v;
  }
}

TEST(Fixed, SaturationAtBounds) {
  const Format f{8, 7, true};
  EXPECT_DOUBLE_EQ(Fixed::from_double(5.0, f).to_double(), f.max_value());
  EXPECT_DOUBLE_EQ(Fixed::from_double(-5.0, f).to_double(), -1.0);
  EXPECT_DOUBLE_EQ(Fixed::from_double(1e300, f).to_double(), f.max_value());
  EXPECT_DOUBLE_EQ(Fixed::from_double(-1e300, f).to_double(), -1.0);
}

TEST(Fixed, ThrowOverflowPolicy) {
  const Format f{8, 7, true};
  EXPECT_THROW(Fixed::from_double(2.0, f, Rounding::kNearest,
                                  Overflow::kThrow),
               std::overflow_error);
  EXPECT_NO_THROW(
      Fixed::from_double(0.5, f, Rounding::kNearest, Overflow::kThrow));
}

TEST(Fixed, WrapOverflowPolicy) {
  const Format f{8, 0, true};  // integers in [-128, 127]
  const Fixed x =
      Fixed::from_double(130.0, f, Rounding::kNearest, Overflow::kWrap);
  EXPECT_DOUBLE_EQ(x.to_double(), -126.0);  // two's-complement wrap
  const Fixed y =
      Fixed::from_double(-130.0, f, Rounding::kNearest, Overflow::kWrap);
  EXPECT_DOUBLE_EQ(y.to_double(), 126.0);
}

TEST(Fixed, FromRawValidatesRange) {
  const Format f{8, 7, true};
  EXPECT_NO_THROW(Fixed::from_raw(127, f));
  EXPECT_NO_THROW(Fixed::from_raw(-128, f));
  EXPECT_THROW(Fixed::from_raw(128, f), std::out_of_range);
  EXPECT_THROW(Fixed::from_raw(-129, f), std::out_of_range);
}

TEST(Fixed, NaNRejected) {
  const Format f{18, 17, true};
  EXPECT_THROW(Fixed::from_double(std::nan(""), f), std::invalid_argument);
}

TEST(Fixed, AddSubExactWhenInRange) {
  const Format f{18, 12, true};
  const Fixed a = Fixed::from_double(3.5, f);
  const Fixed b = Fixed::from_double(1.25, f);
  EXPECT_DOUBLE_EQ(Fixed::add(a, b, f).to_double(), 4.75);
  EXPECT_DOUBLE_EQ(Fixed::sub(a, b, f).to_double(), 2.25);
  EXPECT_DOUBLE_EQ(Fixed::sub(b, a, f).to_double(), -2.25);
}

TEST(Fixed, AddMixedFormatsAlignsBinaryPoint) {
  const Format fa{18, 10, true};
  const Format fb{18, 14, true};
  const Format out{20, 12, true};
  const Fixed a = Fixed::from_double(1.5, fa);
  const Fixed b = Fixed::from_double(0.0625, fb);
  EXPECT_DOUBLE_EQ(Fixed::add(a, b, out).to_double(), 1.5625);
}

TEST(Fixed, MulExactForRepresentableProducts) {
  const Format f{18, 12, true};
  const Fixed a = Fixed::from_double(1.5, f);
  const Fixed b = Fixed::from_double(-2.25, f);
  EXPECT_DOUBLE_EQ(Fixed::mul(a, b, f).to_double(), -3.375);
}

TEST(Fixed, MulTruncationBiasIsNegativeForPositiveProducts) {
  // Truncation always rounds toward -inf: fixed result <= exact product.
  const Format f{12, 11, true};
  for (int i = 1; i < 100; ++i) {
    const double v = i / 101.0;
    const Fixed x = Fixed::from_double(v, f);
    const Fixed p = Fixed::mul(x, x, f, Rounding::kTruncate);
    EXPECT_LE(p.to_double(), x.to_double() * x.to_double() + 1e-15);
  }
}

TEST(Fixed, MulSaturatesOnOverflow) {
  const Format f{8, 4, true};  // range [-8, 7.9375]
  const Fixed a = Fixed::from_double(7.0, f);
  EXPECT_DOUBLE_EQ(Fixed::mul(a, a, f).to_double(), f.max_value());
}

TEST(Fixed, DivExactForRepresentableQuotients) {
  const Format f{18, 12, true};
  const Fixed a = Fixed::from_double(3.375, f);
  const Fixed b = Fixed::from_double(1.5, f);
  EXPECT_DOUBLE_EQ(Fixed::div(a, b, f).to_double(), 2.25);
  EXPECT_DOUBLE_EQ(Fixed::div(b, a, f).to_double(),
                   Fixed::from_double(1.5 / 3.375, f).to_double());
}

TEST(Fixed, DivSignsAndRounding) {
  const Format f{20, 10, true};
  const Fixed a = Fixed::from_double(-7.0, f);
  const Fixed b = Fixed::from_double(2.0, f);
  EXPECT_DOUBLE_EQ(Fixed::div(a, b, f).to_double(), -3.5);
  const Fixed c = Fixed::from_double(-7.0, f);
  const Fixed d = Fixed::from_double(-2.0, f);
  EXPECT_DOUBLE_EQ(Fixed::div(c, d, f).to_double(), 3.5);
}

TEST(Fixed, DivByZeroThrows) {
  const Format f{18, 12, true};
  const Fixed a = Fixed::from_double(1.0, f);
  const Fixed zero(f);
  EXPECT_THROW(Fixed::div(a, zero, f), std::domain_error);
}

TEST(Fixed, DivSaturatesOnOverflow) {
  const Format f{8, 4, true};  // range [-8, 7.9375]
  const Fixed a = Fixed::from_double(7.0, f);
  const Fixed tiny = Fixed::from_double(0.0625, f);
  EXPECT_DOUBLE_EQ(Fixed::div(a, tiny, f).to_double(), f.max_value());
}

TEST(Fixed, DivMatchesDoubleWithinResolution) {
  const Format f{24, 16, true};
  const double res = f.resolution();
  for (int i = -15; i <= 15; ++i) {
    for (int j = 1; j <= 15; ++j) {
      const double a = i * 0.37, b = j * 0.21;
      const Fixed fa = Fixed::from_double(a, f);
      const Fixed fb = Fixed::from_double(b, f);
      if (std::fabs(a / b) < f.max_value() - 1.0) {
        EXPECT_NEAR(Fixed::div(fa, fb, f).to_double(), a / b,
                    2.0 * res + std::fabs(a / b) * 1e-4)
            << a << "/" << b;
      }
    }
  }
}

TEST(Fixed, NegateSaturatesAtMin) {
  const Format f{8, 0, true};
  const Fixed min = Fixed::from_double(-128.0, f);
  EXPECT_DOUBLE_EQ(min.negate().to_double(), 127.0);  // saturate, not wrap
  EXPECT_THROW(min.negate(Overflow::kThrow), std::overflow_error);
  const Fixed x = Fixed::from_double(5.0, f);
  EXPECT_DOUBLE_EQ(x.negate().to_double(), -5.0);
}

TEST(Fixed, ConvertBetweenFormats) {
  const Format wide{32, 24, true};
  const Format narrow{10, 6, true};
  const Fixed x = Fixed::from_double(3.141592, wide);
  const Fixed y = x.convert(narrow);
  EXPECT_NEAR(y.to_double(), 3.141592, narrow.resolution());
  // Widening back is lossless.
  const Fixed z = y.convert(wide);
  EXPECT_DOUBLE_EQ(z.to_double(), y.to_double());
}

TEST(Fixed, RoundingModesDiffer) {
  const Format src{16, 8, true};
  const Format dst{16, 4, true};
  // 0.15625 * 256 = 40 raw; to 4 frac bits: 40/16 = 2.5 raw.
  const Fixed x = Fixed::from_double(0.15625, src);
  EXPECT_DOUBLE_EQ(x.convert(dst, Rounding::kNearest).to_double(), 0.1875);
  EXPECT_DOUBLE_EQ(x.convert(dst, Rounding::kTruncate).to_double(), 0.125);
}

TEST(Fixed, NearestRoundsHalfAwayFromZeroSymmetrically) {
  const Format src{16, 8, true};
  const Format dst{16, 4, true};
  const Fixed pos = Fixed::from_double(0.15625, src);
  const Fixed neg = Fixed::from_double(-0.15625, src);
  EXPECT_DOUBLE_EQ(pos.convert(dst).to_double(),
                   -neg.convert(dst).to_double());
}

// Property sweep: add/sub/mul agree with double arithmetic to within the
// output resolution across formats.
class FixedArithmetic : public ::testing::TestWithParam<int> {};

TEST_P(FixedArithmetic, MatchesDoubleWithinResolution) {
  const int bits = GetParam();
  const Format f{bits, bits - 3, true};  // 2 integer bits
  const double res = f.resolution();
  for (int i = -20; i <= 20; ++i) {
    for (int j = -20; j <= 20; ++j) {
      const double a = i * 0.09, b = j * 0.07;
      const Fixed fa = Fixed::from_double(a, f);
      const Fixed fb = Fixed::from_double(b, f);
      if (std::fabs(a + b) < f.max_value()) {
        EXPECT_NEAR(Fixed::add(fa, fb, f).to_double(), a + b, 2.0 * res);
      }
      if (std::fabs(a - b) < f.max_value()) {
        EXPECT_NEAR(Fixed::sub(fa, fb, f).to_double(), a - b, 2.0 * res);
      }
      if (std::fabs(a * b) < f.max_value()) {
        EXPECT_NEAR(Fixed::mul(fa, fb, f).to_double(), a * b,
                    2.0 * res + std::fabs(a) * res + std::fabs(b) * res);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, FixedArithmetic,
                         ::testing::Values(10, 12, 16, 18, 24, 32, 48));

}  // namespace
}  // namespace rat::fx
