#include "fixedpoint/lut.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rat::fx {
namespace {

const Format kIn{18, 17, true};
const Format kVal{18, 17, true};

double gaussian(double x) { return std::exp(-x * x * 8.0); }

TEST(FunctionLut, ConstructionValidation) {
  EXPECT_THROW(FunctionLut(nullptr, 0.0, 1.0, 8, kIn, kVal),
               std::invalid_argument);
  EXPECT_THROW(FunctionLut(gaussian, 1.0, 1.0, 8, kIn, kVal),
               std::invalid_argument);
  EXPECT_THROW(FunctionLut(gaussian, 0.0, 1.0, 0, kIn, kVal),
               std::invalid_argument);
  EXPECT_THROW(FunctionLut(gaussian, 0.0, 1.0, 21, kIn, kVal),
               std::invalid_argument);
  EXPECT_NO_THROW(FunctionLut(gaussian, 0.0, 1.0, 8, kIn, kVal));
}

TEST(FunctionLut, EntriesAndStorage) {
  const FunctionLut lut(gaussian, 0.0, 1.0, 8, kIn, kVal);
  EXPECT_EQ(lut.entries(), 257u);  // 2^8 + guard entry for interpolation
  // 18-bit entries round to 3 bytes each.
  EXPECT_EQ(lut.storage_bytes(), 257 * 3);
}

TEST(FunctionLut, ExactAtSamplePoints) {
  const FunctionLut lut(gaussian, 0.0, 1.0, 6, kIn, kVal, false);
  for (int i = 0; i < 64; ++i) {
    const double x = i / 64.0;
    EXPECT_NEAR(lut.evaluate(x), gaussian(x), kVal.resolution() * 1.01) << x;
  }
}

TEST(FunctionLut, InterpolationBeatsNearestLookup) {
  const FunctionLut nearest(gaussian, 0.0, 1.0, 6, kIn, kVal, false);
  const FunctionLut interp(gaussian, 0.0, 1.0, 6, kIn, kVal, true);
  EXPECT_LT(interp.max_abs_error(), nearest.max_abs_error() * 0.25);
}

TEST(FunctionLut, ErrorShrinksWithTableSize) {
  double prev = 1e9;
  for (int bits : {4, 6, 8, 10}) {
    const FunctionLut lut(gaussian, 0.0, 1.0, bits, kIn, kVal, false);
    const double err = lut.max_abs_error();
    EXPECT_LT(err, prev) << bits;
    prev = err;
  }
}

TEST(FunctionLut, ClampsOutOfDomainInputs) {
  const FunctionLut lut(gaussian, 0.0, 1.0, 8, kIn, kVal);
  // Inputs outside [lo, hi) evaluate at the clamped endpoints.
  EXPECT_NEAR(lut.evaluate(-0.7), gaussian(0.0), 0.01);
  const Format wide{20, 15, true};
  const Fixed big = Fixed::from_double(3.0, wide);
  EXPECT_NEAR(lut.evaluate(big).to_double(), gaussian(1.0), 0.01);
}

TEST(FunctionLut, NegativeDomain) {
  const FunctionLut lut([](double x) { return x * x; }, -1.0, 1.0, 8,
                        kIn, kVal);
  EXPECT_NEAR(lut.evaluate(-0.5), 0.25, 0.001);
  EXPECT_NEAR(lut.evaluate(0.5), 0.25, 0.001);
}

TEST(FunctionLut, ValueQuantizationFloorsError) {
  // Even a huge table cannot beat the value format's resolution.
  const Format coarse{8, 7, true};
  const FunctionLut lut(gaussian, 0.0, 1.0, 12, kIn, coarse);
  EXPECT_GT(lut.max_abs_error(), 0.25 * coarse.resolution());
}

TEST(MinIndexBits, FindsMinimalTable) {
  const int bits = min_index_bits_for(gaussian, 0.0, 1.0, kIn, kVal,
                                      /*tolerance=*/1e-3, 4, 14);
  ASSERT_GT(bits, 4);
  ASSERT_LE(bits, 14);
  const FunctionLut at(gaussian, 0.0, 1.0, bits, kIn, kVal);
  EXPECT_LE(at.max_abs_error(), 1e-3);
  const FunctionLut below(gaussian, 0.0, 1.0, bits - 1, kIn, kVal);
  EXPECT_GT(below.max_abs_error(), 1e-3);
}

TEST(MinIndexBits, ReturnsMinusOneWhenImpossible) {
  EXPECT_EQ(min_index_bits_for(gaussian, 0.0, 1.0, kIn, kVal, 1e-12, 4, 8),
            -1);
  EXPECT_THROW(
      min_index_bits_for(gaussian, 0.0, 1.0, kIn, kVal, 0.0, 4, 8),
      std::invalid_argument);
}

TEST(FunctionLut, MaxAbsErrorValidation) {
  const FunctionLut lut(gaussian, 0.0, 1.0, 8, kIn, kVal);
  EXPECT_THROW(lut.max_abs_error(1), std::invalid_argument);
}

}  // namespace
}  // namespace rat::fx
