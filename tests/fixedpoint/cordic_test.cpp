#include "fixedpoint/cordic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace rat::fx {
namespace {

TEST(Cordic, ConstructionValidation) {
  EXPECT_THROW(Cordic(Format{18, 17, true}, 14), std::invalid_argument);
  EXPECT_THROW(Cordic(Format{18, 15, true}, 0), std::invalid_argument);
  EXPECT_THROW(Cordic(Format{18, 15, true}, 49), std::invalid_argument);
  EXPECT_NO_THROW(Cordic(Format{18, 15, true}, 14));
}

TEST(Cordic, GainMatchesTheoretical) {
  const Cordic c(Format{24, 20, true}, 16);
  double k = 1.0;
  for (int i = 0; i < 16; ++i) k *= std::sqrt(1.0 + std::ldexp(1.0, -2 * i));
  EXPECT_NEAR(c.gain(), k, 1e-12);
  EXPECT_NEAR(c.gain(), 1.64676, 1e-4);  // the classic CORDIC constant
}

TEST(Cordic, RotationComputesSinCos) {
  const Cordic c(Format{24, 20, true}, 18);
  for (double deg : {-89.0, -60.0, -30.0, -5.0, 0.0, 10.0, 45.0, 77.0,
                     90.0}) {
    const double rad = deg * M_PI / 180.0;
    const auto r = c.rotate(rad);
    EXPECT_NEAR(r.x, std::cos(rad), 2e-4) << deg;
    EXPECT_NEAR(r.y, std::sin(rad), 2e-4) << deg;
  }
  EXPECT_THROW(c.rotate(2.0), std::invalid_argument);
}

TEST(Cordic, PrecisionImprovesWithIterations) {
  const double rad = 0.6;
  double prev = 1.0;
  for (int iters : {6, 10, 14, 18}) {
    const Cordic c(Format{32, 27, true}, iters);
    const auto r = c.rotate(rad);
    const double err = std::fabs(r.y - std::sin(rad));
    EXPECT_LT(err, prev) << iters;
    prev = err;
  }
  EXPECT_LT(prev, 1e-5);
}

TEST(Cordic, VectoringRecoversMagnitudeAndAngle) {
  const Cordic c(Format{24, 20, true}, 18);
  for (double x : {0.3, 0.7, 1.0}) {
    for (double y : {-0.8, -0.2, 0.0, 0.4, 0.9}) {
      const auto r = c.vector(x, y);
      EXPECT_NEAR(r.x, std::hypot(x, y), 3e-4) << x << "," << y;
      EXPECT_NEAR(r.z, std::atan2(y, x), 3e-4) << x << "," << y;
      EXPECT_NEAR(r.y, 0.0, 2e-4);  // driven to zero
    }
  }
  EXPECT_THROW(c.vector(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(c.vector(-0.5, 0.1), std::invalid_argument);
}

TEST(Cordic, VectoringRejectsInputsBeyondGainHeadroom) {
  const Cordic c(Format{18, 15, true}, 14);  // max ~4, headroom ~2.4
  EXPECT_NO_THROW(c.vector(2.0, 0.5));
  EXPECT_THROW(c.vector(3.0, 0.0), std::invalid_argument);
}

TEST(Cordic, MagnitudeAcceptsAllQuadrantsAndZero) {
  const Cordic c(Format{24, 20, true}, 18);
  EXPECT_NEAR(c.magnitude(-0.6, 0.8), 1.0, 3e-4);
  EXPECT_NEAR(c.magnitude(0.6, -0.8), 1.0, 3e-4);
  EXPECT_NEAR(c.magnitude(-0.6, -0.8), 1.0, 3e-4);
  EXPECT_NEAR(c.magnitude(0.0, 0.5), 0.5, 3e-4);
  EXPECT_DOUBLE_EQ(c.magnitude(0.0, 0.0), 0.0);
}

TEST(Cordic, MagnitudeSweepAgainstHypot) {
  const Cordic c(Format{28, 23, true}, 22);
  util::Rng rng(5);
  for (int k = 0; k < 500; ++k) {
    const double a = rng.uniform(-1.2, 1.2);
    const double b = rng.uniform(-1.2, 1.2);
    EXPECT_NEAR(c.magnitude(a, b), std::hypot(a, b),
                5e-5 + 1e-4 * std::hypot(a, b))
        << a << "," << b;
  }
}

TEST(Cordic, IterationsAreTheOpCountKnob) {
  // §3.1's operation-scope discussion: a 14-iteration CORDIC is "one
  // operation" at 1/14 ops/cycle, or "14 operations" at 1 op/cycle —
  // either way the cycle count is the iterations.
  const Cordic c(Format{18, 15, true}, 14);
  EXPECT_EQ(c.iterations(), 14);
}

}  // namespace
}  // namespace rat::fx
