#include "fixedpoint/error_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace rat::fx {
namespace {

std::vector<double> unit_samples(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.uniform(-0.999, 0.999);
  return xs;
}

TEST(Compare, ZeroErrorForIdenticalSequences) {
  const std::vector<double> a{0.1, 0.5, -0.3};
  const ErrorReport r = compare(a, a);
  EXPECT_DOUBLE_EQ(r.max_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(r.rmse, 0.0);
  EXPECT_DOUBLE_EQ(r.max_error_percent, 0.0);
  EXPECT_TRUE(r.within_percent(0.001));
}

TEST(Compare, NormalizesByLargestReferenceMagnitude) {
  const std::vector<double> ref{10.0, 0.0};
  const std::vector<double> act{10.0, 0.2};
  const ErrorReport r = compare(ref, act);
  // Error 0.2 against scale 10 -> 2%, not infinity against the zero entry.
  EXPECT_NEAR(r.max_error_percent, 2.0, 1e-12);
}

TEST(Compare, RejectsMismatch) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(compare(a, b), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW(compare(empty, empty), std::invalid_argument);
}

TEST(RepresentationError, ShrinksWithWidth) {
  const auto xs = unit_samples(500, 42);
  double prev = 1e9;
  for (int bits : {8, 12, 16, 20, 24}) {
    const Format f{bits, bits - 1, true};
    const ErrorReport r = representation_error(xs, f);
    EXPECT_LT(r.max_abs_error, prev);
    EXPECT_LE(r.max_abs_error, 0.5 * f.resolution() + 1e-15);
    prev = r.max_abs_error;
  }
}

TEST(RequiredIntBits, KnownRanges) {
  const std::vector<double> sub_unit{0.1, -0.5, 0.9};
  EXPECT_EQ(required_int_bits(sub_unit), 0);
  const std::vector<double> small{3.0, -2.0};
  EXPECT_EQ(required_int_bits(small), 2);  // need 2^2 = 4 > 3
  const std::vector<double> big{100.0};
  EXPECT_EQ(required_int_bits(big), 7);  // 2^7 = 128 > 100
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_EQ(required_int_bits(zero), 0);
  const std::vector<double> tiny{0.01};
  EXPECT_EQ(required_int_bits(tiny), -6);  // 2^-6 ~ 0.0156 > 0.01
  EXPECT_THROW(required_int_bits(std::vector<double>{}),
               std::invalid_argument);
}

/// A simple end-to-end kernel: y_i = x_i^2 computed in fixed point.
FixedKernel square_kernel(const std::vector<double>& xs) {
  return [xs](Format fmt) {
    std::vector<double> out;
    out.reserve(xs.size());
    for (double x : xs) {
      const Fixed fx = Fixed::from_double(x, fmt);
      out.push_back(Fixed::mul(fx, fx, fmt, Rounding::kTruncate).to_double());
    }
    return out;
  };
}

TEST(SearchMinTotalBits, FindsMinimalWidth) {
  const auto xs = unit_samples(300, 7);
  std::vector<double> ref;
  for (double x : xs) ref.push_back(x * x);
  const auto kernel = square_kernel(xs);

  const auto loose =
      search_min_total_bits(kernel, ref, /*tol%=*/1.0, 4, 32, 0);
  ASSERT_TRUE(loose.has_value());
  const auto tight =
      search_min_total_bits(kernel, ref, /*tol%=*/0.01, 4, 32, 0);
  ASSERT_TRUE(tight.has_value());
  EXPECT_LT(loose->format.total_bits, tight->format.total_bits);
  EXPECT_TRUE(loose->report.within_percent(1.0));
  EXPECT_TRUE(tight->report.within_percent(0.01));

  // Minimality: one bit fewer must violate the tolerance.
  const Format fewer{loose->format.total_bits - 1,
                     loose->format.total_bits - 2, true};
  const auto rep = compare(ref, kernel(fewer));
  EXPECT_FALSE(rep.within_percent(1.0));
}

TEST(SearchMinTotalBits, NulloptWhenImpossible) {
  const auto xs = unit_samples(100, 9);
  std::vector<double> ref;
  for (double x : xs) ref.push_back(x * x);
  const auto r = search_min_total_bits(square_kernel(xs), ref,
                                       /*tol%=*/1e-9, 4, 8, 0);
  EXPECT_FALSE(r.has_value());
}

TEST(SearchMinTotalBits, RejectsBadWindow) {
  const std::vector<double> ref{1.0};
  EXPECT_THROW(
      search_min_total_bits([](Format) { return std::vector<double>{1.0}; },
                            ref, 1.0, 10, 5, 0),
      std::invalid_argument);
}

TEST(SweepTotalBits, MonotoneNonIncreasingError) {
  const auto xs = unit_samples(400, 11);
  std::vector<double> ref;
  for (double x : xs) ref.push_back(x * x);
  const auto sweep = sweep_total_bits(square_kernel(xs), ref, 6, 24, 0);
  ASSERT_GT(sweep.size(), 10u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].report.max_abs_error,
              sweep[i - 1].report.max_abs_error * 1.05)
        << "error should not grow with width (bits="
        << sweep[i].format.total_bits << ")";
  }
}

TEST(SweepTotalBits, FormatsHaveRequestedIntBits) {
  const std::vector<double> ref{0.5};
  const auto sweep = sweep_total_bits(
      [](Format) { return std::vector<double>{0.5}; }, ref, 8, 12, 2);
  for (const auto& c : sweep) EXPECT_EQ(c.format.int_bits(), 2);
}

}  // namespace
}  // namespace rat::fx
