#!/usr/bin/env bash
# Full verification pass: configure, build, run every test and every
# benchmark binary. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "==== running $b"
  "$b" --benchmark_min_time=0.05s
done

# ThreadSanitizer pass over the parallel evaluation engine and the
# observability registry: a separate build tree with -DRAT_SANITIZE=thread,
# building and running only the thread-pool + determinism + obs tests (the
# -R patterns match exactly the suites in test_parallel and test_obs).
echo "==== ThreadSanitizer pass (parallel + observability tests)"
cmake -B build-tsan -G Ninja -DRAT_SANITIZE=thread
cmake --build build-tsan --target test_parallel test_obs
ctest --test-dir build-tsan --output-on-failure \
  -R '^(ThreadPool|ParallelFor|ParallelMap|ParallelDeterminism|Obs)'

# ASan+UBSan pass over the worksheet ingestion path: the io tests (strict
# parser, loaders, batch runner) plus the rat_batch binary, then a smoke
# run on the checked-in fixture directory whose broken.rat must yield a
# per-file file:line:column diagnostic and the documented exit code 2
# (partial failure) while the three good worksheets still evaluate.
echo "==== AddressSanitizer+UBSan pass (worksheet ingestion)"
cmake -B build-asan -G Ninja -DRAT_SANITIZE=address,undefined
cmake --build build-asan --target test_io rat_batch
ctest --test-dir build-asan --output-on-failure \
  -R '^(LoadWorksheet|WorksheetDir|Batch)'

echo "==== rat_batch smoke (fixture directory with one malformed file)"
smoke_out=$(mktemp)
smoke_err=$(mktemp)
rc=0
build-asan/src/apps/rat_batch --dir=tests/fixtures/worksheets --quiet \
  >"$smoke_out" 2>"$smoke_err" || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "rat_batch: expected documented exit code 2 (partial failure), got $rc"
  cat "$smoke_out" "$smoke_err"
  exit 1
fi
if ! grep -q 'broken.rat:3:18: E_BAD_LIST' "$smoke_err"; then
  echo "rat_batch: missing file:line:column diagnostic for broken.rat"
  cat "$smoke_err"
  exit 1
fi
if ! grep -q '4 worksheet(s): 3 ok, 1 failed' "$smoke_out"; then
  echo "rat_batch: expected 3 good worksheets to still evaluate"
  cat "$smoke_out"
  exit 1
fi
rm -f "$smoke_out" "$smoke_err"

# Observability smoke: --metrics must emit a valid rat.metrics.v1 document
# with non-zero batch + thread-pool activity (--threads=2 forces the pool
# into play even on a single-core runner), and collection must not change
# the batch outputs — the JSON/CSV written with metrics on are byte-
# identical to a run with metrics off.
echo "==== rat_batch metrics smoke (rat.metrics.v1 export)"
metrics_dir=$(mktemp -d)
build/src/apps/rat_batch --dir=tests/fixtures/worksheets --quiet \
  --threads=2 --json="$metrics_dir/plain.json" \
  --csv="$metrics_dir/plain.csv" >/dev/null 2>&1 || true
build/src/apps/rat_batch --dir=tests/fixtures/worksheets --quiet \
  --threads=2 --json="$metrics_dir/observed.json" \
  --csv="$metrics_dir/observed.csv" \
  --metrics="$metrics_dir/metrics.json" >/dev/null 2>&1 || true
cmp "$metrics_dir/plain.json" "$metrics_dir/observed.json"
cmp "$metrics_dir/plain.csv" "$metrics_dir/observed.csv"
python3 - "$metrics_dir/metrics.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "rat.metrics.v1", doc.get("schema")
c = doc["counters"]
assert c["batch.files"] == 4, c
assert c["batch.files_ok"] == 3, c
assert c["pool.tasks_completed"] > 0, c
assert doc["timers"]["batch.file"]["count"] == 4, doc["timers"]
assert any(s["name"] == "batch.file" for s in doc["spans"]), doc["spans"]
print("metrics OK:", len(c), "counters,", len(doc["timers"]), "timers,",
      len(doc["spans"]), "spans")
EOF
rm -rf "$metrics_dir"

echo "ALL CHECKS PASSED"
