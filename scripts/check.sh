#!/usr/bin/env bash
# Full verification pass: configure, build, run every test and every
# benchmark binary. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "==== running $b"
  case "$(basename "$b")" in
    # The batch-kernel benches also emit the rat.bench.v1 perf trajectory:
    # bench_parallel_scaling writes the canonical BENCH_RAT.json at the
    # repo root (committed PR over PR), the micro-bench a sidecar in
    # build/. Both documents are schema-validated below.
    bench_parallel_scaling) "$b" --benchmark_min_time=0.05s \
      --json=BENCH_RAT.json ;;
    bench_batch_eval) "$b" --benchmark_min_time=0.05s \
      --json=build/bench_batch_eval.json ;;
    # The branch-and-bound explorer's headline (identity + pruning win +
    # warm plan cache), merged into BENCH_RAT.json and gated below.
    bench_explore_pruning) "$b" --benchmark_min_time=0.05s \
      --json=build/bench_explore.json ;;
    *) "$b" --benchmark_min_time=0.05s ;;
  esac
done

# Headline serving numbers (docs/LOADGEN.md): a pinned open-loop
# rat_loadgen configuration against the release rat_serve, merged into
# BENCH_RAT.json so the committed perf trajectory tracks the serving
# stack (latency percentiles, achieved rate) alongside the kernel.
echo "==== serving headline (pinned rat_loadgen config -> BENCH_RAT.json)"
head_dir=$(mktemp -d)
mkdir "$head_dir/fixtures"
cp tests/fixtures/worksheets/pdf1d.rat tests/fixtures/worksheets/pdf2d.rat \
  tests/fixtures/worksheets/md.rat "$head_dir/fixtures/"
build/src/apps/rat_serve --port=0 --port-file="$head_dir/port" \
  --queue-capacity=4096 >/dev/null 2>"$head_dir/serve.err" &
head_pid=$!
for _ in $(seq 100); do
  [ -s "$head_dir/port" ] && break
  sleep 0.1
done
[ -s "$head_dir/port" ] || { echo "rat_serve: never wrote port file"; exit 1; }
build/src/apps/rat_loadgen --port-file="$head_dir/port" \
  --fixtures="$head_dir/fixtures" --requests=2000 --connections=32 \
  --rate=2000 --arrival=poisson --seed=42 --duplicate-ratio=0.5 \
  --report="$head_dir/load.json"
kill -TERM "$head_pid"
rc=0
wait "$head_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "rat_serve: headline drain exited $rc"; exit 1; }
python3 - BENCH_RAT.json "$head_dir/load.json" <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
load = json.load(open(sys.argv[2]))
assert load["schema"] == "rat.load.v1", load.get("schema")
step = load["steps"][0]
assert step["ok"] == step["sent"] and step["lost"] == 0, step
assert not step["error_codes"], step["error_codes"]
lat = step["latency_ms"]
m = bench["metrics"]
m["serving.offered_rate_hz"] = float(step["offered_rate_hz"])
m["serving.achieved_rate_hz"] = float(step["achieved_rate_hz"])
m["serving.p50_ms"] = float(lat["p50"])
m["serving.p99_ms"] = float(lat["p99"])
m["serving.p999_ms"] = float(lat["p999"])
bench["metrics"] = dict(sorted(m.items()))
with open(sys.argv[1], "w") as f:
    json.dump(bench, f, indent=2)
    f.write("\n")
print(f"serving headline: {step['achieved_rate_hz']:.0f} req/s achieved, "
      f"p50 {lat['p50']:.3f} ms, p99 {lat['p99']:.3f} ms")
EOF
rm -rf "$head_dir"

# Exploration headline (docs/EXPLORATION.md): merge the explore.* metrics
# from bench_explore_pruning into BENCH_RAT.json and gate on what the
# explorer promises — a byte-identical result to the exhaustive sweep,
# >= 10x fewer full gate-pipeline evaluations, and a warm plan cache
# eliminating >= 90% of the evaluations a cold campaign needed.
echo "==== exploration headline (bench_explore_pruning -> BENCH_RAT.json)"
python3 - BENCH_RAT.json build/bench_explore.json <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
explore = json.load(open(sys.argv[2]))
assert explore["schema"] == "rat.bench.v1", explore.get("schema")
e = explore["metrics"]
assert e["explore.identical"] == 1.0, e
assert e["explore.evaluation_reduction"] >= 10.0, \
    e["explore.evaluation_reduction"]
assert e["explore.warm_elimination_ratio"] >= 0.9, \
    e["explore.warm_elimination_ratio"]
m = bench["metrics"]
for k, v in e.items():
    if k.startswith("explore."):
        m[k] = float(v)
bench["metrics"] = dict(sorted(m.items()))
with open(sys.argv[1], "w") as f:
    json.dump(bench, f, indent=2)
    f.write("\n")
print(f"exploration headline: {e['explore.evaluation_reduction']:.0f}x fewer "
      f"full evaluations on {e['explore.points_total']:.0f} points, "
      f"{100 * e['explore.warm_elimination_ratio']:.0f}% warm elimination")
EOF

# The perf trajectory must exist and parse: a malformed or silently
# missing BENCH_RAT.json would break the PR-over-PR comparison.
echo "==== BENCH_RAT.json schema validation"
python3 - BENCH_RAT.json build/bench_batch_eval.json <<'EOF'
import json, sys
for path in sys.argv[1:]:
    doc = json.load(open(path))
    assert doc["schema"] == "rat.bench.v1", (path, doc.get("schema"))
    assert doc["bench"], path
    assert doc["simd_backend"] in ("scalar", "avx2", "neon"), doc
    assert doc["simd_width"] >= 1, doc
    m = doc["metrics"]
    assert m, f"{path}: empty metrics"
    assert all(isinstance(v, float) for v in m.values()), m
    assert m["kernel.batch_vs_scalar_speedup"] > 1.0, \
        (path, m["kernel.batch_vs_scalar_speedup"])
    print(f"{path}: OK ({len(m)} metrics, {doc['simd_backend']} lanes, "
          f"batch {m['kernel.batch_vs_scalar_speedup']:.1f}x scalar)")
EOF

# ThreadSanitizer pass over the parallel evaluation engine, the
# observability registry, the prediction service and the durable store: a
# separate build tree with -DRAT_SANITIZE=thread, building and running
# only the thread-pool + determinism + obs + svc + store tests (the -R
# patterns match exactly the suites in test_parallel, test_obs, test_svc
# and test_store — the Store pattern covers the concurrent-put and
# background-compaction suites; Load covers test_load's runner-vs-server
# integration). rat_serve, rat_router and rat_loadgen are built here too
# so the loopback + router soaks and the SLO smokes below run under TSan.
echo "==== ThreadSanitizer pass (parallel + obs + service + store tests)"
cmake -B build-tsan -G Ninja -DRAT_SANITIZE=thread
cmake --build build-tsan --target test_parallel test_obs test_svc \
  test_store test_batch test_load test_explore rat_serve rat_router \
  rat_loadgen
ctest --test-dir build-tsan --output-on-failure \
  -R '^(ThreadPool|ParallelFor|ParallelMap|ParallelDeterminism|Obs|Svc|Store|BatchIdentity|Load|Explore)'

# ASan+UBSan pass over the worksheet ingestion path, the durable store,
# the SIMD batch kernel and the prediction service: the io tests (strict
# parser, loaders, batch runner + checkpoint resume), the store tests
# (including the recovery property suite, which truncates journals at
# every byte boundary and bit-flips payloads), the BatchIdentity suite
# (the '^Batch' pattern covers it: lane loads/stores and the SoA arena
# run sanitized) and the svc suites (UBSan exercises the deadline
# clamp — SvcService.HugeDeadlineIsClampedNotUndefined feeds 1e308
# through the float->uint64 cast) plus the rat_batch binary, then a
# smoke run on the checked-in fixture directory whose broken.rat must
# yield a per-file file:line:column diagnostic and the documented exit
# code 2 (partial failure) while the three good worksheets still
# evaluate. rat_serve is built in this tree because test_svc's router
# suite supervises real worker processes (RAT_SERVE_BIN), so the
# SIGPIPE/EMFILE/router regression tests all run sanitized here too.
echo "==== AddressSanitizer+UBSan pass (ingestion + store + batch + svc)"
cmake -B build-asan -G Ninja -DRAT_SANITIZE=address,undefined
cmake --build build-asan --target test_io test_store test_batch test_svc \
  rat_batch rat_serve
ctest --test-dir build-asan --output-on-failure \
  -R '^(LoadWorksheet|WorksheetDir|Batch|Store|Svc)'

# Scalar-fallback pass: the same identity suite with SIMD forced off
# (-DRAT_SIMD=off), so the width-1 reference build — what a host without
# AVX2/NEON gets — proves it computes the very same bits the kernel
# suites pinned above.
echo "==== RAT_SIMD=off pass (scalar-fallback identity)"
cmake -B build-simdoff -G Ninja -DRAT_SIMD=off
cmake --build build-simdoff --target test_batch
ctest --test-dir build-simdoff --output-on-failure -R '^BatchIdentity'

echo "==== rat_batch smoke (fixture directory with one malformed file)"
smoke_out=$(mktemp)
smoke_err=$(mktemp)
rc=0
build-asan/src/apps/rat_batch --dir=tests/fixtures/worksheets --quiet \
  >"$smoke_out" 2>"$smoke_err" || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "rat_batch: expected documented exit code 2 (partial failure), got $rc"
  cat "$smoke_out" "$smoke_err"
  exit 1
fi
if ! grep -q 'broken.rat:3:18: E_BAD_LIST' "$smoke_err"; then
  echo "rat_batch: missing file:line:column diagnostic for broken.rat"
  cat "$smoke_err"
  exit 1
fi
if ! grep -q '4 worksheet(s): 3 ok, 1 failed' "$smoke_out"; then
  echo "rat_batch: expected 3 good worksheets to still evaluate"
  cat "$smoke_out"
  exit 1
fi
rm -f "$smoke_out" "$smoke_err"

# Observability smoke: --metrics must emit a valid rat.metrics.v1 document
# with non-zero batch + thread-pool activity (--threads=2 forces the pool
# into play even on a single-core runner), and collection must not change
# the batch outputs — the JSON/CSV written with metrics on are byte-
# identical to a run with metrics off.
echo "==== rat_batch metrics smoke (rat.metrics.v1 export)"
metrics_dir=$(mktemp -d)
build/src/apps/rat_batch --dir=tests/fixtures/worksheets --quiet \
  --threads=2 --json="$metrics_dir/plain.json" \
  --csv="$metrics_dir/plain.csv" >/dev/null 2>&1 || true
build/src/apps/rat_batch --dir=tests/fixtures/worksheets --quiet \
  --threads=2 --json="$metrics_dir/observed.json" \
  --csv="$metrics_dir/observed.csv" \
  --metrics="$metrics_dir/metrics.json" >/dev/null 2>&1 || true
cmp "$metrics_dir/plain.json" "$metrics_dir/observed.json"
cmp "$metrics_dir/plain.csv" "$metrics_dir/observed.csv"
python3 - "$metrics_dir/metrics.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "rat.metrics.v1", doc.get("schema")
c = doc["counters"]
assert c["batch.files"] == 4, c
assert c["batch.files_ok"] == 3, c
assert c["pool.tasks_completed"] > 0, c
assert doc["timers"]["batch.file"]["count"] == 4, doc["timers"]
assert any(s["name"] == "batch.file" for s in doc["spans"]), doc["spans"]
print("metrics OK:", len(c), "counters,", len(doc["timers"]), "timers,",
      len(doc["spans"]), "spans")
EOF
rm -rf "$metrics_dir"

# Service soak (docs/SERVICE.md): the TSan-built rat_serve answers 1000
# pipelined loopback requests cycling the four fixture worksheets (>= 50%
# duplicates, one malformed), so every request must get exactly one
# response, responses within one worksheet group must be byte-identical
# (cache hit == cache miss), the metrics JSON must show cache hits, and
# SIGTERM must drain and exit 0.
echo "==== rat_serve loopback soak (1000 requests, TSan build)"
soak_dir=$(mktemp -d)
build-tsan/src/apps/rat_serve --port=0 --port-file="$soak_dir/port" \
  --queue-capacity=1024 --metrics="$soak_dir/metrics.json" \
  >"$soak_dir/stdout" 2>"$soak_dir/stderr" &
serve_pid=$!
for _ in $(seq 100); do
  [ -s "$soak_dir/port" ] && break
  sleep 0.1
done
[ -s "$soak_dir/port" ] || { echo "rat_serve: never wrote port file"; exit 1; }
python3 - "$(cat "$soak_dir/port")" <<'EOF'
import json, socket, sys
port = int(sys.argv[1])
sheets = [open(f"tests/fixtures/worksheets/{n}.rat").read()
          for n in ("pdf1d", "pdf2d", "md", "broken")]
n = 1000
with socket.create_connection(("127.0.0.1", port)) as s:
    f = s.makefile("rw")
    for i in range(n):
        g = i % len(sheets)
        # One id per worksheet group: responses must not depend on
        # whether they were served from the cache, so every response in
        # a group must be byte-identical.
        f.write(json.dumps({"schema": "rat.svc.v1", "id": f"w{g}",
                            "op": "evaluate", "worksheet": sheets[g]}) + "\n")
    f.flush()
    groups = {}
    for _ in range(n):
        line = f.readline()
        assert line.endswith("\n"), "short read: a request went unanswered"
        rid = json.loads(line)["id"]
        groups.setdefault(rid, set()).add(line)
assert sorted(groups) == ["w0", "w1", "w2", "w3"], sorted(groups)
for rid, lines in groups.items():
    assert len(lines) == 1, f"{rid}: hit/miss responses differ in bytes"
for rid in ("w0", "w1", "w2"):
    assert '"status":"ok"' in next(iter(groups[rid])), rid
bad = json.loads(next(iter(groups["w3"])))
assert bad["error"]["code"] == "E_BAD_LIST", bad
print(f"soak OK: {n} requests, 4 groups, byte-identical within group")
EOF
kill -TERM "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "rat_serve: expected SIGTERM drain to exit 0, got $rc"
  cat "$soak_dir/stderr"
  exit 1
fi
python3 - "$soak_dir/metrics.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "rat.metrics.v1", doc.get("schema")
c = doc["counters"]
assert c["svc.requests"] == 1000, c.get("svc.requests")
assert c["svc.cache.hit"] > 0, c.get("svc.cache.hit")
assert c["svc.responses.ok"] == 750, c.get("svc.responses.ok")
assert c["svc.responses.error"] == 250, c.get("svc.responses.error")
print("service metrics OK:", c["svc.cache.hit"], "cache hits,",
      c["svc.responses.ok"], "ok,", c["svc.responses.error"], "errors")
EOF
rm -rf "$soak_dir"

# Slow-reader + idle-horde soak: the same TSan rat_serve must hold 500
# idle connections (with a constant thread count — the event loop's
# point) and a client that pipelines 400 requests but never reads its
# socket. The bounded write queue must drop the slow reader
# (svc.server.slow_client_dropped) instead of wedging, a well-behaved
# client threading through the chaos must see byte-identical responses,
# and SIGTERM must still drain to exit 0.
echo "==== rat_serve slow-reader + 500-idle-connection soak (TSan build)"
slow_dir=$(mktemp -d)
build-tsan/src/apps/rat_serve --port=0 --port-file="$slow_dir/port" \
  --queue-capacity=4096 --write-buffer-bytes=8192 --so-sndbuf=4096 \
  --metrics="$slow_dir/metrics.json" \
  >"$slow_dir/stdout" 2>"$slow_dir/stderr" &
serve_pid=$!
for _ in $(seq 100); do
  [ -s "$slow_dir/port" ] && break
  sleep 0.1
done
[ -s "$slow_dir/port" ] || { echo "rat_serve: never wrote port file"; exit 1; }
python3 - "$(cat "$slow_dir/port")" <<'EOF'
import json, socket, sys
port = int(sys.argv[1])
sheet = open("tests/fixtures/worksheets/pdf1d.rat").read()
def req(rid):
    return (json.dumps({"schema": "rat.svc.v1", "id": rid,
                        "op": "evaluate", "worksheet": sheet}) + "\n").encode()

# 1. Idle horde: 500 connections that never speak.
idle = [socket.create_connection(("127.0.0.1", port)) for _ in range(500)]

# 2. Slow reader: tiny receive window, 400 pipelined requests, never a
#    single read. A send error mid-burst just means the server already
#    dropped us — which is exactly the policy under test.
slow = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
slow.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
slow.connect(("127.0.0.1", port))
try:
    for i in range(400):
        slow.sendall(req(f"slow{i}"))
except OSError:
    pass

# 3. A well-behaved client round-trips through the chaos; one id group,
#    so all 100 responses must be byte-identical (cache hit == miss).
lines = set()
with socket.create_connection(("127.0.0.1", port)) as s:
    f = s.makefile("rw")
    for _ in range(100):
        f.write(req("fast").decode())
        f.flush()
        line = f.readline()
        assert line.endswith("\n"), "short read: blocked behind slow reader"
        lines.add(line)
assert len(lines) == 1, "responses differ in bytes across hits/misses"
assert '"status":"ok"' in next(iter(lines))
for c in idle:
    c.close()
slow.close()
print("slow-reader soak OK: 100 clean round-trips, 500 idle held")
EOF
kill -TERM "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "rat_serve: expected SIGTERM drain to exit 0, got $rc"
  cat "$slow_dir/stderr"
  exit 1
fi
python3 - "$slow_dir/metrics.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
c = doc["counters"]
assert c["svc.server.connections"] >= 502, c.get("svc.server.connections")
assert c["svc.server.slow_client_dropped"] >= 1, \
    c.get("svc.server.slow_client_dropped")
assert c["svc.cache.hit"] > 0, c.get("svc.cache.hit")
print("slow-reader metrics OK:", int(c["svc.server.connections"]), "conns,",
      int(c["svc.server.slow_client_dropped"]), "slow drop(s),",
      int(c["svc.cache.hit"]), "cache hits")
EOF
rm -rf "$slow_dir"

# Router soak (docs/SERVICE.md): the TSan-built rat_router supervises 4
# TSan-built rat_serve workers; 600 pipelined requests cycle the four
# fixture worksheets (150 duplicates per fingerprint group, one of them
# malformed), one worker is kill -9'd mid-burst, and then one more round
# per group runs through the healed fleet. Every request must get exactly
# one response, responses within one group must be byte-identical (cache
# hit, cache miss, pre-kill, re-forwarded and post-respawn alike), the
# dead slot must hold a fresh pid, SIGTERM must drain the whole fleet to
# exit 0, and the metrics JSON must record the death and the respawn.
echo "==== rat_router fleet soak (4 workers, kill -9 mid-run, TSan build)"
router_dir=$(mktemp -d)
build-tsan/src/apps/rat_router --workers=4 --port=0 \
  --port-file="$router_dir/port" --worker-pid-file="$router_dir/pids" \
  --queue-capacity=1024 --metrics="$router_dir/metrics.json" \
  >"$router_dir/stdout" 2>"$router_dir/stderr" &
router_pid=$!
for _ in $(seq 100); do
  [ -s "$router_dir/port" ] && break
  sleep 0.1
done
[ -s "$router_dir/port" ] || { echo "rat_router: never wrote port file"
  cat "$router_dir/stderr"; exit 1; }
python3 - "$(cat "$router_dir/port")" "$router_dir/pids" <<'EOF'
import json, os, signal, socket, sys, time
port, pid_file = int(sys.argv[1]), sys.argv[2]
sheets = [open(f"tests/fixtures/worksheets/{n}.rat").read()
          for n in ("pdf1d", "pdf2d", "md", "broken")]
def req(g):
    # One id per worksheet group: every response in a group must be
    # byte-identical no matter which worker incarnation produced it.
    return json.dumps({"schema": "rat.svc.v1", "id": f"w{g}",
                       "op": "evaluate", "worksheet": sheets[g]}) + "\n"
n = 600
groups = {}
with socket.create_connection(("127.0.0.1", port)) as s:
    f = s.makefile("rw")
    for i in range(n):
        f.write(req(i % len(sheets)))
    f.flush()
    for i in range(n):
        line = f.readline()
        assert line.endswith("\n"), "short read: a request went unanswered"
        rid = json.loads(line)["id"]
        groups.setdefault(rid, set()).add(line)
        if i == 99:  # mid-burst: pull the plug on the first worker
            victim = int(open(pid_file).read().split()[0])
            os.kill(victim, signal.SIGKILL)
    # The healed fleet (respawned slot included) answers one more round,
    # still byte-identical to the pre-kill responses.
    for g in range(len(sheets)):
        f.write(req(g))
        f.flush()
        line = f.readline()
        assert line.endswith("\n"), "short read after respawn"
        groups.setdefault(json.loads(line)["id"], set()).add(line)
assert sorted(groups) == ["w0", "w1", "w2", "w3"], sorted(groups)
for rid, lines in groups.items():
    assert len(lines) == 1, f"{rid}: responses differ in bytes"
for rid in ("w0", "w1", "w2"):
    assert '"status":"ok"' in next(iter(groups[rid])), rid
bad = json.loads(next(iter(groups["w3"])))
assert bad["error"]["code"] == "E_BAD_LIST", bad
for _ in range(100):  # pid file is rewritten after the respawn
    pids = [int(p) for p in open(pid_file).read().split()]
    if len(pids) == 4 and pids[0] != victim and pids[0] > 0:
        break
    time.sleep(0.1)
assert pids[0] != victim and pids[0] > 0, (pids, victim)
print(f"router soak OK: {n + 4} requests, 4 groups byte-identical, "
      f"slot 0 respawned {victim} -> {pids[0]}")
EOF
kill -TERM "$router_pid"
rc=0
wait "$router_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "rat_router: expected SIGTERM drain to exit 0, got $rc"
  cat "$router_dir/stderr"
  exit 1
fi
python3 - "$router_dir/metrics.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "rat.metrics.v1", doc.get("schema")
c = doc["counters"]
assert c["svc.router.requests"] == 604, c.get("svc.router.requests")
assert c["svc.router.worker_death"] >= 1, c.get("svc.router.worker_death")
assert c["svc.router.respawn"] >= 1, c.get("svc.router.respawn")
assert c["svc.router.forwarded"] >= 1, c.get("svc.router.forwarded")
print("router metrics OK:", int(c["svc.router.requests"]), "requests,",
      int(c["svc.router.worker_death"]), "death(s),",
      int(c["svc.router.respawn"]), "respawn(s)")
EOF
rm -rf "$router_dir"

# Loadgen SLO smoke (docs/LOADGEN.md): the open-loop generator drives the
# TSan rat_serve with the three good fixture worksheets (broken.rat
# excluded: this gate asserts *zero* unexpected E_* codes) and asserts
# its own SLOs — exit 0 means every request was answered OK within a p99
# bound generous enough for a sanitized build. The rat.load.v1 report is
# then schema-validated the same way as BENCH_RAT.json.
echo "==== rat_loadgen SLO smoke vs rat_serve (TSan build)"
lg_dir=$(mktemp -d)
mkdir "$lg_dir/fixtures"
cp tests/fixtures/worksheets/pdf1d.rat tests/fixtures/worksheets/pdf2d.rat \
  tests/fixtures/worksheets/md.rat "$lg_dir/fixtures/"
build-tsan/src/apps/rat_serve --port=0 --port-file="$lg_dir/port" \
  --queue-capacity=4096 >/dev/null 2>"$lg_dir/serve.err" &
serve_pid=$!
for _ in $(seq 100); do
  [ -s "$lg_dir/port" ] && break
  sleep 0.1
done
[ -s "$lg_dir/port" ] || { echo "rat_serve: never wrote port file"; exit 1; }
build-tsan/src/apps/rat_loadgen --port-file="$lg_dir/port" \
  --fixtures="$lg_dir/fixtures" --requests=300 --connections=16 \
  --rate=200 --arrival=poisson --seed=7 --duplicate-ratio=0.5 \
  --slo-p99-ms=5000 --slo-error-rate=0 --report="$lg_dir/load.json"
kill -TERM "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "rat_serve: SLO smoke drain exited $rc"; exit 1; }
python3 - "$lg_dir/load.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "rat.load.v1", doc.get("schema")
assert doc["slo"]["checked"] and not doc["slo"]["violations"], doc["slo"]
(step,) = doc["steps"]
assert step["sent"] == step["ok"] == 300, step
assert step["errors"] == step["lost"] == step["connection_drops"] == 0, step
assert not step["error_codes"], step["error_codes"]
lat = step["latency_ms"]
assert lat["count"] == 300 and 0 < lat["p50"] <= lat["p99"] <= 5000, lat
print(f"loadgen SLO smoke OK: 300/300 ok, p50 {lat['p50']:.3f} ms, "
      f"p99 {lat['p99']:.3f} ms")
EOF
rm -rf "$lg_dir"

# Frontier sweep smoke: one rat_loadgen --sweep against a 2-worker TSan
# rat_router maps three arrival rates in a single rat.load.v1 report.
# Asserts: zero unexpected E_* at every step, achieved rate grows with
# offered rate (tolerantly — sanitized CI boxes are noisy), and the
# router's drain-time --metrics export carries the aggregated
# svc.fleet.* gauges covering everything the loadgen sent.
echo "==== rat_loadgen frontier sweep vs 2-worker rat_router (TSan build)"
sweep_dir=$(mktemp -d)
mkdir "$sweep_dir/fixtures"
cp tests/fixtures/worksheets/pdf1d.rat tests/fixtures/worksheets/pdf2d.rat \
  tests/fixtures/worksheets/md.rat "$sweep_dir/fixtures/"
build-tsan/src/apps/rat_router --workers=2 --port=0 \
  --port-file="$sweep_dir/port" --queue-capacity=1024 \
  --metrics="$sweep_dir/metrics.json" \
  >/dev/null 2>"$sweep_dir/router.err" &
router_pid=$!
for _ in $(seq 100); do
  [ -s "$sweep_dir/port" ] && break
  sleep 0.1
done
[ -s "$sweep_dir/port" ] || { echo "rat_router: never wrote port file"
  cat "$sweep_dir/router.err"; exit 1; }
build-tsan/src/apps/rat_loadgen --port-file="$sweep_dir/port" \
  --fixtures="$sweep_dir/fixtures" --requests=200 --connections=16 \
  --sweep=50,150,450 --arrival=poisson --seed=9 --duplicate-ratio=0.5 \
  --slo-error-rate=0 --report="$sweep_dir/load.json"
kill -TERM "$router_pid"
rc=0
wait "$router_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "rat_router: sweep drain exited $rc"
  cat "$sweep_dir/router.err"; exit 1; }
python3 - "$sweep_dir/load.json" "$sweep_dir/metrics.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "rat.load.v1", doc.get("schema")
steps = doc["steps"]
assert len(steps) == 3, len(steps)
for step in steps:
    assert step["sent"] == step["ok"] == 200, step
    assert not step["error_codes"] and step["lost"] == 0, step
achieved = [s["achieved_rate_hz"] for s in steps]
p99s = [s["latency_ms"]["p99"] for s in steps]
# The frontier: more offered -> more achieved. 10% slack absorbs
# scheduler noise on loaded CI machines.
for lo, hi in zip(achieved, achieved[1:]):
    assert hi > lo * 0.9, (achieved, "achieved rate fell across the sweep")
assert all(0 < p < 10000 for p in p99s), p99s
metrics = json.load(open(sys.argv[2]))
g = metrics["gauges"]
assert g["svc.fleet.requests"] >= 600, g.get("svc.fleet.requests")
assert g["svc.fleet.responses_ok"] >= 600, g.get("svc.fleet.responses_ok")
assert g["svc.fleet.workers_alive"] == 2, g.get("svc.fleet.workers_alive")
print("sweep OK: achieved", [round(a, 1) for a in achieved],
      "req/s, p99", [round(p, 3) for p in p99s], "ms, fleet gauges present")
EOF
rm -rf "$sweep_dir"

# SIGPIPE smoke: the stdout reader exits after the first response while
# another 199 are still owed, so the server writes into a closed pipe.
# Before the fix that was death by SIGPIPE (exit 141, which pipefail
# surfaces here); now EPIPE is a normal close and the server drains to
# exit 0 with the one delivered response intact.
echo "==== rat_serve SIGPIPE smoke (stdout reader exits early)"
sigpipe_out=$(mktemp)
for i in $(seq 200); do
  printf '{"schema":"rat.svc.v1","id":"s%d","op":"evaluate","file":"tests/fixtures/worksheets/pdf1d.rat"}\n' "$i"
done | timeout 60 build/src/apps/rat_serve --stdio --no-tcp 2>/dev/null \
  | head -n 1 >"$sigpipe_out"
grep -q '"status":"ok"' "$sigpipe_out"
rm -f "$sigpipe_out"

# Stdio smoke: piped requests must each get one response and stdin EOF
# must drain the server to exit 0 (a hang here is the regression).
echo "==== rat_serve stdio smoke (EOF drains)"
stdio_out=$(mktemp)
printf '%s\n%s\n' \
  '{"schema":"rat.svc.v1","id":"p","op":"ping"}' \
  '{"id":"e","op":"evaluate","file":"tests/fixtures/worksheets/pdf1d.rat"}' \
  | timeout 60 build/src/apps/rat_serve --stdio --no-tcp >"$stdio_out" 2>/dev/null
grep -q '"id":"p","status":"ok","op":"ping"' "$stdio_out"
grep -q '"id":"e","status":"ok","op":"evaluate"' "$stdio_out"
[ "$(wc -l <"$stdio_out")" -eq 2 ]
rm -f "$stdio_out"

# Crash-recovery smoke (docs/STORE.md): a checkpointed rat_batch is
# kill -9'd mid-campaign (throttled so evaluations are slow enough to
# interrupt) and then resumed; the resumed run must restore at least one
# recorded item and its JSON output must be byte-for-byte identical to
# an uninterrupted run's. Uses the ASan+UBSan build so the recovery path
# itself runs sanitized.
echo "==== rat_batch kill -9 crash-recovery smoke (checkpoint resume)"
crash_dir=$(mktemp -d)
rc=0
build-asan/src/apps/rat_batch --dir=tests/fixtures/worksheets --quiet \
  --json="$crash_dir/plain.json" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ]  # broken.rat: documented partial-failure exit code
build-asan/src/apps/rat_batch --dir=tests/fixtures/worksheets --quiet \
  --checkpoint="$crash_dir/campaign.ckpt" --throttle-ms=300 \
  --json="$crash_dir/interrupted.json" >/dev/null 2>&1 &
batch_pid=$!
# Wait for the first completed item to hit the checkpoint journal
# (header + campaign record + one item record), then pull the plug.
for _ in $(seq 200); do
  size=$(stat -c %s "$crash_dir/campaign.ckpt" 2>/dev/null || echo 0)
  [ "$size" -ge 150 ] && break
  sleep 0.05
done
kill -9 "$batch_pid" 2>/dev/null || true
wait "$batch_pid" 2>/dev/null || true
rc=0
build-asan/src/apps/rat_batch --dir=tests/fixtures/worksheets --quiet \
  --checkpoint="$crash_dir/campaign.ckpt" \
  --json="$crash_dir/resumed.json" >/dev/null 2>"$crash_dir/resume.err" \
  || rc=$?
[ "$rc" -eq 2 ]
if ! grep -q 'checkpoint: restored [1-4] of 4' "$crash_dir/resume.err"; then
  echo "rat_batch: resumed run restored nothing from the checkpoint"
  cat "$crash_dir/resume.err"
  exit 1
fi
cmp "$crash_dir/plain.json" "$crash_dir/resumed.json"
echo "crash-recovery OK: $(grep -o 'restored [0-9] of 4' \
  "$crash_dir/resume.err"), resumed JSON byte-identical"
rm -rf "$crash_dir"

# Plan-cache crash-recovery smoke (docs/EXPLORATION.md): a throttled
# pruned campaign (tolerance far below what any format reaches, so every
# throughput-passing point runs the full slow precision sweep and is
# cached) is kill -9'd after the plan cache's journal holds at least one
# complete evaluation, then rerun unthrottled on the same directory. The
# rerun must replay cached evaluations (cache hits >= 1 on stderr) and
# its stdout must be byte-for-byte identical to a cacheless clean run.
echo "==== design_space_exploration kill -9 plan-cache resume smoke"
plan_dir=$(mktemp -d)
build/examples/design_space_exploration --goal=2 --tolerance=0.0001 \
  >"$plan_dir/plain.out" 2>/dev/null
build/examples/design_space_exploration --goal=2 --tolerance=0.0001 \
  --prune --plan-cache="$plan_dir/cache" --throttle-ms=100 \
  >/dev/null 2>&1 &
explore_pid=$!
for _ in $(seq 200); do
  size=$(stat -c %s "$plan_dir/cache/journal" 2>/dev/null || echo 0)
  [ "$size" -ge 350 ] && break
  sleep 0.05
done
kill -9 "$explore_pid" 2>/dev/null || true
wait "$explore_pid" 2>/dev/null || true
build/examples/design_space_exploration --goal=2 --tolerance=0.0001 \
  --prune --plan-cache="$plan_dir/cache" \
  >"$plan_dir/resumed.out" 2>"$plan_dir/resumed.err"
if ! grep -Eq 'cache hits [1-9]' "$plan_dir/resumed.err"; then
  echo "design_space_exploration: resumed run replayed nothing"
  cat "$plan_dir/resumed.err"
  exit 1
fi
cmp "$plan_dir/plain.out" "$plan_dir/resumed.out"
echo "plan-cache crash-recovery OK: $(grep -o 'cache hits [0-9]*' \
  "$plan_dir/resumed.err"), resumed stdout byte-identical"
rm -rf "$plan_dir"

# Warm-start smoke (docs/STORE.md): a --cache-dir server is run twice
# over stdio on the same directory; the second boot must warm-start the
# journaled entry and answer the same request byte-identically to the
# first (cold) evaluation.
echo "==== rat_serve warm-start byte-identity smoke (--cache-dir)"
warm_dir=$(mktemp -d)
req='{"schema":"rat.svc.v1","id":"w","op":"evaluate","file":"tests/fixtures/worksheets/pdf1d.rat"}'
printf '%s\n' "$req" | timeout 60 build/src/apps/rat_serve --stdio \
  --no-tcp --cache-dir="$warm_dir/cache" \
  >"$warm_dir/cold.out" 2>"$warm_dir/cold.err"
printf '%s\n' "$req" | timeout 60 build/src/apps/rat_serve --stdio \
  --no-tcp --cache-dir="$warm_dir/cache" \
  >"$warm_dir/warm.out" 2>"$warm_dir/warm.err"
grep -q 'warm-started 0 cached result(s)' "$warm_dir/cold.err"
grep -q 'warm-started 1 cached result(s)' "$warm_dir/warm.err"
cmp "$warm_dir/cold.out" "$warm_dir/warm.out"
echo "warm-start OK: 1 entry restored, response byte-identical"
rm -rf "$warm_dir"

echo "ALL CHECKS PASSED"
