#!/usr/bin/env bash
# Full verification pass: configure, build, run every test and every
# benchmark binary. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "==== running $b"
  "$b" --benchmark_min_time=0.05s
done

echo "ALL CHECKS PASSED"
