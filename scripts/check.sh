#!/usr/bin/env bash
# Full verification pass: configure, build, run every test and every
# benchmark binary. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "==== running $b"
  "$b" --benchmark_min_time=0.05s
done

# ThreadSanitizer pass over the parallel evaluation engine: a separate
# build tree with -DRAT_SANITIZE=thread, building and running only the
# thread-pool + determinism tests (the -R patterns match exactly the
# suites in test_parallel).
echo "==== ThreadSanitizer pass (parallel tests)"
cmake -B build-tsan -G Ninja -DRAT_SANITIZE=thread
cmake --build build-tsan --target test_parallel
ctest --test-dir build-tsan --output-on-failure \
  -R '^(ThreadPool|ParallelFor|ParallelMap|ParallelDeterminism)'

# ASan+UBSan pass over the worksheet ingestion path: the io tests (strict
# parser, loaders, batch runner) plus the rat_batch binary, then a smoke
# run on the checked-in fixture directory whose broken.rat must yield a
# per-file file:line:column diagnostic and the documented exit code 2
# (partial failure) while the three good worksheets still evaluate.
echo "==== AddressSanitizer+UBSan pass (worksheet ingestion)"
cmake -B build-asan -G Ninja -DRAT_SANITIZE=address,undefined
cmake --build build-asan --target test_io rat_batch
ctest --test-dir build-asan --output-on-failure \
  -R '^(LoadWorksheet|WorksheetDir|Batch)'

echo "==== rat_batch smoke (fixture directory with one malformed file)"
smoke_out=$(mktemp)
smoke_err=$(mktemp)
rc=0
build-asan/src/apps/rat_batch --dir=tests/fixtures/worksheets --quiet \
  >"$smoke_out" 2>"$smoke_err" || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "rat_batch: expected documented exit code 2 (partial failure), got $rc"
  cat "$smoke_out" "$smoke_err"
  exit 1
fi
if ! grep -q 'broken.rat:3:18: E_BAD_LIST' "$smoke_err"; then
  echo "rat_batch: missing file:line:column diagnostic for broken.rat"
  cat "$smoke_err"
  exit 1
fi
if ! grep -q '4 worksheet(s): 3 ok, 1 failed' "$smoke_out"; then
  echo "rat_batch: expected 3 good worksheets to still evaluate"
  cat "$smoke_out"
  exit 1
fi
rm -f "$smoke_out" "$smoke_err"

echo "ALL CHECKS PASSED"
