#!/usr/bin/env bash
# Full verification pass: configure, build, run every test and every
# benchmark binary. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "==== running $b"
  "$b" --benchmark_min_time=0.05s
done

# ThreadSanitizer pass over the parallel evaluation engine: a separate
# build tree with -DRAT_SANITIZE=thread, building and running only the
# thread-pool + determinism tests (the -R patterns match exactly the
# suites in test_parallel).
echo "==== ThreadSanitizer pass (parallel tests)"
cmake -B build-tsan -G Ninja -DRAT_SANITIZE=thread
cmake --build build-tsan --target test_parallel
ctest --test-dir build-tsan --output-on-failure \
  -R '^(ThreadPool|ParallelFor|ParallelMap|ParallelDeterminism)'

echo "ALL CHECKS PASSED"
