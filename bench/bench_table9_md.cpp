// Reproduces paper Tables 8 and 9: the molecular dynamics case study on
// the XD1000 model, including the inverse-model tuning step (§5.2: solve
// throughput_proc for the ~10x goal -> 50 ops/cycle) and the
// data-dependent shortfall that produced the actual 6.6x.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/sensitivity.hpp"

namespace {

using namespace rat;

apps::MdConfig md_cfg() { return apps::MdConfig{}; }

const apps::ParticleSystem& system16k() {
  static const auto sys = apps::particle_box(16384, 1.0, 1.0, 2009);
  return sys;
}

std::uint64_t md_cycles() {
  static const std::uint64_t c = apps::MdDesign(md_cfg()).cycles_for(system16k());
  return c;
}

void BM_Md_SoftwareForceEvaluation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto sys = apps::particle_box(n, 1.0, 1.0, 77);
  for (auto _ : state) {
    auto res = apps::compute_forces(sys, md_cfg());
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Md_SoftwareForceEvaluation)->Arg(1024)->Arg(4096);

void BM_Md_F32HardwareFunctionalModel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto sys = apps::particle_box(n, 1.0, 1.0, 78);
  for (auto _ : state) {
    auto res = apps::compute_forces_f32(sys, md_cfg());
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Md_F32HardwareFunctionalModel)->Arg(1024)->Arg(4096);

void BM_Md_VerletStep(benchmark::State& state) {
  auto sys = apps::particle_box(1024, 1.0, 0.1, 79);
  apps::compute_forces(sys, md_cfg());
  for (auto _ : state) {
    auto res = apps::velocity_verlet_step(sys, md_cfg());
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_Md_VerletStep);

void print_report() {
  const apps::MdDesign design(md_cfg());
  const auto inputs = design.rat_inputs();

  // §5.2's tuning step: the worksheet's 50 ops/cycle is the inverse
  // solution for the ~10x goal.
  const auto tp = core::solve_throughput_proc(
      inputs, core::mhz(100), 10.7, core::BufferingMode::kSingle);
  std::printf(
      "\nInverse model (Sec. 5.2): throughput_proc required for 10.7x at "
      "100 MHz = %.1f ops/cycle (worksheet uses 50)\n",
      tp.value_or(-1.0));

  const double eff =
      inputs.comp.ops_per_element * 16384.0 / static_cast<double>(md_cycles());
  std::printf(
      "Data-dependent shortfall: dataset locality sustains only %.1f "
      "effective ops/cycle on the %d-lane array\n\n",
      eff, design.lanes());

  bench::print_case_study("Table 8+9: Molecular dynamics", inputs,
                          bench::md_workload(design, md_cycles(), 16384),
                          rcsim::xd1000(), core::mhz(100));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_report();
  return 0;
}
