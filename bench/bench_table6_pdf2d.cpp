// Reproduces paper Tables 5 and 6: the 2-D PDF estimation case study,
// including the reconstructed actual column (the scan's actual column is
// partly illegible; §5.1's prose pins communication at ~6x the prediction
// and 19% of the execution time — see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace rat;

const auto& samples() {
  static const auto s = apps::gaussian_mixture_2d(8192, 2008);
  return s;
}

void BM_Pdf2d_SoftwareBaseline_Batch(benchmark::State& state) {
  const apps::Pdf2dConfig cfg;
  const std::span<const apps::Sample2d> batch(samples().data(),
                                              cfg.samples_per_batch());
  for (auto _ : state) {
    auto pdf = apps::estimate_pdf2d_quadratic(batch, cfg);
    benchmark::DoNotOptimize(pdf);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cfg.samples_per_batch()));
}
BENCHMARK(BM_Pdf2d_SoftwareBaseline_Batch);

void BM_Pdf2d_PlatformSimulation_FullRun(benchmark::State& state) {
  const apps::Pdf2dDesign design;
  const auto workload = bench::pdf2d_workload(design);
  const auto platform = rcsim::nallatech_h101();
  for (auto _ : state) {
    auto run = apps::simulate_on_platform(workload, platform, core::mhz(150),
                                          rcsim::Buffering::kSingle, 158.8);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_Pdf2d_PlatformSimulation_FullRun);

void print_report() {
  const apps::Pdf2dDesign design;
  std::printf(
      "\nDesign: %zu pipelines x %zu bins each, output drained in %zu-byte "
      "chunks (%.1f eff. ops/cycle vs worksheet's conservative %.0f)\n\n",
      design.n_pipelines(),
      design.config().n_bins() / design.n_pipelines(),
      design.output_chunk_bytes(),
      rcsim::effective_ops_per_cycle(design.pipeline_spec(),
                                     design.config().batch_words),
      design.rat_inputs().comp.throughput_ops_per_cycle);
  bench::print_case_study("Table 5+6: 2-D PDF estimation",
                          design.rat_inputs(), bench::pdf2d_workload(design),
                          rcsim::nallatech_h101(), core::mhz(150));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_report();
  return 0;
}
