// Micro-benchmark for the Eqs. 1-11 hot path: per-point scalar predict()
// (the pre-batch evaluator, validation and struct gather per call) vs the
// pre-validated scalar fast path vs the SoA batch kernel with scalar and
// native SIMD lanes. A global allocation counter verifies the arena
// claim: a steady-state batch evaluation performs zero heap allocations
// per point (the old Monte-Carlo path copied a full RatInputs — name
// string + clock vector — per sample).
//
// --json=PATH writes the rat.bench.v1 trajectory document (points/sec per
// variant, allocs/point); scripts/check.sh validates it.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_common.hpp"
#include "core/batch.hpp"
#include "core/montecarlo.hpp"
#include "core/parameters.hpp"
#include "core/throughput.hpp"
#include "core/units.hpp"

// ---- allocation counter ----------------------------------------------------
// Counts every operator new in the process; benchmarks snapshot it around
// their hot loop. Counting is a single relaxed increment, cheap enough to
// leave on for all variants so comparisons stay fair.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC pairs the replaced operator new (malloc) with the replaced operator
// delete (free) just fine at runtime, but its static analysis flags the
// cross-function malloc/free pairing; the replacement set below is matched.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace rat;

// ---- workload: a realistic spread of design points -------------------------
// pdf1d worksheet swept across parallelism-scaled throughput_proc, clock
// and transfer efficiency — the same kind of variation explore/MC/sweep
// feed the kernel, precomputed so the timed loops measure evaluation, not
// point synthesis.

constexpr std::size_t kPoints = 1 << 16;  // 65,536

struct PointSet {
  std::vector<double> throughput_proc, fclock, alpha_write;
};

const PointSet& points() {
  static const PointSet ps = [] {
    PointSet p;
    p.throughput_proc.reserve(kPoints);
    p.fclock.reserve(kPoints);
    p.alpha_write.reserve(kPoints);
    for (std::size_t i = 0; i < kPoints; ++i) {
      p.throughput_proc.push_back(2.5 * static_cast<double>(1 + i % 32));
      p.fclock.push_back(core::mhz(75 + 5 * static_cast<double>(i % 20)));
      p.alpha_write.push_back(0.2 + 0.7 * static_cast<double>(i % 64) / 64.0);
    }
    return p;
  }();
  return ps;
}

/// Scalar baseline: exactly what the explorer loops did before the batch
/// kernel — one checked predict() per point.
double eval_scalar(core::RatInputs& scratch) {
  const PointSet& ps = points();
  double acc = 0.0;
  for (std::size_t i = 0; i < kPoints; ++i) {
    scratch.comp.throughput_ops_per_cycle = ps.throughput_proc[i];
    scratch.comm.alpha_write = ps.alpha_write[i];
    acc += core::predict(scratch, ps.fclock[i]).speedup_sb;
  }
  return acc;
}

double eval_unchecked(core::RatInputs& scratch) {
  const PointSet& ps = points();
  double acc = 0.0;
  for (std::size_t i = 0; i < kPoints; ++i) {
    scratch.comp.throughput_ops_per_cycle = ps.throughput_proc[i];
    scratch.comm.alpha_write = ps.alpha_write[i];
    acc += core::predict_unchecked(scratch, ps.fclock[i]).speedup_sb;
  }
  return acc;
}

/// Batch path as the rewired consumers run it: validate once, then
/// fill/evaluate/consume the reused SoA batch in 1024-point chunks — the
/// Monte-Carlo chunk size, which keeps all 23 columns resident in L2.
double eval_batch(core::RatInputs& scratch, core::ThroughputBatch& batch,
                  core::BatchKernel kernel) {
  constexpr std::size_t kChunk = 1024;
  const PointSet& ps = points();
  scratch.validate();
  double acc = 0.0;
  for (std::size_t lo = 0; lo < kPoints; lo += kChunk) {
    const std::size_t count = std::min(kChunk, kPoints - lo);
    batch.clear();
    batch.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t i = lo + k;
      scratch.comp.throughput_ops_per_cycle = ps.throughput_proc[i];
      scratch.comm.alpha_write = ps.alpha_write[i];
      batch.push_back_unchecked(scratch, ps.fclock[i]);
    }
    core::predict_batch(batch, kernel);
    for (double s : batch.out.speedup_sb) acc += s;
  }
  return acc;
}

void finish(benchmark::State& state, std::uint64_t allocs) {
  state.SetItemsProcessed(static_cast<std::int64_t>(kPoints) *
                          state.iterations());
  state.counters["allocs_per_point"] =
      static_cast<double>(allocs) /
      static_cast<double>(kPoints * std::max<std::int64_t>(
                                        1, state.iterations()));
}

void BM_PredictScalar(benchmark::State& state) {
  core::RatInputs scratch = core::pdf1d_inputs();
  const std::uint64_t before = g_allocations.load();
  for (auto _ : state) benchmark::DoNotOptimize(eval_scalar(scratch));
  finish(state, g_allocations.load() - before);
}
BENCHMARK(BM_PredictScalar);

void BM_PredictUnchecked(benchmark::State& state) {
  core::RatInputs scratch = core::pdf1d_inputs();
  const std::uint64_t before = g_allocations.load();
  for (auto _ : state) benchmark::DoNotOptimize(eval_unchecked(scratch));
  finish(state, g_allocations.load() - before);
}
BENCHMARK(BM_PredictUnchecked);

void BM_BatchScalarLanes(benchmark::State& state) {
  core::RatInputs scratch = core::pdf1d_inputs();
  core::ThroughputBatch batch;
  // Warm the arena so the timed region shows the steady state the
  // explorer chunks run in (first fill allocates, every later one reuses).
  benchmark::DoNotOptimize(
      eval_batch(scratch, batch, core::BatchKernel::kScalar));
  const std::uint64_t before = g_allocations.load();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        eval_batch(scratch, batch, core::BatchKernel::kScalar));
  finish(state, g_allocations.load() - before);
}
BENCHMARK(BM_BatchScalarLanes);

void BM_BatchSimdLanes(benchmark::State& state) {
  core::RatInputs scratch = core::pdf1d_inputs();
  core::ThroughputBatch batch;
  benchmark::DoNotOptimize(
      eval_batch(scratch, batch, core::BatchKernel::kSimd));
  const std::uint64_t before = g_allocations.load();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        eval_batch(scratch, batch, core::BatchKernel::kSimd));
  finish(state, g_allocations.load() - before);
  state.SetLabel(std::string(core::simd_backend()) + " lanes");
}
BENCHMARK(BM_BatchSimdLanes);

// ---- trajectory report -----------------------------------------------------

template <typename Fn>
double points_per_sec(Fn&& fn) {
  // Run for >= 0.2s of wall clock and report the best pass, so the number
  // is stable without dragging in the google-benchmark machinery.
  double best = 0.0;
  double elapsed_total = 0.0;
  while (elapsed_total < 0.2) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fn());
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    elapsed_total += s;
    best = std::max(best, static_cast<double>(kPoints) / s);
  }
  return best;
}

void emit_json(const std::string& path) {
  bench::BenchJson json("bench_batch_eval", path);
  if (!json.enabled()) return;

  core::RatInputs scratch = core::pdf1d_inputs();
  core::ThroughputBatch batch;
  const double scalar = points_per_sec([&] { return eval_scalar(scratch); });
  const double unchecked =
      points_per_sec([&] { return eval_unchecked(scratch); });
  const double batch_scalar = points_per_sec(
      [&] { return eval_batch(scratch, batch, core::BatchKernel::kScalar); });
  const double batch_simd = points_per_sec(
      [&] { return eval_batch(scratch, batch, core::BatchKernel::kSimd); });

  // Steady-state allocations per point across 8 batch passes.
  const std::uint64_t before = g_allocations.load();
  for (int r = 0; r < 8; ++r)
    benchmark::DoNotOptimize(
        eval_batch(scratch, batch, core::BatchKernel::kSimd));
  const double allocs_per_point =
      static_cast<double>(g_allocations.load() - before) /
      static_cast<double>(8 * kPoints);

  json.add("kernel.scalar_points_per_sec", scalar);
  json.add("kernel.unchecked_points_per_sec", unchecked);
  json.add("kernel.batch_scalar_points_per_sec", batch_scalar);
  json.add("kernel.batch_simd_points_per_sec", batch_simd);
  json.add("kernel.batch_vs_scalar_speedup", batch_simd / scalar);
  json.add("kernel.batch_allocs_per_point", allocs_per_point);
  json.write();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = rat::bench::BenchJson::extract_json_path(
      argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_json(json_path);
  return 0;
}
