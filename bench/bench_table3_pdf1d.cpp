// Reproduces paper Tables 2 and 3 (and the Fig. 3 architecture summary):
// the 1-D PDF estimation case study on the Nallatech H101 model.
//
// Benchmarks time the real software baseline and the fixed-point hardware
// functional model; the report section prints the RAT worksheet with the
// predicted 75/100/150 MHz columns and the simulated actual column.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "rcsim/cycle_sim.hpp"

namespace {

using namespace rat;

const auto& samples() {
  static const auto s =
      apps::gaussian_mixture_1d(204800, apps::default_mixture_1d(), 2007);
  return s;
}

void BM_Pdf1d_SoftwareBaseline_Batch(benchmark::State& state) {
  const apps::Pdf1dConfig cfg;
  const std::span<const double> batch(samples().data(), cfg.batch);
  for (auto _ : state) {
    auto pdf = apps::estimate_pdf1d_quadratic(batch, cfg);
    benchmark::DoNotOptimize(pdf);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cfg.batch));
}
BENCHMARK(BM_Pdf1d_SoftwareBaseline_Batch);

void BM_Pdf1d_FixedPointHw_Batch(benchmark::State& state) {
  const apps::Pdf1dDesign design;
  const std::span<const double> batch(samples().data(),
                                      design.config().batch);
  for (auto _ : state) {
    auto pdf = design.estimate(batch);
    benchmark::DoNotOptimize(pdf);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(design.config().batch));
}
BENCHMARK(BM_Pdf1d_FixedPointHw_Batch);

void BM_Pdf1d_PlatformSimulation_FullRun(benchmark::State& state) {
  const apps::Pdf1dDesign design;
  const auto workload = bench::pdf1d_workload(design);
  const auto platform = rcsim::nallatech_h101();
  for (auto _ : state) {
    auto run = apps::simulate_on_platform(workload, platform, core::mhz(150),
                                          rcsim::Buffering::kSingle, 0.578);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_Pdf1d_PlatformSimulation_FullRun);

void print_report() {
  const apps::Pdf1dDesign design;
  const auto breakdown = rcsim::simulate_pipeline(design.pipeline_spec(),
                                                  design.config().batch);
  std::printf(
      "\ncycle-level occupancy: %llu issue + %llu II + %llu stall + "
      "%llu drain = %llu cycles (%.0f%% issuing)\n",
      static_cast<unsigned long long>(breakdown.issue_cycles),
      static_cast<unsigned long long>(breakdown.ii_cycles),
      static_cast<unsigned long long>(breakdown.stall_cycles),
      static_cast<unsigned long long>(breakdown.drain_cycles),
      static_cast<unsigned long long>(breakdown.total_cycles),
      breakdown.issue_fraction() * 100.0);
  std::printf(
      "Fig. 3 architecture: %zu pipelines x %zu bins, %s datapath, "
      "%llu cycles/iteration (%.1f eff. ops/cycle vs %.0f ideal, "
      "worksheet assumed %.0f)\n\n",
      design.n_pipelines(),
      design.config().n_bins / design.n_pipelines(),
      design.format().to_string().c_str(),
      static_cast<unsigned long long>(design.cycles_per_iteration()),
      rcsim::effective_ops_per_cycle(design.pipeline_spec(),
                                     design.config().batch),
      design.ideal_ops_per_cycle(),
      design.rat_inputs().comp.throughput_ops_per_cycle);
  bench::print_case_study("Table 2+3: 1-D PDF estimation",
                          design.rat_inputs(), bench::pdf1d_workload(design),
                          rcsim::nallatech_h101(), core::mhz(150));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_report();
  return 0;
}
