// Durable-store benchmarks (docs/STORE.md): journal append throughput
// with and without per-append fsync, recovery time as a function of
// journal size, and the service-level payoff — answering a request from
// a warm-started cache versus evaluating it cold.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>

#include "core/parameters.hpp"
#include "io/json.hpp"
#include "store/journal.hpp"
#include "store/store.hpp"
#include "svc/service.hpp"

namespace {

using namespace rat;
namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "rat_bench_store" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void BM_JournalAppendSynced(benchmark::State& state) {
  // The durability price: one write(2) + fsync per record. Real media
  // will be slower than the CI tmpfs; the shape, not the number, is the
  // point.
  const fs::path dir = fresh_dir("append_synced");
  store::JournalWriter writer(dir / "journal", {.sync_every_append = true});
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) benchmark::DoNotOptimize(writer.append(payload));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_JournalAppendSynced)->Arg(64)->Arg(1024)->Arg(16384);

void BM_JournalAppendUnsynced(benchmark::State& state) {
  // What checkpointed sweeps with sync_every_append=false pay per point.
  const fs::path dir = fresh_dir("append_unsynced");
  store::JournalWriter writer(dir / "journal", {.sync_every_append = false});
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) benchmark::DoNotOptimize(writer.append(payload));
  writer.sync();
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_JournalAppendUnsynced)->Arg(64)->Arg(1024)->Arg(16384);

void BM_JournalRecovery(benchmark::State& state) {
  // Recovery scans and CRC-checks every record: expect linear time in
  // journal bytes. Arg = record count at 1 KiB per record.
  const fs::path dir = fresh_dir("recovery");
  const fs::path path = dir / "journal";
  {
    store::JournalWriter writer(path, {.sync_every_append = false});
    const std::string payload(1024, 'r');
    for (std::int64_t i = 0; i < state.range(0); ++i) writer.append(payload);
  }
  for (auto _ : state) {
    store::RecoveredJournal r = store::recover_journal(path);
    benchmark::DoNotOptimize(r.records.data());
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(fs::file_size(path)));
}
BENCHMARK(BM_JournalRecovery)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DurableStorePut(benchmark::State& state) {
  // Full store put: map update + framed journal append (unsynced, no
  // auto-compaction, so the loop measures the steady-state append path).
  const fs::path dir = fresh_dir("store_put");
  store::DurableStore db(dir, {.sync_every_append = false,
                               .compact_journal_bytes = 0});
  const std::string value(256, 'v');
  std::uint64_t i = 0;
  for (auto _ : state) db.put("key" + std::to_string(i++ % 1024), value);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DurableStorePut);

std::string evaluate_line(const std::string& id, const std::string& sheet) {
  return "{\"id\":" + io::json_str(id) +
         ",\"op\":\"evaluate\",\"worksheet\":" + io::json_str(sheet) + "}";
}

void submit_and_wait(svc::Service& service, const std::string& line) {
  std::atomic<bool> done{false};
  service.submit(line, [&done](std::string response) {
    benchmark::DoNotOptimize(response.data());
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
  }
}

void BM_ServiceColdStartFirstAnswer(benchmark::State& state) {
  // Baseline for the warm-start comparison: a fresh in-memory service
  // must parse + evaluate the first request.
  const std::string line =
      evaluate_line("q", core::pdf1d_inputs().serialize());
  for (auto _ : state) {
    svc::Service service({.cache_capacity = 64});
    submit_and_wait(service, line);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceColdStartFirstAnswer);

void BM_ServiceWarmStartFirstAnswer(benchmark::State& state) {
  // The store payoff: boot against a populated --cache-dir and answer
  // the same first request from the warmed cache (byte-identical to the
  // cold answer — see SvcService warm-start tests).
  const fs::path dir = fresh_dir("warm_start");
  const std::string line =
      evaluate_line("q", core::pdf1d_inputs().serialize());
  {
    svc::Service seed({.cache_capacity = 64, .cache_dir = dir.string()});
    submit_and_wait(seed, line);  // journals the one entry
  }
  for (auto _ : state) {
    svc::Service service({.cache_capacity = 64, .cache_dir = dir.string()});
    submit_and_wait(service, line);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceWarmStartFirstAnswer);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
