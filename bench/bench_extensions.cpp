// Extension analyses beyond the paper's tables (its §6 future work and
// §3.1 streaming remark): multi-FPGA scaling curves, multi-kernel
// composition, streaming-mode rates, and Monte-Carlo prediction intervals
// for all three case studies.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/composition.hpp"
#include "core/montecarlo.hpp"
#include "core/streaming.hpp"
#include "core/units.hpp"
#include "util/format.hpp"

namespace {

using namespace rat;

void BM_MonteCarlo_4000Samples(benchmark::State& state) {
  const auto in = core::md_inputs();
  const auto model = core::UncertaintyModel::typical(in);
  for (auto _ : state) {
    auto r = core::run_monte_carlo(in, model, 4000, 10.0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MonteCarlo_4000Samples);

void BM_Scaling_64Boards(benchmark::State& state) {
  const auto in = core::md_inputs();
  for (auto _ : state) {
    auto c = core::predict_scaling(in, core::mhz(100), 64);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_Scaling_64Boards);

void print_scaling() {
  std::printf("==== Multi-FPGA strong scaling (shared host bus, double "
              "buffered) ====\n\n");
  struct Row {
    const char* name;
    core::RatInputs in;
    double clock;
  };
  const Row rows[] = {{"1-D PDF", core::pdf1d_inputs(), core::mhz(150)},
                      {"2-D PDF", core::pdf2d_inputs(), core::mhz(150)},
                      {"MD", core::md_inputs(), core::mhz(100)}};
  util::Table t({"case", "boards", "speedup", "efficiency"});
  for (const auto& row : rows) {
    for (int k : {1, 2, 4, 8, 16, 32}) {
      const auto curve = core::predict_scaling(row.in, row.clock, k);
      const auto& p = curve.back();
      t.add_row({row.name, std::to_string(k), util::fixed(p.speedup, 1),
                 util::percent(p.efficiency)});
    }
    t.add_separator();
  }
  std::printf("%s", t.to_ascii().c_str());
  for (const auto& row : rows) {
    std::printf("%s: knee at %d boards (last >= 90%% efficiency, 64-board "
                "search window)\n",
                row.name,
                core::max_useful_fpgas(row.in, row.clock, 0.9, 64));
  }
  std::printf("\nShape: MD's negligible communication keeps scaling "
              "near-linear past the\nwindow; the PDF estimators hit the "
              "shared-bus bound first (1-D earliest:\nits per-board compute "
              "is smallest relative to its transfers).\n\n");
}

void print_composition() {
  std::printf("==== Multi-kernel composition: PDF pipeline ====\n\n");
  // A two-stage application: 1-D PDF estimation feeding a (hypothetical)
  // histogram post-filter, with and without on-chip hand-off.
  core::StageSpec pdf;
  pdf.inputs = core::pdf1d_inputs();
  pdf.fclock_hz = core::mhz(150);
  core::StageSpec filter;
  filter.inputs = core::pdf1d_inputs();
  filter.inputs.name = "post-filter";
  filter.inputs.comp.ops_per_element = 96.0;
  filter.inputs.software.tsoft_sec = 0.081;
  filter.fclock_hz = core::mhz(150);

  const auto bus = core::predict_composite(
      {pdf, filter}, core::CompositionMode::kSequential);
  core::StageSpec pdf_chained = pdf;
  pdf_chained.output_stays_on_chip = true;
  const auto chained = core::predict_composite(
      {pdf_chained, filter}, core::CompositionMode::kSequential);
  const auto pipelined = core::predict_composite(
      {pdf, filter}, core::CompositionMode::kPipelined);

  std::printf("via host bus    : %.3e s (speedup %.1f)\n%s\n",
              bus.t_total_sec, bus.speedup, bus.to_table().to_ascii().c_str());
  std::printf("on-chip hand-off: %.3e s (speedup %.1f)\n", chained.t_total_sec,
              chained.speedup);
  std::printf("two-FPGA pipeline: %.3e s (speedup %.1f, bottleneck share "
              "%s)\n\n",
              pipelined.t_total_sec, pipelined.speedup,
              util::percent(pipelined.bottleneck_share).c_str());
}

void print_streaming() {
  std::printf("==== Streaming mode (Sec. 3.1 adjustment) ====\n\n");
  util::Table t({"case", "rate_in (elem/s)", "rate_comp", "rate_out",
                 "sustained", "bottleneck"});
  struct Row {
    const char* name;
    core::RatInputs in;
    double clock;
  };
  const Row rows[] = {{"1-D PDF", core::pdf1d_inputs(), core::mhz(150)},
                      {"2-D PDF", core::pdf2d_inputs(), core::mhz(150)},
                      {"MD", core::md_inputs(), core::mhz(100)}};
  for (const auto& row : rows) {
    const auto s = core::predict_streaming(row.in, row.clock);
    const char* bn =
        s.bottleneck == core::StreamBottleneck::kCompute  ? "compute"
        : s.bottleneck == core::StreamBottleneck::kInput ? "input"
                                                         : "output";
    t.add_row({row.name, util::sci(s.rate_in), util::sci(s.rate_comp),
               std::isinf(s.rate_out) ? "inf" : util::sci(s.rate_out),
               util::sci(s.sustained_rate), bn});
  }
  std::printf("%s\n", t.to_ascii().c_str());
}

void print_montecarlo() {
  std::printf("==== Monte-Carlo prediction intervals (typical input "
              "uncertainty) ====\n\n");
  util::Table t({"case", "goal", "speedup p10", "p50", "p90", "P(goal)"});
  struct Row {
    const char* name;
    core::RatInputs in;
    double goal;
  };
  const Row rows[] = {{"1-D PDF", core::pdf1d_inputs(), 10.0},
                      {"2-D PDF", core::pdf2d_inputs(), 5.0},
                      {"MD", core::md_inputs(), 10.0}};
  for (const auto& row : rows) {
    const auto mc = core::run_monte_carlo(
        row.in, core::UncertaintyModel::typical(row.in), 4000, row.goal);
    t.add_row({row.name, util::fixed(row.goal, 0) + "x",
               util::fixed(mc.speedup_sb.p10, 1),
               util::fixed(mc.speedup_sb.p50, 1),
               util::fixed(mc.speedup_sb.p90, 1),
               util::percent(mc.probability_of_goal)});
  }
  std::printf("%s", t.to_ascii().c_str());
  std::printf(
      "\nReading: the 1-D PDF's 10x goal was only ~coin-flip likely given\n"
      "honest input uncertainty — consistent with the measured 7.8x.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n");
  print_scaling();
  print_composition();
  print_streaming();
  print_montecarlo();
  return 0;
}
