// Overhead of the observability layer (docs/OBSERVABILITY.md), measured
// at three levels:
//   * a disabled instrumentation site — the cost every hot path pays when
//     metrics are off (one relaxed atomic load + branch);
//   * an enabled site — two steady_clock reads plus one striped-mutex
//     registry update;
//   * a full Monte-Carlo run with collection on vs off — the end-to-end
//     perturbation at the chunk granularity the engine instruments.
// The registry is reset around the enabled cases so the process-wide
// state never leaks between benchmarks.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "core/montecarlo.hpp"
#include "core/parameters.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace rat;

void BM_ScopedTimerDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::ScopedTimer t("bench.site");
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_ScopedTimerDisabled);

void BM_ScopedTimerEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  for (auto _ : state) {
    obs::ScopedTimer t("bench.site");
    benchmark::DoNotOptimize(&t);
  }
  obs::set_enabled(false);
  obs::Registry::global().reset();
}
BENCHMARK(BM_ScopedTimerEnabled);

void BM_CounterEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Registry& reg = obs::Registry::global();
  reg.reset();
  for (auto _ : state) reg.add_counter("bench.counter");
  obs::set_enabled(false);
  reg.reset();
}
BENCHMARK(BM_CounterEnabled);

void BM_MonteCarlo(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  const core::RatInputs in = core::md_inputs();
  const auto model = core::UncertaintyModel::typical(in);
  obs::Registry::global().reset();
  obs::set_enabled(on);
  for (auto _ : state) {
    const auto r = core::run_monte_carlo(in, model, 4096, 10.0, 42, 1);
    benchmark::DoNotOptimize(r.probability_of_goal);
  }
  obs::set_enabled(false);
  obs::Registry::global().reset();
  state.SetLabel(on ? "metrics on" : "metrics off");
}
BENCHMARK(BM_MonteCarlo)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
