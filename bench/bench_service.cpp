// Service-path benchmarks: cold-miss vs cache-hit evaluation latency
// through Service::submit, fingerprint/canonicalization cost, a
// duplicate-heavy request mix measuring sustained requests/sec, and the
// router's per-request helpers (route hash, forward encode, id splice)
// — the entire per-request cost rat_router adds on top of a worker.
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/parameters.hpp"
#include "io/json.hpp"
#include "svc/fingerprint.hpp"
#include "svc/router.hpp"
#include "svc/service.hpp"

namespace {

using namespace rat;

std::string evaluate_line(const std::string& id, const std::string& sheet,
                          bool no_cache) {
  std::string line = "{\"id\":" + io::json_str(id) +
                     ",\"op\":\"evaluate\",\"worksheet\":" +
                     io::json_str(sheet);
  if (no_cache) line += ",\"no_cache\":true";
  return line + "}";
}

/// One request, waiting for its response: the full submit -> parse ->
/// (evaluate | cache hit) -> render round trip.
void submit_and_wait(svc::Service& service, const std::string& line) {
  std::atomic<bool> done{false};
  service.submit(line, [&done](std::string response) {
    benchmark::DoNotOptimize(response.data());
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
  }
}

void BM_ServiceColdMiss(benchmark::State& state) {
  svc::Service service({.cache_capacity = 1024});
  const std::string sheet = core::pdf1d_inputs().serialize();
  // no_cache: every iteration pays parse + predict_all + render.
  const std::string line = evaluate_line("cold", sheet, /*no_cache=*/true);
  for (auto _ : state) submit_and_wait(service, line);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceColdMiss);

void BM_ServiceCacheHit(benchmark::State& state) {
  svc::Service service({.cache_capacity = 1024});
  const std::string sheet = core::pdf1d_inputs().serialize();
  const std::string line = evaluate_line("hot", sheet, /*no_cache=*/false);
  submit_and_wait(service, line);  // warm the cache: first is the miss
  for (auto _ : state) submit_and_wait(service, line);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceCacheHit);

void BM_ServiceDuplicateHeavyMix(benchmark::State& state) {
  // The soak-test shape: a few distinct designs queried over and over
  // (>= 50% duplicates). items/sec here is the service's requests/sec.
  svc::Service service({.cache_capacity = 1024});
  const std::vector<std::string> lines = {
      evaluate_line("a", core::pdf1d_inputs().serialize(), false),
      evaluate_line("b", core::pdf2d_inputs().serialize(), false),
      evaluate_line("c", core::md_inputs().serialize(), false),
  };
  std::size_t i = 0;
  for (auto _ : state) {
    submit_and_wait(service, lines[i % lines.size()]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  const svc::Service::Stats st = service.stats();
  state.counters["cache_hit_ratio"] =
      st.cache.hits + st.cache.misses == 0
          ? 0.0
          : static_cast<double>(st.cache.hits) /
                static_cast<double>(st.cache.hits + st.cache.misses);
}
BENCHMARK(BM_ServiceDuplicateHeavyMix);

void BM_CanonicalFingerprint(benchmark::State& state) {
  // The cache-key cost a hit pays on top of the map lookup.
  const core::RatInputs inputs = core::pdf1d_inputs();
  for (auto _ : state)
    benchmark::DoNotOptimize(svc::fingerprint(inputs));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CanonicalFingerprint);

void BM_RequestParse(benchmark::State& state) {
  const std::string line =
      evaluate_line("p", core::pdf1d_inputs().serialize(), false);
  for (auto _ : state) {
    svc::Request req = svc::parse_request(line);
    benchmark::DoNotOptimize(&req);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(line.size()));
}
BENCHMARK(BM_RequestParse);

void BM_RouteFingerprint(benchmark::State& state) {
  // The router's shard decision: parse the inline worksheet and take its
  // canonical fingerprint. This is the dominant per-request router cost.
  const svc::Request req =
      svc::parse_request(evaluate_line("r", core::pdf1d_inputs().serialize(),
                                       /*no_cache=*/false));
  for (auto _ : state)
    benchmark::DoNotOptimize(svc::route_fingerprint(req));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteFingerprint);

void BM_RouterEncodeForward(benchmark::State& state) {
  // Re-encoding a parsed request with the correlation token as its id.
  const svc::Request req =
      svc::parse_request(evaluate_line("r", core::pdf1d_inputs().serialize(),
                                       /*no_cache=*/false));
  for (auto _ : state) {
    std::string line = svc::encode_forward("t3f", req);
    benchmark::DoNotOptimize(line.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterEncodeForward);

void BM_RouterRestoreResponseId(benchmark::State& state) {
  // Splicing the client id back into a real worker response line: token
  // scan + three appends, no JSON re-parse or re-render.
  svc::Service service({.cache_capacity = 16});
  std::string worker_line;
  {
    std::atomic<bool> done{false};
    service.submit(
        evaluate_line("t3f", core::pdf1d_inputs().serialize(), false),
        [&](std::string response) {
          worker_line = std::move(response);
          done.store(true, std::memory_order_release);
        });
    while (!done.load(std::memory_order_acquire)) {
    }
  }
  for (auto _ : state) {
    std::string out = svc::restore_response_id(worker_line, "client-42");
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(worker_line.size()));
}
BENCHMARK(BM_RouterRestoreResponseId);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
