// Ablation: how much the authors' conservative throughput_proc estimates
// bought them. The 1-D PDF worksheet derated 24 ideal ops/cycle to 20; the
// 2-D worksheet used 48 against an achievable ~64. This bench sweeps the
// derating factor and reports prediction error against the simulated
// actuals — quantifying DESIGN.md's "conservatism as contingency" claim.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/sensitivity.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"

namespace {

using namespace rat;

void BM_Ablation_PredictSweep(benchmark::State& state) {
  const auto in = core::pdf1d_inputs();
  for (auto _ : state) {
    auto preds = core::sweep_parameter(
        in,
        [](core::RatInputs& r, double v) {
          r.comp.throughput_ops_per_cycle = v;
        },
        {16, 18, 20, 22, 24}, core::mhz(150));
    benchmark::DoNotOptimize(preds);
  }
}
BENCHMARK(BM_Ablation_PredictSweep);

void report_case(const char* name, const core::RatInputs& base,
                 const rcsim::Workload& w, const rcsim::Platform& platform,
                 double fclock, const std::vector<double>& proc_rates,
                 double ideal_rate) {
  const auto actual = apps::simulate_on_platform(
      w, platform, fclock, rcsim::Buffering::kSingle,
      base.software.tsoft_sec);
  std::printf("---- %s at %.0f MHz (simulated actual speedup %.1f) ----\n",
              name, core::to_mhz(fclock), actual.measured.speedup);
  util::Table t({"throughput_proc", "pred tcomp", "pred speedup",
                 "speedup err %"});
  for (double tp : proc_rates) {
    core::RatInputs in = base;
    in.comp.throughput_ops_per_cycle = tp;
    const auto p = core::predict(in, fclock);
    t.add_row({util::fixed(tp, 0) + (tp == ideal_rate ? " (ideal)" : "") +
                   (tp == base.comp.throughput_ops_per_cycle
                        ? " (worksheet)"
                        : ""),
               util::sci(p.t_comp_sec), util::fixed(p.speedup_sb, 1),
               util::fixed(util::percent_error(p.speedup_sb,
                                               actual.measured.speedup),
                           1)});
  }
  std::printf("%s\n", t.to_ascii().c_str());
}

void print_report() {
  std::printf("\n==== Ablation: throughput_proc conservatism ====\n\n");
  {
    const apps::Pdf1dDesign d;
    report_case("1-D PDF (24 ideal, 20 assumed, ~18.7 achieved)",
                d.rat_inputs(), rat::bench::pdf1d_workload(d),
                rcsim::nallatech_h101(), core::mhz(150),
                {16, 18, 20, 22, 24}, 24);
  }
  {
    const apps::Pdf2dDesign d;
    report_case("2-D PDF (96 ideal, 48 assumed, ~64 achieved)",
                d.rat_inputs(), rat::bench::pdf2d_workload(d),
                rcsim::nallatech_h101(), core::mhz(150),
                {32, 48, 64, 80, 96}, 96);
  }
  std::printf(
      "Shape: the 1-D worksheet's derate (20 of 24) tracks the achieved\n"
      "~18.7 closely; the 2-D worksheet's deeper derate (48 of 96) over-\n"
      "predicts tcomp, which §5.1 credits with absorbing the 6x\n"
      "communication surprise — 'a victory in contingency planning'.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_report();
  return 0;
}
