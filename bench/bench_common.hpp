// Shared helpers for the per-table benchmark binaries: build the rcsim
// workload for each case-study design and produce the paper-style
// worksheet with predicted and simulated-actual columns — plus the
// machine-readable perf-trajectory emitter (BENCH_RAT.json) the batch
// kernel benches use so every PR leaves comparable numbers behind.
#pragma once

#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>

#include "apps/hw_run.hpp"
#include "apps/md.hpp"
#include "apps/pdf1d.hpp"
#include "apps/pdf2d.hpp"
#include "apps/workload.hpp"
#include "core/batch.hpp"
#include "core/throughput.hpp"
#include "core/units.hpp"
#include "core/validation.hpp"
#include "core/worksheet.hpp"
#include "rcsim/platform.hpp"

namespace rat::bench {

inline rcsim::Workload pdf1d_workload(const apps::Pdf1dDesign& d) {
  rcsim::Workload w;
  w.n_iterations = d.rat_inputs().software.n_iterations;
  w.io = [d, n = w.n_iterations](std::size_t i) { return d.io(i, n); };
  w.cycles = [c = d.cycles_per_iteration()](std::size_t) { return c; };
  return w;
}

inline rcsim::Workload pdf2d_workload(const apps::Pdf2dDesign& d) {
  rcsim::Workload w;
  w.n_iterations = d.rat_inputs().software.n_iterations;
  w.io = [d, n = w.n_iterations](std::size_t i) { return d.io(i, n); };
  w.cycles = [c = d.cycles_per_iteration()](std::size_t) { return c; };
  return w;
}

inline rcsim::Workload md_workload(const apps::MdDesign& d,
                                   std::uint64_t cycles,
                                   std::size_t n_molecules) {
  rcsim::Workload w;
  w.n_iterations = 1;
  w.io = [d, n_molecules](std::size_t) { return d.io(n_molecules); };
  w.cycles = [cycles](std::size_t) { return cycles; };
  return w;
}

/// Machine-readable perf trajectory, schema "rat.bench.v1": a flat map of
/// named scalar metrics plus the lane backend the batch kernel was built
/// with. scripts/check.sh writes BENCH_RAT.json with this emitter and
/// fails the run if the document is missing or malformed, so the numbers
/// accumulate PR over PR (docs/VECTORIZATION.md documents the schema).
class BenchJson {
 public:
  /// Strip a `--json=PATH` argument before benchmark::Initialize sees it
  /// (google-benchmark rejects flags it does not know). Returns the path,
  /// or "" when the flag is absent — emission is opt-in.
  static std::string extract_json_path(int& argc, char** argv) {
    std::string path;
    int w = 1;
    for (int r = 1; r < argc; ++r) {
      const std::string arg = argv[r];
      if (arg.rfind("--json=", 0) == 0) {
        path = arg.substr(7);
        if (path.empty())
          throw std::invalid_argument("--json= needs a path");
      } else {
        argv[w++] = argv[r];
      }
    }
    argc = w;
    return path;
  }

  BenchJson(std::string bench_name, std::string path)
      : bench_(std::move(bench_name)), path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }
  void add(const std::string& key, double value) { metrics_[key] = value; }

  /// Write the document (no-op without --json). Round-trip double
  /// formatting so the trajectory survives re-parsing exactly.
  void write() const {
    if (!enabled()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr)
      throw std::runtime_error("BenchJson: cannot open " + path_);
    std::fprintf(f,
                 "{\n  \"schema\": \"rat.bench.v1\",\n  \"bench\": \"%s\",\n"
                 "  \"simd_backend\": \"%s\",\n  \"simd_width\": %zu,\n"
                 "  \"metrics\": {",
                 bench_.c_str(), core::simd_backend(), core::simd_width());
    bool first = true;
    for (const auto& [key, value] : metrics_) {
      std::fprintf(f, "%s\n    \"%s\": %.17g", first ? "" : ",", key.c_str(),
                   value);
      first = false;
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu metrics, %s lanes)\n", path_.c_str(),
                metrics_.size(), core::simd_backend());
  }

 private:
  std::string bench_;
  std::string path_;
  std::map<std::string, double> metrics_;  // sorted => deterministic bytes
};

/// Print a full worksheet (inputs + predicted columns + simulated actual)
/// for one case study, in the layout of paper Tables 2+3 / 5+6 / 8+9.
inline void print_case_study(const std::string& title,
                             const core::RatInputs& inputs,
                             const rcsim::Workload& workload,
                             const rcsim::Platform& platform,
                             double actual_clock_hz) {
  const auto run = apps::simulate_on_platform(
      workload, platform, actual_clock_hz, rcsim::Buffering::kSingle,
      inputs.software.tsoft_sec);
  std::printf("==== %s (platform: %s) ====\n\n", title.c_str(),
              platform.name.c_str());
  std::printf("%s\n", core::render_worksheet(
                          inputs, {run.measured},
                          core::WorksheetMode::kSingleBuffered)
                          .c_str());
  const auto pred = core::predict(inputs, actual_clock_hz);
  const auto rep = core::validate(pred, run.measured);
  std::printf("Prediction error at %.0f MHz (simulated actual):\n%s\n",
              core::to_mhz(actual_clock_hz), rep.to_table().to_ascii().c_str());
}

}  // namespace rat::bench
