// Shared helpers for the per-table benchmark binaries: build the rcsim
// workload for each case-study design and produce the paper-style
// worksheet with predicted and simulated-actual columns.
#pragma once

#include <cstdio>
#include <string>

#include "apps/hw_run.hpp"
#include "apps/md.hpp"
#include "apps/pdf1d.hpp"
#include "apps/pdf2d.hpp"
#include "apps/workload.hpp"
#include "core/throughput.hpp"
#include "core/units.hpp"
#include "core/validation.hpp"
#include "core/worksheet.hpp"
#include "rcsim/platform.hpp"

namespace rat::bench {

inline rcsim::Workload pdf1d_workload(const apps::Pdf1dDesign& d) {
  rcsim::Workload w;
  w.n_iterations = d.rat_inputs().software.n_iterations;
  w.io = [d, n = w.n_iterations](std::size_t i) { return d.io(i, n); };
  w.cycles = [c = d.cycles_per_iteration()](std::size_t) { return c; };
  return w;
}

inline rcsim::Workload pdf2d_workload(const apps::Pdf2dDesign& d) {
  rcsim::Workload w;
  w.n_iterations = d.rat_inputs().software.n_iterations;
  w.io = [d, n = w.n_iterations](std::size_t i) { return d.io(i, n); };
  w.cycles = [c = d.cycles_per_iteration()](std::size_t) { return c; };
  return w;
}

inline rcsim::Workload md_workload(const apps::MdDesign& d,
                                   std::uint64_t cycles,
                                   std::size_t n_molecules) {
  rcsim::Workload w;
  w.n_iterations = 1;
  w.io = [d, n_molecules](std::size_t) { return d.io(n_molecules); };
  w.cycles = [cycles](std::size_t) { return cycles; };
  return w;
}

/// Print a full worksheet (inputs + predicted columns + simulated actual)
/// for one case study, in the layout of paper Tables 2+3 / 5+6 / 8+9.
inline void print_case_study(const std::string& title,
                             const core::RatInputs& inputs,
                             const rcsim::Workload& workload,
                             const rcsim::Platform& platform,
                             double actual_clock_hz) {
  const auto run = apps::simulate_on_platform(
      workload, platform, actual_clock_hz, rcsim::Buffering::kSingle,
      inputs.software.tsoft_sec);
  std::printf("==== %s (platform: %s) ====\n\n", title.c_str(),
              platform.name.c_str());
  std::printf("%s\n", core::render_worksheet(
                          inputs, {run.measured},
                          core::WorksheetMode::kSingleBuffered)
                          .c_str());
  const auto pred = core::predict(inputs, actual_clock_hz);
  const auto rep = core::validate(pred, run.measured);
  std::printf("Prediction error at %.0f MHz (simulated actual):\n%s\n",
              core::to_mhz(actual_clock_hz), rep.to_table().to_ascii().c_str());
}

}  // namespace rat::bench
