// Host-measured software baselines (the tsoft inputs of Tables 2/5/8).
//
// The paper's baselines ran on a 3.2 GHz Xeon (PDF) and a 2.2 GHz Opteron
// (MD); this harness measures the same algorithms on the current host and
// prints the scaling factor against the paper-era constants the worksheets
// use. The worksheet rows in the other benches keep the paper constants so
// the predicted columns match the publication; this binary documents what
// this machine would supply instead.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "apps/md.hpp"
#include "apps/pdf1d.hpp"
#include "apps/pdf2d.hpp"
#include "apps/workload.hpp"

namespace {

using namespace rat;

void BM_Baseline_Pdf1d_Batch512(benchmark::State& state) {
  static const auto xs =
      apps::gaussian_mixture_1d(512, apps::default_mixture_1d(), 3001);
  const apps::Pdf1dConfig cfg;
  for (auto _ : state) {
    auto pdf = apps::estimate_pdf1d_quadratic(xs, cfg);
    benchmark::DoNotOptimize(pdf);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Baseline_Pdf1d_Batch512);

void BM_Baseline_Pdf1d_Gaussian_Batch512(benchmark::State& state) {
  static const auto xs =
      apps::gaussian_mixture_1d(512, apps::default_mixture_1d(), 3001);
  const apps::Pdf1dConfig cfg;
  for (auto _ : state) {
    auto pdf = apps::estimate_pdf1d_gaussian(xs, cfg);
    benchmark::DoNotOptimize(pdf);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Baseline_Pdf1d_Gaussian_Batch512);

void BM_Baseline_Pdf2d_Batch512(benchmark::State& state) {
  static const auto xs = apps::gaussian_mixture_2d(512, 3002);
  const apps::Pdf2dConfig cfg;
  for (auto _ : state) {
    auto pdf = apps::estimate_pdf2d_quadratic(xs, cfg);
    benchmark::DoNotOptimize(pdf);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Baseline_Pdf2d_Batch512);

void BM_Baseline_Md_Forces(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto sys = apps::particle_box(n, 1.0, 1.0, 3003);
  const apps::MdConfig cfg;
  for (auto _ : state) {
    auto res = apps::compute_forces(sys, cfg);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Baseline_Md_Forces)->Arg(2048)->Arg(8192);

template <typename F>
double time_once(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void print_report() {
  std::printf("\n==== tsoft: this host vs the paper-era baselines ====\n");

  // 1-D PDF: full 204,800-sample estimate (400 batches of 512).
  {
    const auto xs =
        apps::gaussian_mixture_1d(204800, apps::default_mixture_1d(), 3004);
    const apps::Pdf1dConfig cfg;
    const double t = time_once([&] {
      auto pdf = apps::estimate_pdf1d_quadratic(xs, cfg);
      benchmark::DoNotOptimize(pdf);
    });
    std::printf("1-D PDF  : host %.3f s   paper (3.2 GHz Xeon) 0.578 s   "
                "ratio %.2fx\n", t, t / 0.578);
  }
  // 2-D PDF: the paper's 158.8 s full run is ~275x the 1-D cost; measure a
  // 1/16 slice (12,800 samples) and scale.
  {
    const auto xs = apps::gaussian_mixture_2d(12800, 3005);
    const apps::Pdf2dConfig cfg;
    const double t = time_once([&] {
      auto pdf = apps::estimate_pdf2d_quadratic(xs, cfg);
      benchmark::DoNotOptimize(pdf);
    });
    const double scaled = t * (204800.0 / 12800.0);
    std::printf("2-D PDF  : host %.1f s (scaled from 1/16 run)   paper "
                "158.8 s   ratio %.2fx\n", scaled, scaled / 158.8);
  }
  // MD: one force evaluation over the full 16,384 molecules.
  {
    auto sys = apps::particle_box(16384, 1.0, 1.0, 3006);
    const apps::MdConfig cfg;
    const double t = time_once([&] {
      auto res = apps::compute_forces(sys, cfg);
      benchmark::DoNotOptimize(res);
    });
    std::printf("MD       : host %.3f s   paper (2.2 GHz Opteron) 5.78 s   "
                "ratio %.2fx\n", t, t / 5.78);
  }
  std::printf(
      "\nThe worksheets keep the paper-era tsoft so Tables 3/6/9's predicted\n"
      "columns match the publication; substituting the host values rescales\n"
      "every speedup by the ratio shown (the prediction-error *structure*\n"
      "is unchanged, because tsoft cancels out of the error analysis).\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_report();
  return 0;
}
