// Ablation: single vs double buffering across all three case studies and
// clocks. Quantifies the paper's §4.3 remark that double buffering would
// have masked the communication misprediction behind the stable
// computation time, and shows where each design's DB benefit saturates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "util/format.hpp"

namespace {

using namespace rat;

struct Case {
  std::string name;
  core::RatInputs inputs;
  rcsim::Workload workload;
  rcsim::Platform platform;
};

std::vector<Case> cases() {
  std::vector<Case> out;
  {
    const apps::Pdf1dDesign d;
    out.push_back({"1-D PDF", d.rat_inputs(), bench::pdf1d_workload(d),
                   rcsim::nallatech_h101()});
  }
  {
    const apps::Pdf2dDesign d;
    out.push_back({"2-D PDF", d.rat_inputs(), bench::pdf2d_workload(d),
                   rcsim::nallatech_h101()});
  }
  {
    const apps::MdDesign d;
    static const auto sys = apps::particle_box(16384, 1.0, 1.0, 2013);
    static const auto cycles = d.cycles_for(sys);
    out.push_back({"MD", d.rat_inputs(),
                   bench::md_workload(d, cycles, 16384), rcsim::xd1000()});
  }
  return out;
}

void BM_Ablation_SbVsDb_OneSimulation(benchmark::State& state) {
  const apps::Pdf2dDesign d;
  const auto w = bench::pdf2d_workload(d);
  const auto platform = rcsim::nallatech_h101();
  for (auto _ : state) {
    auto sb = apps::simulate_on_platform(w, platform, core::mhz(150),
                                         rcsim::Buffering::kSingle, 158.8);
    auto db = apps::simulate_on_platform(w, platform, core::mhz(150),
                                         rcsim::Buffering::kDouble, 158.8);
    benchmark::DoNotOptimize(sb);
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_Ablation_SbVsDb_OneSimulation);

void print_report() {
  std::printf("\n==== Ablation: buffering mode (simulated actuals) ====\n\n");
  util::Table t({"case", "fclk (MHz)", "pred SB", "pred DB", "actual SB",
                 "actual DB", "DB gain"});
  for (const auto& c : cases()) {
    for (double f : c.inputs.comp.fclock_hz) {
      const auto pred = core::predict(c.inputs, f);
      const auto sb = apps::simulate_on_platform(
          c.workload, c.platform, f, rcsim::Buffering::kSingle,
          c.inputs.software.tsoft_sec);
      const auto db = apps::simulate_on_platform(
          c.workload, c.platform, f, rcsim::Buffering::kDouble,
          c.inputs.software.tsoft_sec);
      t.add_row({c.name, util::fixed(core::to_mhz(f), 0),
                 util::fixed(pred.speedup_sb, 1),
                 util::fixed(pred.speedup_db, 1),
                 util::fixed(sb.measured.speedup, 1),
                 util::fixed(db.measured.speedup, 1),
                 util::fixed(db.measured.speedup / sb.measured.speedup, 2) +
                     "x"});
    }
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf(
      "Shape: the 2-D PDF (19%% measured comm) gains the most from double\n"
      "buffering; MD (<1%% comm) gains nothing; the 1-D PDF's DB actual\n"
      "lands closer to its DB prediction than SB did to SB's (paper §4.3).\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_report();
  return 0;
}
