// Reproduces the paper's §4.2 numerical-precision decision: sweep fixed-
// point widths for the 1-D PDF estimator against the double-precision
// reference, confirm the 18-bit format sits inside the ~2% error budget,
// and show the minimal format a 2% tolerance selects.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/pdf1d.hpp"
#include "apps/workload.hpp"
#include "core/parameters.hpp"
#include "core/precision.hpp"
#include "core/units.hpp"

namespace {

using namespace rat;

const auto& samples() {
  // Large enough that truncation bias accumulates as it would over the
  // paper's 204,800-sample run, small enough to sweep 20 widths quickly.
  static const auto s =
      apps::gaussian_mixture_1d(16384, apps::default_mixture_1d(), 2011);
  return s;
}

void BM_Precision_SingleWidthEvaluation(benchmark::State& state) {
  const apps::Pdf1dDesign design;
  const fx::Format fmt{static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(0)) - 1, true};
  const std::span<const double> batch(samples().data(), 2048);
  for (auto _ : state) {
    auto out = design.estimate_with_format(batch, fmt);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Precision_SingleWidthEvaluation)->Arg(12)->Arg(18)->Arg(32);

void print_report() {
  const apps::Pdf1dDesign design;
  const auto reference =
      apps::estimate_pdf1d_quadratic(samples(), design.config());

  core::PrecisionRequirements req;
  req.max_error_percent = 2.0;  // the paper's tolerance
  req.min_total_bits = 10;
  req.max_total_bits = 24;
  req.int_bits = 0;

  const fx::FixedKernel kernel = [&](fx::Format fmt) {
    return design.estimate_with_format(samples(), fmt);
  };
  const auto result = core::run_precision_test(kernel, reference, req);

  std::printf("\n==== 1-D PDF fixed-point error vs total bits ====\n%s\n",
              result.to_table().to_ascii().c_str());
  if (result.satisfied) {
    std::printf(
        "minimal format within 2%%: %s (max err %.3f%%)\n"
        "paper's choice: 18-bit fixed point, max error ~2%% — and \"slightly\n"
        "smaller bitwidths would have also possessed reasonable error\n"
        "constraints\" with no resource gain (one 18x18 MAC either way).\n"
        "bytes/element over the 32-bit channel: %.0f (Table 2's value)\n",
        result.choice->format.to_string().c_str(),
        result.choice->report.max_error_percent,
        result.bytes_per_element(4.0));
  } else {
    std::printf("NO format within tolerance — unexpected, see sweep above\n");
  }

  // The precision-vs-throughput trade-off: re-run Eqs. 1-11 across the
  // whole sweep in one SoA batch (quantized_throughput_sweep), showing
  // what each format's channel-rounded width does to predicted speedup.
  const auto quantized = core::quantized_throughput_sweep(
      core::pdf1d_inputs(), core::mhz(100), result.sweep);
  std::printf("\n==== format -> channel bytes -> predicted speedup ====\n");
  std::printf("%6s %8s %12s %12s\n", "bits", "bytes/el", "speedup_sb",
              "speedup_db");
  for (const auto& q : quantized)
    std::printf("%6d %8.0f %12.2f %12.2f\n", q.format.total_bits,
                q.bytes_per_element, q.prediction.speedup_sb,
                q.prediction.speedup_db);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_report();
  return 0;
}
