// Reproduces paper Figure 2: the three communication/computation overlap
// scenarios — single buffered, double buffered computation bound, and
// double buffered communication bound — as ASCII Gantt charts from the
// executor's event timeline, plus the Eq. (5)/(6) totals each implies.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/units.hpp"
#include "rcsim/executor.hpp"

namespace {

using namespace rat;

rcsim::Link clean_link() {
  return rcsim::Link("fig2", 1e9, rcsim::LinkDirection{0.0, 1e9, 0.0},
                     rcsim::LinkDirection{0.0, 1e9, 0.0});
}

/// in/out bytes and cycles chosen so one scenario is computation bound
/// (compute ~3x comm) and the other communication bound (comm ~3x compute).
rcsim::Workload workload(std::size_t iters, std::size_t in_bytes,
                         std::size_t out_bytes, std::uint64_t cycles) {
  rcsim::Workload w;
  w.n_iterations = iters;
  w.io = [=](std::size_t) {
    rcsim::IterationIo io;
    io.input_chunks_bytes = {in_bytes};
    io.output_chunks_bytes = {out_bytes};
    return io;
  };
  w.cycles = [=](std::size_t) { return cycles; };
  return w;
}

void BM_Executor_SingleBuffered(benchmark::State& state) {
  const auto link = clean_link();
  const auto w = workload(400, 2048, 1024, 20000);
  rcsim::ExecutionConfig cfg;
  cfg.fclock_hz = 150e6;
  for (auto _ : state) {
    auto r = rcsim::execute(w, link, cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_Executor_SingleBuffered);

void BM_Executor_DoubleBuffered(benchmark::State& state) {
  const auto link = clean_link();
  const auto w = workload(400, 2048, 1024, 20000);
  rcsim::ExecutionConfig cfg;
  cfg.buffering = rcsim::Buffering::kDouble;
  cfg.fclock_hz = 150e6;
  for (auto _ : state) {
    auto r = rcsim::execute(w, link, cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 400);
}
BENCHMARK(BM_Executor_DoubleBuffered);

void show(const char* title, const rcsim::Workload& w,
          rcsim::Buffering buffering) {
  rcsim::ExecutionConfig cfg;
  cfg.buffering = buffering;
  cfg.fclock_hz = 100e6;
  const auto r = rcsim::execute(w, clean_link(), cfg);
  std::printf("---- %s ----\n%s", title, r.timeline.to_gantt(96).c_str());
  std::printf("totals: comm %.2e s, comp %.2e s, wall %.2e s (lanes %s)\n\n",
              r.t_comm_sec, r.t_comp_sec, r.t_total_sec,
              r.timeline.lanes_consistent() ? "consistent" : "OVERLAP BUG");
}

void print_report() {
  std::printf("\nFigure 2: example overlap scenarios (3 iterations, legend "
              "R=input W=output C=compute)\n\n");
  // Balanced-ish workload, computation 2x communication.
  const auto comp_bound = workload(3, 30000, 30000, 12000);
  show("Single buffered", comp_bound, rcsim::Buffering::kSingle);
  show("Double buffered, computation bound", comp_bound,
       rcsim::Buffering::kDouble);
  const auto comm_bound = workload(3, 90000, 90000, 4000);
  show("Double buffered, communication bound", comm_bound,
       rcsim::Buffering::kDouble);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_report();
  return 0;
}
