// Reproduces the paper's §4.2 alpha-derivation workflow: microbenchmark
// transfer sweeps on both simulated platforms, tabulating alpha(size,
// direction) against the documented maximum, and the probe-size derivation
// of Table 2's alpha_write = 0.37 / alpha_read = 0.16 at 2 KB.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "rcsim/microbench.hpp"
#include "rcsim/platform.hpp"

namespace {

using namespace rat;

void BM_Microbench_SingleMeasurement(benchmark::State& state) {
  const auto link = rcsim::nallatech_pcix_link();
  rcsim::Microbench mb(link);
  for (auto _ : state) {
    auto s = mb.measure(2048, rcsim::Direction::kHostToFpga);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Microbench_SingleMeasurement);

void BM_Microbench_DefaultSweep(benchmark::State& state) {
  const auto link = rcsim::nallatech_pcix_link();
  rcsim::Microbench mb(link);
  for (auto _ : state) {
    auto v = mb.sweep_default();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Microbench_DefaultSweep);

void print_report() {
  for (const auto& platform :
       {rcsim::nallatech_h101(), rcsim::xd1000()}) {
    rcsim::Microbench mb(platform.link);
    std::printf("\n==== alpha sweep: %s (documented %.0f MB/s) ====\n%s",
                platform.link.name().c_str(),
                platform.link.documented_bw() / 1e6,
                rcsim::Microbench::to_table(mb.sweep_default())
                    .to_ascii()
                    .c_str());
  }
  rcsim::Microbench mb(rcsim::nallatech_pcix_link());
  const auto a = mb.derive_alphas(2048);
  std::printf(
      "\nTable 2 derivation (probe at the 1-D PDF's 2 KB block size):\n"
      "  alpha_write = %.2f (paper: 0.37)\n"
      "  alpha_read  = %.2f (paper: 0.16)\n"
      "The tabulated alphas can be reused for future RAT analyses on this\n"
      "platform, as the paper prescribes.\n",
      a.alpha_write, a.alpha_read);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_report();
  return 0;
}
