// Reproduces paper Tables 4, 7 and 10: a-priori resource utilization of
// the three case-study designs on their target devices, via the vendor
// DSP/BRAM cost models. Benchmarks time the resource-lowering pass itself
// (it sits inside the iterative Fig. 1 loop, so it should be cheap).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/md.hpp"
#include "apps/pdf1d.hpp"
#include "apps/pdf2d.hpp"
#include "core/resources.hpp"
#include "rcsim/device.hpp"

namespace {

using namespace rat;

void BM_ResourceTest_Pdf1d(benchmark::State& state) {
  const auto items = apps::Pdf1dDesign().resource_items();
  const auto device = rcsim::virtex4_lx100();
  for (auto _ : state) {
    auto r = core::run_resource_test(items, device);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ResourceTest_Pdf1d);

void BM_ResourceTest_Md(benchmark::State& state) {
  const auto items = apps::MdDesign().resource_items();
  const auto device = rcsim::stratix2_ep2s180();
  for (auto _ : state) {
    auto r = core::run_resource_test(items, device);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ResourceTest_Md);

void print_one(const char* title, const std::vector<core::ResourceItem>& items,
               const rcsim::Device& device) {
  const auto r = core::run_resource_test(items, device);
  std::printf("==== %s (%s) ====\n%s", title, device.name.c_str(),
              r.to_table(device).to_ascii().c_str());
  std::printf("feasible: %s, binding resource: %s\n\n",
              r.feasible ? "yes" : "NO",
              r.utilization.binding_resource().c_str());
}

void print_report() {
  std::printf("\n");
  print_one("Table 4: 1-D PDF resource usage",
            apps::Pdf1dDesign().resource_items(), rcsim::virtex4_lx100());
  print_one("Table 7: 2-D PDF resource usage",
            apps::Pdf2dDesign().resource_items(), rcsim::virtex4_lx100());
  print_one("Table 10: MD resource usage",
            apps::MdDesign().resource_items(), rcsim::stratix2_ep2s180());
  std::printf(
      "Paper shape: PDF designs leave most of the LX100 free (headroom for\n"
      "more parallel kernels); the MD design consumes a large share of the\n"
      "EP2S180's DSPs and combinatorial logic.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_report();
  return 0;
}
