// Extension case studies: the paper's other two "element" domains (§3.1 —
// "a value in an array to be sorted ... or a single character in a
// string-matching algorithm") run through the complete RAT flow: measured
// tsoft, derived worksheet, throughput prediction, simulated platform
// measurement and validation. Demonstrates the methodology's generality
// beyond the paper's own three case studies.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "apps/convolution.hpp"
#include "apps/hw_run.hpp"
#include "util/format.hpp"
#include "apps/sorting.hpp"
#include "apps/strmatch.hpp"
#include "core/streaming.hpp"
#include "core/units.hpp"
#include "core/validation.hpp"
#include "core/worksheet.hpp"
#include "rcsim/microbench.hpp"
#include "rcsim/platform.hpp"

namespace {

using namespace rat;

apps::StrMatchConfig strmatch_cfg() {
  apps::StrMatchConfig c;
  c.patterns = {"reconfig", "fpga", "amenability", "throughput"};
  c.chunk = 65536;
  return c;
}

apps::SortConfig sort_cfg() {
  apps::SortConfig c;
  c.block = 1024;
  c.comparators = 64;
  return c;
}

void BM_StrMatch_ShiftOr(benchmark::State& state) {
  const auto cfg = strmatch_cfg();
  static const std::string text = apps::random_text(1 << 20, cfg, 1e-4, 42);
  for (auto _ : state) {
    auto counts = apps::count_matches_shift_or(text, cfg);
    benchmark::DoNotOptimize(counts);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_StrMatch_ShiftOr);

void BM_StrMatch_SystolicModel(benchmark::State& state) {
  const auto cfg = strmatch_cfg();
  const apps::StrMatchDesign design(cfg);
  static const std::string text = apps::random_text(1 << 18, cfg, 1e-4, 43);
  for (auto _ : state) {
    auto counts = design.count_matches(text);
    benchmark::DoNotOptimize(counts);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_StrMatch_SystolicModel);

void BM_StrMatch_AhoCorasick(benchmark::State& state) {
  const auto cfg = strmatch_cfg();
  const apps::AhoCorasick ac(cfg);
  static const std::string text = apps::random_text(1 << 20, cfg, 1e-4, 42);
  for (auto _ : state) {
    auto counts = ac.count_matches(text);
    benchmark::DoNotOptimize(counts);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_StrMatch_AhoCorasick);

void BM_Sort_HybridVsStd(benchmark::State& state) {
  static const auto keys = apps::random_keys(1 << 18, 44);
  const auto cfg = sort_cfg();
  for (auto _ : state) {
    auto sorted = apps::hybrid_sort(keys, cfg);
    benchmark::DoNotOptimize(sorted);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_Sort_HybridVsStd);

template <typename F>
double time_once(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void report_strmatch() {
  const auto cfg = strmatch_cfg();
  const apps::StrMatchDesign design(cfg);
  const std::size_t total_chars = 64u << 20;  // 64 MB of text
  const std::size_t iters = total_chars / cfg.chunk;

  // tsoft: shift-or over a representative slice, scaled to the full text.
  const std::string slice = apps::random_text(4u << 20, cfg, 1e-4, 45);
  const double t_slice = time_once([&] {
    auto counts = apps::count_matches_shift_or(slice, cfg);
    benchmark::DoNotOptimize(counts);
  });
  const double tsoft =
      t_slice * static_cast<double>(total_chars) /
      static_cast<double>(slice.size());

  const auto platform = rcsim::nallatech_h101();
  rcsim::Microbench mb(platform.link);
  const auto alphas = mb.derive_alphas(cfg.chunk);
  const auto in = design.rat_inputs(
      tsoft, iters,
      core::CommunicationParams{platform.link.documented_bw(),
                                alphas.alpha_write, alphas.alpha_read});

  rcsim::Workload w;
  w.n_iterations = iters;
  w.io = [&](std::size_t) { return design.io(); };
  w.cycles = [&](std::size_t) { return design.cycles_per_iteration(); };
  const auto run = apps::simulate_on_platform(
      w, platform, core::mhz(150), rcsim::Buffering::kDouble, tsoft);

  std::printf("==== String matching, %zu patterns, %s of text ====\n\n",
              cfg.patterns.size(),
              util::bytes(static_cast<double>(total_chars)).c_str());
  std::printf("%s\n",
              core::render_worksheet(in, {run.measured},
                                     core::WorksheetMode::kDoubleBuffered)
                  .c_str());
  const auto stream = core::predict_streaming(in, core::mhz(150));
  std::printf("streaming: %.0f Mchar/s sustained (bottleneck: %s) — a "
              "systolic matcher is I/O-limited,\nso RAT flags the modest "
              "speedup before any HDL is written.\n\n",
              stream.sustained_rate / 1e6,
              stream.bottleneck == core::StreamBottleneck::kInput
                  ? "input channel"
                  : "compute");
}

void report_sorting() {
  const auto cfg = sort_cfg();
  const apps::SortDesign design(cfg);
  const std::size_t total_keys = 16u << 20;
  const std::size_t iters = total_keys / cfg.block;

  const auto keys = apps::random_keys(1u << 20, 46);
  const double t_slice = time_once([&] {
    auto data = keys;
    apps::merge_sort(data);
    benchmark::DoNotOptimize(data);
  });
  // n log n scaling from the slice to the full dataset.
  const double scale =
      (static_cast<double>(total_keys) * std::log2(total_keys)) /
      (static_cast<double>(keys.size()) * std::log2(keys.size()));
  const double tsoft = t_slice * scale;

  const auto platform = rcsim::nallatech_h101();
  rcsim::Microbench mb(platform.link);
  const auto alphas = mb.derive_alphas(cfg.block * 4);
  const auto in = design.rat_inputs(
      tsoft, iters,
      core::CommunicationParams{platform.link.documented_bw(),
                                alphas.alpha_write, alphas.alpha_read});

  rcsim::Workload w;
  w.n_iterations = iters;
  w.io = [&](std::size_t) { return design.io(); };
  w.cycles = [&](std::size_t) { return design.cycles_per_iteration(); };
  const auto run = apps::simulate_on_platform(
      w, platform, core::mhz(150), rcsim::Buffering::kDouble, tsoft);

  std::printf("==== Block sorting, %zu keys in %zu-element blocks ====\n\n",
              total_keys, cfg.block);
  std::printf("%s\n",
              core::render_worksheet(in, {run.measured},
                                     core::WorksheetMode::kDoubleBuffered)
                  .c_str());
  std::printf("note: the worksheet covers the FPGA block-sort phase; the "
              "host-side merge\n(done while the FPGA streams the next "
              "blocks) is the composition model's job.\n");
}

void BM_Conv_Software5x5(benchmark::State& state) {
  apps::ConvConfig cfg;
  cfg.width = 256;
  cfg.height = 256;
  static const auto img = apps::synthetic_frame(cfg, 47);
  static const auto kernel = apps::gaussian_kernel(5);
  for (auto _ : state) {
    auto out = apps::convolve2d(img, kernel, cfg);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cfg.pixels()));
}
BENCHMARK(BM_Conv_Software5x5);

void report_convolution() {
  apps::ConvConfig cfg;  // 1024x1024, 5x5
  const apps::ConvDesign design(cfg);
  const std::size_t frames = 30;

  // tsoft: one frame measured directly, scaled to the batch.
  const auto img = apps::synthetic_frame(cfg, 48);
  const auto kernel = apps::gaussian_kernel(cfg.kernel_size);
  const double t_frame = time_once([&] {
    auto out = apps::convolve2d(img, kernel, cfg);
    benchmark::DoNotOptimize(out);
  });
  const double tsoft = t_frame * static_cast<double>(frames);

  const auto platform = rcsim::nallatech_h101();
  rcsim::Microbench mb(platform.link);
  const auto alphas = mb.derive_alphas(static_cast<std::size_t>(
      static_cast<double>(cfg.pixels()) * cfg.bytes_per_pixel));
  const auto in = design.rat_inputs(
      tsoft, frames,
      core::CommunicationParams{platform.link.documented_bw(),
                                alphas.alpha_write, alphas.alpha_read});

  rcsim::Workload w;
  w.n_iterations = frames;
  w.io = [&](std::size_t) { return design.io(); };
  w.cycles = [&](std::size_t) { return design.cycles_per_iteration(); };
  const auto run = apps::simulate_on_platform(
      w, platform, core::mhz(150), rcsim::Buffering::kDouble, tsoft);

  std::printf("==== 2-D convolution, %zu frames of %zux%zu, %zux%zu window "
              "====\n\n",
              frames, cfg.width, cfg.height, cfg.kernel_size,
              cfg.kernel_size);
  std::printf("%s\n",
              core::render_worksheet(in, {run.measured},
                                     core::WorksheetMode::kDoubleBuffered)
                  .c_str());
  std::printf("The fully deterministic 1-pixel/cycle window makes this the\n"
              "best-predicted worksheet of all the case studies — the\n"
              "calibration point the methodology is most trustworthy at.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n");
  report_strmatch();
  report_sorting();
  report_convolution();
  return 0;
}
