// Serial-vs-N-thread throughput of the parallel evaluation engine on the
// two heaviest explorer loops: a 10,000-point design-space sweep (every
// candidate runs the throughput + precision tests) and a 100,000-sample
// Monte-Carlo band. Run with --benchmark_format=json (or --benchmark_out)
// for the machine-readable trajectory; the printed report shows the
// speedup-vs-threads curve directly. Results are thread-count-invariant by
// construction (see docs/PARALLELISM.md), so every configuration computes
// the identical outcome — only the wall clock should move.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/batch.hpp"
#include "core/designspace.hpp"
#include "core/montecarlo.hpp"
#include "core/throughput.hpp"
#include "core/units.hpp"
#include "fixedpoint/fixed.hpp"
#include "util/rng.hpp"

namespace {

using namespace rat;

// ---- 10k-point design space ----------------------------------------------
// 25 parallelism values x 20 clocks x 20 widths = 10,000 points. The goal
// is reachable at the throughput gate but the precision tolerance is not,
// so every candidate runs its full format sweep before being rejected:
// both the serial and parallel runs evaluate the entire space.

core::DesignAxes big_axes() {
  core::DesignAxes axes;
  axes.parallelism.clear();
  for (std::size_t p = 1; p <= 25; ++p) axes.parallelism.push_back(p);
  axes.fclock_hz.clear();
  for (int i = 0; i < 20; ++i) axes.fclock_hz.push_back(core::mhz(75 + 5 * i));
  axes.format_bits.clear();
  for (int b = 12; b < 32; ++b) axes.format_bits.push_back(b);
  return axes;
}

/// Shared read-only precision dataset (quantization kernel is thread-safe).
const std::vector<double>& reference_data() {
  static const std::vector<double> data = [] {
    util::Rng rng(404);
    std::vector<double> d(256);
    for (auto& x : d) x = rng.uniform(0.0, 0.95);
    return d;
  }();
  return data;
}

core::CandidateFactory heavy_factory() {
  return [](const core::DesignPoint& p)
             -> std::optional<core::DesignCandidate> {
    core::DesignCandidate c;
    c.inputs = core::pdf1d_inputs();
    c.inputs.name = p.label();
    c.inputs.comp.throughput_ops_per_cycle =
        2.5 * static_cast<double>(p.parallelism);
    c.precision_reference = reference_data();
    c.precision_kernel = [](fx::Format fmt) {
      const auto& ref = reference_data();
      std::vector<double> out;
      out.reserve(ref.size());
      for (double x : ref)
        out.push_back(fx::Fixed::from_double(x, fmt).to_double());
      return out;
    };
    c.resources = {core::ResourceItem{"units", 1, p.format_bits, 0, 400,
                                      static_cast<int>(p.parallelism)}};
    return c;
  };
}

core::Requirements exhaustive_requirements() {
  core::Requirements req;
  req.min_speedup = 0.001;  // throughput gate always passes...
  // ...and the precision tolerance never does: every point runs the full
  // 12-20 bit sweep, so the whole 10k-point space is evaluated. The sweep
  // stays serial per candidate (kernel_thread_safe=false) so the measured
  // scaling isolates the candidate-level parallelism.
  req.precision = core::PrecisionRequirements{1e-9, 12, 20, 0};
  return req;
}

core::DesignSpaceResult run_design_space(std::size_t threads) {
  return core::explore_design_space(big_axes(), heavy_factory(),
                                    exhaustive_requirements(),
                                    rcsim::virtex4_lx100(), threads);
}

void BM_DesignSpace10k(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::size_t points = 0;
  for (auto _ : state) {
    const auto r = run_design_space(threads);
    points = r.points_total;
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["points"] = static_cast<double>(points);
  state.SetItemsProcessed(static_cast<std::int64_t>(points) *
                          state.iterations());
}
BENCHMARK(BM_DesignSpace10k)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- 100k-sample Monte-Carlo ---------------------------------------------

core::MonteCarloResult run_mc(std::size_t threads) {
  const core::RatInputs in = core::md_inputs();
  const auto model = core::UncertaintyModel::typical(in);
  return core::run_monte_carlo(in, model, 100'000, 10.0, 1234, threads);
}

void BM_MonteCarlo100k(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto r = run_mc(threads);
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.SetItemsProcessed(100'000 * state.iterations());
}
BENCHMARK(BM_MonteCarlo100k)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- raw-kernel points/sec -------------------------------------------------
// Single-core Eqs. 1-11 evaluation rate on a varied 131k-point workload:
// the per-point scalar predict() loop every explorer ran before the SoA
// batch kernel existed, vs the batch kernel with scalar lanes (layout +
// hoisted validation only) and with native SIMD lanes. This is the number
// the batch rework is accountable to — the acceptance bar is >= 10x over
// the scalar path on one core.

constexpr std::size_t kKernelPoints = 1 << 17;  // 131,072

double kernel_scalar_pass(core::RatInputs& scratch) {
  double acc = 0.0;
  for (std::size_t i = 0; i < kKernelPoints; ++i) {
    scratch.comp.throughput_ops_per_cycle =
        2.5 * static_cast<double>(1 + i % 25);
    acc += core::predict(scratch, core::mhz(75 + 5 * static_cast<double>(
                                                         i % 20)))
               .speedup_sb;
  }
  return acc;
}

double kernel_batch_pass(core::RatInputs& scratch,
                         core::ThroughputBatch& batch,
                         core::BatchKernel kernel) {
  // Fill/evaluate/consume in 1024-point chunks — the shape every rewired
  // consumer has (Monte-Carlo chunks, sweep chunks, methodology windows).
  // Chunks this size keep all 23 SoA columns resident in L2, so the
  // kernel streams cache-hot data instead of round-tripping DRAM.
  constexpr std::size_t kChunk = 1024;
  scratch.validate();
  double acc = 0.0;
  for (std::size_t lo = 0; lo < kKernelPoints; lo += kChunk) {
    const std::size_t count = std::min(kChunk, kKernelPoints - lo);
    batch.clear();
    batch.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      const std::size_t i = lo + k;
      scratch.comp.throughput_ops_per_cycle =
          2.5 * static_cast<double>(1 + i % 25);
      batch.push_back_unchecked(
          scratch, core::mhz(75 + 5 * static_cast<double>(i % 20)));
    }
    core::predict_batch(batch, kernel);
    for (double s : batch.out.speedup_sb) acc += s;
  }
  return acc;
}

// ---- speedup report --------------------------------------------------------

template <typename Fn>
double wall_seconds(const Fn& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-passes points/sec for one kernel variant (>= 0.2s wall total).
template <typename Fn>
double kernel_points_per_sec(const Fn& fn) {
  double best = 0.0;
  double total = 0.0;
  while (total < 0.2) {
    double acc = 0.0;
    const double s = wall_seconds([&] { acc = fn(); });
    benchmark::DoNotOptimize(acc);
    total += s;
    best = std::max(best, static_cast<double>(kKernelPoints) / s);
  }
  return best;
}

void print_report(const std::string& json_path) {
  bench::BenchJson json("bench_parallel_scaling", json_path);

  std::printf("\nRaw Eqs. 1-11 kernel, one core, %zu varied points "
              "(bit-identical outputs):\n\n",
              kKernelPoints);
  core::RatInputs scratch = core::pdf1d_inputs();
  core::ThroughputBatch batch;
  const double k_scalar =
      kernel_points_per_sec([&] { return kernel_scalar_pass(scratch); });
  const double k_batch = kernel_points_per_sec([&] {
    return kernel_batch_pass(scratch, batch, core::BatchKernel::kScalar);
  });
  const double k_simd = kernel_points_per_sec([&] {
    return kernel_batch_pass(scratch, batch, core::BatchKernel::kSimd);
  });
  std::printf("%-34s %14.3e pts/s %8.2fx\n", "per-point predict()", k_scalar,
              1.0);
  std::printf("%-34s %14.3e pts/s %8.2fx\n", "batch, scalar lanes", k_batch,
              k_batch / k_scalar);
  std::printf("%-34s %14.3e pts/s %8.2fx   (%s)\n", "batch, SIMD lanes",
              k_simd, k_simd / k_scalar, core::simd_backend());
  json.add("kernel.scalar_points_per_sec", k_scalar);
  json.add("kernel.batch_scalar_points_per_sec", k_batch);
  json.add("kernel.batch_simd_points_per_sec", k_simd);
  json.add("kernel.batch_vs_scalar_speedup", k_simd / k_scalar);
  std::printf("\nParallel scaling: serial vs N threads (identical results "
              "at every thread count)\n\n");
  std::printf("%-28s %8s %10s %9s\n", "workload", "threads", "wall [s]",
              "speedup");
  const double ds_serial = wall_seconds([] { run_design_space(1); });
  std::printf("%-28s %8d %10.3f %8.2fx\n", "design space, 10k points", 1,
              ds_serial, 1.0);
  json.add("designspace.points_per_sec_1t", 10'000.0 / ds_serial);
  for (std::size_t t : {2, 4, 8}) {
    const double s = wall_seconds([t] { run_design_space(t); });
    std::printf("%-28s %8zu %10.3f %8.2fx\n", "design space, 10k points", t,
                s, ds_serial / s);
    json.add("designspace.speedup_" + std::to_string(t) + "t",
             ds_serial / s);
  }
  const double mc_serial = wall_seconds([] { run_mc(1); });
  std::printf("%-28s %8d %10.3f %8.2fx\n", "Monte-Carlo, 100k samples", 1,
              mc_serial, 1.0);
  json.add("montecarlo.samples_per_sec_1t", 100'000.0 / mc_serial);
  for (std::size_t t : {2, 4, 8}) {
    const double s = wall_seconds([t] { run_mc(t); });
    std::printf("%-28s %8zu %10.3f %8.2fx\n", "Monte-Carlo, 100k samples", t,
                s, mc_serial / s);
    json.add("montecarlo.speedup_" + std::to_string(t) + "t",
             mc_serial / s);
  }
  json.write();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      rat::bench::BenchJson::extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_report(json_path);
  return 0;
}
