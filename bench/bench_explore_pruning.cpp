// Branch-and-bound exploration against the exhaustive sweep on a grid
// two orders of magnitude larger than the paper's: 64 pipeline counts x
// 32 clock estimates x 8 fixed-point widths = 16,384 permutations. The
// report verifies the pruned explorer returns the byte-identical winner
// and trace, counts how many full gate-pipeline evaluations the corner
// bounds eliminate (the headline: >= 10x fewer), and replays the whole
// campaign from a warm plan cache (>= 90% of the remaining evaluations
// eliminated). scripts/check.sh merges the explore.* metrics into
// BENCH_RAT.json and gates on them.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "core/designspace.hpp"
#include "core/parameters.hpp"
#include "core/units.hpp"
#include "explore/explorer.hpp"

namespace {

using namespace rat;

core::DesignAxes bench_axes() {
  core::DesignAxes axes;
  axes.parallelism.clear();
  axes.fclock_hz.clear();
  axes.format_bits.clear();
  for (int p = 1; p <= 64; ++p) axes.parallelism.push_back(p);
  for (int i = 0; i < 32; ++i)
    axes.fclock_hz.push_back(core::mhz(80.0 + 5.0 * i));
  for (int b = 10; b <= 24; b += 2) axes.format_bits.push_back(b);
  return axes;
}

// Monotone along every axis, the shape Eqs. 5-6 give the case studies:
// speedup rises with parallelism and clock, falls with format width.
core::CandidateFactory bench_factory() {
  return [base = core::pdf1d_inputs()](const core::DesignPoint& p)
             -> std::optional<core::DesignCandidate> {
    core::DesignCandidate c;
    c.inputs = base;
    c.inputs.name = p.label();
    c.inputs.comp.throughput_ops_per_cycle =
        0.35 * static_cast<double>(p.parallelism);
    c.inputs.dataset.bytes_per_element =
        static_cast<double>((p.format_bits + 7) / 8);
    c.resources = {core::ResourceItem{"units", 1, p.format_bits, 0, 400,
                                      static_cast<int>(p.parallelism)}};
    return c;
  };
}

core::Requirements bench_requirements() {
  core::Requirements req;
  req.min_speedup = 8.0;
  return req;
}

std::string render(const core::DesignSpaceResult& r) {
  std::string out = r.outcome.render_trace();
  out += r.outcome.proceed ? "|proceed" : "|exhausted";
  for (const auto& p : r.outcome.predictions)
    out.append(reinterpret_cast<const char*>(&p), sizeof p);
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void BM_Explore_PrunedSearch(benchmark::State& state) {
  const auto axes = bench_axes();
  const auto factory = bench_factory();
  const auto req = bench_requirements();
  const auto device = rcsim::virtex4_lx100();
  explore::ExploreOptions opt;
  opt.policy.full_trace = false;  // the wall-clock mode
  for (auto _ : state) {
    auto r = explore::explore_design_space_pruned(axes, factory, req, device,
                                                  opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Explore_PrunedSearch)->Unit(benchmark::kMillisecond);

void print_report(const std::string& json_path) {
  bench::BenchJson json("bench_explore_pruning", json_path);
  const auto axes = bench_axes();
  const auto factory = bench_factory();
  const auto req = bench_requirements();
  const auto device = rcsim::virtex4_lx100();

  auto t0 = std::chrono::steady_clock::now();
  const auto exhaustive =
      core::explore_design_space(axes, factory, req, device);
  const double exhaustive_sec = seconds_since(t0);
  // The exhaustive scan runs the full gate pipeline on every non-skipped
  // point it reaches; predictions holds exactly one entry per such run
  // (the trace can carry several gate lines for one candidate).
  const double exhaustive_evals =
      static_cast<double>(exhaustive.outcome.predictions.size());

  explore::ExploreOptions full;  // identity mode: byte-identical trace
  t0 = std::chrono::steady_clock::now();
  const auto pruned =
      explore::explore_design_space_pruned(axes, factory, req, device, full);
  const double pruned_sec = seconds_since(t0);
  const bool identical = render(pruned.design) == render(exhaustive) &&
                         pruned.winner_index == exhaustive.outcome.accepted_index;

  explore::ExploreOptions elide;
  elide.policy.full_trace = false;
  t0 = std::chrono::steady_clock::now();
  const auto sparse =
      explore::explore_design_space_pruned(axes, factory, req, device, elide);
  const double elide_sec = seconds_since(t0);

  // Cold then warm through a plan cache: the warm campaign should replay
  // every previously evaluated point instead of recomputing it.
  const auto cache_dir =
      std::filesystem::temp_directory_path() / "rat_bench_explore_plan_cache";
  std::filesystem::remove_all(cache_dir);
  explore::ExploreStats cold, warm;
  {
    explore::PlanCache cache(cache_dir);
    explore::ExploreOptions opt;
    opt.plan_cache = &cache;
    cold = explore::explore_design_space_pruned(axes, factory, req, device, opt)
               .stats;
  }
  {
    explore::PlanCache cache(cache_dir);  // fresh handle, same directory
    explore::ExploreOptions opt;
    opt.plan_cache = &cache;
    warm = explore::explore_design_space_pruned(axes, factory, req, device, opt)
               .stats;
  }
  std::filesystem::remove_all(cache_dir);

  const auto& st = pruned.stats;
  const double pruned_evals = static_cast<double>(st.points_evaluated);
  const double reduction = exhaustive_evals / std::max(1.0, pruned_evals);
  const double cold_evals = static_cast<double>(cold.points_evaluated);
  const double warm_evals = static_cast<double>(warm.points_evaluated);
  const double warm_elimination =
      cold_evals > 0.0 ? (cold_evals - warm_evals) / cold_evals : 1.0;

  std::printf("\n==== pruned vs exhaustive on %zu permutations ====\n",
              st.points_total);
  std::printf("winner: %s (index %zu)\n",
              pruned.design.outcome.proceed
                  ? pruned.design.outcome.trace.back().candidate_name.c_str()
                  : "<none>",
              pruned.winner_index ? *pruned.winner_index : 0);
  std::printf("full evaluations: exhaustive %.0f, pruned %.0f (%.1fx fewer; "
              "%zu corner model runs, %zu points bounded)\n",
              exhaustive_evals, pruned_evals, reduction,
              st.corner_evaluations, st.points_bounded);
  std::printf("identical result: %s\n", identical ? "yes" : "NO — BUG");
  std::printf("wall clock: exhaustive %.3fs, pruned full-trace %.3fs, "
              "pruned elide %.3fs\n", exhaustive_sec, pruned_sec, elide_sec);
  std::printf("plan cache: cold %.0f evaluations, warm %.0f "
              "(%.1f%% eliminated, %zu hits)\n",
              cold_evals, warm_evals, 100.0 * warm_elimination,
              warm.cache_hits);
  std::printf("pareto front: %zu points\n", pruned.front.size());

  json.add("explore.points_total", static_cast<double>(st.points_total));
  json.add("explore.exact_evals_exhaustive", exhaustive_evals);
  json.add("explore.exact_evals_pruned", pruned_evals);
  json.add("explore.evaluation_reduction", reduction);
  json.add("explore.corner_evaluations",
           static_cast<double>(st.corner_evaluations));
  json.add("explore.points_bounded", static_cast<double>(st.points_bounded));
  json.add("explore.regions_pruned_bound",
           static_cast<double>(st.regions_pruned_bound));
  json.add("explore.identical", identical ? 1.0 : 0.0);
  json.add("explore.warm_evaluations", warm_evals);
  json.add("explore.warm_elimination_ratio", warm_elimination);
  json.add("explore.pareto_points", static_cast<double>(pruned.front.size()));
  json.add("explore.exhaustive_sec", exhaustive_sec);
  json.add("explore.pruned_elide_sec", elide_sec);
  json.write();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      rat::bench::BenchJson::extract_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_report(json_path);
  return 0;
}
