// Reproduces paper Figure 1: the iterative RAT methodology flow, traced on
// the real case-study designs. Shows a redesign loop (under-parallelized
// candidate rejected on throughput, final design accepted) and a
// resource-gated rejection.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/pdf1d.hpp"
#include "apps/workload.hpp"
#include "core/methodology.hpp"
#include "core/units.hpp"

namespace {

using namespace rat;

core::DesignCandidate pdf1d_candidate(double ops_per_cycle) {
  const apps::Pdf1dDesign design;
  core::DesignCandidate c;
  c.inputs = design.rat_inputs();
  c.inputs.comp.throughput_ops_per_cycle = ops_per_cycle;
  c.decision_clock_hz = core::mhz(100);
  static const auto samples =
      apps::gaussian_mixture_1d(4096, apps::default_mixture_1d(), 2010);
  static const auto reference =
      apps::estimate_pdf1d_quadratic(samples, design.config());
  c.precision_reference = reference;
  c.precision_kernel = [design](fx::Format fmt) {
    return design.estimate_with_format(samples, fmt);
  };
  c.resources = design.resource_items();
  return c;
}

void BM_Methodology_FullRun(benchmark::State& state) {
  core::Requirements req;
  req.min_speedup = 5.0;
  req.precision = core::PrecisionRequirements{2.0, 12, 20, 0};
  const std::vector<core::DesignCandidate> candidates = {
      pdf1d_candidate(20.0)};
  const auto device = rcsim::virtex4_lx100();
  for (auto _ : state) {
    auto out = core::run_methodology(candidates, req, device);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Methodology_FullRun);

void print_report() {
  std::printf("\nFigure 1: RAT methodology trace, 1-D PDF design space\n\n");

  core::Requirements req;
  req.min_speedup = 5.0;
  req.precision = core::PrecisionRequirements{2.0, 12, 20, 0};

  // Candidate 0: single-pipeline sketch (3 ops/cycle) — fails throughput.
  // Candidate 1: the Fig. 3 eight-pipeline design — passes all tests.
  auto weak = pdf1d_candidate(3.0);
  weak.inputs.name = "1-D PDF, 1 pipeline sketch";
  auto final_design = pdf1d_candidate(20.0);
  const auto out = core::run_methodology({weak, final_design}, req,
                                         rcsim::virtex4_lx100());
  std::printf("%s\n", out.render_trace().c_str());
  std::printf("outcome: %s\n\n", out.proceed
                                     ? "PROCEED — build in HDL, verify on HW"
                                     : "exhausted without solution");

  // The same design against an over-ambitious 50x goal (the paper's
  // "middle management" bar): every permutation is rejected.
  core::Requirements ambitious;
  ambitious.min_speedup = 50.0;
  const auto rejected = core::run_methodology(
      {pdf1d_candidate(20.0)}, ambitious, rcsim::virtex4_lx100());
  std::printf("50x goal trace:\n%s", rejected.render_trace().c_str());
  std::printf("outcome: %s\n",
              rejected.proceed ? "PROCEED" : "exhausted without solution");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_report();
  return 0;
}
