// Power, energy, development-time economics, and the design-review ranking
// table. Extensions grounded in the paper's introduction: the "reduced
// power usage" motivation of the embedded community, and the "break-even
// point (time of development versus time saved at execution)" framing of
// the go/no-go decision. Also ranks the quadratic-vs-Gaussian 1-D PDF
// design permutations side by side.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/md.hpp"
#include "apps/pdf1d.hpp"
#include "apps/pdf1d_gaussian.hpp"
#include "apps/pdf2d.hpp"
#include "core/devtime.hpp"
#include "core/power.hpp"
#include "core/ranking.hpp"
#include "core/units.hpp"
#include "util/format.hpp"

namespace {

using namespace rat;

void BM_RankDesigns(benchmark::State& state) {
  std::vector<core::RankedCandidate> candidates;
  core::RankedCandidate c;
  c.inputs = core::pdf1d_inputs();
  c.fclock_hz = core::mhz(150);
  c.resources = apps::Pdf1dDesign().resource_items();
  c.device = rcsim::virtex4_lx100();
  candidates.push_back(c);
  for (auto _ : state) {
    auto r = core::rank_designs(candidates);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RankDesigns);

void print_power() {
  std::printf("==== Power & energy (paper intro: \"savings could come in "
              "the form of reduced power usage\") ====\n\n");
  util::Table t({"case", "FPGA W", "FPGA-system J", "host J",
                 "energy ratio", "saves energy?"});
  struct Row {
    const char* name;
    core::RatInputs in;
    std::vector<core::ResourceItem> items;
    rcsim::Device device;
    double clock;
  };
  const Row rows[] = {
      {"1-D PDF", core::pdf1d_inputs(), apps::Pdf1dDesign().resource_items(),
       rcsim::virtex4_lx100(), core::mhz(150)},
      {"2-D PDF", core::pdf2d_inputs(), apps::Pdf2dDesign().resource_items(),
       rcsim::virtex4_lx100(), core::mhz(150)},
      {"MD", core::md_inputs(), apps::MdDesign().resource_items(),
       rcsim::stratix2_ep2s180(), core::mhz(100)},
  };
  for (const auto& row : rows) {
    const auto usage =
        core::run_resource_test(row.items, row.device).usage;
    const auto pred = core::predict(row.in, row.clock);
    const auto e =
        core::estimate_power(usage, pred, row.in.software.tsoft_sec);
    t.add_row({row.name, util::fixed(e.fpga_watts, 1),
               util::fixed(e.fpga_system_energy_joules, 1),
               util::fixed(e.host_energy_joules, 1),
               util::fixed(e.energy_ratio, 1) + "x",
               e.saves_energy() ? "yes" : "NO"});
  }
  std::printf("%s\n", t.to_ascii().c_str());
}

void print_economics() {
  std::printf("==== Development-time break-even (paper intro: \"a more "
              "conservative factor of ten or less\") ====\n\n");
  const auto pred = core::predict(core::pdf2d_inputs(), core::mhz(150));
  util::Table t({"dev hours", "runs/month", "break-even (months)",
                 "net hours @24mo", "worth it?"});
  for (double dev : {40.0, 200.0, 1000.0}) {
    for (double runs : {50.0, 500.0}) {
      core::BreakEvenInputs e;
      e.development_hours = dev;
      e.runs_per_month = runs;
      const auto r = core::break_even(pred, 158.8, e);
      t.add_row({util::fixed(dev, 0), util::fixed(runs, 0),
                 r.break_even_months
                     ? util::fixed(*r.break_even_months, 1)
                     : std::string("never (in horizon)"),
                 util::fixed(r.net_hours_over_horizon, 0),
                 r.worth_it() ? "yes" : "NO"});
    }
  }
  std::printf("%s", t.to_ascii().c_str());
  const auto req = core::required_speedup(
      158.8, core::BreakEvenInputs{200.0, 100.0, 24.0});
  std::printf("\nrequired speedup for 200 dev-hours at 100 runs/month over "
              "24 months: %s\n\n",
              req ? (util::fixed(*req, 2) + "x").c_str() : "unreachable");
}

void print_ranking() {
  std::printf("==== Design review: all designs side by side ====\n\n");
  std::vector<core::RankedCandidate> candidates;
  {
    core::RankedCandidate c;
    c.label = "1-D PDF, quadratic kernel (shipped)";
    c.inputs = core::pdf1d_inputs();
    c.fclock_hz = core::mhz(150);
    c.resources = apps::Pdf1dDesign().resource_items();
    c.device = rcsim::virtex4_lx100();
    candidates.push_back(c);
  }
  {
    const apps::Pdf1dGaussianDesign g;
    core::RankedCandidate c;
    c.label = "1-D PDF, Gaussian LUT variant";
    c.inputs = g.rat_inputs();
    c.fclock_hz = core::mhz(150);
    c.resources = g.resource_items();
    c.device = rcsim::virtex4_lx100();
    candidates.push_back(c);
  }
  {
    core::RankedCandidate c;
    c.label = "2-D PDF";
    c.inputs = core::pdf2d_inputs();
    c.fclock_hz = core::mhz(150);
    c.resources = apps::Pdf2dDesign().resource_items();
    c.device = rcsim::virtex4_lx100();
    candidates.push_back(c);
  }
  {
    core::RankedCandidate c;
    c.label = "MD, 4-lane array";
    c.inputs = core::md_inputs();
    c.fclock_hz = core::mhz(100);
    c.resources = apps::MdDesign().resource_items();
    c.device = rcsim::stratix2_ep2s180();
    candidates.push_back(c);
  }
  const auto results = core::rank_designs(candidates);
  std::printf("%s\n", core::ranking_table(results).to_ascii().c_str());
  std::printf("The Gaussian variant trades ~60%% of the quadratic design's\n"
              "predicted speedup for kernel fidelity — the quantitative\n"
              "comparison RAT exists to put in front of the designer.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n");
  print_power();
  print_economics();
  print_ranking();
  return 0;
}
