// Regenerate the full analysis-report bundle for every case study: one
// Markdown document plus prediction/validation CSVs per application,
// written to a directory (default ./reports). The archival artifact the
// §4 worksheet workflow produces at the end of an analysis.
//
// Usage: generate_report_bundle [--out=reports]
#include <cstdio>

#include "apps/hw_run.hpp"
#include "apps/md.hpp"
#include "apps/pdf1d.hpp"
#include "apps/pdf2d.hpp"
#include "apps/workload.hpp"
#include "core/report.hpp"
#include "core/units.hpp"
#include "rcsim/platform.hpp"
#include "util/cli.hpp"

namespace {

using namespace rat;

core::Report make_report(const core::RatInputs& inputs,
                         const rcsim::Workload& workload,
                         const rcsim::Platform& platform,
                         double actual_clock_hz,
                         std::vector<core::ResourceItem> items) {
  core::Report r;
  r.inputs = inputs;
  const auto run = apps::simulate_on_platform(
      workload, platform, actual_clock_hz, rcsim::Buffering::kSingle,
      inputs.software.tsoft_sec);
  r.measurements.push_back(run.measured);
  r.finalize();
  r.device = platform.device;
  r.resources = core::run_resource_test(items, platform.device,
                                        platform.practical_fill_limit);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rat;
  const util::Cli cli(argc, argv);
  const std::string out = cli.get_or("out", "reports");

  {
    const apps::Pdf1dDesign d;
    rcsim::Workload w;
    w.n_iterations = 400;
    w.io = [d](std::size_t i) { return d.io(i, 400); };
    w.cycles = [c = d.cycles_per_iteration()](std::size_t) { return c; };
    const auto path = make_report(d.rat_inputs(), w, rcsim::nallatech_h101(),
                                  core::mhz(150), d.resource_items())
                          .write(out, "pdf1d");
    std::printf("wrote %s\n", path.string().c_str());
  }
  {
    const apps::Pdf2dDesign d;
    rcsim::Workload w;
    w.n_iterations = 400;
    w.io = [d](std::size_t i) { return d.io(i, 400); };
    w.cycles = [c = d.cycles_per_iteration()](std::size_t) { return c; };
    const auto path = make_report(d.rat_inputs(), w, rcsim::nallatech_h101(),
                                  core::mhz(150), d.resource_items())
                          .write(out, "pdf2d");
    std::printf("wrote %s\n", path.string().c_str());
  }
  {
    const apps::MdDesign d;
    const auto sys = apps::particle_box(16384, 1.0, 1.0, 123);
    const auto cycles = d.cycles_for(sys);
    rcsim::Workload w;
    w.n_iterations = 1;
    w.io = [d](std::size_t) { return d.io(16384); };
    w.cycles = [cycles](std::size_t) { return cycles; };
    const auto path = make_report(d.rat_inputs(), w, rcsim::xd1000(),
                                  core::mhz(100), d.resource_items())
                          .write(out, "md");
    std::printf("wrote %s\n", path.string().c_str());
  }
  std::printf("report bundle complete in %s/\n", out.c_str());
  return 0;
}
