// Quickstart: run a RAT analysis on your own kernel in ~40 lines.
//
// Scenario: you have a software FIR-like streaming filter and wonder
// whether an FPGA port is worth it. You fill in the Table-1 worksheet
// (dataset / communication / computation / software), call predict_all,
// and read the verdict — all before writing any HDL.
//
// Usage: quickstart [--taps=64] [--tsoft=2.0] [--goal=10]
#include <cstdio>

#include "core/sensitivity.hpp"
#include "core/throughput.hpp"
#include "core/units.hpp"
#include "core/worksheet.hpp"
#include "rcsim/microbench.hpp"
#include "rcsim/platform.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rat;
  const util::Cli cli(argc, argv);
  const double taps = cli.get_double("taps", 64);
  const double tsoft = cli.get_double("tsoft", 2.0);
  const double goal = cli.get_double("goal", 10.0);

  // Target platform: the Nallatech H101 model from the catalog. The alpha
  // parameters come from a microbenchmark at our transfer size — the same
  // workflow the paper prescribes (Sec. 4.2).
  const rcsim::Platform platform = rcsim::nallatech_h101();
  const std::size_t block_elements = 4096;  // samples per FPGA buffer
  rcsim::Microbench mb(platform.link);
  const auto alphas = mb.derive_alphas(block_elements * 4);

  // The worksheet (paper Table 1): one row of honest estimates.
  core::RatInputs in;
  in.name = "streaming FIR filter";
  in.dataset = {block_elements, block_elements, 4.0};
  in.comm = {platform.link.documented_bw(), alphas.alpha_write,
             alphas.alpha_read};
  // taps multiply-accumulates per sample; a modest design sustains one
  // tap-pair per pipeline per cycle with 8 pipelines.
  in.comp = {2.0 * taps, 16.0, platform.candidate_clocks_hz};
  in.software = {tsoft, 256};

  std::printf("%s\n", core::render_worksheet(
                          in, {}, core::WorksheetMode::kDoubleBuffered)
                          .c_str());

  const auto best = core::predict(in, in.comp.fclock_hz.back());
  std::printf("verdict at %.0f MHz, double buffered: %.1fx %s the %.0fx "
              "goal\n",
              core::to_mhz(best.fclock_hz), best.speedup_db,
              best.speedup_db >= goal ? "MEETS" : "misses", goal);
  if (best.speedup_db < goal) {
    const auto need = core::solve_throughput_proc(
        in, best.fclock_hz, goal, core::BufferingMode::kDouble);
    if (need) {
      std::printf("to reach %.0fx you would need %.1f ops/cycle "
                  "(currently budgeting %.1f)\n",
                  goal, *need, in.comp.throughput_ops_per_cycle);
    } else {
      std::printf("the goal is communication-bound: no amount of "
                  "parallelism reaches %.0fx (cap %.1fx)\n",
                  goal,
                  core::speedup_upper_bound(in,
                                            core::BufferingMode::kDouble));
    }
  }
  return 0;
}
