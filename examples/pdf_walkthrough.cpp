// The paper's Section 4 walkthrough, executable end to end:
//
//   1. generate the 204,800-sample dataset
//   2. derive the communication alphas from a bus microbenchmark
//   3. derive Nops/element from instrumented legacy-code analysis
//   4. run the numerical-precision test (pick the fixed-point format)
//   5. run the throughput test at 75/100/150 MHz (Table 3 predicted)
//   6. run the resource test on the Virtex-4 LX100 (Table 4)
//   7. "build" the design and measure it on the simulated platform
//      (Table 3 actual), then validate prediction vs measurement
//
// Usage: pdf_walkthrough [--samples=204800] [--precision_samples=16384]
#include <cstdio>

#include "apps/hw_run.hpp"
#include "apps/pdf1d.hpp"
#include "apps/workload.hpp"
#include "core/precision.hpp"
#include "core/resources.hpp"
#include "core/throughput.hpp"
#include "core/units.hpp"
#include "core/validation.hpp"
#include "core/worksheet.hpp"
#include "rcsim/microbench.hpp"
#include "rcsim/platform.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rat;
  const util::Cli cli(argc, argv);
  const auto n_samples =
      static_cast<std::size_t>(cli.get_int("samples", 204800));
  const auto n_prec =
      static_cast<std::size_t>(cli.get_int("precision_samples", 16384));

  const apps::Pdf1dDesign design;
  const rcsim::Platform platform = rcsim::nallatech_h101();

  std::printf("== Step 1: dataset ==\n");
  const auto samples =
      apps::gaussian_mixture_1d(n_samples, apps::default_mixture_1d(), 4242);
  std::printf("%zu samples, processed in %zu batches of %zu\n\n",
              samples.size(), samples.size() / design.config().batch,
              design.config().batch);

  std::printf("== Step 2: communication microbenchmark ==\n");
  rcsim::Microbench mb(platform.link);
  const auto alphas = mb.derive_alphas(design.config().batch * 4);
  std::printf("alpha_write %.2f, alpha_read %.2f at %zu-byte probes\n\n",
              alphas.alpha_write, alphas.alpha_read,
              design.config().batch * 4);

  std::printf("== Step 3: legacy-code analysis (instrumented) ==\n");
  apps::OpCounter ops;
  const std::span<const double> one_batch(samples.data(),
                                          design.config().batch);
  apps::estimate_pdf1d_quadratic_counted(one_batch, design.config(), ops);
  const double ops_per_element =
      static_cast<double>(ops.total_unit_weight()) /
      static_cast<double>(design.config().batch);
  std::printf("counted %s\n-> %.0f ops/element (Table 2: 768)\n\n",
              ops.to_string().c_str(), ops_per_element);

  std::printf("== Step 4: numerical precision test ==\n");
  const std::span<const double> prec_span(
      samples.data(), std::min(n_prec, samples.size()));
  const auto reference =
      apps::estimate_pdf1d_quadratic(prec_span, design.config());
  core::PrecisionRequirements preq{2.0, 10, 24, 0};
  const auto prec = core::run_precision_test(
      [&](fx::Format fmt) {
        return design.estimate_with_format(prec_span, fmt);
      },
      reference, preq);
  if (prec.satisfied) {
    std::printf("minimal format within 2%%: %s; the design keeps 18-bit for "
                "the single-MAC multiplier (paper Sec. 4.2)\n\n",
                prec.choice->format.to_string().c_str());
  } else {
    std::printf("precision requirement unrealizable — redesign needed\n\n");
  }

  std::printf("== Step 5+7: throughput test and simulated measurement ==\n");
  core::RatInputs in = design.rat_inputs();
  in.comm.alpha_write = alphas.alpha_write;
  in.comm.alpha_read = alphas.alpha_read;
  in.comp.ops_per_element = ops_per_element;

  rcsim::Workload w;
  w.n_iterations = in.software.n_iterations;
  w.io = [&](std::size_t i) { return design.io(i, w.n_iterations); };
  w.cycles = [&](std::size_t) { return design.cycles_per_iteration(); };
  const auto run = apps::simulate_on_platform(
      w, platform, core::mhz(150), rcsim::Buffering::kSingle,
      in.software.tsoft_sec);
  std::printf("%s\n", core::render_worksheet(
                          in, {run.measured},
                          core::WorksheetMode::kSingleBuffered)
                          .c_str());
  const auto rep = core::validate(core::predict(in, core::mhz(150)),
                                  run.measured);
  std::printf("validation:\n%s\n", rep.to_table().to_ascii().c_str());

  std::printf("== Step 6: resource test (Table 4) ==\n");
  const auto device = platform.device;
  const auto rr = core::run_resource_test(design.resource_items(), device,
                                          platform.practical_fill_limit);
  std::printf("%s", rr.to_table(device).to_ascii().c_str());
  std::printf("feasible on %s: %s\n", device.name.c_str(),
              rr.feasible ? "yes" : "NO");

  // Functional sanity: the fixed-point result really approximates the PDF.
  const auto hw_pdf = design.estimate(prec_span);
  double mass = 0.0;
  for (double p : hw_pdf) mass += p / static_cast<double>(hw_pdf.size());
  std::printf("\nfixed-point PDF integrates to %.3f (expect ~1.0)\n", mass);
  return 0;
}
