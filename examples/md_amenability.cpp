// Molecular-dynamics amenability study (paper Sec. 5.2, executable).
//
// MD's per-molecule work depends on the dataset, so the computation
// parameters cannot be measured a priori. RAT's answer: invert the model —
// pick the speedup you need, solve for the throughput_proc it demands, and
// treat that number as a parallelism requirement for the design. This
// example runs that loop, shows the tornado sensitivity ranking, then
// simulates the resulting design and compares.
//
// Usage: md_amenability [--molecules=16384] [--goal=10] [--cutoff=0.34]
#include <cstdio>

#include "apps/hw_run.hpp"
#include "apps/md.hpp"
#include "apps/workload.hpp"
#include "core/sensitivity.hpp"
#include "core/throughput.hpp"
#include "core/units.hpp"
#include "core/worksheet.hpp"
#include "rcsim/platform.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace rat;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("molecules", 16384));
  const double goal = cli.get_double("goal", 10.0);

  apps::MdConfig cfg;
  cfg.cutoff = cli.get_double("cutoff", 0.34);
  const apps::MdDesign design(cfg);
  const rcsim::Platform platform = rcsim::xd1000();

  core::RatInputs in = design.rat_inputs();
  in.dataset.elements_in = in.dataset.elements_out = n;

  std::printf("== Inverse model: what must the hardware sustain? ==\n");
  for (double f : in.comp.fclock_hz) {
    const auto tp = core::solve_throughput_proc(
        in, f, goal, core::BufferingMode::kSingle);
    if (tp) {
      std::printf("  %3.0f MHz: %.1f ops/cycle needed for %.0fx\n",
                  core::to_mhz(f), *tp, goal);
    } else {
      std::printf("  %3.0f MHz: goal unreachable (communication bound)\n",
                  core::to_mhz(f));
    }
  }
  std::printf("The paper rounded the 100 MHz answer up to 50 ops/cycle and "
              "read it as a\nrequirement for deep data parallelism.\n\n");

  std::printf("== Sensitivity (tornado, +/-20%% on each input) ==\n");
  for (const auto& e : core::tornado(in, core::mhz(100), 0.2)) {
    std::printf("  %-18s speedup %5.1f .. %5.1f (swing %.1f)\n",
                e.parameter.c_str(), e.speedup_low, e.speedup_high,
                e.swing());
  }
  std::printf("Computation parameters dominate; the bus barely matters — "
              "the design effort\nshould go into parallel force lanes, not "
              "the interconnect.\n\n");

  std::printf("== Simulated measurement on the %s ==\n",
              platform.name.c_str());
  const auto sys = apps::particle_box(n, 1.0, 1.0, 555);
  apps::ParticleSystem probe = sys;
  const auto forces = apps::compute_forces_f32(probe, cfg);
  const auto cycles = design.cycles_from_counts(forces.interactions, n);
  std::printf("dataset locality: %.1f in-cutoff neighbours/molecule -> "
              "%llu fabric cycles\n",
              2.0 * static_cast<double>(forces.interactions) /
                  static_cast<double>(n),
              static_cast<unsigned long long>(cycles));

  rcsim::Workload w;
  w.n_iterations = 1;
  w.io = [&](std::size_t) { return design.io(n); };
  w.cycles = [&](std::size_t) { return cycles; };
  const auto run = apps::simulate_on_platform(
      w, platform, core::mhz(100), rcsim::Buffering::kSingle,
      in.software.tsoft_sec);
  std::printf("%s\n", core::render_worksheet(
                          in, {run.measured},
                          core::WorksheetMode::kSingleBuffered)
                          .c_str());
  const double eff = in.comp.ops_per_element * static_cast<double>(n) /
                     static_cast<double>(cycles);
  std::printf("achieved %.1f effective ops/cycle against the tuned 50: "
              "speedup %.1f vs the %.0fx goal —\n\"moderate success\" after "
              "major architectural revisions, exactly the paper's reading.\n",
              eff, run.measured.speedup, goal);
  return 0;
}
