// Platform porting study: the same 1-D PDF design evaluated against three
// platforms, with alphas derived per platform from microbenchmarks at the
// design's transfer size — the paper's "compare possible algorithmic
// design and FPGA platform choices" workflow, end to end.
//
// Usage: platform_comparison [--goal=10]
#include <cstdio>

#include "apps/hw_run.hpp"
#include "apps/pdf1d.hpp"
#include "core/ranking.hpp"
#include "core/units.hpp"
#include "rcsim/microbench.hpp"
#include "rcsim/platform.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace rat;
  const util::Cli cli(argc, argv);
  const double goal = cli.get_double("goal", 10.0);

  const apps::Pdf1dDesign design;
  const std::vector<std::string> names = {"nallatech_h101",
                                          "generic_pcie_x4", "xd1000"};

  std::vector<core::RankedCandidate> candidates;
  util::Table detail({"platform", "alpha_w@2KB", "alpha_r@2KB",
                      "pred speedup", "simulated speedup"});
  for (const auto& name : names) {
    const auto platform = rcsim::platform_by_name(name);
    rcsim::Microbench mb(platform.link);
    const auto alphas = mb.derive_alphas(design.config().batch * 4);

    core::RatInputs in = design.rat_inputs();
    in.name = "1-D PDF on " + platform.name;
    in.comm.ideal_bw_bytes_per_sec = platform.link.documented_bw();
    in.comm.alpha_write = std::min(1.0, alphas.alpha_write);
    in.comm.alpha_read = std::min(1.0, alphas.alpha_read);

    core::RankedCandidate c;
    c.label = platform.name;
    c.inputs = in;
    c.fclock_hz = core::mhz(150);
    c.resources = design.resource_items();
    c.device = platform.device;
    candidates.push_back(c);

    rcsim::Workload w;
    w.n_iterations = in.software.n_iterations;
    w.io = [&design, n = w.n_iterations](std::size_t i) {
      return design.io(i, n);
    };
    w.cycles = [&design](std::size_t) {
      return design.cycles_per_iteration();
    };
    const auto run = apps::simulate_on_platform(
        w, platform, core::mhz(150), rcsim::Buffering::kSingle,
        in.software.tsoft_sec);
    detail.add_row({platform.name, util::fixed(alphas.alpha_write, 2),
                    util::fixed(alphas.alpha_read, 2),
                    util::fixed(core::predict(in, core::mhz(150)).speedup_sb,
                                1),
                    util::fixed(run.measured.speedup, 1)});
  }

  std::printf("Per-platform analysis (alphas microbenchmarked at the "
              "design's 2 KB block):\n%s\n",
              detail.to_ascii().c_str());
  const auto results = core::rank_designs(candidates);
  std::printf("Ranked:\n%s\n", core::ranking_table(results).to_ascii().c_str());
  std::printf("verdict: '%s' %s the %.0fx goal (best predicted %.1fx)\n",
              results.front().label.c_str(),
              results.front().speedup >= goal ? "meets" : "misses", goal,
              results.front().speedup);
  return 0;
}
