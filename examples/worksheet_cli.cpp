// File-driven RAT worksheet tool.
//
// Reads a worksheet from a "key = value" text file (or uses a built-in
// case study), runs the throughput analysis plus the extension analyses
// (streaming mode, multi-FPGA scaling, Monte-Carlo uncertainty), and
// writes a Markdown + CSV report bundle.
//
// Usage:
//   worksheet_cli --input=my_kernel.rat --out=reports
//   worksheet_cli --case=pdf1d|pdf2d|md [--out=reports] [--goal=10]
//   worksheet_cli --case=pdf1d --dump   (print a template worksheet file)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/composition.hpp"
#include "rcsim/executor.hpp"
#include "rcsim/platform.hpp"
#include <algorithm>
#include "core/montecarlo.hpp"
#include "core/report.hpp"
#include "core/streaming.hpp"
#include "core/units.hpp"
#include "core/worksheet.hpp"
#include "io/loader.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace rat;
  const util::Cli cli(argc, argv);

  core::RatInputs in;
  const std::string which = cli.get_or("case", "pdf1d");
  if (cli.has("input")) {
    // Strict loader: malformed worksheets exit with one file:line:column
    // diagnostic instead of an uncaught exception.
    try {
      in = io::load_worksheet(cli.get("input").value());
    } catch (const core::ParseError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  } else if (which == "pdf1d") {
    in = core::pdf1d_inputs();
  } else if (which == "pdf2d") {
    in = core::pdf2d_inputs();
  } else if (which == "md") {
    in = core::md_inputs();
  } else {
    std::fprintf(stderr, "unknown --case=%s (pdf1d|pdf2d|md)\n",
                 which.c_str());
    return 1;
  }
  in.validate();

  if (cli.has("dump")) {
    std::printf("%s", in.serialize().c_str());
    return 0;
  }

  std::printf("%s\n", core::render_worksheet(
                          in, {}, core::WorksheetMode::kSingleBuffered)
                          .c_str());

  // Streaming mode at the fastest candidate clock.
  const double fmax = in.comp.fclock_hz.back();
  const auto stream = core::predict_streaming(in, fmax);
  const char* bn =
      stream.bottleneck == core::StreamBottleneck::kCompute  ? "compute"
      : stream.bottleneck == core::StreamBottleneck::kInput ? "input channel"
                                                            : "output channel";
  std::printf("streaming mode at %.0f MHz: %.3g elements/s sustained, "
              "bottleneck: %s\n",
              core::to_mhz(fmax), stream.sustained_rate, bn);

  // Multi-FPGA scaling knee.
  const int useful = core::max_useful_fpgas(in, fmax, 0.5, 32);
  std::printf("multi-FPGA scaling: up to %d board(s) stay above 50%% "
              "parallel efficiency\n",
              useful);

  // Monte-Carlo band under typical input uncertainty.
  const double goal = cli.get_double("goal", 10.0);
  const auto mc = core::run_monte_carlo(
      in, core::UncertaintyModel::typical(in), 4000, goal);
  std::printf("uncertainty (4000 samples, typical bands): speedup p10 %.1f "
              "/ p50 %.1f / p90 %.1f; P(>= %.0fx) = %.0f%%\n",
              mc.speedup_sb.p10, mc.speedup_sb.p50, mc.speedup_sb.p90, goal,
              mc.probability_of_goal * 100.0);

  if (cli.has("out")) {
    core::Report report;
    report.inputs = in;
    report.finalize();
    const auto path = report.write(cli.get("out").value(), "worksheet");
    std::printf("report bundle written to %s\n", path.string().c_str());
  }

  // --trace=<path>: simulate one generic run of this worksheet on the
  // Nallatech bus model and dump a chrome://tracing timeline.
  if (cli.has("trace")) {
    const auto platform = rcsim::nallatech_h101();
    rcsim::Workload w;
    w.n_iterations = std::min<std::size_t>(in.software.n_iterations, 16);
    w.io = [&](std::size_t) {
      rcsim::IterationIo io;
      io.input_chunks_bytes = {static_cast<std::size_t>(
          static_cast<double>(in.dataset.elements_in) *
          in.dataset.bytes_per_element)};
      io.output_chunks_bytes = {std::max<std::size_t>(
          4, static_cast<std::size_t>(
                 static_cast<double>(in.dataset.elements_out) *
                 in.dataset.bytes_per_element))};
      return io;
    };
    w.cycles = [&](std::size_t) {
      return static_cast<std::uint64_t>(
          static_cast<double>(in.dataset.elements_in) *
          in.comp.ops_per_element / in.comp.throughput_ops_per_cycle);
    };
    rcsim::ExecutionConfig ecfg;
    ecfg.buffering = rcsim::Buffering::kDouble;
    ecfg.fclock_hz = fmax;
    ecfg.host_sync_sec = platform.host_sync_sec;
    const auto run = rcsim::execute(w, platform.link, ecfg);
    const std::string path = cli.get("trace").value();
    std::ofstream f(path);
    f << run.timeline.to_chrome_trace();
    std::printf("chrome trace (%zu iterations) written to %s\n",
                w.n_iterations, path.c_str());
  }
  return 0;
}
