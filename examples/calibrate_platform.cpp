// Calibrating an interconnect model from (noisy) measurements.
//
// Workflow: sweep a microbenchmark over transfer sizes on a platform whose
// internals you don't know (here: the simulated Nallatech bus with 15%
// timing jitter, standing in for a real card), fit the latency+bandwidth
// model by least squares, and compare the fitted alpha curve against
// single-probe alphas — showing how the fitted curve avoids the §4.3
// small-transfer trap.
//
// Usage: calibrate_platform [--jitter=0.15] [--repeats=64]
#include <cstdio>

#include "core/calibration.hpp"
#include "rcsim/platform.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rat;
  const util::Cli cli(argc, argv);
  const double jitter = cli.get_double("jitter", 0.15);
  const int repeats = static_cast<int>(cli.get_int("repeats", 64));

  rcsim::Link link = rcsim::nallatech_pcix_link();
  link.set_jitter(jitter);

  std::vector<std::size_t> sizes;
  for (std::size_t s = 256; s <= (4u << 20); s *= 2) sizes.push_back(s);
  const auto [h2f, f2h] =
      core::calibrate_from_microbench(link, sizes, repeats);

  std::printf("fitted host->FPGA: overhead %s, sustained %s (R^2 %.4f)\n",
              util::sci(h2f.fixed_overhead_sec).c_str(),
              util::si(h2f.sustained_bw, "B/s").c_str(), h2f.r_squared);
  std::printf("fitted FPGA->host: overhead %s, sustained %s (R^2 %.4f)\n",
              util::sci(f2h.fixed_overhead_sec).c_str(),
              util::si(f2h.sustained_bw, "B/s").c_str(), f2h.r_squared);
  std::printf("ground truth     : 2.61E-6 / 700 MB/s and 9.87E-6 / 700 "
              "MB/s\n\n");

  util::Table t({"size", "true alpha_w", "fitted alpha_w", "2KB-probe "
                 "alpha_w"});
  rcsim::Microbench clean(rcsim::nallatech_pcix_link());
  const double probe_alpha =
      clean.measure(2048, rcsim::Direction::kHostToFpga).alpha;
  for (std::size_t bytes : {512u, 2048u, 16384u, 262144u, 4194304u}) {
    const double truth = rcsim::nallatech_pcix_link().measured_alpha(
        bytes, rcsim::Direction::kHostToFpga);
    t.add_row({util::bytes(static_cast<double>(bytes)),
               util::fixed(truth, 3),
               util::fixed(h2f.alpha_at(bytes, link.documented_bw()), 3),
               util::fixed(probe_alpha, 3)});
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf(
      "A single 2 KB probe (the paper's workflow) is off by up to ~2x at\n"
      "the ends of the range; the fitted curve tracks the truth "
      "everywhere.\n");
  return 0;
}
