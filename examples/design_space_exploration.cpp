// Iterative design-space exploration with the Figure-1 methodology.
//
// The paper: "RAT is applied iteratively during the design process until a
// suitable version of the algorithm is formulated or all reasonable
// permutations are exhausted." This example sweeps the 1-D PDF design's
// axes — pipeline count x clock estimate — through the design-space
// enumerator, cheapest point first, and lets the state machine settle on
// the first permutation that passes the throughput, precision and
// resource tests.
//
// Usage: design_space_exploration [--goal=9] [--tolerance=2.0] [--threads=N]
//                                 [--checkpoint=<path>] [--metrics=<path>]
//                                 [--prune] [--plan-cache=<dir>]
//                                 [--throttle-ms=N]
//   --threads=0 sizes the worker count automatically (RAT_THREADS override
//   or hardware concurrency); the outcome is identical at any thread count.
//   --checkpoint records every evaluated permutation in a durable campaign
//   checkpoint (docs/STORE.md); rerunning after a crash replays completed
//   points and produces byte-identical output. Changing the goal,
//   tolerance or axes makes an old checkpoint stale (E_STALE_CHECKPOINT).
//   --prune routes the sweep through the branch-and-bound explorer
//   (docs/EXPLORATION.md); stdout stays byte-identical, stderr gains the
//   explore.* effort counters.
//   --plan-cache persists every full evaluation in a content-addressed
//   DurableStore keyed by candidate+requirements+device fingerprints, so
//   a rerun — same campaign or an overlapping one — replays instead of
//   recomputing. Survives kill -9 (it rides the store's journal).
//   --throttle-ms sleeps that long inside each precision kernel run,
//   slowing evaluations down so crash-recovery harnesses can interrupt a
//   live campaign deterministically.
//   --metrics (or the RAT_METRICS env var) writes a rat.metrics.v1 JSON
//   document with designspace.* counters and evaluation timers.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "apps/pdf1d.hpp"
#include "apps/workload.hpp"
#include "core/designspace.hpp"
#include "core/units.hpp"
#include "explore/explorer.hpp"
#include "obs/metrics.hpp"
#include "store/error.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rat;
  const util::Cli cli(argc, argv);
  const double goal = cli.get_double("goal", 9.0);
  const double tolerance = cli.get_double("tolerance", 2.0);
  const std::size_t threads = cli.get_size_t("threads", 1, 0, 256);
  const std::string checkpoint_path = cli.get_or("checkpoint", "");
  const bool prune = cli.get_bool("prune", false);
  const std::string plan_cache_dir = cli.get_or("plan-cache", "");
  const std::size_t throttle_ms = cli.get_size_t("throttle-ms", 0, 0, 60000);

  std::string metrics_path = cli.get_or("metrics", "");
  if (metrics_path.empty())
    if (const char* env = obs::env_metrics_path()) metrics_path = env;
  if (!metrics_path.empty()) obs::set_enabled(true);

  // Shared precision artifacts (numeric behaviour depends on the format,
  // not on the pipeline count).
  const auto samples =
      apps::gaussian_mixture_1d(8192, apps::default_mixture_1d(), 777);

  core::DesignAxes axes;
  axes.parallelism = {1, 2, 4, 8, 16};
  axes.fclock_hz = {core::mhz(100), core::mhz(150)};
  axes.format_bits = {18};

  const core::CandidateFactory factory =
      [&samples, throttle_ms](const core::DesignPoint& p)
      -> std::optional<core::DesignCandidate> {
    if (apps::Pdf1dConfig{}.n_bins % p.parallelism != 0)
      return std::nullopt;  // bins must divide across the pipelines
    const apps::Pdf1dDesign design(apps::Pdf1dConfig{}, p.parallelism);
    core::DesignCandidate c;
    c.inputs = design.rat_inputs();
    c.inputs.name.clear();  // use the generated point label
    // 3 ops per pipeline per cycle, derated ~17% as the paper does.
    c.inputs.comp.throughput_ops_per_cycle =
        3.0 * static_cast<double>(p.parallelism) * 0.83;
    c.precision_reference =
        apps::estimate_pdf1d_quadratic(samples, design.config());
    c.precision_kernel = [design, &samples, throttle_ms](fx::Format fmt) {
      if (throttle_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(throttle_ms));
      return design.estimate_with_format(samples, fmt);
    };
    c.resources = design.resource_items();
    return c;
  };

  core::Requirements req;
  req.min_speedup = goal;
  req.precision = core::PrecisionRequirements{tolerance, 12, 20, 0};

  core::DesignSpaceCheckpoint ckpt;
  core::DesignSpaceResult result;
  try {
    if (!checkpoint_path.empty()) ckpt.path = checkpoint_path;
    if (prune || !plan_cache_dir.empty()) {
      std::unique_ptr<explore::PlanCache> cache;
      if (!plan_cache_dir.empty())
        cache = std::make_unique<explore::PlanCache>(plan_cache_dir);
      explore::ExploreOptions opt;
      opt.policy.prune = prune;
      opt.n_threads = threads;
      opt.checkpoint = checkpoint_path.empty() ? nullptr : &ckpt;
      opt.plan_cache = cache.get();
      const auto explored = explore::explore_design_space_pruned(
          axes, factory, req, rcsim::virtex4_lx100(), opt);
      result = explored.design;
      const auto& st = explored.stats;
      std::fprintf(stderr,
                   "explore: evaluated %zu bounded %zu restored %zu "
                   "pruned %zu of %zu (cache hits %zu puts %zu)\n",
                   st.points_evaluated, st.points_bounded,
                   st.points_restored, st.points_pruned, st.points_total,
                   st.cache_hits, st.cache_puts);
    } else {
      result = core::explore_design_space(
          axes, factory, req, rcsim::virtex4_lx100(), threads,
          checkpoint_path.empty() ? nullptr : &ckpt);
    }
  } catch (const store::StoreError& e) {
    std::fprintf(stderr, "design_space_exploration: %s\n", e.what());
    return 1;
  }
  if (!checkpoint_path.empty())
    std::fprintf(stderr, "checkpoint: restored %zu previously evaluated "
                 "point(s)\n", result.points_restored);

  std::printf("explored %zu of %zu permutations (%zu skipped) against a "
              "%.1fx goal:\n\n%s\n",
              result.points_total - result.points_skipped,
              result.points_total, result.points_skipped, goal,
              result.outcome.render_trace().c_str());
  if (result.outcome.proceed) {
    const auto idx = *result.outcome.accepted_index;
    std::printf("accepted: %s — predicted speedup %.1f\n",
                result.outcome.trace.back().candidate_name.c_str(),
                result.outcome.predictions[idx].speedup_sb);
  } else {
    std::printf("all reasonable permutations exhausted without a "
                "satisfactory solution.\nTry --goal below %.1f.\n",
                goal);
  }

  if (!metrics_path.empty()) {
    // Quiesce the pool so no worker's trailing counters miss the export.
    if (util::ThreadPool* pool = util::ThreadPool::shared_if_created())
      pool->wait_idle();
    obs::write_metrics_file(metrics_path);
    std::fprintf(stderr, "metrics (%s):\n%s", metrics_path.c_str(),
                 obs::summary_table().c_str());
  }
  return 0;
}
