// Bridge from an application hardware-design model to a simulated
// "measured" run on a platform: builds the rcsim workload, executes it,
// and packages the result as a core::Measured record that can sit in the
// Actual column of a RAT worksheet.
#pragma once

#include <functional>

#include "core/validation.hpp"
#include "rcsim/executor.hpp"
#include "rcsim/platform.hpp"

namespace rat::apps {

struct SimulatedRun {
  rcsim::ExecutionResult exec;
  core::Measured measured;
};

/// Execute @p workload on @p platform at @p fclock_hz and summarize.
/// @p tsoft_sec is the software baseline used for the measured speedup.
SimulatedRun simulate_on_platform(const rcsim::Workload& workload,
                                  const rcsim::Platform& platform,
                                  double fclock_hz, rcsim::Buffering buffering,
                                  double tsoft_sec);

}  // namespace rat::apps
