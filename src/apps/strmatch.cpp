#include "apps/strmatch.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace rat::apps {

void StrMatchConfig::validate() const {
  if (patterns.empty())
    throw std::invalid_argument("StrMatchConfig: no patterns");
  for (const auto& p : patterns)
    if (p.empty()) throw std::invalid_argument("StrMatchConfig: empty pattern");
  if (chunk == 0) throw std::invalid_argument("StrMatchConfig: chunk == 0");
}

std::size_t StrMatchConfig::longest_pattern() const {
  std::size_t n = 0;
  for (const auto& p : patterns) n = std::max(n, p.size());
  return n;
}

std::size_t StrMatchConfig::total_pattern_chars() const {
  std::size_t n = 0;
  for (const auto& p : patterns) n += p.size();
  return n;
}

namespace {

std::vector<std::uint64_t> naive_impl(std::string_view text,
                                      const StrMatchConfig& cfg,
                                      OpCounter* ops) {
  cfg.validate();
  std::vector<std::uint64_t> counts(cfg.patterns.size(), 0);
  for (std::size_t k = 0; k < cfg.patterns.size(); ++k) {
    const std::string& p = cfg.patterns[k];
    if (p.size() > text.size()) continue;
    for (std::size_t i = 0; i + p.size() <= text.size(); ++i) {
      bool match = true;
      for (std::size_t j = 0; j < p.size(); ++j) {
        if (ops) ++ops->compares;
        if (text[i + j] != p[j]) {
          match = false;
          break;
        }
      }
      if (match) {
        ++counts[k];
        if (ops) ++ops->adds;
      }
    }
  }
  return counts;
}

}  // namespace

std::vector<std::uint64_t> count_matches_naive(std::string_view text,
                                               const StrMatchConfig& cfg) {
  return naive_impl(text, cfg, nullptr);
}

std::vector<std::uint64_t> count_matches_naive_counted(
    std::string_view text, const StrMatchConfig& cfg, OpCounter& ops) {
  return naive_impl(text, cfg, &ops);
}

std::vector<std::uint64_t> count_matches_shift_or(std::string_view text,
                                                  const StrMatchConfig& cfg) {
  cfg.validate();
  std::vector<std::uint64_t> counts(cfg.patterns.size(), 0);
  for (std::size_t k = 0; k < cfg.patterns.size(); ++k) {
    const std::string& p = cfg.patterns[k];
    if (p.size() > 64)
      throw std::invalid_argument(
          "count_matches_shift_or: pattern longer than 64 characters");
    // Character masks: bit j clear when pattern[j] == c.
    std::uint64_t masks[256];
    std::fill(std::begin(masks), std::end(masks), ~std::uint64_t{0});
    for (std::size_t j = 0; j < p.size(); ++j)
      masks[static_cast<unsigned char>(p[j])] &= ~(std::uint64_t{1} << j);
    const std::uint64_t accept = std::uint64_t{1} << (p.size() - 1);
    std::uint64_t state = ~std::uint64_t{0};
    for (char c : text) {
      state = (state << 1) | masks[static_cast<unsigned char>(c)];
      if ((state & accept) == 0) ++counts[k];
    }
  }
  return counts;
}

AhoCorasick::AhoCorasick(const StrMatchConfig& cfg)
    : n_patterns_(cfg.patterns.size()) {
  cfg.validate();
  // Trie construction (state 0 = root).
  auto add_state = [this] {
    next_.emplace_back();
    next_.back().fill(-1);
    output_.emplace_back();
    return static_cast<std::int32_t>(next_.size() - 1);
  };
  add_state();
  for (std::uint32_t id = 0; id < cfg.patterns.size(); ++id) {
    std::int32_t s = 0;
    for (char ch : cfg.patterns[id]) {
      const auto c = static_cast<unsigned char>(ch);
      if (next_[static_cast<std::size_t>(s)][c] < 0)
        next_[static_cast<std::size_t>(s)][c] = add_state();
      s = next_[static_cast<std::size_t>(s)][c];
    }
    output_[static_cast<std::size_t>(s)].push_back(id);
  }
  // BFS failure links, folded directly into the transition table (so the
  // scan is one table lookup per character — automaton form).
  std::vector<std::int32_t> fail(next_.size(), 0);
  std::vector<std::int32_t> queue;
  for (int c = 0; c < kAlphabet; ++c) {
    auto& t = next_[0][static_cast<std::size_t>(c)];
    if (t < 0) {
      t = 0;
    } else {
      fail[static_cast<std::size_t>(t)] = 0;
      queue.push_back(t);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::int32_t s = queue[head];
    const std::int32_t f = fail[static_cast<std::size_t>(s)];
    // Inherit the failure state's outputs (suffix matches).
    for (std::uint32_t id : output_[static_cast<std::size_t>(f)])
      output_[static_cast<std::size_t>(s)].push_back(id);
    for (int c = 0; c < kAlphabet; ++c) {
      auto& t = next_[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)];
      const std::int32_t via_fail =
          next_[static_cast<std::size_t>(f)][static_cast<std::size_t>(c)];
      if (t < 0) {
        t = via_fail;
      } else {
        fail[static_cast<std::size_t>(t)] = via_fail;
        queue.push_back(t);
      }
    }
  }
}

std::vector<std::uint64_t> AhoCorasick::count_matches(
    std::string_view text) const {
  std::vector<std::uint64_t> counts(n_patterns_, 0);
  std::int32_t s = 0;
  for (char ch : text) {
    s = next_[static_cast<std::size_t>(s)]
             [static_cast<unsigned char>(ch)];
    for (std::uint32_t id : output_[static_cast<std::size_t>(s)])
      ++counts[id];
  }
  return counts;
}

std::string random_text(std::size_t n, const StrMatchConfig& cfg,
                        double plant_rate, std::uint64_t seed,
                        char alphabet_lo, char alphabet_hi) {
  cfg.validate();
  if (plant_rate < 0.0 || plant_rate > 1.0)
    throw std::invalid_argument("random_text: plant_rate outside [0,1]");
  if (alphabet_lo > alphabet_hi)
    throw std::invalid_argument("random_text: empty alphabet");
  util::Rng rng(seed);
  const auto span =
      static_cast<std::uint64_t>(alphabet_hi - alphabet_lo) + 1;
  std::string text;
  text.reserve(n);
  while (text.size() < n) {
    if (plant_rate > 0.0 && rng.uniform() < plant_rate) {
      const auto& p = cfg.patterns[rng.uniform_index(cfg.patterns.size())];
      text.append(p, 0, std::min(p.size(), n - text.size()));
    } else {
      text.push_back(
          static_cast<char>(alphabet_lo + rng.uniform_index(span)));
    }
  }
  return text;
}

StrMatchDesign::StrMatchDesign(StrMatchConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
}

std::vector<std::uint64_t> StrMatchDesign::count_matches(
    std::string_view text) const {
  // Systolic semantics: each lane holds a shift register of the last
  // |pattern| characters; a match fires when the whole window equals the
  // pattern — i.e. at position i the window covers [i-|p|+1, i], so this
  // counts exactly what the naive scan counts.
  std::vector<std::uint64_t> counts(cfg_.patterns.size(), 0);
  for (std::size_t k = 0; k < cfg_.patterns.size(); ++k) {
    const std::string& p = cfg_.patterns[k];
    // match_depth[j]: the last j+1 characters equal the pattern's first
    // j+1 characters — a chain of per-stage comparators, as in hardware.
    std::vector<bool> chain(p.size(), false);
    for (char c : text) {
      for (std::size_t j = p.size(); j-- > 0;) {
        const bool prev = j == 0 ? true : chain[j - 1];
        chain[j] = prev && (c == p[j]);
      }
      if (chain.back()) ++counts[k];
    }
  }
  return counts;
}

std::uint64_t StrMatchDesign::cycles_per_iteration() const {
  return cfg_.chunk + cfg_.longest_pattern();
}

rcsim::IterationIo StrMatchDesign::io() const {
  rcsim::IterationIo io;
  io.input_chunks_bytes = {cfg_.chunk};  // one byte per character
  io.output_chunks_bytes = {cfg_.patterns.size() * 8};
  return io;
}

std::vector<core::ResourceItem> StrMatchDesign::resource_items() const {
  std::vector<core::ResourceItem> items;
  // One comparator + flip-flop + AND per pattern character; ~2 logic
  // elements each, plus per-lane counter logic.
  items.push_back(core::ResourceItem{
      "comparator chains", 0, 18,
      /*buffer_bytes=*/0,
      static_cast<std::int64_t>(2 * cfg_.total_pattern_chars() +
                                24 * cfg_.patterns.size()),
      1});
  items.push_back(core::ResourceItem{
      "text buffers (double)", 0, 18,
      static_cast<std::int64_t>(2 * cfg_.chunk), 300, 1});
  items.push_back(core::ResourceItem{"vendor wrapper", 0, 18, 64 * 1024,
                                     2400, 1});
  return items;
}

core::RatInputs StrMatchDesign::rat_inputs(
    double tsoft_sec, std::size_t n_iterations,
    const core::CommunicationParams& comm) const {
  core::RatInputs in;
  in.name = "string matching (systolic array)";
  in.dataset.elements_in = cfg_.chunk;
  in.dataset.elements_out = cfg_.patterns.size() * 8;  // counter bytes
  in.dataset.bytes_per_element = 1.0;
  in.comm = comm;
  in.comp.ops_per_element =
      static_cast<double>(cfg_.total_pattern_chars());
  in.comp.throughput_ops_per_cycle =
      static_cast<double>(cfg_.total_pattern_chars());
  in.comp.fclock_hz = {75e6, 100e6, 150e6};
  in.software.tsoft_sec = tsoft_sec;
  in.software.n_iterations = n_iterations;
  return in;
}

}  // namespace rat::apps
