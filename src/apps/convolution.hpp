// 2-D image convolution — the archetypal FPGA streaming kernel, included
// as a further extension case study. The hardware shape is the textbook
// systolic window: K-1 line buffers in block RAM delay the incoming
// raster-scan pixel stream so a K x K window is visible every cycle, and a
// K x K multiply-accumulate array produces one output pixel per cycle
// after the window fills. Its RAT worksheet is the cleanest of all the
// case studies — fully deterministic, one element per cycle — which makes
// it a good calibration point for the methodology itself.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/opcount.hpp"
#include "core/parameters.hpp"
#include "core/resources.hpp"
#include "fixedpoint/fixed.hpp"
#include "rcsim/executor.hpp"
#include "rcsim/pipeline.hpp"

namespace rat::apps {

struct ConvConfig {
  std::size_t width = 1024;   ///< frame width (pixels)
  std::size_t height = 1024;  ///< frame height; one frame per iteration
  std::size_t kernel_size = 5;  ///< odd K for a K x K window
  double bytes_per_pixel = 2.0;

  void validate() const;
  std::size_t pixels() const { return width * height; }
};

/// Row-major image; values nominally in [0, 1).
using Image = std::vector<double>;

/// Synthetic test frame: smooth gradient + soft blobs + seeded noise.
Image synthetic_frame(const ConvConfig& cfg, std::uint64_t seed);

/// Common kernels (row-major K x K, normalized where applicable).
std::vector<double> box_kernel(std::size_t k);       ///< mean filter
std::vector<double> gaussian_kernel(std::size_t k);  ///< sigma = k/5
std::vector<double> identity_kernel(std::size_t k);  ///< centre 1

/// Software reference: zero-padded 2-D convolution in double precision.
Image convolve2d(const Image& image, std::span<const double> kernel,
                 const ConvConfig& cfg);

/// Instrumented variant (one mul + one add per tap per pixel).
Image convolve2d_counted(const Image& image, std::span<const double> kernel,
                         const ConvConfig& cfg, OpCounter& ops);

/// Separable convolution: for kernels expressible as col * row outer
/// products (box, Gaussian), two 1-D passes replace the K x K sweep —
/// 4K ops/pixel instead of 2K^2, the standard software optimization a
/// legacy-code analysis would find. @p col/@p row are length-K vectors.
/// Matches the zero-padded 2-D result exactly for product kernels.
Image convolve2d_separable(const Image& image, std::span<const double> col,
                           std::span<const double> row,
                           const ConvConfig& cfg);

/// 1-D factor of the Gaussian kernel (outer product of two of these
/// equals gaussian_kernel(k)).
std::vector<double> gaussian_factor(std::size_t k);

/// The systolic-window hardware design.
class ConvDesign {
 public:
  explicit ConvDesign(ConvConfig cfg = {},
                      fx::Format format = fx::Format{18, 15, true});

  const ConvConfig& config() const { return cfg_; }
  const fx::Format& format() const { return format_; }

  /// One pixel per cycle after the window fill ((K/2+ ceil?) rows + K/2
  /// pixels of latency), modeled via PipelineSpec.
  rcsim::PipelineSpec pipeline_spec() const;
  std::uint64_t cycles_per_iteration() const;

  /// Functional fixed-point convolution: image and kernel quantized into
  /// the working format, 48-bit MAC accumulation, truncating narrowing —
  /// bit-shaped like the MAC array.
  Image convolve(const Image& image, std::span<const double> kernel) const;
  Image convolve_with_format(const Image& image,
                             std::span<const double> kernel,
                             fx::Format fmt) const;

  /// Frame in, frame out.
  rcsim::IterationIo io() const;

  /// K*K multipliers + (K-1) width-deep line buffers + window registers.
  std::vector<core::ResourceItem> resource_items() const;

  /// Worksheet: ops/pixel = 2*K*K; the MAC array retires all of them each
  /// cycle, derated 10% for the row-fill bubbles.
  core::RatInputs rat_inputs(double tsoft_sec, std::size_t n_iterations,
                             const core::CommunicationParams& comm) const;

 private:
  ConvConfig cfg_;
  fx::Format format_;
};

}  // namespace rat::apps
