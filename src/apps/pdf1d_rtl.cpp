#include "apps/pdf1d_rtl.hpp"

#include <stdexcept>

namespace rat::apps {

RtlRunResult run_pdf1d_rtl(const Pdf1dDesign& design,
                           std::span<const double> samples) {
  if (samples.empty())
    throw std::invalid_argument("run_pdf1d_rtl: no samples");
  const Pdf1dConfig& cfg = design.config();
  const fx::Format fmt = design.format();
  const std::size_t pipes = design.n_pipelines();
  const std::size_t bins_per_pipe = cfg.n_bins / pipes;
  const auto rnd = fx::Rounding::kTruncate;

  // Datapath constants, registered at configuration time.
  const double h2 = cfg.bandwidth * cfg.bandwidth;
  const fx::Fixed h2_fx = fx::Fixed::from_double(h2, fmt);
  std::vector<fx::Fixed> bin_regs;
  bin_regs.reserve(cfg.n_bins);
  for (std::size_t j = 0; j < cfg.n_bins; ++j)
    bin_regs.push_back(fx::Fixed::from_double(cfg.bin_center(j), fmt));

  // 48-bit MAC accumulators, one per bin, zeroed at reset.
  const fx::Format acc_fmt{48, fmt.frac_bits, true};
  std::vector<fx::Fixed> acc(cfg.n_bins, fx::Fixed(acc_fmt));

  RtlRunResult result;
  const auto spec = design.pipeline_spec();
  const auto stall = static_cast<std::uint64_t>(spec.stall_per_item);

  // Clocked execution: elements stream through in batches of cfg.batch;
  // each batch pays the fill/drain depth once, like one device iteration.
  std::size_t index = 0;
  while (index < samples.size()) {
    const std::size_t batch_end =
        std::min(index + cfg.batch, samples.size());
    for (; index < batch_end; ++index) {
      // Element handshake: the input FIFO re-arms for `stall` cycles.
      result.cycles += stall;
      result.handshake_stalls += stall;
      const fx::Fixed x_fx = fx::Fixed::from_double(samples[index], fmt);
      // One clock per bin slot; all pipelines issue their MAC in lockstep.
      for (std::size_t slot = 0; slot < bins_per_pipe; ++slot) {
        ++result.cycles;
        for (std::size_t p = 0; p < pipes; ++p) {
          const std::size_t j = p * bins_per_pipe + slot;
          ++result.mac_issues;
          const fx::Fixed d = fx::Fixed::sub(bin_regs[j], x_fx, fmt, rnd);
          const fx::Fixed d2 = fx::Fixed::mul(d, d, fmt, rnd);
          if (d2.raw() < h2_fx.raw()) {
            const fx::Fixed w = fx::Fixed::sub(h2_fx, d2, fmt, rnd);
            acc[j] = fx::Fixed::add(acc[j], w, acc_fmt, rnd);
          }
        }
      }
    }
    result.cycles += spec.depth;  // batch drain
  }

  // Host-side normalization, identical to the behavioural model.
  const double h = cfg.bandwidth;
  const double norm =
      3.0 / (4.0 * h * h * h * static_cast<double>(samples.size()));
  result.estimate.reserve(cfg.n_bins);
  for (const auto& a : acc) result.estimate.push_back(a.to_double() * norm);
  return result;
}

}  // namespace rat::apps
