// Operation-count instrumentation.
//
// RAT's Nops/element input comes from "algorithm and software legacy code
// analyses" (paper §1): counting the arithmetic a kernel performs per
// element. The counted variants of our software baselines tally their
// operations here, so a worksheet's ops_per_element can be *derived* from
// the code instead of asserted — the same workflow the authors describe,
// including the ambiguity of what an "operation" is (§3.1's Booth-
// multiplier example): the weights below choose one consistent scope.
#pragma once

#include <cstdint>
#include <string>

namespace rat::apps {

struct OpCounter {
  std::uint64_t adds = 0;
  std::uint64_t subs = 0;
  std::uint64_t muls = 0;
  std::uint64_t divs = 0;
  std::uint64_t sqrts = 0;
  std::uint64_t compares = 0;

  /// Total with unit weights — every arithmetic operation counts once.
  /// This is the scope the PDF case studies use (3 ops per bin update).
  std::uint64_t total_unit_weight() const {
    return adds + subs + muls + divs + sqrts + compares;
  }

  /// Weighted total for iterative units: a divider or square root occupies
  /// a pipeline for many cycles, so code analysis often counts them as
  /// multiple operations (the Booth discussion, §3.1).
  std::uint64_t total_weighted(std::uint64_t div_weight = 16,
                               std::uint64_t sqrt_weight = 16) const {
    return adds + subs + muls + compares + divs * div_weight +
           sqrts * sqrt_weight;
  }

  OpCounter& operator+=(const OpCounter& o) {
    adds += o.adds;
    subs += o.subs;
    muls += o.muls;
    divs += o.divs;
    sqrts += o.sqrts;
    compares += o.compares;
    return *this;
  }

  std::string to_string() const;
};

}  // namespace rat::apps
