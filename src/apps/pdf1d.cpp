#include "apps/pdf1d.hpp"

#include <cmath>
#include <stdexcept>

namespace rat::apps {

void Pdf1dConfig::validate() const {
  if (n_bins == 0) throw std::invalid_argument("Pdf1dConfig: n_bins == 0");
  if (bandwidth <= 0.0 || bandwidth >= 1.0)
    throw std::invalid_argument("Pdf1dConfig: bandwidth outside (0,1)");
  if (batch == 0) throw std::invalid_argument("Pdf1dConfig: batch == 0");
}

double Pdf1dConfig::bin_center(std::size_t j) const {
  return (static_cast<double>(j) + 0.5) / static_cast<double>(n_bins);
}

std::vector<double> estimate_pdf1d_gaussian(std::span<const double> samples,
                                            const Pdf1dConfig& cfg) {
  cfg.validate();
  if (samples.empty())
    throw std::invalid_argument("estimate_pdf1d_gaussian: no samples");
  std::vector<double> acc(cfg.n_bins, 0.0);
  const double h = cfg.bandwidth;
  const double inv_2h2 = 1.0 / (2.0 * h * h);
  for (double x : samples) {
    for (std::size_t j = 0; j < cfg.n_bins; ++j) {
      const double d = cfg.bin_center(j) - x;
      acc[j] += std::exp(-d * d * inv_2h2);
    }
  }
  const double norm =
      1.0 / (static_cast<double>(samples.size()) * h * std::sqrt(2.0 * M_PI));
  for (double& a : acc) a *= norm;
  return acc;
}

namespace {

/// Shared quadratic-kernel accumulation; optionally instrumented.
std::vector<double> quadratic_impl(std::span<const double> samples,
                                   const Pdf1dConfig& cfg, OpCounter* ops) {
  cfg.validate();
  if (samples.empty())
    throw std::invalid_argument("estimate_pdf1d_quadratic: no samples");
  std::vector<double> acc(cfg.n_bins, 0.0);
  const double h = cfg.bandwidth;
  const double h2 = h * h;
  for (double x : samples) {
    for (std::size_t j = 0; j < cfg.n_bins; ++j) {
      // The paper's three operations per bin update:
      const double d = cfg.bin_center(j) - x;  // comparison (subtraction)
      const double d2 = d * d;                 // multiplication
      if (d2 < h2) acc[j] += h2 - d2;          // addition (predicated)
      if (ops) {
        ++ops->subs;
        ++ops->muls;
        ++ops->adds;
      }
    }
  }
  // Epanechnikov normalization: (h^2 - d^2) * 3 / (4 h^3) integrates to 1.
  const double norm = 3.0 / (4.0 * h * h * h * static_cast<double>(samples.size()));
  for (double& a : acc) a *= norm;
  return acc;
}

}  // namespace

std::vector<double> estimate_pdf1d_quadratic(std::span<const double> samples,
                                             const Pdf1dConfig& cfg) {
  return quadratic_impl(samples, cfg, nullptr);
}

std::vector<double> estimate_pdf1d_quadratic_counted(
    std::span<const double> samples, const Pdf1dConfig& cfg, OpCounter& ops) {
  return quadratic_impl(samples, cfg, &ops);
}

double pdf1d_ops_per_element(const Pdf1dConfig& cfg) {
  return 3.0 * static_cast<double>(cfg.n_bins);
}

Pdf1dDesign::Pdf1dDesign(Pdf1dConfig cfg, std::size_t n_pipelines,
                         fx::Format format)
    : cfg_(cfg), n_pipelines_(n_pipelines), format_(format) {
  cfg_.validate();
  format_.validate();
  if (n_pipelines_ == 0 || cfg_.n_bins % n_pipelines_ != 0)
    throw std::invalid_argument(
        "Pdf1dDesign: n_bins must be a positive multiple of n_pipelines");
}

rcsim::PipelineSpec Pdf1dDesign::pipeline_spec() const {
  rcsim::PipelineSpec spec;
  spec.name = "pdf1d";
  // Each of the 8 pipelines walks its 32 bins for the current element, one
  // bin per cycle; the element handshake costs ~9 stall cycles, and the
  // batch pays a fill latency of 64 cycles. Calibrated to the measured
  // 1.39E-4 s at 150 MHz (Table 3, actual column): ~18.7 effective ops/cyc
  // versus the 24 ideal and the 20 RAT assumed.
  spec.depth = 64;
  spec.initiation_interval =
      static_cast<double>(cfg_.n_bins / n_pipelines_);
  spec.stall_per_item = 9.0;
  spec.instances = 1;  // all pipelines cooperate on the same element stream
  spec.ops_per_item = pdf1d_ops_per_element(cfg_);
  return spec;
}

std::uint64_t Pdf1dDesign::cycles_per_iteration() const {
  return rcsim::pipeline_cycles(pipeline_spec(), cfg_.batch);
}

double Pdf1dDesign::ideal_ops_per_cycle() const {
  return 3.0 * static_cast<double>(n_pipelines_);
}

rcsim::IterationIo Pdf1dDesign::io(std::size_t iter,
                                   std::size_t n_iterations) const {
  rcsim::IterationIo io;
  io.input_chunks_bytes = {cfg_.batch * 4};
  io.output_chunks_bytes = {4};  // per-iteration completion/status word
  if (n_iterations > 0 && iter + 1 == n_iterations)
    io.output_chunks_bytes.push_back(cfg_.n_bins * 4);  // final result drain
  return io;
}

std::vector<double> Pdf1dDesign::estimate(
    std::span<const double> samples) const {
  return estimate_with_format(samples, format_);
}

std::vector<double> Pdf1dDesign::estimate_with_format(
    std::span<const double> samples, fx::Format fmt) const {
  if (samples.empty())
    throw std::invalid_argument("Pdf1dDesign::estimate: no samples");
  fmt.validate();
  const double h2 = cfg_.bandwidth * cfg_.bandwidth;
  const fx::Fixed h2_fx = fx::Fixed::from_double(h2, fmt);
  // 48-bit MAC accumulator, same fractional point as the datapath (the
  // DSP48/MAC accumulates full products without rescaling).
  const fx::Format acc_fmt{48, fmt.frac_bits, true};

  std::vector<fx::Fixed> bins_fx;
  bins_fx.reserve(cfg_.n_bins);
  for (std::size_t j = 0; j < cfg_.n_bins; ++j)
    bins_fx.push_back(fx::Fixed::from_double(cfg_.bin_center(j), fmt));

  std::vector<fx::Fixed> acc(cfg_.n_bins, fx::Fixed(acc_fmt));
  // Hardware truncates when narrowing products back into the datapath.
  const auto rnd = fx::Rounding::kTruncate;
  for (double x : samples) {
    const fx::Fixed x_fx = fx::Fixed::from_double(x, fmt);
    for (std::size_t j = 0; j < cfg_.n_bins; ++j) {
      const fx::Fixed d = fx::Fixed::sub(bins_fx[j], x_fx, fmt, rnd);
      const fx::Fixed d2 = fx::Fixed::mul(d, d, fmt, rnd);
      if (d2.raw() < h2_fx.raw()) {
        const fx::Fixed w = fx::Fixed::sub(h2_fx, d2, fmt, rnd);
        acc[j] = fx::Fixed::add(acc[j], w, acc_fmt, rnd);
      }
    }
  }
  const double h = cfg_.bandwidth;
  const double norm =
      3.0 / (4.0 * h * h * h * static_cast<double>(samples.size()));
  std::vector<double> out;
  out.reserve(cfg_.n_bins);
  for (const auto& a : acc) out.push_back(a.to_double() * norm);
  return out;
}

std::vector<core::ResourceItem> Pdf1dDesign::resource_items() const {
  const int mult_bits = format_.total_bits;
  std::vector<core::ResourceItem> items;
  // One 18x18 MAC per pipeline (the reason 18-bit precision was chosen).
  items.push_back(core::ResourceItem{
      "pipeline MAC", /*multiplier_count=*/1, mult_bits,
      /*buffer_bytes=*/0, /*logic_elements=*/420,
      /*instances=*/static_cast<int>(n_pipelines_)});
  // Double-buffered input plus the result buffer.
  items.push_back(core::ResourceItem{
      "I/O buffers", 0, mult_bits,
      static_cast<std::int64_t>(2 * cfg_.batch * 4 + cfg_.n_bins * 4), 600,
      1});
  // Bin accumulators (48-bit each) live in block RAM.
  items.push_back(core::ResourceItem{
      "bin accumulators", 0, mult_bits,
      static_cast<std::int64_t>(cfg_.n_bins * 6), 300, 1});
  // Vendor interface wrapper: roughly constant (paper §3.3 notes wrappers
  // consume a significant, design-independent share of memories).
  items.push_back(core::ResourceItem{"vendor wrapper", 0, mult_bits,
                                     /*buffer_bytes=*/64 * 1024, 2400, 1});
  return items;
}

}  // namespace rat::apps
