// String matching — the paper's third example of an "element" (§3.1: "a
// single character in a string-matching algorithm"). An extension case
// study demonstrating the methodology on an integer, streaming-friendly
// kernel with no precision test.
//
// Software baselines: naive multi-pattern scan and the bit-parallel
// shift-or algorithm. Hardware design: a systolic comparator array — one
// lane per pattern, each lane a chain of character comparators clocked one
// text character per cycle, all lanes sharing the broadcast text stream.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "apps/opcount.hpp"
#include "core/parameters.hpp"
#include "core/resources.hpp"
#include "rcsim/executor.hpp"

namespace rat::apps {

struct StrMatchConfig {
  std::vector<std::string> patterns;
  std::size_t chunk = 4096;  ///< text characters per FPGA iteration

  void validate() const;
  std::size_t longest_pattern() const;
  std::size_t total_pattern_chars() const;
};

/// Per-pattern match counts (matches may overlap; each start position
/// where the pattern occurs counts once).
std::vector<std::uint64_t> count_matches_naive(std::string_view text,
                                               const StrMatchConfig& cfg);

/// Bit-parallel shift-or; patterns must be <= 64 characters. Identical
/// counts to the naive scan.
std::vector<std::uint64_t> count_matches_shift_or(std::string_view text,
                                                  const StrMatchConfig& cfg);

/// Aho-Corasick automaton over a pattern set: build once, scan text in a
/// single pass regardless of pattern count — the production-shaped
/// software baseline for large dictionaries (shift-or scans per pattern).
class AhoCorasick {
 public:
  explicit AhoCorasick(const StrMatchConfig& cfg);

  /// Per-pattern counts; identical to the naive scan (duplicate patterns
  /// each receive the full count).
  std::vector<std::uint64_t> count_matches(std::string_view text) const;

  std::size_t num_states() const { return next_.size(); }

 private:
  static constexpr int kAlphabet = 256;
  std::vector<std::array<std::int32_t, kAlphabet>> next_;  ///< goto+failure
  std::vector<std::vector<std::uint32_t>> output_;  ///< pattern ids per state
  std::size_t n_patterns_;
};

/// Instrumented naive scan (the "legacy code analysis" path).
std::vector<std::uint64_t> count_matches_naive_counted(
    std::string_view text, const StrMatchConfig& cfg, OpCounter& ops);

/// Synthetic text: uniform characters over an alphabet with occurrences of
/// the configured patterns planted at the given rate (per character).
std::string random_text(std::size_t n, const StrMatchConfig& cfg,
                        double plant_rate, std::uint64_t seed,
                        char alphabet_lo = 'a', char alphabet_hi = 'z');

/// The systolic-array hardware design.
class StrMatchDesign {
 public:
  explicit StrMatchDesign(StrMatchConfig cfg);

  const StrMatchConfig& config() const { return cfg_; }

  /// Functional model: exactly the comparator-chain semantics, one
  /// character at a time. Must agree with the software baselines.
  std::vector<std::uint64_t> count_matches(std::string_view text) const;

  /// One text character enters the array per cycle; the pipeline depth is
  /// the longest pattern (a match is confirmed that many cycles after its
  /// first character).
  std::uint64_t cycles_per_iteration() const;

  /// I/O: one chunk of text in; per-pattern 8-byte counters out.
  rcsim::IterationIo io() const;

  std::vector<core::ResourceItem> resource_items() const;

  /// Worksheet for this design: one operation = one character comparison;
  /// every lane compares its full pattern window each cycle, so
  /// ops/element = total pattern characters and throughput_proc equals the
  /// same (all comparators fire in parallel, one element per cycle).
  core::RatInputs rat_inputs(double tsoft_sec, std::size_t n_iterations,
                             const core::CommunicationParams& comm) const;

 private:
  StrMatchConfig cfg_;
};

}  // namespace rat::apps
