#include "apps/convolution.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace rat::apps {

void ConvConfig::validate() const {
  if (width == 0 || height == 0)
    throw std::invalid_argument("ConvConfig: empty frame");
  if (kernel_size == 0 || kernel_size % 2 == 0)
    throw std::invalid_argument("ConvConfig: kernel_size must be odd");
  if (kernel_size > width || kernel_size > height)
    throw std::invalid_argument("ConvConfig: kernel larger than frame");
  if (bytes_per_pixel <= 0.0)
    throw std::invalid_argument("ConvConfig: bytes_per_pixel <= 0");
}

Image synthetic_frame(const ConvConfig& cfg, std::uint64_t seed) {
  cfg.validate();
  util::Rng rng(seed);
  Image img(cfg.pixels());
  const double w = static_cast<double>(cfg.width);
  const double h = static_cast<double>(cfg.height);
  // A few soft blobs on a diagonal gradient plus mild noise.
  struct Blob {
    double cx, cy, r, amp;
  };
  std::vector<Blob> blobs;
  for (int b = 0; b < 4; ++b)
    blobs.push_back({rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
                     rng.uniform(0.05, 0.2), rng.uniform(0.2, 0.5)});
  for (std::size_t y = 0; y < cfg.height; ++y) {
    for (std::size_t x = 0; x < cfg.width; ++x) {
      const double u = static_cast<double>(x) / w;
      const double v = static_cast<double>(y) / h;
      double val = 0.15 + 0.3 * (u + v) / 2.0;
      for (const auto& blob : blobs) {
        const double d2 = (u - blob.cx) * (u - blob.cx) +
                          (v - blob.cy) * (v - blob.cy);
        val += blob.amp * std::exp(-d2 / (blob.r * blob.r));
      }
      val += rng.uniform(-0.02, 0.02);
      img[y * cfg.width + x] = std::clamp(val, 0.0, 0.999);
    }
  }
  return img;
}

std::vector<double> box_kernel(std::size_t k) {
  if (k == 0 || k % 2 == 0)
    throw std::invalid_argument("box_kernel: k must be odd");
  return std::vector<double>(k * k, 1.0 / static_cast<double>(k * k));
}

std::vector<double> gaussian_kernel(std::size_t k) {
  if (k == 0 || k % 2 == 0)
    throw std::invalid_argument("gaussian_kernel: k must be odd");
  const double sigma = static_cast<double>(k) / 5.0;
  const auto c = static_cast<std::ptrdiff_t>(k / 2);
  std::vector<double> out(k * k);
  double sum = 0.0;
  for (std::ptrdiff_t dy = -c; dy <= c; ++dy) {
    for (std::ptrdiff_t dx = -c; dx <= c; ++dx) {
      const double val = std::exp(
          -static_cast<double>(dx * dx + dy * dy) / (2.0 * sigma * sigma));
      out[static_cast<std::size_t>(dy + c) * k +
          static_cast<std::size_t>(dx + c)] = val;
      sum += val;
    }
  }
  for (double& v : out) v /= sum;
  return out;
}

std::vector<double> identity_kernel(std::size_t k) {
  if (k == 0 || k % 2 == 0)
    throw std::invalid_argument("identity_kernel: k must be odd");
  std::vector<double> out(k * k, 0.0);
  out[(k / 2) * k + k / 2] = 1.0;
  return out;
}

namespace {

Image convolve_impl(const Image& image, std::span<const double> kernel,
                    const ConvConfig& cfg, OpCounter* ops) {
  cfg.validate();
  if (image.size() != cfg.pixels())
    throw std::invalid_argument("convolve2d: image size mismatch");
  const std::size_t k = cfg.kernel_size;
  if (kernel.size() != k * k)
    throw std::invalid_argument("convolve2d: kernel size mismatch");
  const auto c = static_cast<std::ptrdiff_t>(k / 2);
  const auto w = static_cast<std::ptrdiff_t>(cfg.width);
  const auto h = static_cast<std::ptrdiff_t>(cfg.height);

  Image out(cfg.pixels(), 0.0);
  for (std::ptrdiff_t y = 0; y < h; ++y) {
    for (std::ptrdiff_t x = 0; x < w; ++x) {
      double acc = 0.0;
      for (std::ptrdiff_t dy = -c; dy <= c; ++dy) {
        const std::ptrdiff_t yy = y + dy;
        for (std::ptrdiff_t dx = -c; dx <= c; ++dx) {
          const std::ptrdiff_t xx = x + dx;
          double pixel = 0.0;  // zero padding outside the frame
          if (yy >= 0 && yy < h && xx >= 0 && xx < w)
            pixel = image[static_cast<std::size_t>(yy * w + xx)];
          acc += pixel * kernel[static_cast<std::size_t>(
                             (dy + c) * static_cast<std::ptrdiff_t>(k) +
                             (dx + c))];
          if (ops) {
            ++ops->muls;
            ++ops->adds;
          }
        }
      }
      out[static_cast<std::size_t>(y * w + x)] = acc;
    }
  }
  return out;
}

}  // namespace

Image convolve2d(const Image& image, std::span<const double> kernel,
                 const ConvConfig& cfg) {
  return convolve_impl(image, kernel, cfg, nullptr);
}

Image convolve2d_counted(const Image& image, std::span<const double> kernel,
                         const ConvConfig& cfg, OpCounter& ops) {
  return convolve_impl(image, kernel, cfg, &ops);
}

std::vector<double> gaussian_factor(std::size_t k) {
  if (k == 0 || k % 2 == 0)
    throw std::invalid_argument("gaussian_factor: k must be odd");
  const double sigma = static_cast<double>(k) / 5.0;
  const auto c = static_cast<std::ptrdiff_t>(k / 2);
  std::vector<double> out(k);
  double sum = 0.0;
  for (std::ptrdiff_t d = -c; d <= c; ++d) {
    const double val =
        std::exp(-static_cast<double>(d * d) / (2.0 * sigma * sigma));
    out[static_cast<std::size_t>(d + c)] = val;
    sum += val;
  }
  for (double& v : out) v /= sum;
  return out;
}

Image convolve2d_separable(const Image& image, std::span<const double> col,
                           std::span<const double> row,
                           const ConvConfig& cfg) {
  cfg.validate();
  if (image.size() != cfg.pixels())
    throw std::invalid_argument("convolve2d_separable: image size mismatch");
  const std::size_t k = cfg.kernel_size;
  if (col.size() != k || row.size() != k)
    throw std::invalid_argument("convolve2d_separable: factor size mismatch");
  const auto c = static_cast<std::ptrdiff_t>(k / 2);
  const auto w = static_cast<std::ptrdiff_t>(cfg.width);
  const auto h = static_cast<std::ptrdiff_t>(cfg.height);

  // Horizontal pass (row factor), then vertical pass (column factor);
  // zero padding in both, which composes to the 2-D zero-padded result
  // for outer-product kernels.
  Image mid(cfg.pixels(), 0.0);
  for (std::ptrdiff_t y = 0; y < h; ++y) {
    for (std::ptrdiff_t x = 0; x < w; ++x) {
      double acc = 0.0;
      for (std::ptrdiff_t dx = -c; dx <= c; ++dx) {
        const std::ptrdiff_t xx = x + dx;
        if (xx < 0 || xx >= w) continue;
        acc += image[static_cast<std::size_t>(y * w + xx)] *
               row[static_cast<std::size_t>(dx + c)];
      }
      mid[static_cast<std::size_t>(y * w + x)] = acc;
    }
  }
  Image out(cfg.pixels(), 0.0);
  for (std::ptrdiff_t y = 0; y < h; ++y) {
    for (std::ptrdiff_t x = 0; x < w; ++x) {
      double acc = 0.0;
      for (std::ptrdiff_t dy = -c; dy <= c; ++dy) {
        const std::ptrdiff_t yy = y + dy;
        if (yy < 0 || yy >= h) continue;
        acc += mid[static_cast<std::size_t>(yy * w + x)] *
               col[static_cast<std::size_t>(dy + c)];
      }
      out[static_cast<std::size_t>(y * w + x)] = acc;
    }
  }
  return out;
}

ConvDesign::ConvDesign(ConvConfig cfg, fx::Format format)
    : cfg_(cfg), format_(format) {
  cfg_.validate();
  format_.validate();
  if (format_.int_bits() < 1)
    throw std::invalid_argument(
        "ConvDesign: format needs >= 1 integer bit (kernel sums can "
        "exceed 1)");
}

rcsim::PipelineSpec ConvDesign::pipeline_spec() const {
  rcsim::PipelineSpec spec;
  spec.name = "conv2d";
  // One pixel per cycle in steady state; the window fills after K/2 rows
  // plus K/2 pixels, and each row restart costs the K/2 edge bubble.
  spec.depth = (cfg_.kernel_size / 2) * cfg_.width + cfg_.kernel_size / 2;
  spec.initiation_interval = 1.0;
  spec.stall_per_item = 0.0;
  spec.instances = 1;
  spec.ops_per_item =
      2.0 * static_cast<double>(cfg_.kernel_size * cfg_.kernel_size);
  return spec;
}

std::uint64_t ConvDesign::cycles_per_iteration() const {
  return rcsim::pipeline_cycles(pipeline_spec(), cfg_.pixels());
}

Image ConvDesign::convolve(const Image& image,
                           std::span<const double> kernel) const {
  return convolve_with_format(image, kernel, format_);
}

Image ConvDesign::convolve_with_format(const Image& image,
                                       std::span<const double> kernel,
                                       fx::Format fmt) const {
  cfg_.validate();
  fmt.validate();
  if (image.size() != cfg_.pixels())
    throw std::invalid_argument("ConvDesign::convolve: image size mismatch");
  const std::size_t k = cfg_.kernel_size;
  if (kernel.size() != k * k)
    throw std::invalid_argument("ConvDesign::convolve: kernel mismatch");

  std::vector<fx::Fixed> kq;
  kq.reserve(kernel.size());
  for (double v : kernel) kq.push_back(fx::Fixed::from_double(v, fmt));
  std::vector<fx::Fixed> iq;
  iq.reserve(image.size());
  for (double v : image) iq.push_back(fx::Fixed::from_double(v, fmt));

  const fx::Format acc_fmt{48, fmt.frac_bits, true};
  const auto rnd = fx::Rounding::kTruncate;
  const auto c = static_cast<std::ptrdiff_t>(k / 2);
  const auto w = static_cast<std::ptrdiff_t>(cfg_.width);
  const auto h = static_cast<std::ptrdiff_t>(cfg_.height);
  const fx::Fixed zero(fmt);

  Image out(cfg_.pixels(), 0.0);
  for (std::ptrdiff_t y = 0; y < h; ++y) {
    for (std::ptrdiff_t x = 0; x < w; ++x) {
      fx::Fixed acc(acc_fmt);
      for (std::ptrdiff_t dy = -c; dy <= c; ++dy) {
        const std::ptrdiff_t yy = y + dy;
        for (std::ptrdiff_t dx = -c; dx <= c; ++dx) {
          const std::ptrdiff_t xx = x + dx;
          const fx::Fixed& pixel =
              (yy >= 0 && yy < h && xx >= 0 && xx < w)
                  ? iq[static_cast<std::size_t>(yy * w + xx)]
                  : zero;
          const fx::Fixed tap = kq[static_cast<std::size_t>(
              (dy + c) * static_cast<std::ptrdiff_t>(k) + (dx + c))];
          // The MAC accumulates the full product (no narrowing inside).
          acc = fx::Fixed::add(acc, fx::Fixed::mul(pixel, tap, acc_fmt, rnd),
                               acc_fmt, rnd);
        }
      }
      out[static_cast<std::size_t>(y * w + x)] = acc.to_double();
    }
  }
  return out;
}

rcsim::IterationIo ConvDesign::io() const {
  rcsim::IterationIo io;
  const auto frame_bytes = static_cast<std::size_t>(
      static_cast<double>(cfg_.pixels()) * cfg_.bytes_per_pixel);
  io.input_chunks_bytes = {frame_bytes};
  io.output_chunks_bytes = {frame_bytes};
  return io;
}

std::vector<core::ResourceItem> ConvDesign::resource_items() const {
  const std::size_t k = cfg_.kernel_size;
  std::vector<core::ResourceItem> items;
  items.push_back(core::ResourceItem{
      "MAC array", static_cast<int>(k * k), format_.total_bits, 0,
      static_cast<std::int64_t>(30 * k * k), 1});
  items.push_back(core::ResourceItem{
      "line buffers", 0, format_.total_bits,
      static_cast<std::int64_t>(
          static_cast<double>((k - 1) * cfg_.width) * cfg_.bytes_per_pixel),
      static_cast<std::int64_t>(40 * (k - 1)), 1});
  items.push_back(core::ResourceItem{
      "frame I/O buffers", 0, format_.total_bits,
      static_cast<std::int64_t>(8192), 500, 1});
  items.push_back(core::ResourceItem{"vendor wrapper", 0,
                                     format_.total_bits, 64 * 1024, 2400,
                                     1});
  return items;
}

core::RatInputs ConvDesign::rat_inputs(
    double tsoft_sec, std::size_t n_iterations,
    const core::CommunicationParams& comm) const {
  core::RatInputs in;
  in.name = "2-D convolution (" + std::to_string(cfg_.kernel_size) + "x" +
            std::to_string(cfg_.kernel_size) + " systolic window)";
  in.dataset.elements_in = cfg_.pixels();
  in.dataset.elements_out = cfg_.pixels();
  in.dataset.bytes_per_element = cfg_.bytes_per_pixel;
  in.comm = comm;
  const double taps =
      static_cast<double>(cfg_.kernel_size * cfg_.kernel_size);
  in.comp.ops_per_element = 2.0 * taps;
  in.comp.throughput_ops_per_cycle = 2.0 * taps * 0.9;  // row-edge derate
  in.comp.fclock_hz = {100e6, 150e6, 200e6};
  in.software.tsoft_sec = tsoft_sec;
  in.software.n_iterations = n_iterations;
  return in;
}

}  // namespace rat::apps
