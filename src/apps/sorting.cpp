#include "apps/sorting.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace rat::apps {

void SortConfig::validate() const {
  if (block < 2 || !std::has_single_bit(block))
    throw std::invalid_argument("SortConfig: block must be a power of two >= 2");
  if (comparators == 0 || comparators > block / 2)
    throw std::invalid_argument(
        "SortConfig: comparators must be in [1, block/2]");
}

std::size_t SortConfig::stages() const {
  const auto k = static_cast<std::size_t>(std::countr_zero(block));
  return k * (k + 1) / 2;
}

std::uint64_t SortConfig::exchanges_per_block() const {
  return static_cast<std::uint64_t>(stages()) * (block / 2);
}

void merge_sort(std::span<std::uint32_t> data, OpCounter* ops) {
  if (data.size() < 2) return;
  std::vector<std::uint32_t> buffer(data.size());
  // Bottom-up: merge runs of width 1, 2, 4, ...
  std::uint32_t* src = data.data();
  std::uint32_t* dst = buffer.data();
  const std::size_t n = data.size();
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        if (ops) ++ops->compares;
        dst[k++] = src[i] <= src[j] ? src[i++] : src[j++];
      }
      while (i < mid) dst[k++] = src[i++];
      while (j < hi) dst[k++] = src[j++];
    }
    std::swap(src, dst);
  }
  if (src != data.data())
    std::copy(src, src + n, data.data());
}

void bitonic_sort_block(std::span<std::uint32_t> block, const SortConfig& cfg,
                        OpCounter* ops) {
  cfg.validate();
  if (block.size() != cfg.block)
    throw std::invalid_argument("bitonic_sort_block: size != cfg.block");
  const std::size_t n = block.size();
  // Standard iterative bitonic network: exactly the compare-exchange
  // schedule the hardware wires up.
  for (std::size_t k = 2; k <= n; k *= 2) {
    for (std::size_t j = k / 2; j > 0; j /= 2) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t partner = i ^ j;
        if (partner <= i) continue;  // each exchange handled once
        const bool ascending = (i & k) == 0;
        const bool out_of_order = ascending ? block[i] > block[partner]
                                            : block[i] < block[partner];
        if (ops) ++ops->compares;
        if (out_of_order) std::swap(block[i], block[partner]);
      }
    }
  }
}

std::vector<std::uint32_t> hybrid_sort(std::span<const std::uint32_t> data,
                                       const SortConfig& cfg) {
  cfg.validate();
  std::vector<std::uint32_t> out(data.begin(), data.end());
  // Pad the tail block with max keys so the network sees full blocks.
  const std::size_t padded =
      (out.size() + cfg.block - 1) / cfg.block * cfg.block;
  out.resize(padded, std::numeric_limits<std::uint32_t>::max());

  for (std::size_t lo = 0; lo < out.size(); lo += cfg.block)
    bitonic_sort_block(std::span(out).subspan(lo, cfg.block), cfg);

  // Host-side merge of the sorted blocks (what the CPU does while the
  // FPGA streams the next blocks).
  for (std::size_t width = cfg.block; width < out.size(); width *= 2) {
    for (std::size_t lo = 0; lo + width < out.size(); lo += 2 * width) {
      const auto mid = out.begin() + static_cast<std::ptrdiff_t>(lo + width);
      const auto hi = out.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(lo + 2 * width, out.size()));
      std::inplace_merge(out.begin() + static_cast<std::ptrdiff_t>(lo), mid,
                         hi);
    }
  }
  out.resize(data.size());
  return out;
}

std::vector<std::uint32_t> random_keys(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint32_t> out(n);
  for (auto& x : out) x = static_cast<std::uint32_t>(rng.next_u64());
  return out;
}

SortDesign::SortDesign(SortConfig cfg) : cfg_(cfg) { cfg_.validate(); }

std::uint64_t SortDesign::cycles_per_iteration() const {
  const std::uint64_t per_stage =
      (cfg_.block / 2 + cfg_.comparators - 1) / cfg_.comparators;
  // +block/2 drain: the last stage's results stream out half-width.
  return static_cast<std::uint64_t>(cfg_.stages()) * per_stage +
         cfg_.block / 2;
}

rcsim::IterationIo SortDesign::io() const {
  rcsim::IterationIo io;
  io.input_chunks_bytes = {cfg_.block * 4};
  io.output_chunks_bytes = {cfg_.block * 4};
  return io;
}

std::vector<core::ResourceItem> SortDesign::resource_items() const {
  std::vector<core::ResourceItem> items;
  // A 32-bit compare-exchange unit is ~40 logic elements (comparator +
  // two muxes); the permutation network needs block-deep buffering.
  items.push_back(core::ResourceItem{
      "compare-exchange units", 0, 32, 0,
      static_cast<std::int64_t>(40 * cfg_.comparators), 1});
  items.push_back(core::ResourceItem{
      "stage buffers (double)", 0, 32,
      static_cast<std::int64_t>(4 * cfg_.block * 4), 500, 1});
  items.push_back(core::ResourceItem{"vendor wrapper", 0, 32, 64 * 1024,
                                     2400, 1});
  return items;
}

core::RatInputs SortDesign::rat_inputs(
    double tsoft_sec, std::size_t n_iterations,
    const core::CommunicationParams& comm) const {
  core::RatInputs in;
  in.name = "block sorting (bitonic network)";
  in.dataset.elements_in = cfg_.block;
  in.dataset.elements_out = cfg_.block;
  in.dataset.bytes_per_element = 4.0;
  in.comm = comm;
  // One operation = one compare-exchange. Each element participates in
  // `stages` exchanges shared between two elements: stages/2 per element.
  in.comp.ops_per_element = static_cast<double>(cfg_.stages()) / 2.0;
  in.comp.throughput_ops_per_cycle = static_cast<double>(cfg_.comparators);
  in.comp.fclock_hz = {75e6, 100e6, 150e6};
  in.software.tsoft_sec = tsoft_sec;
  in.software.n_iterations = n_iterations;
  return in;
}

}  // namespace rat::apps
