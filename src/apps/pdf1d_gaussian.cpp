#include "apps/pdf1d_gaussian.hpp"

#include <cmath>
#include <stdexcept>

namespace rat::apps {

namespace {

/// The LUT stores g(u) = exp(-u / 2) for u = (d/h)^2 in [0, cutoff^2);
/// beyond ~3 bandwidths the kernel is treated as zero, as hardware would.
constexpr double kCutoffSquared = 9.0;

std::shared_ptr<const fx::FunctionLut> build_lut(const fx::Format& fmt,
                                                 int index_bits) {
  return std::make_shared<const fx::FunctionLut>(
      [](double u) { return std::exp(-u / 2.0); }, 0.0, kCutoffSquared,
      index_bits, fmt, fmt, /*interpolate=*/true);
}

}  // namespace

Pdf1dGaussianDesign::Pdf1dGaussianDesign(Pdf1dConfig cfg,
                                         std::size_t n_pipelines,
                                         fx::Format format,
                                         int lut_index_bits)
    : cfg_(cfg),
      n_pipelines_(n_pipelines),
      format_(format),
      lut_index_bits_(lut_index_bits),
      lut_(build_lut(format, lut_index_bits)) {
  cfg_.validate();
  format_.validate();
  if (n_pipelines_ == 0 || cfg_.n_bins % n_pipelines_ != 0)
    throw std::invalid_argument(
        "Pdf1dGaussianDesign: n_bins must be a positive multiple of "
        "n_pipelines");
}

double Pdf1dGaussianDesign::ops_per_element() const {
  // sub, square, table lookup, interpolation multiply, accumulate.
  return 5.0 * static_cast<double>(cfg_.n_bins);
}

rcsim::PipelineSpec Pdf1dGaussianDesign::pipeline_spec() const {
  rcsim::PipelineSpec spec;
  spec.name = "pdf1d-gaussian";
  // The BRAM read + interpolate lengthens each bin update to 3 cycles of
  // initiation interval (read, multiply, accumulate share ports).
  spec.depth = 80;
  spec.initiation_interval =
      3.0 * static_cast<double>(cfg_.n_bins / n_pipelines_);
  spec.stall_per_item = 9.0;
  spec.instances = 1;
  spec.ops_per_item = ops_per_element();
  return spec;
}

std::uint64_t Pdf1dGaussianDesign::cycles_per_iteration() const {
  return rcsim::pipeline_cycles(pipeline_spec(), cfg_.batch);
}

std::vector<double> Pdf1dGaussianDesign::estimate(
    std::span<const double> samples) const {
  return estimate_with_format(samples, format_);
}

std::vector<double> Pdf1dGaussianDesign::estimate_with_format(
    std::span<const double> samples, fx::Format fmt) const {
  if (samples.empty())
    throw std::invalid_argument("Pdf1dGaussianDesign::estimate: no samples");
  fmt.validate();
  const fx::FunctionLut lut_local =
      fmt == format_
          ? *lut_
          : fx::FunctionLut([](double u) { return std::exp(-u / 2.0); },
                            0.0, kCutoffSquared, lut_index_bits_, fmt, fmt,
                            true);
  const double h = cfg_.bandwidth;
  // u = (d/h)^2 scaled into the LUT domain: the datapath computes d^2 and
  // multiplies by the constant 1/h^2 (folded into one of the two MACs).
  const double inv_h2 = 1.0 / (h * h);
  const fx::Format acc_fmt{48, fmt.frac_bits, true};
  const auto rnd = fx::Rounding::kTruncate;

  std::vector<fx::Fixed> acc(cfg_.n_bins, fx::Fixed(acc_fmt));
  for (double x : samples) {
    for (std::size_t j = 0; j < cfg_.n_bins; ++j) {
      const double d = cfg_.bin_center(j) - x;
      const double u = d * d * inv_h2;
      if (u >= kCutoffSquared) continue;  // beyond the table: zero weight
      // Quantize u as the fixed datapath would before the table access.
      // The LUT domain spans [0,9): give it 3 integer bits.
      const fx::Format u_fmt{fmt.total_bits,
                             std::max(0, fmt.total_bits - 1 - 4), true};
      const fx::Fixed u_fx = fx::Fixed::from_double(u, u_fmt, rnd);
      const fx::Fixed w = lut_local.evaluate(u_fx);
      acc[j] = fx::Fixed::add(acc[j], w, acc_fmt, rnd);
    }
  }
  const double norm =
      1.0 / (static_cast<double>(samples.size()) * h * std::sqrt(2.0 * M_PI));
  std::vector<double> out;
  out.reserve(cfg_.n_bins);
  for (const auto& a : acc) out.push_back(a.to_double() * norm);
  return out;
}

std::vector<core::ResourceItem> Pdf1dGaussianDesign::resource_items() const {
  const int mult_bits = format_.total_bits;
  std::vector<core::ResourceItem> items;
  // Two multipliers per pipeline: d^2 and the LUT interpolation.
  items.push_back(core::ResourceItem{
      "pipeline MACs (square + interpolate)", 2, mult_bits, 0, 520,
      static_cast<int>(n_pipelines_)});
  // One LUT per pipeline (each needs its own read port every cycle).
  items.push_back(core::ResourceItem{
      "Gaussian LUTs", 0, mult_bits, lut_->storage_bytes(), 60,
      static_cast<int>(n_pipelines_)});
  items.push_back(core::ResourceItem{
      "I/O buffers", 0, mult_bits,
      static_cast<std::int64_t>(2 * cfg_.batch * 4 + cfg_.n_bins * 4), 600,
      1});
  items.push_back(core::ResourceItem{
      "bin accumulators", 0, mult_bits,
      static_cast<std::int64_t>(cfg_.n_bins * 6), 300, 1});
  items.push_back(core::ResourceItem{"vendor wrapper", 0, mult_bits,
                                     64 * 1024, 2400, 1});
  return items;
}

core::RatInputs Pdf1dGaussianDesign::rat_inputs() const {
  core::RatInputs in = core::pdf1d_inputs();
  in.name = "1-D PDF estimation (Gaussian LUT variant)";
  in.comp.ops_per_element = ops_per_element();
  // 5 ops per bin at 3 cycles per bin per pipeline, 8 pipelines, derated
  // ~17% like the shipped design: 8 * 5/3 * 0.83 ~ 11.
  in.comp.throughput_ops_per_cycle =
      static_cast<double>(n_pipelines_) * (5.0 / 3.0) * 0.83;
  return in;
}

}  // namespace rat::apps
