// Molecular dynamics (paper §5.2).
//
// Lennard-Jones particle simulation with a distance cutoff and
// velocity-Verlet integration, adapted in spirit from the ORNL code the
// paper used: distant molecules are assumed to have negligible interaction
// and are skipped, which makes the per-molecule work *data dependent* —
// exactly the property that made RAT's computation parameters a tuning
// exercise rather than a measurement (the paper solved throughput_proc=50
// backwards from a 10x speedup goal).
//
// The hardware design is a 4-lane force-pipeline array (Impulse-C in the
// paper, so the functional model runs in single-precision float rather
// than fixed point). Its cycle count is computed from the *actual*
// interaction counts of the dataset, so the simulated "measured" time
// falls short of the tuned worksheet exactly as the real system did
// (~30 effective ops/cycle versus the tuned 50).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/opcount.hpp"
#include "apps/workload.hpp"
#include "core/parameters.hpp"
#include "core/resources.hpp"
#include "rcsim/executor.hpp"

namespace rat::apps {

struct MdConfig {
  double cutoff = 0.34;       ///< interaction cutoff, in box units
  double epsilon = 1.0;       ///< LJ well depth
  double sigma_lj = 0.03;     ///< LJ length scale
  double dt = 1e-5;           ///< integration timestep
  bool periodic = true;       ///< minimum-image periodic boundaries

  void validate() const;
};

/// Result of one force evaluation.
struct ForceResult {
  double potential_energy = 0.0;
  std::uint64_t pairs_checked = 0;
  std::uint64_t interactions = 0;  ///< pairs within cutoff
};

/// Double-precision all-pairs force computation with cutoff; fills
/// sys.ax/ay/az. The software baseline (tsoft path).
ForceResult compute_forces(ParticleSystem& sys, const MdConfig& cfg);

/// Instrumented variant tallying arithmetic per the OpCounter scope.
ForceResult compute_forces_counted(ParticleSystem& sys, const MdConfig& cfg,
                                   OpCounter& ops);

/// Single-precision variant — the functional model of the Impulse-C
/// hardware (HLL designs kept 32-bit floats; Table 8's 36 bytes/element is
/// 9 floats per molecule).
ForceResult compute_forces_f32(ParticleSystem& sys, const MdConfig& cfg);

/// Cell-list accelerated force computation: identical physics and
/// identical interaction set to compute_forces, O(N) for fixed density.
/// Falls back to the all-pairs loop when the box holds fewer than 3 cells
/// per dimension (the neighborhood would alias through the periodic
/// images). This is the production-shaped software baseline an ORNL-style
/// code would really use; the all-pairs loop remains as the oracle.
ForceResult compute_forces_celllist(ParticleSystem& sys, const MdConfig& cfg);

/// One velocity-Verlet step (uses compute_forces).
/// Returns the force result of the end-of-step evaluation.
ForceResult velocity_verlet_step(ParticleSystem& sys, const MdConfig& cfg);

/// Total kinetic energy (for conservation tests).
double kinetic_energy(const ParticleSystem& sys);

/// Instantaneous kinetic temperature: 2 KE / (3 N) in reduced units
/// (k_B = 1, unit mass).
double temperature(const ParticleSystem& sys);

/// Net momentum magnitude (should stay ~0: forces are pairwise equal and
/// opposite and the integrator preserves the total).
double net_momentum(const ParticleSystem& sys);

/// Measured ops per element (molecule) from the instrumented software —
/// the "software legacy code analysis" path for deriving Nops/element.
/// Uses weighted div/sqrt counts (they are iterative units in hardware).
double md_measured_ops_per_element(const ParticleSystem& sys,
                                   const MdConfig& cfg);

/// Hardware design model: a lane-parallel force pipeline array fed by an
/// on-chip candidate prefilter.
class MdDesign {
 public:
  explicit MdDesign(MdConfig cfg = {}, int lanes = 4);

  const MdConfig& config() const { return cfg_; }
  int lanes() const { return lanes_; }

  /// Data-dependent cycle count for one full force evaluation + update of
  /// @p sys: the prefilter emits ~candidate_ratio x (in-cutoff pairs)
  /// candidates; each miss costs 1 lane-cycle, each hit occupies a lane's
  /// force pipeline for cycles_per_hit (the Impulse-C inner loop is not
  /// fully pipelined).
  std::uint64_t cycles_for(const ParticleSystem& sys) const;

  /// Same, from a precomputed interaction count (avoids the O(N^2) pass).
  std::uint64_t cycles_from_counts(std::uint64_t interactions,
                                   std::size_t n_molecules) const;

  /// I/O: the whole dataset in and out once (Niter = 1).
  rcsim::IterationIo io(std::size_t n_molecules) const;

  std::vector<core::ResourceItem> resource_items() const;
  core::RatInputs rat_inputs() const { return core::md_inputs(); }

  // Timing-model knobs (fixed by calibration; see DESIGN.md).
  double candidate_ratio() const { return candidate_ratio_; }
  int cycles_per_hit() const { return cycles_per_hit_; }
  int cycles_per_miss() const { return cycles_per_miss_; }
  int per_molecule_overhead() const { return per_molecule_overhead_; }

 private:
  MdConfig cfg_;
  int lanes_;
  double candidate_ratio_ = 2.0;
  int cycles_per_hit_ = 7;
  int cycles_per_miss_ = 1;
  int per_molecule_overhead_ = 10;
};

}  // namespace rat::apps
