#include "apps/hw_run.hpp"

namespace rat::apps {

SimulatedRun simulate_on_platform(const rcsim::Workload& workload,
                                  const rcsim::Platform& platform,
                                  double fclock_hz, rcsim::Buffering buffering,
                                  double tsoft_sec) {
  rcsim::ExecutionConfig cfg;
  cfg.buffering = buffering;
  cfg.fclock_hz = fclock_hz;
  cfg.host_sync_sec = platform.host_sync_sec;
  SimulatedRun run;
  run.exec = rcsim::execute(workload, platform.link, cfg);
  run.measured = core::measured_from_totals(
      fclock_hz, run.exec.t_comm_sec, run.exec.t_comp_sec,
      run.exec.t_total_sec, workload.n_iterations, tsoft_sec);
  return run;
}

}  // namespace rat::apps
