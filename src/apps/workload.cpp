#include "apps/workload.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace rat::apps {

std::vector<MixtureComponent> default_mixture_1d() {
  return {{0.3, 0.06, 0.6}, {0.7, 0.10, 0.4}};
}

std::vector<double> gaussian_mixture_1d(
    std::size_t n, const std::vector<MixtureComponent>& mix,
    std::uint64_t seed) {
  if (mix.empty())
    throw std::invalid_argument("gaussian_mixture_1d: empty mixture");
  double total_weight = 0.0;
  for (const auto& c : mix) total_weight += c.weight;
  if (total_weight <= 0.0)
    throw std::invalid_argument("gaussian_mixture_1d: non-positive weights");

  util::Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  while (out.size() < n) {
    // Pick a component by weight, then draw; resample outside [0,1).
    double u = rng.uniform() * total_weight;
    std::size_t k = 0;
    for (; k + 1 < mix.size(); ++k) {
      if (u < mix[k].weight) break;
      u -= mix[k].weight;
    }
    const double x = rng.normal(mix[k].mean, mix[k].sigma);
    if (x >= 0.0 && x < 1.0) out.push_back(x);
  }
  return out;
}

std::vector<std::array<double, 2>> gaussian_mixture_2d(std::size_t n,
                                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::array<double, 2>> out;
  out.reserve(n);
  // Two anisotropic blobs rotated 30 degrees: correlated, non-separable.
  const double c = std::cos(M_PI / 6.0), s = std::sin(M_PI / 6.0);
  while (out.size() < n) {
    const bool first = rng.uniform() < 0.55;
    const double mx = first ? 0.35 : 0.65;
    const double my = first ? 0.40 : 0.62;
    const double u = rng.normal(0.0, first ? 0.10 : 0.06);
    const double v = rng.normal(0.0, first ? 0.04 : 0.08);
    const double x = mx + c * u - s * v;
    const double y = my + s * u + c * v;
    if (x >= 0.0 && x < 1.0 && y >= 0.0 && y < 1.0) out.push_back({x, y});
  }
  return out;
}

ParticleSystem particle_box(std::size_t n, double box_length,
                            double temperature, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("particle_box: n == 0");
  if (box_length <= 0.0 || temperature < 0.0)
    throw std::invalid_argument("particle_box: bad box/temperature");
  util::Rng rng(seed);
  ParticleSystem sys;
  sys.box_length = box_length;
  auto reserve = [&](std::vector<double>& v) { v.resize(n); };
  reserve(sys.px); reserve(sys.py); reserve(sys.pz);
  reserve(sys.vx); reserve(sys.vy); reserve(sys.vz);
  reserve(sys.ax); reserve(sys.ay); reserve(sys.az);
  const double vth = std::sqrt(temperature);
  for (std::size_t i = 0; i < n; ++i) {
    sys.px[i] = rng.uniform(0.0, box_length);
    sys.py[i] = rng.uniform(0.0, box_length);
    sys.pz[i] = rng.uniform(0.0, box_length);
    sys.vx[i] = rng.normal(0.0, vth);
    sys.vy[i] = rng.normal(0.0, vth);
    sys.vz[i] = rng.normal(0.0, vth);
    sys.ax[i] = sys.ay[i] = sys.az[i] = 0.0;
  }
  return sys;
}

}  // namespace rat::apps
