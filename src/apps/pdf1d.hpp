// 1-D probability density function estimation (paper §4).
//
// The Parzen-window estimator: every sample contributes a kernel bump at
// every discrete probability level ("bin"); the PDF estimate is the
// normalized accumulation over all samples. Two kernels are provided:
//
//  * kGaussian   — the classical smooth kernel (software reference for
//    quality comparisons and the tsoft baseline).
//  * kQuadratic  — the Epanechnikov kernel max(0, h^2 - d^2), whose bin
//    update is exactly the paper's "3 operations: comparison (subtraction),
//    multiplication, and addition" (§4.2) and therefore the form the
//    hardware design implements.
//
// The hardware design (Fig. 3) streams batches of 512 samples through 8
// parallel pipelines, each owning 32 of the 256 bins, with 18-bit
// fixed-point arithmetic and one 18x18 MAC per pipeline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/opcount.hpp"
#include "core/parameters.hpp"
#include "core/resources.hpp"
#include "fixedpoint/error_analysis.hpp"
#include "rcsim/executor.hpp"
#include "rcsim/pipeline.hpp"

namespace rat::apps {

struct Pdf1dConfig {
  std::size_t n_bins = 256;
  double bandwidth = 0.05;  ///< Parzen window half-width h
  std::size_t batch = 512;  ///< elements per FPGA iteration

  void validate() const;
  /// Bin center j: (j + 0.5) / n_bins.
  double bin_center(std::size_t j) const;
};

/// Software reference, Gaussian kernel, normalized so the estimate
/// integrates to ~1 over [0,1).
std::vector<double> estimate_pdf1d_gaussian(std::span<const double> samples,
                                            const Pdf1dConfig& cfg);

/// Software reference, quadratic (Epanechnikov) kernel — the functional
/// specification of the hardware design.
std::vector<double> estimate_pdf1d_quadratic(std::span<const double> samples,
                                             const Pdf1dConfig& cfg);

/// Instrumented quadratic estimator: tallies the inner-loop arithmetic so
/// ops_per_element can be derived from the code (3 * n_bins per element).
std::vector<double> estimate_pdf1d_quadratic_counted(
    std::span<const double> samples, const Pdf1dConfig& cfg, OpCounter& ops);

/// Derived Nops/element for the RAT worksheet (= 3 * n_bins).
double pdf1d_ops_per_element(const Pdf1dConfig& cfg);

/// The hardware design of Fig. 3: timing model, functional fixed-point
/// model, I/O pattern and resource demand.
class Pdf1dDesign {
 public:
  explicit Pdf1dDesign(Pdf1dConfig cfg = {}, std::size_t n_pipelines = 8,
                       fx::Format format = fx::Format{18, 17, true});

  const Pdf1dConfig& config() const { return cfg_; }
  std::size_t n_pipelines() const { return n_pipelines_; }
  const fx::Format& format() const { return format_; }

  /// Cycle model: each pipeline evaluates one element against one of its
  /// bins per cycle (II = bins/pipelines per element), with a handshake
  /// stall between elements and a fill latency per batch. These are the
  /// "latency and pipeline stalls" that made the authors derate 24 ops/cyc
  /// to 20 (§4.3).
  rcsim::PipelineSpec pipeline_spec() const;
  std::uint64_t cycles_per_iteration() const;
  double ideal_ops_per_cycle() const;  ///< 3 ops x n_pipelines (= 24)

  /// I/O per iteration: one input batch (batch * 4 B), a 4-byte status
  /// read every iteration, plus the final result drain on the last one.
  rcsim::IterationIo io(std::size_t iter, std::size_t n_iterations) const;

  /// Full-run fixed-point estimate (functional model of the VHDL design):
  /// processes samples in batches, accumulating in a 48-bit MAC register
  /// per bin, truncating like the hardware. Returns the normalized PDF.
  std::vector<double> estimate(std::span<const double> samples) const;

  /// Same, with the working format overridden (for the precision sweep).
  std::vector<double> estimate_with_format(std::span<const double> samples,
                                           fx::Format fmt) const;

  /// Design-level resource demand (Table 4's inventory).
  std::vector<core::ResourceItem> resource_items() const;

  /// The Table-2 worksheet for this design.
  core::RatInputs rat_inputs() const { return core::pdf1d_inputs(); }

 private:
  Pdf1dConfig cfg_;
  std::size_t n_pipelines_;
  fx::Format format_;
};

}  // namespace rat::apps
