// Synthetic workload generators.
//
// Substitutes for the paper's datasets (which are not published): seeded
// Gaussian-mixture samples for the PDF estimators, and a particle box with
// controllable density/cutoff locality for molecular dynamics. Every
// generator is deterministic given its seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace rat::apps {

/// One Gaussian component of a mixture, in the unit interval/square.
struct MixtureComponent {
  double mean = 0.5;
  double sigma = 0.1;
  double weight = 1.0;
};

/// Default bimodal mixture used by the PDF case studies.
std::vector<MixtureComponent> default_mixture_1d();

/// @return n samples in [0,1) drawn from the mixture (values falling
/// outside are resampled, so the estimator's domain is closed).
std::vector<double> gaussian_mixture_1d(std::size_t n,
                                        const std::vector<MixtureComponent>& mix,
                                        std::uint64_t seed);

/// 2-D: independent mixtures per axis with a correlating rotation, giving
/// a non-separable density (so the 2-D estimator is genuinely exercised).
std::vector<std::array<double, 2>> gaussian_mixture_2d(std::size_t n,
                                                       std::uint64_t seed);

/// Molecular-dynamics particle state, SoA layout. Units are reduced
/// (box length, LJ sigma/epsilon of order 1).
struct ParticleSystem {
  double box_length = 1.0;
  std::vector<double> px, py, pz;  ///< positions in [0, box)
  std::vector<double> vx, vy, vz;  ///< velocities
  std::vector<double> ax, ay, az;  ///< accelerations

  std::size_t size() const { return px.size(); }
  /// 36 bytes/element: 4-byte floats for pos/vel/acc in x/y/z (Table 8).
  static constexpr double kBytesPerElement = 36.0;
};

/// Uniformly filled box with Maxwell-Boltzmann-ish velocities.
ParticleSystem particle_box(std::size_t n, double box_length,
                            double temperature, std::uint64_t seed);

}  // namespace rat::apps
