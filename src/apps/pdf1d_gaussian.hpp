// Gaussian-kernel hardware variant of the 1-D PDF design.
//
// The paper's shipped design uses the 3-op quadratic kernel (one MAC per
// pipeline). A natural design alternative keeps the true Gaussian window
// by evaluating exp(-d^2 / 2h^2) from an interpolated block-RAM lookup
// table — better statistical quality for two extra resources per pipeline
// (the LUT BRAM and the interpolation multiplier) and a longer bin update
// (5 ops: sub, mul, lookup, interpolate-mul, add).
//
// This is exactly the kind of permutation the Fig.-1 iteration weighs:
// same worksheet structure, different ops/element, resources and error
// profile.
#pragma once

#include <memory>

#include "apps/pdf1d.hpp"
#include "fixedpoint/lut.hpp"

namespace rat::apps {

class Pdf1dGaussianDesign {
 public:
  /// @param lut_index_bits  table size = 2^bits entries per pipeline.
  explicit Pdf1dGaussianDesign(Pdf1dConfig cfg = {},
                               std::size_t n_pipelines = 8,
                               fx::Format format = fx::Format{18, 17, true},
                               int lut_index_bits = 8);

  const Pdf1dConfig& config() const { return cfg_; }
  std::size_t n_pipelines() const { return n_pipelines_; }
  const fx::Format& format() const { return format_; }
  const fx::FunctionLut& lut() const { return *lut_; }

  /// 5 operations per bin update (vs the quadratic design's 3).
  double ops_per_element() const;

  /// Same streaming structure as the quadratic design, but the LUT's
  /// read-interpolate adds two cycles of initiation interval per bin.
  rcsim::PipelineSpec pipeline_spec() const;
  std::uint64_t cycles_per_iteration() const;

  /// Fixed-point Gaussian estimate through the LUT, normalized.
  std::vector<double> estimate(std::span<const double> samples) const;
  std::vector<double> estimate_with_format(std::span<const double> samples,
                                           fx::Format fmt) const;

  /// Adds one LUT BRAM and one extra multiplier per pipeline over the
  /// quadratic design.
  std::vector<core::ResourceItem> resource_items() const;

  /// Table-2-style worksheet for this variant (same dataset/communication
  /// groups; computation group reflects the 5-op kernel).
  core::RatInputs rat_inputs() const;

 private:
  Pdf1dConfig cfg_;
  std::size_t n_pipelines_;
  fx::Format format_;
  int lut_index_bits_;
  std::shared_ptr<const fx::FunctionLut> lut_;
};

}  // namespace rat::apps
