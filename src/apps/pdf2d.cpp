#include "apps/pdf2d.hpp"

#include <cmath>
#include <stdexcept>

namespace rat::apps {

void Pdf2dConfig::validate() const {
  if (bins_per_dim == 0)
    throw std::invalid_argument("Pdf2dConfig: bins_per_dim == 0");
  if (bandwidth <= 0.0 || bandwidth >= 1.0)
    throw std::invalid_argument("Pdf2dConfig: bandwidth outside (0,1)");
  if (batch_words == 0 || batch_words % 2 != 0)
    throw std::invalid_argument("Pdf2dConfig: batch_words must be even > 0");
}

double Pdf2dConfig::bin_center(std::size_t j) const {
  return (static_cast<double>(j) + 0.5) / static_cast<double>(bins_per_dim);
}

std::vector<double> estimate_pdf2d_gaussian(std::span<const Sample2d> samples,
                                            const Pdf2dConfig& cfg) {
  cfg.validate();
  if (samples.empty())
    throw std::invalid_argument("estimate_pdf2d_gaussian: no samples");
  const std::size_t b = cfg.bins_per_dim;
  std::vector<double> acc(b * b, 0.0);
  const double inv_2h2 = 1.0 / (2.0 * cfg.bandwidth * cfg.bandwidth);
  for (const auto& s : samples) {
    for (std::size_t j1 = 0; j1 < b; ++j1) {
      const double d1 = cfg.bin_center(j1) - s[0];
      const double e1 = d1 * d1;
      for (std::size_t j2 = 0; j2 < b; ++j2) {
        const double d2 = cfg.bin_center(j2) - s[1];
        acc[j1 * b + j2] += std::exp(-(e1 + d2 * d2) * inv_2h2);
      }
    }
  }
  const double norm = 1.0 / (static_cast<double>(samples.size()) * 2.0 * M_PI *
                             cfg.bandwidth * cfg.bandwidth);
  for (double& a : acc) a *= norm;
  return acc;
}

namespace {

std::vector<double> quadratic2d_impl(std::span<const Sample2d> samples,
                                     const Pdf2dConfig& cfg, OpCounter* ops) {
  cfg.validate();
  if (samples.empty())
    throw std::invalid_argument("estimate_pdf2d_quadratic: no samples");
  const std::size_t b = cfg.bins_per_dim;
  std::vector<double> acc(b * b, 0.0);
  const double h2 = cfg.bandwidth * cfg.bandwidth;
  for (const auto& s : samples) {
    for (std::size_t j1 = 0; j1 < b; ++j1) {
      const double d1 = cfg.bin_center(j1) - s[0];  // sub
      const double e1 = d1 * d1;                    // mul
      for (std::size_t j2 = 0; j2 < b; ++j2) {
        // Paper §5.1: (N1-n1)^2 + (N2-n2)^2 + c — six operations per bin.
        const double d2 = cfg.bin_center(j2) - s[1];  // sub
        const double e2 = d2 * d2;                    // mul
        const double r2 = e1 + e2;                    // add
        if (r2 < h2) acc[j1 * b + j2] += h2 - r2;     // add (predicated)
        if (ops) {
          ops->subs += 2;
          ops->muls += 2;
          ops->adds += 2;
        }
      }
    }
  }
  // 2-D Epanechnikov-style normalization: integral of (h^2 - r^2) over the
  // disc r < h is pi h^4 / 2.
  const double norm =
      2.0 / (M_PI * h2 * h2 * static_cast<double>(samples.size()));
  for (double& a : acc) a *= norm;
  return acc;
}

}  // namespace

std::vector<double> estimate_pdf2d_quadratic(std::span<const Sample2d> samples,
                                             const Pdf2dConfig& cfg) {
  return quadratic2d_impl(samples, cfg, nullptr);
}

std::vector<double> estimate_pdf2d_quadratic_counted(
    std::span<const Sample2d> samples, const Pdf2dConfig& cfg,
    OpCounter& ops) {
  return quadratic2d_impl(samples, cfg, &ops);
}

double pdf2d_ops_per_word(const Pdf2dConfig& cfg) {
  // Table 5 counts 6 ops x 65536 bins = 393216 per element where elements
  // are *words* (1024 per iteration, two per 2-D sample). Each word is
  // charged the full sample's bin sweep; throughput_proc in the same
  // worksheet uses the identical scope, so the model is self-consistent
  // (the paper's "what is an operation" discussion, §3.1).
  return 6.0 * static_cast<double>(cfg.n_bins());
}

Pdf2dDesign::Pdf2dDesign(Pdf2dConfig cfg, std::size_t n_pipelines,
                         fx::Format format, std::size_t strip_factor)
    : cfg_(cfg),
      n_pipelines_(n_pipelines),
      format_(format),
      strip_factor_(strip_factor) {
  cfg_.validate();
  format_.validate();
  if (n_pipelines_ == 0 || cfg_.n_bins() % n_pipelines_ != 0)
    throw std::invalid_argument(
        "Pdf2dDesign: n_bins must be a positive multiple of n_pipelines");
  if (strip_factor_ == 0 ||
      cfg_.n_bins() % (n_pipelines_ * strip_factor_) != 0)
    throw std::invalid_argument(
        "Pdf2dDesign: strip_factor must evenly divide the per-pipeline "
        "bin share");
}

rcsim::PipelineSpec Pdf2dDesign::pipeline_spec() const {
  rcsim::PipelineSpec spec;
  spec.name = "pdf2d";
  // Per input word: each pipeline sweeps its n_bins/n_pipelines bins at
  // 1.5 cycles per bin (one shared 18x18 multiplier alternating between
  // the two dimensions' squares, plus an accumulator port conflict every
  // other update). Equivalently 3 cycles per bin per 2-D sample. This
  // achieves ~64 ops/cycle in the worksheet's accounting versus the
  // conservative 48 RAT assumed — the overestimated computation that
  // balanced the underestimated communication (§5.1).
  spec.depth = 96;
  spec.initiation_interval =
      1.5 * static_cast<double>(cfg_.n_bins() / n_pipelines_);
  spec.stall_per_item = 0.0;
  spec.instances = 1;
  spec.ops_per_item = pdf2d_ops_per_word(cfg_);
  return spec;
}

std::uint64_t Pdf2dDesign::cycles_per_iteration() const {
  // Strip-mining re-pays the pipeline fill once per extra strip pass over
  // the buffered batch; the steady-state bin updates are identical.
  const auto spec = pipeline_spec();
  return rcsim::pipeline_cycles(spec, cfg_.batch_words) +
         (strip_factor_ - 1) * spec.depth;
}

rcsim::IterationIo Pdf2dDesign::io(std::size_t iter,
                                   std::size_t n_iterations) const {
  (void)iter;
  (void)n_iterations;
  rcsim::IterationIo io;
  const std::size_t half = cfg_.batch_words / 2;
  io.input_chunks_bytes = {half * 4, half * 4};  // one block per dimension
  const std::size_t result_bytes = cfg_.n_bins() * 4;
  const std::size_t chunk = output_chunk_bytes();
  for (std::size_t off = 0; off < result_bytes; off += chunk)
    io.output_chunks_bytes.push_back(std::min(chunk, result_bytes - off));
  return io;
}

std::vector<double> Pdf2dDesign::estimate(
    std::span<const Sample2d> samples) const {
  return estimate_with_format(samples, format_);
}

std::vector<double> Pdf2dDesign::estimate_with_format(
    std::span<const Sample2d> samples, fx::Format fmt) const {
  if (samples.empty())
    throw std::invalid_argument("Pdf2dDesign::estimate: no samples");
  fmt.validate();
  const std::size_t b = cfg_.bins_per_dim;
  const double h2 = cfg_.bandwidth * cfg_.bandwidth;
  const fx::Fixed h2_fx = fx::Fixed::from_double(h2, fmt);
  const fx::Format acc_fmt{48, fmt.frac_bits, true};
  const auto rnd = fx::Rounding::kTruncate;

  std::vector<fx::Fixed> centers;
  centers.reserve(b);
  for (std::size_t j = 0; j < b; ++j)
    centers.push_back(fx::Fixed::from_double(cfg_.bin_center(j), fmt));

  std::vector<fx::Fixed> acc(b * b, fx::Fixed(acc_fmt));
  for (const auto& s : samples) {
    const fx::Fixed x1 = fx::Fixed::from_double(s[0], fmt);
    const fx::Fixed x2 = fx::Fixed::from_double(s[1], fmt);
    for (std::size_t j1 = 0; j1 < b; ++j1) {
      const fx::Fixed d1 = fx::Fixed::sub(centers[j1], x1, fmt, rnd);
      const fx::Fixed e1 = fx::Fixed::mul(d1, d1, fmt, rnd);
      for (std::size_t j2 = 0; j2 < b; ++j2) {
        const fx::Fixed d2 = fx::Fixed::sub(centers[j2], x2, fmt, rnd);
        const fx::Fixed e2 = fx::Fixed::mul(d2, d2, fmt, rnd);
        const fx::Fixed r2 = fx::Fixed::add(e1, e2, fmt, rnd);
        if (r2.raw() < h2_fx.raw()) {
          const fx::Fixed w = fx::Fixed::sub(h2_fx, r2, fmt, rnd);
          acc[j1 * b + j2] = fx::Fixed::add(acc[j1 * b + j2], w, acc_fmt, rnd);
        }
      }
    }
  }
  const double norm =
      2.0 / (M_PI * h2 * h2 * static_cast<double>(samples.size()));
  std::vector<double> out;
  out.reserve(b * b);
  for (const auto& a : acc) out.push_back(a.to_double() * norm);
  return out;
}

std::vector<core::ResourceItem> Pdf2dDesign::resource_items() const {
  const int mult_bits = format_.total_bits;
  std::vector<core::ResourceItem> items;
  items.push_back(core::ResourceItem{
      "pipeline MAC", 1, mult_bits, 0, 480,
      static_cast<int>(n_pipelines_)});
  items.push_back(core::ResourceItem{
      "I/O buffers", 0, mult_bits,
      static_cast<std::int64_t>(2 * cfg_.batch_words * 4 + 4096), 800, 1});
  // Bin accumulators: one 18-bit word per live bin. Strip-mining keeps
  // only 1/strip_factor of the grid resident; each strip drains before
  // the next pass over the buffered samples.
  items.push_back(core::ResourceItem{
      "bin accumulator banks (1/" + std::to_string(strip_factor_) +
          " strip)",
      0, mult_bits,
      static_cast<std::int64_t>(cfg_.n_bins() / strip_factor_ * 18 / 8),
      900, 1});
  items.push_back(core::ResourceItem{"vendor wrapper", 0, mult_bits,
                                     64 * 1024, 2400, 1});
  return items;
}

}  // namespace rat::apps
