// 2-D probability density function estimation (paper §5.1).
//
// The two-dimensional Parzen estimate over a 256x256 bin grid. The basic
// computation per element grows to ((N1-n1)^2 + (N2-n2)^2 + c) — six
// operations per bin update, 393,216 per element. The hardware design uses
// 16 pipelines; each time-shares one 18x18 multiplier between the two
// squared differences, giving an initiation interval of 1.5 cycles per bin
// (the conservative RAT worksheet assumed 48 ops/cycle; the achieved rate
// is ~64).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "apps/opcount.hpp"
#include "core/parameters.hpp"
#include "core/resources.hpp"
#include "fixedpoint/error_analysis.hpp"
#include "rcsim/executor.hpp"
#include "rcsim/pipeline.hpp"

namespace rat::apps {

struct Pdf2dConfig {
  std::size_t bins_per_dim = 256;
  double bandwidth = 0.07;
  /// Elements per FPGA iteration; the paper sends two blocks of 512 words
  /// (one per dimension), i.e. 1024 words describing 512 2-D samples, and
  /// counts Nelements = 1024.
  std::size_t batch_words = 1024;

  std::size_t n_bins() const { return bins_per_dim * bins_per_dim; }
  std::size_t samples_per_batch() const { return batch_words / 2; }
  double bin_center(std::size_t j) const;
  void validate() const;
};

using Sample2d = std::array<double, 2>;

/// Software references (normalized 2-D estimates, row-major
/// bins_per_dim x bins_per_dim).
std::vector<double> estimate_pdf2d_gaussian(std::span<const Sample2d> samples,
                                            const Pdf2dConfig& cfg);
std::vector<double> estimate_pdf2d_quadratic(std::span<const Sample2d> samples,
                                             const Pdf2dConfig& cfg);
std::vector<double> estimate_pdf2d_quadratic_counted(
    std::span<const Sample2d> samples, const Pdf2dConfig& cfg, OpCounter& ops);

/// Derived Nops per (word) element: 6 ops per bin / 2 words per sample
/// gives 3 * n_bins per word — Table 5's 393216 counts 6 * 65536 per
/// *sample pair*, i.e. per two words; see EXPERIMENTS.md.
double pdf2d_ops_per_word(const Pdf2dConfig& cfg);

/// Hardware design model for the 2-D estimator.
///
/// The 65,536 bin accumulators do not need to live on chip all at once:
/// because the 512-sample batch is buffered on chip anyway, the design can
/// strip-mine the bin grid — keep 1/strip_factor of the accumulators in
/// BRAM, sweep the buffered samples once per strip, and drain each strip
/// as it finalizes. Total bin updates (and hence cycles, up to one extra
/// fill per strip) are unchanged, while accumulator BRAM shrinks by the
/// strip factor. With the default factor of 4 the model lands on Table
/// 7's 21% BRAM figure.
class Pdf2dDesign {
 public:
  explicit Pdf2dDesign(Pdf2dConfig cfg = {}, std::size_t n_pipelines = 16,
                       fx::Format format = fx::Format{18, 17, true},
                       std::size_t strip_factor = 4);

  const Pdf2dConfig& config() const { return cfg_; }
  std::size_t n_pipelines() const { return n_pipelines_; }
  const fx::Format& format() const { return format_; }
  std::size_t strip_factor() const { return strip_factor_; }

  /// Each pipeline owns n_bins/n_pipelines bins; II = 1.5 cycles per bin
  /// per sample (multiplier time-sharing between the two dimensions).
  rcsim::PipelineSpec pipeline_spec() const;
  std::uint64_t cycles_per_iteration() const;

  /// I/O per iteration: two 512-word input blocks; the 65536-bin result
  /// grid streams back in 512-byte chunks (the design drains a bin strip
  /// as soon as it is final) — the chunking that made measured
  /// communication ~6x the prediction (§5.1).
  rcsim::IterationIo io(std::size_t iter, std::size_t n_iterations) const;
  std::size_t output_chunk_bytes() const { return 512; }

  /// Functional fixed-point estimate of one whole run.
  std::vector<double> estimate(std::span<const Sample2d> samples) const;
  std::vector<double> estimate_with_format(std::span<const Sample2d> samples,
                                           fx::Format fmt) const;

  std::vector<core::ResourceItem> resource_items() const;
  core::RatInputs rat_inputs() const { return core::pdf2d_inputs(); }

 private:
  Pdf2dConfig cfg_;
  std::size_t n_pipelines_;
  fx::Format format_;
  std::size_t strip_factor_;
};

}  // namespace rat::apps
