#include "apps/opcount.hpp"

#include <sstream>

namespace rat::apps {

std::string OpCounter::to_string() const {
  std::ostringstream os;
  os << "adds=" << adds << " subs=" << subs << " muls=" << muls
     << " divs=" << divs << " sqrts=" << sqrts << " compares=" << compares
     << " total(unit)=" << total_unit_weight();
  return os.str();
}

}  // namespace rat::apps
