#include "apps/md.hpp"

#include <cmath>
#include <stdexcept>

namespace rat::apps {

void MdConfig::validate() const {
  if (cutoff <= 0.0) throw std::invalid_argument("MdConfig: cutoff <= 0");
  if (epsilon <= 0.0) throw std::invalid_argument("MdConfig: epsilon <= 0");
  if (sigma_lj <= 0.0) throw std::invalid_argument("MdConfig: sigma_lj <= 0");
  if (dt <= 0.0) throw std::invalid_argument("MdConfig: dt <= 0");
}

namespace {

/// Minimum-image displacement component.
inline double min_image(double d, double box, bool periodic) {
  if (!periodic) return d;
  if (d > 0.5 * box) return d - box;
  if (d < -0.5 * box) return d + box;
  return d;
}

/// Shared all-pairs force loop over a floating-point type T.
template <typename T>
ForceResult forces_impl(ParticleSystem& sys, const MdConfig& cfg,
                        OpCounter* ops) {
  cfg.validate();
  const std::size_t n = sys.size();
  if (n < 2) throw std::invalid_argument("compute_forces: need >= 2 particles");
  const T box = static_cast<T>(sys.box_length);
  const T rc2 = static_cast<T>(cfg.cutoff * cfg.cutoff);
  const T sig2 = static_cast<T>(cfg.sigma_lj * cfg.sigma_lj);
  const T eps24 = static_cast<T>(24.0 * cfg.epsilon);
  // Shifted potential: subtract U(rc) so energy is continuous at cutoff.
  const T src2 = sig2 / rc2;
  const T src6 = src2 * src2 * src2;
  const T u_shift = static_cast<T>(4.0 * cfg.epsilon) * (src6 * src6 - src6);

  std::fill(sys.ax.begin(), sys.ax.end(), 0.0);
  std::fill(sys.ay.begin(), sys.ay.end(), 0.0);
  std::fill(sys.az.begin(), sys.az.end(), 0.0);

  ForceResult res;
  T pe = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const T xi = static_cast<T>(sys.px[i]);
    const T yi = static_cast<T>(sys.py[i]);
    const T zi = static_cast<T>(sys.pz[i]);
    for (std::size_t j = i + 1; j < n; ++j) {
      T dx = static_cast<T>(min_image(static_cast<double>(xi) - sys.px[j],
                                      sys.box_length, cfg.periodic));
      T dy = static_cast<T>(min_image(static_cast<double>(yi) - sys.py[j],
                                      sys.box_length, cfg.periodic));
      T dz = static_cast<T>(min_image(static_cast<double>(zi) - sys.pz[j],
                                      sys.box_length, cfg.periodic));
      (void)box;
      const T r2 = dx * dx + dy * dy + dz * dz;
      ++res.pairs_checked;
      if (ops) {
        ops->subs += 3;     // displacement components
        ops->muls += 3;     // squares
        ops->adds += 2;     // r^2 accumulation
        ops->compares += 1; // cutoff test
      }
      if (r2 >= rc2 || r2 == T(0)) continue;
      ++res.interactions;
      const T inv_r2 = T(1) / r2;
      const T sr2 = sig2 * inv_r2;
      const T sr6 = sr2 * sr2 * sr2;
      const T sr12 = sr6 * sr6;
      // LJ: U = 4 eps (sr12 - sr6); F/r = 24 eps (2 sr12 - sr6) / r^2.
      const T fscale = eps24 * (T(2) * sr12 - sr6) * inv_r2;
      pe += T(4) * static_cast<T>(cfg.epsilon) * (sr12 - sr6) - u_shift;
      const T fx = fscale * dx;
      const T fy = fscale * dy;
      const T fz = fscale * dz;
      sys.ax[i] += static_cast<double>(fx);
      sys.ay[i] += static_cast<double>(fy);
      sys.az[i] += static_cast<double>(fz);
      sys.ax[j] -= static_cast<double>(fx);
      sys.ay[j] -= static_cast<double>(fy);
      sys.az[j] -= static_cast<double>(fz);
      if (ops) {
        ops->divs += 1;      // inv_r2
        ops->muls += 10;     // sr2/sr6/sr12/fscale/force components/energy
        ops->subs += 2;      // (2 sr12 - sr6), (sr12 - sr6)
        ops->adds += 8;      // energy + 6 accumulations + shift
      }
    }
  }
  res.potential_energy = static_cast<double>(pe);
  return res;
}

}  // namespace

ForceResult compute_forces(ParticleSystem& sys, const MdConfig& cfg) {
  return forces_impl<double>(sys, cfg, nullptr);
}

ForceResult compute_forces_counted(ParticleSystem& sys, const MdConfig& cfg,
                                   OpCounter& ops) {
  return forces_impl<double>(sys, cfg, &ops);
}

ForceResult compute_forces_f32(ParticleSystem& sys, const MdConfig& cfg) {
  return forces_impl<float>(sys, cfg, nullptr);
}

ForceResult compute_forces_celllist(ParticleSystem& sys,
                                    const MdConfig& cfg) {
  cfg.validate();
  const std::size_t n = sys.size();
  if (n < 2)
    throw std::invalid_argument("compute_forces_celllist: need >= 2");
  const double box = sys.box_length;
  const auto cells_per_dim =
      static_cast<std::size_t>(std::floor(box / cfg.cutoff));
  if (!cfg.periodic || cells_per_dim < 3) return compute_forces(sys, cfg);

  const double cell_size = box / static_cast<double>(cells_per_dim);
  const std::size_t n_cells = cells_per_dim * cells_per_dim * cells_per_dim;
  auto cell_of = [&](std::size_t i) {
    auto coord = [&](double p) {
      auto c = static_cast<std::size_t>(p / cell_size);
      return std::min(c, cells_per_dim - 1);  // guard p == box rounding
    };
    return (coord(sys.px[i]) * cells_per_dim + coord(sys.py[i])) *
               cells_per_dim +
           coord(sys.pz[i]);
  };

  // Bucket particles by cell.
  std::vector<std::vector<std::uint32_t>> buckets(n_cells);
  for (std::size_t i = 0; i < n; ++i)
    buckets[cell_of(i)].push_back(static_cast<std::uint32_t>(i));

  std::fill(sys.ax.begin(), sys.ax.end(), 0.0);
  std::fill(sys.ay.begin(), sys.ay.end(), 0.0);
  std::fill(sys.az.begin(), sys.az.end(), 0.0);

  const double rc2 = cfg.cutoff * cfg.cutoff;
  const double sig2 = cfg.sigma_lj * cfg.sigma_lj;
  const double eps24 = 24.0 * cfg.epsilon;
  const double src2 = sig2 / rc2;
  const double src6 = src2 * src2 * src2;
  const double u_shift = 4.0 * cfg.epsilon * (src6 * src6 - src6);

  ForceResult res;
  double pe = 0.0;
  auto interact = [&](std::size_t i, std::size_t j) {
    const double dx = min_image(sys.px[i] - sys.px[j], box, true);
    const double dy = min_image(sys.py[i] - sys.py[j], box, true);
    const double dz = min_image(sys.pz[i] - sys.pz[j], box, true);
    const double r2 = dx * dx + dy * dy + dz * dz;
    ++res.pairs_checked;
    if (r2 >= rc2 || r2 == 0.0) return;
    ++res.interactions;
    const double inv_r2 = 1.0 / r2;
    const double sr2 = sig2 * inv_r2;
    const double sr6 = sr2 * sr2 * sr2;
    const double sr12 = sr6 * sr6;
    const double fscale = eps24 * (2.0 * sr12 - sr6) * inv_r2;
    pe += 4.0 * cfg.epsilon * (sr12 - sr6) - u_shift;
    sys.ax[i] += fscale * dx;
    sys.ay[i] += fscale * dy;
    sys.az[i] += fscale * dz;
    sys.ax[j] -= fscale * dx;
    sys.ay[j] -= fscale * dy;
    sys.az[j] -= fscale * dz;
  };

  const auto cpd = static_cast<std::ptrdiff_t>(cells_per_dim);
  for (std::size_t cx = 0; cx < cells_per_dim; ++cx) {
    for (std::size_t cy = 0; cy < cells_per_dim; ++cy) {
      for (std::size_t cz = 0; cz < cells_per_dim; ++cz) {
        const std::size_t home =
            (cx * cells_per_dim + cy) * cells_per_dim + cz;
        const auto& a = buckets[home];
        // Within the home cell: ordered pairs once.
        for (std::size_t p = 0; p < a.size(); ++p)
          for (std::size_t q = p + 1; q < a.size(); ++q)
            interact(a[p], a[q]);
        // Neighbor cells: visit each unordered cell pair once by only
        // scanning the 13 "forward" offsets.
        static constexpr std::ptrdiff_t kForward[13][3] = {
            {1, 0, 0},  {0, 1, 0},  {0, 0, 1},  {1, 1, 0},  {1, -1, 0},
            {1, 0, 1},  {1, 0, -1}, {0, 1, 1},  {0, 1, -1}, {1, 1, 1},
            {1, 1, -1}, {1, -1, 1}, {1, -1, -1}};
        for (const auto& off : kForward) {
          const auto wrap = [&](std::ptrdiff_t v) {
            return static_cast<std::size_t>((v % cpd + cpd) % cpd);
          };
          const std::size_t nb =
              (wrap(static_cast<std::ptrdiff_t>(cx) + off[0]) *
                   cells_per_dim +
               wrap(static_cast<std::ptrdiff_t>(cy) + off[1])) *
                  cells_per_dim +
              wrap(static_cast<std::ptrdiff_t>(cz) + off[2]);
          for (std::uint32_t i : a)
            for (std::uint32_t j : buckets[nb]) interact(i, j);
        }
      }
    }
  }
  res.potential_energy = pe;
  return res;
}

ForceResult velocity_verlet_step(ParticleSystem& sys, const MdConfig& cfg) {
  cfg.validate();
  const std::size_t n = sys.size();
  const double dt = cfg.dt;
  const double half_dt = 0.5 * dt;
  // Kick-drift using current accelerations.
  for (std::size_t i = 0; i < n; ++i) {
    sys.vx[i] += half_dt * sys.ax[i];
    sys.vy[i] += half_dt * sys.ay[i];
    sys.vz[i] += half_dt * sys.az[i];
    auto wrap = [&](double p) {
      if (!cfg.periodic) return p;
      p = std::fmod(p, sys.box_length);
      return p < 0.0 ? p + sys.box_length : p;
    };
    sys.px[i] = wrap(sys.px[i] + dt * sys.vx[i]);
    sys.py[i] = wrap(sys.py[i] + dt * sys.vy[i]);
    sys.pz[i] = wrap(sys.pz[i] + dt * sys.vz[i]);
  }
  const ForceResult res = compute_forces(sys, cfg);
  for (std::size_t i = 0; i < n; ++i) {
    sys.vx[i] += half_dt * sys.ax[i];
    sys.vy[i] += half_dt * sys.ay[i];
    sys.vz[i] += half_dt * sys.az[i];
  }
  return res;
}

double kinetic_energy(const ParticleSystem& sys) {
  double ke = 0.0;
  for (std::size_t i = 0; i < sys.size(); ++i)
    ke += sys.vx[i] * sys.vx[i] + sys.vy[i] * sys.vy[i] +
          sys.vz[i] * sys.vz[i];
  return 0.5 * ke;
}

double temperature(const ParticleSystem& sys) {
  if (sys.size() == 0) return 0.0;
  return 2.0 * kinetic_energy(sys) / (3.0 * static_cast<double>(sys.size()));
}

double net_momentum(const ParticleSystem& sys) {
  double px = 0.0, py = 0.0, pz = 0.0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    px += sys.vx[i];
    py += sys.vy[i];
    pz += sys.vz[i];
  }
  return std::sqrt(px * px + py * py + pz * pz);
}

double md_measured_ops_per_element(const ParticleSystem& sys,
                                   const MdConfig& cfg) {
  ParticleSystem copy = sys;
  OpCounter ops;
  compute_forces_counted(copy, cfg, ops);
  return static_cast<double>(ops.total_weighted()) /
         static_cast<double>(sys.size());
}

MdDesign::MdDesign(MdConfig cfg, int lanes) : cfg_(cfg), lanes_(lanes) {
  cfg_.validate();
  if (lanes_ <= 0) throw std::invalid_argument("MdDesign: lanes <= 0");
}

std::uint64_t MdDesign::cycles_from_counts(std::uint64_t interactions,
                                           std::size_t n_molecules) const {
  // Symmetric pair forces are computed once per pair in software, but the
  // hardware lanes evaluate each molecule's full neighborhood, so scale to
  // directed interactions.
  const std::uint64_t directed = 2 * interactions;
  const auto candidates =
      static_cast<std::uint64_t>(candidate_ratio_ * static_cast<double>(directed));
  const std::uint64_t misses = candidates - directed;
  const std::uint64_t lane_cycles =
      directed * static_cast<std::uint64_t>(cycles_per_hit_) +
      misses * static_cast<std::uint64_t>(cycles_per_miss_);
  return lane_cycles / static_cast<std::uint64_t>(lanes_) +
         static_cast<std::uint64_t>(n_molecules) *
             static_cast<std::uint64_t>(per_molecule_overhead_);
}

std::uint64_t MdDesign::cycles_for(const ParticleSystem& sys) const {
  ParticleSystem copy = sys;
  const ForceResult res = compute_forces_f32(copy, cfg_);
  return cycles_from_counts(res.interactions, sys.size());
}

rcsim::IterationIo MdDesign::io(std::size_t n_molecules) const {
  rcsim::IterationIo io;
  const auto bytes = static_cast<std::size_t>(
      static_cast<double>(n_molecules) * ParticleSystem::kBytesPerElement);
  io.input_chunks_bytes = {bytes};
  io.output_chunks_bytes = {bytes};
  return io;
}

std::vector<core::ResourceItem> MdDesign::resource_items() const {
  std::vector<core::ResourceItem> items;
  // Each lane's force pipeline: ~18 single-precision multipliers (36-bit
  // mantissa products -> 8 DSP elements each on Stratix-II) plus division
  // and accumulation logic. Impulse-C generated units are not shared, so
  // the lanes dominate the chip — the paper reports a large percentage of
  // DSPs and combinatorial logic consumed (Table 10).
  items.push_back(core::ResourceItem{
      "force lane (fp32 LJ pipeline)", /*multiplier_count=*/18,
      /*multiplier_bits=*/36, /*buffer_bytes=*/0, /*logic_elements=*/24500,
      /*instances=*/lanes_});
  // Neighborhood FIFOs and staging buffers in M4K blocks. Bulk particle
  // storage (16384 x 36 B) sits in the EP2S180's M-RAM megablocks, which
  // the three-class resource model does not track.
  items.push_back(core::ResourceItem{"candidate FIFOs / staging", 0, 36,
                                     /*buffer_bytes=*/210 * 1024, 4200, 1});
  items.push_back(core::ResourceItem{"HT interface wrapper", 0, 36,
                                     /*buffer_bytes=*/16 * 1024, 6800, 1});
  return items;
}

}  // namespace rat::apps
