// Block sorting — the paper's first example of an "element" (§3.1: "a
// value in an array to be sorted"). Extension case study: the FPGA sorts
// fixed-size blocks with a bitonic sorting network; the host merges sorted
// blocks (a classic hybrid external-sort split).
//
// The bitonic network is implemented functionally (it must actually sort)
// and as a cycle/resource model: a streaming network with C parallel
// compare-exchange units processes one stage of B/2 exchanges in
// ceil(B/2 / C) cycles, over log2(B)*(log2(B)+1)/2 stages.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/opcount.hpp"
#include "core/parameters.hpp"
#include "core/resources.hpp"
#include "rcsim/executor.hpp"

namespace rat::apps {

struct SortConfig {
  std::size_t block = 1024;       ///< elements per FPGA iteration (power of 2)
  std::size_t comparators = 64;   ///< parallel compare-exchange units

  void validate() const;
  /// log2(block) * (log2(block)+1) / 2 bitonic stages.
  std::size_t stages() const;
  /// Compare-exchange operations to sort one block.
  std::uint64_t exchanges_per_block() const;
};

/// Software baseline: counted bottom-up merge sort of the whole dataset
/// (in place, returns the comparison count through @p ops when non-null).
void merge_sort(std::span<std::uint32_t> data, OpCounter* ops = nullptr);

/// Apply a bitonic sorting network to one block (size must equal
/// cfg.block); this is the functional model of the hardware. Ascending.
/// When @p ops is non-null, every compare-exchange is tallied — the count
/// is exactly cfg.exchanges_per_block(), data independent (the property
/// that makes the network's worksheet deterministic).
void bitonic_sort_block(std::span<std::uint32_t> block, const SortConfig& cfg,
                        OpCounter* ops = nullptr);

/// The full hybrid: FPGA-model sorts each block, host merges. Returns the
/// sorted copy (leaves input untouched) — must agree with std::sort.
std::vector<std::uint32_t> hybrid_sort(std::span<const std::uint32_t> data,
                                       const SortConfig& cfg);

/// Uniform random keys.
std::vector<std::uint32_t> random_keys(std::size_t n, std::uint64_t seed);

/// Hardware design model.
class SortDesign {
 public:
  explicit SortDesign(SortConfig cfg = {});

  const SortConfig& config() const { return cfg_; }

  /// Streaming network: stages x ceil((B/2)/C) cycles + drain.
  std::uint64_t cycles_per_iteration() const;

  rcsim::IterationIo io() const;  ///< block in, sorted block out

  std::vector<core::ResourceItem> resource_items() const;

  /// Worksheet: one operation = one compare-exchange; ops/element =
  /// stages/2 x ... derived from exchanges_per_block / block; the network
  /// retires `comparators` operations per cycle.
  core::RatInputs rat_inputs(double tsoft_sec, std::size_t n_iterations,
                             const core::CommunicationParams& comm) const;

 private:
  SortConfig cfg_;
};

}  // namespace rat::apps
