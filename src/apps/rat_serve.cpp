// rat_serve — long-running RAT prediction service.
//
// Serves rat.svc.v1 newline-delimited JSON requests (docs/SERVICE.md)
// over a loopback TCP listener and, with --stdio, over stdin/stdout.
// Worksheets are validated by the strict parser, evaluated on the
// shared thread pool, and memoized in a sharded LRU keyed by canonical
// worksheet fingerprint, so iterative design-space drivers pay for each
// distinct design once.
//
// Usage:
//   rat_serve [--port=N]            loopback TCP port (default 0 =
//                                   ephemeral; the bound port is
//                                   announced on stdout and via
//                                   --port-file)
//             [--port-file=<path>]  write the bound port, for scripts
//             [--stdio]             also serve stdin -> stdout
//             [--no-tcp]            stdio only (requires --stdio)
//             [--threads=N]         worker threads (sets RAT_THREADS
//                                   before the pool exists; 0 = auto)
//             [--cache-capacity=N]  result-cache entries (default 1024,
//                                   0 disables caching)
//             [--cache-dir=<path>]  durable result cache (docs/STORE.md):
//                                   warm-start from the store on boot,
//                                   journal every fresh result
//             [--queue-capacity=N]  admission limit: max queued+running
//                                   evaluations (default 256); excess
//                                   requests get E_OVERLOADED
//             [--deadline-ms=X]     default per-request deadline
//                                   (default 0 = none)
//             [--backlog=N]         listen(2) backlog (default 64)
//             [--write-buffer-bytes=N]
//                                   per-connection bound on unsent
//                                   response bytes (default 4 MiB);
//                                   clients that exceed it are dropped
//                                   as slow instead of blocking others
//             [--so-sndbuf=N]       SO_SNDBUF for accepted sockets
//                                   (default 0 = OS default)
//             [--metrics=<path>]    rat.metrics.v1 JSON on exit
//                                   (RAT_METRICS env is the fallback);
//                                   summary table on stderr
//
// Graceful shutdown: SIGINT/SIGTERM (or a {"op":"shutdown"} request)
// stop accepting, drain every admitted request, flush --metrics, exit 0.
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

int usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s [--port=N] [--port-file=<path>] [--stdio] "
               "[--no-tcp] [--threads=N] [--cache-capacity=N] "
               "[--cache-dir=<path>] [--queue-capacity=N] "
               "[--deadline-ms=X] [--backlog=N] [--write-buffer-bytes=N] "
               "[--so-sndbuf=N] [--metrics=<path>]\n",
               program);
  return 1;
}

// Stop plumbing: the handler may only do async-signal-safe work, so it
// writes one byte to the server's wake pipe and nothing else.
int g_wake_fd = -1;

void on_stop_signal(int) {
  if (g_wake_fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(g_wake_fd, &byte, 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rat;
  const util::Cli cli(argc, argv);

  static const std::vector<std::string> known{
      "port", "port-file", "stdio", "no-tcp", "threads", "cache-capacity",
      "cache-dir", "queue-capacity", "deadline-ms", "backlog",
      "write-buffer-bytes", "so-sndbuf", "metrics", "help"};
  for (const std::string& k : cli.keys()) {
    bool ok = false;
    for (const std::string& kn : known) ok |= (k == kn);
    if (!ok) {
      std::fprintf(stderr, "rat_serve: unknown flag --%s\n", k.c_str());
      return usage(argv[0]);
    }
  }
  if (cli.has("help")) return usage(argv[0]);
  if (!cli.positional().empty()) {
    std::fprintf(stderr, "rat_serve: unexpected positional argument\n");
    return usage(argv[0]);
  }

  svc::ServiceConfig svc_cfg;
  svc::ServerConfig srv_cfg;
  std::size_t n_threads = 0;
  try {
    srv_cfg.port = static_cast<int>(cli.get_size_t("port", 0, 0, 65535));
    n_threads = cli.get_size_t("threads", 0, 0, 256);
    svc_cfg.cache_capacity =
        cli.get_size_t("cache-capacity", svc_cfg.cache_capacity);
    svc_cfg.queue_capacity =
        cli.get_size_t("queue-capacity", svc_cfg.queue_capacity, 1);
    const long long backlog = cli.get_int("backlog", srv_cfg.backlog);
    if (backlog < 1 || backlog > 65535)
      throw std::invalid_argument("Cli: --backlog outside [1, 65535]");
    srv_cfg.backlog = static_cast<int>(backlog);
    srv_cfg.max_write_buffer_bytes = cli.get_size_t(
        "write-buffer-bytes", srv_cfg.max_write_buffer_bytes, 1);
    srv_cfg.so_sndbuf = static_cast<int>(
        cli.get_size_t("so-sndbuf", 0, 0, std::size_t{1} << 30));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rat_serve: %s\n", e.what());
    return usage(argv[0]);
  }
  svc_cfg.default_deadline_ms = cli.get_double("deadline-ms", 0.0);
  if (!std::isfinite(svc_cfg.default_deadline_ms) ||
      svc_cfg.default_deadline_ms < 0.0) {
    std::fprintf(stderr, "rat_serve: --deadline-ms must be finite and >= 0\n");
    return usage(argv[0]);
  }
  svc_cfg.cache_dir = cli.get_or("cache-dir", "");
  if (cli.has("cache-dir") && svc_cfg.cache_dir.empty()) {
    std::fprintf(stderr, "rat_serve: --cache-dir needs a path\n");
    return usage(argv[0]);
  }
  srv_cfg.stdio = cli.has("stdio");
  srv_cfg.tcp = !cli.has("no-tcp");
  if (!srv_cfg.tcp && !srv_cfg.stdio) {
    std::fprintf(stderr, "rat_serve: --no-tcp requires --stdio\n");
    return usage(argv[0]);
  }

  // The shared pool sizes itself from RAT_THREADS on first use; export
  // the flag before anything touches the pool.
  if (n_threads > 0)
    ::setenv("RAT_THREADS", std::to_string(n_threads).c_str(), 1);

  std::string metrics_path = cli.get_or("metrics", "");
  if (cli.has("metrics") && metrics_path.empty()) {
    std::fprintf(stderr, "rat_serve: --metrics needs a path\n");
    return usage(argv[0]);
  }
  if (metrics_path.empty())
    if (const char* env = obs::env_metrics_path()) metrics_path = env;
  if (!metrics_path.empty()) obs::set_enabled(true);

  std::optional<svc::Service> service;
  try {
    service.emplace(svc_cfg);
  } catch (const std::exception& e) {
    // A corrupt store snapshot or unusable --cache-dir arrives here as a
    // structured E_* StoreError message.
    std::fprintf(stderr, "rat_serve: %s\n", e.what());
    return 1;
  }
  if (!svc_cfg.cache_dir.empty())
    std::fprintf(stderr, "rat_serve: warm-started %llu cached result(s)\n",
                 static_cast<unsigned long long>(service->stats().cache_warmed));

  svc::Server server(*service, srv_cfg);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rat_serve: %s\n", e.what());
    return 1;
  }

  g_wake_fd = server.wake_fd();
  struct sigaction sa{};
  sa.sa_handler = on_stop_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  if (srv_cfg.tcp) {
    // Announced on stdout (and flushed) so scripts can scrape the
    // ephemeral port; --port-file is the race-free variant.
    std::printf("rat_serve: listening on 127.0.0.1:%d\n", server.port());
    std::fflush(stdout);
    if (cli.has("port-file")) {
      std::ofstream f(cli.get("port-file").value());
      if (f) {
        f << server.port() << '\n';
      } else {
        std::fprintf(stderr, "rat_serve: cannot write port file\n");
        return 1;
      }
    }
  }
  if (srv_cfg.stdio)
    std::fprintf(stderr, "rat_serve: serving stdin/stdout\n");

  server.run();  // blocks until SIGINT/SIGTERM/shutdown op, then drains

  const svc::Service::Stats st = service->stats();
  std::fprintf(stderr,
               "rat_serve: drained: %llu requests (%llu ok, %llu error), "
               "cache %llu hit / %llu miss / %llu evicted\n",
               static_cast<unsigned long long>(st.requests),
               static_cast<unsigned long long>(st.responses_ok),
               static_cast<unsigned long long>(st.responses_error),
               static_cast<unsigned long long>(st.cache.hits),
               static_cast<unsigned long long>(st.cache.misses),
               static_cast<unsigned long long>(st.cache.evictions));

  if (!metrics_path.empty()) {
    // Quiesce the pool so no worker's trailing counters miss the export.
    if (util::ThreadPool* pool = util::ThreadPool::shared_if_created())
      pool->wait_idle();
    if (!obs::write_metrics_file(metrics_path)) return 1;
    std::fprintf(stderr, "metrics (%s):\n%s", metrics_path.c_str(),
                 obs::summary_table().c_str());
  }
  return 0;
}
