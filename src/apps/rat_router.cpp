// rat_router — fingerprint-sharded front-end for rat_serve fleets.
//
// Speaks the same rat.svc.v1 newline-JSON protocol as rat_serve
// (docs/SERVICE.md) on a loopback TCP listener, but evaluates nothing
// itself: it spawns N rat_serve worker processes (--stdio --no-tcp,
// supervised over stdin/stdout pipes) and consistent-hashes every
// evaluate request by its rat.fp.v1 worksheet fingerprint to the worker
// that owns that shard — so each distinct design is evaluated and cached
// exactly once across the fleet, and with --cache-dir each worker
// warm-starts its own durable shard. Workers that die are respawned in
// place and their in-flight requests re-forwarded; ping/stats fan out
// and aggregate. Responses are byte-identical to a direct rat_serve.
//
// Usage:
//   rat_router [--workers=N]         worker processes (default 4)
//              [--port=N]            loopback TCP port (default 0 =
//                                    ephemeral; announced on stdout)
//              [--port-file=<path>]  write the bound port, for scripts
//              [--worker-bin=<path>] worker executable (default: the
//                                    rat_serve next to this binary, or
//                                    $PATH when argv[0] has no slash)
//              [--worker-pid-file=<path>]
//                                    rewritten after every (re)spawn:
//                                    one pid per line in shard order
//              [--cache-dir=<path>]  per-worker durable cache shards
//                                    (<path>/shard-<i>)
//              [--cache-capacity=N]  forwarded to each worker
//              [--queue-capacity=N]  forwarded to each worker
//              [--deadline-ms=X]     forwarded to each worker
//              [--threads=N]         forwarded to each worker
//              [--backlog=N]         listen(2) backlog (default 64)
//              [--write-buffer-bytes=N]
//                                    per-client bound on unsent response
//                                    bytes (default 4 MiB)
//              [--worker-buffer-bytes=N]
//                                    per-worker bound on queued request
//                                    bytes; beyond it the shard answers
//                                    E_OVERLOADED locally (default 4 MiB)
//              [--so-sndbuf=N]       SO_SNDBUF for client sockets
//              [--metrics=<path>]    rat.metrics.v1 JSON on exit
//
// Graceful shutdown: SIGINT/SIGTERM (or a {"op":"shutdown"} request)
// stop accepting, answer every admitted request, close the workers'
// stdins so each drains and exits cleanly, reap them, exit 0.
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/router.hpp"
#include "util/cli.hpp"

namespace {

int usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s [--workers=N] [--port=N] [--port-file=<path>] "
               "[--worker-bin=<path>] [--worker-pid-file=<path>] "
               "[--cache-dir=<path>] [--cache-capacity=N] "
               "[--queue-capacity=N] [--deadline-ms=X] [--threads=N] "
               "[--backlog=N] [--write-buffer-bytes=N] "
               "[--worker-buffer-bytes=N] [--so-sndbuf=N] "
               "[--metrics=<path>]\n",
               program);
  return 1;
}

// Stop plumbing: the handler may only do async-signal-safe work, so it
// writes one byte to the router's wake pipe and nothing else.
int g_wake_fd = -1;

void on_stop_signal(int) {
  if (g_wake_fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(g_wake_fd, &byte, 1);
  }
}

/// Default worker binary: the rat_serve sitting next to this executable
/// (the normal build-tree layout); a bare name falls back to $PATH via
/// execvp.
std::string sibling_rat_serve(const char* argv0) {
  const std::string self(argv0 ? argv0 : "");
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "rat_serve";
  return self.substr(0, slash + 1) + "rat_serve";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rat;
  const util::Cli cli(argc, argv);

  static const std::vector<std::string> known{
      "workers", "port", "port-file", "worker-bin", "worker-pid-file",
      "cache-dir", "cache-capacity", "queue-capacity", "deadline-ms",
      "threads", "backlog", "write-buffer-bytes", "worker-buffer-bytes",
      "so-sndbuf", "metrics", "help"};
  for (const std::string& k : cli.keys()) {
    bool ok = false;
    for (const std::string& kn : known) ok |= (k == kn);
    if (!ok) {
      std::fprintf(stderr, "rat_router: unknown flag --%s\n", k.c_str());
      return usage(argv[0]);
    }
  }
  if (cli.has("help")) return usage(argv[0]);
  if (!cli.positional().empty()) {
    std::fprintf(stderr, "rat_router: unexpected positional argument\n");
    return usage(argv[0]);
  }

  svc::RouterConfig cfg;
  try {
    cfg.n_workers = cli.get_size_t("workers", 4, 1, 256);
    cfg.port = static_cast<int>(cli.get_size_t("port", 0, 0, 65535));
    const long long backlog = cli.get_int("backlog", cfg.backlog);
    if (backlog < 1 || backlog > 65535)
      throw std::invalid_argument("Cli: --backlog outside [1, 65535]");
    cfg.backlog = static_cast<int>(backlog);
    cfg.max_write_buffer_bytes = cli.get_size_t(
        "write-buffer-bytes", cfg.max_write_buffer_bytes, 1);
    cfg.max_worker_pipe_bytes = cli.get_size_t(
        "worker-buffer-bytes", cfg.max_worker_pipe_bytes, 1);
    cfg.so_sndbuf = static_cast<int>(
        cli.get_size_t("so-sndbuf", 0, 0, std::size_t{1} << 30));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rat_router: %s\n", e.what());
    return usage(argv[0]);
  }
  cfg.cache_dir = cli.get_or("cache-dir", "");
  if (cli.has("cache-dir") && cfg.cache_dir.empty()) {
    std::fprintf(stderr, "rat_router: --cache-dir needs a path\n");
    return usage(argv[0]);
  }
  cfg.worker_pid_file = cli.get_or("worker-pid-file", "");

  // Worker command line: the stdio transport plus whichever service
  // flags the operator wants the whole fleet to share.
  cfg.worker_argv = {cli.get_or("worker-bin", sibling_rat_serve(argv[0])),
                     "--stdio", "--no-tcp"};
  for (const char* fwd :
       {"cache-capacity", "queue-capacity", "threads", "deadline-ms"}) {
    if (!cli.has(fwd)) continue;
    const auto value = cli.get(fwd);
    if (!value || value->empty()) {
      std::fprintf(stderr, "rat_router: --%s needs a value\n", fwd);
      return usage(argv[0]);
    }
    cfg.worker_argv.push_back(std::string("--") + fwd + "=" + *value);
  }

  std::string metrics_path = cli.get_or("metrics", "");
  if (cli.has("metrics") && metrics_path.empty()) {
    std::fprintf(stderr, "rat_router: --metrics needs a path\n");
    return usage(argv[0]);
  }
  if (metrics_path.empty())
    if (const char* env = obs::env_metrics_path()) metrics_path = env;
  if (!metrics_path.empty()) obs::set_enabled(true);

  svc::Router router(cfg);
  try {
    router.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rat_router: %s\n", e.what());
    return 1;
  }

  g_wake_fd = router.wake_fd();
  struct sigaction sa{};
  sa.sa_handler = on_stop_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::printf("rat_router: listening on 127.0.0.1:%d (%zu workers)\n",
              router.port(), cfg.n_workers);
  std::fflush(stdout);
  if (cli.has("port-file")) {
    std::ofstream f(cli.get("port-file").value());
    if (f) {
      f << router.port() << '\n';
    } else {
      std::fprintf(stderr, "rat_router: cannot write port file\n");
      return 1;
    }
  }

  router.run();  // blocks until SIGINT/SIGTERM/shutdown op, then drains

  const svc::Router::Stats st = router.stats();
  std::fprintf(stderr,
               "rat_router: drained: %llu requests, %llu forwarded "
               "(%llu rerouted), %llu worker death(s), %llu respawn(s)\n",
               static_cast<unsigned long long>(st.requests),
               static_cast<unsigned long long>(st.forwarded),
               static_cast<unsigned long long>(st.rerouted),
               static_cast<unsigned long long>(st.worker_deaths),
               static_cast<unsigned long long>(st.respawns));

  if (!metrics_path.empty()) {
    if (!obs::write_metrics_file(metrics_path)) return 1;
    std::fprintf(stderr, "metrics (%s):\n%s", metrics_path.c_str(),
                 obs::summary_table().c_str());
  }
  return 0;
}
