// rat_batch — batch RAT evaluation over a set of worksheet files.
//
// Evaluates every worksheet in a directory (and/or files given as
// positional arguments) through the shared thread pool, with
// partial-failure semantics: a malformed worksheet produces one
// file:line:column diagnostic on stderr while every other worksheet is
// still evaluated and reported. Emits machine-readable JSON/CSV of the
// inputs and every Eq. 1-11 prediction (both buffering modes) alongside
// the paper-style printed tables.
//
// Usage:
//   rat_batch --dir=<worksheet dir> [files.rat ...]
//             [--out=<dir>]          write <dir>/batch.json + batch.csv
//             [--json=<path>] [--csv=<path>]
//             [--threads=N]          0 = auto (RAT_THREADS override)
//             [--mode=sb|db]         printed tables' buffering mode
//             [--quiet]              summary + diagnostics only
//             [--checkpoint=<path>]  durable campaign checkpoint
//                                    (docs/STORE.md): record each
//                                    completed worksheet; a rerun after a
//                                    crash replays recorded results and
//                                    only evaluates the remainder, with
//                                    byte-identical output
//             [--throttle-ms=N]      crash-drill hook: sleep N ms after
//                                    each fresh evaluation (tests only)
//             [--metrics=<path>]     collect observability metrics and
//                                    write a rat.metrics.v1 JSON document
//                                    (RAT_METRICS env var is an implicit
//                                    --metrics); summary table on stderr
//
// Exit codes (documented in docs/WORKSHEET_FORMAT.md):
//   0  every worksheet evaluated
//   1  fatal: bad flags, unreadable directory, no worksheets found, or a
//      stale/corrupt --checkpoint (E_STALE_CHECKPOINT / E_STORE_CORRUPT)
//   2  partial failure: at least one worksheet had a diagnostic
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "core/worksheet.hpp"
#include "io/batch.hpp"
#include "obs/metrics.hpp"
#include "store/error.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/parallel_for.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

int usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s --dir=<worksheet dir> [files.rat ...] "
               "[--out=<dir>] [--json=<path>] [--csv=<path>] "
               "[--threads=N] [--mode=sb|db] [--quiet] "
               "[--checkpoint=<path>] [--throttle-ms=N] "
               "[--metrics=<path>]\n",
               program);
  return 1;
}

bool write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "rat_batch: cannot write %s\n",
                 path.string().c_str());
    return false;
  }
  f << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rat;
  const util::Cli cli(argc, argv);

  static const std::vector<std::string> known{
      "dir", "out", "json", "csv", "threads", "mode", "quiet", "checkpoint",
      "throttle-ms", "metrics", "help"};
  for (const std::string& k : cli.keys()) {
    if (std::find(known.begin(), known.end(), k) == known.end()) {
      std::fprintf(stderr, "rat_batch: unknown flag --%s\n", k.c_str());
      return usage(argv[0]);
    }
  }
  if (cli.has("help")) return usage(argv[0]);

  const std::string mode_flag = cli.get_or("mode", "sb");
  if (mode_flag != "sb" && mode_flag != "db") {
    std::fprintf(stderr, "rat_batch: --mode must be sb or db\n");
    return usage(argv[0]);
  }
  const auto mode = mode_flag == "sb" ? core::WorksheetMode::kSingleBuffered
                                      : core::WorksheetMode::kDoubleBuffered;

  std::size_t n_threads = 0;
  std::size_t throttle_ms = 0;
  try {
    n_threads = cli.get_size_t("threads", 0, 0, 4096);
    throttle_ms = cli.get_size_t("throttle-ms", 0, 0, 60000);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rat_batch: %s\n", e.what());
    return usage(argv[0]);
  }
  const std::string checkpoint_path = cli.get_or("checkpoint", "");
  if (cli.has("checkpoint") && checkpoint_path.empty()) {
    std::fprintf(stderr, "rat_batch: --checkpoint needs a path\n");
    return usage(argv[0]);
  }

  // Observability: --metrics=<path> (RAT_METRICS as the env fallback)
  // turns collection on before any evaluation runs.
  std::string metrics_path = cli.get_or("metrics", "");
  if (cli.has("metrics") && metrics_path.empty()) {
    std::fprintf(stderr, "rat_batch: --metrics needs a path\n");
    return usage(argv[0]);
  }
  if (metrics_path.empty())
    if (const char* env = obs::env_metrics_path()) metrics_path = env;
  if (!metrics_path.empty()) {
    obs::set_enabled(true);
    obs::Registry::global().set_gauge(
        "batch.threads",
        static_cast<double>(util::resolve_thread_count(n_threads)));
  }

  // Collect the work list: every *.rat in --dir, plus positional files.
  std::vector<std::filesystem::path> files;
  if (cli.has("dir")) {
    try {
      for (const auto& r : io::load_worksheet_dir(cli.get("dir").value()))
        files.push_back(r.path);
    } catch (const core::ParseError& e) {
      std::fprintf(stderr, "rat_batch: %s\n", e.what());
      return 1;
    }
  }
  for (const std::string& p : cli.positional()) files.emplace_back(p);
  if (files.empty()) {
    std::fprintf(stderr, "rat_batch: no worksheet files (*%s) to evaluate\n",
                 io::kWorksheetExtension);
    return usage(argv[0]);
  }

  io::BatchOptions options;
  options.n_threads = n_threads;
  options.throttle_ms = static_cast<unsigned>(throttle_ms);
  if (!checkpoint_path.empty())
    options.checkpoint = io::BatchCheckpointConfig{checkpoint_path};

  io::BatchResult result;
  try {
    result = io::run_batch(files, options);
  } catch (const store::StoreError& e) {
    // Stale / corrupt / unwritable checkpoint: structured E_* message.
    std::fprintf(stderr, "rat_batch: %s\n", e.what());
    return 1;
  }
  if (!checkpoint_path.empty())
    std::fprintf(stderr, "rat_batch: checkpoint: restored %zu of %zu\n",
                 result.n_restored, result.entries.size());

  // Per-file summary table on stdout, one diagnostic per line on stderr.
  util::Table summary({"file", "status", "name", "clocks",
                       mode_flag == "sb" ? "best speedup (SB)"
                                         : "best speedup (DB)"});
  for (const io::BatchEntry& e : result.entries) {
    if (!e.ok()) {
      summary.add_row({e.load.path.filename().string(), "ERROR", "", "", ""});
      continue;
    }
    double best = 0.0;
    for (const auto& p : e.predictions)
      best = std::max(best, mode == core::WorksheetMode::kSingleBuffered
                                ? p.speedup_sb
                                : p.speedup_db);
    summary.add_row({e.load.path.filename().string(), "ok",
                     e.load.inputs->name,
                     std::to_string(e.predictions.size()),
                     util::fixed(best, 1)});
  }
  std::printf("%s", summary.to_ascii().c_str());
  std::printf("%zu worksheet(s): %zu ok, %zu failed\n",
              result.entries.size(), result.n_ok, result.n_failed);

  for (const io::BatchEntry& e : result.entries)
    if (!e.ok())
      std::fprintf(stderr, "%s\n", e.load.diagnostic->to_string().c_str());

  if (!cli.has("quiet")) {
    for (const io::BatchEntry& e : result.entries) {
      if (!e.ok()) continue;
      std::printf("\nRAT worksheet: %s (%s)\n",
                  e.load.inputs->name.c_str(),
                  e.load.path.string().c_str());
      std::printf("%s",
                  core::performance_table(e.predictions, {}, mode)
                      .to_ascii()
                      .c_str());
    }
  }

  bool write_failed = false;
  if (cli.has("out")) {
    const std::filesystem::path out_dir = cli.get("out").value();
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    write_failed |= !write_file(out_dir / "batch.json", batch_json(result));
    write_failed |= !write_file(out_dir / "batch.csv", batch_csv(result));
  }
  if (cli.has("json"))
    write_failed |= !write_file(cli.get("json").value(), batch_json(result));
  if (cli.has("csv"))
    write_failed |= !write_file(cli.get("csv").value(), batch_csv(result));

  if (!metrics_path.empty()) {
    // Quiesce the pool first: a worker's trailing counters land after the
    // parallel region's completion signal, so exporting immediately could
    // miss them on a busy machine.
    if (util::ThreadPool* pool = util::ThreadPool::shared_if_created())
      pool->wait_idle();
    write_failed |= !obs::write_metrics_file(metrics_path);
    // Summary on stderr: stdout stays reserved for the batch tables.
    std::fprintf(stderr, "metrics (%s):\n%s", metrics_path.c_str(),
                 obs::summary_table().c_str());
  }

  if (write_failed) return 1;
  return result.all_ok() ? 0 : 2;
}
