// Register-transfer-level micro-model of the 1-D PDF datapath.
//
// The paper stresses that the 1-D PDF design "is constructed in VHDL to
// allow explicit, cycle-accurate construction of the intended design"
// (§4.2). This model is that construction in software: the eight pipelines
// are stepped clock by clock — element handshake, per-bin MAC issue,
// accumulator writeback — with the same 18-bit truncating arithmetic as
// the behavioural model. It exists to prove, by execution, that
//
//   * the cycle count equals Pdf1dDesign::cycles_per_iteration(), and
//   * the accumulated results equal Pdf1dDesign::estimate() bit for bit,
//
// i.e. that the timing model and the functional model describe the same
// machine — the property a real VHDL implementation would be verified
// against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/pdf1d.hpp"

namespace rat::apps {

/// Outcome of simulating one batch through the RTL micro-model.
struct RtlRunResult {
  std::uint64_t cycles = 0;           ///< clock edges until drain complete
  std::vector<double> estimate;       ///< normalized PDF (as estimate())
  std::uint64_t mac_issues = 0;       ///< MAC operations issued (all pipes)
  std::uint64_t handshake_stalls = 0; ///< element-handshake stall cycles
};

/// Step the design's datapath through one batch of samples, clock by
/// clock. @p batches of samples are run back-to-back, sharing accumulator
/// state, exactly like consecutive iterations on the device (per-batch
/// fill is re-paid, as in the cycle model).
RtlRunResult run_pdf1d_rtl(const Pdf1dDesign& design,
                           std::span<const double> samples);

}  // namespace rat::apps
