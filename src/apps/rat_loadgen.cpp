// rat_loadgen — open-loop load generator and SLO gate for the serving
// stack (docs/LOADGEN.md).
//
// Replays a deterministic worksheet mix against a rat.svc.v1 TCP
// endpoint — a rat_serve instance or a rat_router fleet, the protocol is
// identical — on a precomputed arrival schedule: requests go out at
// their scheduled times whether or not the server keeps up (open loop),
// and each latency is measured from the scheduled send, so server stalls
// land in the tail percentiles instead of being absorbed by a waiting
// client. Emits a rat.load.v1 JSON report and can assert SLOs for CI.
//
// Usage:
//   rat_loadgen --port=N | --port-file=<path>   target endpoint
//               [--host=A.B.C.D]      target address (default 127.0.0.1)
//               [--fixtures=<dir>]    worksheet mix source: all *.rat in
//                                     the directory, sorted (required)
//               [--requests=N]        requests per step (default 1000)
//               [--connections=N]     simulated clients (default 64)
//               [--rate=X]            offered arrival rate, req/s
//                                     (default 500)
//               [--sweep=X1,X2,...]   run one step per rate instead,
//                                     mapping the throughput-latency
//                                     frontier in one report
//               [--arrival=constant|poisson]
//                                     inter-arrival shape (default
//                                     constant)
//               [--seed=N]            schedule + payload seed (default 1)
//               [--duplicate-ratio=X] fraction of requests replaying a
//                                     base worksheet byte-identically,
//                                     i.e. cacheable traffic (default
//                                     0.5)
//               [--deadline-ms=X]     per-request server deadline
//               [--no-cache]          ask the server to bypass its cache
//               [--timeout-sec=X]     give up this long after the last
//                                     scheduled send (default 30)
//               [--report=<path>]     write rat.load.v1 there instead of
//                                     stdout
//               [--slo-p99-ms=X]      fail (exit 3) when any step's p99
//                                     exceeds X ms
//               [--slo-error-rate=X]  fail (exit 3) when any step's
//                                     (errors+lost)/scheduled exceeds X
//
// Exit codes: 0 success, 1 usage error, 2 run failure (endpoint
// unreachable), 3 SLO violation.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "load/mix.hpp"
#include "load/runner.hpp"
#include "load/schedule.hpp"
#include "util/cli.hpp"

namespace {

int usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s --port=N|--port-file=<path> --fixtures=<dir> "
               "[--host=A.B.C.D] [--requests=N] [--connections=N] "
               "[--rate=X] [--sweep=X1,X2,...] [--arrival=constant|poisson] "
               "[--seed=N] [--duplicate-ratio=X] [--deadline-ms=X] "
               "[--no-cache] [--timeout-sec=X] [--report=<path>] "
               "[--slo-p99-ms=X] [--slo-error-rate=X]\n",
               program);
  return 1;
}

/// "100,200,400" -> rates; throws std::invalid_argument on junk.
std::vector<double> parse_sweep(const std::string& spec) {
  std::vector<double> rates;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(start, comma - start);
    if (token.empty())
      throw std::invalid_argument("--sweep: empty rate in list");
    std::size_t used = 0;
    const double rate = std::stod(token, &used);
    if (used != token.size() || !(rate > 0.0))
      throw std::invalid_argument("--sweep: bad rate '" + token + "'");
    rates.push_back(rate);
    start = comma + 1;
  }
  return rates;
}

int read_port_file(const std::string& path) {
  std::ifstream f(path);
  int port = 0;
  if (!(f >> port) || port < 1 || port > 65535)
    throw std::invalid_argument("--port-file: no valid port in " + path);
  return port;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rat;
  const util::Cli cli(argc, argv);

  static const std::vector<std::string> known{
      "host", "port", "port-file", "fixtures", "requests", "connections",
      "rate", "sweep", "arrival", "seed", "duplicate-ratio", "deadline-ms",
      "no-cache", "timeout-sec", "report", "slo-p99-ms", "slo-error-rate",
      "help"};
  for (const std::string& k : cli.keys()) {
    bool ok = false;
    for (const std::string& kn : known) ok |= (k == kn);
    if (!ok) {
      std::fprintf(stderr, "rat_loadgen: unknown flag --%s\n", k.c_str());
      return usage(argv[0]);
    }
  }
  if (cli.has("help")) return usage(argv[0]);
  if (!cli.positional().empty()) {
    std::fprintf(stderr, "rat_loadgen: unexpected positional argument\n");
    return usage(argv[0]);
  }

  load::RunConfig cfg;
  load::SloConfig slo;
  std::vector<double> rates;
  std::string fixtures;
  std::string report_path;
  try {
    cfg.host = cli.get_or("host", cfg.host);
    if (cli.has("port"))
      cfg.port = static_cast<int>(cli.get_size_t("port", 0, 1, 65535));
    else if (const auto pf = cli.get("port-file"))
      cfg.port = read_port_file(*pf);
    else
      throw std::invalid_argument("one of --port / --port-file is required");

    const auto fx = cli.get("fixtures");
    if (!fx) throw std::invalid_argument("--fixtures=<dir> is required");
    fixtures = *fx;

    cfg.requests = cli.get_size_t("requests", cfg.requests, 1);
    cfg.connections = cli.get_size_t("connections", cfg.connections, 1, 65536);
    cfg.rate_hz = cli.get_double("rate", cfg.rate_hz);
    if (!(cfg.rate_hz > 0.0))
      throw std::invalid_argument("--rate must be > 0");
    const auto arrival = load::parse_arrival(cli.get_or("arrival", "constant"));
    if (!arrival)
      throw std::invalid_argument("--arrival must be constant or poisson");
    cfg.arrival = *arrival;
    cfg.seed = static_cast<std::uint64_t>(cli.get_size_t("seed", 1));
    cfg.duplicate_ratio =
        cli.get_double("duplicate-ratio", cfg.duplicate_ratio);
    if (cfg.duplicate_ratio < 0.0 || cfg.duplicate_ratio > 1.0)
      throw std::invalid_argument("--duplicate-ratio outside [0, 1]");
    cfg.deadline_ms = cli.get_double("deadline-ms", cfg.deadline_ms);
    cfg.no_cache = cli.get_bool("no-cache", false);
    cfg.timeout_sec = cli.get_double("timeout-sec", cfg.timeout_sec);
    if (!(cfg.timeout_sec > 0.0))
      throw std::invalid_argument("--timeout-sec must be > 0");
    report_path = cli.get_or("report", "");
    slo.p99_ms = cli.get_double("slo-p99-ms", slo.p99_ms);
    slo.error_rate = cli.get_double("slo-error-rate", slo.error_rate);

    if (const auto sweep = cli.get("sweep"))
      rates = parse_sweep(*sweep);
    else
      rates.push_back(cfg.rate_hz);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rat_loadgen: %s\n", e.what());
    return usage(argv[0]);
  }

  int exit_code = 0;
  std::string report;
  try {
    load::Mix mix = load::Mix::from_fixture_dir(fixtures);
    std::vector<load::StepResult> steps;
    std::vector<std::string> violations;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      load::RunConfig step_cfg = cfg;
      step_cfg.rate_hz = rates[i];
      // Per-step seed offset keeps sweep steps independent but still a
      // pure function of --seed.
      step_cfg.seed = cfg.seed + i;
      const load::StepResult step = load::run_step(step_cfg, mix);
      std::fprintf(stderr,
                   "rat_loadgen: rate %g req/s -> achieved %.1f req/s, "
                   "p50 %.3f ms, p99 %.3f ms, ok %llu, errors %llu, "
                   "lost %llu, drops %llu%s\n",
                   step.offered_rate_hz, step.achieved_rate_hz,
                   step.latency.percentile(50.0) / 1e6,
                   step.latency.percentile(99.0) / 1e6,
                   static_cast<unsigned long long>(step.ok),
                   static_cast<unsigned long long>(step.errors),
                   static_cast<unsigned long long>(step.lost),
                   static_cast<unsigned long long>(step.connection_drops),
                   step.timed_out ? " (timed out)" : "");
      const std::vector<std::string> v = load::slo_violations(step, slo);
      violations.insert(violations.end(), v.begin(), v.end());
      steps.push_back(step);
    }
    report = load::load_report_json(cfg, steps, slo, violations);
    for (const std::string& v : violations)
      std::fprintf(stderr, "rat_loadgen: SLO violation: %s\n", v.c_str());
    if (!violations.empty()) exit_code = 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rat_loadgen: %s\n", e.what());
    return 2;
  }

  if (report_path.empty()) {
    std::printf("%s\n", report.c_str());
  } else {
    std::ofstream f(report_path);
    if (!f) {
      std::fprintf(stderr, "rat_loadgen: cannot write %s\n",
                   report_path.c_str());
      return 2;
    }
    f << report << '\n';
    if (!f.good()) return 2;
  }
  return exit_code;
}
