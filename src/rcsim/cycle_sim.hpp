// Cycle-level pipeline simulation.
//
// The closed-form cycle model (pipeline.hpp) is what RAT-style analysis
// wants; this simulator executes the same pipeline cycle by cycle —
// issuing items at the initiation interval, inserting the per-item stalls,
// draining the depth — and reports where every cycle went. It exists to
// (a) validate the closed form against an executable model and (b) expose
// the occupancy breakdown (busy / stall / fill) that explains *why* a
// design achieves the effective ops/cycle it does, the quantity the paper
// derates by hand (§4.3's "20 instead of 24").
#pragma once

#include <cstdint>

#include "rcsim/pipeline.hpp"

namespace rat::rcsim {

/// Where each cycle of a simulated run went.
struct CycleBreakdown {
  std::uint64_t total_cycles = 0;
  std::uint64_t issue_cycles = 0;  ///< cycles that issued a new item
  std::uint64_t ii_cycles = 0;     ///< extra cycles inside an item's II
  std::uint64_t stall_cycles = 0;  ///< inter-item handshake stalls
  std::uint64_t drain_cycles = 0;  ///< final fill/drain of the depth

  /// Fraction of cycles doing useful issue work.
  double issue_fraction() const {
    return total_cycles
               ? static_cast<double>(issue_cycles) /
                     static_cast<double>(total_cycles)
               : 0.0;
  }

  /// Effective ops/cycle given the spec's ops_per_item.
  double effective_ops_per_cycle(const PipelineSpec& spec,
                                 std::uint64_t items) const;
};

/// Run the pipeline cycle by cycle. The total must equal
/// pipeline_cycles(spec, items) — asserted by tests, not assumed.
CycleBreakdown simulate_pipeline(const PipelineSpec& spec,
                                 std::uint64_t items);

}  // namespace rat::rcsim
