#include "rcsim/pipeline.hpp"

#include <cmath>

namespace rat::rcsim {

std::uint64_t pipeline_cycles(const PipelineSpec& spec, std::uint64_t items) {
  spec.validate();
  if (items == 0) return 0;
  const std::uint64_t per_instance =
      (items + spec.instances - 1) / spec.instances;
  const double steady =
      static_cast<double>(per_instance) *
      (spec.initiation_interval + spec.stall_per_item);
  return static_cast<std::uint64_t>(std::ceil(steady)) + spec.depth;
}

double effective_ops_per_cycle(const PipelineSpec& spec, std::uint64_t items) {
  const std::uint64_t cycles = pipeline_cycles(spec, items);
  if (cycles == 0) return 0.0;
  // All instances work on disjoint shares of the items, so total ops is
  // items * ops_per_item regardless of the instance count.
  return static_cast<double>(items) * spec.ops_per_item /
         static_cast<double>(cycles);
}

}  // namespace rat::rcsim
