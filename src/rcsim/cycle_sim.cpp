#include "rcsim/cycle_sim.hpp"

#include <cmath>

namespace rat::rcsim {

double CycleBreakdown::effective_ops_per_cycle(const PipelineSpec& spec,
                                               std::uint64_t items) const {
  if (total_cycles == 0) return 0.0;
  return static_cast<double>(items) * spec.ops_per_item /
         static_cast<double>(total_cycles);
}

CycleBreakdown simulate_pipeline(const PipelineSpec& spec,
                                 std::uint64_t items) {
  spec.validate();
  CycleBreakdown b;
  if (items == 0) return b;

  const std::uint64_t per_instance =
      (items + spec.instances - 1) / spec.instances;

  // Walk the instance's item stream cycle by cycle. Fractional initiation
  // intervals accumulate: item k occupies cycles [floor(k*(II+stall)),
  // floor((k+1)*(II+stall))) — the first cycle issues, the next
  // ceil(II)-1 are II occupancy, the rest are stalls.
  double position = 0.0;
  std::uint64_t cursor = 0;
  for (std::uint64_t k = 0; k < per_instance; ++k) {
    position += spec.initiation_interval + spec.stall_per_item;
    const auto next =
        static_cast<std::uint64_t>(std::ceil(position - 1e-12));
    const std::uint64_t span = next - cursor;
    // One issue cycle; the II occupies up to ceil(II)-1 more; the rest of
    // the span is handshake stall.
    b.issue_cycles += 1;
    const auto ii_extra = std::min<std::uint64_t>(
        span - 1,
        static_cast<std::uint64_t>(std::ceil(spec.initiation_interval)) - 1);
    b.ii_cycles += ii_extra;
    b.stall_cycles += span - 1 - ii_extra;
    cursor = next;
  }
  b.drain_cycles = spec.depth;
  b.total_cycles = cursor + spec.depth;
  return b;
}

}  // namespace rat::rcsim
