// Interconnect microbenchmarks.
//
// RAT obtains its alpha parameters by running "microbenchmarks composed of
// simple data transfers" on the target platform and dividing the measured
// rate by the documented maximum (paper §3.1, §4.2). We reproduce that
// workflow against the simulated bus: sweep transfer sizes, tabulate
// alpha(size, direction), and derive the alphas for a RAT worksheet from a
// probe size "comparable to one used by the algorithm".
#pragma once

#include <cstddef>
#include <vector>

#include "rcsim/interconnect.hpp"
#include "util/table.hpp"

namespace rat::rcsim {

/// One microbenchmark sample.
struct AlphaSample {
  std::size_t bytes = 0;
  Direction dir = Direction::kHostToFpga;
  double time_sec = 0.0;
  double alpha = 0.0;
};

/// The alpha pair a RAT worksheet needs (paper naming: "write" is
/// host->FPGA input, "read" is FPGA->host output).
struct CommAlphas {
  double alpha_write = 0.0;  ///< host->FPGA
  double alpha_read = 0.0;   ///< FPGA->host
};

class Microbench {
 public:
  /// @param repeats  how many transfers are averaged per sample; matters
  ///                 only when the link has jitter enabled.
  explicit Microbench(const Link& link, int repeats = 16,
                      std::uint64_t seed = 0x5eed);

  /// Measure a single (size, direction) point.
  AlphaSample measure(std::size_t bytes, Direction dir);

  /// Sweep a list of sizes in both directions.
  std::vector<AlphaSample> sweep(const std::vector<std::size_t>& sizes);

  /// Default power-of-two sweep from 256 B to 4 MB.
  std::vector<AlphaSample> sweep_default();

  /// Derive worksheet alphas from one probe size (the paper probed at the
  /// application's transfer size, 2 KB for the 1-D PDF).
  CommAlphas derive_alphas(std::size_t probe_bytes);

  /// Render a sweep as a size x direction table.
  static util::Table to_table(const std::vector<AlphaSample>& samples);

 private:
  const Link& link_;
  int repeats_;
  util::Rng rng_;
};

}  // namespace rat::rcsim
