// FPGA device catalog.
//
// The paper's case studies target two parts: a Xilinx Virtex-4 LX100 (on
// the Nallatech H101-PCIXM card) and an Altera Stratix-II EP2S180 (on the
// XtremeData XD1000 module). We model each device as a named inventory of
// the three resource classes the RAT resource test tracks, plus the
// vendor-specific cost of a fixed-point multiplier at a given bit width
// (paper §3.3: "32-bit fixed-point multiplications on Xilinx V4 FPGAs
// require two dedicated 18-bit multipliers").
#pragma once

#include <string>

#include "rcsim/resources.hpp"

namespace rat::rcsim {

/// FPGA family; selects the vendor-specific DSP cost model.
enum class Family {
  kXilinxVirtex4,   ///< DSP48 blocks (18x18 multiplier + 48-bit accumulator)
  kAlteraStratix2,  ///< 9-bit DSP elements grouped into DSP blocks
};

struct Device {
  std::string name;
  Family family = Family::kXilinxVirtex4;
  DeviceResources inventory;
  std::string dsp_unit_name;    ///< "DSP48" / "9-bit DSP"
  std::string bram_unit_name;   ///< "BRAM18" / "M4K"
  std::string logic_unit_name;  ///< "slices" / "ALUTs"

  /// Number of DSP units a single fixed-point multiplier of the given
  /// operand width consumes on this family. Throws for widths > 64.
  std::int64_t dsp_per_multiplier(int operand_bits) const;

  /// Number of BRAM units needed to hold @p bytes of on-chip storage.
  std::int64_t bram_for_bytes(std::int64_t bytes) const;

  /// Bytes of storage per BRAM unit on this family.
  std::int64_t bytes_per_bram() const;
};

/// Xilinx Virtex-4 LX100: 96 DSP48s, 240 18-Kbit BRAMs, 49152 slices.
Device virtex4_lx100();

/// Altera Stratix-II EP2S180: 768 9-bit DSP elements, 768 M4K RAM blocks,
/// 143520 ALUTs.
Device stratix2_ep2s180();

/// Lookup by name ("lx100", "ep2s180"); throws std::invalid_argument for
/// unknown names.
Device device_by_name(const std::string& name);

}  // namespace rat::rcsim
