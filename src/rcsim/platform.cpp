#include "rcsim/platform.hpp"

#include <stdexcept>

namespace rat::rcsim {

Platform nallatech_h101() {
  Platform p{
      "Nallatech H101-PCIXM",
      virtex4_lx100(),
      nallatech_pcix_link(),
      /*host_sync_sec=*/1.7e-5,
      /*candidate_clocks_hz=*/{75e6, 100e6, 150e6},
      /*practical_fill_limit=*/0.9,
  };
  return p;
}

Platform xd1000() {
  Platform p{
      "XtremeData XD1000",
      stratix2_ep2s180(),
      xd1000_ht_link(),
      /*host_sync_sec=*/5.0e-6,
      /*candidate_clocks_hz=*/{75e6, 100e6, 150e6},
      /*practical_fill_limit=*/0.9,
  };
  return p;
}

Platform generic_pcie_x4() {
  Platform p{
      "Generic PCIe x4 card",
      virtex4_lx100(),
      Link("Generic PCIe x4",
           /*documented_bw=*/1.0e9,
           LinkDirection{/*fixed_overhead_sec=*/1.2e-6,
                         /*sustained_bw=*/8.5e8,
                         /*rearm_sec=*/1.5e-6},
           LinkDirection{/*fixed_overhead_sec=*/1.8e-6,
                         /*sustained_bw=*/8.0e8,
                         /*rearm_sec=*/1.5e-6}),
      /*host_sync_sec=*/6.0e-6,
      /*candidate_clocks_hz=*/{75e6, 100e6, 150e6},
      /*practical_fill_limit=*/0.9,
  };
  return p;
}

Platform platform_by_name(const std::string& name) {
  if (name == "nallatech_h101") return nallatech_h101();
  if (name == "xd1000") return xd1000();
  if (name == "generic_pcie_x4") return generic_pcie_x4();
  throw std::invalid_argument("platform_by_name: unknown platform " + name);
}

}  // namespace rat::rcsim
