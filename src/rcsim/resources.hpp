// FPGA resource accounting.
//
// RAT's resource test (paper §3.3) tracks three resource classes that
// empirically bound design size: dedicated multiply units (DSPs), on-chip
// RAM blocks (BRAMs) and basic logic elements (slices / ALUTs). This header
// defines the usage record, the aggregating tracker, and utilization
// reports against a device inventory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rat::rcsim {

/// Absolute resource counts consumed by (part of) a design.
struct ResourceUsage {
  std::int64_t dsp = 0;    ///< dedicated multiplier/DSP units
  std::int64_t bram = 0;   ///< on-chip RAM blocks
  std::int64_t logic = 0;  ///< basic logic elements (slices or ALUTs)

  ResourceUsage& operator+=(const ResourceUsage& other);
  friend ResourceUsage operator+(ResourceUsage a, const ResourceUsage& b) {
    return a += b;
  }
  /// Scale by an instance count (e.g. 8 identical pipelines).
  friend ResourceUsage operator*(ResourceUsage u, std::int64_t n);
  bool operator==(const ResourceUsage&) const = default;
};

/// Device inventory (what the chip provides).
struct DeviceResources {
  std::int64_t dsp = 0;
  std::int64_t bram = 0;
  std::int64_t logic = 0;
};

/// Fractional utilization of a device by a usage record.
struct UtilizationReport {
  double dsp_fraction = 0.0;
  double bram_fraction = 0.0;
  double logic_fraction = 0.0;

  /// Largest of the three fractions — the binding resource.
  double max_fraction() const;
  /// Name of the binding resource class ("dsp", "bram" or "logic").
  std::string binding_resource() const;
};

UtilizationReport utilization(const ResourceUsage& used,
                              const DeviceResources& available);

/// Aggregates the usage of named design components and checks feasibility.
/// The paper notes routing strain grows steeply near full logic utilization,
/// so feasibility uses a practical fill limit below 100%.
class ResourceTracker {
 public:
  explicit ResourceTracker(DeviceResources available,
                           double practical_fill_limit = 0.9);

  /// Record a component's usage. Returns the running total.
  const ResourceUsage& add(const std::string& component,
                           const ResourceUsage& usage);

  const ResourceUsage& total() const { return total_; }
  const DeviceResources& available() const { return available_; }
  UtilizationReport report() const;

  /// True when every resource class fits under the practical fill limit
  /// (logic) / hard limit (dsp, bram — discrete units either exist or not).
  bool feasible() const;

  /// Per-component breakdown, in insertion order.
  struct Component {
    std::string name;
    ResourceUsage usage;
  };
  const std::vector<Component>& components() const { return components_; }

 private:
  DeviceResources available_;
  double fill_limit_;
  ResourceUsage total_;
  std::vector<Component> components_;
};

}  // namespace rat::rcsim
