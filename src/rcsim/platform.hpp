// RC platform catalog: device + interconnect + host-side behaviour.
//
// A Platform bundles everything a RAT analysis needs to know about the
// target system: the FPGA device inventory, the interconnect model, the
// per-iteration host synchronization cost, and the clock frequencies a
// designer would plausibly sweep (the paper examines 75/100/150 MHz on
// both parts).
#pragma once

#include <string>
#include <vector>

#include "rcsim/device.hpp"
#include "rcsim/interconnect.hpp"

namespace rat::rcsim {

struct Platform {
  std::string name;
  Device device;
  Link link;
  /// Host driver/API cost per iteration (see ExecutionConfig::host_sync_sec).
  double host_sync_sec = 0.0;
  /// Candidate fabric clock frequencies (Hz) for the RAT sweep.
  std::vector<double> candidate_clocks_hz;
  /// Practical logic fill limit before routing strain (paper §3.3).
  double practical_fill_limit = 0.9;
};

/// Nallatech H101-PCIXM: Virtex-4 LX100 behind 133 MHz PCI-X.
Platform nallatech_h101();

/// XtremeData XD1000: Stratix-II EP2S180 on HyperTransport.
Platform xd1000();

/// A generic PCIe x4 card of the same era: documented 1 GB/s, better
/// sustained efficiency and smaller per-transfer overheads than the
/// Nallatech PCI-X stack, with a Virtex-4 LX100-class device. Exists as a
/// porting-study comparison point (the paper's "FPGA platform choices").
Platform generic_pcie_x4();

/// Lookup by name ("nallatech_h101", "xd1000", "generic_pcie_x4").
Platform platform_by_name(const std::string& name);

}  // namespace rat::rcsim
