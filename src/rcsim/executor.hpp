// Iterative communication/computation executor.
//
// Simulates the paper's execution model (Fig. 2): an application runs
// Niter iterations, each consisting of input transfer(s) host->FPGA, a
// fabric computation, and output transfer(s) FPGA->host. The bus and the
// fabric are each a single serial resource; buffering determines how much
// the two overlap:
//
//   * single buffered  — one shared buffer set: iteration i's input cannot
//     start until iteration i-1 has fully completed (strictly serial,
//     Fig. 2 top).
//   * double buffered  — two buffer sets: input i+1 streams while compute i
//     runs, giving the computation-bound / communication-bound overlap
//     patterns of Fig. 2 middle/bottom.
//
// The executor produces a Timeline (for Gantt rendering and invariant
// checks) plus aggregate times directly comparable to the paper's
// "actual" table columns.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rcsim/interconnect.hpp"
#include "rcsim/timeline.hpp"

namespace rat::rcsim {

enum class Buffering { kSingle, kDouble };

/// Transfers performed by one iteration. Applications with chunked I/O
/// (e.g. the 2-D PDF's result read-back) list one entry per DMA.
struct IterationIo {
  std::vector<std::size_t> input_chunks_bytes;
  std::vector<std::size_t> output_chunks_bytes;
};

/// Per-iteration workload description.
struct Workload {
  /// I/O pattern for iteration i.
  std::function<IterationIo(std::size_t iter)> io;
  /// Fabric cycles consumed by iteration i's computation.
  std::function<std::uint64_t(std::size_t iter)> cycles;
  std::size_t n_iterations = 1;
};

struct ExecutionConfig {
  Buffering buffering = Buffering::kSingle;
  double fclock_hz = 100e6;
  /// Host driver/API synchronization cost charged to the bus once per
  /// iteration, before its first input transfer. This is the "additional
  /// delays introduced by repetitive transfers" of paper §4.3; it is part
  /// of the measured wall time but attributed to neither comm nor comp.
  double host_sync_sec = 0.0;
  /// Optional jitter seed; transfers use Link::app_transfer_time with the
  /// link's configured jitter.
  std::uint64_t seed = 0x5eed;
  /// One-time cost before the first iteration (bitstream configuration +
  /// driver setup). RAT ignores it (paper §3.1: "Reconfiguration and other
  /// setup times are ignored"); setting it non-zero quantifies when that
  /// assumption is safe.
  double initial_setup_sec = 0.0;
};

struct ExecutionResult {
  double t_total_sec = 0.0;  ///< makespan (the measured tRC)
  double t_comm_sec = 0.0;   ///< total bus busy time on data transfers
  double t_comp_sec = 0.0;   ///< total fabric busy time
  double t_sync_sec = 0.0;   ///< total host-sync time
  /// Paper-style utilizations computed from the aggregate comm/comp times
  /// (Eqs. 8-11 applied to measured totals).
  double util_comm = 0.0;
  double util_comp = 0.0;
  Timeline timeline;

  /// Per-iteration averages, comparable to the per-iteration tcomm/tcomp
  /// columns in Tables 3/6/9.
  double per_iter_comm(std::size_t n) const;
  double per_iter_comp(std::size_t n) const;
};

/// Run the workload on (link, fabric clock) and return the schedule.
/// Throws std::invalid_argument on empty/invalid workloads.
ExecutionResult execute(const Workload& workload, const Link& link,
                        const ExecutionConfig& config);

}  // namespace rat::rcsim
