#include "rcsim/interconnect.hpp"

#include <stdexcept>

namespace rat::rcsim {

Link::Link(std::string name, double documented_bw, LinkDirection host_to_fpga,
           LinkDirection fpga_to_host)
    : name_(std::move(name)),
      documented_bw_(documented_bw),
      h2f_(host_to_fpga),
      f2h_(fpga_to_host) {
  if (documented_bw_ <= 0.0)
    throw std::invalid_argument("Link: documented_bw must be positive");
  for (const auto* d : {&h2f_, &f2h_}) {
    if (d->sustained_bw <= 0.0)
      throw std::invalid_argument("Link: sustained_bw must be positive");
    if (d->fixed_overhead_sec < 0.0 || d->rearm_sec < 0.0)
      throw std::invalid_argument("Link: negative overhead");
  }
}

const LinkDirection& Link::direction(Direction dir) const {
  return dir == Direction::kHostToFpga ? h2f_ : f2h_;
}

double Link::single_transfer_time(std::size_t bytes, Direction dir) const {
  const auto& d = direction(dir);
  return d.fixed_overhead_sec + static_cast<double>(bytes) / d.sustained_bw;
}

double Link::app_transfer_time(std::size_t bytes, Direction dir) const {
  return single_transfer_time(bytes, dir) + direction(dir).rearm_sec;
}

double Link::measured_alpha(std::size_t bytes, Direction dir) const {
  if (bytes == 0) return 0.0;
  const double ideal = static_cast<double>(bytes) / documented_bw_;
  return ideal / single_transfer_time(bytes, dir);
}

void Link::set_jitter(double fraction) {
  if (fraction < 0.0 || fraction >= 1.0)
    throw std::invalid_argument("Link: jitter fraction out of [0,1)");
  jitter_fraction_ = fraction;
}

double Link::app_transfer_time(std::size_t bytes, Direction dir,
                               util::Rng& rng) const {
  const double t = app_transfer_time(bytes, dir);
  if (jitter_fraction_ == 0.0) return t;
  return t * rng.uniform(1.0 - jitter_fraction_, 1.0 + jitter_fraction_);
}

Link nallatech_pcix_link() {
  // Calibration (see DESIGN.md): a 2048-byte isolated transfer must measure
  // alpha = 0.37 host->FPGA and 0.16 FPGA->host (Table 2), and in-app
  // per-transfer penalties must inflate the 1-D PDF's per-iteration
  // communication ~4-5x and the 2-D PDF's chunked read-back ~6x (§4.3, §5.1).
  return Link("Nallatech H101-PCIXM (133 MHz PCI-X)",
              /*documented_bw=*/1.0e9,
              /*host_to_fpga=*/
              LinkDirection{/*fixed_overhead_sec=*/2.61e-6,
                            /*sustained_bw=*/7.0e8,
                            /*rearm_sec=*/4.8e-6},
              /*fpga_to_host=*/
              LinkDirection{/*fixed_overhead_sec=*/9.87e-6,
                            /*sustained_bw=*/7.0e8,
                            /*rearm_sec=*/8.7e-6});
}

Link xd1000_ht_link() {
  // HyperTransport sustains more than the conservative documented 500 MB/s;
  // MD's measured communication (1.39E-3 s for 2 x 576 KB) implies an
  // effective ~855 MB/s with small per-transfer overheads.
  return Link("XtremeData XD1000 (HyperTransport)",
              /*documented_bw=*/5.0e8,
              /*host_to_fpga=*/
              LinkDirection{/*fixed_overhead_sec=*/2.0e-6,
                            /*sustained_bw=*/8.55e8,
                            /*rearm_sec=*/1.0e-6},
              /*fpga_to_host=*/
              LinkDirection{/*fixed_overhead_sec=*/2.0e-6,
                            /*sustained_bw=*/8.55e8,
                            /*rearm_sec=*/1.0e-6});
}

}  // namespace rat::rcsim
