// Multi-stage workload execution on a single platform.
//
// Simulated counterpart of core::predict_composite (sequential mode): each
// iteration runs several kernel stages back-to-back on one fabric, with
// configurable on-chip hand-off between consecutive stages (skipping the
// intermediate bus crossings). Lets the analytic composition model be
// validated against a schedule that honours bus/fabric serialization.
#pragma once

#include <vector>

#include "rcsim/executor.hpp"

namespace rat::rcsim {

/// One kernel stage of a staged workload.
struct StageWorkload {
  /// Input bytes fetched before this stage computes (ignored when the
  /// previous stage hands off on-chip).
  std::size_t input_bytes = 0;
  /// Output bytes returned after this stage computes (ignored when this
  /// stage hands off on-chip).
  std::size_t output_bytes = 0;
  std::uint64_t cycles = 0;
  bool handoff_on_chip = false;  ///< feed the next stage without the bus
};

struct StagedWorkload {
  std::vector<StageWorkload> stages;
  std::size_t n_iterations = 1;
};

/// Execute all stages of every iteration in order (single buffered; the
/// stage chain shares one buffer set). The final stage must return its
/// output over the bus. Throws std::invalid_argument on malformed input.
ExecutionResult execute_staged(const StagedWorkload& workload,
                               const Link& link,
                               const ExecutionConfig& config);

}  // namespace rat::rcsim
