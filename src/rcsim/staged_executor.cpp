#include "rcsim/staged_executor.hpp"

#include <stdexcept>

namespace rat::rcsim {

ExecutionResult execute_staged(const StagedWorkload& workload,
                               const Link& link,
                               const ExecutionConfig& config) {
  if (workload.stages.empty())
    throw std::invalid_argument("execute_staged: no stages");
  if (workload.n_iterations == 0)
    throw std::invalid_argument("execute_staged: zero iterations");
  if (config.fclock_hz <= 0.0)
    throw std::invalid_argument("execute_staged: non-positive clock");
  if (workload.stages.back().handoff_on_chip)
    throw std::invalid_argument(
        "execute_staged: final stage must return results over the bus");

  util::Rng rng(config.seed);
  ExecutionResult result;
  Timeline& tl = result.timeline;
  double now = 0.0;

  for (std::size_t iter = 0; iter < workload.n_iterations; ++iter) {
    if (config.host_sync_sec > 0.0) {
      tl.add(Event{EventKind::kHostSync, iter, now,
                   now + config.host_sync_sec});
      now += config.host_sync_sec;
      result.t_sync_sec += config.host_sync_sec;
    }
    bool received_on_chip = false;
    for (const auto& stage : workload.stages) {
      if (!received_on_chip && stage.input_bytes > 0) {
        const double dur = link.app_transfer_time(
            stage.input_bytes, Direction::kHostToFpga, rng);
        tl.add(Event{EventKind::kInputTransfer, iter, now, now + dur});
        now += dur;
        result.t_comm_sec += dur;
      }
      const double comp =
          static_cast<double>(stage.cycles) / config.fclock_hz;
      tl.add(Event{EventKind::kCompute, iter, now, now + comp});
      now += comp;
      result.t_comp_sec += comp;

      if (!stage.handoff_on_chip && stage.output_bytes > 0) {
        const double dur = link.app_transfer_time(
            stage.output_bytes, Direction::kFpgaToHost, rng);
        tl.add(Event{EventKind::kOutputTransfer, iter, now, now + dur});
        now += dur;
        result.t_comm_sec += dur;
      }
      received_on_chip = stage.handoff_on_chip;
    }
  }

  result.t_total_sec = tl.end_sec();
  const double denom = result.t_comm_sec + result.t_comp_sec;
  if (denom > 0.0) {
    result.util_comm = result.t_comm_sec / denom;
    result.util_comp = result.t_comp_sec / denom;
  }
  return result;
}

}  // namespace rat::rcsim
