#include "rcsim/resources.hpp"

#include <algorithm>
#include <stdexcept>

namespace rat::rcsim {

ResourceUsage& ResourceUsage::operator+=(const ResourceUsage& other) {
  dsp += other.dsp;
  bram += other.bram;
  logic += other.logic;
  return *this;
}

ResourceUsage operator*(ResourceUsage u, std::int64_t n) {
  u.dsp *= n;
  u.bram *= n;
  u.logic *= n;
  return u;
}

double UtilizationReport::max_fraction() const {
  return std::max({dsp_fraction, bram_fraction, logic_fraction});
}

std::string UtilizationReport::binding_resource() const {
  const double m = max_fraction();
  if (m == dsp_fraction) return "dsp";
  if (m == bram_fraction) return "bram";
  return "logic";
}

UtilizationReport utilization(const ResourceUsage& used,
                              const DeviceResources& available) {
  auto frac = [](std::int64_t u, std::int64_t a) {
    if (a <= 0) return u > 0 ? 1.0 : 0.0;
    return static_cast<double>(u) / static_cast<double>(a);
  };
  return UtilizationReport{frac(used.dsp, available.dsp),
                           frac(used.bram, available.bram),
                           frac(used.logic, available.logic)};
}

ResourceTracker::ResourceTracker(DeviceResources available,
                                 double practical_fill_limit)
    : available_(available), fill_limit_(practical_fill_limit) {
  if (fill_limit_ <= 0.0 || fill_limit_ > 1.0)
    throw std::invalid_argument("ResourceTracker: fill limit out of (0,1]");
}

const ResourceUsage& ResourceTracker::add(const std::string& component,
                                          const ResourceUsage& usage) {
  if (usage.dsp < 0 || usage.bram < 0 || usage.logic < 0)
    throw std::invalid_argument("ResourceTracker: negative usage");
  components_.push_back(Component{component, usage});
  total_ += usage;
  return total_;
}

UtilizationReport ResourceTracker::report() const {
  return utilization(total_, available_);
}

bool ResourceTracker::feasible() const {
  const auto rep = report();
  // DSP and BRAM are discrete dedicated units: using all of them is fine.
  // Logic is where routing strain bites, hence the practical fill limit.
  return rep.dsp_fraction <= 1.0 && rep.bram_fraction <= 1.0 &&
         rep.logic_fraction <= fill_limit_;
}

}  // namespace rat::rcsim
