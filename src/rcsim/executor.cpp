#include "rcsim/executor.hpp"

#include <algorithm>
#include <stdexcept>

namespace rat::rcsim {

double ExecutionResult::per_iter_comm(std::size_t n) const {
  return n ? t_comm_sec / static_cast<double>(n) : 0.0;
}

double ExecutionResult::per_iter_comp(std::size_t n) const {
  return n ? t_comp_sec / static_cast<double>(n) : 0.0;
}

ExecutionResult execute(const Workload& workload, const Link& link,
                        const ExecutionConfig& config) {
  if (!workload.io || !workload.cycles)
    throw std::invalid_argument("execute: workload callbacks not set");
  if (workload.n_iterations == 0)
    throw std::invalid_argument("execute: zero iterations");
  if (config.fclock_hz <= 0.0)
    throw std::invalid_argument("execute: non-positive clock");

  const std::size_t n = workload.n_iterations;
  const std::size_t buffers = config.buffering == Buffering::kSingle ? 1 : 2;
  util::Rng rng(config.seed);

  ExecutionResult result;
  Timeline& tl = result.timeline;

  // Completion times per iteration. compute_done[i] frees input buffer i;
  // output_done[i] frees output buffer i (and, single buffered, the shared
  // buffer set entirely).
  std::vector<double> input_done(n, 0.0);
  std::vector<double> compute_done(n, 0.0);
  std::vector<double> output_done(n, 0.0);

  double bus_free = 0.0;
  double fabric_free = 0.0;
  if (config.initial_setup_sec > 0.0) {
    tl.add(Event{EventKind::kHostSync, 0, 0.0, config.initial_setup_sec});
    result.t_sync_sec += config.initial_setup_sec;
    bus_free = config.initial_setup_sec;
    fabric_free = config.initial_setup_sec;
  }

  // Dependency-faithful in-order simulation. Transfers for iteration i are
  // issued on the bus as soon as their buffer dependency allows; because
  // every task of iteration i depends only on tasks of iterations <= i,
  // processing iterations in order with a running bus/fabric clock yields
  // the same schedule as a full event queue.
  //
  // One subtlety: with double buffering, input i+1 becomes ready while
  // compute i runs, and must be able to occupy the bus *before* output i
  // (Fig. 2: "R1 R2 W1 R3 W2 ..."). We therefore issue iteration i's input
  // eagerly right after iteration i-1's input, before i-1's output is
  // scheduled, whenever its buffer dependency is already satisfied.
  // Implementation: walk iterations, but interleave by issuing input(i+1)
  // between compute(i) start and output(i). That is exactly the FIFO order
  // of readiness for this dependency graph.
  std::vector<double> input_ready(n, 0.0);

  auto do_transfer = [&](std::size_t iter, std::size_t bytes, Direction dir,
                         double ready) {
    const double start = std::max(ready, bus_free);
    const double dur = link.app_transfer_time(bytes, dir, rng);
    const double end = start + dur;
    tl.add(Event{dir == Direction::kHostToFpga ? EventKind::kInputTransfer
                                               : EventKind::kOutputTransfer,
                 iter, start, end});
    result.t_comm_sec += dur;
    bus_free = end;
    return end;
  };

  auto do_sync = [&](std::size_t iter, double ready) {
    if (config.host_sync_sec <= 0.0) return std::max(ready, bus_free);
    const double start = std::max(ready, bus_free);
    const double end = start + config.host_sync_sec;
    tl.add(Event{EventKind::kHostSync, iter, start, end});
    result.t_sync_sec += config.host_sync_sec;
    bus_free = end;
    return end;
  };

  auto issue_input = [&](std::size_t i) {
    // Input buffer availability: with B buffers, iteration i reuses the
    // buffer freed when iteration i-B's compute consumed it; single
    // buffered additionally waits for i-1's output (shared buffer set).
    double ready = 0.0;
    if (i >= buffers) ready = std::max(ready, compute_done[i - buffers]);
    if (buffers == 1 && i >= 1) ready = std::max(ready, output_done[i - 1]);
    ready = do_sync(i, ready);
    const IterationIo io = workload.io(i);
    double end = ready;
    for (std::size_t bytes : io.input_chunks_bytes)
      end = do_transfer(i, bytes, Direction::kHostToFpga, ready);
    input_done[i] = end;
    return io;
  };

  std::vector<IterationIo> ios(n);
  std::vector<bool> input_issued(n, false);

  for (std::size_t i = 0; i < n; ++i) {
    if (!input_issued[i]) {
      ios[i] = issue_input(i);
      input_issued[i] = true;
    }

    // Fabric: compute i after its input, the previous compute, and (output
    // buffer reuse) output i-B.
    double comp_ready = input_done[i];
    if (i >= 1) comp_ready = std::max(comp_ready, compute_done[i - 1]);
    if (i >= buffers) comp_ready = std::max(comp_ready, output_done[i - buffers]);
    const double comp_start = std::max(comp_ready, fabric_free);
    const double comp_dur =
        static_cast<double>(workload.cycles(i)) / config.fclock_hz;
    const double comp_end = comp_start + comp_dur;
    tl.add(Event{EventKind::kCompute, i, comp_start, comp_end});
    result.t_comp_sec += comp_dur;
    fabric_free = comp_end;
    compute_done[i] = comp_end;

    // With double buffering the next iteration's input can stream during
    // this compute; issue it now so it wins the bus ahead of output i
    // (matching Fig. 2's R2-before-W1 ordering).
    if (buffers == 2 && i + 1 < n && !input_issued[i + 1]) {
      ios[i + 1] = issue_input(i + 1);
      input_issued[i + 1] = true;
    }

    double out_end = compute_done[i];
    for (std::size_t bytes : ios[i].output_chunks_bytes)
      out_end = do_transfer(i, bytes, Direction::kFpgaToHost, compute_done[i]);
    output_done[i] = out_end;
  }

  result.t_total_sec = tl.end_sec();
  const double denom = result.t_comm_sec + result.t_comp_sec;
  if (denom > 0.0) {
    result.util_comm = result.t_comm_sec / denom;
    result.util_comp = result.t_comp_sec / denom;
  }
  return result;
}

}  // namespace rat::rcsim
