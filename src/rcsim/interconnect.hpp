// CPU<->FPGA interconnect timing model.
//
// This is the substitution for the physical buses of the paper's two
// platforms (133 MHz PCI-X on the Nallatech H101-PCIXM, HyperTransport on
// the XtremeData XD1000). A transfer of B bytes costs
//
//     t_single = fixed_overhead(direction) + B / sustained_bw(direction)
//
// and every transfer issued from inside a running application pays an
// additional re-arm penalty (driver/API turnaround between back-to-back
// DMAs) that an isolated microbenchmark transfer does not observe. This
// split is exactly the error mechanism the paper reports: alpha values
// derived from single-transfer microbenchmarks under-predicted the cost of
// the application's 800 small repetitive transfers (paper §4.3) and of the
// 2-D PDF's chunked result read-back (§5.1).
//
// `documented_bw` is the datasheet number (RAT's throughput_ideal); the
// measured efficiency alpha(B) = ideal_time(B) / t_single(B) is what the
// microbenchmark tabulates.
#pragma once

#include <cstddef>
#include <string>

#include "util/rng.hpp"

namespace rat::rcsim {

/// Transfer direction. The paper names these host-centrically ("write" =
/// host writes input to the FPGA, "read" = host reads results back); we
/// name them by direction to avoid that ambiguity.
enum class Direction {
  kHostToFpga,  ///< input data (the paper's alpha_write, Fig. 2's "R")
  kFpgaToHost,  ///< results (the paper's alpha_read, Fig. 2's "W")
};

/// Per-direction timing parameters.
struct LinkDirection {
  double fixed_overhead_sec = 0.0;  ///< DMA setup cost per transfer
  double sustained_bw = 0.0;        ///< achievable bytes/sec on the wire
  double rearm_sec = 0.0;           ///< extra per-transfer cost inside an app
};

/// A complete interconnect model.
class Link {
 public:
  Link(std::string name, double documented_bw, LinkDirection host_to_fpga,
       LinkDirection fpga_to_host);

  const std::string& name() const { return name_; }

  /// Datasheet bandwidth in bytes/sec (RAT's throughput_ideal).
  double documented_bw() const { return documented_bw_; }

  const LinkDirection& direction(Direction dir) const;

  /// Time for one isolated transfer (what a microbenchmark measures).
  double single_transfer_time(std::size_t bytes, Direction dir) const;

  /// Time for one transfer issued inside a running application
  /// (single_transfer_time + rearm penalty).
  double app_transfer_time(std::size_t bytes, Direction dir) const;

  /// Effective fraction of documented bandwidth achieved by an isolated
  /// transfer of the given size — the quantity RAT calls alpha.
  double measured_alpha(std::size_t bytes, Direction dir) const;

  /// Optional multiplicative jitter on transfer times: each transfer is
  /// scaled by uniform(1-f, 1+f). Default 0 (deterministic).
  void set_jitter(double fraction);
  double jitter() const { return jitter_fraction_; }

  /// Jittered transfer time; deterministic given the Rng state.
  double app_transfer_time(std::size_t bytes, Direction dir,
                           util::Rng& rng) const;

 private:
  std::string name_;
  double documented_bw_;
  LinkDirection h2f_;
  LinkDirection f2h_;
  double jitter_fraction_ = 0.0;
};

/// Nallatech H101-PCIXM bus model: 133 MHz / 64-bit PCI-X, documented
/// 1000 MB/s. Calibrated so that an isolated 2 KB transfer reproduces the
/// paper's microbenchmark alphas (0.37 host->FPGA, 0.16 FPGA->host).
Link nallatech_pcix_link();

/// XtremeData XD1000 HyperTransport model, documented 500 MB/s; the real
/// fabric sustains more than the documented figure (the paper's measured MD
/// communication beat its prediction by ~2x).
Link xd1000_ht_link();

}  // namespace rat::rcsim
