// Generic pipelined functional-unit cycle model.
//
// The "actual" computation times in the paper differ from RAT's Eq. (4)
// only through micro-architectural effects: pipeline fill/drain latency,
// per-item initiation intervals above 1, and stalls between items (paper
// §4.3: enough latency and pipeline stalls existed to warrant a 17%
// reduction of the throughput estimate). This model captures exactly those
// terms, so application kernels can express their hardware structure and
// the simulator can produce honest "measured" cycle counts.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rat::rcsim {

struct PipelineSpec {
  std::string name;
  /// Fill/drain latency in cycles (paid once per batch).
  std::uint64_t depth = 1;
  /// Cycles between successive work items in steady state (>= 1; fractions
  /// model occasional extra cycles, e.g. a BRAM port conflict every other
  /// item giving 1.5).
  double initiation_interval = 1.0;
  /// Extra stall cycles between consecutive items (input handshake, etc.).
  double stall_per_item = 0.0;
  /// Parallel instances processing disjoint work.
  std::uint64_t instances = 1;
  /// Operations performed per work item (for effective ops/cycle reports).
  double ops_per_item = 1.0;

  void validate() const {
    if (depth == 0) throw std::invalid_argument("PipelineSpec: depth == 0");
    if (initiation_interval < 1.0)
      throw std::invalid_argument("PipelineSpec: II < 1");
    if (stall_per_item < 0.0)
      throw std::invalid_argument("PipelineSpec: negative stall");
    if (instances == 0)
      throw std::invalid_argument("PipelineSpec: instances == 0");
    if (ops_per_item <= 0.0)
      throw std::invalid_argument("PipelineSpec: ops_per_item <= 0");
  }
};

/// Cycles for @p items work items distributed over the instances: each
/// instance processes ceil(items/instances) items at (II + stall) cycles
/// each, plus one fill of `depth` cycles.
std::uint64_t pipeline_cycles(const PipelineSpec& spec, std::uint64_t items);

/// Effective operations per cycle achieved on @p items (compare against
/// RAT's throughput_proc input).
double effective_ops_per_cycle(const PipelineSpec& spec, std::uint64_t items);

}  // namespace rat::rcsim
