#include "rcsim/multiboard.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace rat::rcsim {

MultiBoardResult execute_multiboard(const MultiBoardWorkload& workload,
                                    const Link& link, double fclock_hz) {
  if (workload.boards.empty())
    throw std::invalid_argument("execute_multiboard: no boards");
  if (workload.n_iterations == 0)
    throw std::invalid_argument("execute_multiboard: zero iterations");
  if (fclock_hz <= 0.0)
    throw std::invalid_argument("execute_multiboard: non-positive clock");

  const std::size_t k = workload.boards.size();
  const std::size_t n = workload.n_iterations;
  MultiBoardResult result;
  Timeline& tl = result.timeline;

  double bus_free = 0.0;
  // Per-iteration, per-board completion times (double-buffered: input for
  // iteration i reuses the buffer freed by compute i-2).
  std::vector<std::vector<double>> input_done(n, std::vector<double>(k, 0.0));
  std::vector<std::vector<double>> compute_done(n,
                                                std::vector<double>(k, 0.0));
  std::vector<bool> inputs_issued(n, false);

  auto bus_transfer = [&](std::size_t iter, std::size_t bytes,
                          Direction dir, double ready) {
    const double start = std::max(ready, bus_free);
    const double dur = link.app_transfer_time(bytes, dir);
    tl.add(Event{dir == Direction::kHostToFpga ? EventKind::kInputTransfer
                                               : EventKind::kOutputTransfer,
                 iter, start, start + dur});
    result.t_bus_busy_sec += dur;
    bus_free = start + dur;
    return start + dur;
  };

  auto issue_inputs = [&](std::size_t iter) {
    for (std::size_t b = 0; b < k; ++b) {
      const double ready = iter >= 2 ? compute_done[iter - 2][b] : 0.0;
      input_done[iter][b] = bus_transfer(
          iter, workload.boards[b].input_bytes, Direction::kHostToFpga,
          ready);
    }
    inputs_issued[iter] = true;
  };

  std::vector<double> comp_busy(k, 0.0);
  for (std::size_t iter = 0; iter < n; ++iter) {
    if (!inputs_issued[iter]) issue_inputs(iter);

    for (std::size_t b = 0; b < k; ++b) {
      double start = input_done[iter][b];
      if (iter > 0) start = std::max(start, compute_done[iter - 1][b]);
      const double dur =
          static_cast<double>(workload.boards[b].cycles) / fclock_hz;
      // The shared timeline has a single compute lane; draw it only for
      // k = 1 where it is serial. Busy accounting is exact for any k.
      if (k == 1)
        tl.add(Event{EventKind::kCompute, iter, start, start + dur});
      comp_busy[b] += dur;
      compute_done[iter][b] = start + dur;
    }

    // Double-buffer prefetch: next iteration's inputs stream while the
    // boards compute, ahead of this iteration's outputs.
    if (iter + 1 < n) issue_inputs(iter + 1);

    for (std::size_t b = 0; b < k; ++b) {
      bus_transfer(iter, workload.boards[b].output_bytes,
                   Direction::kFpgaToHost, compute_done[iter][b]);
    }
  }

  result.t_comp_busy_max_sec =
      *std::max_element(comp_busy.begin(), comp_busy.end());
  double end = bus_free;
  for (double t : compute_done[n - 1]) end = std::max(end, t);
  result.t_total_sec = std::max(end, tl.end_sec());
  return result;
}

MultiBoardWorkload split_evenly(
    std::size_t elements_in, std::size_t elements_out,
    double bytes_per_element, int boards, std::size_t n_iterations,
    const std::function<std::uint64_t(std::size_t)>& cycles_fn) {
  if (boards < 1)
    throw std::invalid_argument("split_evenly: boards < 1");
  if (!cycles_fn)
    throw std::invalid_argument("split_evenly: null cycles_fn");
  MultiBoardWorkload w;
  w.n_iterations = n_iterations;
  const auto kb = static_cast<std::size_t>(boards);
  std::size_t remaining_in = elements_in;
  std::size_t remaining_out = elements_out;
  for (std::size_t b = 0; b < kb; ++b) {
    const std::size_t share_in =
        (remaining_in + (kb - b) - 1) / (kb - b);  // ceiling of remainder
    const std::size_t share_out = (remaining_out + (kb - b) - 1) / (kb - b);
    remaining_in -= share_in;
    remaining_out -= share_out;
    BoardShare s;
    s.input_bytes = static_cast<std::size_t>(
        std::ceil(static_cast<double>(share_in) * bytes_per_element));
    s.output_bytes = static_cast<std::size_t>(
        std::ceil(static_cast<double>(share_out) * bytes_per_element));
    s.cycles = cycles_fn(share_in);
    w.boards.push_back(s);
  }
  return w;
}

}  // namespace rat::rcsim
