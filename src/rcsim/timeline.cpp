#include "rcsim/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rat::rcsim {

namespace {
bool is_comm(EventKind k) {
  return k == EventKind::kInputTransfer || k == EventKind::kOutputTransfer ||
         k == EventKind::kHostSync;
}
}  // namespace

void Timeline::add(Event e) {
  if (e.end_sec < e.start_sec)
    throw std::invalid_argument("Timeline: event ends before it starts");
  events_.push_back(e);
}

double Timeline::end_sec() const {
  double end = 0.0;
  for (const auto& e : events_) end = std::max(end, e.end_sec);
  return end;
}

double Timeline::comm_busy_sec() const {
  double t = 0.0;
  for (const auto& e : events_)
    if (e.kind == EventKind::kInputTransfer ||
        e.kind == EventKind::kOutputTransfer)
      t += e.duration();
  return t;
}

double Timeline::comp_busy_sec() const {
  double t = 0.0;
  for (const auto& e : events_)
    if (e.kind == EventKind::kCompute) t += e.duration();
  return t;
}

double Timeline::sync_busy_sec() const {
  double t = 0.0;
  for (const auto& e : events_)
    if (e.kind == EventKind::kHostSync) t += e.duration();
  return t;
}

bool Timeline::lanes_consistent() const {
  auto check_lane = [this](bool comm_lane) {
    std::vector<const Event*> lane;
    for (const auto& e : events_)
      if (is_comm(e.kind) == comm_lane) lane.push_back(&e);
    std::sort(lane.begin(), lane.end(), [](const Event* a, const Event* b) {
      return a->start_sec < b->start_sec;
    });
    constexpr double kSlack = 1e-12;
    for (std::size_t i = 1; i < lane.size(); ++i)
      if (lane[i]->start_sec < lane[i - 1]->end_sec - kSlack) return false;
    return true;
  };
  return check_lane(true) && check_lane(false);
}

std::string Timeline::to_chrome_trace() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    const char* name = "?";
    switch (e.kind) {
      case EventKind::kInputTransfer: name = "input transfer"; break;
      case EventKind::kOutputTransfer: name = "output transfer"; break;
      case EventKind::kCompute: name = "compute"; break;
      case EventKind::kHostSync: name = "host sync"; break;
    }
    if (!first) os << ',';
    first = false;
    // tid 1 = bus lane, tid 2 = fabric lane; microsecond timestamps.
    os << "{\"name\":\"" << name << " #" << e.iteration + 1
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << (is_comm(e.kind) ? 1 : 2) << ",\"ts\":" << e.start_sec * 1e6
       << ",\"dur\":" << e.duration() * 1e6 << '}';
  }
  os << "]}";
  return os.str();
}

std::string Timeline::to_gantt(std::size_t width) const {
  if (events_.empty()) return "(empty timeline)\n";
  if (width < 10) width = 10;
  const double total = end_sec();
  if (total <= 0.0) return "(zero-length timeline)\n";

  auto render_lane = [&](bool comm_lane) {
    std::string row(width, ' ');
    for (const auto& e : events_) {
      if (is_comm(e.kind) != comm_lane) continue;
      auto col = [&](double t) {
        return std::min<std::size_t>(
            width - 1,
            static_cast<std::size_t>(std::floor(t / total *
                                                static_cast<double>(width))));
      };
      const std::size_t c0 = col(e.start_sec);
      const std::size_t c1 = std::max(c0, col(std::nextafter(e.end_sec, 0.0)));
      char fill = '?';
      switch (e.kind) {
        case EventKind::kInputTransfer: fill = 'R'; break;
        case EventKind::kOutputTransfer: fill = 'W'; break;
        case EventKind::kCompute: fill = 'C'; break;
        case EventKind::kHostSync: fill = 's'; break;
      }
      for (std::size_t c = c0; c <= c1; ++c) row[c] = fill;
      // Tag the block with its 1-based iteration number when it fits.
      const std::string tag = std::to_string(e.iteration + 1);
      if (c1 - c0 + 1 > tag.size())
        for (std::size_t k = 0; k < tag.size(); ++k) row[c0 + 1 + k] = tag[k];
    }
    return row;
  };

  std::ostringstream os;
  os << "Comm |" << render_lane(true) << "|\n";
  os << "Comp |" << render_lane(false) << "|\n";
  os << "      0" << std::string(width > 8 ? width - 8 : 1, ' ') << "t="
     << total << "s\n";
  os << "      legend: R=input transfer, W=output transfer, C=compute, "
        "s=host sync\n";
  return os.str();
}

}  // namespace rat::rcsim
