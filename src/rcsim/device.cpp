#include "rcsim/device.hpp"

#include <stdexcept>

namespace rat::rcsim {

std::int64_t Device::dsp_per_multiplier(int operand_bits) const {
  if (operand_bits <= 0 || operand_bits > 64)
    throw std::invalid_argument("dsp_per_multiplier: width out of (0,64]");
  switch (family) {
    case Family::kXilinxVirtex4: {
      // One DSP48 multiplies 18x18 signed. Wider multiplies are built from
      // 17-bit partial products; the vendor mapping for 32-bit fixed point
      // uses two DSP48s with fabric correction (paper §3.3), and four for
      // widths up to 35 bits when a full-precision product is needed.
      if (operand_bits <= 18) return 1;
      if (operand_bits <= 32) return 2;
      if (operand_bits <= 35) return 4;
      return 8;
    }
    case Family::kAlteraStratix2: {
      // Stratix-II DSP blocks are counted in 9-bit elements: an 18x18
      // multiply consumes 2 elements, a 36x36 multiply consumes 8.
      if (operand_bits <= 9) return 1;
      if (operand_bits <= 18) return 2;
      if (operand_bits <= 36) return 8;
      return 16;
    }
  }
  throw std::logic_error("unreachable");
}

std::int64_t Device::bytes_per_bram() const {
  switch (family) {
    case Family::kXilinxVirtex4:
      return 18 * 1024 / 8;  // 18-Kbit block RAM
    case Family::kAlteraStratix2:
      return (4 * 1024 + 512) / 8;  // M4K: 4 Kbit + 512 parity bits = 576 B
  }
  throw std::logic_error("unreachable");
}

std::int64_t Device::bram_for_bytes(std::int64_t bytes) const {
  if (bytes < 0) throw std::invalid_argument("bram_for_bytes: negative");
  const std::int64_t per = bytes_per_bram();
  return (bytes + per - 1) / per;
}

Device virtex4_lx100() {
  Device d;
  d.name = "Xilinx Virtex-4 LX100";
  d.family = Family::kXilinxVirtex4;
  d.inventory = DeviceResources{96, 240, 49152};
  d.dsp_unit_name = "DSP48";
  d.bram_unit_name = "BRAM18";
  d.logic_unit_name = "slices";
  return d;
}

Device stratix2_ep2s180() {
  Device d;
  d.name = "Altera Stratix-II EP2S180";
  d.family = Family::kAlteraStratix2;
  d.inventory = DeviceResources{768, 768, 143520};
  d.dsp_unit_name = "9-bit DSP";
  d.bram_unit_name = "M4K";
  d.logic_unit_name = "ALUTs";
  return d;
}

Device device_by_name(const std::string& name) {
  if (name == "lx100") return virtex4_lx100();
  if (name == "ep2s180") return stratix2_ep2s180();
  throw std::invalid_argument("device_by_name: unknown device " + name);
}

}  // namespace rat::rcsim
