// Multi-board execution on a shared host interconnect.
//
// Simulated counterpart of core::predict_scaling: k FPGAs split each
// iteration's elements; every board's transfers serialize on the single
// host bus while the boards compute in parallel. Double buffered per
// board, so in steady state the iteration time is max(total bus time,
// slowest board's compute) — the analytic model's assumption, here derived
// from an explicit schedule instead of assumed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rcsim/interconnect.hpp"
#include "rcsim/timeline.hpp"

namespace rat::rcsim {

struct BoardShare {
  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  std::uint64_t cycles = 0;
};

struct MultiBoardWorkload {
  /// Per-board share of one iteration (size = board count, >= 1).
  std::vector<BoardShare> boards;
  std::size_t n_iterations = 1;
};

struct MultiBoardResult {
  double t_total_sec = 0.0;
  double t_bus_busy_sec = 0.0;       ///< total transfer time on the shared bus
  double t_comp_busy_max_sec = 0.0;  ///< busiest single board's compute time
  Timeline timeline;                 ///< bus lane + aggregated compute lane
};

/// Execute with double buffering per board. Boards prefetch iteration i+1
/// while computing i; the bus serves transfers in board order.
MultiBoardResult execute_multiboard(const MultiBoardWorkload& workload,
                                    const Link& link, double fclock_hz);

/// Convenience: split @p elements_in/out evenly over @p boards (ceiling
/// share on the earlier boards) with @p cycles_fn giving per-board cycles
/// from its element share.
MultiBoardWorkload split_evenly(
    std::size_t elements_in, std::size_t elements_out,
    double bytes_per_element, int boards, std::size_t n_iterations,
    const std::function<std::uint64_t(std::size_t)>& cycles_fn);

}  // namespace rat::rcsim
