#include "rcsim/microbench.hpp"

#include <stdexcept>

#include "util/format.hpp"

namespace rat::rcsim {

Microbench::Microbench(const Link& link, int repeats, std::uint64_t seed)
    : link_(link), repeats_(repeats), rng_(seed) {
  if (repeats_ <= 0) throw std::invalid_argument("Microbench: repeats <= 0");
}

AlphaSample Microbench::measure(std::size_t bytes, Direction dir) {
  // A microbenchmark issues isolated transfers (no application re-arm
  // cost); with jitter enabled, averaging over repeats mirrors how one
  // would time a real bus.
  double total = 0.0;
  for (int i = 0; i < repeats_; ++i) {
    double t = link_.single_transfer_time(bytes, dir);
    if (link_.jitter() > 0.0)
      t *= rng_.uniform(1.0 - link_.jitter(), 1.0 + link_.jitter());
    total += t;
  }
  AlphaSample s;
  s.bytes = bytes;
  s.dir = dir;
  s.time_sec = total / repeats_;
  const double ideal = static_cast<double>(bytes) / link_.documented_bw();
  s.alpha = bytes == 0 ? 0.0 : ideal / s.time_sec;
  return s;
}

std::vector<AlphaSample> Microbench::sweep(
    const std::vector<std::size_t>& sizes) {
  std::vector<AlphaSample> out;
  out.reserve(sizes.size() * 2);
  for (std::size_t bytes : sizes) {
    out.push_back(measure(bytes, Direction::kHostToFpga));
    out.push_back(measure(bytes, Direction::kFpgaToHost));
  }
  return out;
}

std::vector<AlphaSample> Microbench::sweep_default() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 256; s <= (4u << 20); s *= 2) sizes.push_back(s);
  return sweep(sizes);
}

CommAlphas Microbench::derive_alphas(std::size_t probe_bytes) {
  CommAlphas a;
  a.alpha_write = measure(probe_bytes, Direction::kHostToFpga).alpha;
  a.alpha_read = measure(probe_bytes, Direction::kFpgaToHost).alpha;
  return a;
}

util::Table Microbench::to_table(const std::vector<AlphaSample>& samples) {
  util::Table t({"size", "direction", "time (s)", "alpha"});
  for (const auto& s : samples) {
    t.add_row({util::bytes(static_cast<double>(s.bytes)),
               s.dir == Direction::kHostToFpga ? "host->FPGA" : "FPGA->host",
               util::sci(s.time_sec), util::fixed(s.alpha, 3)});
  }
  return t;
}

}  // namespace rat::rcsim
