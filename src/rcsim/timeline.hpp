// Execution event timeline + ASCII Gantt rendering (reproduces Figure 2).
//
// The executor records every bus transfer and fabric computation as an
// interval on one of two lanes ("Comm", "Comp"); the renderer draws the
// paper's overlap diagrams — single buffered, double buffered
// computation-bound and double buffered communication-bound.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rat::rcsim {

enum class EventKind {
  kInputTransfer,   ///< host->FPGA (Fig. 2 "R")
  kOutputTransfer,  ///< FPGA->host (Fig. 2 "W")
  kCompute,         ///< fabric busy (Fig. 2 "C")
  kHostSync,        ///< per-iteration driver synchronization
};

struct Event {
  EventKind kind = EventKind::kCompute;
  std::size_t iteration = 0;
  double start_sec = 0.0;
  double end_sec = 0.0;

  double duration() const { return end_sec - start_sec; }
};

class Timeline {
 public:
  void add(Event e);

  const std::vector<Event>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Makespan: end of the latest event (0 when empty).
  double end_sec() const;

  /// Total busy time of the communication lane (transfers only, sync
  /// excluded) and of the computation lane.
  double comm_busy_sec() const;
  double comp_busy_sec() const;
  double sync_busy_sec() const;

  /// Verify no two events on the same lane overlap (the bus and the fabric
  /// are each a single resource). Returns false on violation.
  bool lanes_consistent() const;

  /// ASCII Gantt chart in the style of the paper's Figure 2: a "Comm" row
  /// of R#/W# blocks and a "Comp" row of C# blocks, scaled to @p width
  /// character columns.
  std::string to_gantt(std::size_t width = 100) const;

  /// Chrome-tracing JSON (chrome://tracing / Perfetto "traceEvents"
  /// format): one complete event per interval, comm and comp as separate
  /// tracks. Times are exported in microseconds.
  std::string to_chrome_trace() const;

 private:
  std::vector<Event> events_;
};

}  // namespace rat::rcsim
