#include "fixedpoint/error_analysis.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace rat::fx {

ErrorReport compare(std::span<const double> reference,
                    std::span<const double> actual) {
  if (reference.size() != actual.size() || reference.empty())
    throw std::invalid_argument("compare: size mismatch or empty");
  double ref_scale = 0.0;
  for (double r : reference) ref_scale = std::fmax(ref_scale, std::fabs(r));
  if (ref_scale == 0.0) ref_scale = 1.0;

  ErrorReport rep;
  double sum_abs = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double e = std::fabs(reference[i] - actual[i]);
    rep.max_abs_error = std::fmax(rep.max_abs_error, e);
    sum_abs += e;
    sum_sq += e * e;
  }
  const auto n = static_cast<double>(reference.size());
  rep.mean_abs_error = sum_abs / n;
  rep.rmse = std::sqrt(sum_sq / n);
  rep.max_error_percent = rep.max_abs_error / ref_scale * 100.0;
  return rep;
}

ErrorReport representation_error(std::span<const double> reference,
                                 Format fmt) {
  std::vector<double> quantized;
  quantized.reserve(reference.size());
  for (double r : reference)
    quantized.push_back(Fixed::from_double(r, fmt).to_double());
  return compare(reference, quantized);
}

int required_int_bits(std::span<const double> data) {
  if (data.empty()) throw std::invalid_argument("required_int_bits: empty");
  double mag = 0.0;
  for (double x : data) mag = std::fmax(mag, std::fabs(x));
  if (mag == 0.0) return 0;
  // Need 2^int_bits > mag, i.e. int_bits >= floor(log2(mag)) + 1.
  return static_cast<int>(std::floor(std::log2(mag))) + 1;
}

std::optional<PrecisionChoice> search_min_total_bits(
    const FixedKernel& kernel, std::span<const double> reference,
    double tolerance_percent, int min_bits, int max_bits, int int_bits) {
  if (min_bits > max_bits)
    throw std::invalid_argument("search_min_total_bits: min > max");
  for (int bits = min_bits; bits <= max_bits; ++bits) {
    const Format fmt{bits, bits - 1 - int_bits, true};
    if (fmt.frac_bits < 0 || fmt.frac_bits > fmt.total_bits) continue;
    const auto out = kernel(fmt);
    const auto rep = compare(reference, out);
    if (rep.within_percent(tolerance_percent))
      return PrecisionChoice{fmt, rep};
  }
  return std::nullopt;
}

std::vector<PrecisionChoice> sweep_total_bits(const FixedKernel& kernel,
                                              std::span<const double> reference,
                                              int min_bits, int max_bits,
                                              int int_bits) {
  std::vector<PrecisionChoice> out;
  for (int bits = min_bits; bits <= max_bits; ++bits) {
    const Format fmt{bits, bits - 1 - int_bits, true};
    if (fmt.frac_bits < 0 || fmt.frac_bits > fmt.total_bits) continue;
    out.push_back(PrecisionChoice{fmt, compare(reference, kernel(fmt))});
  }
  return out;
}

}  // namespace rat::fx
