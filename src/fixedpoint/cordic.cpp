#include "fixedpoint/cordic.hpp"

#include <cmath>
#include <stdexcept>

namespace rat::fx {

Cordic::Cordic(Format working_format, int iterations)
    : fmt_(working_format), iterations_(iterations) {
  fmt_.validate();
  if (fmt_.int_bits() < 2)
    throw std::invalid_argument(
        "Cordic: working format needs >= 2 integer bits (gain ~1.65)");
  if (iterations_ < 1 || iterations_ > 48)
    throw std::invalid_argument("Cordic: iterations outside [1,48]");

  gain_ = 1.0;
  atan_table_.reserve(iterations_);
  for (int i = 0; i < iterations_; ++i) {
    gain_ *= std::sqrt(1.0 + std::ldexp(1.0, -2 * i));
    atan_table_.push_back(
        Fixed::from_double(std::atan(std::ldexp(1.0, -i)), fmt_).raw());
  }
  inv_gain_raw_ = Fixed::from_double(1.0 / gain_, fmt_).raw();
}

CordicResult Cordic::run(std::int64_t x, std::int64_t y, std::int64_t z,
                         bool vectoring) const {
  for (int i = 0; i < iterations_; ++i) {
    // Direction: rotation mode chases z to 0; vectoring chases y to 0.
    const bool positive = vectoring ? (y < 0) : (z >= 0);
    const std::int64_t dx = y >> i;  // arithmetic shifts, as in hardware
    const std::int64_t dy = x >> i;
    if (positive) {
      x -= dx;
      y += dy;
      z -= atan_table_[static_cast<std::size_t>(i)];
    } else {
      x += dx;
      y -= dy;
      z += atan_table_[static_cast<std::size_t>(i)];
    }
  }
  CordicResult r;
  const double scale = fmt_.resolution();
  r.x = static_cast<double>(x) * scale;
  r.y = static_cast<double>(y) * scale;
  r.z = static_cast<double>(z) * scale;
  return r;
}

CordicResult Cordic::rotate(double radians) const {
  if (std::fabs(radians) > M_PI / 2.0 + 1e-12)
    throw std::invalid_argument("Cordic::rotate: |angle| > pi/2");
  // Start at (1/K, 0) so the aggregate gain lands the result on the unit
  // circle without a post-multiply.
  const std::int64_t z0 = Fixed::from_double(radians, fmt_).raw();
  return run(inv_gain_raw_, 0, z0, /*vectoring=*/false);
}

CordicResult Cordic::vector(double x0, double y0) const {
  if (x0 <= 0.0)
    throw std::invalid_argument("Cordic::vector: x0 must be positive");
  // Inputs must leave headroom for the gain.
  const double headroom = fmt_.max_value() / gain_;
  if (std::fabs(x0) > headroom || std::fabs(y0) > headroom)
    throw std::invalid_argument("Cordic::vector: input exceeds headroom");
  const std::int64_t x = Fixed::from_double(x0, fmt_).raw();
  const std::int64_t y = Fixed::from_double(y0, fmt_).raw();
  CordicResult r = run(x, y, 0, /*vectoring=*/true);
  // Compensate the gain with one multiply (a DSP slice in hardware).
  const Fixed mag = Fixed::mul(
      Fixed::from_double(r.x, fmt_),
      Fixed::from_raw(inv_gain_raw_, fmt_), fmt_, Rounding::kNearest);
  r.x = mag.to_double();
  return r;
}

double Cordic::magnitude(double a, double b) const {
  // Vectoring needs x > 0: fold the plane with |a|, |b| (magnitude is
  // quadrant independent). Degenerate zero vector short-circuits.
  const double ax = std::fabs(a), ay = std::fabs(b);
  if (ax == 0.0 && ay == 0.0) return 0.0;
  // Keep x the larger component for best convergence.
  const double x0 = std::max(ax, ay);
  const double y0 = std::min(ax, ay);
  return vector(x0, y0).x;
}

}  // namespace rat::fx
