// Fixed-point CORDIC (COordinate Rotation DIgital Computer).
//
// The canonical FPGA iterative arithmetic unit: rotation mode computes
// sin/cos of an angle, vectoring mode computes the magnitude and angle of
// a vector — all with shifts and adds, one iteration per cycle. It is the
// textbook instance of the paper's §3.1 "what is an operation" question
// (like the Booth multiplier: one logical operation, N clocked
// micro-operations), so the model exposes its iteration count for op/cycle
// accounting, and the implementation mirrors hardware exactly: two's-
// complement datapath, arithmetic right shifts, a precomputed arctangent
// table, and a constant-gain compensation multiply.
#pragma once

#include <cstdint>
#include <vector>

#include "fixedpoint/fixed.hpp"

namespace rat::fx {

struct CordicResult {
  double x = 0.0;  ///< rotation: cos(theta); vectoring: magnitude
  double y = 0.0;  ///< rotation: sin(theta); vectoring: ~0
  double z = 0.0;  ///< rotation: ~0 residual; vectoring: atan2(y, x)
};

/// A CORDIC engine for a given datapath width and iteration count.
class Cordic {
 public:
  /// @param working_format  signed fixed-point datapath; needs >= 2
  ///        integer bits (intermediate magnitudes reach ~1.65).
  /// @param iterations      micro-rotations (= cycles in hardware);
  ///        precision ~ 2^-iterations, capped by the format.
  explicit Cordic(Format working_format = Format{18, 15, true},
                  int iterations = 14);

  int iterations() const { return iterations_; }
  const Format& format() const { return fmt_; }

  /// Rotation mode: from (x,y)=(1/K, 0) rotate by @p radians; returns
  /// (cos, sin). Valid for |radians| <= pi/2 (hardware handles other
  /// quadrants with a pre-rotation; apply one yourself for wider ranges).
  CordicResult rotate(double radians) const;

  /// Vectoring mode: drive y to zero; returns magnitude (gain-compensated)
  /// in x and the angle atan2(y0, x0) in z. Requires x0 > 0 (right half
  /// plane, as hardware vectoring units do).
  CordicResult vector(double x0, double y0) const;

  /// sqrt(a^2 + b^2) via vectoring — the distance primitive an MD force
  /// pipeline would instantiate instead of a multiplier-hungry sqrt.
  double magnitude(double a, double b) const;

  /// The aggregate gain K = prod sqrt(1 + 2^-2i) the iterations introduce.
  double gain() const { return gain_; }

 private:
  Format fmt_;
  int iterations_;
  double gain_;
  std::vector<std::int64_t> atan_table_;  ///< raw angles per iteration
  std::int64_t inv_gain_raw_;             ///< 1/K in the working format

  CordicResult run(std::int64_t x, std::int64_t y, std::int64_t z,
                   bool vectoring) const;
};

}  // namespace rat::fx
