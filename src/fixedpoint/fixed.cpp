#include "fixedpoint/fixed.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rat::fx {

namespace {

/// Clamp/wrap/throw a wide intermediate into the format's raw range.
std::int64_t apply_overflow(__int128 raw, const Format& fmt,
                            Overflow overflow) {
  const __int128 lo = fmt.raw_min();
  const __int128 hi = fmt.raw_max();
  if (raw >= lo && raw <= hi) return static_cast<std::int64_t>(raw);
  switch (overflow) {
    case Overflow::kSaturate:
      return static_cast<std::int64_t>(raw < lo ? lo : hi);
    case Overflow::kWrap: {
      const __int128 span = hi - lo + 1;
      __int128 r = (raw - lo) % span;
      if (r < 0) r += span;
      return static_cast<std::int64_t>(lo + r);
    }
    case Overflow::kThrow:
      throw std::overflow_error("fixed-point overflow in " + fmt.to_string());
  }
  throw std::logic_error("unreachable");
}

/// Shift a wide intermediate right by @p shift bits with the requested
/// rounding (shift may be negative, meaning a left shift).
__int128 shift_round(__int128 value, int shift, Rounding rounding) {
  if (shift <= 0) return value << (-shift);
  switch (rounding) {
    case Rounding::kTruncate:
      return value >> shift;  // arithmetic shift: floor
    case Rounding::kNearest: {
      const __int128 half = static_cast<__int128>(1) << (shift - 1);
      if (value >= 0) return (value + half) >> shift;
      return -((-value + half) >> shift);  // round half away from zero
    }
  }
  throw std::logic_error("unreachable");
}

}  // namespace

double Format::resolution() const { return std::ldexp(1.0, -frac_bits); }

std::int64_t Format::raw_max() const {
  const int magnitude_bits = total_bits - (is_signed ? 1 : 0);
  return (static_cast<std::int64_t>(1) << magnitude_bits) - 1;
}

std::int64_t Format::raw_min() const {
  if (!is_signed) return 0;
  return -(static_cast<std::int64_t>(1) << (total_bits - 1));
}

double Format::max_value() const {
  return static_cast<double>(raw_max()) * resolution();
}

double Format::min_value() const {
  return static_cast<double>(raw_min()) * resolution();
}

void Format::validate() const {
  if (total_bits < 2 || total_bits > 63)
    throw std::invalid_argument("Format: total_bits must be in [2,63]");
  if (frac_bits < 0 || frac_bits > total_bits)
    throw std::invalid_argument("Format: frac_bits must be in [0,total_bits]");
}

std::string Format::to_string() const {
  std::ostringstream os;
  os << 'Q' << int_bits() << '.' << frac_bits << " ("
     << (is_signed ? 's' : 'u') << total_bits << ')';
  return os.str();
}

Fixed::Fixed(Format fmt) : fmt_(fmt), raw_(0) { fmt_.validate(); }

Fixed Fixed::from_raw(std::int64_t raw, Format fmt) {
  fmt.validate();
  if (raw < fmt.raw_min() || raw > fmt.raw_max())
    throw std::out_of_range("Fixed::from_raw: raw outside " + fmt.to_string());
  return Fixed(fmt, raw);
}

Fixed Fixed::from_double(double value, Format fmt, Rounding rounding,
                         Overflow overflow) {
  fmt.validate();
  if (std::isnan(value))
    throw std::invalid_argument("Fixed::from_double: NaN");
  const double scaled = std::ldexp(value, fmt.frac_bits);
  double r;
  if (rounding == Rounding::kNearest) {
    r = std::round(scaled);  // half away from zero, matches shift_round
  } else {
    r = std::floor(scaled);
  }
  // Values this large are far outside any 63-bit format; route through the
  // overflow policy via saturated wide arithmetic.
  __int128 wide;
  if (r >= 9.2e18) {
    wide = static_cast<__int128>(fmt.raw_max()) + 1;
  } else if (r <= -9.2e18) {
    wide = static_cast<__int128>(fmt.raw_min()) - 1;
  } else {
    wide = static_cast<__int128>(r);
  }
  return Fixed(fmt, apply_overflow(wide, fmt, overflow));
}

double Fixed::to_double() const {
  return std::ldexp(static_cast<double>(raw_), -fmt_.frac_bits);
}

Fixed Fixed::add(const Fixed& a, const Fixed& b, Format out, Rounding rounding,
                 Overflow overflow) {
  out.validate();
  const int f = std::max(a.fmt_.frac_bits, b.fmt_.frac_bits);
  const __int128 wa = static_cast<__int128>(a.raw_)
                      << (f - a.fmt_.frac_bits);
  const __int128 wb = static_cast<__int128>(b.raw_)
                      << (f - b.fmt_.frac_bits);
  const __int128 sum = shift_round(wa + wb, f - out.frac_bits, rounding);
  return Fixed(out, apply_overflow(sum, out, overflow));
}

Fixed Fixed::sub(const Fixed& a, const Fixed& b, Format out, Rounding rounding,
                 Overflow overflow) {
  out.validate();
  const int f = std::max(a.fmt_.frac_bits, b.fmt_.frac_bits);
  const __int128 wa = static_cast<__int128>(a.raw_)
                      << (f - a.fmt_.frac_bits);
  const __int128 wb = static_cast<__int128>(b.raw_)
                      << (f - b.fmt_.frac_bits);
  const __int128 diff = shift_round(wa - wb, f - out.frac_bits, rounding);
  return Fixed(out, apply_overflow(diff, out, overflow));
}

Fixed Fixed::mul(const Fixed& a, const Fixed& b, Format out, Rounding rounding,
                 Overflow overflow) {
  out.validate();
  const __int128 prod = static_cast<__int128>(a.raw_) * b.raw_;
  const int prod_frac = a.fmt_.frac_bits + b.fmt_.frac_bits;
  const __int128 scaled =
      shift_round(prod, prod_frac - out.frac_bits, rounding);
  return Fixed(out, apply_overflow(scaled, out, overflow));
}

Fixed Fixed::div(const Fixed& a, const Fixed& b, Format out,
                 Rounding rounding, Overflow overflow) {
  out.validate();
  if (b.raw_ == 0) throw std::domain_error("Fixed::div: division by zero");
  // a/b with result fractional point out.frac_bits:
  //   raw = a.raw * 2^(out.frac + b.frac - a.frac) / b.raw
  // Pre-shift the numerator in 128 bits; a positive pre-shift is exact,
  // a negative one rounds through shift_round before the divide.
  const int pre = out.frac_bits + b.fmt_.frac_bits - a.fmt_.frac_bits;
  __int128 num = static_cast<__int128>(a.raw_);
  __int128 den = static_cast<__int128>(b.raw_);
  if (pre >= 0) {
    num <<= pre;
  } else {
    num = shift_round(num, -pre, rounding);
  }
  __int128 q = num / den;
  if (rounding == Rounding::kNearest) {
    const __int128 rem = num - q * den;
    // Round half away from zero on the remainder.
    if (2 * (rem < 0 ? -rem : rem) >= (den < 0 ? -den : den))
      q += ((num < 0) == (den < 0)) ? 1 : -1;
  } else {
    // Truncate toward -inf (floor), matching shift_round's convention.
    const __int128 rem = num - q * den;
    if (rem != 0 && ((num < 0) != (den < 0))) q -= 1;
  }
  return Fixed(out, apply_overflow(q, out, overflow));
}

Fixed Fixed::negate(Overflow overflow) const {
  return Fixed(fmt_, apply_overflow(-static_cast<__int128>(raw_), fmt_,
                                    overflow));
}

Fixed Fixed::convert(Format out, Rounding rounding, Overflow overflow) const {
  out.validate();
  const __int128 scaled = shift_round(static_cast<__int128>(raw_),
                                      fmt_.frac_bits - out.frac_bits,
                                      rounding);
  return Fixed(out, apply_overflow(scaled, out, overflow));
}

double quantization_error(double value, Format fmt) {
  return std::fabs(value - Fixed::from_double(value, fmt).to_double());
}

}  // namespace rat::fx
