#include "fixedpoint/lut.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rat::fx {

FunctionLut::FunctionLut(const std::function<double(double)>& f, double lo,
                         double hi, int index_bits, Format input_format,
                         Format value_format, bool interpolate)
    : lo_(lo),
      hi_(hi),
      index_bits_(index_bits),
      input_fmt_(input_format),
      value_fmt_(value_format),
      interpolate_(interpolate),
      source_(f) {
  if (!f) throw std::invalid_argument("FunctionLut: null function");
  if (!(lo < hi)) throw std::invalid_argument("FunctionLut: lo >= hi");
  if (index_bits < 1 || index_bits > 20)
    throw std::invalid_argument("FunctionLut: index_bits outside [1,20]");
  input_fmt_.validate();
  value_fmt_.validate();
  const std::size_t n = std::size_t{1} << index_bits;
  table_.reserve(n + 1);
  // One extra entry so interpolation at the top segment has a neighbour.
  for (std::size_t i = 0; i <= n; ++i) {
    const double x =
        lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(n);
    table_.push_back(Fixed::from_double(f(x), value_fmt_));
  }
}

Fixed FunctionLut::evaluate(const Fixed& x) const {
  // Map the input to a normalized position in [0, 1).
  double pos = (x.to_double() - lo_) / (hi_ - lo_);
  pos = std::clamp(pos, 0.0, 1.0 - 1e-15);
  const std::size_t n = (table_.size() - 1);
  const double scaled = pos * static_cast<double>(n);
  const auto idx = static_cast<std::size_t>(scaled);
  if (!interpolate_) return table_[idx];

  // frac in [0,1) quantized into the input format's fractional grid —
  // exactly the bits the hardware would feed the interpolation multiplier.
  const double frac_exact = scaled - static_cast<double>(idx);
  const Fixed frac = Fixed::from_double(frac_exact, input_fmt_,
                                        Rounding::kTruncate);
  const Fixed& a = table_[idx];
  const Fixed& b = table_[idx + 1];
  // a + frac * (b - a), truncating like a DSP slice.
  const Fixed diff = Fixed::sub(b, a, value_fmt_, Rounding::kTruncate);
  const Fixed step = Fixed::mul(frac, diff, value_fmt_, Rounding::kTruncate);
  return Fixed::add(a, step, value_fmt_, Rounding::kTruncate);
}

double FunctionLut::evaluate(double x) const {
  return evaluate(Fixed::from_double(x, input_fmt_)).to_double();
}

std::int64_t FunctionLut::storage_bytes() const {
  const std::int64_t bytes_per_entry = (value_fmt_.total_bits + 7) / 8;
  return static_cast<std::int64_t>(table_.size()) * bytes_per_entry;
}

double FunctionLut::max_abs_error(int probes) const {
  if (probes < 2) throw std::invalid_argument("max_abs_error: probes < 2");
  double worst = 0.0;
  for (int i = 0; i < probes; ++i) {
    const double x = lo_ + (hi_ - lo_) * (static_cast<double>(i) + 0.5) /
                               static_cast<double>(probes);
    worst = std::fmax(worst, std::fabs(source_(x) - evaluate(x)));
  }
  return worst;
}

int min_index_bits_for(const std::function<double(double)>& f, double lo,
                       double hi, Format input_format, Format value_format,
                       double tolerance, int min_bits, int max_bits,
                       bool interpolate) {
  if (tolerance <= 0.0)
    throw std::invalid_argument("min_index_bits_for: tolerance <= 0");
  for (int bits = min_bits; bits <= max_bits; ++bits) {
    const FunctionLut lut(f, lo, hi, bits, input_format, value_format,
                          interpolate);
    if (lut.max_abs_error() <= tolerance) return bits;
  }
  return -1;
}

}  // namespace rat::fx
