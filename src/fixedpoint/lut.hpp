// Lookup-table function evaluation in fixed point.
//
// FPGA datapaths implement transcendental kernels (the Gaussian of a
// Parzen window, reciprocals, roots) as block-RAM lookup tables, usually
// with linear interpolation between entries. This substrate builds such a
// table from any double-precision function over an interval, evaluates it
// in a given fixed-point format exactly as the hardware would (index from
// the high bits, interpolate with one multiply), and reports the BRAM cost
// and approximation error — feeding both the RAT precision test and the
// resource test.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fixedpoint/fixed.hpp"

namespace rat::fx {

/// A function LUT over [lo, hi) with 2^index_bits entries.
class FunctionLut {
 public:
  /// Sample @p f at 2^index_bits points. Entries are quantized into
  /// @p value_format; inputs are interpreted in @p input_format.
  /// @p interpolate selects linear interpolation (one extra multiplier,
  /// much lower error) versus nearest-entry lookup.
  FunctionLut(const std::function<double(double)>& f, double lo, double hi,
              int index_bits, Format input_format, Format value_format,
              bool interpolate = true);

  /// Evaluate at a fixed-point input, exactly as the hardware pipeline
  /// would: clamp to [lo, hi), split into index + fraction, look up, and
  /// (optionally) interpolate with one truncating multiply.
  Fixed evaluate(const Fixed& x) const;

  /// Convenience: quantize @p x into the input format and evaluate.
  double evaluate(double x) const;

  std::size_t entries() const { return table_.size(); }
  bool interpolating() const { return interpolate_; }
  const Format& value_format() const { return value_fmt_; }

  /// Bytes of table storage (entries x value bytes, rounded up per entry).
  std::int64_t storage_bytes() const;

  /// Maximum |f(x) - lut(x)| over a dense probe of the domain.
  double max_abs_error(int probes = 4096) const;

 private:
  double lo_;
  double hi_;
  int index_bits_;
  Format input_fmt_;
  Format value_fmt_;
  bool interpolate_;
  std::function<double(double)> source_;
  std::vector<Fixed> table_;  ///< quantized samples, one per index
};

/// Sweep index sizes until max_abs_error <= tolerance; returns the
/// smallest index_bits in [min_bits, max_bits], or -1 when none suffices.
int min_index_bits_for(const std::function<double(double)>& f, double lo,
                       double hi, Format input_format, Format value_format,
                       double tolerance, int min_bits = 4, int max_bits = 14,
                       bool interpolate = true);

}  // namespace rat::fx
