// Runtime-parameterized fixed-point arithmetic.
//
// RAT's numerical-precision test (paper §3.2, §4.2) asks: what is the
// smallest fixed-point format whose quantization error stays within the
// application's tolerance? The paper's 1-D PDF design settled on 18-bit
// fixed point (one Xilinx 18x18 MAC per multiply, ~2% max error). To run
// that trade-off study in software we need a fixed-point type whose
// format — total bits and fractional bits — is a *runtime* value, so a
// single binary can sweep formats from Q4 to Q32.
//
// Values are stored as sign-extended two's-complement integers in an
// int64_t; all formats up to 63 total bits are exact. Multiplication uses a
// 128-bit intermediate so no intermediate overflow can occur.
#pragma once

#include <cstdint>
#include <string>

namespace rat::fx {

/// How to round when discarding low-order bits.
enum class Rounding {
  kNearest,   ///< round-half-away-from-zero (typical DSP block behaviour)
  kTruncate,  ///< drop bits (floor toward -inf), cheapest in hardware
};

/// What to do when a value exceeds the representable range.
enum class Overflow {
  kSaturate,  ///< clamp to min/max (typical for signal kernels)
  kWrap,      ///< two's-complement wraparound (what plain logic does)
  kThrow,     ///< throw std::overflow_error (for analysis/debugging)
};

/// A fixed-point format: `total_bits` including the sign bit (when signed),
/// of which `frac_bits` are fractional. E.g. the paper's 18-bit format for
/// PDF values in [0,1) is Format{18, 17}.
struct Format {
  int total_bits = 18;
  int frac_bits = 17;
  bool is_signed = true;

  /// Number of integer (non-sign, non-fraction) bits; may be negative for
  /// formats whose range is a strict sub-interval of (-1, 1).
  int int_bits() const { return total_bits - frac_bits - (is_signed ? 1 : 0); }

  /// Smallest representable increment: 2^-frac_bits.
  double resolution() const;

  /// Largest / smallest representable value.
  double max_value() const;
  double min_value() const;

  /// Raw integer bounds (inclusive).
  std::int64_t raw_max() const;
  std::int64_t raw_min() const;

  /// Throws std::invalid_argument when the format is unusable
  /// (total_bits outside [2,63], frac_bits outside [0,total_bits]).
  void validate() const;

  /// "Q1.17 (s18)" style description.
  std::string to_string() const;

  bool operator==(const Format&) const = default;
};

/// A fixed-point value: a raw integer interpreted under a Format.
class Fixed {
 public:
  /// Zero in the given format.
  explicit Fixed(Format fmt);

  /// Construct from a raw integer (already scaled by 2^frac_bits). The raw
  /// value must be within the format's range.
  static Fixed from_raw(std::int64_t raw, Format fmt);

  /// Quantize a real value into the format.
  static Fixed from_double(double value, Format fmt,
                           Rounding rounding = Rounding::kNearest,
                           Overflow overflow = Overflow::kSaturate);

  double to_double() const;
  std::int64_t raw() const { return raw_; }
  const Format& format() const { return fmt_; }

  /// Arithmetic producing a result in @p out. Operands may have different
  /// formats; fractional points are aligned internally.
  static Fixed add(const Fixed& a, const Fixed& b, Format out,
                   Rounding rounding = Rounding::kNearest,
                   Overflow overflow = Overflow::kSaturate);
  static Fixed sub(const Fixed& a, const Fixed& b, Format out,
                   Rounding rounding = Rounding::kNearest,
                   Overflow overflow = Overflow::kSaturate);
  static Fixed mul(const Fixed& a, const Fixed& b, Format out,
                   Rounding rounding = Rounding::kNearest,
                   Overflow overflow = Overflow::kSaturate);

  /// Fixed-point division a/b (long division in a 128-bit intermediate,
  /// as an iterative hardware divider would produce). Throws
  /// std::domain_error when b is zero.
  static Fixed div(const Fixed& a, const Fixed& b, Format out,
                   Rounding rounding = Rounding::kNearest,
                   Overflow overflow = Overflow::kSaturate);

  /// Negation within the same format (saturates at raw_min when throwing is
  /// not requested, mirroring hardware behaviour for -MIN).
  Fixed negate(Overflow overflow = Overflow::kSaturate) const;

  /// Re-quantize into another format.
  Fixed convert(Format out, Rounding rounding = Rounding::kNearest,
                Overflow overflow = Overflow::kSaturate) const;

  bool operator==(const Fixed& other) const {
    return fmt_ == other.fmt_ && raw_ == other.raw_;
  }

 private:
  Fixed(Format fmt, std::int64_t raw) : fmt_(fmt), raw_(raw) {}

  Format fmt_;
  std::int64_t raw_;
};

/// Quantization error of representing @p value in @p fmt (round-to-nearest,
/// saturating): |value - Q(value)|.
double quantization_error(double value, Format fmt);

}  // namespace rat::fx
