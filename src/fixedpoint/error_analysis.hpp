// Quantization-error analysis over datasets and whole kernels.
//
// The RAT precision test (paper §3.2) is a search: find the cheapest format
// whose end-to-end error against a double-precision reference stays within
// tolerance. The paper's 1-D PDF case settled on 18-bit fixed point with a
// ~2% maximum error. These helpers provide the dataset-level error report,
// the dynamic-range analysis (how many integer bits a signal needs) and the
// format search itself, over an arbitrary kernel functor.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "fixedpoint/fixed.hpp"

namespace rat::fx {

/// Error statistics of a fixed-point sequence against a reference.
struct ErrorReport {
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
  double rmse = 0.0;
  /// Maximum relative error in percent, where each element's error is
  /// normalized by the largest reference magnitude (so near-zero reference
  /// values do not blow the metric up). This matches how the paper quotes
  /// "maximum error percentage" for the PDF estimate.
  double max_error_percent = 0.0;

  bool within_percent(double tolerance_percent) const {
    return max_error_percent <= tolerance_percent;
  }
};

/// Error of simply storing @p reference in @p fmt (quantize + read back).
ErrorReport representation_error(std::span<const double> reference,
                                 Format fmt);

/// Error of @p actual against @p reference (same length required).
ErrorReport compare(std::span<const double> reference,
                    std::span<const double> actual);

/// Minimal number of integer bits (excluding sign) a signed format needs so
/// that every value in @p data fits without saturating. May be negative for
/// data confined to a sub-unit interval.
int required_int_bits(std::span<const double> data);

/// A kernel under precision analysis: given a format, run the computation
/// in fixed point and return the outputs (same length as the reference).
using FixedKernel = std::function<std::vector<double>(Format)>;

/// Result of a bitwidth search.
struct PrecisionChoice {
  Format format;
  ErrorReport report;
};

/// Search total bit widths from @p min_bits to @p max_bits (keeping
/// `frac_bits = total_bits - 1 - int_bits`) for the smallest format whose
/// kernel error is within @p tolerance_percent of the reference. Returns
/// nullopt when even max_bits fails.
std::optional<PrecisionChoice> search_min_total_bits(
    const FixedKernel& kernel, std::span<const double> reference,
    double tolerance_percent, int min_bits, int max_bits, int int_bits);

/// Evaluate every width in [min_bits, max_bits] and return one report per
/// width (for error-vs-bitwidth curves).
std::vector<PrecisionChoice> sweep_total_bits(const FixedKernel& kernel,
                                              std::span<const double> reference,
                                              int min_bits, int max_bits,
                                              int int_bits);

}  // namespace rat::fx
