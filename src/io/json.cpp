#include "io/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rat::io {

std::string json_number(double x) {
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, x);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == x) break;
  }
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_str(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!consume_literal("\\u")) fail("unpaired surrogate");
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const char* b = text_.data() + begin;
    const char* e = text_.data() + pos_;
    const auto r = std::from_chars(b, e, v.number);
    if (r.ec != std::errc{} || r.ptr != e) {
      pos_ = begin;
      fail("bad number");
    }
    if (!std::isfinite(v.number)) {
      pos_ = begin;
      fail("non-finite number");
    }
    return v;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v.items.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      v.kind = JsonValue::Kind::kNull;
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).run(); }

}  // namespace rat::io
