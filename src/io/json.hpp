// Minimal JSON reading/writing shared by the io emitters and the svc
// protocol.
//
// Writing: the escape/number helpers that batch_json always used, made
// public so every JSON producer in the tree (batch runner, metrics
// export, service responses) renders numbers and strings identically —
// in particular json_number emits the shortest decimal string that
// round-trips the double, which is what makes "same inputs => byte-
// identical output" guarantees possible across layers.
//
// Reading: a small strict recursive-descent parser for the service's
// newline-delimited request objects. Deliberately minimal but not
// sloppy: full string escapes (including \uXXXX with surrogate pairs),
// from_chars numbers, a nesting-depth cap, and a hard error on trailing
// content. Failures throw std::invalid_argument naming the byte offset.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rat::io {

/// Shortest decimal string that round-trips @p x through a double
/// ("%.17g" prints noise digits for most values; precision is increased
/// only until the value survives a parse back).
std::string json_number(double x);

/// Backslash-escape @p s for inclusion inside a JSON string literal
/// (quotes, backslashes, control characters; no surrounding quotes).
std::string json_escape(std::string_view s);

/// @p s as a complete JSON string literal, quotes included.
std::string json_str(std::string_view s);

/// One parsed JSON value. Object members keep their source order so
/// re-rendering (tests) is deterministic.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> items;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// First member named @p key, or nullptr (objects only).
  const JsonValue* find(std::string_view key) const;
};

/// Parse one complete JSON document. Throws std::invalid_argument
/// ("json: <what> at offset <n>") on malformed input, unsupported
/// nesting depth (> 64) or trailing non-whitespace content.
JsonValue parse_json(std::string_view text);

}  // namespace rat::io
