// Structured diagnostics for the worksheet ingestion path.
//
// Every failure in the strict worksheet parser and the file/directory
// loaders is described by a Diagnostic: where it happened (file, 1-based
// line and column), what rule was violated (ParseErrorCode), which
// worksheet key was involved, and a human-readable detail message.
// ParseError wraps a Diagnostic in an exception; it derives from
// std::invalid_argument so callers written against the old ad-hoc parser
// keep working, while new callers (the batch runner) can recover the
// structured fields from diagnostic().
//
// Header-only so rat_core can throw these without depending on the
// higher-level rat_io library (which depends on rat_core for RatInputs).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>

namespace rat::core {

/// What went wrong, as a machine-checkable category. The E_* spellings
/// (error_code_name) are part of the documented interface: they appear in
/// rat_batch JSON output and in docs/WORKSHEET_FORMAT.md.
enum class ParseErrorCode {
  kIoError,       ///< file missing, unreadable, or not a regular file
  kMissingEquals, ///< a non-comment line has no '='
  kUnknownKey,    ///< key is not part of the worksheet grammar
  kDuplicateKey,  ///< key appears more than once in one worksheet
  kBadNumber,     ///< value is not a finite decimal number
  kBadCount,      ///< value is not a non-negative integer
  kBadList,       ///< clock list is empty or has a malformed entry
  kMissingName,   ///< worksheet has no 'name' key at all
  kInvalidValue,  ///< parsed fine but rejected by RatInputs::validate()
  kInternalError, ///< unexpected failure while processing the worksheet
};

/// Stable identifier for @p code ("E_BAD_NUMBER", ...).
constexpr const char* error_code_name(ParseErrorCode code) {
  switch (code) {
    case ParseErrorCode::kIoError: return "E_IO";
    case ParseErrorCode::kMissingEquals: return "E_MISSING_EQUALS";
    case ParseErrorCode::kUnknownKey: return "E_UNKNOWN_KEY";
    case ParseErrorCode::kDuplicateKey: return "E_DUPLICATE_KEY";
    case ParseErrorCode::kBadNumber: return "E_BAD_NUMBER";
    case ParseErrorCode::kBadCount: return "E_BAD_COUNT";
    case ParseErrorCode::kBadList: return "E_BAD_LIST";
    case ParseErrorCode::kMissingName: return "E_MISSING_NAME";
    case ParseErrorCode::kInvalidValue: return "E_INVALID_VALUE";
    case ParseErrorCode::kInternalError: return "E_INTERNAL";
  }
  return "E_INTERNAL";
}

/// One ingestion failure, with enough context to act on it.
struct Diagnostic {
  std::string file = "<string>"; ///< origin (path, or "<string>" for text)
  std::size_t line = 0;          ///< 1-based; 0 = whole-file problem
  std::size_t column = 0;        ///< 1-based; 0 = whole-line problem
  ParseErrorCode code = ParseErrorCode::kInternalError;
  std::string key;               ///< offending worksheet key, when known
  std::string message;           ///< human-readable detail

  /// "file:line:column: E_BAD_NUMBER: RatInputs::parse: key: message".
  /// Line/column segments are omitted when 0, the key segment when empty.
  std::string to_string() const {
    std::string s = file;
    if (line > 0) {
      s += ':' + std::to_string(line);
      if (column > 0) s += ':' + std::to_string(column);
    }
    s += ": ";
    s += error_code_name(code);
    s += ": RatInputs::parse: ";
    if (!key.empty()) s += key + ": ";
    s += message;
    return s;
  }
};

/// Exception form of a Diagnostic. what() is Diagnostic::to_string().
class ParseError : public std::invalid_argument {
 public:
  explicit ParseError(Diagnostic d)
      : std::invalid_argument(d.to_string()), diagnostic_(std::move(d)) {}

  const Diagnostic& diagnostic() const { return diagnostic_; }

 private:
  Diagnostic diagnostic_;
};

}  // namespace rat::core
