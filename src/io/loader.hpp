// Worksheet file and directory loading.
//
// The paper's workflow is worksheet-driven: "users simply provide the
// input parameters and the resulting performance values are returned"
// (§4). This layer turns worksheet *files* into validated RatInputs with
// structured diagnostics (io/diagnostics.hpp): load_worksheet throws a
// core::ParseError whose Diagnostic names the file, line and column;
// load_worksheet_dir has partial-failure semantics — one bad file yields
// a per-file Diagnostic, never a dead batch.
#pragma once

#include <filesystem>
#include <optional>
#include <vector>

#include "core/parameters.hpp"
#include "io/diagnostics.hpp"

namespace rat::io {

/// Extension a worksheet file must carry to be picked up by
/// load_worksheet_dir (load_worksheet itself accepts any path).
inline constexpr const char* kWorksheetExtension = ".rat";

/// Read, parse and validate one worksheet file. Throws core::ParseError
/// for unreadable files (E_IO), grammar violations (with file:line:column)
/// and values rejected by RatInputs::validate() (E_INVALID_VALUE).
core::RatInputs load_worksheet(const std::filesystem::path& path);

/// The two halves of load_worksheet, split so checkpoint/resume can hash
/// the raw bytes between them (io/batch.hpp): identical bytes through
/// parse_worksheet_text yield identical RatInputs *and* identical
/// diagnostics, which is what makes a resumed batch byte-identical to an
/// uninterrupted one. read throws E_IO; parse throws the same grammar /
/// E_INVALID_VALUE diagnostics as load_worksheet, attributed to
/// @p origin.
std::string read_worksheet_text(const std::filesystem::path& path);
core::RatInputs parse_worksheet_text(const std::string& text,
                                     const std::string& origin);

/// One file's outcome from load_worksheet_dir: exactly one of inputs /
/// diagnostic is set.
struct LoadResult {
  std::filesystem::path path;
  std::optional<core::RatInputs> inputs;
  std::optional<core::Diagnostic> diagnostic;

  bool ok() const { return inputs.has_value(); }
};

/// Load every "*.rat" file directly inside @p dir (not recursive), sorted
/// by path so results are deterministic across platforms. Per-file
/// failures land in LoadResult::diagnostic; only an unreadable or missing
/// directory throws (core::ParseError, E_IO).
std::vector<LoadResult> load_worksheet_dir(const std::filesystem::path& dir);

}  // namespace rat::io
