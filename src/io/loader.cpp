#include "io/loader.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

namespace rat::io {

namespace {

core::Diagnostic io_diagnostic(const std::filesystem::path& path,
                               const std::string& message) {
  return {path.string(), 0, 0, core::ParseErrorCode::kIoError, "", message};
}

}  // namespace

std::string read_worksheet_text(const std::filesystem::path& path) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec))
    throw core::ParseError(
        io_diagnostic(path, ec ? "cannot stat file: " + ec.message()
                               : "not a regular file"));
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw core::ParseError(io_diagnostic(path, "cannot open file"));
  std::ostringstream os;
  os << f.rdbuf();
  if (f.bad())
    throw core::ParseError(io_diagnostic(path, "read error"));
  return os.str();
}

core::RatInputs parse_worksheet_text(const std::string& text,
                                     const std::string& origin) {
  core::RatInputs in = core::RatInputs::parse(text, origin);
  try {
    in.validate();
  } catch (const std::invalid_argument& e) {
    // The worksheet parsed but a value is outside its documented domain;
    // keep the file context so batch diagnostics stay actionable.
    throw core::ParseError({origin, 0, 0,
                            core::ParseErrorCode::kInvalidValue, "",
                            e.what()});
  }
  return in;
}

core::RatInputs load_worksheet(const std::filesystem::path& path) {
  return parse_worksheet_text(read_worksheet_text(path), path.string());
}

std::vector<LoadResult> load_worksheet_dir(
    const std::filesystem::path& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec))
    throw core::ParseError(
        io_diagnostic(dir, ec ? "cannot stat directory: " + ec.message()
                              : "not a directory"));

  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        entry.path().extension() == kWorksheetExtension)
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  obs::ScopedTimer dir_timer("io.load_worksheet_dir");
  std::vector<LoadResult> results;
  results.reserve(files.size());
  for (const auto& path : files) {
    obs::ScopedTimer file_timer("io.load_worksheet", path.string(),
                                /*record_span=*/true);
    LoadResult r;
    r.path = path;
    try {
      r.inputs = load_worksheet(path);
    } catch (const core::ParseError& e) {
      r.diagnostic = e.diagnostic();
    } catch (const std::exception& e) {
      r.diagnostic = core::Diagnostic{path.string(), 0, 0,
                                      core::ParseErrorCode::kInternalError,
                                      "", e.what()};
    }
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace rat::io
