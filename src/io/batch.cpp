#include "io/batch.hpp"

#include <sstream>

#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "util/parallel_for.hpp"
#include "util/table.hpp"

namespace rat::io {

namespace {

/// Shortest decimal string that round-trips the double (io/json.hpp).
std::string num(double x) { return json_number(x); }

}  // namespace

void append_inputs_json(std::ostream& os, const core::RatInputs& in) {
  os << "{\"name\":" << json_str(in.name)
     << ",\"elements_in\":" << in.dataset.elements_in
     << ",\"elements_out\":" << in.dataset.elements_out
     << ",\"bytes_per_element\":" << num(in.dataset.bytes_per_element)
     << ",\"ideal_bw_bytes_per_sec\":" << num(in.comm.ideal_bw_bytes_per_sec)
     << ",\"alpha_write\":" << num(in.comm.alpha_write)
     << ",\"alpha_read\":" << num(in.comm.alpha_read)
     << ",\"ops_per_element\":" << num(in.comp.ops_per_element)
     << ",\"throughput_ops_per_cycle\":"
     << num(in.comp.throughput_ops_per_cycle) << ",\"fclock_hz\":[";
  for (std::size_t i = 0; i < in.comp.fclock_hz.size(); ++i) {
    if (i) os << ',';
    os << num(in.comp.fclock_hz[i]);
  }
  os << "],\"tsoft_sec\":" << num(in.software.tsoft_sec)
     << ",\"n_iterations\":" << in.software.n_iterations << '}';
}

void append_prediction_json(std::ostream& os,
                            const core::ThroughputPrediction& p) {
  os << "{\"fclock_hz\":" << num(p.fclock_hz)
     << ",\"t_write_sec\":" << num(p.t_write_sec)
     << ",\"t_read_sec\":" << num(p.t_read_sec)
     << ",\"t_comm_sec\":" << num(p.t_comm_sec)
     << ",\"t_comp_sec\":" << num(p.t_comp_sec)
     << ",\"t_rc_sb_sec\":" << num(p.t_rc_sb_sec)
     << ",\"t_rc_db_sec\":" << num(p.t_rc_db_sec)
     << ",\"speedup_sb\":" << num(p.speedup_sb)
     << ",\"speedup_db\":" << num(p.speedup_db)
     << ",\"util_comp_sb\":" << num(p.util_comp_sb)
     << ",\"util_comm_sb\":" << num(p.util_comm_sb)
     << ",\"util_comp_db\":" << num(p.util_comp_db)
     << ",\"util_comm_db\":" << num(p.util_comm_db) << '}';
}

void append_diagnostic_json(std::ostream& os, const core::Diagnostic& d) {
  os << "{\"file\":" << json_str(d.file) << ",\"line\":" << d.line
     << ",\"column\":" << d.column
     << ",\"code\":" << json_str(core::error_code_name(d.code))
     << ",\"key\":" << json_str(d.key)
     << ",\"message\":" << json_str(d.message)
     << ",\"rendered\":" << json_str(d.to_string()) << '}';
}

BatchResult run_batch(const std::vector<std::filesystem::path>& files,
                      std::size_t n_threads) {
  obs::ScopedTimer batch_timer("batch.run");
  BatchResult result;
  result.entries = util::parallel_map(
      files.size(),
      [&files](std::size_t i) {
        // Per-file parse+evaluate span; detail carries the worksheet path
        // so the exported timeline names every file.
        obs::ScopedTimer file_timer("batch.file", files[i].string(),
                                    /*record_span=*/true);
        BatchEntry entry;
        entry.load.path = files[i];
        try {
          entry.load.inputs = load_worksheet(files[i]);
          entry.predictions = core::predict_all(*entry.load.inputs);
        } catch (const core::ParseError& e) {
          entry.load.diagnostic = e.diagnostic();
        } catch (const std::exception& e) {
          entry.load.diagnostic =
              core::Diagnostic{files[i].string(), 0, 0,
                               core::ParseErrorCode::kInternalError, "",
                               e.what()};
        }
        return entry;
      },
      n_threads);
  for (const auto& e : result.entries)
    (e.ok() ? result.n_ok : result.n_failed) += 1;
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.add_counter("batch.files", result.entries.size());
    reg.add_counter("batch.files_ok", result.n_ok);
    reg.add_counter("batch.files_failed", result.n_failed);
  }
  return result;
}

BatchResult run_batch_dir(const std::filesystem::path& dir,
                          std::size_t n_threads) {
  // Enumerate serially (deterministic sorted order), evaluate in parallel.
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec))
    throw core::ParseError({dir.string(), 0, 0,
                            core::ParseErrorCode::kIoError, "",
                            ec ? "cannot stat directory: " + ec.message()
                               : "not a directory"});
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        entry.path().extension() == kWorksheetExtension)
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return run_batch(files, n_threads);
}

std::string batch_json(const BatchResult& result) {
  std::ostringstream os;
  os << "{\"schema\":\"rat.batch.v1\",\"n_worksheets\":"
     << result.entries.size() << ",\"n_ok\":" << result.n_ok
     << ",\"n_failed\":" << result.n_failed << ",\"worksheets\":[";
  for (std::size_t i = 0; i < result.entries.size(); ++i) {
    const BatchEntry& e = result.entries[i];
    if (i) os << ',';
    os << "{\"file\":" << json_str(e.load.path.string()) << ",\"status\":\""
       << (e.ok() ? "ok" : "error") << '"';
    if (e.ok()) {
      os << ",\"inputs\":";
      append_inputs_json(os, *e.load.inputs);
      os << ",\"predictions\":[";
      for (std::size_t j = 0; j < e.predictions.size(); ++j) {
        if (j) os << ',';
        append_prediction_json(os, e.predictions[j]);
      }
      os << ']';
    } else {
      os << ",\"diagnostic\":";
      append_diagnostic_json(os, *e.load.diagnostic);
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string batch_csv(const BatchResult& result) {
  util::Table t({"file", "status", "name", "elements_in", "elements_out",
                 "bytes_per_element", "ideal_bw_bytes_per_sec", "alpha_write",
                 "alpha_read", "ops_per_element", "throughput_ops_per_cycle",
                 "tsoft_sec", "n_iterations", "fclock_hz", "t_write_sec",
                 "t_read_sec", "t_comm_sec", "t_comp_sec", "t_rc_sb_sec",
                 "t_rc_db_sec", "speedup_sb", "speedup_db", "util_comm_sb",
                 "util_comp_sb", "util_comm_db", "util_comp_db", "error"});
  for (const BatchEntry& e : result.entries) {
    if (!e.ok()) {
      std::vector<std::string> row(t.num_columns());
      row[0] = e.load.path.string();
      row[1] = "error";
      row.back() = e.load.diagnostic->to_string();
      t.add_row(std::move(row));
      continue;
    }
    const core::RatInputs& in = *e.load.inputs;
    for (const core::ThroughputPrediction& p : e.predictions) {
      t.add_row({e.load.path.string(), "ok", in.name,
                 std::to_string(in.dataset.elements_in),
                 std::to_string(in.dataset.elements_out),
                 num(in.dataset.bytes_per_element),
                 num(in.comm.ideal_bw_bytes_per_sec),
                 num(in.comm.alpha_write), num(in.comm.alpha_read),
                 num(in.comp.ops_per_element),
                 num(in.comp.throughput_ops_per_cycle),
                 num(in.software.tsoft_sec),
                 std::to_string(in.software.n_iterations), num(p.fclock_hz),
                 num(p.t_write_sec), num(p.t_read_sec), num(p.t_comm_sec),
                 num(p.t_comp_sec), num(p.t_rc_sb_sec), num(p.t_rc_db_sec),
                 num(p.speedup_sb), num(p.speedup_db), num(p.util_comm_sb),
                 num(p.util_comp_sb), num(p.util_comm_db),
                 num(p.util_comp_db), ""});
    }
  }
  return t.to_csv();
}

}  // namespace rat::io
