// Batch evaluation of worksheet files.
//
// Evaluates many worksheet files through the shared thread pool
// (util::parallel_map) with partial-failure semantics: a malformed file
// produces a per-file Diagnostic while every other file is still
// evaluated — one bad worksheet never kills the batch. Results are
// emitted machine-readably (JSON with the full input set and every
// Eq. 1-11 output for both buffering modes, or flat CSV) so the batch
// pipeline can be scripted; the rat_batch app adds the human tables.
#pragma once

#include <cstddef>
#include <filesystem>
#include <ostream>
#include <string>
#include <vector>

#include "core/throughput.hpp"
#include "io/loader.hpp"

namespace rat::io {

/// One worksheet file's batch outcome: the load result plus, on success,
/// the per-clock predictions (exactly core::predict_all on the inputs).
struct BatchEntry {
  LoadResult load;
  std::vector<core::ThroughputPrediction> predictions;

  bool ok() const { return load.ok(); }
};

struct BatchResult {
  /// Entries in the order the files were given (sorted for directories).
  std::vector<BatchEntry> entries;
  std::size_t n_ok = 0;
  std::size_t n_failed = 0;

  bool all_ok() const { return n_failed == 0; }
};

/// Evaluate each file (load_worksheet + predict_all), in parallel across
/// the pool. @p n_threads 0 = auto (RAT_THREADS / hardware_concurrency).
/// Never throws for a bad file — see BatchEntry::load.diagnostic.
BatchResult run_batch(const std::vector<std::filesystem::path>& files,
                      std::size_t n_threads = 0);

/// run_batch over every "*.rat" file directly inside @p dir, sorted by
/// path. Throws core::ParseError (E_IO) only when the directory itself is
/// missing or unreadable.
BatchResult run_batch_dir(const std::filesystem::path& dir,
                          std::size_t n_threads = 0);

/// Machine-readable emitters (schema documented in
/// docs/WORKSHEET_FORMAT.md). JSON carries inputs + predictions +
/// diagnostics; CSV is one row per (file, clock), with failed files as a
/// single row whose `error` column holds the rendered diagnostic.
std::string batch_json(const BatchResult& result);
std::string batch_csv(const BatchResult& result);

/// The shared JSON fragment renderers behind batch_json, public so the
/// prediction service emits byte-identical inputs / prediction /
/// diagnostic payloads (numbers via io::json_number round-trip exactly).
void append_inputs_json(std::ostream& os, const core::RatInputs& inputs);
void append_prediction_json(std::ostream& os,
                            const core::ThroughputPrediction& prediction);
void append_diagnostic_json(std::ostream& os, const core::Diagnostic& d);

}  // namespace rat::io
