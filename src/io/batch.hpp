// Batch evaluation of worksheet files.
//
// Evaluates many worksheet files through the shared thread pool
// (util::parallel_map) with partial-failure semantics: a malformed file
// produces a per-file Diagnostic while every other file is still
// evaluated — one bad worksheet never kills the batch. Results are
// emitted machine-readably (JSON with the full input set and every
// Eq. 1-11 output for both buffering modes, or flat CSV) so the batch
// pipeline can be scripted; the rat_batch app adds the human tables.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/throughput.hpp"
#include "io/loader.hpp"

namespace rat::io {

/// One worksheet file's batch outcome: the load result plus, on success,
/// the per-clock predictions (exactly core::predict_all on the inputs).
struct BatchEntry {
  LoadResult load;
  std::vector<core::ThroughputPrediction> predictions;
  /// Replayed from a checkpoint instead of evaluated this run.
  bool restored = false;

  bool ok() const { return load.ok(); }
};

struct BatchResult {
  /// Entries in the order the files were given (sorted for directories).
  std::vector<BatchEntry> entries;
  std::size_t n_ok = 0;
  std::size_t n_failed = 0;
  std::size_t n_restored = 0;  ///< entries replayed from the checkpoint

  bool all_ok() const { return n_failed == 0; }
};

/// Checkpoint/resume configuration for run_batch (docs/STORE.md). The
/// campaign identity is the ordered file list; each item's identity is
/// its raw worksheet bytes, so editing a file between runs is rejected
/// as E_STALE_CHECKPOINT rather than silently replaying a result for
/// data that changed. Unreadable files are never checkpointed — they are
/// retried on every resume.
struct BatchCheckpointConfig {
  std::filesystem::path path;
  bool sync_every_append = true;
};

struct BatchOptions {
  std::size_t n_threads = 0;  ///< 0 = auto (RAT_THREADS / hardware)
  std::optional<BatchCheckpointConfig> checkpoint;
  /// Crash-drill hook (scripts/check.sh): sleep this long after each
  /// *fresh* evaluation so a kill -9 reliably lands mid-campaign.
  /// Restored entries never sleep.
  unsigned throttle_ms = 0;
};

/// Evaluate each file (load_worksheet + predict_all), in parallel across
/// the pool. Never throws for a bad file — see BatchEntry::load
/// .diagnostic; with a checkpoint, throws store::StoreError for a stale
/// or unusable checkpoint file.
BatchResult run_batch(const std::vector<std::filesystem::path>& files,
                      const BatchOptions& options);
BatchResult run_batch(const std::vector<std::filesystem::path>& files,
                      std::size_t n_threads = 0);

/// run_batch over every "*.rat" file directly inside @p dir, sorted by
/// path. Throws core::ParseError (E_IO) only when the directory itself is
/// missing or unreadable.
BatchResult run_batch_dir(const std::filesystem::path& dir,
                          const BatchOptions& options);
BatchResult run_batch_dir(const std::filesystem::path& dir,
                          std::size_t n_threads = 0);

/// Machine-readable emitters (schema documented in
/// docs/WORKSHEET_FORMAT.md). JSON carries inputs + predictions +
/// diagnostics; CSV is one row per (file, clock), with failed files as a
/// single row whose `error` column holds the rendered diagnostic.
std::string batch_json(const BatchResult& result);
std::string batch_csv(const BatchResult& result);

/// The shared JSON fragment renderers behind batch_json, public so the
/// prediction service emits byte-identical inputs / prediction /
/// diagnostic payloads (numbers via io::json_number round-trip exactly).
void append_inputs_json(std::ostream& os, const core::RatInputs& inputs);
void append_prediction_json(std::ostream& os,
                            const core::ThroughputPrediction& prediction);
void append_diagnostic_json(std::ostream& os, const core::Diagnostic& d);

/// rat.store.v1 predictions payload: u32 count, then 13 f64 bit patterns
/// per prediction in declaration order. Exact IEEE-754 round-trip — the
/// basis for byte-identical checkpoint resume and cache warm-start.
/// decode throws store::StoreError(kCorrupt) on malformed payloads.
std::string encode_predictions(
    const std::vector<core::ThroughputPrediction>& predictions);
std::vector<core::ThroughputPrediction> decode_predictions(
    std::string_view payload);

}  // namespace rat::io
