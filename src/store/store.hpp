// DurableStore: a crash-safe persistent key→value map built from the
// rat.store.v1 journal plus a compacted snapshot (docs/STORE.md).
//
// Directory layout:
//
//   <dir>/journal    append-only journal of put records
//   <dir>/snapshot   compacted map image (atomic-rename replaced)
//   <dir>/*.tmp      in-flight compaction files; deleted on open
//
// Open = load snapshot (if any), then replay journal records whose seq
// exceeds the snapshot's last_seq (records at or below it are the
// compaction crash window: the snapshot already contains them, so they
// are skipped, never double-applied). The journal's torn tail is
// truncated; a corrupt *snapshot* is a hard StoreError(kCorrupt) instead
// — snapshots are written to a temp file, fsynced and atomically renamed,
// so a bad one means real bit rot and silent data loss would be worse
// than refusing to start.
//
// Compaction (explicit compact(), or the background thread once the
// journal outgrows Options::compact_journal_bytes):
//   1. copy the map + the latest assigned seq S (brief lock),
//   2. write snapshot.tmp, fsync, rename over snapshot, fsync dir,
//   3. under the lock, rewrite the journal as journal.tmp holding only
//      records with seq > S (survivors keep their seqs), fsync, rename
//      over journal, fsync dir, and switch the writer to the new file.
// A crash between 2 and 3 leaves the new snapshot plus the old journal —
// exactly the skip-on-replay case above, so every window is safe.
//
// Thread-safety: put/get/size/for_each/compact may be called from any
// thread. Entries iterate in last-write order (ascending seq), which is
// what lets the service warm its LRU cache oldest-first.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "store/journal.hpp"

namespace rat::store {

inline constexpr char kSnapshotMagic[8] = {'R', 'A', 'T', 'S',
                                           'T', 'R', 'S', '1'};

struct DurableStoreOptions {
  /// fsync after every journal append (see docs/STORE.md §durability).
  bool sync_every_append = true;
  /// Compact once the journal exceeds this many bytes (0 = never
  /// automatically; explicit compact() always works).
  std::uint64_t compact_journal_bytes = 8u << 20;
  /// Run automatic compaction on a background thread instead of inline.
  bool background_compaction = true;
};

class DurableStore {
 public:
  using Options = DurableStoreOptions;

  /// What recovery found at open time.
  struct OpenInfo {
    std::size_t snapshot_entries = 0;
    std::size_t journal_records = 0;  ///< applied (seq > snapshot last_seq)
    std::size_t stale_records = 0;    ///< skipped compaction-window records
    std::uint64_t dropped_bytes = 0;  ///< torn journal tail truncated
  };

  /// Open or create the store at @p dir (the directory is created).
  /// Throws StoreError: kIo for filesystem failures, kCorrupt for an
  /// unreadable snapshot.
  explicit DurableStore(const std::filesystem::path& dir,
                        Options options = {});

  /// Stops the compaction thread and syncs the journal.
  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Insert or overwrite @p key. Durable once the call returns (under
  /// sync_every_append); a crash mid-append loses at most this record.
  void put(std::string_view key, std::string_view value);

  std::optional<std::string> get(std::string_view key) const;
  bool contains(std::string_view key) const;
  std::size_t size() const;

  /// Visit every entry in last-write order (ascending seq). The callback
  /// runs under the store lock: keep it cheap and do not call back into
  /// the store.
  void for_each(
      const std::function<void(const std::string& key,
                               const std::string& value)>& fn) const;

  /// Synchronous compaction (see file comment). Serialized against
  /// itself and against the background thread.
  void compact();

  /// fsync any unsynced appends (no-op under sync_every_append).
  void sync();

  const OpenInfo& open_info() const { return open_info_; }
  std::uint64_t journal_bytes() const;
  /// Number of compactions completed since open.
  std::uint64_t compactions() const;

  const std::filesystem::path& dir() const { return dir_; }
  std::filesystem::path journal_path() const { return dir_ / "journal"; }
  std::filesystem::path snapshot_path() const { return dir_ / "snapshot"; }

 private:
  struct Entry {
    std::string value;
    std::uint64_t seq = 0;
  };

  void load_snapshot(std::uint64_t* last_seq);
  void write_snapshot_file(
      const std::filesystem::path& path, std::uint64_t last_seq,
      const std::vector<std::pair<std::string, Entry>>& entries) const;
  void maybe_trigger_compaction();
  void compaction_worker();

  std::filesystem::path dir_;
  Options options_;
  OpenInfo open_info_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::optional<JournalWriter> journal_;
  std::uint64_t snapshot_last_seq_ = 0;

  // Background compaction plumbing.
  mutable std::mutex compact_mu_;  ///< serializes compact() bodies
  std::condition_variable compact_cv_;
  std::thread compact_thread_;
  bool compact_requested_ = false;
  bool stop_ = false;
  std::uint64_t compactions_ = 0;
};

}  // namespace rat::store
