#include "store/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "store/checksum.hpp"
#include "store/codec.hpp"

namespace rat::store {

namespace {

void obs_count(const char* name, std::uint64_t delta = 1) {
  if (obs::enabled()) obs::Registry::global().add_counter(name, delta);
}

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Full-buffer write(2); throws on error or short write (disk full).
void write_all(int fd, const std::filesystem::path& path,
               std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StoreError(StoreErrorCode::kIo, path.string(),
                       errno_message("write failed"));
    }
    if (n == 0)
      throw StoreError(StoreErrorCode::kIo, path.string(),
                       "write wrote 0 bytes");
    off += static_cast<std::size_t>(n);
  }
}

void fsync_fd(int fd, const std::filesystem::path& path) {
  obs::ScopedTimer timer("store.fsync");
  if (::fsync(fd) != 0)
    throw StoreError(StoreErrorCode::kIo, path.string(),
                     errno_message("fsync failed"));
  obs_count("store.fsync");
}

std::string journal_header_bytes() {
  std::string h(kJournalMagic, sizeof kJournalMagic);
  put_u32(h, kStoreFormatVersion);
  put_u32(h, crc32c(h));
  return h;
}

std::uint32_t read_u32_le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t read_u64_le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

std::string frame_record(std::uint64_t seq, std::string_view payload) {
  std::string frame;
  frame.reserve(kRecordHeaderBytes + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  // CRC covers len || seq || payload; the crc field itself sits between
  // len and seq on disk, so assemble in two steps.
  std::string crc_input;
  crc_input.reserve(12 + payload.size());
  put_u32(crc_input, static_cast<std::uint32_t>(payload.size()));
  put_u64(crc_input, seq);
  crc_input.append(payload.data(), payload.size());
  put_u32(frame, crc32c(crc_input));
  put_u64(frame, seq);
  frame.append(payload.data(), payload.size());
  return frame;
}

RecoveredJournal recover_journal(const std::filesystem::path& path) {
  obs::ScopedTimer timer("store.recover");
  RecoveredJournal out;

  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return out;

  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw StoreError(StoreErrorCode::kIo, path.string(), "cannot open file");
  std::ostringstream os;
  os << f.rdbuf();
  if (f.bad())
    throw StoreError(StoreErrorCode::kIo, path.string(), "read error");
  const std::string data = os.str();

  // Header: anything short or mismatched invalidates the whole file (the
  // framing cannot be trusted without it).
  const auto invalid_from = [&](std::uint64_t offset) {
    out.valid_bytes = offset;
    out.dropped_bytes = data.size() - offset;
  };
  if (data.size() < kJournalHeaderBytes ||
      std::memcmp(data.data(), kJournalMagic, sizeof kJournalMagic) != 0 ||
      read_u32_le(data.data() + 8) != kStoreFormatVersion ||
      read_u32_le(data.data() + 12) != crc32c(data.data(), 12)) {
    invalid_from(0);
    return out;
  }

  std::uint64_t offset = kJournalHeaderBytes;
  std::uint64_t prev_seq = 0;
  while (true) {
    if (data.size() - offset < kRecordHeaderBytes) break;  // torn header
    const char* h = data.data() + offset;
    const std::uint32_t len = read_u32_le(h);
    const std::uint32_t crc = read_u32_le(h + 4);
    const std::uint64_t seq = read_u64_le(h + 8);
    if (len > kMaxRecordBytes) break;                       // absurd length
    if (data.size() - offset - kRecordHeaderBytes < len) break;  // torn body
    std::string crc_input;
    crc_input.reserve(12 + len);
    crc_input.append(h, 4);
    crc_input.append(h + 8, 8);
    crc_input.append(h + kRecordHeaderBytes, len);
    if (crc32c(crc_input) != crc) break;                    // corrupt record
    if (seq <= prev_seq) break;                             // seq regression
    out.records.push_back(
        {seq, std::string(h + kRecordHeaderBytes, len)});
    prev_seq = seq;
    offset += kRecordHeaderBytes + len;
  }
  invalid_from(offset);
  out.last_seq = prev_seq;
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.add_counter("store.recovery.records", out.records.size());
    reg.add_counter("store.recovery.dropped_bytes", out.dropped_bytes);
  }
  return out;
}

JournalWriter::JournalWriter(const std::filesystem::path& path,
                             Options options, RecoveredJournal* recovered,
                             std::uint64_t min_last_seq)
    : path_(path), options_(options) {
  RecoveredJournal local = recover_journal(path);

  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw StoreError(StoreErrorCode::kIo, path.string(),
                     errno_message("cannot open journal"));

  if (local.valid_bytes < kJournalHeaderBytes) {
    // Fresh file (or unusable header): start over with a clean header.
    open_fresh();
    local.records.clear();
    local.last_seq = 0;
  } else {
    std::error_code ec;
    const std::uint64_t size = std::filesystem::file_size(path, ec);
    if (!ec && size != local.valid_bytes) {
      if (::ftruncate(fd_, static_cast<off_t>(local.valid_bytes)) != 0) {
        close();
        throw StoreError(StoreErrorCode::kIo, path.string(),
                         errno_message("cannot truncate torn tail"));
      }
      fsync_fd(fd_, path_);
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
      close();
      throw StoreError(StoreErrorCode::kIo, path.string(),
                       errno_message("cannot seek"));
    }
    bytes_ = local.valid_bytes;
  }

  next_seq_ = std::max(local.last_seq, min_last_seq) + 1;
  if (recovered) *recovered = std::move(local);
}

JournalWriter JournalWriter::create(const std::filesystem::path& path,
                                    Options options,
                                    std::uint64_t min_last_seq) {
  JournalWriter w;
  w.path_ = path;
  w.options_ = options;
  w.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (w.fd_ < 0)
    throw StoreError(StoreErrorCode::kIo, path.string(),
                     errno_message("cannot create journal"));
  w.open_fresh();
  w.next_seq_ = min_last_seq + 1;
  return w;
}

void JournalWriter::open_fresh() {
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    const std::string msg = errno_message("cannot reset journal");
    close();
    throw StoreError(StoreErrorCode::kIo, path_.string(), msg);
  }
  write_all(fd_, path_, journal_header_bytes());
  fsync_fd(fd_, path_);
  fsync_parent_dir(path_);
  bytes_ = kJournalHeaderBytes;
  next_seq_ = 1;
  dirty_ = false;
}

JournalWriter::~JournalWriter() { close(); }

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : path_(std::move(other.path_)),
      options_(other.options_),
      fd_(std::exchange(other.fd_, -1)),
      bytes_(other.bytes_),
      next_seq_(other.next_seq_),
      dirty_(other.dirty_) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    options_ = other.options_;
    fd_ = std::exchange(other.fd_, -1);
    bytes_ = other.bytes_;
    next_seq_ = other.next_seq_;
    dirty_ = other.dirty_;
  }
  return *this;
}

void JournalWriter::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t JournalWriter::append(std::string_view payload) {
  const std::uint64_t seq = next_seq_;
  append_with_seq(seq, payload);
  return seq;
}

void JournalWriter::append_with_seq(std::uint64_t seq,
                                    std::string_view payload) {
  obs::ScopedTimer timer("store.append");
  if (fd_ < 0)
    throw StoreError(StoreErrorCode::kIo, path_.string(),
                     "journal is closed");
  if (seq < next_seq_)
    throw StoreError(StoreErrorCode::kIo, path_.string(),
                     "sequence number regression: " + std::to_string(seq) +
                         " after " + std::to_string(next_seq_ - 1));
  if (payload.size() > kMaxRecordBytes)
    throw StoreError(StoreErrorCode::kIo, path_.string(),
                     "record payload exceeds " +
                         std::to_string(kMaxRecordBytes) + " bytes");
  const std::string frame = frame_record(seq, payload);
  write_all(fd_, path_, frame);
  bytes_ += frame.size();
  next_seq_ = seq + 1;
  dirty_ = true;
  obs_count("store.append");
  obs_count("store.append.bytes", frame.size());
  if (options_.sync_every_append) sync();
}

void JournalWriter::sync() {
  if (fd_ < 0 || !dirty_) return;
  fsync_fd(fd_, path_);
  dirty_ = false;
}

void write_file_durable(const std::filesystem::path& path,
                        std::string_view data) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0)
    throw StoreError(StoreErrorCode::kIo, path.string(),
                     errno_message("cannot create file"));
  try {
    write_all(fd, path, data);
    fsync_fd(fd, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

void fsync_parent_dir(const std::filesystem::path& child) {
  std::filesystem::path dir = child.parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0)
    throw StoreError(StoreErrorCode::kIo, dir.string(),
                     errno_message("cannot open directory for fsync"));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    throw StoreError(StoreErrorCode::kIo, dir.string(),
                     errno_message("directory fsync failed"));
  obs_count("store.fsync");
}

}  // namespace rat::store
