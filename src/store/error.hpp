// Error taxonomy for the durable store.
//
// Mirrors the spirit of the worksheet E_* codes (io/diagnostics.hpp)
// without depending on the io layer: the store sits at the bottom of the
// stack, so it carries its own structured error with a stable E_* name,
// the path involved, and a human message. Consumers (rat_serve,
// rat_batch, explore_design_space) surface the rendered form verbatim.
#pragma once

#include <stdexcept>
#include <string>

namespace rat::store {

enum class StoreErrorCode {
  kIo,               ///< open/read/write/fsync/rename failed
  kCorrupt,          ///< snapshot or value bytes fail validation
  kStaleCheckpoint,  ///< checkpoint does not match the current campaign
};

constexpr const char* store_error_code_name(StoreErrorCode code) {
  switch (code) {
    case StoreErrorCode::kIo: return "E_IO";
    case StoreErrorCode::kCorrupt: return "E_STORE_CORRUPT";
    case StoreErrorCode::kStaleCheckpoint: return "E_STALE_CHECKPOINT";
  }
  return "E_STORE_CORRUPT";
}

class StoreError : public std::runtime_error {
 public:
  StoreError(StoreErrorCode code, std::string path, const std::string& message)
      : std::runtime_error(std::string(store_error_code_name(code)) + ": " +
                           (path.empty() ? message : path + ": " + message)),
        code_(code),
        path_(std::move(path)) {}

  StoreErrorCode code() const { return code_; }
  const std::string& path() const { return path_; }

 private:
  StoreErrorCode code_;
  std::string path_;
};

}  // namespace rat::store
