#include "store/checksum.hpp"

#include <array>
#include <bit>

namespace rat::store {

namespace {

/// Byte-at-a-time table for the reflected Castagnoli polynomial.
constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i)
    crc = (crc >> 8) ^ kCrc32cTable[(crc ^ p[i]) & 0xFFu];
  return ~crc;
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

Fnv1a& Fnv1a::add_bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h_ ^= p[i];
    h_ *= 1099511628211ull;
  }
  return *this;
}

Fnv1a& Fnv1a::add_u64(std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  return add_bytes(bytes, sizeof bytes);
}

Fnv1a& Fnv1a::add_double(double v) {
  return add_u64(std::bit_cast<std::uint64_t>(v));
}

Fnv1a& Fnv1a::add_string(std::string_view s) {
  add_u64(s.size());
  return add_bytes(s.data(), s.size());
}

}  // namespace rat::store
