#include "store/checkpoint.hpp"

#include <utility>

#include "store/codec.hpp"

namespace rat::store {

namespace {

// Record payload tags.
constexpr std::uint8_t kOpHeader = 0;  // kind | campaign_fp
constexpr std::uint8_t kOpItem = 1;    // index | item_fp | payload

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) s[i] = digits[v & 0xF];
  return s;
}

std::string encode_header(std::string_view kind, std::uint64_t campaign_fp) {
  std::string p;
  put_u8(p, kOpHeader);
  put_string(p, kind);
  put_u64(p, campaign_fp);
  return p;
}

}  // namespace

CampaignCheckpoint::CampaignCheckpoint(const std::filesystem::path& path,
                                       std::string_view kind,
                                       std::uint64_t campaign_fp,
                                       Options options)
    : path_(path) {
  if (path_.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path_.parent_path(), ec);
    if (ec)
      throw StoreError(StoreErrorCode::kIo, path_.string(),
                       "cannot create checkpoint directory: " + ec.message());
  }

  RecoveredJournal recovered;
  journal_.emplace(path_, JournalWriter::Options{options.sync_every_append},
                   &recovered);

  if (recovered.records.empty()) {
    journal_->append(encode_header(kind, campaign_fp));
    return;
  }

  // First surviving record must be the campaign header.
  {
    Cursor cur(recovered.records.front().payload);
    if (cur.u8() != kOpHeader)
      throw StoreError(StoreErrorCode::kCorrupt, path_.string(),
                       "checkpoint does not start with a campaign header");
    const std::string file_kind = cur.string();
    const std::uint64_t file_fp = cur.u64();
    cur.expect_done();
    if (file_kind != kind || file_fp != campaign_fp)
      throw StoreError(
          StoreErrorCode::kStaleCheckpoint, path_.string(),
          "checkpoint belongs to campaign " + file_kind + "/" +
              hex64(file_fp) + ", current campaign is " + std::string(kind) +
              "/" + hex64(campaign_fp) +
              "; delete the checkpoint to start over");
  }

  for (std::size_t i = 1; i < recovered.records.size(); ++i) {
    Cursor cur(recovered.records[i].payload);
    if (cur.u8() != kOpItem)
      throw StoreError(StoreErrorCode::kCorrupt, path_.string(),
                       "unexpected record kind at record " +
                           std::to_string(i));
    const std::uint64_t index = cur.u64();
    Item item;
    item.item_fp = cur.u64();
    item.payload = cur.string();
    cur.expect_done();
    restored_[index] = std::move(item);
  }
}

const std::string* CampaignCheckpoint::restored_payload(
    std::uint64_t index, std::uint64_t item_fp) const {
  const auto it = restored_.find(index);
  if (it == restored_.end()) return nullptr;
  if (it->second.item_fp != item_fp)
    throw StoreError(
        StoreErrorCode::kStaleCheckpoint, path_.string(),
        "work item " + std::to_string(index) + " was recorded for input " +
            hex64(it->second.item_fp) + " but the input is now " +
            hex64(item_fp) + "; delete the checkpoint to start over");
  return &it->second.payload;
}

void CampaignCheckpoint::record(std::uint64_t index, std::uint64_t item_fp,
                                std::string_view payload) {
  std::string p;
  p.reserve(1 + 16 + 4 + payload.size());
  put_u8(p, kOpItem);
  put_u64(p, index);
  put_u64(p, item_fp);
  put_string(p, payload);
  std::lock_guard<std::mutex> lk(mu_);
  journal_->append(p);
}

void CampaignCheckpoint::sync() {
  std::lock_guard<std::mutex> lk(mu_);
  journal_->sync();
}

}  // namespace rat::store
