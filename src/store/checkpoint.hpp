// CampaignCheckpoint: resumable-campaign journal for long evaluation
// runs (rat_batch worksheet campaigns, design-space exploration).
//
// A checkpoint is a single rat.store.v1 journal whose first record is a
// campaign header {kind, campaign fingerprint} and whose remaining
// records are completed work items {index, item fingerprint, payload}.
// Reopening validates the header against the caller's current campaign:
// a kind or fingerprint mismatch means the checkpoint belongs to a
// different campaign (different file list, axes, requirements, device…)
// and is rejected with StoreError(kStaleCheckpoint) — resuming it would
// silently mix results from two different runs.
//
// Item fingerprints guard the same property per work item: if the input
// behind an index changed since the item was recorded (say a worksheet
// file was edited), restored_payload() throws kStaleCheckpoint rather
// than replaying a result for data that no longer exists.
//
// Durability follows the journal: with sync_every_append (default) every
// record() survives kill -9; recovery truncates a torn final record, so
// a crashed campaign resumes from its last fully recorded item.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "store/journal.hpp"

namespace rat::store {

struct CampaignCheckpointOptions {
  bool sync_every_append = true;
};

class CampaignCheckpoint {
 public:
  using Options = CampaignCheckpointOptions;

  struct Item {
    std::uint64_t item_fp = 0;
    std::string payload;
  };

  /// Open (or create) the checkpoint file at @p path for the campaign
  /// identified by @p kind + @p campaign_fp. Throws StoreError:
  /// kStaleCheckpoint when an existing checkpoint belongs to a different
  /// campaign, kCorrupt for an undecodable record, kIo for filesystem
  /// failures.
  CampaignCheckpoint(const std::filesystem::path& path, std::string_view kind,
                     std::uint64_t campaign_fp, Options options = {});

  /// Payload previously recorded for @p index, or nullptr if the item
  /// has not completed yet. Throws StoreError(kStaleCheckpoint) if a
  /// record exists but its item fingerprint differs from @p item_fp (the
  /// input behind this index changed since the checkpoint was written).
  const std::string* restored_payload(std::uint64_t index,
                                      std::uint64_t item_fp) const;

  /// Record one completed work item. Durable on return under
  /// sync_every_append. Thread-safe — parallel campaigns finish items
  /// out of enumeration order and from many workers at once.
  void record(std::uint64_t index, std::uint64_t item_fp,
              std::string_view payload);

  /// Number of items restored from disk at open time.
  std::size_t restored_count() const { return restored_.size(); }

  /// fsync any unsynced records (no-op under sync_every_append).
  void sync();

  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  /// Immutable after construction; restored_payload needs no lock.
  std::unordered_map<std::uint64_t, Item> restored_;
  std::mutex mu_;  ///< serializes record()/sync() appends
  std::optional<JournalWriter> journal_;
};

}  // namespace rat::store
